//! Property tests for display recording and playback.
//!
//! The core invariant of §4.1/§4.3: replaying the record — nearest
//! keyframe plus subsequent commands, with overwrite pruning — must
//! reproduce exactly the screen that applying the full command stream
//! from the start produces, for arbitrary command sequences and
//! arbitrary target times.

use std::sync::Arc;

use proptest::prelude::*;

use dv_display::{
    decode_command, encode_command_vec, CommandQueue, DisplayCommand, Framebuffer, Pattern, Rect,
    YuvFrame,
};
use dv_record::{DisplayRecorder, PlaybackEngine, RecorderConfig};
use dv_time::{Duration, Timestamp};

const W: u32 = 48;
const H: u32 = 48;

fn arb_rect() -> impl Strategy<Value = Rect> {
    (0..W, 0..H, 1..W, 1..H).prop_map(|(x, y, w, h)| Rect::new(x, y, w, h))
}

fn arb_command() -> impl Strategy<Value = DisplayCommand> {
    prop_oneof![
        (arb_rect(), any::<u32>())
            .prop_map(|(rect, color)| DisplayCommand::SolidFill { rect, color }),
        (arb_rect(), any::<u64>(), any::<u32>(), any::<u32>()).prop_map(|(rect, bits, fg, bg)| {
            DisplayCommand::PatternFill {
                rect,
                pattern: Pattern { bits, fg, bg },
            }
        }),
        (arb_rect(), 0..W, 0..H).prop_map(|(rect, src_x, src_y)| DisplayCommand::CopyArea {
            src_x,
            src_y,
            rect,
        }),
        (arb_rect(), any::<u32>()).prop_map(|(rect, seed)| {
            let pixels: Vec<u32> = (0..rect.area())
                .map(|i| (i as u32).wrapping_mul(seed | 1))
                .collect();
            DisplayCommand::Raw {
                rect,
                pixels: Arc::new(pixels),
            }
        }),
        (arb_rect(), any::<u32>(), any::<u32>(), any::<u8>()).prop_map(|(rect, fg, bg, seed)| {
            let stride = (rect.w as usize).div_ceil(8);
            let bits: Vec<u8> = (0..stride * rect.h as usize)
                .map(|i| (i as u8).wrapping_mul(seed | 1))
                .collect();
            DisplayCommand::Glyph {
                rect,
                bits: Arc::new(bits),
                fg,
                bg,
            }
        }),
        (arb_rect(), 1..16u32, 1..16u32, any::<u8>()).prop_map(|(rect, fw, fh, seed)| {
            let luma: Vec<u8> = (0..(fw * fh) as usize)
                .map(|i| (i as u8).wrapping_add(seed))
                .collect();
            DisplayCommand::Video {
                rect,
                frame: Arc::new(YuvFrame::from_luma(fw, fh, luma)),
            }
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Round-trip through the wire codec is lossless for every command
    /// shape.
    #[test]
    fn codec_round_trips(cmd in arb_command()) {
        let encoded = encode_command_vec(&cmd);
        prop_assert_eq!(encoded.len(), cmd.wire_size());
        let mut slice = encoded.as_slice();
        let decoded = decode_command(&mut slice).expect("decode");
        prop_assert_eq!(decoded, cmd);
        prop_assert!(slice.is_empty());
    }

    /// Seeking to any time reproduces the exact framebuffer that a full
    /// linear replay produces.
    #[test]
    fn seek_equals_linear_replay(
        cmds in prop::collection::vec(arb_command(), 1..60),
        probe_denominator in 1..20u64,
    ) {
        // Record with keyframes forced at a short interval so seeks
        // exercise the keyframe + tail-replay path.
        let config = RecorderConfig {
            keyframe_interval: Duration::from_millis(200),
            keyframe_min_change: 0.0,
            ..RecorderConfig::default()
        };
        let mut recorder = DisplayRecorder::new(W, H, config);
        let mut reference = Framebuffer::new(W, H);
        let total = cmds.len() as u64;
        for (i, cmd) in cmds.iter().enumerate() {
            let ts = Timestamp::from_millis(i as u64 * 100);
            dv_display::CommandSink::submit(&mut recorder, ts, cmd);
        }
        // Reference state at the probe time.
        let probe_ms = (total * 100).saturating_sub(1) * probe_denominator / 20;
        let probe = Timestamp::from_millis(probe_ms);
        for (i, cmd) in cmds.iter().enumerate() {
            if Timestamp::from_millis(i as u64 * 100) <= probe {
                reference.apply(cmd);
            }
        }
        let mut engine = PlaybackEngine::new(recorder.record());
        engine.seek(probe).expect("seek");
        prop_assert_eq!(
            engine.screenshot().content_hash(),
            reference.snapshot().content_hash(),
            "divergence at probe {}ms of {} commands", probe_ms, total
        );
    }

    /// Merging a queue never changes the final screen contents.
    #[test]
    fn queue_merge_preserves_final_state(cmds in prop::collection::vec(arb_command(), 1..40)) {
        let mut direct = Framebuffer::new(W, H);
        for cmd in &cmds {
            direct.apply(cmd);
        }
        let mut queue = CommandQueue::new();
        for (i, cmd) in cmds.iter().enumerate() {
            queue.push(Timestamp::from_millis(i as u64), cmd.clone());
        }
        let mut merged = Framebuffer::new(W, H);
        for entry in queue.flush() {
            merged.apply(&entry.command);
        }
        prop_assert_eq!(direct.content_hash(), merged.content_hash());
    }

    /// Incremental play_until from any split point matches a single
    /// replay (pause/resume correctness).
    #[test]
    fn split_playback_equals_continuous(
        cmds in prop::collection::vec(arb_command(), 2..40),
        split_at in 0..40usize,
    ) {
        let mut recorder = DisplayRecorder::new(W, H, RecorderConfig::default());
        for (i, cmd) in cmds.iter().enumerate() {
            dv_display::CommandSink::submit(
                &mut recorder,
                Timestamp::from_millis(i as u64 * 10),
                cmd,
            );
        }
        let end = Timestamp::from_millis(cmds.len() as u64 * 10);
        let split = Timestamp::from_millis((split_at % cmds.len()) as u64 * 10);

        let mut continuous = PlaybackEngine::new(recorder.record());
        continuous.seek(Timestamp::ZERO).expect("seek");
        continuous.play_until(end, None).expect("play");

        let mut paused = PlaybackEngine::new(recorder.record());
        paused.seek(Timestamp::ZERO).expect("seek");
        paused.play_until(split, None).expect("first half");
        paused.play_until(end, None).expect("second half");

        prop_assert_eq!(
            continuous.screenshot().content_hash(),
            paused.screenshot().content_hash()
        );
    }
}
