//! Per-process file descriptor tables.

use std::collections::BTreeMap;

use dv_lsfs::Handle;

/// What a file descriptor refers to.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum FdObject {
    /// An open file on the session file system.
    File {
        /// The path it was opened by.
        path: String,
        /// The file system handle (keeps contents alive across unlink).
        handle: Handle,
        /// Current file offset.
        offset: u64,
        /// Whether the path has been unlinked while open — the case the
        /// checkpoint engine's relink optimization handles (§5.1.2).
        unlinked: bool,
    },
    /// An open socket (id into the VEE's socket table).
    Socket {
        /// Socket id.
        id: u64,
    },
}

/// A process's descriptor table.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct FdTable {
    entries: BTreeMap<u32, FdObject>,
    next_fd: u32,
}

impl FdTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        FdTable {
            entries: BTreeMap::new(),
            next_fd: 3, // 0..2 reserved for std streams, not modelled.
        }
    }

    /// Inserts an object, returning its descriptor.
    pub fn insert(&mut self, obj: FdObject) -> u32 {
        let fd = self.next_fd;
        self.next_fd += 1;
        self.entries.insert(fd, obj);
        fd
    }

    /// Installs an object at a specific descriptor (restore path).
    pub fn install(&mut self, fd: u32, obj: FdObject) {
        self.next_fd = self.next_fd.max(fd + 1);
        self.entries.insert(fd, obj);
    }

    /// Looks up a descriptor.
    pub fn get(&self, fd: u32) -> Option<&FdObject> {
        self.entries.get(&fd)
    }

    /// Looks up a descriptor mutably.
    pub fn get_mut(&mut self, fd: u32) -> Option<&mut FdObject> {
        self.entries.get_mut(&fd)
    }

    /// Removes a descriptor, returning its object.
    pub fn remove(&mut self, fd: u32) -> Option<FdObject> {
        self.entries.remove(&fd)
    }

    /// Iterates `(fd, object)` in descriptor order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, &FdObject)> {
        self.entries.iter().map(|(fd, obj)| (*fd, obj))
    }

    /// Iterates mutably.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = (u32, &mut FdObject)> {
        self.entries.iter_mut().map(|(fd, obj)| (*fd, obj))
    }

    /// Returns the number of open descriptors.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn descriptors_allocate_from_three() {
        let mut fds = FdTable::new();
        let a = fds.insert(FdObject::Socket { id: 1 });
        let b = fds.insert(FdObject::Socket { id: 2 });
        assert_eq!((a, b), (3, 4));
    }

    #[test]
    fn install_keeps_allocation_above() {
        let mut fds = FdTable::new();
        fds.install(
            10,
            FdObject::File {
                path: "/x".into(),
                handle: Handle(1),
                offset: 0,
                unlinked: false,
            },
        );
        let next = fds.insert(FdObject::Socket { id: 1 });
        assert_eq!(next, 11);
    }

    #[test]
    fn remove_and_iterate() {
        let mut fds = FdTable::new();
        let a = fds.insert(FdObject::Socket { id: 1 });
        let b = fds.insert(FdObject::Socket { id: 2 });
        assert_eq!(fds.len(), 2);
        fds.remove(a);
        let remaining: Vec<u32> = fds.iter().map(|(fd, _)| fd).collect();
        assert_eq!(remaining, vec![b]);
        assert!(fds.get(a).is_none());
    }
}
