//! Index persistence.
//!
//! Serializes a [`TextIndex`] to a flat binary segment and back. The
//! inverted postings are not stored — they are rebuilt from the instance
//! records on load, which keeps the format simple and the invariant
//! "postings are derived state" explicit.

use bytes::{Buf, BufMut};

use dv_time::Timestamp;

use crate::index::{IndexedInstance, TextIndex};

const MAGIC: &[u8; 8] = b"DVIDX001";

/// A decoding error.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct StoreError(pub &'static str);

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "index store error: {}", self.0)
    }
}

impl std::error::Error for StoreError {}

fn put_str(out: &mut Vec<u8>, s: &str) {
    out.put_u32_le(s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

fn get_str(buf: &mut &[u8]) -> Result<String, StoreError> {
    if buf.len() < 4 {
        return Err(StoreError("truncated string length"));
    }
    let len = buf.get_u32_le() as usize;
    if buf.len() < len {
        return Err(StoreError("truncated string body"));
    }
    let (s, rest) = buf.split_at(len);
    let out = String::from_utf8(s.to_vec()).map_err(|_| StoreError("invalid utf-8"))?;
    *buf = rest;
    Ok(out)
}

/// Serializes the index.
pub fn encode_index(index: &TextIndex) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(MAGIC);
    out.put_u64_le(index.horizon().as_nanos());
    let mut instances: Vec<&IndexedInstance> = index.all_instances().collect();
    instances.sort_by_key(|i| i.id);
    out.put_u64_le(instances.len() as u64);
    for inst in instances {
        out.put_u64_le(inst.id);
        out.put_u32_le(inst.app_id);
        put_str(&mut out, &inst.app);
        put_str(&mut out, &inst.window);
        put_str(&mut out, &inst.role);
        put_str(&mut out, &inst.text);
        out.put_u64_le(inst.shown.as_nanos());
        match inst.hidden {
            Some(t) => {
                out.put_u8(1);
                out.put_u64_le(t.as_nanos());
            }
            None => out.put_u8(0),
        }
        out.put_u8(inst.annotation as u8);
    }
    let focus = index.focus_history();
    out.put_u64_le(focus.len() as u64);
    for (app, t) in focus {
        out.put_u32_le(*app);
        out.put_u64_le(t.as_nanos());
    }
    out
}

/// Serializes the index as a flushable segment, checking the fault
/// plane at site `index.segment.flush`.
///
/// `Enospc`/`TornWrite`/`ShortRead` fail the flush (nothing usable is
/// produced); `Corrupt` yields a full-length segment with one mangled
/// byte and reports success — [`decode_index`] catches it on reload.
pub fn flush_segment(
    index: &TextIndex,
    plane: &dv_fault::FaultPlane,
) -> Result<Vec<u8>, StoreError> {
    use dv_fault::{sites, IoFault};
    let obs = index.obs().clone();
    let _span = obs.span("index", dv_obs::names::INDEX_FLUSH);
    let mut out = encode_index(index);
    let result = match plane.check(sites::INDEX_SEGMENT_FLUSH) {
        None | Some(IoFault::LatencySpike) => Ok(out),
        Some(IoFault::Enospc) => Err(StoreError("no space left for index segment")),
        Some(IoFault::TornWrite) | Some(IoFault::ShortRead) => {
            Err(StoreError("index segment flush failed"))
        }
        Some(IoFault::Corrupt) => {
            plane.mangle(&mut out);
            Ok(out)
        }
    };
    if result.is_ok() {
        obs.incr(dv_obs::names::INDEX_FLUSHES);
    }
    result
}

/// Deserializes an index, rebuilding the inverted postings.
pub fn decode_index(mut buf: &[u8]) -> Result<TextIndex, StoreError> {
    if buf.len() < 8 || &buf[..8] != MAGIC {
        return Err(StoreError("bad magic"));
    }
    buf.advance(8);
    if buf.len() < 16 {
        return Err(StoreError("truncated header"));
    }
    let horizon = Timestamp::from_nanos(buf.get_u64_le());
    let count = buf.get_u64_le();
    let mut index = TextIndex::new();
    for _ in 0..count {
        if buf.len() < 12 {
            return Err(StoreError("truncated instance"));
        }
        let id = buf.get_u64_le();
        let app_id = buf.get_u32_le();
        let app = get_str(&mut buf)?;
        let window = get_str(&mut buf)?;
        let role = get_str(&mut buf)?;
        let text = get_str(&mut buf)?;
        if buf.len() < 9 {
            return Err(StoreError("truncated instance times"));
        }
        let shown = Timestamp::from_nanos(buf.get_u64_le());
        let hidden = match buf.get_u8() {
            0 => None,
            1 => {
                if buf.len() < 8 {
                    return Err(StoreError("truncated hidden time"));
                }
                Some(Timestamp::from_nanos(buf.get_u64_le()))
            }
            _ => return Err(StoreError("bad hidden flag")),
        };
        if buf.is_empty() {
            return Err(StoreError("truncated annotation flag"));
        }
        let annotation = buf.get_u8() != 0;
        index.add_instance(IndexedInstance {
            id,
            app_id,
            app,
            window,
            role,
            text,
            shown,
            hidden,
            annotation,
        });
    }
    if buf.len() < 8 {
        return Err(StoreError("truncated focus history"));
    }
    let focus_count = buf.get_u64_le();
    for _ in 0..focus_count {
        if buf.len() < 12 {
            return Err(StoreError("truncated focus entry"));
        }
        let app = buf.get_u32_le();
        let t = Timestamp::from_nanos(buf.get_u64_le());
        index.focus_change(app, t);
    }
    if !buf.is_empty() {
        return Err(StoreError("trailing bytes"));
    }
    index.advance_horizon(horizon);
    Ok(index)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::parse_query;
    use crate::search::evaluate;

    fn sample() -> TextIndex {
        let mut index = TextIndex::new();
        index.add_instance(IndexedInstance {
            id: 1,
            app_id: 7,
            app: "firefox".into(),
            window: "tab - firefox".into(),
            role: "link".into(),
            text: "click here for schedule".into(),
            shown: Timestamp::from_millis(100),
            hidden: Some(Timestamp::from_millis(900)),
            annotation: false,
        });
        index.add_instance(IndexedInstance {
            id: 2,
            app_id: 8,
            app: "editor".into(),
            window: "notes".into(),
            role: "paragraph".into(),
            text: "schedule draft".into(),
            shown: Timestamp::from_millis(500),
            hidden: None,
            annotation: true,
        });
        index.focus_change(7, Timestamp::from_millis(0));
        index.focus_change(8, Timestamp::from_millis(400));
        index.advance_horizon(Timestamp::from_millis(2_000));
        index
    }

    #[test]
    fn round_trip_preserves_query_results() {
        let index = sample();
        let decoded = decode_index(&encode_index(&index)).unwrap();
        assert_eq!(decoded.horizon(), index.horizon());
        for q in [
            "schedule",
            "app:firefox schedule",
            "annotation: schedule",
            "focused: click",
        ] {
            let query = parse_query(q).unwrap();
            assert_eq!(
                evaluate(&decoded, &query),
                evaluate(&index, &query),
                "query {q:?} diverged after round trip"
            );
        }
    }

    #[test]
    fn round_trip_preserves_stats() {
        let index = sample();
        let decoded = decode_index(&encode_index(&index)).unwrap();
        let a = index.stats();
        let b = decoded.stats();
        assert_eq!(a.instances, b.instances);
        assert_eq!(a.terms, b.terms);
        assert_eq!(a.postings, b.postings);
    }

    #[test]
    fn flush_segment_faults_fail_or_corrupt_detectably() {
        use dv_fault::{sites, FaultPlan, FaultPlane, IoFault};
        let index = sample();
        // Disabled plane: identical to encode_index.
        let clean = flush_segment(&index, &FaultPlane::disabled()).unwrap();
        assert_eq!(clean, encode_index(&index));
        // Failed flush.
        let plane = FaultPlan::new(1)
            .always(sites::INDEX_SEGMENT_FLUSH, IoFault::Enospc)
            .build();
        assert!(flush_segment(&index, &plane).is_err());
        // Silent corruption is caught by decode.
        let plane = FaultPlan::new(2)
            .always(sites::INDEX_SEGMENT_FLUSH, IoFault::Corrupt)
            .build();
        let corrupt = flush_segment(&index, &plane).unwrap();
        assert_ne!(corrupt, clean);
    }

    #[test]
    fn decode_rejects_garbage_and_truncation() {
        assert!(decode_index(b"not an index").is_err());
        let encoded = encode_index(&sample());
        for cut in [0, 8, 20, encoded.len() - 1] {
            assert!(decode_index(&encoded[..cut]).is_err(), "cut at {cut}");
        }
        let mut extra = encoded.clone();
        extra.push(0);
        assert!(decode_index(&extra).is_err());
    }
}
