//! The display recorder.
//!
//! The recorder is a [`CommandSink`] attached to the virtual display
//! driver (§4.1): it receives the duplicated command stream, optionally
//! rescales it to the recording resolution, merges bursts through a
//! [`CommandQueue`] when recording frequency is limited, appends the
//! survivors to the command log, and takes periodic keyframe screenshots
//! — "only at long intervals (e.g. every 10 minutes) and only if the
//! screen has changed enough since the previous one".

use std::sync::Arc;

use parking_lot::RwLock;

use dv_fault::{sites, FaultPlane, IoFault};
use dv_obs::{names, Obs};

use dv_display::{
    scale_command, CommandQueue, CommandSink, DisplayCommand, Framebuffer, Rect, Region,
    ScaleFactor, Screenshot,
};
use dv_time::{Duration, Timestamp};

use crate::log::CommandLog;
use crate::screenshot::ScreenshotStore;
use crate::timeline::{Timeline, TimelineEntry};

/// Callback invoked with every *persisted* keyframe (time + screenshot).
pub type KeyframeHook = Box<dyn FnMut(Timestamp, &Screenshot) + Send>;

/// The persistent display record: command log, keyframes and timeline.
///
/// Shared between the recorder (writer) and any number of playback
/// engines (readers), mirroring how the original's on-disk record files
/// are read while still being appended to.
#[derive(Debug)]
pub struct RecordStore {
    /// The append-only command log.
    pub log: CommandLog,
    /// Keyframe screenshots.
    pub shots: ScreenshotStore,
    /// The timeline index over keyframes.
    pub timeline: Timeline,
    /// Recording resolution width.
    pub width: u32,
    /// Recording resolution height.
    pub height: u32,
    /// Session time of the first recorded command.
    pub start: Option<Timestamp>,
    /// Session time of the last recorded command.
    pub end: Timestamp,
}

impl RecordStore {
    /// Returns the recorded wall-span of the session.
    pub fn duration(&self) -> Duration {
        match self.start {
            Some(start) => self.end.saturating_since(start),
            None => Duration::ZERO,
        }
    }
}

/// A shareable handle to a record store.
pub type DisplayRecord = Arc<RwLock<RecordStore>>;

/// Recorder configuration: the quality/storage trade-offs §4.1 exposes.
#[derive(Clone, Copy, Debug)]
pub struct RecorderConfig {
    /// Recording resolution relative to the live display.
    pub scale: ScaleFactor,
    /// Minimum interval between log flushes; commands arriving faster
    /// are queued and merged so "only the result of the last update is
    /// logged". Zero records every command.
    pub flush_interval: Duration,
    /// Minimum interval between keyframe screenshots.
    pub keyframe_interval: Duration,
    /// Minimum fraction of the screen that must have changed since the
    /// previous keyframe for a new one to be taken.
    pub keyframe_min_change: f64,
}

impl Default for RecorderConfig {
    fn default() -> Self {
        RecorderConfig {
            scale: ScaleFactor::ONE,
            flush_interval: Duration::ZERO,
            keyframe_interval: Duration::from_secs(600),
            keyframe_min_change: 0.01,
        }
    }
}

/// Cumulative recorder statistics (Figure 4's display series).
#[derive(Clone, Copy, Debug, Default)]
pub struct RecordStats {
    /// Commands appended to the log.
    pub commands: u64,
    /// Commands merged away by frequency limiting.
    pub merged_away: u64,
    /// Bytes in the command log.
    pub command_bytes: u64,
    /// Bytes in the screenshot store.
    pub screenshot_bytes: u64,
    /// Keyframes taken.
    pub keyframes: u64,
    /// Bytes in the timeline index.
    pub timeline_bytes: u64,
    /// Commands lost to injected log-append failures; recording
    /// continued past them.
    pub dropped_commands: u64,
    /// Keyframes skipped because persisting the screenshot or timeline
    /// entry failed.
    pub dropped_keyframes: u64,
    /// Keyframes skipped because the screen content was byte-identical
    /// to the previous keyframe (a full-screen redraw of unchanged
    /// content passes the damage gate but stores nothing new).
    pub skipped_identical_keyframes: u64,
}

/// The display recorder sink.
///
/// The reconstruction framebuffer is maintained *lazily*: commands are
/// only encoded and appended on the hot path, and the framebuffer
/// catches up by replaying the log tail when a keyframe is due. This
/// keeps per-command recording cost at its wire cost, which is what
/// makes display recording overhead small (§6).
pub struct DisplayRecorder {
    config: RecorderConfig,
    record: DisplayRecord,
    fb: Framebuffer,
    /// Log offset up to which `fb` is current.
    fb_offset: u64,
    queue: CommandQueue,
    last_flush: Option<Timestamp>,
    last_keyframe: Option<Timestamp>,
    /// Content hash of the last *persisted* keyframe; a new keyframe
    /// whose screen hashes identically is suppressed.
    last_keyframe_hash: Option<u64>,
    damage_since_keyframe: Region,
    plane: FaultPlane,
    obs: Obs,
    dropped_commands: u64,
    dropped_keyframes: u64,
    skipped_identical_keyframes: u64,
    /// Called with every persisted keyframe (time + screenshot); the
    /// visual-recall index hangs off this without the recorder knowing
    /// about it.
    keyframe_hook: Option<KeyframeHook>,
}

impl DisplayRecorder {
    /// Creates a recorder for a live display of `width` x `height`.
    ///
    /// The record is kept at the scaled resolution from `config`.
    pub fn new(width: u32, height: u32, config: RecorderConfig) -> Self {
        let rw = config.scale.apply(width).max(1);
        let rh = config.scale.apply(height).max(1);
        let record = Arc::new(RwLock::new(RecordStore {
            log: CommandLog::new(),
            shots: ScreenshotStore::new(),
            timeline: Timeline::new(),
            width: rw,
            height: rh,
            start: None,
            end: Timestamp::ZERO,
        }));
        DisplayRecorder {
            config,
            record,
            fb: Framebuffer::new(rw, rh),
            fb_offset: 0,
            queue: CommandQueue::new(),
            last_flush: None,
            last_keyframe: None,
            last_keyframe_hash: None,
            damage_since_keyframe: Region::new(),
            plane: FaultPlane::disabled(),
            obs: Obs::disabled(),
            dropped_commands: 0,
            dropped_keyframes: 0,
            skipped_identical_keyframes: 0,
            keyframe_hook: None,
        }
    }

    /// Installs a hook called with every *persisted* keyframe, after the
    /// screenshot and timeline entry have been stored. Suppressed
    /// (identical) and dropped (faulted) keyframes never reach it.
    pub fn set_keyframe_hook(&mut self, hook: KeyframeHook) {
        self.keyframe_hook = Some(hook);
    }

    /// Installs the fault-injection plane (sites `record.log.append`,
    /// `record.screenshot.persist`, `record.timeline.persist`).
    pub fn set_fault_plane(&mut self, plane: FaultPlane) {
        plane.set_obs(self.obs.clone());
        self.plane = plane;
    }

    /// Installs the observability handle: log, screenshot, and timeline
    /// appends are mirrored into the `display.*` metrics.
    pub fn set_obs(&mut self, obs: Obs) {
        self.plane.set_obs(obs.clone());
        self.obs = obs;
    }

    /// Returns the shared record handle for playback and search.
    pub fn record(&self) -> DisplayRecord {
        self.record.clone()
    }

    /// Returns cumulative statistics.
    pub fn stats(&self) -> RecordStats {
        let store = self.record.read();
        RecordStats {
            commands: store.log.len(),
            merged_away: self.queue.merged_away(),
            command_bytes: store.log.byte_len(),
            screenshot_bytes: store.shots.byte_len(),
            keyframes: store.shots.len(),
            timeline_bytes: store.timeline.byte_len(),
            dropped_commands: self.dropped_commands,
            dropped_keyframes: self.dropped_keyframes,
            skipped_identical_keyframes: self.skipped_identical_keyframes,
        }
    }

    /// Returns the total record size in bytes across all three files.
    pub fn total_bytes(&self) -> u64 {
        let stats = self.stats();
        stats.command_bytes + stats.screenshot_bytes + stats.timeline_bytes
    }

    /// Flushes queued commands to the log.
    pub fn flush(&mut self) {
        let entries = self.queue.flush();
        if entries.is_empty() {
            return;
        }
        // A failed log append drops the batch but never stops recording;
        // `Corrupt` models silent corruption below this layer and is left
        // to the storage-level checksums, so the append proceeds.
        let _span = self.obs.span("display", names::DISPLAY_FLUSH);
        match self.plane.check(sites::RECORD_LOG_APPEND) {
            Some(IoFault::Enospc) | Some(IoFault::TornWrite) | Some(IoFault::ShortRead) => {
                self.dropped_commands += entries.len() as u64;
                self.obs
                    .add(names::DISPLAY_DROPPED_COMMANDS, entries.len() as u64);
                return;
            }
            None | Some(IoFault::LatencySpike) | Some(IoFault::Corrupt) => {}
        }
        let mut store = self.record.write();
        let bytes_before = store.log.byte_len();
        let mut appended = 0u64;
        for entry in entries {
            store.log.append(entry.time, &entry.command);
            appended += 1;
            self.damage_since_keyframe
                .add(entry.command.rect().intersect(&self.fb.screen_rect()));
        }
        self.obs.add(names::DISPLAY_COMMANDS, appended);
        self.obs.add(
            names::DISPLAY_COMMAND_BYTES,
            store.log.byte_len() - bytes_before,
        );
    }

    /// Catches the reconstruction framebuffer up to the log head by
    /// replaying the tail it has not yet seen.
    fn sync_fb(&mut self) {
        let store = self.record.read();
        let mut offset = self.fb_offset;
        while let Ok(Some((_, cmd, next))) = store.log.read_at(offset) {
            self.fb.apply(&cmd);
            offset = next;
        }
        self.fb_offset = offset;
    }

    /// Takes a keyframe now, regardless of the change threshold; the
    /// server calls this during idle periods for redundancy.
    pub fn force_keyframe(&mut self, now: Timestamp) {
        self.flush();
        self.sync_fb();
        // Span opens after the flush (which times itself) so the two
        // histograms don't double-count the same work.
        let _span = self.obs.span("display", names::DISPLAY_KEYFRAME);
        // A full-screen redraw of unchanged content (window refresh,
        // tab-switch round trip) passes the damage gate but would store a
        // byte-identical screenshot; suppress it. The damage is cleared —
        // the screen provably matches the last keyframe — so the next
        // interval does not retry a no-op.
        let shot = self.fb.snapshot();
        let hash = shot.content_hash();
        if self.last_keyframe_hash == Some(hash) {
            self.skipped_identical_keyframes += 1;
            self.last_keyframe = Some(now);
            self.damage_since_keyframe.clear();
            return;
        }
        // A keyframe that cannot persist its screenshot or timeline entry
        // is skipped: `last_keyframe` still advances so cadence continues,
        // but accumulated damage is kept so the next interval retries.
        let screenshot_fault = matches!(
            self.plane.check(sites::RECORD_SCREENSHOT_PERSIST),
            Some(IoFault::Enospc) | Some(IoFault::TornWrite) | Some(IoFault::ShortRead)
        );
        if screenshot_fault {
            self.dropped_keyframes += 1;
            self.obs.incr(names::DISPLAY_DROPPED_KEYFRAMES);
            self.last_keyframe = Some(now);
            return;
        }
        let mut store = self.record.write();
        let shot_bytes_before = store.shots.byte_len();
        let screenshot_offset = store.shots.append(&shot);
        // Accounted even if the timeline entry below fails: the orphaned
        // screenshot bytes are still on storage, and `stats()` reads the
        // store's byte length directly.
        self.obs.add(
            names::DISPLAY_SCREENSHOT_BYTES,
            store.shots.byte_len() - shot_bytes_before,
        );
        let command_offset = store.log.end_offset();
        match self.plane.check(sites::RECORD_TIMELINE_PERSIST) {
            Some(IoFault::Enospc) | Some(IoFault::TornWrite) | Some(IoFault::ShortRead) => {
                // The screenshot bytes are orphaned but unreferenced; the
                // timeline stays consistent with only complete keyframes.
                self.dropped_keyframes += 1;
                self.obs.incr(names::DISPLAY_DROPPED_KEYFRAMES);
                self.last_keyframe = Some(now);
                return;
            }
            None | Some(IoFault::LatencySpike) | Some(IoFault::Corrupt) => {}
        }
        let timeline_bytes_before = store.timeline.byte_len();
        store.timeline.push(TimelineEntry {
            time: now,
            screenshot_offset,
            command_offset,
        });
        self.obs.incr(names::DISPLAY_KEYFRAMES);
        self.obs.add(
            names::DISPLAY_TIMELINE_BYTES,
            store.timeline.byte_len() - timeline_bytes_before,
        );
        self.last_keyframe = Some(now);
        self.last_keyframe_hash = Some(hash);
        self.damage_since_keyframe.clear();
        drop(store);
        if let Some(hook) = self.keyframe_hook.as_mut() {
            hook(now, &shot);
        }
    }

    fn maybe_keyframe(&mut self, now: Timestamp) {
        match self.last_keyframe {
            None => self.force_keyframe(now),
            Some(last) => {
                if now.saturating_since(last) >= self.config.keyframe_interval
                    && self
                        .damage_since_keyframe
                        .coverage_of(self.fb.width(), self.fb.height())
                        >= self.config.keyframe_min_change
                {
                    self.force_keyframe(now);
                }
            }
        }
    }
}

impl CommandSink for DisplayRecorder {
    fn submit(&mut self, ts: Timestamp, cmd: &DisplayCommand) {
        {
            let mut store = self.record.write();
            if store.start.is_none() {
                store.start = Some(ts);
            }
            store.end = store.end.max(ts);
        }
        // The initial keyframe provides "the initial state of the display
        // that subsequent recorded commands modify".
        if self.last_keyframe.is_none() {
            self.force_keyframe(ts);
        }
        let scaled = scale_command(cmd, self.config.scale);
        if scaled
            .rect()
            .intersect(&Rect::screen(self.fb.width(), self.fb.height()))
            .is_empty()
        {
            return;
        }
        self.queue.push(ts, scaled);
        let due = match self.last_flush {
            None => true,
            Some(last) => ts.saturating_since(last) >= self.config.flush_interval,
        };
        if due {
            self.flush();
            self.last_flush = Some(ts);
            self.maybe_keyframe(ts);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fill(rect: Rect, color: u32) -> DisplayCommand {
        DisplayCommand::SolidFill { rect, color }
    }

    fn ts(ms: u64) -> Timestamp {
        Timestamp::from_millis(ms)
    }

    #[test]
    fn first_command_takes_initial_keyframe() {
        let mut rec = DisplayRecorder::new(64, 64, RecorderConfig::default());
        rec.submit(ts(5), &fill(Rect::new(0, 0, 4, 4), 1));
        let stats = rec.stats();
        assert_eq!(stats.keyframes, 1);
        assert_eq!(stats.commands, 1);
        let store = rec.record();
        let store = store.read();
        let entry = &store.timeline.entries()[0];
        assert_eq!(entry.time, ts(5));
        assert_eq!(entry.command_offset, 0, "keyframe precedes first command");
        // The initial keyframe is the blank screen.
        let shot = store.shots.load(entry.screenshot_offset).unwrap();
        assert_eq!(shot.pixels.iter().filter(|&&p| p != 0).count(), 0);
    }

    #[test]
    fn every_command_logged_with_zero_flush_interval() {
        let mut rec = DisplayRecorder::new(64, 64, RecorderConfig::default());
        for i in 0..20 {
            rec.submit(ts(i), &fill(Rect::new(0, 0, 8, 8), i as u32));
        }
        assert_eq!(rec.stats().commands, 20);
    }

    #[test]
    fn frequency_limiting_merges_overwrites() {
        let config = RecorderConfig {
            flush_interval: Duration::from_millis(100),
            ..RecorderConfig::default()
        };
        let mut rec = DisplayRecorder::new(64, 64, config);
        // 10 overwriting fills within one flush window.
        for i in 0..10 {
            rec.submit(ts(i), &fill(Rect::new(0, 0, 64, 64), i as u32));
        }
        rec.submit(ts(150), &fill(Rect::new(0, 0, 64, 64), 99));
        // Only the first (flushed immediately) and the final state of the
        // window survive.
        let stats = rec.stats();
        assert!(stats.commands < 12);
        assert!(stats.merged_away > 0);
    }

    #[test]
    fn keyframes_respect_interval_and_change_threshold() {
        let config = RecorderConfig {
            keyframe_interval: Duration::from_secs(1),
            keyframe_min_change: 0.5,
            ..RecorderConfig::default()
        };
        let mut rec = DisplayRecorder::new(100, 100, config);
        // The initial keyframe precedes this small fill.
        rec.submit(ts(0), &fill(Rect::new(0, 0, 2, 2), 1));
        // Another tiny change after the interval: below threshold.
        rec.submit(ts(1_100), &fill(Rect::new(0, 0, 2, 2), 2));
        assert_eq!(rec.stats().keyframes, 1);
        // Big change after the interval: keyframe.
        rec.submit(ts(2_300), &fill(Rect::new(0, 0, 100, 80), 3));
        assert_eq!(rec.stats().keyframes, 2);
        // Big change but too soon: no keyframe.
        rec.submit(ts(2_400), &fill(Rect::new(0, 0, 100, 100), 4));
        assert_eq!(rec.stats().keyframes, 2);
    }

    #[test]
    fn scaled_recording_shrinks_payloads() {
        let full = {
            let mut rec = DisplayRecorder::new(128, 128, RecorderConfig::default());
            rec.submit(
                ts(0),
                &DisplayCommand::Raw {
                    rect: Rect::new(0, 0, 128, 128),
                    pixels: Arc::new(vec![5; 128 * 128]),
                },
            );
            rec.stats().command_bytes
        };
        let half = {
            let config = RecorderConfig {
                scale: ScaleFactor::new(1, 2),
                ..RecorderConfig::default()
            };
            let mut rec = DisplayRecorder::new(128, 128, config);
            rec.submit(
                ts(0),
                &DisplayCommand::Raw {
                    rect: Rect::new(0, 0, 128, 128),
                    pixels: Arc::new(vec![5; 128 * 128]),
                },
            );
            rec.stats().command_bytes
        };
        assert!(half * 3 < full, "half-res record should be ~4x smaller");
    }

    /// Regression: a forced keyframe over unchanged screen content used
    /// to append a full byte-identical screenshot copy; it must be
    /// suppressed and counted instead.
    #[test]
    fn identical_keyframes_are_suppressed() {
        let mut rec = DisplayRecorder::new(64, 64, RecorderConfig::default());
        rec.submit(ts(0), &fill(Rect::new(0, 0, 64, 64), 7));
        rec.force_keyframe(ts(1_000));
        let before = rec.stats();
        assert_eq!(before.skipped_identical_keyframes, 0);
        // Nothing drew since the last keyframe: identical content.
        rec.force_keyframe(ts(2_000));
        rec.force_keyframe(ts(3_000));
        let stats = rec.stats();
        assert_eq!(stats.keyframes, before.keyframes);
        assert_eq!(stats.screenshot_bytes, before.screenshot_bytes);
        assert_eq!(stats.skipped_identical_keyframes, 2);
        // Changed content records again.
        rec.submit(ts(4_000), &fill(Rect::new(0, 0, 32, 32), 9));
        rec.force_keyframe(ts(5_000));
        let after = rec.stats();
        assert_eq!(after.keyframes, before.keyframes + 1);
        assert_eq!(after.skipped_identical_keyframes, 2);
    }

    #[test]
    fn keyframe_hook_sees_persisted_keyframes_only() {
        use parking_lot::Mutex;
        let seen: Arc<Mutex<Vec<(Timestamp, u64)>>> = Arc::new(Mutex::new(Vec::new()));
        let sink = seen.clone();
        let mut rec = DisplayRecorder::new(64, 64, RecorderConfig::default());
        rec.set_keyframe_hook(Box::new(move |t, shot| {
            sink.lock().push((t, shot.content_hash()));
        }));
        rec.submit(ts(0), &fill(Rect::new(0, 0, 64, 64), 7));
        rec.force_keyframe(ts(1_000));
        // Suppressed: identical content never reaches the hook.
        rec.force_keyframe(ts(2_000));
        let calls = seen.lock().clone();
        assert_eq!(calls.len(), 2, "initial + forced keyframe");
        assert_eq!(calls[0].0, ts(0));
        assert_eq!(calls[1].0, ts(1_000));
        // The hook saw exactly what the store persisted.
        let record = rec.record();
        let store = record.read();
        for (call, entry) in calls.iter().zip(store.timeline.entries()) {
            let shot = store.shots.load(entry.screenshot_offset).unwrap();
            assert_eq!(call.1, shot.content_hash());
        }
    }

    #[test]
    fn record_tracks_session_span() {
        let mut rec = DisplayRecorder::new(32, 32, RecorderConfig::default());
        rec.submit(ts(100), &fill(Rect::new(0, 0, 1, 1), 1));
        rec.submit(ts(900), &fill(Rect::new(0, 0, 1, 1), 2));
        let record = rec.record();
        let store = record.read();
        assert_eq!(store.start, Some(ts(100)));
        assert_eq!(store.end, ts(900));
        assert_eq!(store.duration(), Duration::from_millis(800));
    }
}
