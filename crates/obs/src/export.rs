//! Profiling export: JSON serialization and the per-stream breakdown.
//!
//! The JSON format is hand-rolled (the build is offline, no serde) and
//! deterministic: maps are `BTreeMap`-ordered, events are in ring
//! order, and floating-point ratios are printed with a fixed precision
//! — two runs that perform the same operations produce byte-identical
//! exports. This mirrors the flat `BENCH_ci.json` style used by the
//! `reproduce` harness.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::registry::HistogramSnapshot;
use crate::trace::TraceEvent;

/// A full copy of the registry plus the trace ring at one instant.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct ObsSnapshot {
    /// All counters, name-ordered.
    pub counters: BTreeMap<String, u64>,
    /// All gauges, name-ordered.
    pub gauges: BTreeMap<String, u64>,
    /// All histogram snapshots, name-ordered.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
    /// Ring contents, oldest first.
    pub events: Vec<TraceEvent>,
    /// Events evicted from the ring before this snapshot.
    pub dropped_events: u64,
}

/// Aggregated busy time for one stream of the recorder.
#[derive(Clone, PartialEq, Debug)]
pub struct StreamBreakdown {
    /// Stream name (first dot-separated component of the metric name).
    pub stream: String,
    /// Total spans recorded across the stream's histograms.
    pub spans: u64,
    /// Total busy time across the stream's histograms, in nanoseconds.
    pub busy_nanos: u64,
    /// This stream's fraction of all instrumented busy time (0..=1).
    pub share: f64,
}

/// Preferred ordering of the recording streams in reports.
const STREAM_ORDER: [&str; 7] = [
    "display",
    "text",
    "index",
    "checkpoint",
    "lsfs",
    "net",
    "fault",
];

impl ObsSnapshot {
    /// Counter value by name (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Gauge value by name (0 when absent).
    pub fn gauge(&self, name: &str) -> u64 {
        self.gauges.get(name).copied().unwrap_or(0)
    }

    /// Histogram snapshot by name.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.get(name)
    }

    /// Events with the given name, oldest first.
    pub fn events_named<'a>(&'a self, name: &str) -> Vec<&'a TraceEvent> {
        self.events.iter().filter(|e| e.name == name).collect()
    }

    /// Merges another snapshot into this one: counters, gauges, and
    /// dropped-event counts are summed (saturating), histograms are
    /// merged bucket-wise via [`HistogramSnapshot::merge`], and
    /// `other`'s events are appended after this snapshot's. Like the
    /// histogram merge, the operation is associative, so a host-level
    /// rollup folded over per-tenant snapshots equals any
    /// re-association of the same fold.
    pub fn merge(&mut self, other: &ObsSnapshot) {
        for (name, v) in &other.counters {
            let slot = self.counters.entry(name.clone()).or_insert(0);
            *slot = slot.saturating_add(*v);
        }
        for (name, v) in &other.gauges {
            let slot = self.gauges.entry(name.clone()).or_insert(0);
            *slot = slot.saturating_add(*v);
        }
        for (name, h) in &other.histograms {
            let merged = match self.histograms.get(name) {
                Some(mine) => mine.merge(h),
                None => *h,
            };
            self.histograms.insert(name.clone(), merged);
        }
        self.events.extend(other.events.iter().cloned());
        self.dropped_events = self.dropped_events.saturating_add(other.dropped_events);
    }

    /// Aggregates histogram time by stream (the leading dot-separated
    /// component of each histogram name), in report order.
    pub fn stream_breakdown(&self) -> Vec<StreamBreakdown> {
        let mut agg: BTreeMap<&str, (u64, u64)> = BTreeMap::new();
        for (name, h) in &self.histograms {
            let stream = name.split('.').next().unwrap_or(name);
            let entry = agg.entry(stream).or_insert((0, 0));
            entry.0 = entry.0.saturating_add(h.count);
            entry.1 = entry.1.saturating_add(h.sum_nanos);
        }
        let total: u64 = agg.values().map(|(_, busy)| *busy).sum();
        let mut rows: Vec<StreamBreakdown> = agg
            .into_iter()
            .map(|(stream, (spans, busy))| StreamBreakdown {
                stream: stream.to_string(),
                spans,
                busy_nanos: busy,
                share: if total == 0 {
                    0.0
                } else {
                    busy as f64 / total as f64
                },
            })
            .collect();
        rows.sort_by_key(|r| {
            STREAM_ORDER
                .iter()
                .position(|s| *s == r.stream)
                .unwrap_or(STREAM_ORDER.len())
        });
        rows
    }

    /// Renders the per-stream overhead breakdown as an aligned table.
    pub fn render_breakdown(&self) -> String {
        let rows = self.stream_breakdown();
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<12} {:>8} {:>12} {:>10} {:>7}",
            "stream", "spans", "busy ms", "mean us", "share"
        );
        for r in &rows {
            let mean_us = if r.spans == 0 {
                0.0
            } else {
                r.busy_nanos as f64 / r.spans as f64 / 1_000.0
            };
            let _ = writeln!(
                out,
                "{:<12} {:>8} {:>12.3} {:>10.1} {:>6.1}%",
                r.stream,
                r.spans,
                r.busy_nanos as f64 / 1e6,
                mean_us,
                r.share * 100.0
            );
        }
        if rows.is_empty() {
            out.push_str("(no spans recorded)\n");
        }
        out
    }

    /// Serializes the snapshot to deterministic JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str("  \"counters\": {");
        append_u64_map(&mut out, &self.counters);
        out.push_str("  \"gauges\": {");
        append_u64_map(&mut out, &self.gauges);

        out.push_str("  \"histograms\": {");
        let mut first = true;
        for (name, h) in &self.histograms {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(
                out,
                "\n    \"{}\": {{\"count\": {}, \"sum_nanos\": {}, \"min_nanos\": {}, \"max_nanos\": {}, \"buckets\": [",
                escape_json(name),
                h.count,
                h.sum_nanos,
                if h.count == 0 { 0 } else { h.min_nanos },
                h.max_nanos
            );
            for (i, c) in h.counts.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                let _ = write!(out, "{c}");
            }
            out.push_str("]}");
        }
        out.push_str(if self.histograms.is_empty() {
            "},\n"
        } else {
            "\n  },\n"
        });

        out.push_str("  \"shares\": {");
        let rows = self.stream_breakdown();
        let mut first = true;
        for r in &rows {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(out, "\n    \"{}\": {:.6}", escape_json(&r.stream), r.share);
        }
        out.push_str(if rows.is_empty() { "},\n" } else { "\n  },\n" });

        out.push_str("  \"events\": [");
        let mut first = true;
        for e in &self.events {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(
                out,
                "\n    {{\"seq\": {}, \"time_nanos\": {}, \"stream\": \"{}\", \"name\": \"{}\", \"detail\": \"{}\", \"duration_nanos\": {}}}",
                e.seq,
                e.time.as_nanos(),
                escape_json(e.stream),
                escape_json(e.name),
                escape_json(&e.detail),
                e.duration_nanos
            );
        }
        out.push_str(if self.events.is_empty() {
            "],\n"
        } else {
            "\n  ],\n"
        });

        let _ = writeln!(out, "  \"dropped_events\": {}", self.dropped_events);
        out.push_str("}\n");
        out
    }
}

fn append_u64_map(out: &mut String, map: &BTreeMap<String, u64>) {
    let mut first = true;
    for (k, v) in map {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(out, "\n    \"{}\": {}", escape_json(k), v);
    }
    out.push_str(if map.is_empty() { "},\n" } else { "\n  },\n" });
}

/// Escapes a string for inclusion in a JSON string literal.
pub fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dv_time::Timestamp;

    fn hist(count: u64, sum: u64) -> HistogramSnapshot {
        HistogramSnapshot {
            count,
            sum_nanos: sum,
            min_nanos: 1,
            max_nanos: sum,
            ..Default::default()
        }
    }

    #[test]
    fn breakdown_groups_by_stream_prefix() {
        let mut snap = ObsSnapshot::default();
        snap.histograms.insert("lsfs.sync".into(), hist(2, 200));
        snap.histograms.insert("lsfs.blob_put".into(), hist(1, 100));
        snap.histograms
            .insert("checkpoint.capture".into(), hist(1, 700));
        let rows = snap.stream_breakdown();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].stream, "checkpoint", "report order");
        assert_eq!(rows[1].stream, "lsfs");
        assert_eq!(rows[1].spans, 3);
        assert_eq!(rows[1].busy_nanos, 300);
        assert!((rows[1].share - 0.3).abs() < 1e-9);
    }

    #[test]
    fn json_is_deterministic_and_escaped() {
        let mut snap = ObsSnapshot::default();
        snap.counters.insert("a.b".into(), 3);
        snap.events.push(TraceEvent {
            seq: 0,
            time: Timestamp::from_nanos(5),
            stream: "fault",
            name: "fault.injected",
            detail: "say \"hi\"\n".into(),
            duration_nanos: 0,
        });
        let a = snap.to_json();
        let b = snap.to_json();
        assert_eq!(a, b);
        assert!(a.contains("\"a.b\": 3"));
        assert!(a.contains("say \\\"hi\\\"\\n"));
        assert!(a.contains("\"dropped_events\": 0"));
    }

    #[test]
    fn empty_snapshot_serializes() {
        let snap = ObsSnapshot::default();
        let json = snap.to_json();
        assert!(json.starts_with('{'));
        assert!(json.trim_end().ends_with('}'));
        assert_eq!(snap.render_breakdown().lines().count(), 2);
    }
}
