//! Query evaluation fanned out across time shards.
//!
//! Each shard (the open index plus every probed sealed segment) is a
//! complete [`TextIndex`] over one window of time; an instance that
//! stayed visible across a seal appears in consecutive shards with the
//! same id and its original `shown` time, so the union of its
//! per-shard visibility intervals is exactly its global visibility.
//! Leaves (`Term`/`Phrase`/`Any`) therefore union their
//! [`IntervalSet`]s across shards, while the boolean structure —
//! `And`/`Or`/`Not`/`During` and the context modifiers — is applied
//! once, globally. `Not` in particular must complement against the
//! *global* horizon, never per shard: a per-shard complement would
//! claim times a later shard knows nothing about.

use dv_index::{
    contains_phrase, query_terms, snippet_of, IndexedInstance, Interval, IntervalSet, Query,
    RankOrder, SearchHit, TextIndex,
};
use dv_time::{Duration, Timestamp};

/// How long a point annotation is considered visible (mirrors
/// `dv-index`'s query window).
const ANNOTATION_WINDOW_MS: u64 = 1;

/// Context filters accumulated while descending the query tree
/// (mirrors `dv-index`'s evaluation context).
#[derive(Clone, Default, Debug)]
struct Ctx {
    app: Option<String>,
    window: Option<String>,
    focused: bool,
    annotated: bool,
}

impl Ctx {
    fn admits(&self, instance: &IndexedInstance) -> bool {
        if let Some(app) = &self.app {
            if !instance.app.to_lowercase().contains(app) {
                return false;
            }
        }
        if let Some(window) = &self.window {
            if !instance.window.to_lowercase().contains(window) {
                return false;
            }
        }
        if self.annotated && !instance.annotation {
            return false;
        }
        true
    }
}

fn instance_times(shard: &TextIndex, instance: &IndexedInstance, ctx: &Ctx) -> IntervalSet {
    let visible = IntervalSet::from_intervals([shard.visibility(instance)]);
    if ctx.focused {
        visible.intersect(&shard.focus_intervals(instance.app_id))
    } else {
        visible
    }
}

fn leaf_union<'a, F, I>(shards: &[&'a TextIndex], ctx: &Ctx, f: F) -> IntervalSet
where
    F: Fn(&'a TextIndex) -> I,
    I: IntoIterator<Item = &'a IndexedInstance>,
{
    let mut acc = IntervalSet::new();
    for shard in shards {
        for instance in f(shard) {
            if ctx.admits(instance) {
                acc = acc.union(&instance_times(shard, instance, ctx));
            }
        }
    }
    acc
}

/// Evaluates `query` over the shard set to the global set of satisfied
/// times. `horizon` is the latest time any shard knows about.
pub(crate) fn eval_sharded(
    shards: &[&TextIndex],
    horizon: Timestamp,
    query: &Query,
) -> IntervalSet {
    eval(shards, horizon, query, &Ctx::default())
}

fn eval(shards: &[&TextIndex], horizon: Timestamp, query: &Query, ctx: &Ctx) -> IntervalSet {
    match query {
        Query::Any => leaf_union(shards, ctx, |s| s.all_instances()),
        Query::Term(term) => leaf_union(shards, ctx, |s| s.term_instances(term)),
        Query::Phrase(words) => {
            let Some(first) = words.first() else {
                return IntervalSet::new();
            };
            leaf_union(shards, ctx, |s| {
                s.term_instances(first)
                    .into_iter()
                    .filter(|i| contains_phrase(&i.text, words))
            })
        }
        Query::And(a, b) => eval(shards, horizon, a, ctx).intersect(&eval(shards, horizon, b, ctx)),
        Query::Or(a, b) => eval(shards, horizon, a, ctx).union(&eval(shards, horizon, b, ctx)),
        Query::Not(q) => eval(shards, horizon, q, ctx).complement(Timestamp::ZERO, horizon),
        Query::App(name, q) => {
            let mut ctx = ctx.clone();
            ctx.app = Some(name.clone());
            eval(shards, horizon, q, &ctx)
        }
        Query::Window(title, q) => {
            let mut ctx = ctx.clone();
            ctx.window = Some(title.clone());
            eval(shards, horizon, q, &ctx)
        }
        Query::Focused(q) => {
            let mut ctx = ctx.clone();
            ctx.focused = true;
            eval(shards, horizon, q, &ctx)
        }
        Query::Annotated(q) => {
            let mut ctx = ctx.clone();
            ctx.annotated = true;
            eval(shards, horizon, q, &ctx)
        }
        Query::During { from, to, q } => eval(shards, horizon, q, ctx).clip(*from, *to),
    }
}

/// The time window a query can possibly be satisfied in, used to prune
/// the segment probe set. `None` means unbounded (any `Not` — absence
/// is checkable anywhere — or a bare leaf). Conservative by design:
/// pruning only ever shrinks work, never results.
pub(crate) fn query_bounds(query: &Query) -> Option<(Timestamp, Timestamp)> {
    fn meet(
        a: Option<(Timestamp, Timestamp)>,
        b: Option<(Timestamp, Timestamp)>,
    ) -> Option<(Timestamp, Timestamp)> {
        match (a, b) {
            (None, other) | (other, None) => other,
            (Some((s1, e1)), Some((s2, e2))) => {
                let s = s1.max(s2);
                Some((s, e1.min(e2).max(s)))
            }
        }
    }
    match query {
        Query::During { from, to, q } => meet(Some((*from, *to)), query_bounds(q)),
        Query::And(a, b) => meet(query_bounds(a), query_bounds(b)),
        Query::Or(a, b) => match (query_bounds(a), query_bounds(b)) {
            (Some((s1, e1)), Some((s2, e2))) => Some((s1.min(s2), e1.max(e2))),
            _ => None,
        },
        Query::App(_, q) | Query::Window(_, q) | Query::Focused(q) | Query::Annotated(q) => {
            query_bounds(q)
        }
        Query::Any | Query::Term(_) | Query::Phrase(_) | Query::Not(_) => None,
    }
}

/// Visibility of a candidate instance against the *global* horizon
/// (its owning shard may have sealed earlier; the deduped copy we keep
/// is the one with the latest end).
fn visibility_global(instance: &IndexedInstance, horizon: Timestamp) -> Interval {
    if instance.annotation {
        return Interval::new(
            instance.shown,
            instance
                .shown
                .saturating_add(Duration::from_millis(ANNOTATION_WINDOW_MS)),
        );
    }
    let end = instance.hidden.unwrap_or(horizon);
    let end = if end <= instance.shown {
        instance.shown.saturating_add(Duration::from_millis(1))
    } else {
        end
    };
    Interval::new(instance.shown, end)
}

/// Collects the hit candidates for `query` across shards, deduped by
/// instance id. Shards must be ordered oldest-first so a carried
/// instance's most-recent copy (the one with the latest — or still
/// open — end) wins.
fn collect_candidates(shards: &[&TextIndex], query: &Query) -> Vec<IndexedInstance> {
    let terms = query_terms(query);
    let mut by_id: std::collections::BTreeMap<u64, IndexedInstance> = Default::default();
    let mut keep = |inst: &IndexedInstance| {
        by_id.insert(inst.id, inst.clone());
    };
    for shard in shards {
        if terms.is_empty() {
            let mut all: Vec<&IndexedInstance> = shard.all_instances().collect();
            all.sort_by_key(|i| i.id);
            all.into_iter().for_each(&mut keep);
        } else {
            for term in &terms {
                shard.term_instances(term).into_iter().for_each(&mut keep);
            }
        }
    }
    let mut out: Vec<IndexedInstance> = by_id.into_values().collect();
    out.sort_by_key(|i| (i.shown, i.id));
    out
}

/// Builds ranked hits from the globally satisfied interval set — the
/// multi-shard analogue of `dv_index::search`'s hit construction.
pub(crate) fn build_ranked_hits(
    shards: &[&TextIndex],
    satisfied: &IntervalSet,
    query: &Query,
    horizon: Timestamp,
    order: RankOrder,
) -> Vec<SearchHit> {
    let candidates = collect_candidates(shards, query);
    let mut hits: Vec<SearchHit> = satisfied
        .intervals()
        .iter()
        .map(|iv| {
            let mut snippet = String::new();
            let mut apps: Vec<String> = Vec::new();
            let mut matches = 0;
            for instance in &candidates {
                let vis = visibility_global(instance, horizon);
                if vis.start < iv.end && iv.start < vis.end {
                    matches += 1;
                    if snippet.is_empty() {
                        snippet = snippet_of(&instance.text);
                    }
                    if !apps.contains(&instance.app) {
                        apps.push(instance.app.clone());
                    }
                }
            }
            SearchHit {
                time: iv.start,
                until: iv.end,
                persistence: iv.end.saturating_since(iv.start),
                matches,
                snippet,
                apps,
            }
        })
        .collect();
    rank_hits(&mut hits, order);
    hits
}

/// Sorts hits under `order` with the same keys as `dv_index::search`,
/// so a merged multi-shard (or multi-tenant) result list is ordered by
/// global rank.
pub fn rank_hits(hits: &mut [SearchHit], order: RankOrder) {
    rank_by(hits, order, |h| h);
}

/// Sorts any carrier type (e.g. a `(tenant, hit)` pair) by the rank of
/// the [`SearchHit`] that `hit` projects out, with the same keys as
/// `dv_index::search`. A stable sort, so equal-ranked items keep their
/// input order — merge in tenant order for deterministic results.
pub fn rank_by<T>(items: &mut [T], order: RankOrder, hit: impl Fn(&T) -> &SearchHit) {
    match order {
        RankOrder::Chronological => items.sort_by_key(|t| hit(t).time),
        RankOrder::ReverseChronological => items.sort_by_key(|t| std::cmp::Reverse(hit(t).time)),
        RankOrder::PersistenceAscending => items.sort_by_key(|t| hit(t).persistence),
        RankOrder::MatchCount => items.sort_by_key(|t| std::cmp::Reverse(hit(t).matches)),
        RankOrder::PersistenceWeighted => {
            items.sort_by_key(|t| std::cmp::Reverse(RankOrder::weighted_score(hit(t))))
        }
    }
}
