//! Virtual time for the DejaView reproduction.
//!
//! Every stream DejaView records (display commands, text snapshots,
//! checkpoints, file system transactions) is stamped with a session
//! timestamp. The original system used the machine's wall clock; this
//! reproduction separates the *session clock* (which drives workloads and
//! stamps records, and must be deterministic for tests) from the wall
//! clock (used only to measure real engine costs in the benchmarks).
//!
//! The crate provides:
//!
//! * [`Timestamp`] / [`Duration`] — nanosecond-resolution session time.
//! * [`Clock`] — the time source abstraction.
//! * [`SimClock`] — a shared, manually advanced clock for deterministic
//!   simulation.
//! * [`WallClock`] — a thin adapter over [`std::time::Instant`].
//! * [`RateLimiter`] — token-style limiter used by the checkpoint policy
//!   ("at most once per second").
//! * [`PhaseTimer`] — wall-clock stopwatch used to attribute checkpoint
//!   latency to phases (Figure 3).

#![deny(unsafe_code)]

mod clock;
mod rate;
mod sleep;
mod stamp;
mod stopwatch;

pub use clock::{Clock, SharedClock, SimClock, WallClock};
pub use rate::RateLimiter;
pub use sleep::Sleeper;
pub use stamp::{Duration, Timestamp};
pub use stopwatch::{PhaseBreakdown, PhaseTimer};
