//! The experiment harness: regenerates every table and figure of the
//! paper's evaluation (§6).
//!
//! Each `figN_*` function runs the corresponding experiment over the
//! Table 1 scenarios and returns structured rows; the `reproduce` binary
//! prints them in the paper's layout, and the Criterion benches wrap the
//! same functions. Absolute numbers come from real work on a simulator,
//! so the *shapes* — who wins, by what rough factor, where the outliers
//! are — are the reproduction target, as recorded in EXPERIMENTS.md.

#![deny(unsafe_code)]

pub mod experiments;
pub mod report;

pub use experiments::*;
pub use report::*;
