//! The `video` scenario: MPlayer playing a movie trailer full screen.
//!
//! Table 1: "MPlayer 1.0rc1-4.1.2 playing Life of David Gale MPEG2 movie
//! trailer at full-screen resolution". The distinguishing properties §6
//! discusses: one display command per frame at 24 fps (modest command
//! *rate*, large command *size*), a single process creating little new
//! state, and full-screen mode engaging the checkpoint policy's skip
//! rule when no input arrives.

use dejaview::DejaView;
use dv_display::{Rect, YuvFrame};
use dv_time::Duration;
use dv_vee::{Prot, Vpid};

use crate::scenario::Scenario;

/// Decoded frame resolution (scaled to the screen on display).
const FRAME_W: u32 = 640;
const FRAME_H: u32 = 352;

/// The video-playback scenario.
pub struct VideoScenario {
    frames_remaining: u32,
    frame_no: u32,
    player: Option<Vpid>,
    decode_buf: Option<u64>,
}

impl VideoScenario {
    /// Creates the scenario; `scale` = 1.0 plays ~30 seconds (720
    /// frames) of 24 fps video.
    pub fn new(scale: f64) -> Self {
        VideoScenario {
            frames_remaining: ((720.0 * scale).ceil() as u32).max(24),
            frame_no: 0,
            player: None,
            decode_buf: None,
        }
    }

    fn decode_frame(&self) -> YuvFrame {
        // A cheap deterministic "decode": a moving gradient plus noise,
        // so every frame differs everywhere (worst case for deltas).
        let n = self.frame_no;
        let luma: Vec<u8> = (0..(FRAME_W * FRAME_H) as usize)
            .map(|i| {
                let x = i as u32 % FRAME_W;
                let y = i as u32 / FRAME_W;
                ((x + n * 3) ^ (y + n)) as u8
            })
            .collect();
        YuvFrame::from_luma(FRAME_W, FRAME_H, luma)
    }
}

impl Scenario for VideoScenario {
    fn name(&self) -> &'static str {
        "video"
    }

    fn description(&self) -> &'static str {
        "MPlayer 1.0rc1-4.1.2 playing Life of David Gale MPEG2 movie trailer at full-screen resolution"
    }

    fn setup(&mut self, dv: &mut DejaView) {
        let init = dv.init_vpid();
        let player = dv.vee_mut().spawn(Some(init), "mplayer").expect("spawn");
        // Decode buffer: rewritten every frame, so the dirty set per
        // checkpoint stays small and stable.
        let buf = dv
            .vee_mut()
            .mmap(player, (FRAME_W * FRAME_H) as u64 * 2, Prot::ReadWrite)
            .expect("mmap");
        let app = dv.desktop_mut().register_app("mplayer");
        let root = dv.desktop_mut().root(app).expect("registered");
        dv.desktop_mut().add_node(
            app,
            root,
            dv_access::Role::Window,
            "Life of David Gale - mplayer",
        );
        dv.desktop_mut().focus(app);
        dv.set_fullscreen(true);
        self.player = Some(player);
        self.decode_buf = Some(buf);
    }

    fn step(&mut self, dv: &mut DejaView) -> bool {
        self.frame_no += 1;
        let frame = self.decode_frame();
        // The decoder writes the frame into its buffer (real memory
        // work), then hands it to the overlay path: one command per
        // frame covering the whole screen.
        let player = self.player.expect("setup ran");
        dv.vee_mut()
            .mem_write(player, self.decode_buf.expect("setup"), &frame.y)
            .expect("decode write");
        let (w, h) = (dv.driver_mut().width(), dv.driver_mut().height());
        dv.driver_mut().video_frame(Rect::new(0, 0, w, h), frame);
        self.frames_remaining -= 1;
        if self.frames_remaining == 0 {
            dv.set_fullscreen(false);
            return false;
        }
        true
    }

    fn step_duration(&self) -> Duration {
        // 24 frames per second.
        Duration::from_nanos(1_000_000_000 / 24)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{run_scenario, CheckpointMode, RunOptions};
    use dejaview::Config;

    #[test]
    fn video_emits_one_command_per_frame() {
        let mut dv = DejaView::new(Config::default());
        let mut scenario = VideoScenario::new(0.1); // 72 frames = 3s.
        let summary = run_scenario(&mut dv, &mut scenario, RunOptions::default());
        assert_eq!(summary.steps, 72);
        let stats = dv.driver_mut().stats();
        assert_eq!(stats.video_frames, 72);
        // ~24 commands per second: a modest rate.
        assert!(stats.commands < 80);
        assert!(summary.checkpoints >= 2);
    }

    #[test]
    fn video_policy_skips_checkpoints_without_input() {
        let mut dv = DejaView::new(Config::default());
        let mut scenario = VideoScenario::new(0.1);
        let summary = run_scenario(
            &mut dv,
            &mut scenario,
            RunOptions {
                checkpoints: CheckpointMode::Policy,
                ..RunOptions::default()
            },
        );
        // Fullscreen without input: the policy skips everything.
        assert_eq!(summary.checkpoints, 0);
        assert!(dv.policy_stats().fullscreen >= 2);
    }
}
