//! Process address spaces with page-protection-based dirty tracking.
//!
//! DejaView's incremental checkpointing leverages "standard memory
//! protection mechanisms": saved regions are write-protected and marked
//! with a special flag; the first write faults, the handler clears the
//! flag, records the page as modified, and resumes the writer (§5.1.2).
//! Its COW capture marks pages copy-on-write at checkpoint time so the
//! memory copy happens lazily after the session resumes.
//!
//! Both mechanisms are modelled with real costs:
//!
//! * pages are `Arc<PageBuf>`; a checkpoint *capture* clones the `Arc`s
//!   (cheap, proportional to page count, no data copy), and a later
//!   write to a captured page pays the real 4 KiB copy through
//!   `Arc::make_mut` — exactly the deferred COW copy;
//! * write-protect tracking is a set of armed pages; the first write to
//!   an armed page is counted as a fault and marks the page dirty.
//!
//! The region operations the paper intercepts (`mmap`, `munmap`,
//! `mprotect`, `mremap`) adjust the tracking state so dirty accounting
//! stays exact.

use std::collections::{BTreeMap, HashMap, HashSet};
use std::sync::Arc;

/// Page size in bytes.
pub const PAGE_SIZE: usize = 4096;

/// One memory page.
pub type PageBuf = [u8; PAGE_SIZE];

/// Page protection bits (simplified to the write axis the checkpoint
/// machinery cares about; everything mapped is readable).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Prot {
    /// Read-only, set by the application itself.
    ReadOnly,
    /// Readable and writable.
    ReadWrite,
}

/// A mapped memory region.
#[derive(Clone, Debug)]
pub struct MemRegion {
    /// Start address (page-aligned).
    pub start: u64,
    /// Length in bytes (page multiple).
    pub len: u64,
    /// Application-visible protection.
    pub prot: Prot,
}

impl MemRegion {
    /// Returns the exclusive end address.
    pub fn end(&self) -> u64 {
        self.start + self.len
    }

    fn contains(&self, addr: u64) -> bool {
        addr >= self.start && addr < self.end()
    }
}

/// A memory access fault.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MemFault {
    /// The address is not mapped.
    NotMapped,
    /// A write hit a genuinely read-only region (the application gets a
    /// SIGSEGV; the tracking path never surfaces this).
    WriteProtected,
}

/// Cumulative address-space statistics.
#[derive(Clone, Copy, Debug, Default)]
pub struct MemStats {
    /// Write-protect faults taken for dirty tracking.
    pub tracking_faults: u64,
    /// Pages physically copied by deferred COW after a capture.
    pub cow_copies: u64,
}

/// A process address space.
#[derive(Clone, Debug, Default)]
pub struct AddressSpace {
    regions: BTreeMap<u64, MemRegion>,
    pages: HashMap<u64, Arc<PageBuf>>,
    /// Pages currently armed for dirty tracking.
    armed: HashSet<u64>,
    /// Pages written since the last incremental checkpoint.
    dirty: HashSet<u64>,
    /// Whether tracking is active (affects writes to not-yet-allocated
    /// pages of writable regions).
    tracking: bool,
    next_addr: u64,
    stats: MemStats,
}

fn page_of(addr: u64) -> u64 {
    addr & !(PAGE_SIZE as u64 - 1)
}

fn round_up(len: u64) -> u64 {
    len.div_ceil(PAGE_SIZE as u64) * PAGE_SIZE as u64
}

impl AddressSpace {
    /// Creates an empty address space.
    pub fn new() -> Self {
        AddressSpace {
            next_addr: 0x1000_0000,
            ..AddressSpace::default()
        }
    }

    /// Returns the mapped regions in address order.
    pub fn regions(&self) -> impl Iterator<Item = &MemRegion> {
        self.regions.values()
    }

    /// Returns the number of resident (allocated) pages.
    pub fn resident_pages(&self) -> usize {
        self.pages.len()
    }

    /// Returns total mapped bytes.
    pub fn mapped_bytes(&self) -> u64 {
        self.regions.values().map(|r| r.len).sum()
    }

    /// Returns cumulative statistics.
    pub fn stats(&self) -> MemStats {
        self.stats
    }

    fn region_of(&self, addr: u64) -> Option<&MemRegion> {
        self.regions
            .range(..=addr)
            .next_back()
            .map(|(_, r)| r)
            .filter(|r| r.contains(addr))
    }

    /// Maps `len` bytes (rounded up to pages) with the given protection,
    /// returning the start address.
    ///
    /// # Panics
    ///
    /// Panics if `len` is zero.
    pub fn mmap(&mut self, len: u64, prot: Prot) -> u64 {
        assert!(len > 0, "cannot map zero bytes");
        let len = round_up(len);
        let start = self.next_addr;
        self.next_addr += len + PAGE_SIZE as u64; // Guard gap.
        self.regions.insert(start, MemRegion { start, len, prot });
        start
    }

    /// Unmaps `[addr, addr+len)`; must exactly match one mapped region
    /// (the common application pattern; partial unmap is not modelled).
    ///
    /// Returns `false` if no such region exists.
    pub fn munmap(&mut self, addr: u64, len: u64) -> bool {
        let len = round_up(len);
        match self.regions.get(&addr) {
            Some(r) if r.len == len => {}
            _ => return false,
        }
        self.regions.remove(&addr);
        let mut page = addr;
        while page < addr + len {
            self.pages.remove(&page);
            self.armed.remove(&page);
            self.dirty.remove(&page);
            page += PAGE_SIZE as u64;
        }
        true
    }

    /// Changes a region's protection. Making a tracked region read-only
    /// un-arms its pages "to ensure that future exceptions will be
    /// propagated to the application" (§5.1.2); making it writable again
    /// conservatively marks its pages dirty (writes can no longer fault
    /// for tracking).
    ///
    /// Returns `false` if no region starts at `addr`.
    pub fn mprotect(&mut self, addr: u64, prot: Prot) -> bool {
        let Some(region) = self.regions.get_mut(&addr) else {
            return false;
        };
        let (start, end) = (region.start, region.end());
        let old = region.prot;
        region.prot = prot;
        if old == prot {
            return true;
        }
        let mut page = start;
        while page < end {
            match prot {
                Prot::ReadOnly => {
                    self.armed.remove(&page);
                }
                Prot::ReadWrite => {
                    if self.tracking {
                        self.dirty.insert(page);
                    }
                }
            }
            page += PAGE_SIZE as u64;
        }
        true
    }

    /// Grows or shrinks the region starting at `addr`, relocating it
    /// (like `MREMAP_MAYMOVE`) when growing would collide with a
    /// neighbouring mapping. Returns the region's (possibly new) start
    /// address, or `None` if no region starts at `addr`.
    pub fn mremap(&mut self, addr: u64, new_len: u64) -> Option<u64> {
        let new_len = round_up(new_len.max(PAGE_SIZE as u64));
        let old_len = self.regions.get(&addr)?.len;
        if new_len <= old_len {
            let region = self.regions.get_mut(&addr).expect("checked above");
            region.len = new_len;
            let mut page = addr + new_len;
            while page < addr + old_len {
                self.pages.remove(&page);
                self.armed.remove(&page);
                self.dirty.remove(&page);
                page += PAGE_SIZE as u64;
            }
            return Some(addr);
        }
        // Growing: stay in place when the guard gap allows, move
        // otherwise.
        let next_start = self
            .regions
            .range(addr + 1..)
            .next()
            .map(|(s, _)| *s)
            .unwrap_or(u64::MAX);
        if addr + new_len <= next_start {
            self.regions.get_mut(&addr).expect("checked above").len = new_len;
            self.next_addr = self.next_addr.max(addr + new_len + PAGE_SIZE as u64);
            return Some(addr);
        }
        let prot = self.regions.get(&addr).expect("checked above").prot;
        let new_start = self.next_addr;
        self.next_addr += new_len + PAGE_SIZE as u64;
        self.regions.remove(&addr);
        self.regions.insert(
            new_start,
            MemRegion {
                start: new_start,
                len: new_len,
                prot,
            },
        );
        // Move pages and their tracking state to the new range.
        let mut offset = 0;
        while offset < old_len {
            let old_page = addr + offset;
            let new_page = new_start + offset;
            if let Some(buf) = self.pages.remove(&old_page) {
                self.pages.insert(new_page, buf);
            }
            if self.armed.remove(&old_page) {
                self.armed.insert(new_page);
            }
            if self.dirty.remove(&old_page) {
                self.dirty.insert(new_page);
            }
            offset += PAGE_SIZE as u64;
        }
        Some(new_start)
    }

    /// Reads `len` bytes at `addr`; unallocated pages read as zeros.
    ///
    /// # Errors
    ///
    /// Faults with [`MemFault::NotMapped`] if the range is not fully
    /// mapped.
    pub fn read(&self, addr: u64, len: usize) -> Result<Vec<u8>, MemFault> {
        let mut out = Vec::with_capacity(len);
        let mut cur = addr;
        let end = addr + len as u64;
        while cur < end {
            if self.region_of(cur).is_none() {
                return Err(MemFault::NotMapped);
            }
            let page = page_of(cur);
            let take = ((page + PAGE_SIZE as u64).min(end) - cur) as usize;
            match self.pages.get(&page) {
                Some(buf) => {
                    let off = (cur - page) as usize;
                    out.extend_from_slice(&buf[off..off + take]);
                }
                None => out.extend(std::iter::repeat_n(0u8, take)),
            }
            cur += take as u64;
        }
        Ok(out)
    }

    /// Writes `data` at `addr`, taking tracking faults and COW copies as
    /// needed.
    ///
    /// # Errors
    ///
    /// Faults if the range is unmapped or the region is read-only.
    pub fn write(&mut self, addr: u64, data: &[u8]) -> Result<(), MemFault> {
        // Validate the whole range first so partial writes never happen.
        let end = addr + data.len() as u64;
        let mut cur = addr;
        while cur < end {
            match self.region_of(cur) {
                None => return Err(MemFault::NotMapped),
                Some(r) if r.prot == Prot::ReadOnly => return Err(MemFault::WriteProtected),
                Some(r) => cur = r.end(),
            }
        }
        let mut cur = addr;
        while cur < end {
            let page = page_of(cur);
            // The write-protect tracking fault path.
            if self.armed.remove(&page) {
                self.stats.tracking_faults += 1;
                self.dirty.insert(page);
            } else if self.tracking && !self.pages.contains_key(&page) {
                // First-ever write to a fresh page while tracking.
                self.dirty.insert(page);
            }
            let off = (cur - page) as usize;
            let take = (PAGE_SIZE - off).min((end - cur) as usize);
            let entry = self
                .pages
                .entry(page)
                .or_insert_with(|| Arc::new([0u8; PAGE_SIZE]));
            if Arc::strong_count(entry) > 1 {
                // Deferred COW copy: a checkpoint capture still holds
                // this page; pay the real copy now.
                self.stats.cow_copies += 1;
            }
            let buf = Arc::make_mut(entry);
            buf[off..off + take].copy_from_slice(&data[(cur - addr) as usize..][..take]);
            cur += take as u64;
        }
        Ok(())
    }

    /// Arms dirty tracking on every page of every writable region (the
    /// full-checkpoint write-protect pass) and clears the dirty set.
    pub fn arm_tracking(&mut self) {
        self.tracking = true;
        self.armed.clear();
        self.dirty.clear();
        for region in self.regions.values() {
            if region.prot != Prot::ReadWrite {
                continue;
            }
            let mut page = region.start;
            while page < region.end() {
                if self.pages.contains_key(&page) {
                    self.armed.insert(page);
                }
                page += PAGE_SIZE as u64;
            }
        }
    }

    /// Re-arms tracking on the currently dirty pages and returns them —
    /// the incremental-checkpoint handoff.
    pub fn take_dirty(&mut self) -> Vec<u64> {
        let mut dirty: Vec<u64> = self.dirty.drain().collect();
        dirty.sort_unstable();
        for &page in &dirty {
            if self.pages.contains_key(&page)
                && self
                    .region_of(page)
                    .is_some_and(|r| r.prot == Prot::ReadWrite)
            {
                self.armed.insert(page);
            }
        }
        dirty
    }

    /// Returns every resident page address, sorted.
    pub fn resident_page_addrs(&self) -> Vec<u64> {
        let mut addrs: Vec<u64> = self.pages.keys().copied().collect();
        addrs.sort_unstable();
        addrs
    }

    /// Captures the given pages by reference (the COW capture): cheap
    /// `Arc` clones, no data copy. Missing pages capture as `None`
    /// (zero pages).
    pub fn capture_pages(&self, addrs: &[u64]) -> Vec<(u64, Option<Arc<PageBuf>>)> {
        addrs
            .iter()
            .map(|&a| (a, self.pages.get(&a).cloned()))
            .collect()
    }

    /// Installs page contents during restore.
    pub fn install_page(&mut self, addr: u64, data: Arc<PageBuf>) {
        self.pages.insert(addr, data);
    }

    /// Installs a region during restore.
    pub fn install_region(&mut self, region: MemRegion) {
        self.next_addr = self.next_addr.max(region.end() + PAGE_SIZE as u64);
        self.regions.insert(region.start, region);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mmap_read_write_round_trip() {
        let mut mem = AddressSpace::new();
        let addr = mem.mmap(10_000, Prot::ReadWrite);
        mem.write(addr + 100, b"hello pages").unwrap();
        assert_eq!(mem.read(addr + 100, 11).unwrap(), b"hello pages");
        assert_eq!(mem.read(addr, 4).unwrap(), vec![0; 4], "untouched is zero");
    }

    #[test]
    fn writes_span_pages() {
        let mut mem = AddressSpace::new();
        let addr = mem.mmap(3 * PAGE_SIZE as u64, Prot::ReadWrite);
        let data: Vec<u8> = (0..PAGE_SIZE * 2).map(|i| (i % 251) as u8).collect();
        mem.write(addr + 100, &data).unwrap();
        assert_eq!(mem.read(addr + 100, data.len()).unwrap(), data);
        assert_eq!(mem.resident_pages(), 3);
    }

    #[test]
    fn unmapped_and_readonly_fault() {
        let mut mem = AddressSpace::new();
        assert_eq!(mem.write(0x10, b"x"), Err(MemFault::NotMapped));
        let ro = mem.mmap(PAGE_SIZE as u64, Prot::ReadOnly);
        assert_eq!(mem.write(ro, b"x"), Err(MemFault::WriteProtected));
        assert!(mem.read(ro, 8).is_ok());
    }

    #[test]
    fn munmap_requires_exact_region_and_clears() {
        let mut mem = AddressSpace::new();
        let addr = mem.mmap(2 * PAGE_SIZE as u64, Prot::ReadWrite);
        mem.write(addr, b"data").unwrap();
        assert!(!mem.munmap(addr, PAGE_SIZE as u64));
        assert!(mem.munmap(addr, 2 * PAGE_SIZE as u64));
        assert_eq!(mem.read(addr, 1), Err(MemFault::NotMapped));
        assert_eq!(mem.resident_pages(), 0);
    }

    #[test]
    fn dirty_tracking_catches_writes() {
        let mut mem = AddressSpace::new();
        let addr = mem.mmap(4 * PAGE_SIZE as u64, Prot::ReadWrite);
        mem.write(addr, &[1; PAGE_SIZE * 4]).unwrap();
        mem.arm_tracking();
        // Touch pages 1 and 3 only.
        mem.write(addr + PAGE_SIZE as u64, b"x").unwrap();
        mem.write(addr + 3 * PAGE_SIZE as u64 + 7, b"y").unwrap();
        let dirty = mem.take_dirty();
        assert_eq!(
            dirty,
            vec![addr + PAGE_SIZE as u64, addr + 3 * PAGE_SIZE as u64]
        );
        assert_eq!(mem.stats().tracking_faults, 2);
    }

    #[test]
    fn one_fault_per_page_between_checkpoints() {
        let mut mem = AddressSpace::new();
        let addr = mem.mmap(PAGE_SIZE as u64, Prot::ReadWrite);
        mem.write(addr, b"seed").unwrap();
        mem.arm_tracking();
        for i in 0..100 {
            mem.write(addr + i, &[i as u8]).unwrap();
        }
        assert_eq!(mem.stats().tracking_faults, 1);
        assert_eq!(mem.take_dirty().len(), 1);
    }

    #[test]
    fn fresh_pages_count_dirty_while_tracking() {
        let mut mem = AddressSpace::new();
        let addr = mem.mmap(8 * PAGE_SIZE as u64, Prot::ReadWrite);
        mem.arm_tracking();
        mem.write(addr + 5 * PAGE_SIZE as u64, b"new").unwrap();
        assert_eq!(mem.take_dirty(), vec![addr + 5 * PAGE_SIZE as u64]);
    }

    #[test]
    fn take_dirty_rearms() {
        let mut mem = AddressSpace::new();
        let addr = mem.mmap(PAGE_SIZE as u64, Prot::ReadWrite);
        mem.write(addr, b"1").unwrap();
        mem.arm_tracking();
        mem.write(addr, b"2").unwrap();
        assert_eq!(mem.take_dirty().len(), 1);
        assert!(mem.take_dirty().is_empty(), "clean until written again");
        mem.write(addr, b"3").unwrap();
        assert_eq!(mem.take_dirty().len(), 1, "re-armed page faults again");
    }

    #[test]
    fn mprotect_interactions_with_tracking() {
        let mut mem = AddressSpace::new();
        let addr = mem.mmap(PAGE_SIZE as u64, Prot::ReadWrite);
        mem.write(addr, b"x").unwrap();
        mem.arm_tracking();
        // App makes it read-only: tracking must disarm so the app sees
        // real faults.
        mem.mprotect(addr, Prot::ReadOnly);
        assert_eq!(mem.write(addr, b"y"), Err(MemFault::WriteProtected));
        // Back to read-write: conservatively dirty.
        mem.mprotect(addr, Prot::ReadWrite);
        assert!(mem.take_dirty().contains(&addr));
    }

    #[test]
    fn munmap_removes_from_incremental_state() {
        let mut mem = AddressSpace::new();
        let addr = mem.mmap(PAGE_SIZE as u64, Prot::ReadWrite);
        mem.write(addr, b"x").unwrap();
        mem.arm_tracking();
        mem.write(addr, b"y").unwrap();
        mem.munmap(addr, PAGE_SIZE as u64);
        assert!(mem.take_dirty().is_empty(), "unmapped pages are not saved");
    }

    #[test]
    fn mremap_shrink_drops_tail_grow_keeps_data() {
        let mut mem = AddressSpace::new();
        let addr = mem.mmap(4 * PAGE_SIZE as u64, Prot::ReadWrite);
        mem.write(addr, &[7; 4 * PAGE_SIZE]).unwrap();
        assert_eq!(mem.mremap(addr, 2 * PAGE_SIZE as u64), Some(addr));
        assert_eq!(
            mem.read(addr + 3 * PAGE_SIZE as u64, 1),
            Err(MemFault::NotMapped)
        );
        assert_eq!(mem.mremap(addr, 4 * PAGE_SIZE as u64), Some(addr));
        assert_eq!(mem.read(addr, 1).unwrap(), vec![7], "kept prefix");
        assert_eq!(
            mem.read(addr + 3 * PAGE_SIZE as u64, 1).unwrap(),
            vec![0],
            "regrown tail is zero"
        );
    }

    #[test]
    fn cow_capture_defers_the_copy() {
        let mut mem = AddressSpace::new();
        let addr = mem.mmap(2 * PAGE_SIZE as u64, Prot::ReadWrite);
        mem.write(addr, &[9; 2 * PAGE_SIZE]).unwrap();
        let pages = mem.resident_page_addrs();
        let captured = mem.capture_pages(&pages);
        assert_eq!(mem.stats().cow_copies, 0, "capture copies nothing");
        // Post-resume write pays the copy; the capture stays intact.
        mem.write(addr, b"changed").unwrap();
        assert_eq!(mem.stats().cow_copies, 1);
        let (first_addr, first_page) = &captured[0];
        assert_eq!(*first_addr, addr);
        assert_eq!(first_page.as_ref().unwrap()[0], 9, "capture unchanged");
        assert_eq!(mem.read(addr, 7).unwrap(), b"changed");
    }

    #[test]
    fn capture_of_unallocated_page_is_none() {
        let mut mem = AddressSpace::new();
        let addr = mem.mmap(PAGE_SIZE as u64, Prot::ReadWrite);
        let captured = mem.capture_pages(&[addr]);
        assert!(captured[0].1.is_none());
    }
}
