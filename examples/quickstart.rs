//! Quickstart: record a tiny desktop session, then play back, search,
//! and revive it.
//!
//! Run with: `cargo run --example quickstart`

use dejaview::{Config, DejaView};
use dv_access::Role;
use dv_display::{rgb, Rect};
use dv_index::RankOrder;
use dv_time::{Duration, Timestamp};

fn main() {
    // A DejaView server owns the whole recording stack: virtual display,
    // accessibility capture + text index, checkpointed execution
    // environment, snapshotting file system.
    let mut dv = DejaView::new(Config::default());
    let clock = dv.clock();

    // --- A user session: an editor writes a shopping list. -------------
    let init = dv.init_vpid();
    let _editor_proc = dv.vee_mut().spawn(Some(init), "editor").unwrap();
    dv.vee_mut().fs.mkdir_all("/home/user").unwrap();

    let app = dv.desktop_mut().register_app("editor");
    let root = dv.desktop_mut().root(app).unwrap();
    let win = dv
        .desktop_mut()
        .add_node(app, root, Role::Window, "shopping.txt - editor");
    let para = dv
        .desktop_mut()
        .add_node(app, win, Role::Paragraph, "shopping: milk eggs bread");
    dv.desktop_mut().focus(app);

    dv.driver_mut()
        .fill_rect(Rect::new(0, 0, 1024, 768), rgb(24, 24, 32));
    dv.driver_mut()
        .draw_text(20, 20, "shopping: milk eggs bread", 0xFFFFFF, 0);
    dv.vee_mut()
        .fs
        .write_all("/home/user/shopping.txt", b"milk eggs bread")
        .unwrap();

    // Time passes; the checkpoint policy records the session.
    clock.advance(Duration::from_secs(1));
    let tick = dv.policy_tick().unwrap();
    println!("policy decision: {:?}", tick.decision);
    if let Some(report) = &tick.report {
        println!(
            "checkpoint #{} took {} downtime ({} pages saved)",
            report.counter, report.downtime, report.pages_saved
        );
    }

    // The user edits the list and the session moves on.
    dv.desktop_mut()
        .set_text(app, para, "shopping: milk eggs bread coffee");
    dv.driver_mut()
        .draw_text(20, 20, "shopping: milk eggs bread coffee", 0xFFFF00, 0);
    dv.vee_mut()
        .fs
        .write_all("/home/user/shopping.txt", b"milk eggs bread coffee")
        .unwrap();
    clock.advance(Duration::from_secs(1));
    dv.policy_tick().unwrap();

    // --- Playback: reconstruct any moment of the display record. -------
    let shot = dv.browse(Timestamp::from_millis(500)).unwrap();
    println!(
        "browse t=0.5s -> {}x{} screenshot, hash {:#018x}",
        shot.width,
        shot.height,
        shot.content_hash()
    );

    // --- WYSIWYS search: find when "coffee" was on screen. --------------
    let results = dv.search("coffee", RankOrder::Chronological).unwrap();
    println!("search \"coffee\": {} hit(s)", results.len());
    for r in &results {
        println!(
            "  at {} for {} — snippet: {:?} (apps: {:?})",
            r.hit.time, r.hit.persistence, r.hit.snippet, r.hit.apps
        );
    }

    // --- Take me back: revive the session before the edit. -------------
    let session_id = dv.take_me_back(Timestamp::from_secs(1)).unwrap();
    let session = dv.session(session_id).unwrap();
    let old = session.vee.fs.read_all("/home/user/shopping.txt").unwrap();
    println!(
        "revived session {} from checkpoint {}: shopping.txt = {:?}",
        session_id,
        session.counter,
        String::from_utf8_lossy(&old)
    );
    assert_eq!(old, b"milk eggs bread");

    // The live session is unaffected.
    let live = dv.vee().fs.read_all("/home/user/shopping.txt").unwrap();
    assert_eq!(live, b"milk eggs bread coffee");
    println!(
        "live session still reads: {:?}",
        String::from_utf8_lossy(&live)
    );

    let storage = dv.storage();
    println!(
        "storage: display {} B, index {} B, checkpoints {} B, fs {} B",
        storage.display_bytes,
        storage.index_bytes,
        storage.checkpoint_stored_bytes,
        storage.fs_bytes
    );
}
