//! Revive: rebuilding a session from a checkpoint chain.
//!
//! §5.2: a new virtual execution environment is created, the file system
//! view is restored (by the caller, who mounts a union over the snapshot
//! matching the image counter), "a forest of processes is created to
//! match the set of processes in the user's session", and each restores
//! its state from the image — walking the incremental chain for memory
//! pages. External stateful connections are reset, internal and
//! stateless ones restored, and network access follows the revive
//! policy.

use std::collections::HashMap;
use std::sync::Arc;

use dv_lsfs::{BlobStore, Filesystem, FsError};
use dv_time::SharedClock;
use dv_vee::{
    FdObject, HostPidAllocator, PageBuf, Process, Proto, RunState, Signal, SockState, Socket,
    SocketTable, Vee, Vpid,
};

use crate::compress::decompress;
use crate::image::{decode_image, CheckpointImage, FdRecord, ImageError};

/// Per-application network policy applied when reviving (§5.2: network
/// access is disabled by default; the user can re-enable per app).
#[derive(Clone, Debug)]
pub struct NetworkPolicy {
    /// Session-wide default for restored applications.
    pub default_enabled: bool,
    /// Overrides by program name.
    pub per_app: HashMap<String, bool>,
    /// Whether applications launched *after* revive get network access.
    pub new_apps_enabled: bool,
}

impl Default for NetworkPolicy {
    fn default() -> Self {
        NetworkPolicy {
            default_enabled: false,
            per_app: HashMap::new(),
            new_apps_enabled: true,
        }
    }
}

impl NetworkPolicy {
    fn allows(&self, app: &str) -> bool {
        self.per_app
            .get(app)
            .copied()
            .unwrap_or(self.default_enabled)
    }
}

/// Errors from the revive path.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ReviveError {
    /// A required image blob is missing from the store.
    MissingImage(u64),
    /// An image failed to decompress.
    BadCompression(u64),
    /// An image failed to decode.
    BadImage(ImageError),
    /// A file in the image could not be reopened in the restored view.
    FileRestore(String, FsError),
}

impl std::fmt::Display for ReviveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReviveError::MissingImage(c) => write!(f, "checkpoint image {c} missing"),
            ReviveError::BadCompression(c) => {
                write!(f, "checkpoint image {c} corrupt (compression)")
            }
            ReviveError::BadImage(e) => write!(f, "checkpoint image corrupt: {e}"),
            ReviveError::FileRestore(path, e) => write!(f, "cannot restore file {path}: {e}"),
        }
    }
}

impl std::error::Error for ReviveError {}

/// Statistics for one revive.
#[derive(Clone, Copy, Debug, Default)]
pub struct ReviveReport {
    /// Images read (1 for a full checkpoint, more for incrementals).
    pub images_loaded: usize,
    /// Processes recreated.
    pub processes: usize,
    /// Pages installed.
    pub pages_installed: usize,
    /// TCP connections reset.
    pub connections_reset: usize,
    /// Files reopened.
    pub files_reopened: usize,
}

/// Loads and decodes one image blob.
pub fn load_image(
    store: &mut BlobStore,
    blob_prefix: &str,
    counter: u64,
    compressed: bool,
) -> Result<CheckpointImage, ReviveError> {
    let blob = format!("{blob_prefix}-{counter:08}");
    let data = store.get(&blob).ok_or(ReviveError::MissingImage(counter))?;
    let raw;
    let bytes: &[u8] = if compressed {
        raw = decompress(&data).ok_or(ReviveError::BadCompression(counter))?;
        &raw
    } else {
        &data
    };
    decode_image(bytes).map_err(ReviveError::BadImage)
}

/// Revives a session from the image chain `chain` (as produced by
/// [`crate::engine::Checkpointer::chain_for`], oldest first, ending at
/// the target counter).
///
/// `fs` is the writable view of the file system snapshot matching the
/// target counter — a union branch mounted by the session manager.
#[allow(clippy::too_many_arguments)]
pub fn revive(
    store: &mut BlobStore,
    blob_prefix: &str,
    chain: &[u64],
    compressed: bool,
    vee_id: u64,
    clock: SharedClock,
    mut fs: Box<dyn Filesystem>,
    host_pids: HostPidAllocator,
    policy: &NetworkPolicy,
) -> Result<(Vee, ReviveReport), ReviveError> {
    assert!(!chain.is_empty(), "revive needs at least one image");
    let mut report = ReviveReport::default();

    // Read every image in the chain; the newest version of each page
    // wins ("reiterating this sequence as necessary, until the complete
    // state of the desktop session has been reinstated").
    let mut images = Vec::with_capacity(chain.len());
    for &counter in chain {
        images.push(load_image(store, blob_prefix, counter, compressed)?);
        report.images_loaded += 1;
    }
    let target = images.last().expect("non-empty chain");

    // Page resolution: walk oldest -> newest, newer pages overwrite.
    let mut page_map: HashMap<(u64, u64), Arc<PageBuf>> = HashMap::new();
    for image in &images {
        for proc_rec in &image.processes {
            for (addr, page) in &proc_rec.pages {
                page_map.insert((proc_rec.vpid, *addr), page.clone());
            }
        }
    }

    // Restore sockets with the reset policy.
    let mut sockets = SocketTable::new();
    for s in &target.sockets {
        let proto = if s.proto == 0 { Proto::Tcp } else { Proto::Udp };
        let mut state = match s.state {
            1 => SockState::Connected,
            2 => SockState::Reset,
            _ => SockState::Unconnected,
        };
        let external = match &s.remote {
            Some((host, _)) => host != "localhost" && host != "127.0.0.1",
            None => false,
        };
        // Stateful external connections are dropped; internal and
        // stateless sockets restore precisely.
        if proto == Proto::Tcp && external && state == SockState::Connected {
            state = SockState::Reset;
            report.connections_reset += 1;
        }
        sockets.install(Socket {
            id: s.id,
            proto,
            local_port: s.local_port,
            remote: s.remote.clone(),
            state,
            tx_bytes: s.tx_bytes,
            rx_bytes: s.rx_bytes,
        });
    }

    // Recreate the process forest. Files are reopened against the
    // restored file system view; relinked orphans are reopened from
    // their hidden names and immediately unlinked again, restoring
    // checkpoint-time state.
    let mut restored_processes = Vec::with_capacity(target.processes.len());
    for proc_rec in &target.processes {
        let host_pid = host_pids.allocate();
        let mut process = Process::new(
            Vpid(proc_rec.vpid),
            host_pid,
            proc_rec.parent.map(Vpid),
            &proc_rec.name,
        );
        process.regs = proc_rec.regs;
        process.fpu = proc_rec.fpu;
        process.sched = proc_rec.sched;
        process.creds = proc_rec.creds;
        process.signals.blocked = proc_rec.blocked;
        process.signals.handled = proc_rec.handled;
        for sig in &proc_rec.pending {
            if let Some(sig) = Signal::from_u8(*sig) {
                process.signals.pending.push_back(sig);
            }
        }
        process.ptraced_by = proc_rec.ptraced_by.map(Vpid);
        process.cwd = proc_rec.cwd.clone();
        process.net_allowed = policy.allows(&proc_rec.name);
        process.state = RunState::Runnable;

        for region in &proc_rec.regions {
            process.mem.install_region(region.clone());
        }
        for region in &proc_rec.regions {
            let mut addr = region.start;
            while addr < region.end() {
                if let Some(page) = page_map.get(&(proc_rec.vpid, addr)) {
                    process.mem.install_page(addr, page.clone());
                    report.pages_installed += 1;
                }
                addr += dv_vee::PAGE_SIZE as u64;
            }
        }

        for fd_rec in &proc_rec.fds {
            match fd_rec {
                FdRecord::File {
                    fd,
                    path,
                    offset,
                    unlinked,
                    relink,
                } => {
                    let open_path = relink.as_deref().unwrap_or(path.as_str());
                    let handle = fs
                        .open(open_path)
                        .map_err(|e| ReviveError::FileRestore(open_path.to_string(), e))?;
                    if relink.is_some() {
                        // "Opens the files and immediately unlinks them,
                        // restoring the state to what it was at the time
                        // of the checkpoint."
                        fs.unlink(open_path)
                            .map_err(|e| ReviveError::FileRestore(open_path.to_string(), e))?;
                    }
                    process.fds.install(
                        *fd,
                        FdObject::File {
                            path: path.clone(),
                            handle,
                            offset: *offset,
                            unlinked: *unlinked,
                        },
                    );
                    report.files_reopened += 1;
                }
                FdRecord::Socket { fd, id } => {
                    process.fds.install(*fd, FdObject::Socket { id: *id });
                }
            }
        }
        restored_processes.push(process);
        report.processes += 1;
    }

    // Assemble the new virtual execution environment.
    let mut vee = Vee::new(vee_id, clock, fs, host_pids);
    vee.namespace.hostname = target.hostname.clone();
    vee.set_network_enabled(policy.default_enabled);
    vee.net_default = policy.new_apps_enabled;
    vee.sockets = sockets;
    for process in restored_processes {
        vee.install_process(process);
    }
    Ok((vee, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{Checkpointer, EngineConfig};
    use dv_lsfs::{Lsfs, SharedBlobStore};
    use dv_time::{Duration, SimClock};
    use dv_vee::Prot;

    /// Builds a session, mutates it over several checkpoints, and
    /// returns everything needed to revive.
    fn session() -> (Vee, SimClock, Checkpointer, SharedBlobStore) {
        let clock = SimClock::new();
        let vee = Vee::new(1, clock.shared(), Box::new(Lsfs::new()), host_pids());
        let engine = Checkpointer::with_sim_clock(
            EngineConfig {
                full_every: 3,
                ..EngineConfig::default()
            },
            clock.clone(),
        );
        (vee, clock, engine, SharedBlobStore::in_memory())
    }

    /// One "machine"-wide host PID allocator shared by the original and
    /// revived environments, as on a real host.
    fn host_pids() -> HostPidAllocator {
        thread_local! {
            static ALLOC: HostPidAllocator = HostPidAllocator::new();
        }
        ALLOC.with(|a| a.clone())
    }

    fn revive_fs() -> Box<dyn Filesystem> {
        // Tests that don't exercise files can revive over a scratch fs.
        Box::new(Lsfs::new())
    }

    #[test]
    fn revive_restores_process_forest_and_memory() {
        let (mut vee, clock, mut engine, store) = session();
        let init = vee.spawn(None, "session-init").unwrap();
        let child = vee.spawn(Some(init), "editor").unwrap();
        let addr = vee.mmap(child, 8 * 4096, Prot::ReadWrite).unwrap();
        vee.mem_write(child, addr, b"document text v1").unwrap();
        vee.process_mut(child).unwrap().regs.pc = 0x1234;
        engine.checkpoint(&mut vee, &store).unwrap();
        // Mutate after the checkpoint: the revive must not see this.
        vee.mem_write(child, addr, b"DOCUMENT TEXT V2").unwrap();

        let chain = engine.chain_for(1).unwrap();
        let (revived, report) = revive(
            &mut store.lock(),
            "ckpt",
            &chain,
            false,
            2,
            clock.shared(),
            revive_fs(),
            host_pids(),
            &NetworkPolicy::default(),
        )
        .unwrap();
        assert_eq!(report.processes, 2);
        assert_eq!(revived.process_count(), 2);
        let p = revived.process(child).unwrap();
        assert_eq!(p.name, "editor");
        assert_eq!(p.parent, Some(init));
        assert_eq!(p.regs.pc, 0x1234);
        assert_eq!(p.state, RunState::Runnable);
        assert_eq!(
            revived.mem_read(child, addr, 16).unwrap(),
            b"document text v1"
        );
        // Virtual pids identical, host pids fresh.
        assert_eq!(
            revived.namespace.host_pid(child).is_some(),
            vee.namespace.host_pid(child).is_some()
        );
        assert_ne!(
            revived.process(child).unwrap().host_pid,
            vee.process(child).unwrap().host_pid
        );
    }

    #[test]
    fn revive_from_incremental_chain_merges_pages() {
        let (mut vee, clock, mut engine, store) = session();
        let p = vee.spawn(None, "app").unwrap();
        let addr = vee.mmap(p, 4 * 4096, Prot::ReadWrite).unwrap();
        vee.mem_write(p, addr, &[1u8; 4 * 4096]).unwrap();
        engine.checkpoint(&mut vee, &store).unwrap(); // full (1)
        vee.mem_write(p, addr + 4096, &[2u8; 4096]).unwrap();
        engine.checkpoint(&mut vee, &store).unwrap(); // inc (2)
        vee.mem_write(p, addr + 2 * 4096, &[3u8; 4096]).unwrap();
        engine.checkpoint(&mut vee, &store).unwrap(); // inc (3)

        let chain = engine.chain_for(3).unwrap();
        assert_eq!(chain, vec![1, 2, 3]);
        let (revived, report) = revive(
            &mut store.lock(),
            "ckpt",
            &chain,
            false,
            2,
            clock.shared(),
            revive_fs(),
            host_pids(),
            &NetworkPolicy::default(),
        )
        .unwrap();
        assert_eq!(report.images_loaded, 3);
        assert_eq!(revived.mem_read(p, addr, 1).unwrap(), vec![1]);
        assert_eq!(revived.mem_read(p, addr + 4096, 1).unwrap(), vec![2]);
        assert_eq!(revived.mem_read(p, addr + 2 * 4096, 1).unwrap(), vec![3]);
        assert_eq!(revived.mem_read(p, addr + 3 * 4096, 1).unwrap(), vec![1]);
    }

    #[test]
    fn revive_to_intermediate_point_ignores_later_images() {
        let (mut vee, clock, mut engine, store) = session();
        let p = vee.spawn(None, "app").unwrap();
        let addr = vee.mmap(p, 4096, Prot::ReadWrite).unwrap();
        vee.mem_write(p, addr, b"v1").unwrap();
        engine.checkpoint(&mut vee, &store).unwrap();
        vee.mem_write(p, addr, b"v2").unwrap();
        engine.checkpoint(&mut vee, &store).unwrap();
        vee.mem_write(p, addr, b"v3").unwrap();
        engine.checkpoint(&mut vee, &store).unwrap();

        let chain = engine.chain_for(2).unwrap();
        let (revived, _) = revive(
            &mut store.lock(),
            "ckpt",
            &chain,
            false,
            2,
            clock.shared(),
            revive_fs(),
            host_pids(),
            &NetworkPolicy::default(),
        )
        .unwrap();
        assert_eq!(revived.mem_read(p, addr, 2).unwrap(), b"v2");
    }

    #[test]
    fn external_tcp_reset_udp_and_localhost_kept() {
        let (mut vee, clock, mut engine, store) = session();
        let p = vee.spawn(None, "browser").unwrap();
        let web = vee.socket(p, Proto::Tcp).unwrap();
        vee.connect(p, web, "example.com", 443).unwrap();
        let db = vee.socket(p, Proto::Tcp).unwrap();
        vee.connect(p, db, "localhost", 5432).unwrap();
        let dns = vee.socket(p, Proto::Udp).unwrap();
        vee.connect(p, dns, "8.8.8.8", 53).unwrap();
        engine.checkpoint(&mut vee, &store).unwrap();

        let chain = engine.chain_for(1).unwrap();
        let (mut revived, report) = revive(
            &mut store.lock(),
            "ckpt",
            &chain,
            false,
            2,
            clock.shared(),
            revive_fs(),
            host_pids(),
            &NetworkPolicy::default(),
        )
        .unwrap();
        assert_eq!(report.connections_reset, 1);
        // Web connection dropped: the app sees a reset, reconnect is
        // blocked while the network is disabled.
        assert_eq!(
            revived.send(p, web, 10),
            Err(dv_vee::VeeError::ConnectionReset)
        );
        // Localhost TCP and UDP connections kept.
        revived.send(p, db, 10).unwrap();
        revived.send(p, dns, 10).unwrap();
    }

    #[test]
    fn network_policy_applies_per_app() {
        let (mut vee, clock, mut engine, store) = session();
        vee.spawn(None, "mailer").unwrap();
        vee.spawn(None, "browser").unwrap();
        engine.checkpoint(&mut vee, &store).unwrap();
        let mut policy = NetworkPolicy {
            default_enabled: true,
            ..NetworkPolicy::default()
        };
        policy.per_app.insert("mailer".into(), false);
        let chain = engine.chain_for(1).unwrap();
        let (revived, _) = revive(
            &mut store.lock(),
            "ckpt",
            &chain,
            false,
            2,
            clock.shared(),
            revive_fs(),
            host_pids(),
            &policy,
        )
        .unwrap();
        let mut by_name: Vec<(String, bool)> = revived
            .processes()
            .map(|p| (p.name.clone(), p.net_allowed))
            .collect();
        by_name.sort();
        assert_eq!(
            by_name,
            vec![("browser".to_string(), true), ("mailer".to_string(), false)]
        );
    }

    #[test]
    fn files_reopen_with_offsets_and_relinked_orphans() {
        let (mut vee, clock, mut engine, store) = session();
        let p = vee.spawn(None, "app").unwrap();
        vee.fs.write_all("/doc", b"hello world").unwrap();
        let fd = vee.open(p, "/doc").unwrap();
        vee.fd_read(p, fd, 6).unwrap(); // offset = 6
        vee.fs.write_all("/scratch", b"orphan contents").unwrap();
        let sfd = vee.open(p, "/scratch").unwrap();
        vee.unlink("/scratch").unwrap();
        engine.checkpoint(&mut vee, &store).unwrap();

        // Build the revive fs view: for the test, a fresh Lsfs populated
        // from the live fs snapshot (the session manager normally mounts
        // a union over the snapshot). Simplest faithful stand-in: reuse
        // the same files by copying what the snapshot would contain.
        let mut view = Lsfs::new();
        view.write_all("/doc", b"hello world").unwrap();
        view.mkdir("/.dejaview").unwrap();
        view.write_all("/.dejaview/relink-1-0", b"orphan contents")
            .unwrap();

        let chain = engine.chain_for(1).unwrap();
        let (mut revived, report) = revive(
            &mut store.lock(),
            "ckpt",
            &chain,
            false,
            2,
            clock.shared(),
            Box::new(view),
            host_pids(),
            &NetworkPolicy::default(),
        )
        .unwrap();
        assert_eq!(report.files_reopened, 2);
        // Offset preserved: next read continues mid-file.
        assert_eq!(revived.fd_read(p, fd, 5).unwrap(), b"world");
        // The orphan reads through its fd but is unlinked again.
        assert_eq!(revived.fd_read(p, sfd, 6).unwrap(), b"orphan");
        assert!(!revived.fs.exists("/.dejaview/relink-1-0"));
    }

    #[test]
    fn missing_image_is_an_error() {
        let (_vee, clock, _engine, store) = session();
        let result = revive(
            &mut store.lock(),
            "ckpt",
            &[7],
            false,
            2,
            clock.shared(),
            revive_fs(),
            host_pids(),
            &NetworkPolicy::default(),
        );
        match result {
            Err(e) => assert_eq!(e, ReviveError::MissingImage(7)),
            Ok(_) => panic!("revive of a missing image must fail"),
        }
    }

    #[test]
    fn compressed_images_round_trip_through_revive() {
        let clock = SimClock::new();
        let mut vee = Vee::new(
            1,
            clock.shared(),
            Box::new(Lsfs::new()),
            HostPidAllocator::new(),
        );
        let mut engine = Checkpointer::with_sim_clock(
            EngineConfig {
                compress: true,
                ..EngineConfig::default()
            },
            clock.clone(),
        );
        let store = SharedBlobStore::in_memory();
        let p = vee.spawn(None, "app").unwrap();
        let addr = vee.mmap(p, 4096, Prot::ReadWrite).unwrap();
        vee.mem_write(p, addr, b"compressed state").unwrap();
        engine.checkpoint(&mut vee, &store).unwrap();
        clock.advance(Duration::from_secs(1));
        let (revived, _) = revive(
            &mut store.lock(),
            "ckpt",
            &[1],
            true,
            2,
            clock.shared(),
            Box::new(Lsfs::new()),
            host_pids(),
            &NetworkPolicy::default(),
        )
        .unwrap();
        assert_eq!(revived.mem_read(p, addr, 16).unwrap(), b"compressed state");
    }
}
