//! Read-only file system stacks.
//!
//! A revived session runs on a writable layer over a read-only view.
//! When a *revived* session is itself checkpointed and revived again
//! (§5.2: "the revived session retains DejaView's ability to
//! continuously checkpoint session state and later revive it"), the new
//! session's read-only view is the parent's view plus a snapshot of the
//! parent's writable layer — a read-only *union stack* of arbitrary
//! depth. [`ReadOnlyFs`] is the cloneable abstraction those stacks are
//! built from.

use crate::snapshot::SnapshotView;
use crate::union::UnionFs;
use crate::vfs::Filesystem;

/// A cloneable, read-only file system layer.
///
/// All [`Filesystem`] mutators on implementations fail with
/// [`crate::FsError::ReadOnly`] (a union of read-only layers rejects
/// writes because its "writable" layer does).
pub trait ReadOnlyFs: Filesystem {
    /// Clones this layer (cheap: snapshot metadata is shared
    /// copy-on-write, data lives on shared disks). The clone has its own
    /// handle table.
    fn clone_ro(&self) -> Box<dyn ReadOnlyFs>;
}

impl ReadOnlyFs for SnapshotView {
    fn clone_ro(&self) -> Box<dyn ReadOnlyFs> {
        Box::new(self.clone())
    }
}

/// A read-only union: a frozen upper layer (with its whiteouts) over a
/// read-only lower stack. Writes fail in the upper [`SnapshotView`].
impl ReadOnlyFs for UnionFs<Box<dyn ReadOnlyFs>, SnapshotView> {
    fn clone_ro(&self) -> Box<dyn ReadOnlyFs> {
        Box::new(UnionFs::new(self.lower().clone_ro(), self.upper().clone()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::FsError;
    use crate::lsfs::Lsfs;

    fn snapshot_with(paths: &[(&str, &[u8])]) -> SnapshotView {
        let mut fs = Lsfs::new();
        for (path, data) in paths {
            fs.write_all(path, data).unwrap();
        }
        fs.snapshot_point(1).unwrap();
        fs.snapshot(1).unwrap()
    }

    #[test]
    fn stacked_layers_resolve_top_down() {
        let base = snapshot_with(&[("/a", b"base a"), ("/b", b"base b")]);
        // The middle layer (a frozen branch upper) overrides /a and
        // whiteouts... here simply overrides /a and adds /c.
        let middle = snapshot_with(&[("/a", b"middle a"), ("/c", b"middle c")]);
        let stack: Box<dyn ReadOnlyFs> = Box::new(UnionFs::new(base.clone_ro(), middle));
        assert_eq!(stack.read_all("/a").unwrap(), b"middle a");
        assert_eq!(stack.read_all("/b").unwrap(), b"base b");
        assert_eq!(stack.read_all("/c").unwrap(), b"middle c");
    }

    #[test]
    fn stack_rejects_writes() {
        let base = snapshot_with(&[("/a", b"x")]);
        let top = snapshot_with(&[]);
        let mut stack: Box<dyn ReadOnlyFs> = Box::new(UnionFs::new(base.clone_ro(), top));
        assert_eq!(stack.write_at("/a", 0, b"y"), Err(FsError::ReadOnly));
        assert_eq!(stack.create("/new"), Err(FsError::ReadOnly));
        assert_eq!(stack.unlink("/a"), Err(FsError::ReadOnly));
    }

    #[test]
    fn clone_ro_shares_content_with_independent_handles() {
        let base = snapshot_with(&[("/f", b"shared")]);
        let top = snapshot_with(&[]);
        let stack: Box<dyn ReadOnlyFs> = Box::new(UnionFs::new(base.clone_ro(), top));
        let mut a = stack.clone_ro();
        let b = stack.clone_ro();
        let h = a.open("/f").unwrap();
        assert_eq!(a.read_handle(h, 0, 6).unwrap(), b"shared");
        assert_eq!(b.read_handle(h, 0, 1), Err(FsError::BadHandle));
        assert_eq!(b.read_all("/f").unwrap(), b"shared");
    }

    #[test]
    fn whiteouts_in_frozen_upper_hide_lower() {
        // Build a branch that deletes /gone, then freeze it and stack.
        let base = snapshot_with(&[("/gone", b"old"), ("/kept", b"ok")]);
        let mut branch = UnionFs::new(base.clone_ro(), Lsfs::new());
        branch.unlink("/gone").unwrap();
        branch.upper_mut().snapshot_point(7).unwrap();
        let frozen_upper = branch.upper().snapshot(7).unwrap();
        let stack: Box<dyn ReadOnlyFs> = Box::new(UnionFs::new(base.clone_ro(), frozen_upper));
        assert!(!stack.exists("/gone"), "whiteout applies through the stack");
        assert_eq!(stack.read_all("/kept").unwrap(), b"ok");
    }
}
