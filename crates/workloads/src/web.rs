//! The `web` scenario: Firefox running the iBench page-download suite.
//!
//! Table 1: "Firefox 2.0.0.1 running iBench web browsing benchmark to
//! download 54 web pages", in "rapid fire succession instead of having
//! delays between web page downloads for user think time". Each page:
//! network receive, a near-full-screen raw content paint, heavy
//! *on-demand* accessibility churn (the property §6 blames for the web
//! indexing overhead), and browser memory growth (the revive-latency
//! driver in Figure 7).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use dejaview::DejaView;
use dv_access::{AppId, NodeId, Role};
use dv_display::{rgb, Rect};
use dv_time::Duration;
use dv_vee::{Prot, Proto, Vpid};

use crate::common::words;
use crate::scenario::Scenario;

/// The web-browsing scenario.
pub struct WebScenario {
    pages_remaining: u32,
    page_no: u32,
    rng: StdRng,
    app: Option<AppId>,
    window: Option<NodeId>,
    content_nodes: Vec<NodeId>,
    browser: Option<Vpid>,
    sock_fd: Option<u32>,
    heap: Option<u64>,
    heap_len: u64,
}

impl WebScenario {
    /// Creates the scenario; `scale` = 1.0 is the paper's 54 pages.
    pub fn new(scale: f64) -> Self {
        WebScenario {
            pages_remaining: ((54.0 * scale).ceil() as u32).max(2),
            page_no: 0,
            rng: StdRng::seed_from_u64(0x3eb),
            app: None,
            window: None,
            content_nodes: Vec::new(),
            browser: None,
            sock_fd: None,
            heap: None,
            heap_len: 0,
        }
    }
}

impl Scenario for WebScenario {
    fn name(&self) -> &'static str {
        "web"
    }

    fn description(&self) -> &'static str {
        "Firefox 2.0.0.1 running iBench web browsing benchmark to download 54 web pages"
    }

    fn setup(&mut self, dv: &mut DejaView) {
        let init = dv.init_vpid();
        let browser = dv.vee_mut().spawn(Some(init), "firefox").expect("spawn");
        // Initial browser heap.
        self.heap_len = 16 << 20;
        let heap = dv
            .vee_mut()
            .mmap(browser, self.heap_len, Prot::ReadWrite)
            .expect("mmap");
        let fd = dv.vee_mut().socket(browser, Proto::Tcp).expect("socket");
        dv.vee_mut()
            .connect(browser, fd, "www.ibench.example.com", 80)
            .expect("connect");
        let desktop = dv.desktop_mut();
        let app = desktop.register_app("firefox");
        // Firefox generates its accessibility information on demand; each
        // component fetch crosses the AT-SPI IPC boundary. The per-access
        // delay models that round trip and is what makes text indexing
        // the dominant recording overhead for this scenario (§6).
        desktop.set_access_delay(Some(Duration::from_micros(15)));
        let root = desktop.root(app).expect("registered");
        let window = desktop.add_node(app, root, Role::Window, "iBench - firefox");
        desktop.focus(app);
        // Chrome (toolbar) area.
        dv.driver_mut()
            .fill_rect(Rect::new(0, 0, 1024, 30), rgb(60, 60, 70));
        dv.driver_mut()
            .draw_text(8, 11, "firefox: ibench start", 0xFFFFFF, 0);
        self.browser = Some(browser);
        self.sock_fd = Some(fd);
        self.heap = Some(heap);
        self.app = Some(app);
        self.window = Some(window);
    }

    fn step(&mut self, dv: &mut DejaView) -> bool {
        let app = self.app.expect("setup ran");
        let window = self.window.expect("setup ran");
        let browser = self.browser.expect("setup ran");
        self.page_no += 1;

        // Network: the page body arrives.
        let body_bytes = self.rng.gen_range(40_000..160_000);
        let _ = dv
            .vee_mut()
            .receive(browser, self.sock_fd.expect("setup"), body_bytes);

        // Render: almost the entire screen repaints with raw content,
        // progressively in horizontal bands as the page loads (as a real
        // browser paints), plus a toolbar update.
        let (w, h) = (
            dv.driver_mut().width(),
            dv.driver_mut().height().saturating_sub(30),
        );
        let seed = self.page_no;
        dv.driver_mut()
            .fill_rect(Rect::new(0, 0, w, 30), rgb(60, 60, 70));
        dv.driver_mut().draw_text(
            8,
            11,
            &format!("http://ibench.example.com/page{}", self.page_no),
            0xFFFFFF,
            rgb(60, 60, 70),
        );
        const BANDS: u32 = 12;
        for band in 0..BANDS {
            let y0 = band * h / BANDS;
            let y1 = (band + 1) * h / BANDS;
            let bh = y1 - y0;
            if bh == 0 {
                continue;
            }
            let pixels: Vec<u32> = (0..w as usize * bh as usize)
                .map(|i| {
                    let v = (i as u32)
                        .wrapping_mul(2_654_435_761)
                        .wrapping_add(seed * 97 + band * 13);
                    rgb(
                        (v >> 16) as u8 & 0x7F | 0x80,
                        (v >> 8) as u8,
                        v as u8 & 0x3F,
                    )
                })
                .collect();
            dv.driver_mut()
                .put_image(Rect::new(0, 30 + y0, w, bh), pixels);
        }

        // Accessibility: Firefox builds the page's accessible subtree on
        // demand, node by node, with redundant text updates — the
        // behaviour behind the paper's 99% web indexing overhead.
        for node in self.content_nodes.drain(..) {
            dv.desktop_mut().remove_subtree(app, node);
        }
        let title = format!(
            "page {} - {} - firefox",
            self.page_no,
            words(&mut self.rng, 2)
        );
        dv.desktop_mut().set_text(app, window, &title);
        let paragraphs = self.rng.gen_range(25..45);
        for i in 0..paragraphs {
            let role = if i % 5 == 0 {
                Role::Link
            } else {
                Role::Paragraph
            };
            let n_words = self.rng.gen_range(6..14);
            let text = words(&mut self.rng, n_words);
            let node = dv.desktop_mut().add_node(app, window, role, &text);
            // On-demand regeneration: the text is revised as layout
            // completes, doubling the event traffic.
            let revised = format!("{text} {}", words(&mut self.rng, 2));
            dv.desktop_mut().set_text(app, node, &revised);
            self.content_nodes.push(node);
        }

        // Memory: the browser grows by more than 2x over the run (§6's
        // revive analysis); write into fresh heap to dirty real pages.
        let grow: u64 = 512 << 10;
        let heap = self.heap.expect("setup");
        let heap = dv
            .vee_mut()
            .mremap(browser, heap, self.heap_len + grow)
            .expect("mremap")
            .expect("heap mapped");
        self.heap = Some(heap);
        let chunk = vec![(self.page_no % 251) as u8; grow as usize];
        dv.vee_mut()
            .mem_write(browser, heap + self.heap_len, &chunk)
            .expect("heap write");
        self.heap_len += grow;

        self.pages_remaining -= 1;
        self.pages_remaining > 0
    }

    fn step_duration(&self) -> Duration {
        // One page download per step; the paper's baseline is ~0.28s per
        // page, ~0.5s with full recording.
        Duration::from_millis(500)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{run_scenario, RunOptions};
    use dejaview::Config;
    use dv_index::RankOrder;

    #[test]
    fn web_generates_pages_text_and_memory_growth() {
        let mut dv = DejaView::new(Config::default());
        let mut scenario = WebScenario::new(0.1); // ~6 pages.
        let summary = run_scenario(&mut dv, &mut scenario, RunOptions::default());
        assert!(summary.steps >= 5);
        assert!(summary.checkpoints >= 2);
        // Raw page paints dominated the display stream.
        assert!(dv.driver_mut().stats().raw >= 5);
        // Text was captured and is searchable with app context.
        let results = dv.search(
            "app:firefox kernel OR app:firefox paper OR app:firefox virtual",
            RankOrder::Chronological,
        );
        assert!(results.is_ok());
        // Browser memory grew.
        let mem = dv
            .vee()
            .process(dv_vee::Vpid(2))
            .unwrap()
            .mem
            .mapped_bytes();
        assert!(mem > 16 << 20);
    }
}
