//! Content-addressed deduplicating chunk store for the DejaView
//! reproduction.
//!
//! Storage growth is the paper's scaling ceiling: continuous
//! checkpointing plus display recording grows linearly even when the
//! desktop barely changes (DejaView §Figure 4), and a host running a
//! thousand near-identical sessions over one shared blob store
//! multiplies the redundancy. This crate removes it at the storage
//! layer:
//!
//! - [`split`] cuts blobs at content-defined boundaries (gear rolling
//!   hash) and names each chunk by a 128-bit content hash, so identical
//!   data is identical chunks no matter which checkpoint or tenant
//!   wrote it.
//! - [`ChunkStore`] keeps one copy of each chunk under a reference
//!   count, maps blob names to chunk manifests, and clones blobs in
//!   O(1) by bumping a manifest refcount.
//! - Durability follows the wrongodb COW-checkpoint discipline:
//!   metadata roots are generation-numbered, CRC-trailed, written to
//!   alternating slots, and verified by read-back; recovery selects the
//!   newest intact generation, falling back past torn slots.
//! - Reclamation is recycle-only-after-checkpoint: a zero-reference
//!   chunk is *retired* and swept by a bounded concurrent GC only once
//!   a root that no longer references it is durable — a crash mid-sweep
//!   can never lose reachable data.
//!
//! `dv-lsfs` layers its `BlobStore` on this crate so checkpoint
//! writeback, archives, and host tenants dedup transparently; the
//! `reproduce dedup` experiment measures the effect.

#![deny(unsafe_code)]

mod chunk;
mod store;

pub use chunk::{chunk_id, split, ChunkId, ChunkSpan, MAX_CHUNK, MIN_CHUNK};
pub use store::{CasError, CasStats, ChunkStore, GcStep, ROOT_SLOTS};

#[cfg(test)]
mod tests {
    use super::*;
    use dv_fault::{sites, FaultPlan, IoFault};

    fn pseudo_random(len: usize, seed: u64) -> Vec<u8> {
        let mut out = Vec::with_capacity(len);
        let mut s = seed;
        while out.len() < len {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            out.extend_from_slice(&s.to_le_bytes());
        }
        out.truncate(len);
        out
    }

    #[test]
    fn put_get_round_trip() {
        let mut store = ChunkStore::new();
        let data = pseudo_random(100_000, 1);
        store.put("a", &data).unwrap();
        assert_eq!(store.get("a").unwrap(), data);
        assert!(store.get("missing").is_none());
        assert!(store.contains("a"));
        assert_eq!(store.logical_len("a"), Some(data.len() as u64));
    }

    #[test]
    fn identical_blobs_share_chunks() {
        let mut store = ChunkStore::new();
        let data = pseudo_random(200_000, 2);
        store.put("a", &data).unwrap();
        let physical_after_first = store.stats().physical_bytes;
        store.put("b", &data).unwrap();
        let stats = store.stats();
        assert_eq!(stats.physical_bytes, physical_after_first);
        assert_eq!(stats.logical_bytes, 2 * data.len() as u64);
        assert!(stats.dedup_ratio() > 1.9, "ratio {}", stats.dedup_ratio());
        assert_eq!(store.get("b").unwrap(), data);
    }

    #[test]
    fn replace_retires_unshared_chunks_until_root_then_gc() {
        let mut store = ChunkStore::new();
        let data = pseudo_random(100_000, 3);
        store.put("a", &data).unwrap();
        store.put("a", &pseudo_random(50_000, 4)).unwrap();
        let retired = store.stats().retired_chunks;
        assert!(retired > 0);
        // Nothing is eligible before a durable root no longer
        // referencing the old chunks exists.
        let step = store.gc_step(usize::MAX).unwrap();
        assert_eq!(step.reclaimed_chunks, 0);
        store.persist_root().unwrap();
        let step = store.gc_step(usize::MAX).unwrap();
        assert_eq!(step.reclaimed_chunks, retired);
        assert_eq!(store.stats().retired_chunks, 0);
    }

    #[test]
    fn clone_blob_is_refcount_only() {
        let mut store = ChunkStore::new();
        let data = pseudo_random(80_000, 5);
        store.put("src", &data).unwrap();
        let physical = store.stats().physical_bytes;
        assert!(store.clone_blob("src", "snap"));
        assert_eq!(store.stats().physical_bytes, physical);
        assert_eq!(store.get("snap").unwrap(), data);
        // Deleting the source keeps the clone alive.
        assert!(store.delete("src"));
        assert_eq!(store.get("snap").unwrap(), data);
        assert_eq!(store.stats().retired_chunks, 0, "chunks still referenced");
        assert!(!store.clone_blob("missing", "x"));
    }

    #[test]
    fn crash_recovers_durable_state_only() {
        let mut store = ChunkStore::new();
        let durable = pseudo_random(60_000, 6);
        store.put("kept", &durable).unwrap();
        store.persist_root().unwrap();
        store.put("volatile", &pseudo_random(60_000, 7)).unwrap();
        let recovered = store.crash();
        let mut recovered = recovered;
        assert_eq!(recovered.get("kept").unwrap(), durable);
        assert!(recovered.get("volatile").is_none());
        assert_eq!(recovered.generation(), 1);
        // The volatile blob's chunks are orphans, reclaimable at once.
        let step = recovered.gc_step(usize::MAX).unwrap();
        assert!(step.reclaimed_chunks > 0);
        assert_eq!(recovered.get("kept").unwrap(), durable);
    }

    #[test]
    fn torn_root_write_falls_back_to_previous_generation() {
        let plane = FaultPlan::new(11)
            .fail_nth(sites::CAS_ROOT, 2, IoFault::TornWrite)
            .build();
        let mut store = ChunkStore::new();
        store.set_fault_plane(plane);
        let first = pseudo_random(40_000, 8);
        store.put("a", &first).unwrap();
        store.persist_root().unwrap();
        store.put("a", &pseudo_random(40_000, 9)).unwrap();
        assert_eq!(store.persist_root(), Err(CasError::Io));
        let mut recovered = store.crash();
        assert_eq!(recovered.generation(), 1, "newest intact generation");
        assert_eq!(recovered.get("a").unwrap(), first);
        assert!(recovered.stats().root_fallbacks > 0);
    }

    #[test]
    fn corrupt_root_write_is_detected_by_read_back() {
        let plane = FaultPlan::new(12)
            .fail_nth(sites::CAS_ROOT, 1, IoFault::Corrupt)
            .build();
        let mut store = ChunkStore::new();
        store.set_fault_plane(plane);
        store.put("a", &pseudo_random(10_000, 10)).unwrap();
        assert_eq!(store.persist_root(), Err(CasError::Io));
        assert_eq!(store.generation(), 0, "corrupt slot must not be durable");
        assert_eq!(store.persist_root(), Ok(1), "retry rewrites the slot");
    }

    #[test]
    fn torn_chunk_write_leaves_only_orphans() {
        let plane = FaultPlan::new(13)
            .fail_nth(sites::CAS_CHUNK, 1, IoFault::TornWrite)
            .build();
        let mut store = ChunkStore::new();
        store.set_fault_plane(plane);
        let data = pseudo_random(150_000, 11);
        assert_eq!(store.put("a", &data), Err(CasError::Io));
        assert!(!store.contains("a"), "manifest must not land");
        // The orphaned prefix chunks are swept after the next root.
        store.persist_root().unwrap();
        store.gc_step(usize::MAX).unwrap();
        assert_eq!(store.stats().physical_bytes, 0);
        // A clean retry stores the blob fully.
        store.put("a", &data).unwrap();
        assert_eq!(store.get("a").unwrap(), data);
    }

    #[test]
    fn corrupt_chunk_is_detected_on_read() {
        let plane = FaultPlan::new(14)
            .fail_nth(sites::CAS_CHUNK, 1, IoFault::Corrupt)
            .build();
        let mut store = ChunkStore::new();
        store.set_fault_plane(plane);
        let data = pseudo_random(30_000, 12);
        store.put("a", &data).unwrap();
        let read = store.get("a").unwrap();
        assert_eq!(read.len(), data.len());
        assert_ne!(read, data, "corruption surfaces in the bytes");
        assert!(store.stats().verify_failures > 0, "and is detected");
    }

    #[test]
    fn resurrection_cancels_retirement() {
        let mut store = ChunkStore::new();
        let data = pseudo_random(70_000, 13);
        store.put("a", &data).unwrap();
        store.delete("a");
        assert!(store.stats().retired_chunks > 0);
        store.put("b", &data).unwrap();
        assert_eq!(store.stats().retired_chunks, 0);
        store.persist_root().unwrap();
        let step = store.gc_step(usize::MAX).unwrap();
        assert_eq!(step.reclaimed_chunks, 0, "live chunks must survive GC");
        assert_eq!(store.get("b").unwrap(), data);
    }

    #[test]
    fn gc_fault_aborts_step_without_reclaiming() {
        let plane = FaultPlan::new(15)
            .fail_nth(sites::CAS_GC, 1, IoFault::Enospc)
            .build();
        let mut store = ChunkStore::new();
        store.set_fault_plane(plane);
        store.put("a", &pseudo_random(50_000, 14)).unwrap();
        store.delete("a");
        store.persist_root().unwrap();
        assert_eq!(store.gc_step(usize::MAX).unwrap_err(), CasError::NoSpace);
        let physical = store.stats().physical_bytes;
        assert!(physical > 0, "abort reclaims nothing");
        let step = store.gc_step(usize::MAX).unwrap();
        assert!(step.reclaimed_bytes == physical && step.done);
    }

    #[test]
    fn bounded_steps_sweep_incrementally() {
        let mut store = ChunkStore::new();
        for i in 0..8 {
            store
                .put(&format!("b{i}"), &pseudo_random(40_000, 20 + i))
                .unwrap();
        }
        for i in 0..8 {
            store.delete(&format!("b{i}"));
        }
        store.persist_root().unwrap();
        let total = store.stats().retired_chunks;
        let mut reclaimed = 0;
        let mut steps = 0;
        loop {
            let step = store.gc_step(3).unwrap();
            reclaimed += step.reclaimed_chunks;
            steps += 1;
            if step.done {
                break;
            }
        }
        assert_eq!(reclaimed, total);
        assert!(steps > 1, "batch bound forces multiple steps");
    }
}
