//! Time-sharded WYSIWYS search for DejaView.
//!
//! `dv-index` answers "what was I looking at when …?" over a single
//! in-memory [`TextIndex`](dv_index::TextIndex); this crate scales that
//! model to long-running, multi-tenant deployments by sharding the
//! index along the time axis:
//!
//! - text states route into the mutable **open shard** (the same index
//!   the capture daemon already writes into);
//! - at checkpoint boundaries the open shard **seals** into an
//!   immutable CRC-framed segment blob plus a manifest named by the
//!   checkpoint counter, so index durability is snapshot-consistent
//!   with the recorded execution: a revive at checkpoint N queries
//!   exactly the segments sealed at or before N;
//! - background **compaction** merges small same-level segments into
//!   higher levels to bound per-query probe counts, retiring inputs
//!   under the recycle-only-after-checkpoint discipline dv-cas uses;
//! - queries fan out across the open shard plus the overlapping sealed
//!   segments, evaluating the boolean structure once globally and
//!   merging per-shard interval sets, then rank hits with
//!   persistence-weighted ordering.
//!
//! The crate is deliberately storage-agnostic: segments and manifests
//! are blobs in a [`SharedBlobStore`](dv_lsfs::SharedBlobStore), which
//! may be plain in-memory, latency-modelled, or layered on the dv-cas
//! deduplicating chunk store.

#![deny(unsafe_code)]

mod engine;
mod search;
mod segment;

pub use engine::{TidxConfig, TidxEngine, TidxError, TidxStats};
pub use search::{rank_by, rank_hits};
pub use segment::{
    decode_manifest, encode_manifest, frame_segment, unframe_segment, FrameError, Manifest,
    SegmentMeta,
};
