//! The open thumbnail strip: a time-ordered ribbon of visual
//! instances.
//!
//! Every persisted keyframe contributes a thumbnail + fingerprint;
//! consecutive near-duplicates (the same screen lingering across many
//! keyframes) coalesce into one **visual instance** carrying the time
//! interval it stayed on screen — the ScreenTrack model applied to
//! whole-screen appearance instead of text. The strip keeps its own
//! band index in sync so open-strip queries probe sub-linearly too.

use dv_time::Timestamp;

use crate::fingerprint::Fingerprint;
use crate::index::BandIndex;

/// One coalesced run of near-identical keyframes.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct VisualInstance {
    /// Globally monotonic instance id (never reused across seals).
    pub id: u64,
    /// Fingerprint of the run's first keyframe (the representative).
    pub fp: Fingerprint,
    /// When the screen first looked like this.
    pub first: Timestamp,
    /// The last keyframe that still looked like this.
    pub last: Timestamp,
    /// Keyframes coalesced into the run.
    pub frames: u64,
    /// The representative thumbnail, RLE-encoded
    /// ([`dv_record::encode_screenshot`]).
    pub thumb: Vec<u8>,
}

/// Outcome of observing one keyframe.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Observed {
    /// Extended the newest instance's interval.
    Coalesced,
    /// Opened a new visual instance.
    New,
}

/// The mutable open strip.
#[derive(Debug, Default)]
pub struct VisualStrip {
    instances: Vec<VisualInstance>,
    index: BandIndex,
    next_id: u64,
    /// Latest keyframe time observed (the seal horizon).
    pub horizon: Timestamp,
}

impl VisualStrip {
    /// Creates an empty strip allocating ids from `next_id`.
    pub fn new(next_id: u64) -> Self {
        VisualStrip {
            instances: Vec::new(),
            index: BandIndex::default(),
            next_id,
            horizon: Timestamp::ZERO,
        }
    }

    /// Observes one keyframe. A fingerprint within `near_dup_bits` of
    /// the *newest* instance extends that instance's interval;
    /// anything else opens a new one. Only the newest instance can
    /// coalesce — a screen that comes back after something else showed
    /// is a new appearance, exactly like text re-appearing on screen.
    pub fn observe(
        &mut self,
        now: Timestamp,
        fp: Fingerprint,
        thumb: Vec<u8>,
        near_dup_bits: u32,
    ) -> Observed {
        self.horizon = self.horizon.max(now);
        if let Some(last) = self.instances.last_mut() {
            if last.fp.distance(&fp) <= near_dup_bits {
                last.last = last.last.max(now);
                last.frames += 1;
                return Observed::Coalesced;
            }
        }
        let pos = self.instances.len() as u32;
        self.index.insert(pos, &fp);
        self.instances.push(VisualInstance {
            id: self.next_id,
            fp,
            first: now,
            last: now,
            frames: 1,
            thumb,
        });
        self.next_id += 1;
        Observed::New
    }

    /// The instances, oldest first.
    pub fn instances(&self) -> &[VisualInstance] {
        &self.instances
    }

    /// The strip's band index (positions into [`Self::instances`]).
    pub fn index(&self) -> &BandIndex {
        &self.index
    }

    /// Next id the strip would allocate.
    pub fn next_id(&self) -> u64 {
        self.next_id
    }

    /// Returns whether no keyframes have been observed.
    pub fn is_empty(&self) -> bool {
        self.instances.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ts(ms: u64) -> Timestamp {
        Timestamp::from_millis(ms)
    }

    fn fp(word: u64) -> Fingerprint {
        Fingerprint([word, 0, 0, 0])
    }

    #[test]
    fn near_duplicates_coalesce_into_one_interval() {
        let mut strip = VisualStrip::new(7);
        assert_eq!(strip.observe(ts(0), fp(0), b"a".to_vec(), 8), Observed::New);
        // 3 bits away: same screen, lingering.
        assert_eq!(
            strip.observe(ts(100), fp(0b111), b"b".to_vec(), 8),
            Observed::Coalesced
        );
        assert_eq!(
            strip.observe(ts(200), fp(0b11), b"c".to_vec(), 8),
            Observed::Coalesced
        );
        let inst = &strip.instances()[0];
        assert_eq!(inst.id, 7);
        assert_eq!((inst.first, inst.last), (ts(0), ts(200)));
        assert_eq!(inst.frames, 3);
        assert_eq!(inst.thumb, b"a", "representative thumbnail is the first");
        assert_eq!(strip.next_id(), 8);
    }

    #[test]
    fn distant_screens_and_returns_open_new_instances() {
        let mut strip = VisualStrip::new(0);
        strip.observe(ts(0), fp(0), Vec::new(), 8);
        // Far away: new instance.
        strip.observe(ts(100), fp(u64::MAX), Vec::new(), 8);
        // The first screen comes back: coalescing only looks at the
        // newest instance, so this is a new appearance.
        strip.observe(ts(200), fp(0), Vec::new(), 8);
        assert_eq!(strip.instances().len(), 3);
        assert_eq!(strip.horizon, ts(200));
        assert_eq!(
            strip.instances().iter().map(|i| i.id).collect::<Vec<_>>(),
            vec![0, 1, 2]
        );
    }
}
