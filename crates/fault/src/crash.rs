//! Power-cut surgery on serialized `Lsfs` images.
//!
//! Crash-consistency testing needs to simulate a machine dying mid-write
//! and then prove recovery lands on a valid prior state. Because
//! `dv-fault` is a leaf crate (the filesystem depends on *it*), this
//! module edits the serialized container byte-for-byte instead of using
//! `dv-lsfs` types. The layout is therefore a contract:
//!
//! ```text
//! Lsfs::save() container ("DVLSF002"):
//!   [0..8)    magic  b"DVLSF002"
//!   [8..16)   head   u64 LE — offset of the last journal record
//!   [16..24)  seg_capacity u64 LE   ┐
//!   [24..32)  log_len      u64 LE   ├ Disk::to_bytes()
//!   [32..)    log bytes              ┘
//! ```
//!
//! A power cut at byte `cut` of the *log* keeps the first `cut` log
//! bytes and discards the rest. The stored head may then point past the
//! cut — exactly like a real crash where the superblock was written
//! before the tail it references — and `Lsfs::load` must fall back to
//! scanning for the newest intact journal record. A contract test in
//! `dv-lsfs` asserts this module and `Lsfs::save` agree on the layout.

/// Byte offset of the log area within a serialized image.
pub const LOG_START: usize = 32;
const MAGIC: &[u8; 8] = b"DVLSF002";

/// Length in bytes of the log area of a serialized image.
///
/// # Panics
///
/// Panics if `image` is not a `DVLSF002` container.
pub fn log_len(image: &[u8]) -> usize {
    parse(image).1
}

fn parse(image: &[u8]) -> (u64, usize) {
    assert!(image.len() >= LOG_START, "container too short for header");
    assert_eq!(&image[0..8], MAGIC, "not a DVLSF002 container");
    let head = u64::from_le_bytes(image[8..16].try_into().unwrap());
    let len = u64::from_le_bytes(image[24..32].try_into().unwrap()) as usize;
    assert_eq!(
        image.len(),
        LOG_START + len,
        "container log length disagrees with image size"
    );
    (head, len)
}

/// Simulate a power cut after `cut` bytes of the log reached stable
/// storage: everything past it is lost, and the recorded log length is
/// rewritten to match. The stored head pointer is deliberately left
/// alone — recovery must not trust it.
///
/// `cut` is clamped to the actual log length, so sweeping
/// `0..=log_len(image)` exercises every boundary.
pub fn power_cut(image: &[u8], cut: usize) -> Vec<u8> {
    let (_head, len) = parse(image);
    let cut = cut.min(len);
    let mut out = Vec::with_capacity(LOG_START + cut);
    out.extend_from_slice(&image[..LOG_START]);
    out.extend_from_slice(&image[LOG_START..LOG_START + cut]);
    out[24..32].copy_from_slice(&(cut as u64).to_le_bytes());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fake_image(head: u64, seg_capacity: u64, log: &[u8]) -> Vec<u8> {
        let mut image = Vec::new();
        image.extend_from_slice(MAGIC);
        image.extend_from_slice(&head.to_le_bytes());
        image.extend_from_slice(&seg_capacity.to_le_bytes());
        image.extend_from_slice(&(log.len() as u64).to_le_bytes());
        image.extend_from_slice(log);
        image
    }

    #[test]
    fn cut_truncates_log_and_fixes_length() {
        let image = fake_image(40, 1 << 20, &[7u8; 100]);
        assert_eq!(log_len(&image), 100);
        let cut = power_cut(&image, 33);
        assert_eq!(log_len(&cut), 33);
        assert_eq!(cut.len(), LOG_START + 33);
        // Header magic, head, and capacity are untouched.
        assert_eq!(&cut[..24], &image[..24]);
    }

    #[test]
    fn cut_beyond_end_is_identity() {
        let image = fake_image(0, 4096, b"short log");
        let cut = power_cut(&image, 10_000);
        assert_eq!(cut, image);
    }

    #[test]
    fn cut_at_zero_keeps_only_header() {
        let image = fake_image(12, 4096, &[1, 2, 3, 4]);
        let cut = power_cut(&image, 0);
        assert_eq!(log_len(&cut), 0);
        assert_eq!(cut.len(), LOG_START);
    }

    #[test]
    #[should_panic(expected = "not a DVLSF002 container")]
    fn wrong_magic_is_rejected() {
        let mut image = fake_image(0, 4096, b"x");
        image[0..8].copy_from_slice(b"DVLSF001");
        power_cut(&image, 0);
    }
}
