//! Shared file system handles.
//!
//! The virtual execution environment owns its file system view as a
//! `Box<dyn Filesystem>`, but the session manager also needs typed
//! access to the same instance — to take snapshots by counter, mount
//! union branches, and account storage. [`SharedFs`] wraps a file system
//! in `Arc<Mutex<..>>` and implements [`Filesystem`] by delegation, so
//! both parties hold the same store.

use std::sync::Arc;

use parking_lot::Mutex;

use crate::error::FsResult;
use crate::vfs::{DirEntry, Filesystem, Handle, Metadata};

/// A cloneable, lockable file system handle.
pub struct SharedFs<F: Filesystem> {
    inner: Arc<Mutex<F>>,
}

impl<F: Filesystem> SharedFs<F> {
    /// Wraps a file system.
    pub fn new(fs: F) -> Self {
        SharedFs {
            inner: Arc::new(Mutex::new(fs)),
        }
    }

    /// Returns the underlying shared handle for typed access.
    pub fn handle(&self) -> Arc<Mutex<F>> {
        self.inner.clone()
    }

    /// Runs `f` with the locked file system.
    pub fn with<R>(&self, f: impl FnOnce(&mut F) -> R) -> R {
        f(&mut self.inner.lock())
    }
}

impl<F: Filesystem> Clone for SharedFs<F> {
    fn clone(&self) -> Self {
        SharedFs {
            inner: self.inner.clone(),
        }
    }
}

impl<F: Filesystem> Filesystem for SharedFs<F> {
    fn create(&mut self, path: &str) -> FsResult<()> {
        self.inner.lock().create(path)
    }

    fn mkdir(&mut self, path: &str) -> FsResult<()> {
        self.inner.lock().mkdir(path)
    }

    fn write_at(&mut self, path: &str, offset: u64, data: &[u8]) -> FsResult<()> {
        self.inner.lock().write_at(path, offset, data)
    }

    fn truncate(&mut self, path: &str, size: u64) -> FsResult<()> {
        self.inner.lock().truncate(path, size)
    }

    fn read_at(&self, path: &str, offset: u64, len: usize) -> FsResult<Vec<u8>> {
        self.inner.lock().read_at(path, offset, len)
    }

    fn unlink(&mut self, path: &str) -> FsResult<()> {
        self.inner.lock().unlink(path)
    }

    fn rmdir(&mut self, path: &str) -> FsResult<()> {
        self.inner.lock().rmdir(path)
    }

    fn rename(&mut self, from: &str, to: &str) -> FsResult<()> {
        self.inner.lock().rename(from, to)
    }

    fn readdir(&self, path: &str) -> FsResult<Vec<DirEntry>> {
        self.inner.lock().readdir(path)
    }

    fn stat(&self, path: &str) -> FsResult<Metadata> {
        self.inner.lock().stat(path)
    }

    fn open(&mut self, path: &str) -> FsResult<Handle> {
        self.inner.lock().open(path)
    }

    fn read_handle(&self, h: Handle, offset: u64, len: usize) -> FsResult<Vec<u8>> {
        self.inner.lock().read_handle(h, offset, len)
    }

    fn write_handle(&mut self, h: Handle, offset: u64, data: &[u8]) -> FsResult<()> {
        self.inner.lock().write_handle(h, offset, data)
    }

    fn handle_size(&self, h: Handle) -> FsResult<u64> {
        self.inner.lock().handle_size(h)
    }

    fn link_handle(&mut self, h: Handle, path: &str) -> FsResult<()> {
        self.inner.lock().link_handle(h, path)
    }

    fn close(&mut self, h: Handle) -> FsResult<()> {
        self.inner.lock().close(h)
    }

    fn sync(&mut self) -> FsResult<()> {
        self.inner.lock().sync()
    }

    fn snapshot_point(&mut self, counter: u64) -> FsResult<()> {
        self.inner.lock().snapshot_point(counter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lsfs::Lsfs;

    #[test]
    fn both_handles_see_the_same_store() {
        let shared = SharedFs::new(Lsfs::new());
        let mut as_trait: Box<dyn Filesystem> = Box::new(shared.clone());
        as_trait.write_all("/x", b"via trait").unwrap();
        let direct = shared.handle();
        assert_eq!(direct.lock().read_all("/x").unwrap(), b"via trait");
    }

    #[test]
    fn snapshots_visible_through_typed_handle() {
        let shared = SharedFs::new(Lsfs::new());
        let mut boxed: Box<dyn Filesystem> = Box::new(shared.clone());
        boxed.write_all("/f", b"v1").unwrap();
        boxed.snapshot_point(1).unwrap();
        boxed.write_all("/f", b"v2-longer").unwrap();
        let snap = shared.with(|fs| fs.snapshot(1)).unwrap();
        assert_eq!(snap.read_all("/f").unwrap(), b"v1");
    }

    #[test]
    fn with_runs_closures() {
        let shared = SharedFs::new(Lsfs::new());
        shared.with(|fs| fs.write_all("/y", b"z")).unwrap();
        assert!(shared.with(|fs| fs.exists("/y")));
    }
}
