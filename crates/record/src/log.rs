//! The append-only display command log.
//!
//! "DejaView records display output as an append-only log of THINC
//! commands, where recorded commands specify a particular operation to be
//! performed on the current contents of the screen" (§4.1). Entries are
//! `[time: u64 LE][encoded command]`; byte offsets into the log are the
//! stable references the timeline index stores.

use dv_display::{decode_command, encode_command, CodecError, DisplayCommand};
use dv_time::Timestamp;

/// The append-only command log.
#[derive(Debug, Default)]
pub struct CommandLog {
    data: Vec<u8>,
    count: u64,
}

impl CommandLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        CommandLog::default()
    }

    /// Appends a timestamped command, returning its byte offset.
    pub fn append(&mut self, time: Timestamp, cmd: &DisplayCommand) -> u64 {
        let offset = self.data.len() as u64;
        self.data.extend_from_slice(&time.as_nanos().to_le_bytes());
        encode_command(cmd, &mut self.data);
        self.count += 1;
        offset
    }

    /// Returns the offset one past the last entry — where the next
    /// command will land.
    pub fn end_offset(&self) -> u64 {
        self.data.len() as u64
    }

    /// Returns the number of logged commands.
    pub fn len(&self) -> u64 {
        self.count
    }

    /// Returns whether the log is empty.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Returns the total log size in bytes (drives Figure 4's display
    /// storage accounting).
    pub fn byte_len(&self) -> u64 {
        self.data.len() as u64
    }

    /// Reads the entry at `offset`, returning `(time, command,
    /// next_offset)`, or `None` at the end of the log.
    ///
    /// # Errors
    ///
    /// Returns a [`CodecError`] if `offset` does not point at a valid
    /// entry.
    pub fn read_at(
        &self,
        offset: u64,
    ) -> Result<Option<(Timestamp, DisplayCommand, u64)>, CodecError> {
        if offset >= self.data.len() as u64 {
            return Ok(None);
        }
        let mut slice = &self.data[offset as usize..];
        if slice.len() < 8 {
            return Err(CodecError::UnexpectedEof);
        }
        let time =
            Timestamp::from_nanos(u64::from_le_bytes(slice[..8].try_into().expect("8 bytes")));
        slice = &slice[8..];
        let before = slice.len();
        let cmd = decode_command(&mut slice)?;
        let consumed = 8 + (before - slice.len()) as u64;
        Ok(Some((time, cmd, offset + consumed)))
    }

    /// Iterates entries starting at `offset`.
    pub fn iter_from(&self, offset: u64) -> LogIter<'_> {
        LogIter { log: self, offset }
    }

    /// Returns the raw on-disk bytes of the log.
    pub fn as_bytes(&self) -> &[u8] {
        &self.data
    }

    /// Reconstructs a log from its on-disk bytes, validating every
    /// entry.
    pub fn from_bytes(data: Vec<u8>) -> Result<CommandLog, CodecError> {
        let mut log = CommandLog { data, count: 0 };
        let mut offset = 0;
        while let Some((_, _, next)) = log.read_at(offset)? {
            offset = next;
            log.count += 1;
        }
        Ok(log)
    }
}

/// An iterator over log entries.
pub struct LogIter<'a> {
    log: &'a CommandLog,
    offset: u64,
}

impl LogIter<'_> {
    /// Returns the offset of the next entry to be yielded.
    pub fn offset(&self) -> u64 {
        self.offset
    }
}

impl Iterator for LogIter<'_> {
    type Item = (Timestamp, DisplayCommand);

    fn next(&mut self) -> Option<Self::Item> {
        match self.log.read_at(self.offset) {
            Ok(Some((time, cmd, next))) => {
                self.offset = next;
                Some((time, cmd))
            }
            Ok(None) => None,
            Err(_) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dv_display::Rect;

    fn fill(color: u32) -> DisplayCommand {
        DisplayCommand::SolidFill {
            rect: Rect::new(0, 0, 4, 4),
            color,
        }
    }

    #[test]
    fn append_and_read_round_trip() {
        let mut log = CommandLog::new();
        let o1 = log.append(Timestamp::from_millis(10), &fill(1));
        let o2 = log.append(Timestamp::from_millis(20), &fill(2));
        assert_eq!(o1, 0);
        assert!(o2 > o1);
        let (t, cmd, next) = log.read_at(o1).unwrap().unwrap();
        assert_eq!(t, Timestamp::from_millis(10));
        assert_eq!(cmd, fill(1));
        assert_eq!(next, o2);
    }

    #[test]
    fn read_at_end_returns_none() {
        let mut log = CommandLog::new();
        log.append(Timestamp::ZERO, &fill(1));
        assert!(log.read_at(log.end_offset()).unwrap().is_none());
    }

    #[test]
    fn iteration_preserves_order() {
        let mut log = CommandLog::new();
        for i in 0..10 {
            log.append(Timestamp::from_millis(i), &fill(i as u32));
        }
        let entries: Vec<_> = log.iter_from(0).collect();
        assert_eq!(entries.len(), 10);
        for (i, (t, cmd)) in entries.iter().enumerate() {
            assert_eq!(*t, Timestamp::from_millis(i as u64));
            assert_eq!(*cmd, fill(i as u32));
        }
    }

    #[test]
    fn iteration_from_middle_offset() {
        let mut log = CommandLog::new();
        log.append(Timestamp::from_millis(1), &fill(1));
        let mid = log.append(Timestamp::from_millis(2), &fill(2));
        log.append(Timestamp::from_millis(3), &fill(3));
        let entries: Vec<_> = log.iter_from(mid).collect();
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].0, Timestamp::from_millis(2));
    }

    #[test]
    fn bytes_round_trip() {
        let mut log = CommandLog::new();
        for i in 0..5 {
            log.append(Timestamp::from_millis(i), &fill(i as u32));
        }
        let restored = CommandLog::from_bytes(log.as_bytes().to_vec()).unwrap();
        assert_eq!(restored.len(), 5);
        assert_eq!(
            restored.iter_from(0).collect::<Vec<_>>(),
            log.iter_from(0).collect::<Vec<_>>()
        );
        // Truncated bytes are rejected.
        let cut = log.as_bytes().len() - 3;
        assert!(CommandLog::from_bytes(log.as_bytes()[..cut].to_vec()).is_err());
    }

    #[test]
    fn byte_len_tracks_growth() {
        let mut log = CommandLog::new();
        assert_eq!(log.byte_len(), 0);
        log.append(Timestamp::ZERO, &fill(0));
        let one = log.byte_len();
        log.append(Timestamp::ZERO, &fill(0));
        assert_eq!(log.byte_len(), one * 2);
    }
}
