//! dv-net integration: many concurrent remote viewers over the
//! deterministic loopback transport, against one live DejaView session.
//!
//! The claims under test, end to end:
//!
//! - A fan-out of clients attaching **mid-session** each converge to a
//!   framebuffer whose fingerprint is byte-for-byte the server's local
//!   view, and they track it through further live drawing.
//! - Input events ride the wire back: a remote keystroke reaches the
//!   server's desktop (the annotation key combo consumes the current
//!   selection).
//! - Playback seeks and text-index searches multiplex over the same
//!   connection as the live stream and agree with the server's own
//!   answers.
//! - An injected transport failure on ONE client surfaces in the
//!   dv-obs trace ring AND the retry/reset counters while every other
//!   client stays correct — the blast radius of a bad link is that
//!   link.

mod common;

use dejaview::{Config, DejaView};
use dv_display::viewer::InputEvent;
use dv_display::Rect;
use dv_fault::{sites, FaultPlan, IoFault};
use dv_index::RankOrder;
use dv_net::{
    decode_message, encode_frame_vec, encode_message_vec, FrameDecoder, LoopbackTransport, Message,
    NetClient, NetConfig, NetService, Transport, VisualProbe, MAX_SEARCH_HITS, PROTOCOL_VERSION,
};
use dv_obs::names;
use dv_time::{Duration, Timestamp};

const W: u32 = 96;
const H: u32 = 64;

fn service() -> NetService {
    NetService::new(
        DejaView::new(Config {
            width: W,
            height: H,
            ..Config::default()
        }),
        NetConfig::default(),
    )
}

/// Interleaves client and service polls until traffic settles.
fn converge(svc: &mut NetService, clients: &mut [NetClient<LoopbackTransport>]) {
    for _ in 0..40 {
        for c in clients.iter_mut() {
            // Faulty clients may die mid-converge; that is the point
            // of some of these tests, not a harness failure.
            let _ = c.poll();
        }
        svc.poll();
    }
}

/// A deterministic splash of drawing, distinct per `salt`.
fn draw(svc: &mut NetService, salt: u32) {
    let d = svc.dv_mut().driver_mut();
    d.fill_rect(
        Rect::new(salt % 40, (salt * 7) % 30, 16 + salt % 9, 12 + salt % 5),
        0x00112233u32.wrapping_mul(salt | 1),
    );
    d.draw_text(
        (salt * 3) % 50,
        (salt * 11) % 40,
        "live",
        0xFFFFFF,
        0x000000,
    );
    svc.dv_mut().clock().advance(Duration::from_millis(40));
}

#[test]
fn sixteen_clients_attach_mid_session_and_track_the_screen() {
    let mut svc = service();

    // The session is already underway before anyone connects.
    for salt in 0..12 {
        draw(&mut svc, salt);
    }

    let mut clients: Vec<NetClient<LoopbackTransport>> = (0..16)
        .map(|i| {
            let (server_end, client_end) = LoopbackTransport::pair();
            svc.accept(server_end);
            let mut c = NetClient::connect(client_end, &format!("viewer-{i}"));
            c.attach_live();
            c
        })
        .collect();
    converge(&mut svc, &mut clients);

    let local = svc.dv().screen_fingerprint();
    for (i, c) in clients.iter().enumerate() {
        assert!(c.is_welcomed(), "client {i} not welcomed");
        assert_eq!(
            c.fingerprint(),
            Some(local),
            "client {i} diverged after mid-session attach"
        );
        assert!(
            c.stats().keyframes_applied >= 1,
            "client {i} never got its attach keyframe"
        );
    }

    // The session keeps drawing; every viewer tracks it live.
    for salt in 100..130 {
        draw(&mut svc, salt);
        svc.poll();
        for c in clients.iter_mut() {
            let _ = c.poll();
        }
    }
    converge(&mut svc, &mut clients);

    let local = svc.dv().screen_fingerprint();
    for (i, c) in clients.iter().enumerate() {
        assert_eq!(c.fingerprint(), Some(local), "client {i} diverged live");
        assert!(
            c.stats().commands_applied > 0,
            "client {i} saw only keyframes; live deltas never flowed"
        );
    }
    assert_eq!(svc.client_count(), 16);
}

#[test]
fn attach_with_pending_scroll_commands_does_not_replay_them() {
    let mut svc = service();
    for salt in 0..6 {
        draw(&mut svc, salt);
    }
    svc.poll(); // drain the tap so only post-connect damage is pending

    // The Hello + AttachLive frames are on the wire, waiting to be
    // handled in the same service poll that fans out the tap.
    let (server_end, client_end) = LoopbackTransport::pair();
    svc.accept(server_end);
    let mut c = NetClient::connect(client_end, "scroller");
    c.attach_live();
    let _ = c.poll();

    // Non-idempotent damage lands in the tap BEFORE that poll runs:
    // CopyArea reads the screen it scrolls, so replaying it on top of
    // a keyframe that already embodies it corrupts the remote view.
    let d = svc.dv_mut().driver_mut();
    d.fill_rect(Rect::new(4, 4, 30, 20), 0xDEADBEEF);
    d.copy_area(4, 4, Rect::new(10, 10, 24, 14));
    d.copy_area(0, 0, Rect::new(2, 2, 40, 30));
    svc.dv_mut().clock().advance(Duration::from_millis(5));

    let mut clients = vec![c];
    converge(&mut svc, &mut clients);
    assert_eq!(
        clients[0].fingerprint(),
        Some(svc.dv().screen_fingerprint()),
        "commands tapped before the attach keyframe were replayed on top of it"
    );

    // And the viewer keeps tracking live scrolls from here on.
    let d = svc.dv_mut().driver_mut();
    d.copy_area(1, 1, Rect::new(0, 0, 50, 40));
    svc.dv_mut().clock().advance(Duration::from_millis(5));
    converge(&mut svc, &mut clients);
    assert_eq!(
        clients[0].fingerprint(),
        Some(svc.dv().screen_fingerprint()),
        "viewer lost the live scroll stream after attach"
    );
}

#[test]
fn remote_input_round_trips_to_the_desktop() {
    let mut svc = service();
    let app = svc.dv_mut().desktop_mut().register_app("editor");
    let root = svc.dv_mut().desktop_mut().root(app).unwrap();
    svc.dv_mut()
        .desktop_mut()
        .set_selection(app, root, "ship it friday");
    assert!(svc.dv_mut().desktop_mut().selection().is_some());

    let (server_end, client_end) = LoopbackTransport::pair();
    svc.accept(server_end);
    let mut clients = vec![NetClient::connect(client_end, "typist")];
    converge(&mut svc, &mut clients);
    assert!(clients[0].is_welcomed());

    // The annotation combo, pressed remotely, consumes the selection
    // server-side — proof the event crossed the wire into dv.input().
    clients[0].send_input(&InputEvent::Key {
        ch: 'a',
        ctrl: true,
        alt: true,
    });
    converge(&mut svc, &mut clients);
    assert!(
        svc.dv_mut().desktop_mut().selection().is_none(),
        "remote keystroke never reached the desktop"
    );
}

#[test]
fn seek_and_search_rpcs_agree_with_the_server() {
    let mut svc = service();
    let app = svc.dv_mut().desktop_mut().register_app("notes");
    let root = svc.dv_mut().desktop_mut().root(app).unwrap();
    svc.dv_mut()
        .desktop_mut()
        .add_node(app, root, dv_access::Role::Paragraph, "deadline friday");
    for salt in 0..10 {
        draw(&mut svc, salt);
    }
    let mid = Timestamp::ZERO + Duration::from_millis(200);
    for salt in 50..60 {
        draw(&mut svc, salt);
    }

    let (server_end, client_end) = LoopbackTransport::pair();
    svc.accept(server_end);
    let mut clients = vec![NetClient::connect(client_end, "historian")];
    converge(&mut svc, &mut clients);

    // Seek: the remote reconstruction is the server's reconstruction.
    let req = clients[0].seek(mid);
    converge(&mut svc, &mut clients);
    let remote_shot = clients[0]
        .take_seek_reply(req)
        .expect("seek reply never arrived");
    let local_shot = svc.dv_mut().browse(mid).unwrap();
    assert_eq!(remote_shot.content_hash(), local_shot.content_hash());

    // Search: same hits, same order, as asking the server directly.
    let req = clients[0].search("deadline", RankOrder::Chronological);
    converge(&mut svc, &mut clients);
    let remote_hits = clients[0]
        .take_search_reply(req)
        .expect("search reply never arrived");
    let local_hits = svc
        .dv_mut()
        .search("deadline", RankOrder::Chronological)
        .unwrap();
    assert_eq!(remote_hits.len(), local_hits.len());
    assert!(!remote_hits.is_empty(), "indexed text not found over RPC");
    for (r, l) in remote_hits.iter().zip(&local_hits) {
        assert_eq!(r.time, l.hit.time);
        assert_eq!(r.snippet, l.hit.snippet);
        assert_eq!(r.matches as usize, l.hit.matches);
    }

    // A failed RPC comes back as an Error reply, not a dead connection.
    let req = clients[0].search("time:notanumber deadline", RankOrder::Chronological);
    converge(&mut svc, &mut clients);
    assert!(clients[0].take_rpc_error(req).is_some());
    assert!(!clients[0].is_closed());

    // Graceful goodbye: the server forgets the client.
    clients[0].bye();
    converge(&mut svc, &mut clients);
    assert_eq!(svc.client_count(), 0);
}

#[test]
fn visual_rpcs_agree_with_the_server() {
    let mut svc = service();
    // Three distinct recorded scenes, one keyframe each.
    for round in 0..3u32 {
        for salt in round * 10..round * 10 + 5 {
            draw(&mut svc, salt);
        }
        svc.dv_mut().clock().advance(Duration::from_secs(1));
        svc.dv_mut().force_keyframe();
        svc.dv_mut().policy_tick().unwrap();
    }
    let (server_end, client_end) = LoopbackTransport::pair();
    svc.accept(server_end);
    let mut clients = vec![NetClient::connect(client_end, "visual-historian")];
    converge(&mut svc, &mut clients);

    // Probe by moment: "when did the screen look like it did at t?"
    let t = svc.dv_mut().now();
    let req = clients[0].visual_query(VisualProbe::At(t), 4);
    converge(&mut svc, &mut clients);
    let remote = clients[0]
        .take_visual_reply(req)
        .expect("visual reply never arrived");
    let local = svc.dv_mut().visual_hits_at_time(t, 4).unwrap();
    assert_eq!(remote.len(), local.len());
    assert!(!remote.is_empty(), "recorded scenes not found over RPC");
    for (r, l) in remote.iter().zip(&local) {
        assert_eq!(
            (r.id, r.distance, r.first, r.last),
            (l.id, l.distance, l.first, l.last)
        );
        assert_eq!(r.thumb, l.thumb);
    }
    // The best hit is the probed moment itself, and its wire thumbnail
    // decodes into the configured geometry.
    assert_eq!(remote[0].distance, 0);
    let thumb = dv_record::decode_screenshot(&remote[0].thumb).expect("thumb decodes");
    assert_eq!((thumb.width, thumb.height), (64, 48));

    // Probe by image: shipping the screenshot itself gives the same
    // answer as naming its moment.
    let probe_shot = svc.dv_mut().browse(t).unwrap();
    let req = clients[0].visual_query(VisualProbe::Thumb(probe_shot), 4);
    converge(&mut svc, &mut clients);
    let by_image = clients[0]
        .take_visual_reply(req)
        .expect("image-probe reply never arrived");
    assert_eq!(by_image, remote);

    // With the visual index disabled the RPC fails as an Error reply,
    // not a dead connection.
    let mut svc2 = NetService::new(
        DejaView::new(Config {
            width: W,
            height: H,
            enable_visual_index: false,
            ..Config::default()
        }),
        NetConfig::default(),
    );
    let (server_end, client_end) = LoopbackTransport::pair();
    svc2.accept(server_end);
    let mut blind = vec![NetClient::connect(client_end, "blind")];
    converge(&mut svc2, &mut blind);
    let req = blind[0].visual_query(VisualProbe::At(Timestamp::ZERO), 1);
    converge(&mut svc2, &mut blind);
    assert!(blind[0].take_rpc_error(req).is_some());
    assert!(!blind[0].is_closed());
}

#[test]
fn transport_faults_on_one_client_leave_the_rest_untouched() {
    let mut svc = service();
    for salt in 0..8 {
        draw(&mut svc, salt);
    }

    // Four clean viewers and one whose link stalls probabilistically,
    // then resets for good.
    let mut clients: Vec<NetClient<LoopbackTransport>> = (0..4)
        .map(|i| {
            let (server_end, client_end) = LoopbackTransport::pair();
            svc.accept(server_end);
            let mut c = NetClient::connect(client_end, &format!("healthy-{i}"));
            c.attach_live();
            c
        })
        .collect();
    let plane = FaultPlan::new(common::seed_for("net-faulty-client"))
        .probability(sites::NET_SEND, 0.25, IoFault::LatencySpike)
        .from_nth(sites::NET_SEND, 60, IoFault::TornWrite)
        .build();
    let (server_end, client_end) = LoopbackTransport::faulty_pair(&plane);
    svc.accept(server_end);
    let mut faulty = NetClient::connect(client_end, "doomed");
    faulty.attach_live();
    clients.push(faulty);
    converge(&mut svc, &mut clients);

    // Keep the session busy until the injected reset lands, collecting
    // every drop the service reports along the way.
    let mut drops: Vec<(u64, dv_net::DropReason)> = Vec::new();
    for salt in 200..260 {
        draw(&mut svc, salt);
        drops.extend(svc.poll().dropped);
        for c in clients.iter_mut() {
            let _ = c.poll();
        }
    }
    converge(&mut svc, &mut clients);

    // One client dying is reported exactly once, with one reason — a
    // drop must not be re-reported by a later pipeline stage.
    let mut drop_ids: Vec<u64> = drops.iter().map(|(id, _)| *id).collect();
    drop_ids.sort_unstable();
    drop_ids.dedup();
    assert_eq!(
        drop_ids.len(),
        drops.len(),
        "duplicate drop reports: {drops:?}"
    );

    // The doomed client is gone; its failure is observable both as
    // trace events and as counters.
    assert_eq!(svc.client_count(), 4, "faulty client not reaped");
    assert!(plane.injected_at(sites::NET_SEND) > 0, "no fault fired");
    let obs = svc.dv().obs().clone();
    assert!(
        obs.counter(names::NET_SEND_RETRIES) > 0,
        "stalls never retried"
    );
    assert!(obs.counter(names::NET_RESETS) > 0, "reset not counted");
    let events = obs.events();
    assert!(
        events.iter().any(|e| e.name == names::EV_NET_RETRY),
        "no retry event traced"
    );
    assert!(
        events.iter().any(|e| e.name == names::EV_NET_DISCONNECT),
        "no disconnect event traced"
    );

    // Everyone else is byte-for-byte correct.
    let local = svc.dv().screen_fingerprint();
    for (i, c) in clients.iter().take(4).enumerate() {
        assert!(!c.is_closed(), "healthy client {i} dropped");
        assert_eq!(c.fingerprint(), Some(local), "healthy client {i} diverged");
    }
}

#[test]
fn unhandshaken_connection_hits_the_handshake_deadline() {
    let mut svc = service();
    let (server_end, _held_open) = LoopbackTransport::pair();
    svc.accept(server_end);
    assert_eq!(svc.client_count(), 1);

    // Half the idle budget elapses with no Hello: the silent socket is
    // dropped, not parked forever outside the idle scan.
    svc.dv_mut().clock().advance(Duration::from_secs(31)); // idle_timeout default 60s
    let report = svc.poll();
    assert!(
        report
            .dropped
            .iter()
            .any(|(_, r)| *r == dv_net::DropReason::Idle),
        "handshake deadline never fired: {report:?}"
    );
    assert_eq!(svc.client_count(), 0, "silent connection lingered");
}

#[test]
fn accept_backlog_is_bounded_at_twice_max_clients() {
    let mut svc = NetService::new(
        DejaView::new(Config {
            width: W,
            height: H,
            ..Config::default()
        }),
        NetConfig {
            max_clients: 2,
            ..NetConfig::default()
        },
    );
    let mut clients: Vec<NetClient<LoopbackTransport>> = (0..10)
        .map(|i| {
            let (server_end, client_end) = LoopbackTransport::pair();
            svc.accept(server_end);
            NetClient::connect(client_end, &format!("flood-{i}"))
        })
        .collect();
    converge(&mut svc, &mut clients);

    // Capacity admits two; everyone else was turned away, whether at
    // the Hello (slots 3-4 of the backlog) or straight at accept.
    let welcomed = clients.iter().filter(|c| c.is_welcomed()).count();
    assert_eq!(welcomed, 2, "capacity check admitted the wrong number");
    assert_eq!(
        svc.client_count(),
        2,
        "rejected connections were not reaped"
    );
    assert!(
        clients.iter().filter(|c| c.is_closed()).count() >= 8,
        "turned-away clients never learned their fate"
    );
}

#[test]
fn rpcs_before_the_handshake_are_ignored() {
    let mut svc = service();
    for salt in 0..4 {
        draw(&mut svc, salt);
    }
    let (server_end, mut wire) = LoopbackTransport::pair();
    svc.accept(server_end);

    // Seek + Search straight away, no Hello: neither runs nor replies.
    let mut bytes = encode_frame_vec(&encode_message_vec(&Message::Seek {
        req_id: 7,
        t: Timestamp::ZERO,
    }));
    bytes.extend(encode_frame_vec(&encode_message_vec(&Message::Search {
        req_id: 8,
        order: RankOrder::Chronological,
        query: "live".to_string(),
    })));
    let mut off = 0;
    while off < bytes.len() {
        off += wire.send(&bytes[off..]).unwrap();
    }
    for _ in 0..10 {
        svc.poll();
    }

    let mut dec = FrameDecoder::new();
    let mut buf = [0u8; 4096];
    loop {
        match wire.recv(&mut buf) {
            Ok(0) | Err(_) => break,
            Ok(n) => dec.feed(&buf[..n]),
        }
    }
    assert_eq!(
        dec.next_frame().unwrap(),
        None,
        "server answered an RPC from an un-handshaken client"
    );
    assert_eq!(svc.client_count(), 1, "connection should survive, parked");
}

#[test]
fn version_mismatch_is_rejected_cleanly() {
    let mut svc = service();
    let (server_end, mut wire) = LoopbackTransport::pair();
    svc.accept(server_end);

    let hello = encode_frame_vec(&encode_message_vec(&Message::Hello {
        version: PROTOCOL_VERSION + 1,
        name: "time traveler".to_string(),
    }));
    let mut off = 0;
    while off < hello.len() {
        off += wire.send(&hello[off..]).unwrap();
    }
    for _ in 0..10 {
        svc.poll();
    }

    let mut dec = FrameDecoder::new();
    let mut buf = [0u8; 4096];
    loop {
        match wire.recv(&mut buf) {
            Ok(0) | Err(_) => break,
            Ok(n) => dec.feed(&buf[..n]),
        }
    }
    let reply = dec
        .next_frame()
        .unwrap()
        .expect("no reply to bad handshake");
    match decode_message(&reply).unwrap() {
        Message::Reject { reason } => assert!(reason.contains("version")),
        other => panic!("expected Reject, got {other:?}"),
    }
    assert_eq!(svc.client_count(), 0, "rejected client lingered");
}

#[test]
fn oversize_cross_shard_search_truncates_by_global_rank() {
    let mut svc = service();
    let tidx = svc.dv_mut().tidx().expect("sharded index is on by default");

    // A little display activity so per-hit screenshot portals have a
    // record to reconstruct from.
    for salt in 0..3 {
        draw(&mut svc, salt);
    }
    let app = svc.dv_mut().desktop_mut().register_app("log");
    let root = svc.dv_mut().desktop_mut().root(app).unwrap();

    // More disjoint hits than the reply cap. Hit i persists
    // (2 + TOTAL-1-i) ms, so the earliest states — the ones landing in
    // the OLDEST shards — persist longest.
    const TOTAL: usize = MAX_SEARCH_HITS + 40;
    let mut counter = 1;
    for i in 0..TOTAL {
        let text = format!("marker t{i}");
        let node =
            svc.dv_mut()
                .desktop_mut()
                .add_node(app, root, dv_access::Role::Paragraph, &text);
        let persist = Duration::from_millis(2 + (TOTAL - 1 - i) as u64);
        svc.dv_mut().clock().advance(persist);
        svc.dv_mut().desktop_mut().remove_subtree(app, node);
        svc.dv_mut().clock().advance(Duration::from_millis(1));
        // Seal every 128 states so the hits span many immutable
        // segments rather than one big open shard.
        if (i + 1) % 128 == 0 {
            tidx.seal(counter).expect("seal");
            counter += 1;
        }
    }
    assert!(
        tidx.stats().live_segments >= 4,
        "test setup must spread hits across sealed shards"
    );

    let (server_end, client_end) = LoopbackTransport::pair();
    svc.accept(server_end);
    let mut clients = vec![NetClient::connect(client_end, "archivist")];
    converge(&mut svc, &mut clients);

    // PersistenceAscending ranks the SHORTEST-lived states first —
    // exactly the ones in the NEWEST shards. A truncation by per-shard
    // arrival order (oldest shard first) would keep the longest-lived
    // hits instead, so every kept hit proves global ranking.
    let req = clients[0].search("marker", RankOrder::PersistenceAscending);
    converge(&mut svc, &mut clients);
    if let Some(err) = clients[0].take_rpc_error(req) {
        panic!("search failed over RPC: {err}");
    }
    assert!(!clients[0].is_closed(), "client connection died");
    let hits = clients[0]
        .take_search_reply(req)
        .expect("search reply never arrived");
    assert_eq!(
        hits.len(),
        MAX_SEARCH_HITS,
        "reply must truncate at the cap"
    );
    let cutoff = Duration::from_millis(2 + (MAX_SEARCH_HITS - 1) as u64);
    for h in &hits {
        assert!(
            h.persistence <= cutoff,
            "truncation kept a low-rank (long-lived, early-shard) hit: {:?}",
            h.persistence
        );
    }
    for pair in hits.windows(2) {
        assert!(
            pair[0].persistence <= pair[1].persistence,
            "reply is not in global rank order"
        );
    }

    // The persistence-weighted order rides the wire too (tag 4): with
    // one match per interval the weighted score IS the persistence, so
    // the same oversize query comes back descending.
    let req = clients[0].search("marker", RankOrder::PersistenceWeighted);
    converge(&mut svc, &mut clients);
    let hits = clients[0]
        .take_search_reply(req)
        .expect("weighted search reply never arrived");
    assert_eq!(hits.len(), MAX_SEARCH_HITS);
    for pair in hits.windows(2) {
        assert!(
            pair[0].persistence >= pair[1].persistence,
            "weighted reply is not descending by score"
        );
    }
}
