//! The text index.
//!
//! Stores every *text instance* — one piece of text visible on screen
//! over one interval of time, with its context — plus the window-focus
//! history, and maintains an inverted index from terms to instances.
//! This is the role PostgreSQL + Tsearch2 play in the original (§6).

use std::collections::HashMap;

use dv_obs::{names, Obs};
use dv_time::Timestamp;

use crate::interval::{Interval, IntervalSet};
use crate::tokenizer::index_tokens;

/// How long a point annotation is considered "visible" for queries.
const ANNOTATION_WINDOW_MS: u64 = 1;

/// One indexed text-visibility instance.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct IndexedInstance {
    /// Unique instance id (assigned by the capture daemon).
    pub id: u64,
    /// Numeric application id, used to join with focus history.
    pub app_id: u32,
    /// Application name.
    pub app: String,
    /// Enclosing window title.
    pub window: String,
    /// Component role tag ("paragraph", "link", "menuitem", ...).
    pub role: String,
    /// The visible text.
    pub text: String,
    /// When the text appeared.
    pub shown: Timestamp,
    /// When it disappeared; `None` while still visible.
    pub hidden: Option<Timestamp>,
    /// Whether this is an explicit user annotation (a point event).
    pub annotation: bool,
}

/// Storage accounting for the index (Figure 4's index series).
#[derive(Clone, Copy, Debug, Default)]
pub struct IndexStats {
    /// Instances indexed.
    pub instances: u64,
    /// Total postings entries.
    pub postings: u64,
    /// Distinct terms.
    pub terms: u64,
    /// Approximate on-disk bytes (text + context + postings).
    pub bytes: u64,
}

/// The interval-aware inverted text index.
///
/// # Examples
///
/// ```
/// use dv_index::{IndexedInstance, TextIndex};
/// use dv_time::Timestamp;
///
/// let mut index = TextIndex::new();
/// index.add_instance(IndexedInstance {
///     id: 1,
///     app_id: 1,
///     app: "editor".into(),
///     window: "notes".into(),
///     role: "paragraph".into(),
///     text: "remember the milk".into(),
///     shown: Timestamp::from_secs(10),
///     hidden: None,
///     annotation: false,
/// });
/// index.close_instance(1, Timestamp::from_secs(30));
/// let hits = index.term_instances("milk");
/// assert_eq!(hits.len(), 1);
/// ```
#[derive(Debug, Default)]
pub struct TextIndex {
    instances: HashMap<u64, IndexedInstance>,
    postings: HashMap<String, Vec<u64>>,
    focus_history: Vec<(u32, Timestamp)>,
    horizon: Timestamp,
    bytes: u64,
    obs: Obs,
}

impl TextIndex {
    /// Creates an empty index.
    pub fn new() -> Self {
        TextIndex::default()
    }

    /// Installs the observability handle: indexed bytes, flushes, and
    /// query evaluations report into the `index.*` metrics.
    pub fn set_obs(&mut self, obs: Obs) {
        self.obs = obs;
    }

    /// The installed observability handle (disabled by default).
    pub fn obs(&self) -> &Obs {
        &self.obs
    }

    fn observe(&mut self, t: Timestamp) {
        self.horizon = self.horizon.max(t);
    }

    /// Indexes a new text instance.
    pub fn add_instance(&mut self, instance: IndexedInstance) {
        let bytes_before = self.bytes;
        self.observe(instance.shown);
        if let Some(hidden) = instance.hidden {
            self.observe(hidden);
        }
        let mut terms = index_tokens(&instance.text);
        terms.sort_unstable();
        terms.dedup();
        for term in terms {
            self.bytes += term.len() as u64 + 8;
            self.postings.entry(term).or_default().push(instance.id);
        }
        self.bytes +=
            (instance.text.len() + instance.app.len() + instance.window.len() + 32) as u64;
        self.instances.insert(instance.id, instance);
        self.obs.add(names::INDEX_BYTES, self.bytes - bytes_before);
    }

    /// Marks an instance as hidden at `t`. Unknown ids are ignored (the
    /// daemon may report hides for text filtered at indexing time).
    pub fn close_instance(&mut self, id: u64, t: Timestamp) {
        self.observe(t);
        if let Some(instance) = self.instances.get_mut(&id) {
            if instance.hidden.is_none() {
                instance.hidden = Some(t);
            }
        }
    }

    /// Records that `app_id` gained window focus at `t`.
    pub fn focus_change(&mut self, app_id: u32, t: Timestamp) {
        self.observe(t);
        self.focus_history.push((app_id, t));
    }

    /// Advances the index's notion of "now"; open instances are treated
    /// as visible up to the horizon.
    pub fn advance_horizon(&mut self, t: Timestamp) {
        self.observe(t);
    }

    /// Returns the latest time the index knows about.
    pub fn horizon(&self) -> Timestamp {
        self.horizon
    }

    /// Returns the visibility interval of an instance, closing open
    /// instances at the horizon and widening annotations to a small
    /// query window.
    pub fn visibility(&self, instance: &IndexedInstance) -> Interval {
        if instance.annotation {
            return Interval::new(
                instance.shown,
                instance
                    .shown
                    .saturating_add(dv_time::Duration::from_millis(ANNOTATION_WINDOW_MS)),
            );
        }
        let end = instance.hidden.unwrap_or(self.horizon);
        // An instance shown at the horizon is visible for an in-progress
        // moment; give it a minimal non-empty interval.
        let end = if end <= instance.shown {
            instance
                .shown
                .saturating_add(dv_time::Duration::from_millis(1))
        } else {
            end
        };
        Interval::new(instance.shown, end)
    }

    /// Returns the instances whose text contains `term` (already
    /// normalized), in indexing order.
    pub fn term_instances(&self, term: &str) -> Vec<&IndexedInstance> {
        match self.postings.get(term) {
            Some(ids) => ids.iter().filter_map(|id| self.instances.get(id)).collect(),
            None => Vec::new(),
        }
    }

    /// Returns every indexed instance (for "match any" queries).
    pub fn all_instances(&self) -> impl Iterator<Item = &IndexedInstance> {
        self.instances.values()
    }

    /// Returns an instance by id.
    pub fn instance(&self, id: u64) -> Option<&IndexedInstance> {
        self.instances.get(&id)
    }

    /// Returns the intervals during which `app_id` held window focus.
    pub fn focus_intervals(&self, app_id: u32) -> IntervalSet {
        let mut intervals = Vec::new();
        for (i, (app, start)) in self.focus_history.iter().enumerate() {
            if *app != app_id {
                continue;
            }
            let end = self
                .focus_history
                .get(i + 1..)
                .and_then(|rest| rest.iter().find(|(other, _)| other != app))
                .map(|(_, t)| *t)
                .unwrap_or(self.horizon);
            intervals.push(Interval::new(*start, end));
        }
        IntervalSet::from_intervals(intervals)
    }

    /// Returns the largest instance id in the index (0 when empty); a
    /// reopened index's producers must allocate above this.
    pub fn max_instance_id(&self) -> u64 {
        self.instances.keys().copied().max().unwrap_or(0)
    }

    /// Returns the raw focus-change history `(app_id, gained_at)`.
    pub fn focus_history(&self) -> &[(u32, Timestamp)] {
        &self.focus_history
    }

    /// Returns storage accounting.
    pub fn stats(&self) -> IndexStats {
        IndexStats {
            instances: self.instances.len() as u64,
            postings: self.postings.values().map(|v| v.len() as u64).sum(),
            terms: self.postings.len() as u64,
            bytes: self.bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inst(
        id: u64,
        app: &str,
        text: &str,
        shown_ms: u64,
        hidden_ms: Option<u64>,
    ) -> IndexedInstance {
        IndexedInstance {
            id,
            app_id: app.len() as u32,
            app: app.into(),
            window: format!("{app} window"),
            role: "paragraph".into(),
            text: text.into(),
            shown: Timestamp::from_millis(shown_ms),
            hidden: hidden_ms.map(Timestamp::from_millis),
            annotation: false,
        }
    }

    #[test]
    fn postings_find_instances_by_term() {
        let mut index = TextIndex::new();
        index.add_instance(inst(1, "editor", "alpha beta", 0, Some(100)));
        index.add_instance(inst(2, "term", "beta gamma", 50, Some(150)));
        assert_eq!(index.term_instances("alpha").len(), 1);
        assert_eq!(index.term_instances("beta").len(), 2);
        assert_eq!(index.term_instances("gamma")[0].id, 2);
        assert!(index.term_instances("delta").is_empty());
    }

    #[test]
    fn duplicate_terms_index_once_per_instance() {
        let mut index = TextIndex::new();
        index.add_instance(inst(1, "a", "word word word", 0, None));
        assert_eq!(index.term_instances("word").len(), 1);
        assert_eq!(index.stats().postings, 1);
    }

    #[test]
    fn open_instances_run_to_horizon() {
        let mut index = TextIndex::new();
        index.add_instance(inst(1, "a", "open text", 100, None));
        index.advance_horizon(Timestamp::from_millis(5_000));
        let instance = index.instance(1).unwrap();
        let iv = index.visibility(instance);
        assert_eq!(iv.start, Timestamp::from_millis(100));
        assert_eq!(iv.end, Timestamp::from_millis(5_000));
    }

    #[test]
    fn close_instance_fixes_interval() {
        let mut index = TextIndex::new();
        index.add_instance(inst(1, "a", "text", 100, None));
        index.close_instance(1, Timestamp::from_millis(300));
        index.advance_horizon(Timestamp::from_millis(9_000));
        let iv = index.visibility(index.instance(1).unwrap());
        assert_eq!(iv.end, Timestamp::from_millis(300));
        // Double-close is ignored.
        index.close_instance(1, Timestamp::from_millis(500));
        assert_eq!(
            index.visibility(index.instance(1).unwrap()).end,
            Timestamp::from_millis(300)
        );
    }

    #[test]
    fn annotations_are_point_events() {
        let mut index = TextIndex::new();
        let mut a = inst(1, "a", "tagged", 100, None);
        a.annotation = true;
        index.add_instance(a);
        index.advance_horizon(Timestamp::from_secs(100));
        let iv = index.visibility(index.instance(1).unwrap());
        assert_eq!(iv.start, Timestamp::from_millis(100));
        assert_eq!(iv.end, Timestamp::from_millis(101));
    }

    #[test]
    fn focus_intervals_follow_history() {
        let mut index = TextIndex::new();
        index.focus_change(1, Timestamp::from_millis(0));
        index.focus_change(2, Timestamp::from_millis(100));
        index.focus_change(1, Timestamp::from_millis(200));
        index.advance_horizon(Timestamp::from_millis(300));
        let f1 = index.focus_intervals(1);
        assert_eq!(f1.intervals().len(), 2);
        assert!(f1.contains(Timestamp::from_millis(50)));
        assert!(!f1.contains(Timestamp::from_millis(150)));
        assert!(f1.contains(Timestamp::from_millis(250)));
        let f2 = index.focus_intervals(2);
        assert!(f2.contains(Timestamp::from_millis(150)));
        assert!(index.focus_intervals(99).is_empty());
    }

    #[test]
    fn consecutive_focus_events_for_same_app_merge() {
        let mut index = TextIndex::new();
        index.focus_change(1, Timestamp::from_millis(0));
        index.focus_change(1, Timestamp::from_millis(50));
        index.focus_change(2, Timestamp::from_millis(100));
        index.advance_horizon(Timestamp::from_millis(200));
        let f1 = index.focus_intervals(1);
        assert_eq!(f1.intervals().len(), 1);
        assert_eq!(f1.intervals()[0].end, Timestamp::from_millis(100));
    }

    #[test]
    fn stats_accumulate() {
        let mut index = TextIndex::new();
        index.add_instance(inst(1, "a", "one two", 0, None));
        index.add_instance(inst(2, "b", "two three", 0, None));
        let stats = index.stats();
        assert_eq!(stats.instances, 2);
        assert_eq!(stats.terms, 3);
        assert_eq!(stats.postings, 4);
        assert!(stats.bytes > 0);
    }
}
