//! The byte-stream transport abstraction.
//!
//! dv-net speaks to clients through [`Transport`]: an ordered,
//! unframed, non-blocking byte stream with explicit lifecycle and an
//! edge-level [`Readiness`] facet the service's reactor uses to skip
//! quiet connections without issuing a single syscall. Two
//! implementations ship here:
//!
//! * [`LoopbackTransport`] — an in-memory duplex pipe over two
//!   [`ByteChannel`]s, deterministic under `dv-time`, with every send
//!   and receive routed through the `dv-fault` plane
//!   ([`dv_fault::sites::NET_SEND`] / [`dv_fault::sites::NET_RECV`]) so
//!   torn frames, stalls, corruption, and resets are injectable on a
//!   seeded schedule.
//! * [`TcpTransport`] — real `std::net` TCP in non-blocking mode, for
//!   serving actual remote viewers.
//!
//! [`ByteChannel`] itself (the display crate's original TCP stand-in)
//! also implements [`Transport`] as a one-directional stream, so
//! pre-dv-net plumbing migrates without rewrites.

use dv_display::{ByteChannel, ChannelClosed};
use dv_fault::{sites, FaultPlane, IoFault};

/// Errors surfaced by a transport operation.
///
/// Both are terminal: after either, the endpoint is closed and every
/// further operation fails.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TransportError {
    /// The peer closed the stream in an orderly way (EOF).
    Closed,
    /// The connection died mid-stream (injected or real reset).
    Reset,
}

impl std::fmt::Display for TransportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransportError::Closed => write!(f, "transport closed by peer"),
            TransportError::Reset => write!(f, "transport connection reset"),
        }
    }
}

impl std::error::Error for TransportError {}

/// Edge-level readiness of a transport endpoint, in the poll(2) sense.
///
/// The service's reactor consults this before doing any real work on a
/// connection: a quiet endpoint (`!readable && !closed`) is skipped
/// without a single `recv` call, which is what lets one `poll` turn
/// scale to a thousand mostly-idle viewers. Readiness is a *hint*
/// about whether an operation could make progress right now — it never
/// replaces the operation's own result. Spurious readiness is
/// harmless (the visit finds `Ok(0)` and moves on); a transport must
/// only guarantee it never reports *unready* while bytes or an EOF are
/// actually pending.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct Readiness {
    /// Bytes (or a pending EOF) are available to `recv`.
    pub readable: bool,
    /// A `send` could accept bytes right now.
    pub writable: bool,
    /// The endpoint is dead: the next operation will surface
    /// [`TransportError`]. Closed endpoints must still be visited so
    /// the error (and the drop report behind it) isn't deferred.
    pub closed: bool,
}

impl Readiness {
    /// The conservative "always visit me" answer: readable and
    /// writable, not closed.
    pub const READY: Readiness = Readiness {
        readable: true,
        writable: true,
        closed: false,
    };

    /// Whether the reactor may skip this connection's inbound side.
    #[must_use]
    pub fn inbound_quiet(&self) -> bool {
        !self.readable && !self.closed
    }
}

/// An ordered non-blocking byte stream with explicit lifecycle.
///
/// `Ok(0)` from [`send`](Transport::send) or [`recv`](Transport::recv)
/// means "nothing moved right now, try again later" (a stall or an
/// empty buffer) — never EOF. Peer departure is always an `Err`, so
/// callers can tell "no bytes yet" from "peer gone".
pub trait Transport: Send {
    /// Writes a prefix of `bytes`, returning how many were accepted.
    ///
    /// # Errors
    ///
    /// [`TransportError`] once the stream is closed or reset.
    fn send(&mut self, bytes: &[u8]) -> Result<usize, TransportError>;

    /// Reads into `buf`, returning how many bytes arrived.
    ///
    /// # Errors
    ///
    /// [`TransportError`] once the stream is drained *and* closed, or
    /// reset.
    fn recv(&mut self, buf: &mut [u8]) -> Result<usize, TransportError>;

    /// Closes this endpoint; the peer sees EOF after draining.
    fn close(&mut self);

    /// Whether this endpoint is still open.
    fn is_open(&self) -> bool;

    /// Reports edge-level readiness without moving any bytes.
    ///
    /// The default claims [`Readiness::READY`] — always visit — which
    /// is correct (if wasteful) for any transport: readiness may be
    /// spuriously true, never falsely quiet. Implementations that can
    /// answer cheaply (a buffered channel's length, a socket `peek`)
    /// should override so the reactor can skip them when idle.
    fn readiness(&mut self) -> Readiness {
        if self.is_open() {
            Readiness::READY
        } else {
            Readiness {
                readable: true,
                writable: false,
                closed: true,
            }
        }
    }
}

impl Transport for ByteChannel {
    fn send(&mut self, bytes: &[u8]) -> Result<usize, TransportError> {
        if self.is_closed() {
            return Err(TransportError::Closed);
        }
        Ok(ByteChannel::send(self, bytes))
    }

    fn recv(&mut self, buf: &mut [u8]) -> Result<usize, TransportError> {
        match self.try_recv(buf.len()) {
            Ok(chunk) => {
                buf[..chunk.len()].copy_from_slice(&chunk);
                Ok(chunk.len())
            }
            Err(ChannelClosed) => Err(TransportError::Closed),
        }
    }

    fn close(&mut self) {
        ByteChannel::close(self);
    }

    fn is_open(&self) -> bool {
        !self.is_closed()
    }
}

/// One endpoint of an in-memory duplex pipe.
///
/// Deterministic and fault-injectable: every `send` checks
/// [`sites::NET_SEND`] and every `recv` checks [`sites::NET_RECV`]
/// against the installed [`FaultPlane`]. Fault realizations:
///
/// | fault | `send` | `recv` |
/// |---|---|---|
/// | `LatencySpike` | stall: `Ok(0)`, nothing moves | stall: `Ok(0)` |
/// | `ShortRead` | partial write (prefix accepted) | partial read |
/// | `Corrupt` | one byte mangled in flight | one byte mangled |
/// | `TornWrite` | prefix delivered, then reset | reset |
/// | `Enospc` | reset, nothing delivered | reset |
///
/// A reset closes both directions, exactly like a dead socket: the
/// peer sees EOF after draining whatever was already in flight.
pub struct LoopbackTransport {
    tx: ByteChannel,
    rx: ByteChannel,
    plane: FaultPlane,
    /// Max bytes moved per call, so frames routinely span calls the
    /// way MTU-sized TCP segments would. `usize::MAX` disables.
    chunk: usize,
}

impl LoopbackTransport {
    /// Creates a connected pair of endpoints with no fault plane.
    pub fn pair() -> (LoopbackTransport, LoopbackTransport) {
        LoopbackTransport::faulty_pair(&FaultPlane::disabled())
    }

    /// Creates a connected pair with `plane` checked on every
    /// operation *of both endpoints* (they share the schedule, like
    /// two NICs on one injected network).
    pub fn faulty_pair(plane: &FaultPlane) -> (LoopbackTransport, LoopbackTransport) {
        let a_to_b = ByteChannel::new();
        let b_to_a = ByteChannel::new();
        let a = LoopbackTransport {
            tx: a_to_b.clone(),
            rx: b_to_a.clone(),
            plane: plane.clone(),
            chunk: 1400,
        };
        let b = LoopbackTransport {
            tx: b_to_a,
            rx: a_to_b,
            plane: plane.clone(),
            chunk: 1400,
        };
        (a, b)
    }

    /// Overrides the per-call transfer cap (default 1400, MTU-ish).
    pub fn with_chunk(mut self, chunk: usize) -> Self {
        self.chunk = chunk.max(1);
        self
    }

    fn reset(&mut self) -> TransportError {
        self.tx.close();
        self.rx.close();
        TransportError::Reset
    }
}

impl Transport for LoopbackTransport {
    fn send(&mut self, bytes: &[u8]) -> Result<usize, TransportError> {
        if self.tx.is_closed() {
            return Err(TransportError::Closed);
        }
        let take = bytes.len().min(self.chunk);
        match self.plane.check(sites::NET_SEND) {
            None => Ok(self.tx.send(&bytes[..take])),
            Some(IoFault::LatencySpike) => Ok(0),
            Some(IoFault::ShortRead) => {
                let short = self.plane.short_len(take);
                Ok(self.tx.send(&bytes[..short]))
            }
            Some(IoFault::Corrupt) => {
                let mut mangled = bytes[..take].to_vec();
                self.plane.mangle(&mut mangled);
                Ok(self.tx.send(&mangled))
            }
            Some(IoFault::TornWrite) => {
                let torn = self.plane.short_len(take);
                self.tx.send(&bytes[..torn]);
                Err(self.reset())
            }
            Some(IoFault::Enospc) => Err(self.reset()),
        }
    }

    fn recv(&mut self, buf: &mut [u8]) -> Result<usize, TransportError> {
        let fault = self.plane.check(sites::NET_RECV);
        match fault {
            Some(IoFault::LatencySpike) => return Ok(0),
            Some(IoFault::TornWrite) | Some(IoFault::Enospc) => return Err(self.reset()),
            _ => {}
        }
        let want = match fault {
            Some(IoFault::ShortRead) => self.plane.short_len(buf.len().min(self.chunk)).max(1),
            _ => buf.len().min(self.chunk),
        };
        let chunk = match self.rx.try_recv(want) {
            Ok(chunk) => chunk,
            Err(ChannelClosed) => return Err(TransportError::Closed),
        };
        buf[..chunk.len()].copy_from_slice(&chunk);
        if matches!(fault, Some(IoFault::Corrupt)) {
            self.plane.mangle(&mut buf[..chunk.len()]);
        }
        Ok(chunk.len())
    }

    fn close(&mut self) {
        self.tx.close();
        self.rx.close();
    }

    fn is_open(&self) -> bool {
        !self.tx.is_closed()
    }

    /// Deterministic readiness from the channel buffers: readable iff
    /// bytes are queued (or the peer closed, so EOF is pending),
    /// writable until this side closes. No fault-plane check — probing
    /// readiness is not an I/O operation and must not consume injected
    /// faults out from under the operation they were scheduled for.
    fn readiness(&mut self) -> Readiness {
        let tx_closed = self.tx.is_closed();
        let rx_closed = self.rx.is_closed();
        Readiness {
            readable: !self.rx.is_empty() || rx_closed,
            writable: !tx_closed,
            closed: tx_closed || rx_closed,
        }
    }
}

/// Retries `op` for as long as it fails with `ErrorKind::Interrupted`.
///
/// EINTR means the syscall was interrupted by a signal before moving
/// any data; it is immediately retryable. Surfacing it as a zero-byte
/// "stall" (as this module once did) feeds the service's exponential
/// backoff and can escalate a perfectly healthy connection into a
/// `Stalled` disconnect.
fn io_retry<T>(mut op: impl FnMut() -> std::io::Result<T>) -> std::io::Result<T> {
    loop {
        match op() {
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            other => return other,
        }
    }
}

/// A [`Transport`] over a real non-blocking [`std::net::TcpStream`].
pub struct TcpTransport {
    stream: std::net::TcpStream,
    open: bool,
}

impl TcpTransport {
    /// Wraps a connected stream, switching it to non-blocking mode and
    /// disabling Nagle (frames are latency-sensitive).
    ///
    /// # Errors
    ///
    /// Propagates the `set_nonblocking` failure.
    pub fn new(stream: std::net::TcpStream) -> std::io::Result<Self> {
        stream.set_nonblocking(true)?;
        let _ = stream.set_nodelay(true);
        Ok(TcpTransport { stream, open: true })
    }

    /// Connects to `addr` and wraps the stream.
    ///
    /// # Errors
    ///
    /// Propagates connection failure.
    pub fn connect(addr: impl std::net::ToSocketAddrs) -> std::io::Result<Self> {
        TcpTransport::new(std::net::TcpStream::connect(addr)?)
    }
}

impl Transport for TcpTransport {
    fn send(&mut self, bytes: &[u8]) -> Result<usize, TransportError> {
        use std::io::Write;
        if !self.open {
            return Err(TransportError::Closed);
        }
        match io_retry(|| self.stream.write(bytes)) {
            Ok(n) => Ok(n),
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => Ok(0),
            Err(_) => {
                self.open = false;
                Err(TransportError::Reset)
            }
        }
    }

    fn recv(&mut self, buf: &mut [u8]) -> Result<usize, TransportError> {
        use std::io::Read;
        if !self.open {
            return Err(TransportError::Closed);
        }
        match io_retry(|| self.stream.read(buf)) {
            Ok(0) if !buf.is_empty() => {
                self.open = false;
                Err(TransportError::Closed)
            }
            Ok(n) => Ok(n),
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => Ok(0),
            Err(_) => {
                self.open = false;
                Err(TransportError::Reset)
            }
        }
    }

    fn close(&mut self) {
        let _ = self.stream.shutdown(std::net::Shutdown::Both);
        self.open = false;
    }

    fn is_open(&self) -> bool {
        self.open
    }

    /// Poll-style readiness from a one-byte non-blocking `peek`:
    /// `Ok(n>0)` means bytes are buffered, `Ok(0)` means EOF is
    /// pending (readable so `recv` surfaces it), `WouldBlock` means
    /// quiet. Writability is claimed optimistically while the socket
    /// is open — a full send buffer still answers `Ok(0)` from `send`
    /// and rides the service's retry backoff, exactly as before.
    fn readiness(&mut self) -> Readiness {
        if !self.open {
            return Readiness {
                readable: true,
                writable: false,
                closed: true,
            };
        }
        let mut probe = [0u8; 1];
        match io_retry(|| self.stream.peek(&mut probe)) {
            Ok(0) => Readiness {
                readable: true,
                writable: true,
                closed: true,
            },
            Ok(_) => Readiness::READY,
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => Readiness {
                readable: false,
                writable: true,
                closed: false,
            },
            Err(_) => Readiness {
                readable: true,
                writable: false,
                closed: true,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dv_fault::FaultPlan;

    #[test]
    fn loopback_pair_is_duplex() {
        let (mut a, mut b) = LoopbackTransport::pair();
        assert_eq!(a.send(b"ping").unwrap(), 4);
        let mut buf = [0u8; 16];
        assert_eq!(b.recv(&mut buf).unwrap(), 4);
        assert_eq!(&buf[..4], b"ping");
        assert_eq!(b.send(b"pong!").unwrap(), 5);
        assert_eq!(a.recv(&mut buf).unwrap(), 5);
        assert_eq!(&buf[..5], b"pong!");
        // Nothing pending: a quiet Ok(0), not an error.
        assert_eq!(a.recv(&mut buf).unwrap(), 0);
    }

    #[test]
    fn close_drains_then_reports_closed() {
        let (mut a, mut b) = LoopbackTransport::pair();
        a.send(b"last words").unwrap();
        a.close();
        assert!(!a.is_open());
        let mut buf = [0u8; 64];
        assert_eq!(b.recv(&mut buf).unwrap(), 10);
        assert_eq!(b.recv(&mut buf), Err(TransportError::Closed));
        assert_eq!(b.send(b"into the void"), Err(TransportError::Closed));
    }

    #[test]
    fn injected_stall_is_transient() {
        let plane = FaultPlan::new(3)
            .fail_nth(sites::NET_SEND, 1, IoFault::LatencySpike)
            .build();
        let (mut a, mut b) = LoopbackTransport::faulty_pair(&plane);
        assert_eq!(a.send(b"delayed").unwrap(), 0, "stalled");
        assert_eq!(a.send(b"delayed").unwrap(), 7, "retry moves the bytes");
        let mut buf = [0u8; 16];
        assert_eq!(b.recv(&mut buf).unwrap(), 7);
    }

    #[test]
    fn injected_reset_closes_both_directions() {
        let plane = FaultPlan::new(4)
            .fail_nth(sites::NET_SEND, 2, IoFault::TornWrite)
            .build();
        let (mut a, mut b) = LoopbackTransport::faulty_pair(&plane);
        assert!(a.send(b"intact frame").is_ok());
        assert_eq!(a.send(b"torn frame bytes"), Err(TransportError::Reset));
        assert!(!a.is_open());
        // The peer drains delivered bytes (including the torn prefix),
        // then sees EOF.
        let mut buf = [0u8; 64];
        let mut drained = 0;
        loop {
            match b.recv(&mut buf) {
                Ok(n) => drained += n,
                Err(e) => {
                    assert_eq!(e, TransportError::Closed);
                    break;
                }
            }
        }
        assert!(drained >= b"intact frame".len());
        assert_eq!(plane.injected_at(sites::NET_SEND), 1);
    }

    #[test]
    fn loopback_readiness_is_deterministic() {
        let (mut a, mut b) = LoopbackTransport::pair();
        // Fresh pair: quiet inbound, writable, alive.
        let r = a.readiness();
        assert!(r.inbound_quiet());
        assert!(!r.readable && r.writable && !r.closed);
        // Peer bytes flip the readable edge without being consumed.
        b.send(b"knock").unwrap();
        let r = a.readiness();
        assert!(r.readable && !r.closed);
        assert!(!r.inbound_quiet());
        let mut buf = [0u8; 16];
        assert_eq!(a.recv(&mut buf).unwrap(), 5);
        assert!(a.readiness().inbound_quiet(), "drained means quiet again");
        // Peer close: readable (EOF pending) and closed — never quiet,
        // so the reactor still visits and surfaces the drop.
        b.close();
        let r = a.readiness();
        assert!(r.readable && r.closed);
        assert!(!r.inbound_quiet());
        assert_eq!(a.recv(&mut buf), Err(TransportError::Closed));
    }

    #[test]
    fn readiness_probe_consumes_no_injected_faults() {
        let plane = FaultPlan::new(9)
            .fail_nth(sites::NET_RECV, 1, IoFault::LatencySpike)
            .build();
        let (mut a, mut b) = LoopbackTransport::faulty_pair(&plane);
        b.send(b"x").unwrap();
        // However often readiness is probed, the scheduled fault still
        // lands on the first real recv.
        for _ in 0..10 {
            assert!(a.readiness().readable);
        }
        let mut buf = [0u8; 4];
        assert_eq!(a.recv(&mut buf).unwrap(), 0, "fault fires on the op");
        assert_eq!(a.recv(&mut buf).unwrap(), 1);
    }

    #[test]
    fn io_retry_absorbs_eintr_without_burning_a_call() {
        // Regression: EINTR used to map to Ok(0), which pump_queues
        // counts as a stall. It must be retried inline instead.
        let mut calls = 0;
        let got = io_retry(|| {
            calls += 1;
            if calls < 3 {
                Err(std::io::Error::from(std::io::ErrorKind::Interrupted))
            } else {
                Ok(5usize)
            }
        })
        .unwrap();
        assert_eq!(got, 5);
        assert_eq!(calls, 3, "retried exactly until the syscall landed");
        // Other errors pass straight through.
        let err = io_retry(|| -> std::io::Result<usize> {
            Err(std::io::Error::from(std::io::ErrorKind::WouldBlock))
        })
        .unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::WouldBlock);
    }

    #[test]
    fn byte_channel_is_a_one_directional_transport() {
        let mut writer = ByteChannel::new();
        let mut reader = writer.clone();
        Transport::send(&mut writer, b"framed").unwrap();
        let mut buf = [0u8; 8];
        assert_eq!(Transport::recv(&mut reader, &mut buf).unwrap(), 6);
        Transport::close(&mut writer);
        assert_eq!(
            Transport::recv(&mut reader, &mut buf),
            Err(TransportError::Closed)
        );
    }

    #[test]
    fn tcp_transport_round_trips_localhost() {
        let listener = match std::net::TcpListener::bind("127.0.0.1:0") {
            Ok(l) => l,
            // Sandboxed environments may forbid sockets entirely; the
            // loopback transport covers the protocol in that case.
            Err(_) => return,
        };
        let addr = listener.local_addr().unwrap();
        let mut client = TcpTransport::connect(addr).unwrap();
        let (server_stream, _) = listener.accept().unwrap();
        let mut server = TcpTransport::new(server_stream).unwrap();
        let r = server.readiness();
        assert!(!r.readable && r.writable && !r.closed, "quiet fresh socket");
        assert_eq!(client.send(b"over tcp").unwrap(), 8);
        for _ in 0..1000 {
            if server.readiness().readable {
                break;
            }
            std::thread::yield_now();
        }
        assert!(server.readiness().readable, "peek sees buffered bytes");
        let mut buf = [0u8; 16];
        let mut got = 0;
        for _ in 0..1000 {
            got += server.recv(&mut buf[got..]).unwrap();
            if got == 8 {
                break;
            }
            std::thread::yield_now();
        }
        assert_eq!(&buf[..8], b"over tcp");
        client.close();
        let mut end = [0u8; 4];
        for _ in 0..1000 {
            match server.recv(&mut end) {
                Ok(0) => std::thread::yield_now(),
                Ok(_) => panic!("unexpected bytes"),
                Err(e) => {
                    assert_eq!(e, TransportError::Closed);
                    return;
                }
            }
        }
        panic!("EOF never surfaced");
    }
}
