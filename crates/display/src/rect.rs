//! Rectangles and damage regions.
//!
//! Display commands target axis-aligned rectangles; the recorder and the
//! checkpoint policy reason about how much of the screen a batch of
//! commands touches (the policy skips checkpoints when "at most 5% of the
//! screen" changed, §5.1.3). [`Region`] maintains a set of disjoint
//! rectangles for exact coverage accounting.

/// An axis-aligned rectangle in screen coordinates.
///
/// `x`/`y` is the top-left corner; `w`/`h` are in pixels. A rectangle with
/// zero width or height is empty.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub struct Rect {
    /// Left edge, in pixels from the screen's left.
    pub x: u32,
    /// Top edge, in pixels from the screen's top.
    pub y: u32,
    /// Width in pixels.
    pub w: u32,
    /// Height in pixels.
    pub h: u32,
}

impl Rect {
    /// Creates a rectangle from its top-left corner and size.
    pub const fn new(x: u32, y: u32, w: u32, h: u32) -> Self {
        Rect { x, y, w, h }
    }

    /// Returns the rectangle covering an entire `w` x `h` screen.
    pub const fn screen(w: u32, h: u32) -> Self {
        Rect { x: 0, y: 0, w, h }
    }

    /// Returns whether the rectangle contains no pixels.
    pub const fn is_empty(&self) -> bool {
        self.w == 0 || self.h == 0
    }

    /// Returns the number of pixels covered.
    pub const fn area(&self) -> u64 {
        self.w as u64 * self.h as u64
    }

    /// Returns the exclusive right edge.
    pub const fn right(&self) -> u32 {
        self.x + self.w
    }

    /// Returns the exclusive bottom edge.
    pub const fn bottom(&self) -> u32 {
        self.y + self.h
    }

    /// Returns whether `other` lies entirely within `self`.
    pub fn contains(&self, other: &Rect) -> bool {
        if other.is_empty() {
            return true;
        }
        self.x <= other.x
            && self.y <= other.y
            && self.right() >= other.right()
            && self.bottom() >= other.bottom()
    }

    /// Returns whether the point `(px, py)` lies within the rectangle.
    pub fn contains_point(&self, px: u32, py: u32) -> bool {
        px >= self.x && px < self.right() && py >= self.y && py < self.bottom()
    }

    /// Returns the overlap of two rectangles, or an empty rectangle if
    /// they are disjoint.
    pub fn intersect(&self, other: &Rect) -> Rect {
        let x = self.x.max(other.x);
        let y = self.y.max(other.y);
        let right = self.right().min(other.right());
        let bottom = self.bottom().min(other.bottom());
        if right <= x || bottom <= y {
            Rect::default()
        } else {
            Rect::new(x, y, right - x, bottom - y)
        }
    }

    /// Returns whether the rectangles share at least one pixel.
    pub fn overlaps(&self, other: &Rect) -> bool {
        !self.intersect(other).is_empty()
    }

    /// Returns the smallest rectangle containing both.
    pub fn union_bounds(&self, other: &Rect) -> Rect {
        if self.is_empty() {
            return *other;
        }
        if other.is_empty() {
            return *self;
        }
        let x = self.x.min(other.x);
        let y = self.y.min(other.y);
        let right = self.right().max(other.right());
        let bottom = self.bottom().max(other.bottom());
        Rect::new(x, y, right - x, bottom - y)
    }

    /// Returns `self` minus `other` as up to four disjoint rectangles.
    pub fn subtract(&self, other: &Rect) -> Vec<Rect> {
        let inter = self.intersect(other);
        if inter.is_empty() {
            return if self.is_empty() { vec![] } else { vec![*self] };
        }
        if inter == *self {
            return vec![];
        }
        let mut out = Vec::with_capacity(4);
        // Band above the intersection.
        if inter.y > self.y {
            out.push(Rect::new(self.x, self.y, self.w, inter.y - self.y));
        }
        // Band below the intersection.
        if inter.bottom() < self.bottom() {
            out.push(Rect::new(
                self.x,
                inter.bottom(),
                self.w,
                self.bottom() - inter.bottom(),
            ));
        }
        // Left sliver within the intersection's vertical band.
        if inter.x > self.x {
            out.push(Rect::new(self.x, inter.y, inter.x - self.x, inter.h));
        }
        // Right sliver within the intersection's vertical band.
        if inter.right() < self.right() {
            out.push(Rect::new(
                inter.right(),
                inter.y,
                self.right() - inter.right(),
                inter.h,
            ));
        }
        out
    }

    /// Scales the rectangle by `num/den`, rounding the origin down and the
    /// far edges up so the scaled rectangle covers at least the source.
    ///
    /// # Panics
    ///
    /// Panics if `den` is zero.
    pub fn scale(&self, num: u32, den: u32) -> Rect {
        assert!(den > 0, "scale denominator must be non-zero");
        if self.is_empty() {
            return Rect::default();
        }
        let x = self.x as u64 * num as u64 / den as u64;
        let y = self.y as u64 * num as u64 / den as u64;
        let right = (self.right() as u64 * num as u64).div_ceil(den as u64);
        let bottom = (self.bottom() as u64 * num as u64).div_ceil(den as u64);
        Rect::new(x as u32, y as u32, (right - x) as u32, (bottom - y) as u32)
    }
}

/// A set of disjoint rectangles with exact area accounting.
///
/// Insertion keeps the invariant that stored rectangles never overlap, so
/// [`Region::area`] is exact even when callers add overlapping damage.
#[derive(Clone, Debug, Default)]
pub struct Region {
    rects: Vec<Rect>,
}

impl Region {
    /// Creates an empty region.
    pub fn new() -> Self {
        Region::default()
    }

    /// Returns the stored disjoint rectangles.
    pub fn rects(&self) -> &[Rect] {
        &self.rects
    }

    /// Returns whether the region covers no pixels.
    pub fn is_empty(&self) -> bool {
        self.rects.is_empty()
    }

    /// Returns the exact number of pixels covered.
    pub fn area(&self) -> u64 {
        self.rects.iter().map(Rect::area).sum()
    }

    /// Adds a rectangle, splitting it around existing coverage so the
    /// disjointness invariant holds.
    pub fn add(&mut self, rect: Rect) {
        if rect.is_empty() {
            return;
        }
        let mut pending = vec![rect];
        for existing in &self.rects {
            let mut next = Vec::new();
            for piece in pending {
                next.extend(piece.subtract(existing));
            }
            pending = next;
            if pending.is_empty() {
                return;
            }
        }
        self.rects.extend(pending);
    }

    /// Removes all coverage.
    pub fn clear(&mut self) {
        self.rects.clear();
    }

    /// Returns the fraction of a `w` x `h` screen this region covers, in
    /// `[0, 1]`.
    pub fn coverage_of(&self, w: u32, h: u32) -> f64 {
        let screen = (w as u64 * h as u64) as f64;
        if screen == 0.0 {
            return 0.0;
        }
        self.area() as f64 / screen
    }

    /// Returns the bounding box of the region, or an empty rectangle.
    pub fn bounds(&self) -> Rect {
        self.rects
            .iter()
            .fold(Rect::default(), |acc, r| acc.union_bounds(r))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intersect_basic() {
        let a = Rect::new(0, 0, 10, 10);
        let b = Rect::new(5, 5, 10, 10);
        assert_eq!(a.intersect(&b), Rect::new(5, 5, 5, 5));
        assert_eq!(b.intersect(&a), Rect::new(5, 5, 5, 5));
    }

    #[test]
    fn intersect_disjoint_is_empty() {
        let a = Rect::new(0, 0, 5, 5);
        let b = Rect::new(5, 0, 5, 5);
        assert!(a.intersect(&b).is_empty());
        assert!(!a.overlaps(&b));
    }

    #[test]
    fn contains_and_points() {
        let a = Rect::new(2, 2, 4, 4);
        assert!(a.contains(&Rect::new(3, 3, 2, 2)));
        assert!(!a.contains(&Rect::new(3, 3, 4, 4)));
        assert!(a.contains_point(2, 2));
        assert!(!a.contains_point(6, 6));
    }

    #[test]
    fn subtract_produces_disjoint_cover() {
        let a = Rect::new(0, 0, 10, 10);
        let b = Rect::new(3, 3, 4, 4);
        let parts = a.subtract(&b);
        let total: u64 = parts.iter().map(Rect::area).sum();
        assert_eq!(total, a.area() - b.area());
        for (i, p) in parts.iter().enumerate() {
            assert!(!p.overlaps(&b), "piece {i} overlaps the hole");
            for q in &parts[i + 1..] {
                assert!(!p.overlaps(q), "pieces overlap each other");
            }
        }
    }

    #[test]
    fn subtract_full_cover_is_empty() {
        let a = Rect::new(2, 2, 3, 3);
        assert!(a.subtract(&Rect::new(0, 0, 10, 10)).is_empty());
    }

    #[test]
    fn union_bounds_covers_both() {
        let a = Rect::new(0, 0, 2, 2);
        let b = Rect::new(8, 8, 2, 2);
        let u = a.union_bounds(&b);
        assert!(u.contains(&a) && u.contains(&b));
        assert_eq!(u, Rect::new(0, 0, 10, 10));
    }

    #[test]
    fn scale_covers_source() {
        let r = Rect::new(3, 5, 7, 9);
        let half = r.scale(1, 2);
        assert_eq!(half, Rect::new(1, 2, 4, 5));
        let same = r.scale(4, 4);
        assert_eq!(same, r);
    }

    #[test]
    fn region_area_ignores_overlap() {
        let mut region = Region::new();
        region.add(Rect::new(0, 0, 10, 10));
        region.add(Rect::new(5, 5, 10, 10));
        assert_eq!(region.area(), 100 + 100 - 25);
    }

    #[test]
    fn region_coverage_fraction() {
        let mut region = Region::new();
        region.add(Rect::new(0, 0, 10, 10));
        let cov = region.coverage_of(100, 10);
        assert!((cov - 0.1).abs() < 1e-9);
    }

    #[test]
    fn region_duplicate_add_is_idempotent() {
        let mut region = Region::new();
        region.add(Rect::new(1, 1, 4, 4));
        region.add(Rect::new(1, 1, 4, 4));
        assert_eq!(region.area(), 16);
    }

    #[test]
    fn region_bounds() {
        let mut region = Region::new();
        assert!(region.bounds().is_empty());
        region.add(Rect::new(1, 1, 2, 2));
        region.add(Rect::new(7, 0, 1, 5));
        assert_eq!(region.bounds(), Rect::new(1, 0, 7, 5));
    }
}
