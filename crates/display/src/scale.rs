//! Resolution scaling of commands and screenshots.
//!
//! DejaView "can easily adjust the recording quality in terms of both the
//! resolution and frequency of display updates" (§4.1): the recorded
//! command stream can be resized independently of what the viewer shows,
//! e.g. recording at full desktop resolution while viewing on a PDA, or
//! recording at reduced resolution to save storage. Scaling is expressed
//! as a rational `num/den` so repeated scaling stays exact on rectangle
//! bookkeeping.

use std::sync::Arc;

use crate::command::{DisplayCommand, Pixel};
use crate::framebuffer::Screenshot;

/// A rational scaling factor applied to recorded output.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ScaleFactor {
    /// Numerator.
    pub num: u32,
    /// Denominator.
    pub den: u32,
}

impl ScaleFactor {
    /// The identity scale.
    pub const ONE: ScaleFactor = ScaleFactor { num: 1, den: 1 };

    /// Creates a scale factor.
    ///
    /// # Panics
    ///
    /// Panics if either component is zero.
    pub fn new(num: u32, den: u32) -> Self {
        assert!(num > 0 && den > 0, "scale factor must be positive");
        ScaleFactor { num, den }
    }

    /// Returns whether this is the identity scale.
    pub fn is_identity(&self) -> bool {
        self.num == self.den
    }

    /// Scales a single coordinate (rounding down).
    pub fn apply(&self, v: u32) -> u32 {
        (v as u64 * self.num as u64 / self.den as u64) as u32
    }
}

/// Scales a command to the recording resolution.
///
/// Raw payloads and glyph bitmaps are resampled with nearest-neighbour;
/// fills and video frames only need their rectangles adjusted (video
/// frames are scaled at application time anyway). Scaling is lossy for
/// raw content, exactly as in the paper: a record saved at reduced
/// resolution cannot recover full-resolution detail.
pub fn scale_command(cmd: &DisplayCommand, scale: ScaleFactor) -> DisplayCommand {
    if scale.is_identity() {
        return cmd.clone();
    }
    match cmd {
        DisplayCommand::Raw { rect, pixels } => {
            let out_rect = rect.scale(scale.num, scale.den);
            let data = resample_pixels(pixels, rect.w, rect.h, out_rect.w, out_rect.h);
            DisplayCommand::Raw {
                rect: out_rect,
                pixels: Arc::new(data),
            }
        }
        DisplayCommand::CopyArea { src_x, src_y, rect } => DisplayCommand::CopyArea {
            src_x: scale.apply(*src_x),
            src_y: scale.apply(*src_y),
            rect: rect.scale(scale.num, scale.den),
        },
        DisplayCommand::SolidFill { rect, color } => DisplayCommand::SolidFill {
            rect: rect.scale(scale.num, scale.den),
            color: *color,
        },
        DisplayCommand::PatternFill { rect, pattern } => DisplayCommand::PatternFill {
            rect: rect.scale(scale.num, scale.den),
            pattern: *pattern,
        },
        DisplayCommand::Glyph { rect, bits, fg, bg } => {
            let out_rect = rect.scale(scale.num, scale.den);
            let out_bits = resample_bits(bits, rect.w, rect.h, out_rect.w, out_rect.h);
            DisplayCommand::Glyph {
                rect: out_rect,
                bits: Arc::new(out_bits),
                fg: *fg,
                bg: *bg,
            }
        }
        DisplayCommand::Video { rect, frame } => DisplayCommand::Video {
            rect: rect.scale(scale.num, scale.den),
            frame: frame.clone(),
        },
    }
}

/// Scales a screenshot with nearest-neighbour resampling.
pub fn scale_screenshot(shot: &Screenshot, scale: ScaleFactor) -> Screenshot {
    if scale.is_identity() {
        return shot.clone();
    }
    let w = scale.apply(shot.width).max(1);
    let h = scale.apply(shot.height).max(1);
    let pixels = resample_pixels(&shot.pixels, shot.width, shot.height, w, h);
    Screenshot {
        width: w,
        height: h,
        pixels: Arc::new(pixels),
    }
}

/// Resamples a screenshot to an exact target geometry, independently
/// per axis (nearest-neighbour, like [`scale_screenshot`] but
/// anisotropic). This is the thumbnail path: a fixed-size thumbnail of
/// an arbitrary-aspect screen needs `w x h` exactly, not one rational
/// factor applied to both axes.
pub fn resample_screenshot(shot: &Screenshot, w: u32, h: u32) -> Screenshot {
    let w = w.max(1);
    let h = h.max(1);
    if w == shot.width && h == shot.height {
        return shot.clone();
    }
    let pixels = if shot.width == 0 || shot.height == 0 {
        vec![0; (w * h) as usize]
    } else {
        resample_pixels(&shot.pixels, shot.width, shot.height, w, h)
    };
    Screenshot {
        width: w,
        height: h,
        pixels: Arc::new(pixels),
    }
}

fn resample_pixels(src: &[Pixel], sw: u32, sh: u32, dw: u32, dh: u32) -> Vec<Pixel> {
    if dw == 0 || dh == 0 || sw == 0 || sh == 0 {
        return Vec::new();
    }
    let mut out = Vec::with_capacity((dw * dh) as usize);
    for y in 0..dh {
        let sy = (y as u64 * sh as u64 / dh as u64).min(sh as u64 - 1) as u32;
        for x in 0..dw {
            let sx = (x as u64 * sw as u64 / dw as u64).min(sw as u64 - 1) as u32;
            out.push(src[(sy * sw + sx) as usize]);
        }
    }
    out
}

fn resample_bits(src: &[u8], sw: u32, sh: u32, dw: u32, dh: u32) -> Vec<u8> {
    if dw == 0 || dh == 0 || sw == 0 || sh == 0 {
        return Vec::new();
    }
    let src_stride = (sw as usize).div_ceil(8);
    let dst_stride = (dw as usize).div_ceil(8);
    let mut out = vec![0u8; dst_stride * dh as usize];
    for y in 0..dh {
        let sy = (y as u64 * sh as u64 / dh as u64).min(sh as u64 - 1) as usize;
        for x in 0..dw {
            let sx = (x as u64 * sw as u64 / dw as u64).min(sw as u64 - 1) as usize;
            let bit = src[sy * src_stride + sx / 8] >> (7 - sx % 8) & 1;
            if bit == 1 {
                out[y as usize * dst_stride + x as usize / 8] |= 1 << (7 - x % 8);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::command::Pattern;
    use crate::rect::Rect;

    #[test]
    fn identity_scale_is_a_clone() {
        let cmd = DisplayCommand::SolidFill {
            rect: Rect::new(3, 3, 5, 5),
            color: 9,
        };
        assert_eq!(scale_command(&cmd, ScaleFactor::ONE), cmd);
    }

    #[test]
    fn raw_halving_quarters_payload() {
        let cmd = DisplayCommand::Raw {
            rect: Rect::new(0, 0, 8, 8),
            pixels: Arc::new((0..64).collect()),
        };
        let half = scale_command(&cmd, ScaleFactor::new(1, 2));
        match half {
            DisplayCommand::Raw { rect, pixels } => {
                assert_eq!(rect, Rect::new(0, 0, 4, 4));
                assert_eq!(pixels.len(), 16);
                // Nearest neighbour keeps the top-left sample.
                assert_eq!(pixels[0], 0);
            }
            other => panic!("expected raw, got {other:?}"),
        }
    }

    #[test]
    fn copy_scales_source_too() {
        let cmd = DisplayCommand::CopyArea {
            src_x: 10,
            src_y: 20,
            rect: Rect::new(30, 40, 8, 8),
        };
        match scale_command(&cmd, ScaleFactor::new(1, 2)) {
            DisplayCommand::CopyArea { src_x, src_y, rect } => {
                assert_eq!((src_x, src_y), (5, 10));
                assert_eq!(rect, Rect::new(15, 20, 4, 4));
            }
            other => panic!("expected copy, got {other:?}"),
        }
    }

    #[test]
    fn glyph_bits_resample() {
        let cmd = DisplayCommand::Glyph {
            rect: Rect::new(0, 0, 8, 2),
            bits: Arc::new(vec![0b1111_0000, 0b0000_1111]),
            fg: 1,
            bg: 0,
        };
        match scale_command(&cmd, ScaleFactor::new(1, 2)) {
            DisplayCommand::Glyph { rect, bits, .. } => {
                assert_eq!(rect, Rect::new(0, 0, 4, 1));
                // Left half of row 0 was set -> first two bits set.
                assert_eq!(bits[0] & 0b1100_0000, 0b1100_0000);
                assert_eq!(bits[0] & 0b0011_0000, 0);
            }
            other => panic!("expected glyph, got {other:?}"),
        }
    }

    #[test]
    fn pattern_rect_scales() {
        let cmd = DisplayCommand::PatternFill {
            rect: Rect::new(4, 4, 16, 16),
            pattern: Pattern {
                bits: 1,
                fg: 1,
                bg: 0,
            },
        };
        match scale_command(&cmd, ScaleFactor::new(3, 4)) {
            DisplayCommand::PatternFill { rect, .. } => {
                assert_eq!(rect, Rect::new(3, 3, 12, 12));
            }
            other => panic!("expected pattern, got {other:?}"),
        }
    }

    #[test]
    fn screenshot_scaling_changes_dims() {
        let shot = Screenshot {
            width: 8,
            height: 4,
            pixels: Arc::new((0..32).collect()),
        };
        let scaled = scale_screenshot(&shot, ScaleFactor::new(1, 2));
        assert_eq!((scaled.width, scaled.height), (4, 2));
        assert_eq!(scaled.pixels.len(), 8);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_scale_rejected() {
        let _ = ScaleFactor::new(0, 2);
    }

    #[test]
    fn resample_hits_exact_target_geometry() {
        let shot = Screenshot {
            width: 10,
            height: 7,
            pixels: Arc::new((0..70).collect()),
        };
        let thumb = resample_screenshot(&shot, 4, 4);
        assert_eq!((thumb.width, thumb.height), (4, 4));
        assert_eq!(thumb.pixels.len(), 16);
        // Top-left sample survives; identity is a cheap clone.
        assert_eq!(thumb.pixels[0], 0);
        let same = resample_screenshot(&shot, 10, 7);
        assert_eq!(same, shot);
        // Upscaling a tiny screen fills the full target.
        let up = resample_screenshot(&thumb, 8, 2);
        assert_eq!(up.pixels.len(), 16);
    }
}
