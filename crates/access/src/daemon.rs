//! The text-capture daemon.
//!
//! The daemon is the bridge from the accessibility bus to the text index
//! (§4.2): it consumes synchronous events, keeps its [`MirrorTree`]
//! exact, and emits *text visibility intervals* to a [`TextSink`] — when
//! text appears on screen, when it changes, and when it disappears.
//! "By indexing the full state of the desktop's text over time, DejaView
//! is able to access the temporal relationships and state transitions of
//! all displayed text."

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use dv_obs::{names, Obs};
use dv_time::{SharedClock, Timestamp};

use crate::mirror::MirrorTree;
use crate::registry::{AccessEvent, AccessListener, AppId};
use crate::tree::{AccessibleTree, NodeId, Role};

/// A text-visibility start record handed to the sink.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct TextInstance {
    /// Unique instance id; the matching `text_hidden` carries the same.
    pub id: u64,
    /// When the text appeared.
    pub time: Timestamp,
    /// Owning application.
    pub app: AppId,
    /// Application name ("the name and type of the application that
    /// generated the text").
    pub app_name: String,
    /// Enclosing window title.
    pub window: String,
    /// The component's role (menu item, link, ... — the paper's "special
    /// properties about the text").
    pub role: Role,
    /// The visible text.
    pub text: String,
    /// Whether this is an explicit user annotation.
    pub annotation: bool,
}

/// The consumer of captured text intervals — in the full system, the
/// indexer.
pub trait TextSink: Send {
    /// Text became visible.
    fn text_shown(&mut self, instance: TextInstance);
    /// The instance with `id` stopped being visible at `time`.
    fn text_hidden(&mut self, id: u64, time: Timestamp);
    /// Window focus moved to `app` at `time`.
    fn focus_changed(&mut self, app: AppId, time: Timestamp);
}

/// Cumulative daemon statistics.
#[derive(Clone, Copy, Debug, Default)]
pub struct DaemonStats {
    /// Events processed.
    pub events: u64,
    /// Text instances emitted.
    pub shown: u64,
    /// Text instances closed.
    pub hidden: u64,
    /// Annotations captured.
    pub annotations: u64,
}

/// The capture daemon: an [`AccessListener`] maintaining the mirror and
/// feeding the index.
pub struct CaptureDaemon<S: TextSink> {
    mirror: MirrorTree,
    clock: SharedClock,
    sink: S,
    live: HashMap<(AppId, NodeId), u64>,
    instance_counter: Arc<AtomicU64>,
    stats: DaemonStats,
    obs: Obs,
}

impl<S: TextSink> CaptureDaemon<S> {
    /// Creates a daemon feeding `sink`.
    pub fn new(clock: SharedClock, sink: S) -> Self {
        CaptureDaemon::with_instance_counter(clock, sink, Arc::new(AtomicU64::new(1)))
    }

    /// Creates a daemon whose instance ids come from a shared counter,
    /// so ids stay unique when an archived index (with prior ids) is
    /// reopened.
    pub fn with_instance_counter(
        clock: SharedClock,
        sink: S,
        instance_counter: Arc<AtomicU64>,
    ) -> Self {
        CaptureDaemon {
            mirror: MirrorTree::new(),
            clock,
            sink,
            live: HashMap::new(),
            instance_counter,
            stats: DaemonStats::default(),
            obs: Obs::disabled(),
        }
    }

    /// Installs the observability handle: mirror updates are timed and
    /// emitted intervals counted into the `text.*` metrics.
    pub fn set_obs(&mut self, obs: Obs) {
        self.obs = obs;
    }

    /// Returns the daemon's mirror tree.
    pub fn mirror(&self) -> &MirrorTree {
        &self.mirror
    }

    /// Returns the sink.
    pub fn sink(&self) -> &S {
        &self.sink
    }

    /// Returns a mutable reference to the sink.
    pub fn sink_mut(&mut self) -> &mut S {
        &mut self.sink
    }

    /// Returns cumulative statistics.
    pub fn stats(&self) -> DaemonStats {
        self.stats
    }

    fn emit_shown(
        &mut self,
        app: AppId,
        node: NodeId,
        role: Role,
        text: &str,
        annotation: bool,
        now: Timestamp,
    ) {
        if text.trim().is_empty() {
            return;
        }
        let id = self.instance_counter.fetch_add(1, Ordering::Relaxed);
        let instance = TextInstance {
            id,
            time: now,
            app,
            app_name: self.mirror.app_name(app).unwrap_or("").to_string(),
            window: self.mirror.window_title(app, node),
            role,
            text: text.to_string(),
            annotation,
        };
        self.sink.text_shown(instance);
        self.stats.shown += 1;
        self.obs.incr(names::TEXT_SHOWN);
        if annotation {
            self.stats.annotations += 1;
            self.obs.incr(names::TEXT_ANNOTATIONS);
        } else {
            self.live.insert((app, node), id);
        }
    }

    fn emit_hidden(&mut self, app: AppId, node: NodeId, now: Timestamp) {
        if let Some(id) = self.live.remove(&(app, node)) {
            self.sink.text_hidden(id, now);
            self.stats.hidden += 1;
            self.obs.incr(names::TEXT_HIDDEN);
        }
    }
}

impl<S: TextSink> AccessListener for CaptureDaemon<S> {
    fn on_event(&mut self, tree: Option<&AccessibleTree>, event: &AccessEvent) {
        self.stats.events += 1;
        self.obs.incr(names::TEXT_EVENTS);
        let _span = self.obs.span("text", names::TEXT_MIRROR_APPLY);
        let now = self.clock.now();
        match event {
            AccessEvent::AppRegistered { app } => {
                if let Some(tree) = tree {
                    self.mirror.mirror_app(*app, tree);
                    // Surface any text the app registered with.
                    let initial: Vec<(NodeId, Role, String)> = self
                        .mirror
                        .iter()
                        .filter(|n| n.app == *app && !n.text.trim().is_empty())
                        .filter(|n| n.role != Role::Application && n.role != Role::Window)
                        .map(|n| (n.id, n.role, n.text.clone()))
                        .collect();
                    for (node, role, text) in initial {
                        self.emit_shown(*app, node, role, &text, false, now);
                    }
                }
            }
            AccessEvent::AppUnregistered { app } => {
                for node in self.mirror.remove_app(*app) {
                    self.emit_hidden(*app, node.id, now);
                }
            }
            AccessEvent::NodeAdded { app, node } => {
                if let Some(tree) = tree {
                    if let Some(mirrored) = self.mirror.mirror_added(*app, *node, tree) {
                        let (role, text) = (mirrored.role, mirrored.text.clone());
                        if role != Role::Application && role != Role::Window {
                            self.emit_shown(*app, *node, role, &text, false, now);
                        }
                    }
                }
            }
            AccessEvent::NodeRemoved { app, node } => {
                for removed in self.mirror.mirror_removed(*app, *node) {
                    self.emit_hidden(*app, removed.id, now);
                }
            }
            AccessEvent::TextChanged { app, node } => {
                if let Some(tree) = tree {
                    if let Some((_old, new)) = self.mirror.mirror_text_changed(*app, *node, tree) {
                        self.emit_hidden(*app, *node, now);
                        let role = self
                            .mirror
                            .node(*app, *node)
                            .map(|n| n.role)
                            .unwrap_or(Role::Label);
                        if role != Role::Application && role != Role::Window {
                            self.emit_shown(*app, *node, role, &new, false, now);
                        }
                    }
                }
            }
            AccessEvent::FocusGained { app } => {
                self.sink.focus_changed(*app, now);
            }
            AccessEvent::SelectionAnnotated { app, node, text } => {
                let text = text.clone();
                self.emit_shown(*app, *node, Role::Label, &text, true, now);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Desktop;
    use dv_time::SimClock;
    use parking_lot::Mutex;
    use std::sync::Arc;

    /// A sink recording everything it is told.
    #[derive(Default)]
    struct RecordingSink {
        shown: Vec<TextInstance>,
        hidden: Vec<(u64, Timestamp)>,
        focus: Vec<(AppId, Timestamp)>,
    }

    impl TextSink for Arc<Mutex<RecordingSink>> {
        fn text_shown(&mut self, instance: TextInstance) {
            self.lock().shown.push(instance);
        }
        fn text_hidden(&mut self, id: u64, time: Timestamp) {
            self.lock().hidden.push((id, time));
        }
        fn focus_changed(&mut self, app: AppId, time: Timestamp) {
            self.lock().focus.push((app, time));
        }
    }

    fn setup() -> (Desktop, SimClock, Arc<Mutex<RecordingSink>>) {
        let clock = SimClock::new();
        let sink = Arc::new(Mutex::new(RecordingSink::default()));
        let daemon = CaptureDaemon::new(clock.shared(), sink.clone());
        let mut desktop = Desktop::new();
        desktop.register_listener(Arc::new(Mutex::new(daemon)));
        (desktop, clock, sink)
    }

    #[test]
    fn text_lifecycle_produces_interval_events() {
        let (mut desktop, clock, sink) = setup();
        let app = desktop.register_app("editor");
        let root = desktop.root(app).unwrap();
        let win = desktop.add_node(app, root, Role::Window, "doc - editor");
        clock.advance(dv_time::Duration::from_secs(1));
        let para = desktop.add_node(app, win, Role::Paragraph, "hello world");
        clock.advance(dv_time::Duration::from_secs(5));
        desktop.set_text(app, para, "goodbye world");
        clock.advance(dv_time::Duration::from_secs(2));
        desktop.remove_subtree(app, para);

        let s = sink.lock();
        assert_eq!(s.shown.len(), 2);
        assert_eq!(s.shown[0].text, "hello world");
        assert_eq!(s.shown[0].time, Timestamp::from_secs(1));
        assert_eq!(s.shown[0].window, "doc - editor");
        assert_eq!(s.shown[0].app_name, "editor");
        assert_eq!(s.shown[1].text, "goodbye world");
        // The first instance hides when the text changes, the second
        // when the node is removed.
        assert_eq!(s.hidden.len(), 2);
        assert_eq!(s.hidden[0], (s.shown[0].id, Timestamp::from_secs(6)));
        assert_eq!(s.hidden[1], (s.shown[1].id, Timestamp::from_secs(8)));
    }

    #[test]
    fn window_titles_do_not_index_as_content() {
        let (mut desktop, _clock, sink) = setup();
        let app = desktop.register_app("term");
        let root = desktop.root(app).unwrap();
        desktop.add_node(app, root, Role::Window, "terminal one");
        assert!(sink.lock().shown.is_empty());
    }

    #[test]
    fn focus_events_forwarded() {
        let (mut desktop, clock, sink) = setup();
        let a = desktop.register_app("a");
        let b = desktop.register_app("b");
        desktop.focus(a);
        clock.advance(dv_time::Duration::from_secs(3));
        desktop.focus(b);
        let s = sink.lock();
        assert_eq!(
            s.focus,
            vec![(a, Timestamp::ZERO), (b, Timestamp::from_secs(3))]
        );
    }

    #[test]
    fn annotations_are_flagged() {
        let (mut desktop, _clock, sink) = setup();
        let app = desktop.register_app("editor");
        let root = desktop.root(app).unwrap();
        let win = desktop.add_node(app, root, Role::Window, "w");
        let para = desktop.add_node(app, win, Role::Paragraph, "meeting notes friday");
        desktop.annotate_selection(app, para, "friday");
        let s = sink.lock();
        let ann: Vec<&TextInstance> = s.shown.iter().filter(|i| i.annotation).collect();
        assert_eq!(ann.len(), 1);
        assert_eq!(ann[0].text, "friday");
    }

    #[test]
    fn app_exit_hides_all_text() {
        let (mut desktop, _clock, sink) = setup();
        let app = desktop.register_app("a");
        let root = desktop.root(app).unwrap();
        let win = desktop.add_node(app, root, Role::Window, "w");
        desktop.add_node(app, win, Role::Paragraph, "one");
        desktop.add_node(app, win, Role::Paragraph, "two");
        desktop.unregister_app(app);
        let s = sink.lock();
        assert_eq!(s.shown.len(), 2);
        assert_eq!(s.hidden.len(), 2);
    }

    #[test]
    fn app_registering_with_existing_text_is_captured() {
        let clock = SimClock::new();
        let sink = Arc::new(Mutex::new(RecordingSink::default()));
        let daemon = CaptureDaemon::new(clock.shared(), sink.clone());
        let mut desktop = Desktop::new();
        // App registers BEFORE the daemon attaches; daemon must pick up
        // its state when mirroring later apps... here we attach first and
        // grow the app afterwards, then register a second app with
        // pre-existing content to exercise the registration scan.
        desktop.register_listener(Arc::new(Mutex::new(daemon)));
        let _a = desktop.register_app("first");
        let b = desktop.register_app("second");
        let root = desktop.root(b).unwrap();
        let win = desktop.add_node(b, root, Role::Window, "w");
        desktop.add_node(b, win, Role::Paragraph, "preexisting");
        assert_eq!(sink.lock().shown.len(), 1);
    }

    #[test]
    fn empty_text_not_indexed() {
        let (mut desktop, _clock, sink) = setup();
        let app = desktop.register_app("a");
        let root = desktop.root(app).unwrap();
        let win = desktop.add_node(app, root, Role::Window, "w");
        desktop.add_node(app, win, Role::Paragraph, "   ");
        desktop.add_node(app, win, Role::Paragraph, "");
        assert!(sink.lock().shown.is_empty());
    }
}
