//! Full-text interval index for DejaView.
//!
//! The role PostgreSQL + Tsearch2 play in the original prototype (§4.2,
//! §4.4, §6), built from scratch: a [`TextIndex`] of text-visibility
//! instances with context (application, window, role, focus,
//! annotations), an inverted term index over them, a boolean +
//! contextual [`Query`] language with a string syntax, interval-algebra
//! evaluation ("locate the times in the display record in which the
//! query is satisfied"), ranked results, and a binary persistence
//! format.

#![deny(unsafe_code)]

pub mod index;
pub mod interval;
pub mod query;
pub mod search;
pub mod store;
pub mod tokenizer;

pub use index::{IndexStats, IndexedInstance, TextIndex};
pub use interval::{Interval, IntervalSet};
pub use query::{parse_query, ParseError, Query};
pub use search::{
    contains_phrase, evaluate, query_terms, search, snippet_of, RankOrder, SearchHit,
};
pub use store::{decode_index, encode_index, flush_segment, StoreError};
