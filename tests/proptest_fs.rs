//! Property tests for the file system substrates.
//!
//! Oracle testing: the log-structured file system and the union file
//! system must implement the same POSIX semantics as the plain in-memory
//! file system, for arbitrary operation sequences. Snapshot isolation
//! and journal recovery are additionally checked against recorded
//! expectations.

use proptest::prelude::*;

use dv_lsfs::{FileType, Filesystem, FsResult, Lsfs, MemFs, UnionFs};

/// A file system operation for random sequences.
#[derive(Clone, Debug)]
enum Op {
    Create(String),
    Mkdir(String),
    Write(String, u64, Vec<u8>),
    Truncate(String, u64),
    Unlink(String),
    Rmdir(String),
    Rename(String, String),
    Sync,
}

/// Small path universe so operations collide often.
fn arb_path() -> impl Strategy<Value = String> {
    prop_oneof![
        prop_oneof![Just("a"), Just("b"), Just("dir")].prop_map(|s| format!("/{s}")),
        (
            prop_oneof![Just("dir"), Just("deep")],
            prop_oneof![Just("x"), Just("y"), Just("z")]
        )
            .prop_map(|(d, f)| format!("/{d}/{f}")),
    ]
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        arb_path().prop_map(Op::Create),
        arb_path().prop_map(Op::Mkdir),
        (
            arb_path(),
            0..6_000u64,
            prop::collection::vec(any::<u8>(), 1..600)
        )
            .prop_map(|(p, off, data)| Op::Write(p, off, data)),
        (arb_path(), 0..8_000u64).prop_map(|(p, size)| Op::Truncate(p, size)),
        arb_path().prop_map(Op::Unlink),
        arb_path().prop_map(Op::Rmdir),
        (arb_path(), arb_path()).prop_map(|(a, b)| Op::Rename(a, b)),
        Just(Op::Sync),
    ]
}

fn apply(fs: &mut dyn Filesystem, op: &Op) -> FsResult<()> {
    match op {
        Op::Create(p) => fs.create(p),
        Op::Mkdir(p) => fs.mkdir(p),
        Op::Write(p, off, data) => fs.write_at(p, *off, data),
        Op::Truncate(p, size) => fs.truncate(p, *size),
        Op::Unlink(p) => fs.unlink(p),
        Op::Rmdir(p) => fs.rmdir(p),
        Op::Rename(a, b) => fs.rename(a, b),
        Op::Sync => fs.sync(),
    }
}

/// Compares two file systems' entire visible state.
fn assert_equivalent(a: &dyn Filesystem, b: &dyn Filesystem, path: &str) -> Result<(), String> {
    let sa = a.stat(path);
    let sb = b.stat(path);
    match (&sa, &sb) {
        (Err(ea), Err(eb)) => {
            if ea != eb {
                return Err(format!("{path}: errors differ: {ea:?} vs {eb:?}"));
            }
            Ok(())
        }
        (Ok(ma), Ok(mb)) => {
            if ma.ftype != mb.ftype {
                return Err(format!("{path}: types differ"));
            }
            if ma.ftype == FileType::Regular {
                if ma.size != mb.size {
                    return Err(format!("{path}: sizes differ: {} vs {}", ma.size, mb.size));
                }
                let ca = a.read_all(path).map_err(|e| format!("{path}: {e}"))?;
                let cb = b.read_all(path).map_err(|e| format!("{path}: {e}"))?;
                if ca != cb {
                    return Err(format!("{path}: contents differ"));
                }
            } else {
                let da = a.readdir(path).map_err(|e| format!("{path}: {e}"))?;
                let db = b.readdir(path).map_err(|e| format!("{path}: {e}"))?;
                if da != db {
                    return Err(format!("{path}: listings differ: {da:?} vs {db:?}"));
                }
                for entry in da {
                    let child = if path == "/" {
                        format!("/{}", entry.name)
                    } else {
                        format!("{path}/{}", entry.name)
                    };
                    assert_equivalent(a, b, &child)?;
                }
            }
            Ok(())
        }
        _ => Err(format!("{path}: presence differs: {sa:?} vs {sb:?}")),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The log-structured FS behaves exactly like the in-memory oracle.
    #[test]
    fn lsfs_matches_memfs_oracle(ops in prop::collection::vec(arb_op(), 1..60)) {
        let mut lsfs = Lsfs::new();
        let mut memfs = MemFs::new();
        for op in &ops {
            let a = apply(&mut lsfs, op);
            let b = apply(&mut memfs, op);
            prop_assert_eq!(a, b, "op {:?} diverged", op);
        }
        if let Err(why) = assert_equivalent(&lsfs, &memfs, "/") {
            prop_assert!(false, "state divergence: {}", why);
        }
        lsfs.sync().unwrap();
        if let Err(why) = lsfs.check() {
            prop_assert!(false, "fsck: {}", why);
        }
    }

    /// The union FS over a populated lower layer behaves like an oracle
    /// that started from the same contents, and never mutates the lower
    /// layer.
    #[test]
    fn union_matches_memfs_oracle(ops in prop::collection::vec(arb_op(), 1..60)) {
        // Populate a lower layer.
        let mut lower = MemFs::new();
        lower.mkdir("/dir").unwrap();
        lower.mkdir("/deep").unwrap();
        lower.write_all("/a", b"lower a").unwrap();
        lower.write_all("/dir/x", b"lower x").unwrap();
        lower.write_all("/deep/z", b"lower z").unwrap();
        let lower_copy = lower.clone();

        let mut union = UnionFs::new(lower, MemFs::new());
        let mut oracle = lower_copy.clone();
        for op in &ops {
            let a = apply(&mut union, op);
            let b = apply(&mut oracle, op);
            prop_assert_eq!(a, b, "op {:?} diverged", op);
        }
        if let Err(why) = assert_equivalent(&union, &oracle, "/") {
            prop_assert!(false, "state divergence: {}", why);
        }
        // The lower layer is untouched.
        if let Err(why) = assert_equivalent(union.lower(), &lower_copy, "/") {
            prop_assert!(false, "lower layer mutated: {}", why);
        }
    }

    /// A snapshot reflects exactly the state at its snapshot point, no
    /// matter what happens afterwards.
    #[test]
    fn lsfs_snapshot_isolation(
        before in prop::collection::vec(arb_op(), 1..30),
        after in prop::collection::vec(arb_op(), 1..30),
    ) {
        let mut lsfs = Lsfs::new();
        let mut oracle = MemFs::new();
        for op in &before {
            let _ = apply(&mut lsfs, op);
            let _ = apply(&mut oracle, op);
        }
        lsfs.snapshot_point(1).unwrap();
        for op in &after {
            let _ = apply(&mut lsfs, op);
        }
        let snap = lsfs.snapshot(1).unwrap();
        if let Err(why) = assert_equivalent(&snap, &oracle, "/") {
            prop_assert!(false, "snapshot drifted: {}", why);
        }
    }

    /// Journal recovery reconstructs the synced state exactly.
    #[test]
    fn lsfs_recovery_round_trips(ops in prop::collection::vec(arb_op(), 1..50)) {
        let mut lsfs = Lsfs::new();
        for op in &ops {
            let _ = apply(&mut lsfs, op);
        }
        lsfs.sync().unwrap();
        let head = lsfs.journal_head();
        let disk = lsfs.disk();
        let recovered = Lsfs::recover(disk, head).unwrap();
        if let Err(why) = assert_equivalent(&recovered, &lsfs, "/") {
            prop_assert!(false, "recovery divergence: {}", why);
        }
    }
}
