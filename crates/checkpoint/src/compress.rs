//! Checkpoint image compression.
//!
//! "Since process checkpoint state is easily compressible" (§6, Figure
//! 4), images can be stored compressed. A byte-level run-length encoding
//! is used: process memory is dominated by zero pages and repeated
//! fill patterns, which RLE captures at a fraction of gzip's CPU cost —
//! the trade-off the paper's storage analysis assumes is cheap enough to
//! run online.
//!
//! Format: a stream of chunks, either `[0x00][len u32][literal bytes]`
//! or `[0x01][len u32][byte]` (a run).
//!
//! The deferred write-back pipeline compresses the sections of an image
//! (header, one per process, sockets) on parallel worker subtasks. The
//! results are framed in a *chunked container*:
//! `[0x02][chunk count u32]` then, per chunk,
//! `[compressed len u32][compressed RLE stream]`. Decompressing the
//! container concatenates the chunks' plaintexts, so it is
//! interchangeable with a plain stream over the concatenated input.
//! The leading `0x02` cannot open a plain stream (whose chunks start
//! `0x00`/`0x01`), so [`decompress`] auto-detects the format.

/// Minimum run length worth encoding as a run chunk.
const MIN_RUN: usize = 8;

/// Compresses `data`.
pub fn compress(data: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(data.len() / 4 + 16);
    let mut literal_start = 0;
    let mut i = 0;
    while i < data.len() {
        // Measure the run at i.
        let b = data[i];
        let mut j = i + 1;
        while j < data.len() && data[j] == b {
            j += 1;
        }
        let run = j - i;
        if run >= MIN_RUN {
            flush_literal(&mut out, &data[literal_start..i]);
            out.push(0x01);
            out.extend_from_slice(&(run as u32).to_le_bytes());
            out.push(b);
            i = j;
            literal_start = i;
        } else {
            i = j;
        }
    }
    flush_literal(&mut out, &data[literal_start..]);
    out
}

fn flush_literal(out: &mut Vec<u8>, lit: &[u8]) {
    if lit.is_empty() {
        return;
    }
    out.push(0x00);
    out.extend_from_slice(&(lit.len() as u32).to_le_bytes());
    out.extend_from_slice(lit);
}

/// Largest output [`decompress`] will produce; corrupt run lengths must
/// not drive unbounded allocation. Checkpoint images are far smaller.
pub const MAX_DECOMPRESSED: usize = 1 << 30;

/// Frames independently [`compress`]ed chunks into one container blob.
/// [`decompress`] of the result yields the concatenation of the chunks'
/// plaintexts.
pub fn assemble_chunks(chunks: &[Vec<u8>]) -> Vec<u8> {
    let total: usize = chunks.iter().map(Vec::len).sum();
    let mut out = Vec::with_capacity(5 + chunks.len() * 4 + total);
    out.push(0x02);
    out.extend_from_slice(&(chunks.len() as u32).to_le_bytes());
    for chunk in chunks {
        out.extend_from_slice(&(chunk.len() as u32).to_le_bytes());
        out.extend_from_slice(chunk);
    }
    out
}

/// Compresses `sections` on up to `threads` OS threads and frames the
/// results with [`assemble_chunks`]. With `threads <= 1` (or a single
/// section) everything runs on the calling thread; output bytes are
/// identical either way.
pub fn compress_parallel(sections: &[Vec<u8>], threads: usize) -> Vec<u8> {
    let workers = threads.min(sections.len());
    if workers <= 1 {
        let chunks: Vec<Vec<u8>> = sections.iter().map(|s| compress(s)).collect();
        return assemble_chunks(&chunks);
    }
    let next = std::sync::atomic::AtomicUsize::new(0);
    let mut chunks: Vec<Vec<u8>> = vec![Vec::new(); sections.len()];
    let done = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut mine = Vec::new();
                    loop {
                        let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        let Some(section) = sections.get(i) else {
                            break;
                        };
                        mine.push((i, compress(section)));
                    }
                    mine
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("compress worker panicked"))
            .collect::<Vec<_>>()
    });
    for (i, chunk) in done {
        chunks[i] = chunk;
    }
    assemble_chunks(&chunks)
}

/// Decompresses a [`compress`] stream or an [`assemble_chunks`]
/// container (auto-detected by the leading byte).
///
/// Returns `None` on malformed input or if the output would exceed
/// [`MAX_DECOMPRESSED`].
pub fn decompress(data: &[u8]) -> Option<Vec<u8>> {
    if data.first() == Some(&0x02) {
        return decompress_container(&data[1..]);
    }
    let mut out = Vec::new();
    decompress_stream(&mut out, data)?;
    Some(out)
}

fn decompress_container(mut data: &[u8]) -> Option<Vec<u8>> {
    if data.len() < 4 {
        return None;
    }
    let count = u32::from_le_bytes(data[..4].try_into().ok()?) as usize;
    data = &data[4..];
    let mut out = Vec::new();
    for _ in 0..count {
        if data.len() < 4 {
            return None;
        }
        let len = u32::from_le_bytes(data[..4].try_into().ok()?) as usize;
        data = &data[4..];
        if data.len() < len {
            return None;
        }
        decompress_stream(&mut out, &data[..len])?;
        data = &data[len..];
    }
    if !data.is_empty() {
        return None;
    }
    Some(out)
}

fn decompress_stream(out: &mut Vec<u8>, mut data: &[u8]) -> Option<()> {
    while !data.is_empty() {
        if data.len() < 5 {
            return None;
        }
        let tag = data[0];
        let len = u32::from_le_bytes(data[1..5].try_into().ok()?) as usize;
        data = &data[5..];
        if out.len().saturating_add(len) > MAX_DECOMPRESSED {
            return None;
        }
        match tag {
            0x00 => {
                if data.len() < len {
                    return None;
                }
                out.extend_from_slice(&data[..len]);
                data = &data[len..];
            }
            0x01 => {
                if data.is_empty() {
                    return None;
                }
                out.extend(std::iter::repeat_n(data[0], len));
                data = &data[1..];
            }
            _ => return None,
        }
    }
    Some(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips() {
        for data in [
            Vec::new(),
            vec![1, 2, 3],
            vec![0; 10_000],
            (0..255u8).collect::<Vec<u8>>(),
            [vec![7; 100], (0..50).collect(), vec![0; 4096]].concat(),
        ] {
            assert_eq!(decompress(&compress(&data)).unwrap(), data);
        }
    }

    #[test]
    fn zero_pages_compress_hard() {
        let page = vec![0u8; 4096];
        let compressed = compress(&page);
        assert!(compressed.len() < 16);
    }

    #[test]
    fn incompressible_data_grows_bounded() {
        let data: Vec<u8> = (0..4096u32)
            .map(|i| (i.wrapping_mul(2654435761) >> 13) as u8)
            .collect();
        let compressed = compress(&data);
        assert!(compressed.len() <= data.len() + data.len() / 100 + 64);
        assert_eq!(decompress(&compressed).unwrap(), data);
    }

    #[test]
    fn short_runs_stay_literal() {
        let data = vec![1, 1, 1, 2, 2, 3];
        let compressed = compress(&data);
        assert_eq!(compressed[0], 0x00, "no run chunk for short runs");
        assert_eq!(decompress(&compressed).unwrap(), data);
    }

    #[test]
    fn garbage_rejected() {
        assert!(decompress(&[9, 9, 9]).is_none());
        assert!(decompress(&[0x00, 255, 0, 0, 0, 1]).is_none());
        assert!(decompress(&[0x01, 1, 0, 0, 0]).is_none());
    }

    #[test]
    fn chunked_container_round_trips_to_concatenation() {
        let sections = [
            vec![0u8; 5000],
            (0..200u8).collect::<Vec<u8>>(),
            Vec::new(),
            vec![7u8; 64],
        ];
        let chunks: Vec<Vec<u8>> = sections.iter().map(|s| compress(s)).collect();
        let container = assemble_chunks(&chunks);
        assert_eq!(container[0], 0x02);
        assert_eq!(decompress(&container).unwrap(), sections.concat());
    }

    #[test]
    fn parallel_compression_is_deterministic() {
        let sections: Vec<Vec<u8>> = (0..9)
            .map(|k| {
                (0..4096u32)
                    .map(|i| (i.wrapping_mul(2654435761 + k) >> (7 + k % 5)) as u8)
                    .collect()
            })
            .collect();
        let serial = compress_parallel(&sections, 1);
        for threads in [2, 4, 8] {
            assert_eq!(compress_parallel(&sections, threads), serial);
        }
        assert_eq!(decompress(&serial).unwrap(), sections.concat());
    }

    #[test]
    fn malformed_containers_rejected() {
        assert!(decompress(&[0x02]).is_none(), "truncated count");
        assert!(
            decompress(&[0x02, 1, 0, 0, 0]).is_none(),
            "missing chunk header"
        );
        assert!(
            decompress(&[0x02, 1, 0, 0, 0, 9, 0, 0, 0, 0x00]).is_none(),
            "chunk shorter than its length"
        );
        let good = assemble_chunks(&[compress(&[1, 2, 3])]);
        let mut trailing = good.clone();
        trailing.push(0);
        assert!(decompress(&trailing).is_none(), "trailing bytes");
        assert_eq!(decompress(&good).unwrap(), vec![1, 2, 3]);
        assert_eq!(
            decompress(&assemble_chunks(&[])).unwrap(),
            Vec::<u8>::new(),
            "empty container is the empty plaintext"
        );
    }
}
