//! Display-record persistence.
//!
//! The original stores the display record as three on-disk files — the
//! command log, the screenshot file, and the timeline index (§4.1). This
//! module serializes a whole [`RecordStore`] into one archival blob and
//! back, validating all three files on load.

use std::sync::Arc;

use bytes::{Buf, BufMut};
use parking_lot::RwLock;

use dv_time::Timestamp;

use crate::log::CommandLog;
use crate::recorder::{DisplayRecord, RecordStore};
use crate::screenshot::ScreenshotStore;
use crate::timeline::Timeline;

const MAGIC: &[u8; 8] = b"DVREC001";

/// A record decoding error.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct RecordError(pub &'static str);

impl std::fmt::Display for RecordError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "display record error: {}", self.0)
    }
}

impl std::error::Error for RecordError {}

/// Serializes a record store to an archival blob.
pub fn encode_record(store: &RecordStore) -> Vec<u8> {
    let log = store.log.as_bytes();
    let shots = store.shots.as_bytes();
    let timeline = store.timeline.encode();
    let mut out = Vec::with_capacity(MAGIC.len() + 50 + log.len() + shots.len() + timeline.len());
    out.extend_from_slice(MAGIC);
    out.put_u32_le(store.width);
    out.put_u32_le(store.height);
    match store.start {
        Some(t) => {
            out.put_u8(1);
            out.put_u64_le(t.as_nanos());
        }
        None => out.put_u8(0),
    }
    out.put_u64_le(store.end.as_nanos());
    out.put_u64_le(log.len() as u64);
    out.extend_from_slice(log);
    out.put_u64_le(shots.len() as u64);
    out.extend_from_slice(shots);
    out.put_u64_le(timeline.len() as u64);
    out.extend_from_slice(&timeline);
    out
}

/// Deserializes a record store, validating the log, every screenshot,
/// and the timeline ordering.
pub fn decode_record(mut buf: &[u8]) -> Result<RecordStore, RecordError> {
    if buf.len() < 8 || &buf[..8] != MAGIC {
        return Err(RecordError("bad magic"));
    }
    buf.advance(8);
    if buf.len() < 9 {
        return Err(RecordError("truncated header"));
    }
    let width = buf.get_u32_le();
    let height = buf.get_u32_le();
    let start = match buf.get_u8() {
        0 => None,
        1 => {
            if buf.len() < 8 {
                return Err(RecordError("truncated start time"));
            }
            Some(Timestamp::from_nanos(buf.get_u64_le()))
        }
        _ => return Err(RecordError("bad start flag")),
    };
    if buf.len() < 8 {
        return Err(RecordError("truncated end time"));
    }
    let end = Timestamp::from_nanos(buf.get_u64_le());
    let section = |buf: &mut &[u8]| -> Result<Vec<u8>, RecordError> {
        if buf.len() < 8 {
            return Err(RecordError("truncated section length"));
        }
        let len = buf.get_u64_le() as usize;
        if buf.len() < len {
            return Err(RecordError("truncated section"));
        }
        let (data, rest) = buf.split_at(len);
        let out = data.to_vec();
        *buf = rest;
        Ok(out)
    };
    let log = CommandLog::from_bytes(section(&mut buf)?)
        .map_err(|_| RecordError("corrupt command log"))?;
    let shots = ScreenshotStore::from_bytes(section(&mut buf)?)
        .ok_or(RecordError("corrupt screenshot store"))?;
    let timeline = Timeline::decode(&section(&mut buf)?).ok_or(RecordError("corrupt timeline"))?;
    if !buf.is_empty() {
        return Err(RecordError("trailing bytes"));
    }
    Ok(RecordStore {
        log,
        shots,
        timeline,
        width,
        height,
        start,
        end,
    })
}

/// Loads an archived record into a shareable handle for playback.
pub fn open_record(bytes: &[u8]) -> Result<DisplayRecord, RecordError> {
    Ok(Arc::new(RwLock::new(decode_record(bytes)?)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::playback::PlaybackEngine;
    use crate::recorder::{DisplayRecorder, RecorderConfig};
    use dv_display::{CommandSink, DisplayCommand, Rect};
    use dv_time::Duration;

    fn recorded() -> DisplayRecord {
        let config = RecorderConfig {
            keyframe_interval: Duration::from_secs(1),
            keyframe_min_change: 0.0,
            ..RecorderConfig::default()
        };
        let mut rec = DisplayRecorder::new(32, 32, config);
        for i in 0..30u32 {
            rec.submit(
                Timestamp::from_millis(i as u64 * 100),
                &DisplayCommand::SolidFill {
                    rect: Rect::new(i % 32, 0, 1, 32),
                    color: i,
                },
            );
        }
        rec.record()
    }

    #[test]
    fn archive_round_trips_with_identical_playback() {
        let record = recorded();
        let bytes = {
            let store = record.read();
            encode_record(&store)
        };
        let restored = open_record(&bytes).unwrap();
        for probe in [0u64, 500, 1_500, 2_900] {
            let mut a = PlaybackEngine::new(record.clone());
            let mut b = PlaybackEngine::new(restored.clone());
            a.seek(Timestamp::from_millis(probe)).unwrap();
            b.seek(Timestamp::from_millis(probe)).unwrap();
            assert_eq!(
                a.screenshot().content_hash(),
                b.screenshot().content_hash(),
                "probe {probe}ms"
            );
        }
        let (a, b) = (record.read(), restored.read());
        assert_eq!(a.width, b.width);
        assert_eq!(a.start, b.start);
        assert_eq!(a.end, b.end);
        assert_eq!(a.log.len(), b.log.len());
        assert_eq!(a.shots.len(), b.shots.len());
        assert_eq!(a.timeline.len(), b.timeline.len());
    }

    #[test]
    fn corrupt_archives_are_rejected() {
        let record = recorded();
        let bytes = encode_record(&record.read());
        assert!(decode_record(b"not a record").is_err());
        assert!(decode_record(&bytes[..bytes.len() / 2]).is_err());
        let mut extra = bytes.clone();
        extra.push(7);
        assert!(decode_record(&extra).is_err());
        // Flipping a byte inside the screenshot section breaks
        // validation rather than silently corrupting playback.
        let mut flipped = bytes.clone();
        let log_len = record.read().log.byte_len() as usize;
        let idx = 8 + 17 + 8 + log_len + 8 + 4; // Into the first screenshot.
        flipped[idx] ^= 0xFF;
        assert!(decode_record(&flipped).is_err());
    }
}
