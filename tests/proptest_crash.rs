//! Crash-consistency property tests for the log-structured file system.
//!
//! The invariant (DESIGN.md §5): for ANY sequence of committed
//! transactions and ANY power-cut point in the serialized log,
//! `Lsfs::load` recovers a state that (a) equals the state after some
//! prefix of the committed transactions, (b) passes the `check()` fsck,
//! and (c) resolves every snapshot it still reports. A cut at the full
//! log length must recover the final state exactly.

mod common;

use proptest::prelude::*;

use dv_checkpoint::{revive, Checkpointer, EngineConfig, NetworkPolicy};
use dv_fault::{crash, sites, FaultPlan, IoFault};
use dv_lsfs::{FileType, Filesystem, Lsfs, SharedBlobStore};
use dv_time::SimClock;
use dv_vee::{HostPidAllocator, Prot, Vee, PAGE_SIZE};

/// A committed transaction: every op here reaches the journal before it
/// returns, so the live tree always equals the recoverable state.
#[derive(Clone, Debug)]
enum Txn {
    Mkdir(String),
    Create(String),
    /// Write then sync — the data blocks and the Write journal record
    /// are both on disk when this op completes.
    WriteSync(String, u64, Vec<u8>),
    Snapshot,
    Unlink(String),
    Rename(String, String),
}

/// Small path universe so operations collide often.
fn arb_path() -> impl Strategy<Value = String> {
    prop_oneof![
        prop_oneof![Just("a"), Just("b"), Just("dir")].prop_map(|s| format!("/{s}")),
        (
            prop_oneof![Just("dir"), Just("deep")],
            prop_oneof![Just("x"), Just("y"), Just("z")]
        )
            .prop_map(|(d, f)| format!("/{d}/{f}")),
    ]
}

fn arb_txn() -> impl Strategy<Value = Txn> {
    prop_oneof![
        arb_path().prop_map(Txn::Mkdir),
        arb_path().prop_map(Txn::Create),
        (
            arb_path(),
            0..4_000u64,
            prop::collection::vec(any::<u8>(), 1..400)
        )
            .prop_map(|(p, off, data)| Txn::WriteSync(p, off, data)),
        Just(Txn::Snapshot),
        arb_path().prop_map(Txn::Unlink),
        (arb_path(), arb_path()).prop_map(|(a, b)| Txn::Rename(a, b)),
    ]
}

/// Applies one transaction; errors (missing paths, non-empty dirs) are
/// legitimate outcomes of random sequences and leave no journal record.
fn apply(fs: &mut Lsfs, txn: &Txn, next_snapshot: &mut u64) {
    match txn {
        Txn::Mkdir(p) => {
            let _ = fs.mkdir(p);
        }
        Txn::Create(p) => {
            let _ = fs.create(p);
        }
        Txn::WriteSync(p, off, data) => {
            if fs.write_at(p, *off, data).is_ok() {
                fs.sync().expect("sync without faults");
            }
        }
        Txn::Snapshot => {
            fs.snapshot_point(*next_snapshot).expect("snapshot");
            *next_snapshot += 1;
        }
        Txn::Unlink(p) => {
            let _ = fs.unlink(p);
        }
        Txn::Rename(a, b) => {
            let _ = fs.rename(a, b);
        }
    }
}

/// A layout-independent fingerprint of the entire visible state: the
/// tree (paths, types, contents) plus the resolvable snapshot set.
fn fingerprint(fs: &Lsfs) -> String {
    let mut out = String::new();
    walk(fs, "/", &mut out);
    out.push_str("snapshots:");
    for c in fs.snapshot_counters() {
        out.push_str(&format!(" {c}"));
    }
    out
}

fn walk(fs: &Lsfs, path: &str, out: &mut String) {
    let meta = fs.stat(path).expect("stat of listed path");
    if meta.ftype == FileType::Regular {
        let data = fs.read_all(path).expect("read of listed file");
        out.push_str(&format!("f {path} {} {:08x}\n", meta.size, fnv(&data)));
    } else {
        out.push_str(&format!("d {path}\n"));
        for entry in fs.readdir(path).expect("readdir of listed dir") {
            let child = if path == "/" {
                format!("/{}", entry.name)
            } else {
                format!("{path}/{}", entry.name)
            };
            walk(fs, &child, out);
        }
    }
}

fn fnv(data: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in data {
        h ^= *b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn recovery_lands_on_a_committed_prefix(
        txns in prop::collection::vec(arb_txn(), 1..20),
        cut_sel in any::<u64>(),
    ) {
        let mut fs = Lsfs::new();
        let mut next_snapshot = 1u64;
        // The valid recovery targets: the state after each committed
        // prefix of the transaction sequence (including the empty one).
        let mut prefixes = vec![fingerprint(&fs)];
        for txn in &txns {
            apply(&mut fs, txn, &mut next_snapshot);
            prefixes.push(fingerprint(&fs));
        }

        let image = fs.save().expect("serialize");
        let log_len = crash::log_len(&image);
        let cut = (cut_sel % (log_len as u64 + 1)) as usize;
        let cut_image = crash::power_cut(&image, cut);

        // Reopening never fails: the scan falls back to the newest
        // intact journal record (or an empty file system).
        let recovered = Lsfs::load(&cut_image).expect("load after power cut");

        // (b) fsck passes.
        prop_assert!(
            recovered.check().is_ok(),
            "fsck failed after cut at {cut}/{log_len}: {:?}",
            recovered.check()
        );

        // (a) the recovered state is exactly some committed prefix.
        let fp = fingerprint(&recovered);
        prop_assert!(
            prefixes.contains(&fp),
            "recovered state after cut at {cut}/{log_len} matches no committed prefix:\n{fp}"
        );

        // A full-length cut is not a crash at all: the final state.
        if cut == log_len {
            prop_assert_eq!(&fp, prefixes.last().unwrap());
        }

        // (c) every snapshot the recovered fs reports still resolves.
        for counter in recovered.snapshot_counters() {
            prop_assert!(
                recovered.snapshot(counter).is_ok(),
                "snapshot {counter} no longer resolves after cut at {cut}"
            );
        }
    }

    /// Deferred write-back crash consistency: if the store dies between
    /// a capture and its commit (every write-back from check `crash_at`
    /// onward fails), the retained history is exactly the chain up to
    /// the last committed counter — and a fresh engine restarted from
    /// the exported metadata revives that counter to the state the
    /// session had at capture time.
    #[test]
    fn deferred_crash_recovers_the_last_committed_chain(
        rounds in 3..7u64,
        crash_sel in any::<u64>(),
        data_seed in any::<u64>(),
    ) {
        let crash_at = 2 + (crash_sel % (rounds - 1)); // in 2..=rounds
        let plane = FaultPlan::new(common::seed_for("deferred-crash"))
            .from_nth(sites::CHECKPOINT_WRITEBACK, crash_at, IoFault::Enospc)
            .build();

        let clock = SimClock::new();
        let mut vee = Vee::new(
            1,
            clock.shared(),
            Box::new(Lsfs::new()),
            HostPidAllocator::new(),
        );
        let p = vee.spawn(None, "app").unwrap();
        const PAGES: u64 = 8;
        let addr = vee.mmap(p, PAGES * PAGE_SIZE as u64, Prot::ReadWrite).unwrap();
        let mut engine = Checkpointer::with_sim_clock(
            EngineConfig {
                full_every: 3,
                compress: true,
                commit_workers: 2,
                commit_queue_depth: 16,
                commit_retry_limit: 0,
                ..EngineConfig::default()
            },
            clock.clone(),
        );
        engine.set_fault_plane(plane);
        let store = SharedBlobStore::in_memory();

        // Deterministic writes per round, captured-state snapshots taken
        // at checkpoint time (what each capture must preserve).
        let mut x = data_seed | 1;
        let mut captured: Vec<Vec<u8>> = Vec::new();
        for _round in 1..=rounds {
            for _ in 0..6 {
                x ^= x << 13; x ^= x >> 7; x ^= x << 17;
                let page = x % PAGES;
                let byte = (x >> 8) as u8;
                vee.mem_write(p, addr + page * PAGE_SIZE as u64 + (x % 100), &[byte; 64]).unwrap();
            }
            engine.checkpoint(&mut vee, &store).expect("capture never fails");
            captured.push(vee.mem_read(p, addr, (PAGES * PAGE_SIZE as u64) as usize).unwrap());
            clock.advance(dv_time::Duration::from_secs(1));
        }

        // The crash: at least one deferred commit failed.
        prop_assert!(engine.flush().is_err());
        let stats = engine.stats();
        prop_assert_eq!(stats.write_failures, rounds - crash_at + 1);

        // Retained history is exactly the committed prefix; failed and
        // cascaded counters leave no metadata and no blob behind.
        let retained: Vec<u64> = engine.images().map(|m| m.counter).collect();
        let expected: Vec<u64> = (1..crash_at).collect();
        prop_assert_eq!(&retained, &expected);
        for counter in crash_at..=rounds {
            prop_assert!(
                !store.lock().contains(&format!("ckpt-{counter:08}")),
                "failed commit {counter} left a blob"
            );
        }

        // Restart: a fresh engine over the exported metadata revives
        // the last committed counter to its capture-time state.
        let mut restarted = Checkpointer::with_sim_clock(EngineConfig::default(), clock.clone());
        prop_assert!(restarted.import_meta(&engine.export_meta()).is_some());
        let last = crash_at - 1;
        let chain = restarted.chain_for(last).expect("committed chain resolves");
        let (revived, _) = revive(
            &mut store.lock(),
            "ckpt",
            &chain,
            true,
            2,
            clock.shared(),
            Box::new(Lsfs::new()),
            HostPidAllocator::new(),
            &NetworkPolicy::default(),
        )
        .expect("revive from committed chain");
        let restored = revived.mem_read(p, addr, (PAGES * PAGE_SIZE as u64) as usize).unwrap();
        prop_assert_eq!(&restored, &captured[last as usize - 1]);
    }
}
