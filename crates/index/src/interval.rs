//! Time-interval sets.
//!
//! A query over the text record evaluates to the set of times at which it
//! is satisfied (§4.4). [`IntervalSet`] is the closed-open interval
//! algebra — union, intersection, complement — that boolean query
//! evaluation composes over.

use dv_time::Timestamp;

/// A half-open time interval `[start, end)`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Interval {
    /// Inclusive start.
    pub start: Timestamp,
    /// Exclusive end.
    pub end: Timestamp,
}

impl Interval {
    /// Creates an interval; empty if `start >= end`.
    pub fn new(start: Timestamp, end: Timestamp) -> Self {
        Interval { start, end }
    }

    /// Returns whether the interval contains no time.
    pub fn is_empty(&self) -> bool {
        self.start >= self.end
    }

    /// Returns whether `t` lies within the interval.
    pub fn contains(&self, t: Timestamp) -> bool {
        t >= self.start && t < self.end
    }
}

/// A normalized set of disjoint, sorted, non-adjacent intervals.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct IntervalSet {
    intervals: Vec<Interval>,
}

impl IntervalSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        IntervalSet::default()
    }

    /// Creates a set from arbitrary intervals, normalizing them.
    pub fn from_intervals(intervals: impl IntoIterator<Item = Interval>) -> Self {
        let mut items: Vec<Interval> = intervals.into_iter().filter(|i| !i.is_empty()).collect();
        items.sort_by_key(|i| i.start);
        let mut out: Vec<Interval> = Vec::with_capacity(items.len());
        for item in items {
            match out.last_mut() {
                Some(last) if item.start <= last.end => {
                    last.end = last.end.max(item.end);
                }
                _ => out.push(item),
            }
        }
        IntervalSet { intervals: out }
    }

    /// Returns the normalized intervals.
    pub fn intervals(&self) -> &[Interval] {
        &self.intervals
    }

    /// Returns whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.intervals.is_empty()
    }

    /// Returns whether `t` is a member.
    pub fn contains(&self, t: Timestamp) -> bool {
        let idx = self.intervals.partition_point(|i| i.start <= t);
        idx.checked_sub(1)
            .map(|i| self.intervals[i].contains(t))
            .unwrap_or(false)
    }

    /// Returns the total covered duration in nanoseconds.
    pub fn total_nanos(&self) -> u64 {
        self.intervals
            .iter()
            .map(|i| i.end.as_nanos() - i.start.as_nanos())
            .sum()
    }

    /// Set union.
    pub fn union(&self, other: &IntervalSet) -> IntervalSet {
        IntervalSet::from_intervals(self.intervals.iter().chain(other.intervals.iter()).copied())
    }

    /// Set intersection.
    pub fn intersect(&self, other: &IntervalSet) -> IntervalSet {
        let mut out = Vec::new();
        let (mut i, mut j) = (0, 0);
        while i < self.intervals.len() && j < other.intervals.len() {
            let a = self.intervals[i];
            let b = other.intervals[j];
            let start = a.start.max(b.start);
            let end = a.end.min(b.end);
            if start < end {
                out.push(Interval::new(start, end));
            }
            if a.end <= b.end {
                i += 1;
            } else {
                j += 1;
            }
        }
        IntervalSet { intervals: out }
    }

    /// Complement within `[horizon_start, horizon_end)`.
    pub fn complement(&self, horizon_start: Timestamp, horizon_end: Timestamp) -> IntervalSet {
        let mut out = Vec::new();
        let mut cursor = horizon_start;
        for iv in &self.intervals {
            if iv.start > cursor {
                out.push(Interval::new(cursor, iv.start.min(horizon_end)));
            }
            cursor = cursor.max(iv.end);
            if cursor >= horizon_end {
                break;
            }
        }
        if cursor < horizon_end {
            out.push(Interval::new(cursor, horizon_end));
        }
        IntervalSet::from_intervals(out)
    }

    /// Clips the set to `[from, to)`.
    pub fn clip(&self, from: Timestamp, to: Timestamp) -> IntervalSet {
        self.intersect(&IntervalSet::from_intervals([Interval::new(from, to)]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ts(ms: u64) -> Timestamp {
        Timestamp::from_millis(ms)
    }

    fn set(pairs: &[(u64, u64)]) -> IntervalSet {
        IntervalSet::from_intervals(pairs.iter().map(|&(a, b)| Interval::new(ts(a), ts(b))))
    }

    #[test]
    fn normalization_merges_overlaps_and_adjacency() {
        let s = set(&[(10, 20), (15, 25), (25, 30), (40, 50), (5, 5)]);
        assert_eq!(s, set(&[(10, 30), (40, 50)]));
    }

    #[test]
    fn membership() {
        let s = set(&[(10, 20), (30, 40)]);
        assert!(s.contains(ts(10)));
        assert!(s.contains(ts(19)));
        assert!(!s.contains(ts(20)), "end is exclusive");
        assert!(!s.contains(ts(25)));
        assert!(s.contains(ts(35)));
        assert!(!s.contains(ts(5)));
    }

    #[test]
    fn union_and_intersection() {
        let a = set(&[(0, 10), (20, 30)]);
        let b = set(&[(5, 25)]);
        assert_eq!(a.union(&b), set(&[(0, 30)]));
        assert_eq!(a.intersect(&b), set(&[(5, 10), (20, 25)]));
    }

    #[test]
    fn intersection_with_empty_is_empty() {
        let a = set(&[(0, 10)]);
        assert!(a.intersect(&IntervalSet::new()).is_empty());
    }

    #[test]
    fn complement_within_horizon() {
        let a = set(&[(10, 20), (30, 40)]);
        let c = a.complement(ts(0), ts(50));
        assert_eq!(c, set(&[(0, 10), (20, 30), (40, 50)]));
        // Complement round-trips.
        assert_eq!(c.complement(ts(0), ts(50)), a);
    }

    #[test]
    fn complement_of_empty_is_horizon() {
        let c = IntervalSet::new().complement(ts(5), ts(10));
        assert_eq!(c, set(&[(5, 10)]));
    }

    #[test]
    fn clip_restricts_range() {
        let a = set(&[(0, 100)]);
        assert_eq!(a.clip(ts(20), ts(30)), set(&[(20, 30)]));
        assert!(a.clip(ts(200), ts(300)).is_empty());
    }

    #[test]
    fn total_nanos_sums_durations() {
        let a = set(&[(0, 10), (20, 25)]);
        assert_eq!(a.total_nanos(), 15 * 1_000_000);
    }
}
