//! The bridge from the capture daemon to the text index.

use std::sync::Arc;

use parking_lot::Mutex;

use dv_access::{AppId, Role, TextInstance, TextSink};
use dv_index::{IndexedInstance, TextIndex};
use dv_time::Timestamp;

/// Returns the index tag for an accessibility role — the "special
/// properties about the text (e.g. if it is a menu item or an HTML
/// link)" §4.2 captures.
pub fn role_tag(role: Role) -> &'static str {
    match role {
        Role::Application => "application",
        Role::Window => "window",
        Role::Document => "document",
        Role::Paragraph => "paragraph",
        Role::MenuItem => "menuitem",
        Role::Link => "link",
        Role::Button => "button",
        Role::TextInput => "textinput",
        Role::Label => "label",
        Role::Terminal => "terminal",
    }
}

/// A [`TextSink`] writing into a shared [`TextIndex`].
pub struct IndexSink {
    index: Arc<Mutex<TextIndex>>,
}

impl IndexSink {
    /// Creates a sink over the shared index.
    pub fn new(index: Arc<Mutex<TextIndex>>) -> Self {
        IndexSink { index }
    }
}

impl TextSink for IndexSink {
    fn text_shown(&mut self, instance: TextInstance) {
        self.index.lock().add_instance(IndexedInstance {
            id: instance.id,
            app_id: instance.app.0,
            app: instance.app_name,
            window: instance.window,
            role: role_tag(instance.role).to_string(),
            text: instance.text,
            shown: instance.time,
            hidden: None,
            annotation: instance.annotation,
        });
    }

    fn text_hidden(&mut self, id: u64, time: Timestamp) {
        self.index.lock().close_instance(id, time);
    }

    fn focus_changed(&mut self, app: AppId, time: Timestamp) {
        self.index.lock().focus_change(app.0, time);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sink_feeds_the_index() {
        let index = Arc::new(Mutex::new(TextIndex::new()));
        let mut sink = IndexSink::new(index.clone());
        sink.text_shown(TextInstance {
            id: 1,
            time: Timestamp::from_secs(1),
            app: AppId(7),
            app_name: "firefox".into(),
            window: "tab".into(),
            role: Role::Link,
            text: "click here".into(),
            annotation: false,
        });
        sink.text_hidden(1, Timestamp::from_secs(5));
        sink.focus_changed(AppId(7), Timestamp::from_secs(2));
        let index = index.lock();
        let hits = index.term_instances("click");
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].app, "firefox");
        assert_eq!(hits[0].role, "link");
        assert_eq!(hits[0].hidden, Some(Timestamp::from_secs(5)));
        assert_eq!(index.focus_history(), &[(7, Timestamp::from_secs(2))]);
    }

    #[test]
    fn role_tags_are_distinct() {
        let all = [
            Role::Application,
            Role::Window,
            Role::Document,
            Role::Paragraph,
            Role::MenuItem,
            Role::Link,
            Role::Button,
            Role::TextInput,
            Role::Label,
            Role::Terminal,
        ];
        let tags: std::collections::HashSet<&str> = all.iter().map(|r| role_tag(*r)).collect();
        assert_eq!(tags.len(), all.len());
    }
}
