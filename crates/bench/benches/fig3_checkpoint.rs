//! Criterion wrapper for Figure 3 checkpoint latency: one full experiment pass per
//! iteration at a small scale. The `reproduce` binary prints the
//! paper-layout rows; this bench tracks the end-to-end cost over time.

use criterion::{criterion_group, criterion_main, Criterion};
use dv_bench::fig3_checkpoint_latency;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig3_checkpoint");
    group.sample_size(10);
    group.bench_function("scale_0.05", |b| {
        b.iter(|| fig3_checkpoint_latency(0.05));
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
