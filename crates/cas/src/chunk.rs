//! Content-defined chunking and content addressing.
//!
//! Blobs are split with a gear rolling hash: a 64-bit state is shifted
//! and salted with a per-byte table entry, and a chunk boundary is
//! declared wherever the low bits of the state are zero. Because the
//! state depends only on the last few dozen bytes, an insertion or a
//! small edit moves at most the two chunks around it — the property
//! that lets consecutive checkpoints of a mostly-idle desktop share
//! almost all their chunks. Cut points are bounded below by
//! [`MIN_CHUNK`] (so tiny chunks never dominate index overhead) and
//! above by [`MAX_CHUNK`] (so pathological data cannot produce
//! unbounded chunks).
//!
//! Each chunk is addressed by a 128-bit content hash: two independently
//! seeded 64-bit multiply-xor hashes over the chunk bytes. The store
//! treats equal ids as equal content; 128 bits keeps accidental
//! collisions out of reach for any workload this repository models.

/// Lower bound on chunk size (bytes); boundaries are not considered
/// before this many bytes.
pub const MIN_CHUNK: usize = 2 * 1024;
/// Forced upper bound on chunk size (bytes).
pub const MAX_CHUNK: usize = 32 * 1024;
/// Boundary mask: a cut happens when the low 13 bits of the gear state
/// are zero, giving an expected chunk size of `MIN_CHUNK` + 8 KiB.
const BOUNDARY_MASK: u64 = (1 << 13) - 1;

const fn splitmix64(seed: u64) -> u64 {
    let x = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Per-byte salt table for the gear hash, generated deterministically
/// so every build (and every peer in a future replication story) cuts
/// blobs identically.
const GEAR: [u64; 256] = {
    let mut table = [0u64; 256];
    let mut i = 0;
    while i < 256 {
        table[i] = splitmix64(0xDE7A_41E5_0000_0000 ^ (i as u64));
        i += 1;
    }
    table
};

/// A 128-bit content address.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ChunkId(pub u128);

impl ChunkId {
    /// Hex rendering for logs and events.
    pub fn to_hex(self) -> String {
        format!("{:032x}", self.0)
    }
}

impl std::fmt::Debug for ChunkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ChunkId({:032x})", self.0)
    }
}

fn hash64(data: &[u8], seed: u64) -> u64 {
    let mut h = seed ^ (data.len() as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    let mut chunks = data.chunks_exact(8);
    for word in &mut chunks {
        let w = u64::from_le_bytes(word.try_into().unwrap());
        h = (h ^ w).wrapping_mul(0xFF51_AFD7_ED55_8CCD);
        h ^= h >> 29;
    }
    let mut tail = 0u64;
    for (i, b) in chunks.remainder().iter().enumerate() {
        tail |= (*b as u64) << (8 * i);
    }
    h = (h ^ tail).wrapping_mul(0xC4CE_B9FE_1A85_EC53);
    h ^= h >> 32;
    h = h.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
    h ^ (h >> 29)
}

/// Computes the content address of one chunk.
pub fn chunk_id(data: &[u8]) -> ChunkId {
    let hi = hash64(data, 0x0C0F_FEE0_DEAD_BEEF);
    let lo = hash64(data, 0x5EED_CA5C_ADE5_1DEA);
    ChunkId(((hi as u128) << 64) | lo as u128)
}

/// One chunk of a split blob: its content address and the byte range it
/// covers in the source buffer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ChunkSpan {
    /// Content address of the bytes in `offset..offset + len`.
    pub id: ChunkId,
    /// Start of the chunk in the source blob.
    pub offset: usize,
    /// Chunk length in bytes.
    pub len: usize,
}

/// Splits a blob at content-defined boundaries and hashes each chunk.
///
/// Deterministic: the same bytes always produce the same spans and ids.
/// An empty blob produces no spans. This is the expensive half of a
/// deduplicating write and takes no locks, so callers (checkpoint
/// commit workers) run it outside the shared store mutex.
///
/// # Examples
///
/// ```
/// let data = vec![7u8; 100_000];
/// let spans = dv_cas::split(&data);
/// assert_eq!(spans.iter().map(|s| s.len).sum::<usize>(), data.len());
/// assert!(spans.iter().all(|s| s.len <= dv_cas::MAX_CHUNK));
/// ```
pub fn split(data: &[u8]) -> Vec<ChunkSpan> {
    let mut spans = Vec::new();
    let mut start = 0usize;
    let mut state = 0u64;
    let mut pos = 0usize;
    while pos < data.len() {
        state = (state << 1).wrapping_add(GEAR[data[pos] as usize]);
        pos += 1;
        let len = pos - start;
        if (len >= MIN_CHUNK && state & BOUNDARY_MASK == 0) || len >= MAX_CHUNK {
            spans.push(ChunkSpan {
                id: chunk_id(&data[start..pos]),
                offset: start,
                len,
            });
            start = pos;
            state = 0;
        }
    }
    if start < data.len() {
        spans.push(ChunkSpan {
            id: chunk_id(&data[start..]),
            offset: start,
            len: data.len() - start,
        });
    }
    spans
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pseudo_random(len: usize, seed: u64) -> Vec<u8> {
        let mut out = Vec::with_capacity(len);
        let mut s = seed;
        while out.len() < len {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            out.extend_from_slice(&s.to_le_bytes());
        }
        out.truncate(len);
        out
    }

    #[test]
    fn split_covers_input_exactly() {
        for len in [0usize, 1, 100, MIN_CHUNK, 100_000] {
            let data = pseudo_random(len, 7);
            let spans = split(&data);
            let mut cursor = 0;
            for span in &spans {
                assert_eq!(span.offset, cursor);
                assert!(span.len > 0 && span.len <= MAX_CHUNK);
                cursor += span.len;
            }
            assert_eq!(cursor, len);
        }
    }

    #[test]
    fn split_is_deterministic() {
        let data = pseudo_random(200_000, 42);
        assert_eq!(split(&data), split(&data));
    }

    #[test]
    fn random_data_cuts_near_expected_size() {
        let data = pseudo_random(1 << 20, 3);
        let spans = split(&data);
        let avg = data.len() / spans.len();
        assert!(
            (4 * 1024..24 * 1024).contains(&avg),
            "average chunk {avg} far from target"
        );
    }

    #[test]
    fn small_edit_leaves_most_chunks_shared() {
        let mut data = pseudo_random(1 << 19, 11);
        let before = split(&data);
        let mid = data.len() / 2;
        data[mid] ^= 0xFF;
        let after = split(&data);
        let before_ids: std::collections::HashSet<ChunkId> = before.iter().map(|s| s.id).collect();
        let shared = after.iter().filter(|s| before_ids.contains(&s.id)).count();
        assert!(
            shared * 10 >= after.len() * 8,
            "one-byte edit should keep >=80% of chunks: {shared}/{}",
            after.len()
        );
    }

    #[test]
    fn chunk_id_distinguishes_content() {
        assert_eq!(chunk_id(b"hello"), chunk_id(b"hello"));
        assert_ne!(chunk_id(b"hello"), chunk_id(b"hellp"));
        assert_ne!(chunk_id(b""), chunk_id(b"\0"));
        assert_ne!(chunk_id(b"\0"), chunk_id(b"\0\0"));
    }
}
