//! Processes and their per-process state.
//!
//! The checkpoint image must carry everything §5.2 lists: "process run
//! state, program name, scheduling parameters, credentials, pending and
//! blocked signals, CPU registers, FPU state, ptrace information, file
//! system namespace, list of open files, signal handling information,
//! and virtual memory". Every one of those has a concrete (if synthetic)
//! representation here so the checkpoint/restore cycle moves real state.

use std::collections::VecDeque;

use dv_time::Timestamp;

use crate::files::FdTable;
use crate::memory::AddressSpace;

/// A virtual PID — the name a process has *inside* its private
/// namespace, stable across checkpoint/revive.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct Vpid(pub u64);

/// Signals (the subset the system exercises).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
#[repr(u8)]
pub enum Signal {
    /// Stop the process (quiesce).
    Stop = 1,
    /// Continue a stopped process (resume).
    Cont = 2,
    /// Terminate.
    Term = 3,
    /// Kill (unblockable).
    Kill = 4,
    /// Invalid memory access.
    Segv = 5,
    /// Child state change.
    Chld = 6,
    /// User signal 1.
    Usr1 = 7,
    /// User signal 2.
    Usr2 = 8,
}

impl Signal {
    /// All signal values, for encoding.
    pub const ALL: [Signal; 8] = [
        Signal::Stop,
        Signal::Cont,
        Signal::Term,
        Signal::Kill,
        Signal::Segv,
        Signal::Chld,
        Signal::Usr1,
        Signal::Usr2,
    ];

    /// Decodes a signal from its `repr` value.
    pub fn from_u8(v: u8) -> Option<Signal> {
        Signal::ALL.into_iter().find(|s| *s as u8 == v)
    }
}

/// Run state of a process.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RunState {
    /// Schedulable.
    Runnable,
    /// Stopped by SIGSTOP (quiesced).
    Stopped,
    /// Uninterruptible sleep (D state, e.g. blocked on disk I/O) until
    /// the given session time; signals are not handled until it wakes —
    /// the case pre-quiescing exists for (§5.1.2).
    DiskSleep {
        /// Wake-up time.
        until: Timestamp,
    },
    /// Exited, not yet reaped.
    Zombie,
}

/// Synthetic CPU register file.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct Registers {
    /// Program counter.
    pub pc: u64,
    /// Stack pointer.
    pub sp: u64,
    /// General-purpose registers.
    pub gpr: [u64; 8],
}

/// Synthetic FPU state.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct FpuState {
    /// Control word.
    pub control: u32,
    /// Data registers.
    pub st: [u64; 8],
}

/// Scheduling parameters.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct SchedParams {
    /// Nice value.
    pub nice: i8,
    /// Real-time priority (0 = none).
    pub rt_priority: u8,
}

/// Credentials.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct Credentials {
    /// User id.
    pub uid: u32,
    /// Group id.
    pub gid: u32,
}

/// Per-process signal state.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct SigState {
    /// Queued, undelivered signals.
    pub pending: VecDeque<Signal>,
    /// Blocked-signal bitmask (bit = `Signal as u8`).
    pub blocked: u64,
    /// Signals with a user handler installed (bitmask); the rest take
    /// default actions.
    pub handled: u64,
}

impl SigState {
    /// Returns whether `sig` is blocked.
    pub fn is_blocked(&self, sig: Signal) -> bool {
        sig != Signal::Kill && self.blocked & (1 << sig as u8) != 0
    }

    /// Blocks or unblocks a signal.
    pub fn set_blocked(&mut self, sig: Signal, blocked: bool) {
        if blocked {
            self.blocked |= 1 << sig as u8;
        } else {
            self.blocked &= !(1 << sig as u8);
        }
    }
}

/// One process in a virtual execution environment.
#[derive(Clone, Debug)]
pub struct Process {
    /// Virtual PID within the session's namespace.
    pub vpid: Vpid,
    /// Host PID currently backing it (changes across revive — that is
    /// what the namespace hides from the application).
    pub host_pid: u64,
    /// Parent's virtual PID.
    pub parent: Option<Vpid>,
    /// Program name.
    pub name: String,
    /// Run state.
    pub state: RunState,
    /// Virtual memory.
    pub mem: AddressSpace,
    /// Open files and sockets.
    pub fds: FdTable,
    /// Signal state.
    pub signals: SigState,
    /// CPU registers.
    pub regs: Registers,
    /// FPU state.
    pub fpu: FpuState,
    /// Scheduling parameters.
    pub sched: SchedParams,
    /// Credentials.
    pub creds: Credentials,
    /// Tracer, if ptraced.
    pub ptraced_by: Option<Vpid>,
    /// Current working directory.
    pub cwd: String,
    /// Whether this process may open external network connections
    /// (per-application revive policy, §5.2).
    pub net_allowed: bool,
}

impl Process {
    /// Creates a fresh runnable process.
    pub fn new(vpid: Vpid, host_pid: u64, parent: Option<Vpid>, name: &str) -> Self {
        Process {
            vpid,
            host_pid,
            parent,
            name: name.to_string(),
            state: RunState::Runnable,
            mem: AddressSpace::new(),
            fds: FdTable::new(),
            signals: SigState::default(),
            regs: Registers::default(),
            fpu: FpuState::default(),
            sched: SchedParams::default(),
            creds: Credentials::default(),
            ptraced_by: None,
            cwd: "/".to_string(),
            net_allowed: true,
        }
    }

    /// Returns whether the process can promptly handle a stop signal —
    /// the pre-quiesce readiness test.
    pub fn signal_ready(&self) -> bool {
        !matches!(self.state, RunState::DiskSleep { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn signal_codec_round_trips() {
        for sig in Signal::ALL {
            assert_eq!(Signal::from_u8(sig as u8), Some(sig));
        }
        assert_eq!(Signal::from_u8(0), None);
        assert_eq!(Signal::from_u8(200), None);
    }

    #[test]
    fn blocking_mask() {
        let mut sigs = SigState::default();
        assert!(!sigs.is_blocked(Signal::Term));
        sigs.set_blocked(Signal::Term, true);
        assert!(sigs.is_blocked(Signal::Term));
        sigs.set_blocked(Signal::Term, false);
        assert!(!sigs.is_blocked(Signal::Term));
    }

    #[test]
    fn kill_cannot_be_blocked() {
        let mut sigs = SigState::default();
        sigs.set_blocked(Signal::Kill, true);
        assert!(!sigs.is_blocked(Signal::Kill));
    }

    #[test]
    fn disk_sleep_is_not_signal_ready() {
        let mut p = Process::new(Vpid(1), 100, None, "init");
        assert!(p.signal_ready());
        p.state = RunState::DiskSleep {
            until: Timestamp::from_secs(1),
        };
        assert!(!p.signal_ready());
    }
}
