//! DejaView configuration.
//!
//! "DejaView users can choose to trade-off record quality versus storage
//! consumption" (§2): display resolution and update frequency, the
//! checkpoint policy parameters, full/incremental cadence, compression,
//! search-cache size, and the revive-time network policy are all
//! configurable here.

use dv_checkpoint::{EngineConfig, NetworkPolicy, PolicyConfig};
use dv_fault::FaultPlane;
use dv_lsfs::{ReadLatency, SharedBlobStore};
use dv_obs::Obs;
use dv_record::RecorderConfig;
use dv_time::Duration;

/// Top-level configuration for a DejaView server.
pub struct Config {
    /// Live screen width in pixels.
    pub width: u32,
    /// Live screen height in pixels.
    pub height: u32,
    /// Display recording quality (resolution scale, update frequency,
    /// keyframe cadence).
    pub recorder: RecorderConfig,
    /// Checkpoint engine parameters (full cadence, compression,
    /// pre-quiesce bounds, and the deferred write-back pipeline's
    /// worker count and queue depth — `commit_workers == 0` keeps the
    /// classic synchronous write path).
    pub engine: EngineConfig,
    /// Checkpoint policy parameters and extension rules.
    pub policy: PolicyConfig,
    /// Network policy applied to revived sessions.
    pub revive_network: NetworkPolicy,
    /// Capacity of the search-result screenshot cache (the paper's
    /// tunable LRU, §4.4).
    pub search_cache: usize,
    /// Optional read-latency model for the checkpoint store (used by the
    /// Figure 7 cached/uncached comparison).
    pub store_latency: Option<ReadLatency>,
    /// Attach the display recorder (disable to measure a run without
    /// display recording, as in Figure 2's component isolation).
    pub enable_display_recording: bool,
    /// Attach the text-capture daemon and index.
    pub enable_text_capture: bool,
    /// Shard the text index along the time axis: seal the open shard
    /// into immutable segments at checkpoint boundaries and fan
    /// queries out across shards. Disable to keep the whole record in
    /// one in-memory index (the pre-sharding behavior).
    pub enable_sharded_index: bool,
    /// Session-time width of the open index shard; once the horizon
    /// has advanced this far past the shard's start, the next
    /// checkpoint seals it.
    pub index_shard_window: Duration,
    /// FOCAL-style capture-time filtering (the paper's §4.2 lineage):
    /// skip indexing a text state whose fingerprint equals the last
    /// indexed state, so redundant re-captures cost nothing.
    pub index_filter_redundant: bool,
    /// How many same-level sealed segments one background compaction
    /// merges (minimum 2).
    pub index_compact_fanin: usize,
    /// Decoded sealed segments kept hot for queries.
    pub index_segment_cache: usize,
    /// Thumbnail-keyed visual recall: fingerprint every persisted
    /// keyframe into the dv-vidx strip, sealed at checkpoint
    /// boundaries like the sharded text index. Requires display
    /// recording.
    pub enable_visual_index: bool,
    /// Width every keyframe thumbnail is resampled to.
    pub thumbnail_w: u32,
    /// Height every keyframe thumbnail is resampled to.
    pub thumbnail_h: u32,
    /// Hamming threshold under which consecutive keyframes coalesce
    /// into one visual instance (must stay at or below
    /// [`dv_vidx::EXACT_RADIUS`] so instances remain separable).
    pub visual_near_dup_bits: u32,
    /// Fault-injection plane installed into every storage component
    /// (disk log, journal, blob store, checkpoint writeback, recorder
    /// persistence, index flush). Disabled by default: the sites are
    /// no-ops until a test arms a plan.
    pub fault_plane: FaultPlane,
    /// Observability handle threaded through every recording stream.
    /// Left disabled (the default), the server builds its own
    /// session-time handle so [`crate::DejaView::observability`] always
    /// works; pass [`Obs::wall`] to profile with wall-clock span
    /// durations instead.
    pub obs: Obs,
    /// Checkpoint blob store to record into. `None` (the default) gives
    /// the server its own private in-memory store; a multi-tenant host
    /// passes one shared store to every session it creates, so blobs
    /// from all tenants land in one host-wide store (namespaced by
    /// [`Config::blob_prefix`]).
    pub shared_store: Option<SharedBlobStore>,
    /// Blob-name prefix for this session's checkpoints. `None` keeps
    /// the engine default (`ckpt`); a host sets a per-tenant prefix so
    /// tenants sharing a store can never collide.
    pub blob_prefix: Option<String>,
    /// How many times a failed checkpoint or index flush is retried
    /// before the server gives up on that attempt and degrades.
    pub io_retry_limit: u32,
    /// Initial backoff between storage retries; doubles per attempt
    /// (advanced on the session clock, so it is deterministic).
    pub io_retry_backoff: Duration,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            width: 1024,
            height: 768,
            recorder: RecorderConfig::default(),
            engine: EngineConfig::default(),
            policy: PolicyConfig::default(),
            revive_network: NetworkPolicy::default(),
            search_cache: 32,
            store_latency: None,
            enable_display_recording: true,
            enable_text_capture: true,
            enable_sharded_index: true,
            index_shard_window: Duration::from_secs(30),
            index_filter_redundant: true,
            index_compact_fanin: 4,
            index_segment_cache: 16,
            enable_visual_index: true,
            thumbnail_w: 64,
            thumbnail_h: 48,
            visual_near_dup_bits: 8,
            fault_plane: FaultPlane::disabled(),
            obs: Obs::disabled(),
            shared_store: None,
            blob_prefix: None,
            io_retry_limit: 3,
            io_retry_backoff: Duration::from_millis(50),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_the_paper() {
        let config = Config::default();
        assert_eq!(config.width, 1024);
        assert_eq!(config.height, 768);
        assert_eq!(config.policy.min_interval.as_millis(), 1_000);
        assert_eq!(config.policy.text_edit_interval.as_millis(), 10_000);
        assert!((config.policy.min_display_fraction - 0.05).abs() < 1e-9);
        assert!(!config.revive_network.default_enabled);
        assert!(config.revive_network.new_apps_enabled);
        // Sharding ships on with a window far wider than the policy's
        // checkpoint cadence, so short sessions behave exactly like the
        // single-index path.
        assert!(config.enable_sharded_index);
        assert_eq!(config.index_shard_window.as_millis(), 30_000);
        assert!(config.index_filter_redundant);
        // Visual recall ships on with a PDA-sized thumbnail and a
        // coalescing threshold safely inside the exact-recall radius.
        assert!(config.enable_visual_index);
        assert_eq!((config.thumbnail_w, config.thumbnail_h), (64, 48));
        assert_eq!(config.visual_near_dup_bits, 8);
        assert!(config.visual_near_dup_bits <= dv_vidx::EXACT_RADIUS);
        // Deferred write-back ships disabled: the synchronous path stays
        // the default until a deployment opts into commit workers.
        assert_eq!(config.engine.commit_workers, 0);
        assert_eq!(config.engine.commit_queue_depth, 4);
        assert_eq!(config.engine.commit_retry_limit, 3);
        assert_eq!(config.engine.commit_retry_backoff.as_millis(), 50);
    }
}
