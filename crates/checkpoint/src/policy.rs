//! The checkpoint policy.
//!
//! §5.1.3: rather than checkpointing at fixed intervals — which "would
//! miss important updates that occurred in the interval, while
//! wastefully recording during periods of inactivity" — DejaView
//! checkpoints in response to display updates, capped at once per
//! second, skipping checkpoints when a full-screen app is active without
//! input (screensaver, video), when display activity is below a
//! threshold (blinking cursor, clock), and reducing the rate to once per
//! ten seconds during keyboard-driven, low-display activity (typing).
//! All parameters are user-tunable and the rule set is extensible.

use dv_time::{Duration, RateLimiter, Timestamp};

/// A custom, user-supplied policy rule evaluated before the built-in
/// rules; returning a reason skips the checkpoint.
pub trait PolicyRule: Send {
    /// Returns a skip reason, or `None` to let the decision continue.
    fn evaluate(&self, input: &PolicyInput) -> Option<&'static str>;
}

/// The example extension rule from the paper: skip checkpoints when
/// system load is above a threshold.
pub struct LoadRule {
    /// Maximum load average at which checkpoints are still taken.
    pub max_load: f64,
}

impl PolicyRule for LoadRule {
    fn evaluate(&self, input: &PolicyInput) -> Option<&'static str> {
        (input.system_load > self.max_load).then_some("system-load")
    }
}

/// Policy parameters (all §5.1.3 defaults).
pub struct PolicyConfig {
    /// Maximum checkpoint rate during display activity.
    pub min_interval: Duration,
    /// Reduced rate during keyboard-driven editing.
    pub text_edit_interval: Duration,
    /// Fraction of the screen that must change for "display activity".
    pub min_display_fraction: f64,
    /// Skip checkpoints when a full-screen application is active with no
    /// user input.
    pub skip_fullscreen: bool,
    /// Additional user rules.
    pub rules: Vec<Box<dyn PolicyRule>>,
}

impl Default for PolicyConfig {
    fn default() -> Self {
        PolicyConfig {
            min_interval: Duration::from_secs(1),
            text_edit_interval: Duration::from_secs(10),
            min_display_fraction: 0.05,
            skip_fullscreen: true,
            rules: Vec::new(),
        }
    }
}

/// One evaluation's inputs, sampled by the server each policy tick.
#[derive(Clone, Copy, Debug, Default)]
pub struct PolicyInput {
    /// Evaluation time.
    pub now: Timestamp,
    /// Fraction of the screen changed since the last evaluation.
    pub display_fraction: f64,
    /// Whether any user input arrived since the last evaluation.
    pub user_input: bool,
    /// Whether keyboard input arrived since the last evaluation.
    pub keyboard_input: bool,
    /// Whether a full-screen application (video player, screensaver) is
    /// active.
    pub fullscreen_active: bool,
    /// Current system load average.
    pub system_load: f64,
}

/// The decision for one evaluation.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Decision {
    /// Take a checkpoint now.
    Checkpoint,
    /// Skip, with the reason.
    Skip(SkipReason),
}

/// Why a checkpoint was skipped; the categories §6 reports.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SkipReason {
    /// No display activity at all.
    NoDisplayActivity,
    /// Display activity below the threshold (and no keyboard input).
    LowDisplayActivity,
    /// Keyboard editing, held to the reduced text-edit rate.
    TextEditRate,
    /// Full-screen application active without user input.
    Fullscreen,
    /// The 1/s rate cap.
    RateLimited,
    /// A custom rule fired.
    Rule(&'static str),
}

/// Decision counters for the policy-effectiveness analysis.
#[derive(Clone, Copy, Debug, Default)]
pub struct PolicyStats {
    /// Evaluations ending in a checkpoint.
    pub checkpoints: u64,
    /// Skips: no display activity.
    pub no_display: u64,
    /// Skips: low display activity.
    pub low_display: u64,
    /// Skips: text-edit rate reduction.
    pub text_edit: u64,
    /// Skips: full-screen without input.
    pub fullscreen: u64,
    /// Skips: rate cap.
    pub rate_limited: u64,
    /// Skips: custom rules.
    pub custom_rule: u64,
}

impl PolicyStats {
    /// Total evaluations.
    pub fn total(&self) -> u64 {
        self.checkpoints
            + self.no_display
            + self.low_display
            + self.text_edit
            + self.fullscreen
            + self.rate_limited
            + self.custom_rule
    }

    /// Fraction of evaluations that took a checkpoint.
    pub fn checkpoint_fraction(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            self.checkpoints as f64 / total as f64
        }
    }
}

/// The checkpoint policy engine.
pub struct CheckpointPolicy {
    config: PolicyConfig,
    limiter: RateLimiter,
    stats: PolicyStats,
}

impl CheckpointPolicy {
    /// Creates a policy with the given configuration.
    pub fn new(config: PolicyConfig) -> Self {
        let limiter = RateLimiter::new(config.min_interval);
        CheckpointPolicy {
            config,
            limiter,
            stats: PolicyStats::default(),
        }
    }

    /// Returns decision counters.
    pub fn stats(&self) -> PolicyStats {
        self.stats
    }

    /// Evaluates one tick. The caller samples display damage and input
    /// since the previous call.
    pub fn evaluate(&mut self, input: &PolicyInput) -> Decision {
        let decision = self.decide(input);
        match decision {
            Decision::Checkpoint => self.stats.checkpoints += 1,
            Decision::Skip(SkipReason::NoDisplayActivity) => self.stats.no_display += 1,
            Decision::Skip(SkipReason::LowDisplayActivity) => self.stats.low_display += 1,
            Decision::Skip(SkipReason::TextEditRate) => self.stats.text_edit += 1,
            Decision::Skip(SkipReason::Fullscreen) => self.stats.fullscreen += 1,
            Decision::Skip(SkipReason::RateLimited) => self.stats.rate_limited += 1,
            Decision::Skip(SkipReason::Rule(_)) => self.stats.custom_rule += 1,
        }
        decision
    }

    fn decide(&mut self, input: &PolicyInput) -> Decision {
        for rule in &self.config.rules {
            if let Some(reason) = rule.evaluate(input) {
                return Decision::Skip(SkipReason::Rule(reason));
            }
        }
        // Full-screen app without input: the display record suffices.
        if self.config.skip_fullscreen && input.fullscreen_active && !input.user_input {
            return Decision::Skip(SkipReason::Fullscreen);
        }
        // Nothing changed at all and no typing: nothing to capture.
        if input.display_fraction <= 0.0 && !input.keyboard_input {
            return Decision::Skip(SkipReason::NoDisplayActivity);
        }
        if input.display_fraction < self.config.min_display_fraction {
            // Trivial display updates; but typing still deserves
            // checkpoints at the reduced rate.
            if input.keyboard_input {
                let due = match self.limiter.last_acquired() {
                    None => true,
                    Some(last) => {
                        input.now.saturating_since(last) >= self.config.text_edit_interval
                    }
                };
                if due {
                    self.limiter.try_acquire(input.now);
                    return Decision::Checkpoint;
                }
                return Decision::Skip(SkipReason::TextEditRate);
            }
            return Decision::Skip(SkipReason::LowDisplayActivity);
        }
        // Real display activity: checkpoint at up to the capped rate.
        if self.limiter.try_acquire(input.now) {
            Decision::Checkpoint
        } else {
            Decision::Skip(SkipReason::RateLimited)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn input(now_ms: u64) -> PolicyInput {
        PolicyInput {
            now: Timestamp::from_millis(now_ms),
            ..PolicyInput::default()
        }
    }

    #[test]
    fn display_activity_triggers_checkpoints_at_capped_rate() {
        let mut policy = CheckpointPolicy::new(PolicyConfig::default());
        let mut first = input(0);
        first.display_fraction = 0.5;
        assert_eq!(policy.evaluate(&first), Decision::Checkpoint);
        let mut soon = input(400);
        soon.display_fraction = 0.5;
        assert_eq!(
            policy.evaluate(&soon),
            Decision::Skip(SkipReason::RateLimited)
        );
        let mut later = input(1_000);
        later.display_fraction = 0.5;
        assert_eq!(policy.evaluate(&later), Decision::Checkpoint);
    }

    #[test]
    fn idle_screen_skips() {
        let mut policy = CheckpointPolicy::new(PolicyConfig::default());
        assert_eq!(
            policy.evaluate(&input(0)),
            Decision::Skip(SkipReason::NoDisplayActivity)
        );
    }

    #[test]
    fn trivial_updates_skip() {
        let mut policy = CheckpointPolicy::new(PolicyConfig::default());
        let mut tick = input(0);
        tick.display_fraction = 0.01; // Blinking cursor, clock.
        assert_eq!(
            policy.evaluate(&tick),
            Decision::Skip(SkipReason::LowDisplayActivity)
        );
    }

    #[test]
    fn typing_checkpoints_every_ten_seconds() {
        let mut policy = CheckpointPolicy::new(PolicyConfig::default());
        let mut decisions = Vec::new();
        for sec in 0..25 {
            let mut tick = input(sec * 1_000);
            tick.display_fraction = 0.002; // Characters appearing.
            tick.keyboard_input = true;
            tick.user_input = true;
            decisions.push(policy.evaluate(&tick));
        }
        let checkpoints = decisions
            .iter()
            .filter(|d| matches!(d, Decision::Checkpoint))
            .count();
        assert_eq!(checkpoints, 3, "t=0, t=10s, t=20s");
        assert!(decisions
            .iter()
            .any(|d| matches!(d, Decision::Skip(SkipReason::TextEditRate))));
    }

    #[test]
    fn fullscreen_video_skips_without_input() {
        let mut policy = CheckpointPolicy::new(PolicyConfig::default());
        let mut tick = input(0);
        tick.display_fraction = 1.0;
        tick.fullscreen_active = true;
        assert_eq!(
            policy.evaluate(&tick),
            Decision::Skip(SkipReason::Fullscreen)
        );
        // With input, the checkpoint goes ahead.
        let mut tick = input(1_000);
        tick.display_fraction = 1.0;
        tick.fullscreen_active = true;
        tick.user_input = true;
        assert_eq!(policy.evaluate(&tick), Decision::Checkpoint);
    }

    #[test]
    fn custom_load_rule_fires_first() {
        let config = PolicyConfig {
            rules: vec![Box::new(LoadRule { max_load: 4.0 })],
            ..PolicyConfig::default()
        };
        let mut policy = CheckpointPolicy::new(config);
        let mut tick = input(0);
        tick.display_fraction = 1.0;
        tick.system_load = 8.0;
        assert_eq!(
            policy.evaluate(&tick),
            Decision::Skip(SkipReason::Rule("system-load"))
        );
        tick.system_load = 1.0;
        assert_eq!(policy.evaluate(&tick), Decision::Checkpoint);
    }

    #[test]
    fn tunable_parameters() {
        let config = PolicyConfig {
            min_interval: Duration::from_millis(100),
            min_display_fraction: 0.5,
            ..PolicyConfig::default()
        };
        let mut policy = CheckpointPolicy::new(config);
        let mut tick = input(0);
        tick.display_fraction = 0.4;
        assert_eq!(
            policy.evaluate(&tick),
            Decision::Skip(SkipReason::LowDisplayActivity)
        );
        let mut tick = input(10);
        tick.display_fraction = 0.6;
        assert_eq!(policy.evaluate(&tick), Decision::Checkpoint);
        let mut tick = input(120);
        tick.display_fraction = 0.6;
        assert_eq!(policy.evaluate(&tick), Decision::Checkpoint);
    }

    #[test]
    fn stats_accumulate_by_reason() {
        let mut policy = CheckpointPolicy::new(PolicyConfig::default());
        let mut active = input(0);
        active.display_fraction = 0.9;
        policy.evaluate(&active);
        policy.evaluate(&input(1_000));
        let mut low = input(2_000);
        low.display_fraction = 0.01;
        policy.evaluate(&low);
        let stats = policy.stats();
        assert_eq!(stats.checkpoints, 1);
        assert_eq!(stats.no_display, 1);
        assert_eq!(stats.low_display, 1);
        assert_eq!(stats.total(), 3);
        assert!((stats.checkpoint_fraction() - 1.0 / 3.0).abs() < 1e-9);
    }
}
