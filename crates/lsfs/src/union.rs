//! The unioning file system.
//!
//! DejaView "leverages unioning file systems to join the read-only
//! snapshot with a writable file system by stacking the latter on top"
//! (§5.2): objects from the writable layer are always visible, objects
//! from the read-only layer show through where the upper layer has no
//! entry, and modifying a lower object first copies it up. Deletions of
//! lower objects are recorded as *whiteout* marker files in the upper
//! layer (`.wh.<name>`), and a directory recreated over a whiteout gets
//! an *opaque* marker hiding its lower contents — the same on-disk
//! convention overlayfs uses, which keeps the union reconstructible from
//! its two layers alone.
//!
//! Semantics simplifications relative to POSIX, both documented here and
//! acceptable for DejaView's usage: `rename` of directories is performed
//! as a recursive copy (not atomic), and two handles opened on the same
//! *lower* file diverge once one of them writes (each gets its own
//! copied-up view).

use std::collections::HashMap;

use crate::error::{FsError, FsResult};
use crate::path;
use crate::vfs::{DirEntry, FileType, Filesystem, Handle, Metadata};

const WH_PREFIX: &str = ".wh.";
const OPAQUE_MARKER: &str = ".wh.__dir_opaque__";

/// Where a union path resolved.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Loc {
    /// Present in the upper (writable) layer only, or a file shadowing
    /// the lower layer.
    Upper,
    /// Visible from the lower (read-only) layer only.
    Lower,
    /// A directory present in both layers whose contents merge.
    BothDirs,
}

enum UnionHandle {
    Upper(Handle),
    Lower { path: String, h: Handle },
    Detached { data: Vec<u8> },
}

/// A writable union of a read-only lower layer and a writable upper
/// layer.
///
/// # Examples
///
/// ```
/// use dv_lsfs::{Filesystem, MemFs, UnionFs};
///
/// let mut lower = MemFs::new();
/// lower.write_all("/config", b"original").unwrap();
/// let mut fs = UnionFs::new(lower, MemFs::new());
///
/// // Reads pass through; writes copy up.
/// assert_eq!(fs.read_all("/config").unwrap(), b"original");
/// fs.write_at("/config", 0, b"CHANGED!").unwrap();
/// assert_eq!(fs.read_all("/config").unwrap(), b"CHANGED!");
/// ```
pub struct UnionFs<L: Filesystem, U: Filesystem> {
    lower: L,
    upper: U,
    handles: HashMap<u64, UnionHandle>,
    next_handle: u64,
}

fn check_no_markers(p: &str) -> FsResult<()> {
    for comp in path::components(p)? {
        if comp.starts_with(WH_PREFIX) {
            return Err(FsError::InvalidPath);
        }
    }
    Ok(())
}

fn wh_path(p: &str) -> FsResult<String> {
    let (_, name) = path::split_parent(p)?;
    Ok(path::join(&path::parent(p)?, &format!("{WH_PREFIX}{name}")))
}

impl<L: Filesystem, U: Filesystem> UnionFs<L, U> {
    /// Creates a union of `lower` (treated as read-only) and `upper`.
    pub fn new(lower: L, upper: U) -> Self {
        UnionFs {
            lower,
            upper,
            handles: HashMap::new(),
            next_handle: 1,
        }
    }

    /// Returns the upper (writable) layer.
    pub fn upper(&self) -> &U {
        &self.upper
    }

    /// Returns a mutable reference to the upper layer, for maintenance
    /// such as continued snapshotting of a revived session's branch.
    pub fn upper_mut(&mut self) -> &mut U {
        &mut self.upper
    }

    /// Returns the lower (read-only) layer.
    pub fn lower(&self) -> &L {
        &self.lower
    }

    fn whited_out(&self, p: &str) -> bool {
        match wh_path(p) {
            Ok(wh) => self.upper.exists(&wh),
            Err(_) => false,
        }
    }

    fn upper_opaque(&self, dir: &str) -> bool {
        self.upper.exists(&path::join(dir, OPAQUE_MARKER))
    }

    /// Returns whether the lower object at `p` shows through the upper
    /// layer: no prefix is whited out and no strict ancestor directory is
    /// opaque.
    fn lower_visible(&self, p: &str) -> bool {
        let comps = match path::components(p) {
            Ok(c) => c,
            Err(_) => return false,
        };
        let mut prefix = String::new();
        for (i, comp) in comps.iter().enumerate() {
            prefix.push('/');
            prefix.push_str(comp);
            if self.whited_out(&prefix) {
                return false;
            }
            // An opaque strict ancestor hides everything below it.
            if i < comps.len() - 1 && self.upper_opaque(&prefix) {
                return false;
            }
        }
        true
    }

    fn locate(&self, p: &str) -> FsResult<Loc> {
        check_no_markers(p)?;
        match self.upper.stat(p) {
            Ok(m) => {
                if m.ftype == FileType::Directory
                    && !self.upper_opaque(p)
                    && self.lower_visible(p)
                    && matches!(
                        self.lower.stat(p),
                        Ok(Metadata {
                            ftype: FileType::Directory,
                            ..
                        })
                    )
                {
                    Ok(Loc::BothDirs)
                } else {
                    Ok(Loc::Upper)
                }
            }
            Err(FsError::NotFound) => {
                if self.lower_visible(p) {
                    match self.lower.stat(p) {
                        Ok(_) => Ok(Loc::Lower),
                        Err(e) => Err(e),
                    }
                } else {
                    Err(FsError::NotFound)
                }
            }
            // An upper regular file shadows any lower directory on the
            // path, so the upper error is the union's error.
            Err(e) => Err(e),
        }
    }

    /// Creates every directory along `dir` in the upper layer, mirroring
    /// union-visible directories (the directory copy-up of a union FS).
    fn copy_up_dirs(&mut self, dir: &str) -> FsResult<()> {
        let comps = path::components(dir)?;
        let mut prefix = String::new();
        for comp in comps {
            prefix.push('/');
            prefix.push_str(comp);
            match self.upper.mkdir(&prefix) {
                Ok(()) | Err(FsError::AlreadyExists) => {}
                Err(e) => return Err(e),
            }
        }
        Ok(())
    }

    /// Copies a lower file to the upper layer so it can be modified.
    fn copy_up_file(&mut self, p: &str) -> FsResult<()> {
        let data = self.lower.read_all(p)?;
        self.copy_up_dirs(&path::parent(p)?)?;
        self.upper.create(p)?;
        self.upper.write_at(p, 0, &data)
    }

    fn add_whiteout(&mut self, p: &str) -> FsResult<()> {
        self.copy_up_dirs(&path::parent(p)?)?;
        let wh = wh_path(p)?;
        match self.upper.create(&wh) {
            Ok(()) | Err(FsError::AlreadyExists) => Ok(()),
            Err(e) => Err(e),
        }
    }

    fn remove_whiteout_if_any(&mut self, p: &str) -> FsResult<bool> {
        let wh = wh_path(p)?;
        match self.upper.unlink(&wh) {
            Ok(()) => Ok(true),
            Err(FsError::NotFound) => Ok(false),
            Err(e) => Err(e),
        }
    }

    /// Checks that the parent of `p` is a union-visible directory.
    fn require_parent_dir(&self, p: &str) -> FsResult<()> {
        let parent = path::parent(p)?;
        if parent == "/" {
            return Ok(());
        }
        match self.locate(&parent)? {
            Loc::Upper => {
                if self.upper.stat(&parent)?.ftype != FileType::Directory {
                    return Err(FsError::NotADirectory);
                }
            }
            Loc::Lower => {
                if self.lower.stat(&parent)?.ftype != FileType::Directory {
                    return Err(FsError::NotADirectory);
                }
            }
            Loc::BothDirs => {}
        }
        Ok(())
    }

    fn alloc_handle(&mut self, uh: UnionHandle) -> Handle {
        let id = self.next_handle;
        self.next_handle += 1;
        self.handles.insert(id, uh);
        Handle(id)
    }

    fn rename_file(&mut self, from: &str, to: &str) -> FsResult<()> {
        let data = self.read_all(from)?;
        if self.exists(to) {
            self.unlink(to)?;
        }
        self.unlink(from)?;
        self.create(to)?;
        self.write_at(to, 0, &data)
    }

    fn rename_dir(&mut self, from: &str, to: &str) -> FsResult<()> {
        if self.exists(to) {
            if !self.readdir(to)?.is_empty() {
                return Err(FsError::NotEmpty);
            }
            self.rmdir(to)?;
        }
        self.mkdir(to)?;
        for entry in self.readdir(from)? {
            let src = path::join(from, &entry.name);
            let dst = path::join(to, &entry.name);
            match entry.ftype {
                FileType::Regular => self.rename_file(&src, &dst)?,
                FileType::Directory => self.rename_dir(&src, &dst)?,
            }
        }
        self.rmdir(from)
    }
}

impl<L: Filesystem, U: Filesystem> Filesystem for UnionFs<L, U> {
    fn create(&mut self, p: &str) -> FsResult<()> {
        match self.locate(p) {
            Ok(_) => return Err(FsError::AlreadyExists),
            Err(FsError::NotFound) => {}
            Err(e) => return Err(e),
        }
        self.require_parent_dir(p)?;
        self.copy_up_dirs(&path::parent(p)?)?;
        self.remove_whiteout_if_any(p)?;
        self.upper.create(p)
    }

    fn mkdir(&mut self, p: &str) -> FsResult<()> {
        match self.locate(p) {
            Ok(_) => return Err(FsError::AlreadyExists),
            Err(FsError::NotFound) => {}
            Err(e) => return Err(e),
        }
        self.require_parent_dir(p)?;
        self.copy_up_dirs(&path::parent(p)?)?;
        let had_whiteout = self.remove_whiteout_if_any(p)?;
        self.upper.mkdir(p)?;
        if had_whiteout {
            // The lower layer had an object of this name that was
            // deleted; the fresh directory must not leak its contents.
            self.upper.create(&path::join(p, OPAQUE_MARKER))?;
        }
        Ok(())
    }

    fn write_at(&mut self, p: &str, offset: u64, data: &[u8]) -> FsResult<()> {
        match self.locate(p)? {
            Loc::Upper => self.upper.write_at(p, offset, data),
            Loc::BothDirs => Err(FsError::IsADirectory),
            Loc::Lower => {
                if self.lower.stat(p)?.ftype != FileType::Regular {
                    return Err(FsError::IsADirectory);
                }
                self.copy_up_file(p)?;
                self.upper.write_at(p, offset, data)
            }
        }
    }

    fn truncate(&mut self, p: &str, size: u64) -> FsResult<()> {
        match self.locate(p)? {
            Loc::Upper => self.upper.truncate(p, size),
            Loc::BothDirs => Err(FsError::IsADirectory),
            Loc::Lower => {
                if self.lower.stat(p)?.ftype != FileType::Regular {
                    return Err(FsError::IsADirectory);
                }
                self.copy_up_file(p)?;
                self.upper.truncate(p, size)
            }
        }
    }

    fn read_at(&self, p: &str, offset: u64, len: usize) -> FsResult<Vec<u8>> {
        match self.locate(p)? {
            Loc::Upper => self.upper.read_at(p, offset, len),
            Loc::Lower => self.lower.read_at(p, offset, len),
            Loc::BothDirs => Err(FsError::IsADirectory),
        }
    }

    fn unlink(&mut self, p: &str) -> FsResult<()> {
        match self.locate(p)? {
            Loc::BothDirs => Err(FsError::IsADirectory),
            Loc::Upper => {
                if self.upper.stat(p)?.ftype != FileType::Regular {
                    return Err(FsError::IsADirectory);
                }
                self.upper.unlink(p)?;
                if self.lower_visible(p) && self.lower.exists(p) {
                    self.add_whiteout(p)?;
                }
                Ok(())
            }
            Loc::Lower => {
                if self.lower.stat(p)?.ftype != FileType::Regular {
                    return Err(FsError::IsADirectory);
                }
                self.add_whiteout(p)
            }
        }
    }

    fn rmdir(&mut self, p: &str) -> FsResult<()> {
        let loc = self.locate(p)?;
        let meta = self.stat(p)?;
        if meta.ftype != FileType::Directory {
            return Err(FsError::NotADirectory);
        }
        if !self.readdir(p)?.is_empty() {
            return Err(FsError::NotEmpty);
        }
        match loc {
            Loc::Upper | Loc::BothDirs => {
                let opq = path::join(p, OPAQUE_MARKER);
                if self.upper.exists(&opq) {
                    self.upper.unlink(&opq)?;
                }
                // Remove any child whiteout markers left in the upper dir.
                let markers: Vec<String> =
                    self.upper.readdir(p)?.into_iter().map(|e| e.name).collect();
                for name in markers {
                    self.upper.unlink(&path::join(p, &name))?;
                }
                self.upper.rmdir(p)?;
            }
            Loc::Lower => {}
        }
        if self.lower_visible(p) && self.lower.exists(p) {
            self.add_whiteout(p)?;
        }
        Ok(())
    }

    fn rename(&mut self, from: &str, to: &str) -> FsResult<()> {
        check_no_markers(from)?;
        check_no_markers(to)?;
        let src = self.stat(from)?;
        if src.ftype == FileType::Directory && path::starts_with(to, from) {
            return Err(FsError::InvalidPath);
        }
        if from == to {
            return Ok(());
        }
        self.require_parent_dir(to)?;
        match self.stat(to) {
            Ok(dst) => match (src.ftype, dst.ftype) {
                (FileType::Regular, FileType::Regular) => self.rename_file(from, to),
                (FileType::Directory, FileType::Directory) => self.rename_dir(from, to),
                (FileType::Regular, FileType::Directory) => Err(FsError::IsADirectory),
                (FileType::Directory, FileType::Regular) => Err(FsError::AlreadyExists),
            },
            Err(FsError::NotFound) => match src.ftype {
                FileType::Regular => self.rename_file(from, to),
                FileType::Directory => self.rename_dir(from, to),
            },
            Err(e) => Err(e),
        }
    }

    fn readdir(&self, p: &str) -> FsResult<Vec<DirEntry>> {
        let loc = self.locate(p)?;
        let mut entries: Vec<DirEntry> = Vec::new();
        match loc {
            Loc::Upper => {
                if self.upper.stat(p)?.ftype != FileType::Directory {
                    return Err(FsError::NotADirectory);
                }
                entries = self
                    .upper
                    .readdir(p)?
                    .into_iter()
                    .filter(|e| !e.name.starts_with(WH_PREFIX))
                    .collect();
            }
            Loc::Lower => {
                if self.lower.stat(p)?.ftype != FileType::Directory {
                    return Err(FsError::NotADirectory);
                }
                entries = self.lower.readdir(p)?;
            }
            Loc::BothDirs => {
                let upper: Vec<DirEntry> = self
                    .upper
                    .readdir(p)?
                    .into_iter()
                    .filter(|e| !e.name.starts_with(WH_PREFIX))
                    .collect();
                let upper_names: std::collections::HashSet<&str> =
                    upper.iter().map(|e| e.name.as_str()).collect();
                entries.extend(upper.iter().cloned());
                for e in self.lower.readdir(p)? {
                    if upper_names.contains(e.name.as_str()) {
                        continue;
                    }
                    if self.whited_out(&path::join(p, &e.name)) {
                        continue;
                    }
                    entries.push(e);
                }
                entries.sort_by(|a, b| a.name.cmp(&b.name));
            }
        }
        Ok(entries)
    }

    fn stat(&self, p: &str) -> FsResult<Metadata> {
        match self.locate(p)? {
            Loc::Upper | Loc::BothDirs => self.upper.stat(p),
            Loc::Lower => self.lower.stat(p),
        }
    }

    fn open(&mut self, p: &str) -> FsResult<Handle> {
        match self.locate(p)? {
            Loc::BothDirs => Err(FsError::IsADirectory),
            Loc::Upper => {
                let h = self.upper.open(p)?;
                Ok(self.alloc_handle(UnionHandle::Upper(h)))
            }
            Loc::Lower => {
                if self.lower.stat(p)?.ftype != FileType::Regular {
                    return Err(FsError::IsADirectory);
                }
                let h = self.lower.open(p)?;
                Ok(self.alloc_handle(UnionHandle::Lower {
                    path: p.to_string(),
                    h,
                }))
            }
        }
    }

    fn read_handle(&self, h: Handle, offset: u64, len: usize) -> FsResult<Vec<u8>> {
        match self.handles.get(&h.0).ok_or(FsError::BadHandle)? {
            UnionHandle::Upper(uh) => self.upper.read_handle(*uh, offset, len),
            UnionHandle::Lower { h: lh, .. } => self.lower.read_handle(*lh, offset, len),
            UnionHandle::Detached { data } => {
                let start = (offset as usize).min(data.len());
                let end = (start + len).min(data.len());
                Ok(data[start..end].to_vec())
            }
        }
    }

    fn write_handle(&mut self, h: Handle, offset: u64, data: &[u8]) -> FsResult<()> {
        let entry = self.handles.get(&h.0).ok_or(FsError::BadHandle)?;
        match entry {
            UnionHandle::Upper(uh) => {
                let uh = *uh;
                self.upper.write_handle(uh, offset, data)
            }
            UnionHandle::Detached { .. } => {
                let Some(UnionHandle::Detached { data: buf }) = self.handles.get_mut(&h.0) else {
                    unreachable!("entry matched above");
                };
                let end = offset as usize + data.len();
                if buf.len() < end {
                    buf.resize(end, 0);
                }
                buf[offset as usize..end].copy_from_slice(data);
                Ok(())
            }
            UnionHandle::Lower { path, h: lh } => {
                let (path, lh) = (path.clone(), *lh);
                // First write through a lower handle: copy up if the
                // union still resolves this path to the lower layer,
                // otherwise detach into a private orphan copy.
                let size = self.lower.handle_size(lh)? as usize;
                let content = self.lower.read_handle(lh, 0, size)?;
                self.lower.close(lh)?;
                if self.locate(&path) == Ok(Loc::Lower) {
                    self.copy_up_file(&path)?;
                    let uh = self.upper.open(&path)?;
                    self.upper.write_handle(uh, offset, data)?;
                    self.handles.insert(h.0, UnionHandle::Upper(uh));
                    Ok(())
                } else {
                    let mut buf = content;
                    let end = offset as usize + data.len();
                    if buf.len() < end {
                        buf.resize(end, 0);
                    }
                    buf[offset as usize..end].copy_from_slice(data);
                    self.handles
                        .insert(h.0, UnionHandle::Detached { data: buf });
                    Ok(())
                }
            }
        }
    }

    fn handle_size(&self, h: Handle) -> FsResult<u64> {
        match self.handles.get(&h.0).ok_or(FsError::BadHandle)? {
            UnionHandle::Upper(uh) => self.upper.handle_size(*uh),
            UnionHandle::Lower { h: lh, .. } => self.lower.handle_size(*lh),
            UnionHandle::Detached { data } => Ok(data.len() as u64),
        }
    }

    fn link_handle(&mut self, h: Handle, p: &str) -> FsResult<()> {
        check_no_markers(p)?;
        if self.exists(p) {
            return Err(FsError::AlreadyExists);
        }
        let entry = self.handles.get(&h.0).ok_or(FsError::BadHandle)?;
        match entry {
            UnionHandle::Upper(uh) => {
                let uh = *uh;
                self.copy_up_dirs(&path::parent(p)?)?;
                self.remove_whiteout_if_any(p)?;
                self.upper.link_handle(uh, p)
            }
            // Cross-layer links materialize as copies: the union cannot
            // share an inode between layers.
            UnionHandle::Lower { h: lh, .. } => {
                let lh = *lh;
                let size = self.lower.handle_size(lh)? as usize;
                let content = self.lower.read_handle(lh, 0, size)?;
                self.copy_up_dirs(&path::parent(p)?)?;
                self.remove_whiteout_if_any(p)?;
                self.upper.create(p)?;
                self.upper.write_at(p, 0, &content)
            }
            UnionHandle::Detached { data } => {
                let content = data.clone();
                self.copy_up_dirs(&path::parent(p)?)?;
                self.remove_whiteout_if_any(p)?;
                self.upper.create(p)?;
                self.upper.write_at(p, 0, &content)
            }
        }
    }

    fn close(&mut self, h: Handle) -> FsResult<()> {
        match self.handles.remove(&h.0).ok_or(FsError::BadHandle)? {
            UnionHandle::Upper(uh) => self.upper.close(uh),
            UnionHandle::Lower { h: lh, .. } => self.lower.close(lh),
            UnionHandle::Detached { .. } => Ok(()),
        }
    }

    fn sync(&mut self) -> FsResult<()> {
        self.upper.sync()
    }

    fn snapshot_point(&mut self, counter: u64) -> FsResult<()> {
        self.upper.snapshot_point(counter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memfs::MemFs;

    fn lower() -> MemFs {
        let mut fs = MemFs::new();
        fs.mkdir_all("/etc").unwrap();
        fs.write_all("/etc/conf", b"lower-conf").unwrap();
        fs.mkdir_all("/data/sub").unwrap();
        fs.write_all("/data/a", b"AAA").unwrap();
        fs.write_all("/data/sub/b", b"BBB").unwrap();
        fs
    }

    fn union() -> UnionFs<MemFs, MemFs> {
        UnionFs::new(lower(), MemFs::new())
    }

    #[test]
    fn lower_contents_show_through() {
        let fs = union();
        assert_eq!(fs.read_all("/etc/conf").unwrap(), b"lower-conf");
        assert_eq!(fs.stat("/data/a").unwrap().size, 3);
        let names: Vec<String> = fs
            .readdir("/data")
            .unwrap()
            .into_iter()
            .map(|e| e.name)
            .collect();
        assert_eq!(names, vec!["a", "sub"]);
    }

    #[test]
    fn writes_copy_up_and_never_touch_lower() {
        let mut fs = union();
        fs.write_at("/etc/conf", 0, b"UPPER").unwrap();
        assert_eq!(fs.read_all("/etc/conf").unwrap(), b"UPPER-conf");
        assert_eq!(fs.lower().read_all("/etc/conf").unwrap(), b"lower-conf");
        assert_eq!(fs.upper().read_all("/etc/conf").unwrap(), b"UPPER-conf");
    }

    #[test]
    fn unlink_lower_creates_whiteout() {
        let mut fs = union();
        fs.unlink("/data/a").unwrap();
        assert!(!fs.exists("/data/a"));
        assert_eq!(fs.read_at("/data/a", 0, 1), Err(FsError::NotFound));
        // The lower layer is untouched; the upper records the deletion.
        assert!(fs.lower().exists("/data/a"));
        assert!(fs.upper().exists("/data/.wh.a"));
        // readdir no longer shows it.
        let names: Vec<String> = fs
            .readdir("/data")
            .unwrap()
            .into_iter()
            .map(|e| e.name)
            .collect();
        assert_eq!(names, vec!["sub"]);
    }

    #[test]
    fn recreate_after_unlink_is_fresh() {
        let mut fs = union();
        fs.unlink("/data/a").unwrap();
        fs.create("/data/a").unwrap();
        assert_eq!(fs.read_all("/data/a").unwrap(), b"");
        fs.write_at("/data/a", 0, b"new").unwrap();
        assert_eq!(fs.read_all("/data/a").unwrap(), b"new");
    }

    #[test]
    fn rmdir_lower_dir_and_opaque_recreate() {
        let mut fs = union();
        assert_eq!(fs.rmdir("/data"), Err(FsError::NotEmpty));
        fs.unlink("/data/sub/b").unwrap();
        fs.rmdir("/data/sub").unwrap();
        assert!(!fs.exists("/data/sub"));
        // Recreate: must be empty, not leak lower contents.
        fs.mkdir("/data/sub").unwrap();
        assert!(fs.readdir("/data/sub").unwrap().is_empty());
        assert!(!fs.exists("/data/sub/b"));
    }

    #[test]
    fn merged_readdir_shadows_by_name() {
        let mut fs = union();
        fs.write_all("/data/a", b"upper now").unwrap();
        fs.write_all("/data/c", b"new upper").unwrap();
        let entries = fs.readdir("/data").unwrap();
        let names: Vec<&str> = entries.iter().map(|e| e.name.as_str()).collect();
        assert_eq!(names, vec!["a", "c", "sub"]);
        assert_eq!(fs.read_all("/data/a").unwrap(), b"upper now");
    }

    #[test]
    fn upper_file_shadows_lower_dir_path() {
        let mut fs = union();
        fs.unlink("/data/sub/b").unwrap();
        fs.rmdir("/data/sub").unwrap();
        fs.create("/data/sub").unwrap();
        assert_eq!(fs.stat("/data/sub").unwrap().ftype, FileType::Regular);
        assert_eq!(fs.stat("/data/sub/b"), Err(FsError::NotADirectory));
    }

    #[test]
    fn rename_lower_file() {
        let mut fs = union();
        fs.rename("/data/a", "/data/renamed").unwrap();
        assert!(!fs.exists("/data/a"));
        assert_eq!(fs.read_all("/data/renamed").unwrap(), b"AAA");
        assert!(fs.lower().exists("/data/a"), "lower untouched");
    }

    #[test]
    fn rename_directory_recursively() {
        let mut fs = union();
        fs.write_all("/data/sub/c", b"CCC").unwrap();
        fs.rename("/data", "/moved").unwrap();
        assert!(!fs.exists("/data"));
        assert_eq!(fs.read_all("/moved/a").unwrap(), b"AAA");
        assert_eq!(fs.read_all("/moved/sub/b").unwrap(), b"BBB");
        assert_eq!(fs.read_all("/moved/sub/c").unwrap(), b"CCC");
    }

    #[test]
    fn handle_on_lower_file_copies_up_on_write() {
        let mut fs = union();
        let h = fs.open("/data/a").unwrap();
        assert_eq!(fs.read_handle(h, 0, 3).unwrap(), b"AAA");
        fs.write_handle(h, 0, b"Z").unwrap();
        assert_eq!(fs.read_handle(h, 0, 3).unwrap(), b"ZAA");
        assert_eq!(fs.read_all("/data/a").unwrap(), b"ZAA");
        assert_eq!(fs.lower().read_all("/data/a").unwrap(), b"AAA");
        fs.close(h).unwrap();
    }

    #[test]
    fn handle_detaches_when_unlinked_before_write() {
        let mut fs = union();
        let h = fs.open("/data/a").unwrap();
        fs.unlink("/data/a").unwrap();
        fs.write_handle(h, 3, b"!").unwrap();
        assert_eq!(fs.read_handle(h, 0, 4).unwrap(), b"AAA!");
        assert!(!fs.exists("/data/a"));
        // Relink the orphan, as the checkpoint engine would.
        fs.mkdir("/saved").unwrap();
        fs.link_handle(h, "/saved/orphan").unwrap();
        assert_eq!(fs.read_all("/saved/orphan").unwrap(), b"AAA!");
        fs.close(h).unwrap();
    }

    #[test]
    fn whiteout_names_are_rejected_from_callers() {
        let mut fs = union();
        assert_eq!(fs.create("/data/.wh.x"), Err(FsError::InvalidPath));
        assert_eq!(fs.stat("/data/.wh.a"), Err(FsError::InvalidPath));
    }

    #[test]
    fn deep_write_creates_upper_dir_chain() {
        let mut fs = union();
        fs.write_at("/data/sub/b", 0, b"X").unwrap();
        assert_eq!(fs.read_all("/data/sub/b").unwrap(), b"XBB");
        assert_eq!(fs.lower().read_all("/data/sub/b").unwrap(), b"BBB");
    }

    #[test]
    fn branching_two_unions_from_one_lower() {
        // Two revived sessions branch from the same snapshot and diverge.
        let base = lower();
        let mut s1 = UnionFs::new(base.clone(), MemFs::new());
        let mut s2 = UnionFs::new(base, MemFs::new());
        s1.write_all("/data/a", b"session-1").unwrap();
        s2.unlink("/data/a").unwrap();
        assert_eq!(s1.read_all("/data/a").unwrap(), b"session-1");
        assert!(!s2.exists("/data/a"));
    }
}
