//! Sockets.
//!
//! The revive path treats sockets by protocol (§5.2): external stateful
//! (TCP) connections are reset — "the user does not expect external
//! network connections to remain valid" — internal (localhost)
//! connections stay intact, and stateless (UDP) sockets restore exactly.

use std::collections::HashMap;

/// Transport protocol.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Proto {
    /// Stateful, connection-oriented.
    Tcp,
    /// Stateless datagrams.
    Udp,
}

/// Connection state.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SockState {
    /// Created, not connected.
    Unconnected,
    /// Connected to the remote.
    Connected,
    /// Reset by revive (appears to the app as a dropped connection).
    Reset,
}

/// One socket.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Socket {
    /// Socket id within the VEE.
    pub id: u64,
    /// Protocol.
    pub proto: Proto,
    /// Local port.
    pub local_port: u16,
    /// Remote endpoint `(host, port)`, if connected.
    pub remote: Option<(String, u16)>,
    /// Connection state.
    pub state: SockState,
    /// Bytes sent (synthetic traffic accounting).
    pub tx_bytes: u64,
    /// Bytes received.
    pub rx_bytes: u64,
}

impl Socket {
    /// Returns whether the remote endpoint is outside the session.
    pub fn is_external(&self) -> bool {
        match &self.remote {
            Some((host, _)) => host != "localhost" && host != "127.0.0.1",
            None => false,
        }
    }
}

/// The VEE's socket table.
#[derive(Clone, Debug, Default)]
pub struct SocketTable {
    sockets: HashMap<u64, Socket>,
    next_id: u64,
    next_port: u16,
}

impl SocketTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        SocketTable {
            sockets: HashMap::new(),
            next_id: 1,
            next_port: 32768,
        }
    }

    /// Creates a socket, returning its id.
    pub fn create(&mut self, proto: Proto) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        let port = self.next_port;
        self.next_port = self.next_port.wrapping_add(1).max(1024);
        self.sockets.insert(
            id,
            Socket {
                id,
                proto,
                local_port: port,
                remote: None,
                state: SockState::Unconnected,
                tx_bytes: 0,
                rx_bytes: 0,
            },
        );
        id
    }

    /// Installs a socket during restore.
    pub fn install(&mut self, socket: Socket) {
        self.next_id = self.next_id.max(socket.id + 1);
        self.sockets.insert(socket.id, socket);
    }

    /// Looks up a socket.
    pub fn get(&self, id: u64) -> Option<&Socket> {
        self.sockets.get(&id)
    }

    /// Looks up a socket mutably.
    pub fn get_mut(&mut self, id: u64) -> Option<&mut Socket> {
        self.sockets.get_mut(&id)
    }

    /// Removes a socket.
    pub fn remove(&mut self, id: u64) -> Option<Socket> {
        self.sockets.remove(&id)
    }

    /// Iterates all sockets in id order.
    pub fn iter(&self) -> impl Iterator<Item = &Socket> {
        let mut all: Vec<&Socket> = self.sockets.values().collect();
        all.sort_by_key(|s| s.id);
        all.into_iter()
    }

    /// Returns the number of sockets.
    pub fn len(&self) -> usize {
        self.sockets.len()
    }

    /// Returns whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.sockets.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn create_and_connect() {
        let mut table = SocketTable::new();
        let id = table.create(Proto::Tcp);
        let sock = table.get_mut(id).unwrap();
        sock.remote = Some(("example.com".into(), 80));
        sock.state = SockState::Connected;
        assert!(table.get(id).unwrap().is_external());
    }

    #[test]
    fn localhost_is_internal() {
        let mut table = SocketTable::new();
        let id = table.create(Proto::Tcp);
        table.get_mut(id).unwrap().remote = Some(("localhost".into(), 5432));
        assert!(!table.get(id).unwrap().is_external());
        let id2 = table.create(Proto::Udp);
        assert!(!table.get(id2).unwrap().is_external(), "unconnected");
    }

    #[test]
    fn install_preserves_ids() {
        let mut table = SocketTable::new();
        table.install(Socket {
            id: 42,
            proto: Proto::Udp,
            local_port: 9999,
            remote: None,
            state: SockState::Unconnected,
            tx_bytes: 0,
            rx_bytes: 0,
        });
        assert_eq!(table.get(42).unwrap().local_port, 9999);
        let next = table.create(Proto::Tcp);
        assert_eq!(next, 43);
    }

    #[test]
    fn distinct_local_ports() {
        let mut table = SocketTable::new();
        let a = table.create(Proto::Tcp);
        let b = table.create(Proto::Tcp);
        assert_ne!(
            table.get(a).unwrap().local_port,
            table.get(b).unwrap().local_port
        );
    }
}
