//! The metadata journal of the log-structured file system.
//!
//! Every modifying transaction appends a journal record to the log:
//! "all file system modifications append data to the disk, be it meta
//! data updates, directory changes or syncing data blocks" (§5.1.1).
//! Records are chained backwards (each holds the offset of its
//! predecessor), so given the head offset — the role a superblock's
//! checkpoint region plays in a real LFS — the entire operation history
//! can be recovered and replayed.

use crate::error::{FsError, FsResult};

/// Sentinel "no previous record" offset terminating the chain.
pub const NO_PREV: u64 = u64::MAX;

/// A journaled file system operation.
///
/// Operations reference inodes explicitly so replay is deterministic;
/// data writes reference block locations already persisted in the data
/// log rather than carrying the bytes again.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum FsOp {
    /// Create a regular file `name` with inode `ino` under `parent`.
    Create {
        /// Parent directory inode.
        parent: u64,
        /// Entry name.
        name: String,
        /// Inode assigned to the new file.
        ino: u64,
    },
    /// Create a directory.
    Mkdir {
        /// Parent directory inode.
        parent: u64,
        /// Entry name.
        name: String,
        /// Inode assigned to the new directory.
        ino: u64,
    },
    /// Commit buffered data: set `ino`'s size and point the listed block
    /// indices at data-log offsets.
    Write {
        /// Target inode.
        ino: u64,
        /// New file size in bytes.
        size: u64,
        /// `(block_index, data_log_offset)` pairs.
        extents: Vec<(u64, u64)>,
    },
    /// Remove directory entry `name` from `parent` (regular file).
    Unlink {
        /// Parent directory inode.
        parent: u64,
        /// Entry name.
        name: String,
    },
    /// Remove empty directory `name` from `parent`.
    Rmdir {
        /// Parent directory inode.
        parent: u64,
        /// Entry name.
        name: String,
    },
    /// Move an entry between directories, replacing any permissible
    /// existing target entry.
    Rename {
        /// Source directory inode.
        from_parent: u64,
        /// Source entry name.
        from_name: String,
        /// Destination directory inode.
        to_parent: u64,
        /// Destination entry name.
        to_name: String,
    },
    /// Add a directory entry for an existing inode (the checkpoint
    /// engine's relink of unlinked-but-open files).
    Link {
        /// Inode to link.
        ino: u64,
        /// Directory receiving the entry.
        parent: u64,
        /// Entry name.
        name: String,
    },
    /// Drop an orphan inode whose last handle closed.
    Release {
        /// The orphan inode.
        ino: u64,
    },
    /// A snapshot point tagged with the checkpoint counter (§5.1.1: the
    /// counter is stored in both the checkpoint image and the FS log).
    SnapshotMark {
        /// Checkpoint counter value.
        counter: u64,
    },
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u32).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

struct Reader<'a> {
    buf: &'a [u8],
}

impl<'a> Reader<'a> {
    fn remaining(&self) -> usize {
        self.buf.len()
    }

    fn u64(&mut self) -> FsResult<u64> {
        if self.buf.len() < 8 {
            return Err(FsError::InvalidPath);
        }
        let (head, rest) = self.buf.split_at(8);
        self.buf = rest;
        Ok(u64::from_le_bytes(head.try_into().expect("8 bytes")))
    }

    fn string(&mut self) -> FsResult<String> {
        if self.buf.len() < 4 {
            return Err(FsError::InvalidPath);
        }
        let (head, rest) = self.buf.split_at(4);
        let len = u32::from_le_bytes(head.try_into().expect("4 bytes")) as usize;
        if rest.len() < len {
            return Err(FsError::InvalidPath);
        }
        let (s, rest) = rest.split_at(len);
        self.buf = rest;
        String::from_utf8(s.to_vec()).map_err(|_| FsError::InvalidPath)
    }
}

impl FsOp {
    /// Encodes the operation to bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            FsOp::Create { parent, name, ino } => {
                out.push(1);
                put_u64(&mut out, *parent);
                put_str(&mut out, name);
                put_u64(&mut out, *ino);
            }
            FsOp::Mkdir { parent, name, ino } => {
                out.push(2);
                put_u64(&mut out, *parent);
                put_str(&mut out, name);
                put_u64(&mut out, *ino);
            }
            FsOp::Write { ino, size, extents } => {
                out.push(3);
                put_u64(&mut out, *ino);
                put_u64(&mut out, *size);
                put_u64(&mut out, extents.len() as u64);
                for (idx, off) in extents {
                    put_u64(&mut out, *idx);
                    put_u64(&mut out, *off);
                }
            }
            FsOp::Unlink { parent, name } => {
                out.push(4);
                put_u64(&mut out, *parent);
                put_str(&mut out, name);
            }
            FsOp::Rmdir { parent, name } => {
                out.push(5);
                put_u64(&mut out, *parent);
                put_str(&mut out, name);
            }
            FsOp::Rename {
                from_parent,
                from_name,
                to_parent,
                to_name,
            } => {
                out.push(6);
                put_u64(&mut out, *from_parent);
                put_str(&mut out, from_name);
                put_u64(&mut out, *to_parent);
                put_str(&mut out, to_name);
            }
            FsOp::Link { ino, parent, name } => {
                out.push(7);
                put_u64(&mut out, *ino);
                put_u64(&mut out, *parent);
                put_str(&mut out, name);
            }
            FsOp::Release { ino } => {
                out.push(8);
                put_u64(&mut out, *ino);
            }
            FsOp::SnapshotMark { counter } => {
                out.push(9);
                put_u64(&mut out, *counter);
            }
        }
        out
    }

    /// Decodes an operation from bytes produced by [`FsOp::encode`].
    pub fn decode(buf: &[u8]) -> FsResult<FsOp> {
        let (&tag, rest) = buf.split_first().ok_or(FsError::InvalidPath)?;
        let mut r = Reader { buf: rest };
        let op = match tag {
            1 => FsOp::Create {
                parent: r.u64()?,
                name: r.string()?,
                ino: r.u64()?,
            },
            2 => FsOp::Mkdir {
                parent: r.u64()?,
                name: r.string()?,
                ino: r.u64()?,
            },
            3 => {
                let ino = r.u64()?;
                let size = r.u64()?;
                let n = r.u64()? as usize;
                // The count is untrusted; every extent consumes 16
                // bytes, so bound it by the remaining payload.
                if n > r.remaining() / 16 {
                    return Err(FsError::InvalidPath);
                }
                let mut extents = Vec::with_capacity(n);
                for _ in 0..n {
                    extents.push((r.u64()?, r.u64()?));
                }
                FsOp::Write { ino, size, extents }
            }
            4 => FsOp::Unlink {
                parent: r.u64()?,
                name: r.string()?,
            },
            5 => FsOp::Rmdir {
                parent: r.u64()?,
                name: r.string()?,
            },
            6 => FsOp::Rename {
                from_parent: r.u64()?,
                from_name: r.string()?,
                to_parent: r.u64()?,
                to_name: r.string()?,
            },
            7 => FsOp::Link {
                ino: r.u64()?,
                parent: r.u64()?,
                name: r.string()?,
            },
            8 => FsOp::Release { ino: r.u64()? },
            9 => FsOp::SnapshotMark { counter: r.u64()? },
            _ => return Err(FsError::InvalidPath),
        };
        Ok(op)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(op: FsOp) {
        let bytes = op.encode();
        assert_eq!(FsOp::decode(&bytes).unwrap(), op);
    }

    #[test]
    fn all_ops_round_trip() {
        round_trip(FsOp::Create {
            parent: 1,
            name: "file.txt".into(),
            ino: 42,
        });
        round_trip(FsOp::Mkdir {
            parent: 7,
            name: "dir".into(),
            ino: 43,
        });
        round_trip(FsOp::Write {
            ino: 42,
            size: 123456,
            extents: vec![(0, 0), (1, 4096), (30, 999_999)],
        });
        round_trip(FsOp::Unlink {
            parent: 1,
            name: "gone".into(),
        });
        round_trip(FsOp::Rmdir {
            parent: 1,
            name: "dir".into(),
        });
        round_trip(FsOp::Rename {
            from_parent: 1,
            from_name: "a".into(),
            to_parent: 2,
            to_name: "b".into(),
        });
        round_trip(FsOp::Link {
            ino: 9,
            parent: 3,
            name: "relinked".into(),
        });
        round_trip(FsOp::Release { ino: 9 });
        round_trip(FsOp::SnapshotMark { counter: 17 });
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(FsOp::decode(&[]).is_err());
        assert!(FsOp::decode(&[200]).is_err());
        assert!(FsOp::decode(&[1, 0, 0]).is_err());
    }

    #[test]
    fn unicode_names_round_trip() {
        round_trip(FsOp::Create {
            parent: 1,
            name: "датоте́ка-数据.txt".into(),
            ino: 5,
        });
    }
}
