//! Property test: drop accounting over random client lifecycles.
//!
//! Every way a client can leave the service — protocol goodbye,
//! transport EOF, transport reset, corrupt framing, exhausted send
//! stalls, idle timeout — must surface in `PollReport.dropped` exactly
//! once, with the right reason, and clients that stay must never
//! appear there. The service pipeline has several stages that can all
//! notice a dead connection (drain, pump, idle scan, reap); the
//! invariant under test is that exactly one of them reports it.
//!
//! Each case spins up one service and a shuffled population of clients
//! covering all five drop paths (plus survivors), runs them through a
//! scripted lifecycle over the deterministic loopback transport, and
//! audits the union of every poll's drop reports.

mod common;

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use dejaview::{Config, DejaView};
use dv_display::Rect;
use dv_net::{
    encode_frame_vec, encode_message_vec, DropReason, LoopbackTransport, Message, NetClient,
    NetConfig, NetService, Readiness, Transport, TransportError, PROTOCOL_VERSION,
};
use dv_time::Duration;
use proptest::prelude::*;

/// How a scripted client ends (or doesn't).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Fate {
    /// Stays connected and responsive for the whole run.
    Stay,
    /// Sends a protocol `Bye`.
    Bye,
    /// Closes its transport end (EOF in order).
    Eof,
    /// Its transport resets under the server.
    Reset,
    /// Sends a frame that fails framing validation.
    Corrupt,
    /// Its link stalls permanently until retries exhaust.
    Stall,
    /// Goes silent until the idle deadline.
    Idle,
}

const ALL_FATES: [Fate; 7] = [
    Fate::Stay,
    Fate::Bye,
    Fate::Eof,
    Fate::Reset,
    Fate::Corrupt,
    Fate::Stall,
    Fate::Idle,
];

impl Fate {
    fn expected_drop(self) -> Option<DropReason> {
        match self {
            Fate::Stay => None,
            Fate::Bye | Fate::Eof => Some(DropReason::Graceful),
            Fate::Reset => Some(DropReason::Reset),
            Fate::Corrupt => Some(DropReason::Corrupt),
            Fate::Stall => Some(DropReason::Stalled),
            Fate::Idle => Some(DropReason::Idle),
        }
    }
}

/// Server-side transport wrapper whose failure mode flips on under
/// test control: a permanent send stall or an inbound reset. The
/// reset also forces the readiness edge readable, the way a real
/// dead socket reports — a reset must not hide behind the reactor's
/// quiet-skip.
struct ScriptedTransport {
    inner: LoopbackTransport,
    stalled: Arc<AtomicBool>,
    reset: Arc<AtomicBool>,
}

impl Transport for ScriptedTransport {
    fn send(&mut self, bytes: &[u8]) -> Result<usize, TransportError> {
        if self.stalled.load(Ordering::Relaxed) {
            return Ok(0);
        }
        self.inner.send(bytes)
    }

    fn recv(&mut self, buf: &mut [u8]) -> Result<usize, TransportError> {
        if self.reset.load(Ordering::Relaxed) {
            return Err(TransportError::Reset);
        }
        self.inner.recv(buf)
    }

    fn close(&mut self) {
        self.inner.close();
    }

    fn is_open(&self) -> bool {
        self.inner.is_open()
    }

    fn readiness(&mut self) -> Readiness {
        let mut r = self.inner.readiness();
        if self.reset.load(Ordering::Relaxed) {
            r.readable = true;
            r.closed = true;
        }
        r
    }
}

/// One scripted participant: either a full `NetClient` (polled every
/// round) or a raw wire end driven by hand.
struct Scripted {
    id: u64,
    fate: Fate,
    /// Round at which the fate's trigger fires.
    step: usize,
    fired: bool,
    client: Option<NetClient<LoopbackTransport>>,
    wire: Option<LoopbackTransport>,
    stalled: Arc<AtomicBool>,
    reset: Arc<AtomicBool>,
}

fn send_all(wire: &mut LoopbackTransport, bytes: &[u8]) {
    let mut off = 0;
    while off < bytes.len() {
        off += wire.send(&bytes[off..]).expect("scripted wire send");
    }
}

fn hello_bytes(name: &str) -> Vec<u8> {
    encode_frame_vec(&encode_message_vec(&Message::Hello {
        version: PROTOCOL_VERSION,
        name: name.to_string(),
    }))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn every_departure_is_reported_exactly_once(
        extra in prop::collection::vec(0usize..ALL_FATES.len(), 0..6),
        steps in prop::collection::vec(0usize..4, 16),
        rotate in 0usize..16,
    ) {
        // One of each fate guarantees all five drop paths are covered
        // every case; the extras and the rotation vary population and
        // accept order.
        let mut fates: Vec<Fate> = ALL_FATES.to_vec();
        fates.extend(extra.iter().map(|&i| ALL_FATES[i]));
        let pivot = rotate % fates.len();
        fates.rotate_left(pivot);

        let mut svc = NetService::new(
            DejaView::new(Config { width: 64, height: 48, ..Config::default() }),
            NetConfig {
                max_send_retries: 3,
                retry_backoff: Duration::from_millis(1),
                idle_timeout: Duration::from_millis(2000),
                ..NetConfig::default()
            },
        );

        let mut pop: Vec<Scripted> = Vec::new();
        for (i, &fate) in fates.iter().enumerate() {
            let stalled = Arc::new(AtomicBool::new(false));
            let reset = Arc::new(AtomicBool::new(false));
            let (server_end, mut client_end) = LoopbackTransport::pair();
            let id = svc.accept(ScriptedTransport {
                inner: server_end,
                stalled: stalled.clone(),
                reset: reset.clone(),
            });
            // Bye/Stall/Reset/Stay ride a real NetClient; Eof, Corrupt
            // and Idle need raw control of the wire (close mid-stream,
            // garbage bytes, true silence).
            let (client, wire) = match fate {
                Fate::Eof | Fate::Corrupt | Fate::Idle => {
                    send_all(&mut client_end, &hello_bytes(&format!("raw-{i}")));
                    (None, Some(client_end))
                }
                _ => {
                    let mut c = NetClient::connect(client_end, &format!("client-{i}"));
                    // Attach the stall-fated (queued live frames are what
                    // stalls exhaust against) and half the rest.
                    if fate == Fate::Stall || i % 2 == 0 {
                        c.attach_live();
                    }
                    (Some(c), None)
                }
            };
            pop.push(Scripted {
                id,
                fate,
                step: steps[i % steps.len()],
                fired: false,
                client,
                wire,
                stalled,
                reset,
            });
        }

        let mut drops: Vec<(u64, DropReason)> = Vec::new();
        // Trigger steps land in rounds 0..4; the remaining rounds give
        // stalls time to exhaust their retry budget (4 polls at 40ms
        // against 1-2-4ms backoffs) and farewells time to flush.
        for round in 0..12 {
            let d = svc.dv_mut().driver_mut();
            d.fill_rect(
                Rect::new((round * 5) as u32 % 40, (round * 3) as u32 % 30, 9, 7),
                0x0F0F0F ^ round as u32,
            );
            svc.dv_mut().clock().advance(Duration::from_millis(40));

            for s in pop.iter_mut() {
                if round == s.step && !s.fired {
                    s.fired = true;
                    match s.fate {
                        Fate::Stay | Fate::Idle => {}
                        Fate::Bye => s.client.as_mut().unwrap().bye(),
                        Fate::Eof => s.wire.as_mut().unwrap().close(),
                        Fate::Reset => s.reset.store(true, Ordering::Relaxed),
                        Fate::Stall => s.stalled.store(true, Ordering::Relaxed),
                        Fate::Corrupt => {
                            // An impossible length prefix: framing
                            // rejects it without waiting for a body.
                            send_all(s.wire.as_mut().unwrap(), &[0xFF; 8]);
                        }
                    }
                }
                if let Some(c) = s.client.as_mut() {
                    let _ = c.poll();
                }
            }
            drops.extend(svc.poll().dropped);
            for s in pop.iter_mut() {
                if let Some(c) = s.client.as_mut() {
                    let _ = c.poll();
                }
            }
        }

        // Idle phase: advance in sub-half-timeout hops so survivors
        // keep answering pings while true silence crosses the
        // deadline. Two client polls per hop because a received Ping
        // queues the Pong on the first poll and flushes it on the
        // second; the trailing service poll drains it.
        for _ in 0..8 {
            drops.extend(svc.poll().dropped);
            for s in pop.iter_mut() {
                if let Some(c) = s.client.as_mut() {
                    let _ = c.poll();
                    let _ = c.poll();
                }
            }
            drops.extend(svc.poll().dropped);
            svc.dv_mut().clock().advance(Duration::from_millis(400));
        }

        // The audit: exactly one report per departed client, with the
        // fate's reason; survivors never reported, never disconnected.
        for s in &pop {
            let mine: Vec<DropReason> =
                drops.iter().filter(|(id, _)| *id == s.id).map(|&(_, r)| r).collect();
            match s.fate.expected_drop() {
                Some(reason) => prop_assert_eq!(
                    &mine[..],
                    &[reason][..],
                    "client {} (fate {:?}) misreported",
                    s.id,
                    s.fate
                ),
                None => {
                    prop_assert!(
                        mine.is_empty(),
                        "surviving client {} reported dropped: {:?}",
                        s.id,
                        mine
                    );
                    let c = s.client.as_ref().unwrap();
                    prop_assert!(!c.is_closed(), "surviving client {} lost its link", s.id);
                }
            }
        }
        let stays = pop.iter().filter(|s| s.fate == Fate::Stay).count();
        prop_assert_eq!(svc.client_count(), stays, "departed clients not reaped");
    }
}
