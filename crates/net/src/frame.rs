//! Length-prefixed CRC-framed messages.
//!
//! The transport layer delivers an undifferentiated byte stream in
//! arbitrary chunks; the frame layer cuts it back into messages. Every
//! frame is
//!
//! ```text
//! [payload_len: u32 LE][crc32(payload): u32 LE][payload...]
//! ```
//!
//! The CRC (the same IEEE CRC32 that guards the lsfs journal,
//! [`dv_fault::checksum`]) turns silent in-flight corruption into a
//! clean [`FrameError::Corrupt`] instead of a garbage message handed to
//! the protocol layer. Truncation at any byte offset is never an
//! error: the decoder simply reports "need more data" (an `Ok(None)`)
//! until the rest arrives or the connection dies.

use dv_fault::checksum::crc32;

/// Bytes of fixed header preceding every frame payload.
pub const FRAME_HEADER_LEN: usize = 8;

/// Upper bound on a single frame's payload, a defense against a
/// corrupt or hostile length prefix causing a huge allocation. Large
/// enough for a keyframe of a 4K screen (RLE-encoded) with room to
/// spare.
pub const MAX_FRAME_LEN: usize = 64 << 20;

/// Errors produced while cutting frames out of the byte stream.
///
/// Both variants are fatal for the connection: after either, the
/// stream offset can no longer be trusted.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FrameError {
    /// The length prefix exceeds [`MAX_FRAME_LEN`].
    TooLarge(usize),
    /// The payload failed its CRC check.
    Corrupt {
        /// CRC carried by the frame header.
        expected: u32,
        /// CRC computed over the received payload.
        actual: u32,
    },
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::TooLarge(len) => write!(f, "frame length {len} exceeds {MAX_FRAME_LEN}"),
            FrameError::Corrupt { expected, actual } => {
                write!(
                    f,
                    "frame CRC mismatch: header {expected:#010x}, payload {actual:#010x}"
                )
            }
        }
    }
}

impl std::error::Error for FrameError {}

/// Appends one framed `payload` to `out`.
pub fn encode_frame(payload: &[u8], out: &mut Vec<u8>) {
    debug_assert!(payload.len() <= MAX_FRAME_LEN);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
}

/// Frames `payload` into a fresh buffer.
pub fn encode_frame_vec(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(FRAME_HEADER_LEN + payload.len());
    encode_frame(payload, &mut out);
    out
}

/// Frames `payload` into a shared slice, the currency of zero-copy
/// fan-out: the service encodes once and every viewer's queue holds a
/// refcount on the same wire bytes.
pub fn encode_frame_shared(payload: &[u8]) -> std::sync::Arc<[u8]> {
    encode_frame_vec(payload).into()
}

/// Incremental frame reassembler: feed bytes in whatever chunks the
/// transport produced, take complete payloads out.
#[derive(Default)]
pub struct FrameDecoder {
    buf: Vec<u8>,
}

impl FrameDecoder {
    /// Creates an empty decoder.
    pub fn new() -> Self {
        FrameDecoder::default()
    }

    /// Appends a chunk of stream bytes.
    pub fn feed(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Returns how many bytes are buffered awaiting a complete frame.
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    /// Extracts the next complete payload, or `Ok(None)` when the
    /// buffer holds only a partial frame ("need more data").
    ///
    /// # Errors
    ///
    /// [`FrameError`] when the stream is corrupt; the connection should
    /// be dropped.
    pub fn next_frame(&mut self) -> Result<Option<Vec<u8>>, FrameError> {
        if self.buf.len() < FRAME_HEADER_LEN {
            return Ok(None);
        }
        let len = u32::from_le_bytes(self.buf[..4].try_into().expect("4 bytes")) as usize;
        if len > MAX_FRAME_LEN {
            return Err(FrameError::TooLarge(len));
        }
        let expected = u32::from_le_bytes(self.buf[4..8].try_into().expect("4 bytes"));
        if self.buf.len() < FRAME_HEADER_LEN + len {
            return Ok(None);
        }
        let payload: Vec<u8> = self.buf[FRAME_HEADER_LEN..FRAME_HEADER_LEN + len].to_vec();
        let actual = crc32(&payload);
        if actual != expected {
            return Err(FrameError::Corrupt { expected, actual });
        }
        self.buf.drain(..FRAME_HEADER_LEN + len);
        Ok(Some(payload))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip_in_order() {
        let mut wire = Vec::new();
        encode_frame(b"first", &mut wire);
        encode_frame(b"", &mut wire);
        encode_frame(b"third message", &mut wire);
        let mut dec = FrameDecoder::new();
        dec.feed(&wire);
        assert_eq!(dec.next_frame().unwrap().unwrap(), b"first");
        assert_eq!(dec.next_frame().unwrap().unwrap(), b"");
        assert_eq!(dec.next_frame().unwrap().unwrap(), b"third message");
        assert_eq!(dec.next_frame().unwrap(), None);
        assert_eq!(dec.buffered(), 0);
    }

    #[test]
    fn byte_at_a_time_delivery_reassembles() {
        let wire = encode_frame_vec(b"fragmented payload");
        let mut dec = FrameDecoder::new();
        for (i, b) in wire.iter().enumerate() {
            dec.feed(std::slice::from_ref(b));
            let got = dec.next_frame().unwrap();
            if i + 1 < wire.len() {
                assert_eq!(got, None, "complete frame before byte {i}");
            } else {
                assert_eq!(got.unwrap(), b"fragmented payload");
            }
        }
    }

    #[test]
    fn corrupt_payload_is_detected() {
        let mut wire = encode_frame_vec(b"precious bytes");
        let last = wire.len() - 1;
        wire[last] ^= 0x40;
        let mut dec = FrameDecoder::new();
        dec.feed(&wire);
        assert!(matches!(dec.next_frame(), Err(FrameError::Corrupt { .. })));
    }

    #[test]
    fn oversized_length_prefix_is_rejected_without_allocating() {
        let mut wire = Vec::new();
        wire.extend_from_slice(&(u32::MAX).to_le_bytes());
        wire.extend_from_slice(&0u32.to_le_bytes());
        let mut dec = FrameDecoder::new();
        dec.feed(&wire);
        assert_eq!(
            dec.next_frame(),
            Err(FrameError::TooLarge(u32::MAX as usize))
        );
    }
}
