//! Display recording and playback for DejaView.
//!
//! Implements §4.1 and §4.3 of the paper: the display record is an
//! append-only [`CommandLog`] of THINC-style commands plus periodic
//! keyframe screenshots indexed by a fixed-entry [`Timeline`] — "similar
//! to an MPEG movie where screenshots represent self-contained
//! independent frames ... and commands in the log represent dependent
//! frames". The [`DisplayRecorder`] sink produces the record from the
//! live command stream; the [`PlaybackEngine`] seeks, plays, fast
//! forwards and rewinds over it; [`Substream`] exposes PVR controls
//! restricted to a query-result time range.

#![deny(unsafe_code)]

pub mod cache;
pub mod log;
pub mod persist;
pub mod playback;
pub mod recorder;
pub mod screenshot;
pub mod substream;
pub mod timeline;

pub use cache::LruCache;
pub use log::CommandLog;
pub use persist::{decode_record, encode_record, open_record, RecordError};
pub use playback::{PlayStats, PlaybackEngine, PlaybackError};
pub use recorder::{DisplayRecord, DisplayRecorder, RecordStats, RecordStore, RecorderConfig};
pub use screenshot::{decode_screenshot, encode_screenshot, ScreenshotStore};
pub use substream::Substream;
pub use timeline::{Timeline, TimelineEntry, ENTRY_LEN};
