//! Accessibility substrate and text-capture daemon for DejaView.
//!
//! Implements §4.2 of the paper: applications expose [`AccessibleTree`]s
//! on a [`Desktop`] bus that delivers mutation events synchronously; the
//! [`CaptureDaemon`] mirrors the trees incrementally (avoiding expensive
//! full traversals), extracts displayed text with its context —
//! application, window title, role, focus — and feeds visibility
//! intervals to the text index. It also implements the explicit
//! annotation path (select text + key combination).

#![deny(unsafe_code)]

pub mod daemon;
pub mod mirror;
pub mod naive;
pub mod registry;
pub mod tree;

pub use daemon::{CaptureDaemon, DaemonStats, TextInstance, TextSink};
pub use mirror::{MirrorNode, MirrorTree};
pub use naive::NaiveCaptureDaemon;
pub use registry::{AccessEvent, AccessListener, AppId, Desktop, SharedListener};
pub use tree::{AccessibleNode, AccessibleTree, NodeId, Role};
