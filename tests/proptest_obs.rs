//! Property tests for the dv-obs metrics registry and export layer.
//!
//! * Histogram snapshot merge must be associative and commutative with
//!   the empty snapshot as identity, so per-worker and per-run
//!   distributions fold correctly in any order.
//! * The JSON export must be byte-identical across two runs that
//!   perform the same operations: under the suite's pinned
//!   `PROPTEST_RNG_SEED` a profiling export is a stable artifact, not
//!   a source of diff noise.

mod common;

use proptest::prelude::*;

use dv_obs::{names, HistogramSnapshot, Obs, Registry};
use dv_time::{Duration, SimClock};

/// Builds a snapshot by observing every value into a fresh registry
/// histogram (exercising the bucket path, not just the struct).
fn snapshot_of(values: &[u64]) -> HistogramSnapshot {
    let r = Registry::default();
    for &v in values {
        r.observe("h", v);
    }
    r.histogram("h").unwrap_or_default()
}

proptest! {
    #[test]
    fn histogram_merge_is_commutative(
        a in prop::collection::vec(any::<u64>(), 0..64),
        b in prop::collection::vec(any::<u64>(), 0..64),
    ) {
        let (sa, sb) = (snapshot_of(&a), snapshot_of(&b));
        prop_assert_eq!(sa.merge(&sb), sb.merge(&sa));
    }

    #[test]
    fn histogram_merge_is_associative(
        a in prop::collection::vec(any::<u64>(), 0..48),
        b in prop::collection::vec(any::<u64>(), 0..48),
        c in prop::collection::vec(any::<u64>(), 0..48),
    ) {
        let (sa, sb, sc) = (snapshot_of(&a), snapshot_of(&b), snapshot_of(&c));
        prop_assert_eq!(sa.merge(&sb).merge(&sc), sa.merge(&sb.merge(&sc)));
    }

    #[test]
    fn merge_identity_and_bucket_totals(
        a in prop::collection::vec(any::<u64>(), 0..64),
    ) {
        let s = snapshot_of(&a);
        let id = HistogramSnapshot::default();
        prop_assert_eq!(s.merge(&id), s);
        prop_assert_eq!(id.merge(&s), s);
        prop_assert_eq!(s.counts.iter().sum::<u64>(), s.count);
        prop_assert_eq!(s.count, a.len() as u64);
    }

    #[test]
    fn merge_equals_combined_observation(
        a in prop::collection::vec(0u64..1u64 << 32, 0..48),
        b in prop::collection::vec(0u64..1u64 << 32, 0..48),
    ) {
        // Merging two partial snapshots must equal observing the
        // concatenated sequence into one histogram (sums stay below
        // u64::MAX here, so saturation never kicks in).
        let merged = snapshot_of(&a).merge(&snapshot_of(&b));
        let mut all = a.clone();
        all.extend_from_slice(&b);
        prop_assert_eq!(merged, snapshot_of(&all));
    }
}

/// One deterministic profiling run: a seeded sequence of counter adds,
/// gauge moves, histogram observations, spans, and ring events on a
/// session-clocked handle. Everything — names, order, timestamps — is a
/// pure function of `seed`.
fn seeded_run(seed: u64) -> String {
    const COUNTERS: [&str; 3] = [
        names::DISPLAY_COMMAND_BYTES,
        names::INDEX_BYTES,
        names::LSFS_DATA_BYTES,
    ];
    const HISTS: [(&str, &str); 3] = [
        ("display", names::DISPLAY_FLUSH),
        ("checkpoint", names::CHECKPOINT_CAPTURE),
        ("lsfs", names::LSFS_SYNC),
    ];
    const EVENTS: [(&str, &str); 2] = [
        ("fault", names::EV_FAULT_INJECTED),
        ("server", names::EV_SERVER_RETRY),
    ];

    let clock = SimClock::new();
    let obs = Obs::new(clock.shared());
    let mut state = seed;
    let mut next = move || {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };
    for _ in 0..400 {
        clock.advance(Duration::from_micros(next() % 500));
        match next() % 5 {
            0 => obs.add(COUNTERS[(next() % 3) as usize], next() % 4096),
            1 => obs.gauge_set(names::CHECKPOINT_QUEUE_DEPTH, next() % 8),
            2 => {
                let (_, name) = HISTS[(next() % 3) as usize];
                obs.observe(name, next() % 2_000_000);
            }
            3 => {
                let (stream, name) = EVENTS[(next() % 2) as usize];
                obs.event(stream, name, format!("case={}", next() % 100));
            }
            _ => {
                let (stream, name) = HISTS[(next() % 3) as usize];
                let span = obs.span(stream, name);
                clock.advance(Duration::from_micros(next() % 300));
                drop(span);
            }
        }
    }
    obs.snapshot().to_json()
}

#[test]
fn json_export_is_byte_identical_across_runs() {
    let seed = common::rng_seed();
    let a = seeded_run(seed);
    let b = seeded_run(seed);
    assert_eq!(a, b, "same seed, same operations, same bytes");
    assert!(a.contains("\"counters\""));
    assert!(a.contains("\"histograms\""));
    assert!(a.contains("\"events\""));
    // A different seed produces a different export (the test is not
    // vacuously comparing empty snapshots).
    let c = seeded_run(seed ^ 0xDEAD_BEEF);
    assert_ne!(a, c);
}
