//! Offline drop-in replacement for the `bytes` API subset this
//! workspace uses: [`Buf`] over `&[u8]` and [`BufMut`] over `Vec<u8>`,
//! little-endian integer accessors only.
//!
//! # Panics
//!
//! Like the real crate, the `get_*` accessors panic when the buffer has
//! fewer bytes than requested; callers bounds-check first.

/// Read access to a contiguous byte cursor.
pub trait Buf {
    fn remaining(&self) -> usize;
    fn chunk(&self) -> &[u8];
    fn advance(&mut self, cnt: usize);

    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "buffer underflow");
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }

    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_le_bytes(b)
    }

    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    fn get_i64_le(&mut self) -> i64 {
        self.get_u64_le() as i64
    }

    fn get_i8(&mut self) -> i8 {
        self.get_u8() as i8
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end of slice");
        *self = &self[cnt..];
    }
}

/// Write access to a growable byte buffer.
pub trait BufMut {
    fn put_slice(&mut self, src: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_i64_le(&mut self, v: i64) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_i8(&mut self, v: i8) {
        self.put_u8(v as u8);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_little_endian() {
        let mut out: Vec<u8> = Vec::new();
        out.put_u8(7);
        out.put_u16_le(0x1234);
        out.put_u32_le(0xDEADBEEF);
        out.put_u64_le(0x0123_4567_89AB_CDEF);
        let mut buf: &[u8] = &out;
        assert_eq!(buf.remaining(), 15);
        assert_eq!(buf.get_u8(), 7);
        assert_eq!(buf.get_u16_le(), 0x1234);
        assert_eq!(buf.get_u32_le(), 0xDEADBEEF);
        assert_eq!(buf.get_u64_le(), 0x0123_4567_89AB_CDEF);
        assert!(!buf.has_remaining());
    }

    #[test]
    fn advance_and_chunk() {
        let mut buf: &[u8] = b"abcdef";
        buf.advance(2);
        assert_eq!(buf.chunk(), b"cdef");
    }

    #[test]
    #[should_panic(expected = "buffer underflow")]
    fn underflow_panics() {
        let mut buf: &[u8] = b"a";
        let _ = buf.get_u32_le();
    }
}
