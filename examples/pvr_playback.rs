//! PVR controls over a recorded session: pause/seek, fast forward,
//! rewind, rate-scaled play, and substreams (§4.3, §4.4).
//!
//! Drives the `cat` workload to build a display-intensive record, then
//! exercises every time-shifting operation the paper describes.
//!
//! Run with: `cargo run --example pvr_playback`

use dejaview::{Config, DejaView};
use dv_record::{PlaybackEngine, RecorderConfig, Substream};
use dv_time::{Duration, Timestamp};
use dv_workloads::{run_scenario, CatScenario, RunOptions};

fn main() {
    // Keyframe every second so fast-forward has frames to walk.
    let mut dv = DejaView::new(Config {
        recorder: RecorderConfig {
            keyframe_interval: Duration::from_secs(1),
            keyframe_min_change: 0.0,
            ..RecorderConfig::default()
        },
        ..Config::default()
    });

    // Record several virtual seconds of a terminal dumping a log file.
    let mut scenario = CatScenario::new(0.5);
    let summary = run_scenario(&mut dv, &mut scenario, RunOptions::default());
    println!(
        "recorded {} steps over {} of virtual time ({} checkpoints)",
        summary.steps, summary.virtual_elapsed, summary.checkpoints
    );

    let record = dv.record();
    let (duration, commands) = {
        let store = record.read();
        (store.duration(), store.log.len())
    };
    println!("display record: {commands} commands spanning {duration}");

    // --- Skip (the slider): binary search + bounded replay. ------------
    let mut engine = PlaybackEngine::new(record.clone());
    let mid = Timestamp::ZERO + duration.scale(0.5);
    let stats = engine.seek(mid).unwrap();
    println!(
        "seek to {mid}: applied {} commands ({} pruned as overwritten)",
        stats.commands_applied, stats.commands_pruned
    );

    // --- Play at 2x: inter-command delays are halved. -------------------
    let mut slept = Duration::ZERO;
    let end = Timestamp::ZERO + duration;
    engine
        .play_realtime_until(end, 2.0, None, |gap| slept += gap)
        .unwrap();
    println!(
        "2x playback of the second half would sleep {} (recorded span {})",
        slept,
        duration.scale(0.5)
    );

    // --- Fastest-possible playback (the Figure 6 measurement). ----------
    let mut engine = PlaybackEngine::new(record.clone());
    engine.seek(Timestamp::ZERO).unwrap();
    let started = std::time::Instant::now();
    engine.play_until(end, None).unwrap();
    let wall = started.elapsed();
    let speedup = duration.as_secs_f64() / wall.as_secs_f64();
    println!("fastest playback: {wall:?} wall for {duration} recorded = {speedup:.0}x real time");

    // --- Fast forward and rewind walk the keyframes. --------------------
    let mut engine = PlaybackEngine::new(record.clone());
    engine.seek(Timestamp::ZERO).unwrap();
    let ff = engine.fast_forward(end, None).unwrap();
    println!(
        "fast forward presented {} keyframes then {} commands",
        ff.keyframes_presented, ff.commands_applied
    );
    let rw = engine.rewind(mid, None).unwrap();
    println!(
        "rewind presented {} keyframes back to {mid}",
        rw.keyframes_presented
    );

    // --- A substream: PVR controls clamped to a result interval. --------
    let mut sub = Substream::new(record, mid, end);
    let first = sub.first_screenshot().unwrap();
    let last = sub.last_screenshot().unwrap();
    println!(
        "substream [{} .. {}]: first/last screenshots {} / {}",
        sub.start(),
        sub.end(),
        first.content_hash(),
        last.content_hash()
    );
    assert_ne!(first.content_hash(), last.content_hash());
}
