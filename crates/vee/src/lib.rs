//! Virtual execution environments (the Zap role) for DejaView.
//!
//! A simulated OS layer whose *state* the checkpoint engine can quiesce,
//! capture, and rebuild (paper §3 and §5): processes with real
//! page-granular virtual memory (COW capture, write-protect dirty
//! tracking), descriptor tables over the session file system, sockets
//! with the revive-time reset policy, signals with uninterruptible-sleep
//! semantics, and private namespaces that keep virtual resource names
//! stable across revives.

#![deny(unsafe_code)]

pub mod container;
pub mod files;
pub mod memory;
pub mod namespace;
pub mod process;
pub mod sockets;

pub use container::{HostPidAllocator, Vee, VeeError, VeeResult};
pub use files::{FdObject, FdTable};
pub use memory::{AddressSpace, MemFault, MemRegion, MemStats, PageBuf, Prot, PAGE_SIZE};
pub use namespace::Namespace;
pub use process::{
    Credentials, FpuState, Process, Registers, RunState, SchedParams, SigState, Signal, Vpid,
};
pub use sockets::{Proto, SockState, Socket, SocketTable};
