//! Shared helpers for the integration and property test suite.
//!
//! The whole suite derives its randomness from one base seed so that a
//! failing run reproduces with a single environment variable:
//! `PROPTEST_RNG_SEED` — the same variable the proptest runner honors —
//! re-seeds both the property tests and the fault-injection plans here.

#![allow(dead_code)]

/// Default base seed; matches the proptest runner's default so one
/// override re-seeds everything.
pub const DEFAULT_SEED: u64 = 0x00DE_7AC7_EDC0_FFEE;

/// Returns the suite's base RNG seed, overridable via
/// `PROPTEST_RNG_SEED` (decimal or `0x`-prefixed hex).
pub fn rng_seed() -> u64 {
    match std::env::var("PROPTEST_RNG_SEED") {
        Ok(v) => v
            .trim()
            .parse::<u64>()
            .or_else(|_| u64::from_str_radix(v.trim().trim_start_matches("0x"), 16))
            .unwrap_or_else(|_| panic!("unparseable PROPTEST_RNG_SEED: {v:?}")),
        Err(_) => DEFAULT_SEED,
    }
}

/// Derives a distinct deterministic seed for a named test, site, or
/// case from the base seed (FNV-1a over the label).
pub fn seed_for(label: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in label.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h ^ rng_seed()
}
