//! Span tracing and the bounded event ring.
//!
//! Discrete happenings — an injected fault, a retried commit, an inline
//! fallback — become [`TraceEvent`]s in a bounded ring buffer; when the
//! ring is full the oldest event is dropped and a drop counter bumped,
//! so a long session can never grow memory without bound. Event
//! timestamps come from the session clock (`dv-time`), which is the
//! `SimClock` in tests — sim-time runs produce deterministic traces.

use std::collections::VecDeque;

use dv_time::Timestamp;

/// Default ring capacity.
pub const DEFAULT_RING_CAPACITY: usize = 1024;

/// One structured event in the trace ring.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct TraceEvent {
    /// Monotonic sequence number (survives ring wrap-around).
    pub seq: u64,
    /// Session time at which the event was recorded.
    pub time: Timestamp,
    /// Stream the event belongs to (`"lsfs"`, `"checkpoint"`, ...).
    pub stream: &'static str,
    /// Event name (`"fault.injected"`, `"server.retry"`, ...).
    pub name: &'static str,
    /// Free-form detail (site, error, attempt number).
    pub detail: String,
    /// Span duration in nanoseconds; 0 for instantaneous events.
    pub duration_nanos: u64,
}

/// Fixed-capacity ring of [`TraceEvent`]s.
#[derive(Debug)]
pub struct TraceRing {
    buf: VecDeque<TraceEvent>,
    capacity: usize,
    next_seq: u64,
    dropped: u64,
}

impl TraceRing {
    /// Creates a ring holding at most `capacity` events.
    pub fn new(capacity: usize) -> Self {
        TraceRing {
            buf: VecDeque::with_capacity(capacity.min(DEFAULT_RING_CAPACITY)),
            capacity: capacity.max(1),
            next_seq: 0,
            dropped: 0,
        }
    }

    /// Appends an event, evicting the oldest when full.
    pub fn push(
        &mut self,
        time: Timestamp,
        stream: &'static str,
        name: &'static str,
        detail: String,
        duration_nanos: u64,
    ) {
        if self.buf.len() == self.capacity {
            self.buf.pop_front();
            self.dropped += 1;
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        self.buf.push_back(TraceEvent {
            seq,
            time,
            stream,
            name,
            detail,
            duration_nanos,
        });
    }

    /// Events currently held, oldest first.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.buf.iter().cloned().collect()
    }

    /// Events evicted so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Total events ever pushed.
    pub fn total(&self) -> u64 {
        self.next_seq
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_keeps_newest_and_counts_drops() {
        let mut ring = TraceRing::new(2);
        for i in 0..5u64 {
            ring.push(Timestamp::from_nanos(i), "s", "e", format!("{i}"), 0);
        }
        let events = ring.events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].seq, 3);
        assert_eq!(events[1].seq, 4);
        assert_eq!(ring.dropped(), 3);
        assert_eq!(ring.total(), 5);
    }

    #[test]
    fn zero_capacity_clamps_to_one() {
        let mut ring = TraceRing::new(0);
        ring.push(Timestamp::ZERO, "s", "a", String::new(), 0);
        ring.push(Timestamp::ZERO, "s", "b", String::new(), 0);
        assert_eq!(ring.events().len(), 1);
        assert_eq!(ring.events()[0].name, "b");
    }
}
