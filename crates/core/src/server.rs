//! The DejaView server.
//!
//! Owns and coordinates every component of §3's architecture for one
//! user desktop: the virtual display driver (with the display recorder
//! attached), the accessibility bus with the text-capture daemon feeding
//! the index, the virtual execution environment over a snapshotting file
//! system, the checkpoint engine driven by the display-activity policy,
//! and the revive path producing concurrently running
//! [`RevivedSession`]s.

use std::sync::Arc;

use parking_lot::{Mutex, MutexGuard};

use dv_access::{CaptureDaemon, Desktop};
use dv_checkpoint::{
    revive, CheckpointPolicy, CheckpointReport, Checkpointer, Decision, NetworkPolicy, PolicyInput,
};
use dv_display::{InputEvent, Screenshot, Viewer, VirtualDisplayDriver};
use dv_fault::FaultPlane;
use dv_index::{parse_query, RankOrder, SearchHit, TextIndex};
use dv_lsfs::{BlobStore, Lsfs, ReadOnlyFs, SharedBlobStore, SharedFs, UnionFs};
use dv_obs::{names, Obs, ObsSnapshot};
use dv_record::{DisplayRecord, DisplayRecorder, LruCache, PlaybackEngine};
use dv_tidx::{TidxConfig, TidxEngine};
use dv_time::{Duration, SimClock, Timestamp};
use dv_vee::{HostPidAllocator, Vee, Vpid};
use dv_vidx::{VidxConfig, VidxEngine, VisualHit};

use crate::config::Config;
use crate::error::ServerError;
use crate::session::RevivedSession;
use crate::sink::IndexSink;
use crate::stats::{PipelineBreakdown, StorageBreakdown};

/// One search result: a hit plus the screenshot portal the user clicks
/// through, and — for substream results — the last screenshot of the
/// matching period (§4.4's first-last pair).
pub struct SearchResult {
    /// The underlying index hit.
    pub hit: SearchHit,
    /// The desktop as it looked when the query became satisfied.
    pub screenshot: Screenshot,
    /// For results spanning a contiguous period, the desktop at the end
    /// of the period.
    pub last_screenshot: Option<Screenshot>,
}

/// The outcome of one policy tick.
pub struct PolicyTick {
    /// What the policy decided.
    pub decision: Decision,
    /// The checkpoint report, when one was taken.
    pub report: Option<CheckpointReport>,
}

/// A DejaView server instance.
pub struct DejaView {
    clock: SimClock,
    /// The accessibility bus; workloads register applications here.
    desktop: Desktop,
    driver: VirtualDisplayDriver,
    recorder: Arc<Mutex<DisplayRecorder>>,
    record: DisplayRecord,
    index: Arc<Mutex<TextIndex>>,
    /// The sharded temporal index over `index` (None when disabled:
    /// the whole record stays in the single in-memory index).
    tidx: Option<Arc<TidxEngine>>,
    /// Thumbnail-keyed visual recall over the keyframe stream (None
    /// when disabled or when display recording is off).
    vidx: Option<Arc<VidxEngine>>,
    /// The main session's virtual execution environment.
    vee: Vee,
    session_fs: SharedFs<Lsfs>,
    engine: Checkpointer,
    policy: CheckpointPolicy,
    store: SharedBlobStore,
    host_pids: HostPidAllocator,
    instance_counter: std::sync::Arc<std::sync::atomic::AtomicU64>,
    playback: PlaybackEngine,
    search_cache: LruCache<u64, Screenshot>,
    revived: std::collections::BTreeMap<u64, RevivedSession>,
    next_session_id: u64,
    revive_network: NetworkPolicy,
    engine_config: dv_checkpoint::EngineConfig,
    compress: bool,
    width: u32,
    height: u32,
    clipboard: String,
    // Signals sampled by the next policy tick.
    pending_user_input: bool,
    pending_keyboard_input: bool,
    fullscreen_active: bool,
    system_load: f64,
    substream_threshold: Duration,
    fault_plane: FaultPlane,
    io_retry_limit: u32,
    io_retry_backoff: Duration,
    obs: Obs,
}

impl DejaView {
    /// Creates a server with its own session clock.
    pub fn new(config: Config) -> Self {
        DejaView::with_clock(config, SimClock::new())
    }

    /// Creates a server over an existing session clock (shared with the
    /// workload driver).
    pub fn with_clock(config: Config, clock: SimClock) -> Self {
        let Config {
            width,
            height,
            recorder,
            engine,
            policy,
            revive_network,
            search_cache,
            store_latency,
            enable_display_recording,
            enable_text_capture,
            enable_sharded_index,
            index_shard_window,
            index_filter_redundant,
            index_compact_fanin,
            index_segment_cache,
            enable_visual_index,
            thumbnail_w,
            thumbnail_h,
            visual_near_dup_bits,
            fault_plane,
            obs,
            shared_store,
            blob_prefix,
            io_retry_limit,
            io_retry_backoff,
        } = config;
        // The server always records observability: a disabled config
        // handle is upgraded to a session-time one so
        // `DejaView::observability` and the registry-derived breakdowns
        // work out of the box. A caller-supplied enabled handle (e.g.
        // `Obs::wall` for profiling) is used as-is.
        let obs = if obs.is_enabled() {
            obs
        } else {
            Obs::new(clock.shared())
        };
        let compress = engine.compress;
        let mut driver = VirtualDisplayDriver::new(width, height, clock.shared());
        driver.set_obs(obs.clone());
        let recorder = Arc::new(Mutex::new(DisplayRecorder::new(width, height, recorder)));
        recorder.lock().set_fault_plane(fault_plane.clone());
        recorder.lock().set_obs(obs.clone());
        let record = recorder.lock().record();
        if enable_display_recording {
            driver.attach_sink(recorder.clone());
        }

        let index = Arc::new(Mutex::new(TextIndex::new()));
        index.lock().set_obs(obs.clone());
        let instance_counter = Arc::new(std::sync::atomic::AtomicU64::new(1));
        let mut desktop = Desktop::new();
        if enable_text_capture {
            let mut sink = IndexSink::new(index.clone()).with_filter(index_filter_redundant);
            sink.set_obs(obs.clone());
            let mut daemon = CaptureDaemon::with_instance_counter(
                clock.shared(),
                sink,
                instance_counter.clone(),
            );
            daemon.set_obs(obs.clone());
            desktop.register_listener(Arc::new(Mutex::new(daemon)));
        }

        let session_fs = SharedFs::new(Lsfs::new());
        session_fs.with(|fs| {
            fs.set_fault_plane(fault_plane.clone());
            fs.set_obs(obs.clone());
        });
        let host_pids = HostPidAllocator::new();
        let mut vee = Vee::new(
            0,
            clock.shared(),
            Box::new(session_fs.clone()),
            host_pids.clone(),
        );
        // The session always has an init process anchoring the forest
        // (the display server runs inside the environment, §3).
        vee.spawn(None, "session-init").expect("empty namespace");

        // A host-provided shared store keeps its own fault plane and
        // obs wiring (it serves many tenants); a private store is wired
        // to this session's.
        let store = match shared_store {
            Some(store) => store,
            None => {
                let store = match store_latency {
                    Some(latency) => SharedBlobStore::with_latency(latency),
                    None => SharedBlobStore::in_memory(),
                };
                store.with(|s| {
                    s.set_fault_plane(fault_plane.clone());
                    s.set_obs(obs.clone());
                });
                store
            }
        };
        let mut checkpointer = Checkpointer::with_sim_clock(engine, clock.clone());
        if let Some(prefix) = &blob_prefix {
            checkpointer = checkpointer.with_blob_prefix(prefix);
        }
        checkpointer.set_fault_plane(fault_plane.clone());
        checkpointer.set_obs(obs.clone());
        // The plane is shared state: injections anywhere in the stack
        // surface as traced events no matter which component installed
        // its handle last.
        fault_plane.set_obs(obs.clone());
        // The sharded index shares the open index with the capture
        // sink and seals segments into the checkpoint store, under the
        // tenant's namespace when a host assigned one.
        let tidx = if enable_sharded_index && enable_text_capture {
            Some(Arc::new(TidxEngine::new(
                index.clone(),
                store.clone(),
                fault_plane.clone(),
                obs.clone(),
                TidxConfig {
                    shard_window: index_shard_window,
                    compact_fanin: index_compact_fanin,
                    segment_cache: index_segment_cache,
                    blob_prefix: match &blob_prefix {
                        Some(prefix) => format!("{prefix}."),
                        None => String::new(),
                    },
                },
            )))
        } else {
            None
        };
        // Visual recall hangs off the recorder's keyframe hook: every
        // *persisted* keyframe (suppressed duplicates never fire it)
        // is thumbnailed and fingerprinted into the strip, which seals
        // into the same checkpoint store under the tenant namespace.
        let vidx = if enable_visual_index && enable_display_recording {
            let engine = Arc::new(VidxEngine::new(
                store.clone(),
                fault_plane.clone(),
                obs.clone(),
                VidxConfig {
                    thumb_w: thumbnail_w,
                    thumb_h: thumbnail_h,
                    near_dup_bits: visual_near_dup_bits,
                    strip_window: index_shard_window,
                    segment_cache: index_segment_cache,
                    blob_prefix: match &blob_prefix {
                        Some(prefix) => format!("{prefix}."),
                        None => String::new(),
                    },
                },
            ));
            let hook = engine.clone();
            recorder
                .lock()
                .set_keyframe_hook(Box::new(move |now, shot| hook.observe(now, shot)));
            Some(engine)
        } else {
            None
        };
        let playback = PlaybackEngine::new(record.clone());
        DejaView {
            clipboard: String::new(),
            engine_config: engine,
            engine: checkpointer,
            policy: CheckpointPolicy::new(policy),
            clock,
            desktop,
            driver,
            recorder,
            record,
            index,
            tidx,
            vidx,
            vee,
            session_fs,
            store,
            host_pids,
            instance_counter,
            playback,
            search_cache: LruCache::new(search_cache),
            revived: std::collections::BTreeMap::new(),
            next_session_id: 1,
            revive_network,
            compress,
            width,
            height,
            pending_user_input: false,
            pending_keyboard_input: false,
            fullscreen_active: false,
            system_load: 0.0,
            substream_threshold: Duration::from_secs(5),
            fault_plane,
            io_retry_limit,
            io_retry_backoff,
            obs,
        }
    }

    /// Returns the observability handle shared by every recording
    /// stream (display, text, index, checkpoint, lsfs, fault plane).
    pub fn obs(&self) -> &Obs {
        &self.obs
    }

    /// Snapshots the unified observability state: every counter, gauge
    /// and latency histogram in the registry plus the trace-event ring.
    /// This replaces the ad-hoc per-component counters; the
    /// [`DejaView::storage`] and [`DejaView::pipeline_stats`] breakdowns
    /// are derived from the same registry.
    pub fn observability(&self) -> ObsSnapshot {
        self.obs.snapshot()
    }

    /// Returns the session clock.
    pub fn clock(&self) -> SimClock {
        self.clock.clone()
    }

    /// Returns the current session time.
    pub fn now(&self) -> Timestamp {
        use dv_time::Clock;
        self.clock.now()
    }

    /// Returns the accessibility bus (workloads register and mutate
    /// their applications through it).
    pub fn desktop_mut(&mut self) -> &mut Desktop {
        &mut self.desktop
    }

    /// Returns the virtual display driver (workloads draw through it).
    pub fn driver_mut(&mut self) -> &mut VirtualDisplayDriver {
        &mut self.driver
    }

    /// Returns the virtual display driver, read-only (remote-access
    /// service snapshots and fingerprints).
    pub fn driver(&self) -> &VirtualDisplayDriver {
        &self.driver
    }

    /// Content hash of the live screen — the fingerprint a correctly
    /// synchronized remote viewer must reproduce byte-for-byte.
    pub fn screen_fingerprint(&self) -> u64 {
        self.driver.snapshot().content_hash()
    }

    /// Returns the main session's execution environment.
    pub fn vee_mut(&mut self) -> &mut Vee {
        &mut self.vee
    }

    /// Returns the main session's execution environment, read-only.
    pub fn vee(&self) -> &Vee {
        &self.vee
    }

    /// Returns the main session's init process.
    pub fn init_vpid(&self) -> Vpid {
        Vpid(1)
    }

    /// Returns the shared display record.
    pub fn record(&self) -> DisplayRecord {
        self.record.clone()
    }

    /// Returns the shared text index.
    pub fn index(&self) -> Arc<Mutex<TextIndex>> {
        self.index.clone()
    }

    /// Returns the checkpoint store, locked (Figure 7's cached/uncached
    /// axis is driven by [`BlobStore::drop_caches`]). The deferred
    /// write-back pipeline holds the same store; keep the guard short.
    pub fn store_mut(&mut self) -> MutexGuard<'_, BlobStore> {
        self.store.lock()
    }

    /// Returns a cloneable handle to the checkpoint store shared with
    /// the deferred write-back pipeline.
    pub fn store_handle(&self) -> SharedBlobStore {
        self.store.clone()
    }

    /// Drains the checkpoint engine's deferred write-back pipeline,
    /// blocking until every captured image has committed (or failed).
    /// The first asynchronous commit failure since the last flush is
    /// surfaced here and counted as one degradation event.
    pub fn flush_checkpoints(&mut self) -> Result<(), ServerError> {
        self.engine.flush().map_err(|e| {
            self.obs.incr(names::SERVER_DEGRADED_EVENTS);
            ServerError::from(e)
        })
    }

    /// Returns the checkpoint engine.
    pub fn engine(&self) -> &Checkpointer {
        &self.engine
    }

    /// Returns the checkpoint engine mutably (archive restore).
    pub fn engine_mut(&mut self) -> &mut Checkpointer {
        &mut self.engine
    }

    /// Returns the live screen size.
    pub fn screen_size(&self) -> (u32, u32) {
        (self.width, self.height)
    }

    /// Returns the typed handle to the session file system.
    pub fn session_fs_handle(&self) -> SharedFs<Lsfs> {
        self.session_fs.clone()
    }

    /// Replaces the display record's contents (archive restore); the
    /// recorder continues appending to it and playback state resets.
    /// The `display.*` byte counters resynchronize to the restored
    /// store so the registry-derived [`DejaView::storage`] stays exact.
    pub fn install_record(&mut self, store: dv_record::RecordStore) {
        *self.record.write() = store;
        self.playback = PlaybackEngine::new(self.record.clone());
        self.search_cache.clear();
        let stats = self.recorder.lock().stats();
        self.obs
            .set_counter(names::DISPLAY_COMMAND_BYTES, stats.command_bytes);
        self.obs
            .set_counter(names::DISPLAY_SCREENSHOT_BYTES, stats.screenshot_bytes);
        self.obs
            .set_counter(names::DISPLAY_TIMELINE_BYTES, stats.timeline_bytes);
    }

    /// Replaces the text index's contents (archive restore) and bumps
    /// the capture daemon's instance counter past the archived ids. The
    /// restored index inherits the server's observability handle and
    /// the `index.bytes` counter resynchronizes to its footprint.
    pub fn install_index(&mut self, index: TextIndex) {
        let next = index.max_instance_id() + 1;
        self.instance_counter
            .store(next, std::sync::atomic::Ordering::Relaxed);
        let bytes = index.stats().bytes;
        let mut slot = self.index.lock();
        *slot = index;
        slot.set_obs(self.obs.clone());
        drop(slot);
        self.obs.set_counter(names::INDEX_BYTES, bytes);
    }

    /// Replaces the session file system's contents (archive restore);
    /// the VEE's shared handle observes the restored state. The restored
    /// file system inherits the server's observability handle and the
    /// `lsfs.*` accounting resynchronizes to its recovered state.
    pub fn install_session_fs(&mut self, fs: Lsfs) {
        self.session_fs.with(|inner| *inner = fs);
        let obs = self.obs.clone();
        let stats = self.session_fs.with(|fs| {
            fs.set_obs(obs);
            fs.stats()
        });
        self.obs
            .set_counter(names::LSFS_DATA_BYTES, stats.data_bytes);
        self.obs
            .set_counter(names::LSFS_JOURNAL_BYTES, stats.journal_bytes);
        self.obs.gauge_set(names::LSFS_SNAPSHOTS, stats.snapshots);
    }

    /// The shared clipboard: "the user can copy and paste content
    /// amongst her active sessions" (§2) — the live desktop and any
    /// revived session read and write the same clipboard.
    pub fn clipboard(&self) -> &str {
        &self.clipboard
    }

    /// Places text on the shared clipboard.
    pub fn set_clipboard(&mut self, text: &str) {
        self.clipboard = text.to_string();
    }

    /// Compacts the session file system's log, reclaiming space from
    /// overwritten data and dropped snapshots.
    ///
    /// # Errors
    ///
    /// Fails with a `Busy` file system error while revived sessions
    /// exist — their union mounts hold snapshot views into the log.
    pub fn compact_storage(&mut self) -> Result<u64, ServerError> {
        let reclaimed = self.session_fs.with(|fs| fs.compact())?;
        Ok(reclaimed)
    }

    /// Drops the file system snapshot for checkpoints older than
    /// `keep_from` (a retention policy), returning how many were
    /// dropped. Dropped checkpoints can no longer be revived with a
    /// consistent file system view.
    pub fn retire_snapshots_before(&mut self, keep_from: u64) -> usize {
        let counters: Vec<u64> = self
            .session_fs
            .with(|fs| fs.snapshot_counters())
            .into_iter()
            .filter(|c| *c < keep_from)
            .collect();
        let mut dropped = 0;
        for counter in counters {
            if self.session_fs.with(|fs| fs.drop_snapshot(counter)) {
                dropped += 1;
            }
        }
        dropped
    }

    /// Forwards one user input event from the viewer (§2). Input is not
    /// recorded — it only informs the checkpoint policy — except the
    /// annotation key combination (Ctrl+Alt+A), which tags the current
    /// text selection as an annotation (§4.4).
    pub fn input(&mut self, event: InputEvent) {
        self.pending_user_input = true;
        if event.is_keyboard() {
            self.pending_keyboard_input = true;
        }
        if let InputEvent::Key {
            ch: 'a',
            ctrl: true,
            alt: true,
        } = event
        {
            self.desktop.annotate_current_selection();
        }
    }

    /// Marks whether a full-screen application (video, screensaver) is
    /// active, a policy input (§5.1.3).
    pub fn set_fullscreen(&mut self, active: bool) {
        self.fullscreen_active = active;
    }

    /// Sets the system load seen by custom policy rules.
    pub fn set_system_load(&mut self, load: f64) {
        self.system_load = load;
    }

    /// Takes a checkpoint, retrying with exponential backoff (on the
    /// session clock) when the storage layer fails. Each failed attempt
    /// counts as one degradation event; the error is returned only once
    /// the retry budget is exhausted.
    fn checkpoint_with_retry(&mut self) -> Result<CheckpointReport, ServerError> {
        let mut backoff = self.io_retry_backoff;
        let mut attempt = 0u32;
        loop {
            match self.engine.checkpoint(&mut self.vee, &self.store) {
                Ok(report) => {
                    self.maybe_seal_index(report.counter);
                    self.maybe_seal_visual(report.counter);
                    return Ok(report);
                }
                Err(e) => {
                    self.obs.incr(names::SERVER_DEGRADED_EVENTS);
                    if attempt >= self.io_retry_limit {
                        return Err(e.into());
                    }
                    attempt += 1;
                    self.obs.incr(names::SERVER_CHECKPOINT_RETRIES);
                    self.obs.event(
                        "server",
                        names::EV_SERVER_RETRY,
                        format!("checkpoint attempt={attempt} error={e:?}"),
                    );
                    self.clock.advance(backoff);
                    backoff = Duration::from_nanos(backoff.as_nanos().saturating_mul(2));
                }
            }
        }
    }

    /// Seals the open index shard at a just-durable checkpoint when
    /// its window has elapsed. A failed seal degrades (the open shard
    /// stays authoritative and the seal retries at the next
    /// checkpoint) but never fails the checkpoint itself.
    fn maybe_seal_index(&mut self, counter: u64) {
        let now = self.now();
        if let Some(tidx) = &self.tidx {
            self.index.lock().advance_horizon(now);
            if let Err(e) = tidx.maybe_seal(counter) {
                self.obs.incr(names::SERVER_DEGRADED_EVENTS);
                self.obs.event(
                    "server",
                    names::EV_SERVER_RETRY,
                    format!("index-seal ckpt={counter} error={e:?}"),
                );
            }
        }
    }

    /// Seals the open visual strip at a just-durable checkpoint when
    /// its window has elapsed. Degrades like the index seal: the open
    /// strip stays authoritative and the seal retries at the next
    /// checkpoint, never failing the checkpoint itself.
    fn maybe_seal_visual(&mut self, counter: u64) {
        if let Some(vidx) = &self.vidx {
            if let Err(e) = vidx.maybe_seal(counter) {
                self.obs.incr(names::SERVER_DEGRADED_EVENTS);
                self.obs.event(
                    "server",
                    names::EV_SERVER_RETRY,
                    format!("visual-seal ckpt={counter} error={e:?}"),
                );
            }
        }
    }

    /// Flushes the text index as a storable segment, retrying failed
    /// flushes with the same backoff policy as checkpoints. Corrupt
    /// flushes succeed here (silent corruption) and are caught by
    /// `decode_index` on reload.
    pub(crate) fn flush_index_with_retry(&mut self) -> Result<Vec<u8>, ServerError> {
        let mut backoff = self.io_retry_backoff;
        let mut attempt = 0u32;
        loop {
            let flushed = {
                let now = self.now();
                let mut index = self.index.lock();
                index.advance_horizon(now);
                dv_index::flush_segment(&index, &self.fault_plane)
            };
            match flushed {
                Ok(bytes) => return Ok(bytes),
                Err(e) => {
                    self.obs.incr(names::SERVER_DEGRADED_EVENTS);
                    if attempt >= self.io_retry_limit {
                        return Err(ServerError::Query(dv_index::ParseError(e.to_string())));
                    }
                    attempt += 1;
                    self.obs.incr(names::SERVER_INDEX_FLUSH_RETRIES);
                    self.obs.event(
                        "server",
                        names::EV_SERVER_RETRY,
                        format!("index-flush attempt={attempt} error={e:?}"),
                    );
                    self.clock.advance(backoff);
                    backoff = Duration::from_nanos(backoff.as_nanos().saturating_mul(2));
                }
            }
        }
    }

    /// Takes a checkpoint unconditionally (with the storage retry
    /// policy).
    pub fn checkpoint_now(&mut self) -> Result<CheckpointReport, ServerError> {
        self.checkpoint_with_retry()
    }

    /// Flushes the text index as a storable segment (with the storage
    /// retry policy). A multi-tenant host calls this on its fair
    /// index-flush rotation; single-session embedders normally rely on
    /// the archive path instead.
    pub fn flush_index(&mut self) -> Result<Vec<u8>, ServerError> {
        self.flush_index_with_retry()
    }

    /// Counts storage failures the server absorbed without stopping the
    /// session: failed checkpoint attempts and failed index flushes
    /// (each retry that failed counts once). Read from the
    /// observability registry's `server.degraded_events` counter.
    pub fn degraded_events(&self) -> u64 {
        self.obs.counter(names::SERVER_DEGRADED_EVENTS)
    }

    /// Runs one checkpoint-policy evaluation (the server calls this
    /// roughly once per second). Samples display damage and input since
    /// the last tick.
    pub fn policy_tick(&mut self) -> Result<PolicyTick, ServerError> {
        let now = self.now();
        self.index.lock().advance_horizon(now);
        let damage = self.driver.take_damage();
        let input = PolicyInput {
            now,
            display_fraction: damage.coverage_of(self.width, self.height),
            user_input: self.pending_user_input,
            keyboard_input: self.pending_keyboard_input,
            fullscreen_active: self.fullscreen_active,
            system_load: self.system_load,
        };
        self.pending_user_input = false;
        self.pending_keyboard_input = false;
        let decision = self.policy.evaluate(&input);
        let report = match decision {
            // A checkpoint that still fails after retries degrades the
            // record (this moment is not revivable) but never stops
            // recording: the tick reports no checkpoint and the failure
            // is visible in `degraded_events` / engine `write_failures`.
            Decision::Checkpoint => self.checkpoint_with_retry().ok(),
            Decision::Skip(_) => None,
        };
        Ok(PolicyTick { decision, report })
    }

    /// Returns policy decision counters.
    pub fn policy_stats(&self) -> dv_checkpoint::PolicyStats {
        self.policy.stats()
    }

    /// Flushes pending display state and takes a keyframe (used during
    /// idle periods).
    pub fn force_keyframe(&mut self) {
        let now = self.now();
        self.recorder.lock().force_keyframe(now);
    }

    /// Creates a playback engine over the display record (PVR controls,
    /// §4.3).
    pub fn playback(&self) -> PlaybackEngine {
        PlaybackEngine::new(self.record.clone())
    }

    /// Reconstructs the screen at time `t` (the browse slider).
    pub fn browse(&mut self, t: Timestamp) -> Result<Screenshot, ServerError> {
        self.playback.seek(t)?;
        Ok(self.playback.screenshot())
    }

    /// Reconstructs the screen at time `t` resized for a smaller access
    /// device — §4.1's example of viewing a full-resolution record "to
    /// fit the screen of a PDA".
    pub fn browse_at_scale(
        &mut self,
        t: Timestamp,
        scale: dv_display::ScaleFactor,
    ) -> Result<Screenshot, ServerError> {
        let shot = self.browse(t)?;
        Ok(dv_display::scale_screenshot(&shot, scale))
    }

    /// Searches the record (§4.4): parses the query, finds satisfied
    /// intervals, and reconstructs a screenshot portal per hit —
    /// offscreen, through the LRU screenshot cache.
    pub fn search(
        &mut self,
        query: &str,
        order: RankOrder,
    ) -> Result<Vec<SearchResult>, ServerError> {
        let query = parse_query(query)?;
        self.search_query(&query, order)
    }

    /// Searches with a programmatically built [`dv_index::Query`], for
    /// shapes the string syntax cannot express (e.g. different `app:`
    /// constraints on different terms of one conjunction).
    pub fn search_query(
        &mut self,
        query: &dv_index::Query,
        order: RankOrder,
    ) -> Result<Vec<SearchResult>, ServerError> {
        let hits = self.search_hits(query, order)?;
        let mut results = Vec::with_capacity(hits.len());
        for hit in hits {
            let screenshot = self.screenshot_at(hit.time)?;
            // Long matching periods come back as substreams with a
            // first-last screenshot pair.
            let last_screenshot = if hit.persistence >= self.substream_threshold {
                Some(self.screenshot_at(hit.until)?)
            } else {
                None
            };
            results.push(SearchResult {
                hit,
                screenshot,
                last_screenshot,
            });
        }
        Ok(results)
    }

    /// Searches the record returning raw ranked hits without
    /// reconstructing screenshot portals — the cheap path a
    /// multi-tenant host uses for cross-session queries. Routes
    /// through the sharded engine when enabled (fanning out across the
    /// open shard and the overlapping sealed segments), else the
    /// single in-memory index.
    pub fn search_hits(
        &mut self,
        query: &dv_index::Query,
        order: RankOrder,
    ) -> Result<Vec<SearchHit>, ServerError> {
        let now = self.now();
        self.index.lock().advance_horizon(now);
        match &self.tidx {
            Some(tidx) => tidx
                .search(query, order)
                .map_err(|e| ServerError::Query(dv_index::ParseError(e.to_string()))),
            None => {
                let index = self.index.lock();
                Ok(dv_index::search(&index, query, order))
            }
        }
    }

    /// Returns the sharded temporal index engine, when enabled.
    pub fn tidx(&self) -> Option<Arc<TidxEngine>> {
        self.tidx.clone()
    }

    /// Returns the visual-recall engine, when enabled.
    pub fn vidx(&self) -> Option<Arc<VidxEngine>> {
        self.vidx.clone()
    }

    /// Visual recall (§4.4's search portal, keyed by appearance): the
    /// `k` visual instances nearest to a query screenshot, across
    /// every sealed strip segment plus the open strip. Results match
    /// a linear scan exactly (the dv-vidx pigeonhole rule) while
    /// probing sub-linearly.
    pub fn visual_hits(&self, probe: &Screenshot, k: usize) -> Result<Vec<VisualHit>, ServerError> {
        let Some(vidx) = &self.vidx else {
            return Err(ServerError::Query(dv_index::ParseError(
                "visual index disabled".into(),
            )));
        };
        vidx.query(probe, k)
            .map_err(|e| ServerError::Query(dv_index::ParseError(e.to_string())))
    }

    /// Visual recall as of checkpoint `counter` — exactly the
    /// instances sealed at or before it, not the open strip. The
    /// WYSIWYS guarantee for a revived session's visual view.
    pub fn visual_at_checkpoint(
        &self,
        counter: u64,
        probe: &Screenshot,
        k: usize,
    ) -> Result<Vec<VisualHit>, ServerError> {
        let Some(vidx) = &self.vidx else {
            return Err(ServerError::Query(dv_index::ParseError(
                "visual index disabled".into(),
            )));
        };
        vidx.query_at(counter, probe, k)
            .map_err(|e| ServerError::Query(dv_index::ParseError(e.to_string())))
    }

    /// Visual recall keyed by a past moment instead of a supplied
    /// image: "find when the screen looked like it did at `t`".
    pub fn visual_hits_at_time(
        &mut self,
        t: Timestamp,
        k: usize,
    ) -> Result<Vec<VisualHit>, ServerError> {
        let probe = self.screenshot_at(t)?;
        self.visual_hits(&probe, k)
    }

    /// Pivots a visual hit into playback: the timeline keyframe
    /// anchoring the hit's interval plus the reconstructed full-
    /// resolution screen, so the UI can drop straight from a
    /// thumbnail onto the PVR slider.
    pub fn visual_pivot(
        &mut self,
        hit: &VisualHit,
    ) -> Result<(dv_record::TimelineEntry, Screenshot), ServerError> {
        let entry = {
            let store = self.record.read();
            store.timeline.entry_at_or_before(hit.last).copied()
        }
        .ok_or(ServerError::NoCheckpoint)?;
        let screenshot = self.screenshot_at(hit.last)?;
        Ok((entry, screenshot))
    }

    /// Pivots a visual hit into a revive: "Take me back" to when the
    /// screen last looked like this.
    pub fn visual_revive(&mut self, hit: &VisualHit) -> Result<u64, ServerError> {
        let last = hit.last;
        self.take_me_back(last)
    }

    /// Rebuilds the visual-strip layout from the manifests in the
    /// checkpoint store (archive restore).
    pub fn recover_visual(&mut self) -> Result<Option<u64>, ServerError> {
        let Some(vidx) = &self.vidx else {
            return Ok(None);
        };
        vidx.recover_latest()
            .map_err(|e| ServerError::Query(dv_index::ParseError(e.to_string())))
    }

    /// Searches the shard layout as of checkpoint `counter` — exactly
    /// the segments sealed at or before it, not the open shard. This
    /// is the WYSIWYS guarantee a revived session gets: its index view
    /// is snapshot-consistent with its file system and memory.
    pub fn search_at_checkpoint(
        &self,
        counter: u64,
        query: &str,
        order: RankOrder,
    ) -> Result<Vec<SearchHit>, ServerError> {
        let query = parse_query(query)?;
        let Some(tidx) = &self.tidx else {
            return Err(ServerError::Query(dv_index::ParseError(
                "sharded index disabled".into(),
            )));
        };
        tidx.search_at(counter, &query, order)
            .map_err(|e| ServerError::Query(dv_index::ParseError(e.to_string())))
    }

    /// Rebuilds the sharded-index layout from the manifests in the
    /// checkpoint store (archive restore). The capture daemon's
    /// instance counter is bumped past every archived segment so new
    /// instances can never collide with sealed ones.
    pub fn recover_index_shards(&mut self) -> Result<Option<u64>, ServerError> {
        let Some(tidx) = self.tidx.clone() else {
            return Ok(None);
        };
        let as_err =
            |e: dv_tidx::TidxError| ServerError::Query(dv_index::ParseError(e.to_string()));
        let recovered = tidx.recover_latest().map_err(as_err)?;
        if recovered.is_some() {
            let max = tidx.max_instance_id().map_err(as_err)?;
            self.instance_counter
                .fetch_max(max + 1, std::sync::atomic::Ordering::Relaxed);
        }
        Ok(recovered)
    }

    fn screenshot_at(&mut self, t: Timestamp) -> Result<Screenshot, ServerError> {
        // Clamp to the recorded span: an interval may begin before the
        // first display command (text captured before any paint) or end
        // at the open horizon, past the last one.
        let t = {
            let store = self.record.read();
            let t = match store.start {
                Some(start) => t.max(start),
                None => t,
            };
            t.min(store.end)
        };
        if self.search_cache.get(&t.as_nanos()).is_none() {
            self.playback.seek(t)?;
            let shot = self.playback.screenshot();
            self.search_cache.put(t.as_nanos(), shot);
        }
        Ok(self
            .search_cache
            .get(&t.as_nanos())
            .expect("just inserted")
            .clone())
    }

    /// Revives the desktop as it was at time `t` — the "Take me back"
    /// button (§2, §5.2). Returns the new session id.
    pub fn take_me_back(&mut self, t: Timestamp) -> Result<u64, ServerError> {
        // Deferred commits may still be in flight; the revivable set is
        // only complete once the pipeline drains.
        self.flush_checkpoints()?;
        let counter = self
            .engine
            .counter_at_or_before(t)
            .ok_or(ServerError::NoCheckpoint)?;
        self.revive_counter(counter)
    }

    /// Revives directly from a checkpoint counter of the main session.
    pub fn revive_counter(&mut self, counter: u64) -> Result<u64, ServerError> {
        self.flush_checkpoints()?;
        let chain = self
            .engine
            .chain_for(counter)
            .ok_or(ServerError::NoCheckpoint)?;
        let meta = self
            .engine
            .image_meta(counter)
            .ok_or(ServerError::NoCheckpoint)?;
        let revived_from = meta.time;
        let blob_prefix = self.engine.blob_prefix().to_string();
        // Branchable view: fresh writable layer over the read-only
        // snapshot tied to this counter.
        let snap = self.session_fs.with(|fs| fs.snapshot(counter))?;
        let lower: Box<dyn ReadOnlyFs> = Box::new(snap);
        self.spawn_session(&blob_prefix, &chain, counter, revived_from, lower)
    }

    /// Checkpoints a *revived* session with its own engine; the image
    /// chain and the branch file system snapshots share the server's
    /// store under the session's blob prefix (§5.2).
    pub fn checkpoint_session(&mut self, id: u64) -> Result<CheckpointReport, ServerError> {
        let session = self
            .revived
            .get_mut(&id)
            .ok_or(ServerError::UnknownSession(id))?;
        let report = session.engine.checkpoint(&mut session.vee, &self.store)?;
        Ok(report)
    }

    /// Revives a new session from a checkpoint of a *revived* session —
    /// a branch of a branch. The new session's read-only view stacks the
    /// parent's view under a frozen snapshot of the parent's writable
    /// layer.
    pub fn revive_from_session(
        &mut self,
        parent_id: u64,
        counter: u64,
    ) -> Result<u64, ServerError> {
        // The parent's own engine may also defer commits.
        self.revived
            .get_mut(&parent_id)
            .ok_or(ServerError::UnknownSession(parent_id))?
            .engine
            .flush()?;
        let (blob_prefix, chain, revived_from, lower) = {
            let parent = self
                .revived
                .get(&parent_id)
                .ok_or(ServerError::UnknownSession(parent_id))?;
            let chain = parent
                .engine
                .chain_for(counter)
                .ok_or(ServerError::NoCheckpoint)?;
            let meta = parent
                .engine
                .image_meta(counter)
                .ok_or(ServerError::NoCheckpoint)?;
            let upper_snap = parent.fs.with(|u| u.upper().snapshot(counter))?;
            let lower: Box<dyn ReadOnlyFs> =
                Box::new(UnionFs::new(parent.lower.clone_ro(), upper_snap));
            (
                parent.engine.blob_prefix().to_string(),
                chain,
                meta.time,
                lower,
            )
        };
        self.spawn_session(&blob_prefix, &chain, counter, revived_from, lower)
    }

    fn spawn_session(
        &mut self,
        blob_prefix: &str,
        chain: &[u64],
        counter: u64,
        revived_from: Timestamp,
        lower: Box<dyn ReadOnlyFs>,
    ) -> Result<u64, ServerError> {
        let branch = SharedFs::new(UnionFs::new(lower.clone_ro(), Lsfs::new()));
        let id = self.next_session_id;
        self.next_session_id += 1;
        let (vee, report) = revive(
            &mut self.store.lock(),
            blob_prefix,
            chain,
            self.compress,
            id,
            self.clock.shared(),
            Box::new(branch.clone()),
            self.host_pids.clone(),
            &self.revive_network,
        )?;
        // The new viewer window opens showing the display as recorded at
        // the checkpoint.
        let mut viewer = Viewer::new(self.width, self.height);
        if let Ok(shot) = self.screenshot_at(revived_from) {
            viewer.present(&shot);
        }
        // The session's own engine writes under a distinct blob prefix,
        // nested under the server's own prefix when a host namespaced
        // it (so revived sessions of different tenants sharing one
        // store cannot collide either).
        let revived_prefix = if self.engine.blob_prefix() == "ckpt" {
            format!("s{id}")
        } else {
            format!("{}.s{id}", self.engine.blob_prefix())
        };
        let mut engine = Checkpointer::with_sim_clock(self.engine_config, self.clock.clone())
            .with_blob_prefix(&revived_prefix);
        engine.set_fault_plane(self.fault_plane.clone());
        self.revived.insert(
            id,
            RevivedSession {
                id,
                counter,
                revived_from,
                vee,
                fs: branch,
                lower,
                viewer,
                report,
                engine,
            },
        );
        Ok(id)
    }

    /// Returns a revived session.
    pub fn session(&self, id: u64) -> Result<&RevivedSession, ServerError> {
        self.revived.get(&id).ok_or(ServerError::UnknownSession(id))
    }

    /// Returns a revived session mutably.
    pub fn session_mut(&mut self, id: u64) -> Result<&mut RevivedSession, ServerError> {
        self.revived
            .get_mut(&id)
            .ok_or(ServerError::UnknownSession(id))
    }

    /// Returns all revived session ids.
    pub fn sessions(&self) -> Vec<u64> {
        self.revived.keys().copied().collect()
    }

    /// Closes a revived session.
    pub fn close_session(&mut self, id: u64) -> Result<(), ServerError> {
        self.revived
            .remove(&id)
            .map(|_| ())
            .ok_or(ServerError::UnknownSession(id))
    }

    /// Returns the deferred write-back pipeline accounting for the main
    /// session's engine, derived from the observability registry. Only
    /// `inflight` is a live queue-depth query; everything else is the
    /// `checkpoint.*` counters the engine bumps as it works.
    pub fn pipeline_stats(&self) -> PipelineBreakdown {
        PipelineBreakdown {
            queued: self.obs.counter(names::CHECKPOINT_QUEUED),
            committed: self.obs.counter(names::CHECKPOINT_COMMITTED),
            inflight: self.engine.inflight() as u64,
            inline_fallbacks: self.obs.counter(names::CHECKPOINT_INLINE_FALLBACKS),
            sync_downtime: Duration::from_nanos(
                self.obs.counter(names::CHECKPOINT_SYNC_DOWNTIME_NANOS),
            ),
            async_commit: Duration::from_nanos(
                self.obs.counter(names::CHECKPOINT_ASYNC_COMMIT_NANOS),
            ),
        }
    }

    /// Returns the storage breakdown across all four record streams
    /// (Figure 4), derived entirely from the observability registry:
    /// every stream bumps its byte counters at the same points it
    /// mutates its internal accounting, so the registry view is exact.
    pub fn storage(&self) -> StorageBreakdown {
        let c = |name| self.obs.counter(name);
        StorageBreakdown {
            display_bytes: c(names::DISPLAY_COMMAND_BYTES)
                + c(names::DISPLAY_SCREENSHOT_BYTES)
                + c(names::DISPLAY_TIMELINE_BYTES),
            index_bytes: c(names::INDEX_BYTES),
            checkpoint_raw_bytes: c(names::CHECKPOINT_RAW_BYTES),
            checkpoint_stored_bytes: c(names::CHECKPOINT_STORED_BYTES),
            fs_bytes: c(names::LSFS_DATA_BYTES) + c(names::LSFS_JOURNAL_BYTES),
            degraded_events: c(names::SERVER_DEGRADED_EVENTS)
                + c(names::DISPLAY_DROPPED_COMMANDS)
                + c(names::DISPLAY_DROPPED_KEYFRAMES),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dv_access::Role;
    use dv_display::Rect;
    use dv_vee::Prot;

    fn server() -> DejaView {
        DejaView::new(Config {
            width: 64,
            height: 64,
            ..Config::default()
        })
    }

    /// Paints, types and checkpoints a tiny session.
    fn populated_server() -> DejaView {
        let mut dv = server();
        let clock = dv.clock();
        let init = dv.init_vpid();
        let editor = dv.vee_mut().spawn(Some(init), "editor").unwrap();
        let addr = dv.vee_mut().mmap(editor, 8192, Prot::ReadWrite).unwrap();
        dv.vee_mut().mem_write(editor, addr, b"buffer v1").unwrap();
        dv.vee_mut().fs.mkdir_all("/home").unwrap();
        dv.vee_mut()
            .fs
            .write_all("/home/doc.txt", b"draft one")
            .unwrap();

        let app = dv.desktop_mut().register_app("editor");
        let root = dv.desktop_mut().root(app).unwrap();
        let win = dv
            .desktop_mut()
            .add_node(app, root, Role::Window, "doc.txt - editor");
        dv.desktop_mut()
            .add_node(app, win, Role::Paragraph, "the quick brown fox");
        dv.desktop_mut().focus(app);

        dv.driver_mut().fill_rect(Rect::new(0, 0, 64, 64), 0x202020);
        dv.driver_mut()
            .draw_text(4, 4, "the quick brown fox", 0xFFFFFF, 0);
        clock.advance(Duration::from_secs(1));
        dv.policy_tick().unwrap();
        dv
    }

    #[test]
    fn policy_tick_checkpoints_on_display_activity() {
        let mut dv = server();
        dv.driver_mut().fill_rect(Rect::new(0, 0, 64, 64), 1);
        dv.clock().advance(Duration::from_secs(1));
        let tick = dv.policy_tick().unwrap();
        assert_eq!(tick.decision, Decision::Checkpoint);
        assert!(tick.report.is_some());
        // Idle tick: skip.
        dv.clock().advance(Duration::from_secs(1));
        let tick = dv.policy_tick().unwrap();
        assert!(tick.report.is_none());
    }

    #[test]
    fn search_returns_screenshot_portals() {
        let mut dv = populated_server();
        let results = dv.search("quick fox", RankOrder::Chronological).unwrap();
        assert_eq!(results.len(), 1);
        let shot = &results[0].screenshot;
        assert_eq!((shot.width, shot.height), (64, 64));
        // The screenshot shows the painted background, not a blank
        // screen.
        assert!(shot.pixels.contains(&0x202020));
    }

    #[test]
    fn contextual_search_by_app() {
        let mut dv = populated_server();
        assert_eq!(
            dv.search("app:editor fox", RankOrder::Chronological)
                .unwrap()
                .len(),
            1
        );
        assert!(dv
            .search("app:firefox fox", RankOrder::Chronological)
            .unwrap()
            .is_empty());
    }

    #[test]
    fn browse_reconstructs_history() {
        let mut dv = populated_server();
        let clock = dv.clock();
        // Overwrite the screen after the first checkpoint.
        dv.driver_mut().fill_rect(Rect::new(0, 0, 64, 64), 0xFF0000);
        clock.advance(Duration::from_secs(1));
        dv.policy_tick().unwrap();
        // Browse back to 0.5s: the original background (the red fill
        // happened at t=1s).
        let shot = dv.browse(Timestamp::from_millis(500)).unwrap();
        assert!(shot.pixels.contains(&0x202020));
        assert!(!shot.pixels.contains(&0xFF0000));
    }

    #[test]
    fn browse_scales_for_small_devices() {
        let mut dv = populated_server();
        let full = dv.browse(Timestamp::from_millis(500)).unwrap();
        let pda = dv
            .browse_at_scale(
                Timestamp::from_millis(500),
                dv_display::ScaleFactor::new(1, 4),
            )
            .unwrap();
        assert_eq!((full.width, full.height), (64, 64));
        assert_eq!((pda.width, pda.height), (16, 16));
        // Content survives downsampling (the dark background remains).
        assert!(pda.pixels.contains(&0x202020));
    }

    #[test]
    fn take_me_back_revives_state() {
        let mut dv = populated_server();
        let clock = dv.clock();
        let editor = Vpid(2);
        // Diverge after the checkpoint.
        dv.vee_mut()
            .fs
            .write_all("/home/doc.txt", b"draft two, changed")
            .unwrap();
        clock.advance(Duration::from_secs(5));

        let id = dv.take_me_back(Timestamp::from_secs(2)).unwrap();
        let session = dv.session(id).unwrap();
        assert_eq!(session.counter, 1);
        // Revived file system sees the snapshot.
        assert_eq!(
            session.vee.fs.read_all("/home/doc.txt").unwrap(),
            b"draft one"
        );
        // Revived memory matches checkpoint time.
        let revived_mem = session.vee.mem_read(editor, 0x1000_0000, 9).unwrap();
        assert_eq!(revived_mem, b"buffer v1");
        // The main session is untouched.
        assert_eq!(
            dv.vee().fs.read_all("/home/doc.txt").unwrap(),
            b"draft two, changed"
        );
    }

    #[test]
    fn multiple_concurrent_revives_diverge() {
        let mut dv = populated_server();
        let a = dv.take_me_back(Timestamp::from_secs(1)).unwrap();
        let b = dv.take_me_back(Timestamp::from_secs(1)).unwrap();
        assert_ne!(a, b);
        dv.session_mut(a)
            .unwrap()
            .vee
            .fs
            .write_all("/home/doc.txt", b"branch A")
            .unwrap();
        dv.session_mut(b)
            .unwrap()
            .vee
            .fs
            .write_all("/home/doc.txt", b"branch B wins")
            .unwrap();
        assert_eq!(
            dv.session(a)
                .unwrap()
                .vee
                .fs
                .read_all("/home/doc.txt")
                .unwrap(),
            b"branch A"
        );
        assert_eq!(
            dv.session(b)
                .unwrap()
                .vee
                .fs
                .read_all("/home/doc.txt")
                .unwrap(),
            b"branch B wins"
        );
        assert_eq!(dv.sessions(), vec![a, b]);
        dv.close_session(a).unwrap();
        assert_eq!(dv.sessions(), vec![b]);
    }

    #[test]
    fn revived_sessions_have_network_disabled_by_default() {
        let mut dv = populated_server();
        let id = dv.take_me_back(Timestamp::from_secs(1)).unwrap();
        let session = dv.session_mut(id).unwrap();
        assert!(!session.vee.network_enabled());
        session.set_network_enabled(true);
        assert!(session.vee.network_enabled());
    }

    #[test]
    fn take_me_back_before_any_checkpoint_fails() {
        let mut dv = server();
        assert_eq!(
            dv.take_me_back(Timestamp::from_secs(1)),
            Err(ServerError::NoCheckpoint)
        );
    }

    #[test]
    fn storage_breakdown_covers_all_streams() {
        let mut dv = populated_server();
        dv.vee_mut().fs.sync().unwrap();
        let storage = dv.storage();
        assert!(storage.display_bytes > 0, "display stream recorded");
        assert!(storage.index_bytes > 0, "text indexed");
        assert!(storage.checkpoint_raw_bytes > 0, "checkpoint stored");
        assert!(storage.fs_bytes > 0, "file data logged");
    }

    #[test]
    fn revived_sessions_checkpoint_and_revive_again() {
        let mut dv = populated_server();
        let clock = dv.clock();
        let gen1 = dv.take_me_back(Timestamp::from_secs(1)).unwrap();

        // Generation 1 diverges and is checkpointed with its own engine.
        dv.session_mut(gen1)
            .unwrap()
            .vee
            .fs
            .write_all("/home/doc.txt", b"gen1 edits")
            .unwrap();
        clock.advance(Duration::from_secs(1));
        let report = dv.checkpoint_session(gen1).unwrap();
        assert_eq!(report.counter, 1);

        // Generation 1 keeps working after its checkpoint.
        dv.session_mut(gen1)
            .unwrap()
            .vee
            .fs
            .write_all("/home/doc.txt", b"gen1 post-checkpoint")
            .unwrap();

        // Generation 2 revives from generation 1's checkpoint: it sees
        // gen1's checkpointed state, not its later edits.
        let gen2 = dv.revive_from_session(gen1, report.counter).unwrap();
        assert_eq!(
            dv.session(gen2)
                .unwrap()
                .vee
                .fs
                .read_all("/home/doc.txt")
                .unwrap(),
            b"gen1 edits"
        );
        // All three lineages stay independent.
        dv.session_mut(gen2)
            .unwrap()
            .vee
            .fs
            .write_all("/home/doc.txt", b"gen2 divergence")
            .unwrap();
        assert_eq!(
            dv.session(gen1)
                .unwrap()
                .vee
                .fs
                .read_all("/home/doc.txt")
                .unwrap(),
            b"gen1 post-checkpoint"
        );
        assert_eq!(dv.vee().fs.read_all("/home/doc.txt").unwrap(), b"draft one");
        // Processes and memory carried through both generations.
        let editor = Vpid(2);
        assert_eq!(
            dv.session(gen2)
                .unwrap()
                .vee
                .mem_read(editor, 0x1000_0000, 9)
                .unwrap(),
            b"buffer v1"
        );
    }

    #[test]
    fn third_generation_revive_stacks_layers() {
        let mut dv = populated_server();
        let clock = dv.clock();
        let gen1 = dv.take_me_back(Timestamp::from_secs(1)).unwrap();
        dv.session_mut(gen1)
            .unwrap()
            .vee
            .fs
            .write_all("/layer1", b"from gen1")
            .unwrap();
        clock.advance(Duration::from_secs(1));
        let c1 = dv.checkpoint_session(gen1).unwrap().counter;
        let gen2 = dv.revive_from_session(gen1, c1).unwrap();
        dv.session_mut(gen2)
            .unwrap()
            .vee
            .fs
            .write_all("/layer2", b"from gen2")
            .unwrap();
        clock.advance(Duration::from_secs(1));
        let c2 = dv.checkpoint_session(gen2).unwrap().counter;
        let gen3 = dv.revive_from_session(gen2, c2).unwrap();
        let fs = &dv.session(gen3).unwrap().vee.fs;
        assert_eq!(fs.read_all("/home/doc.txt").unwrap(), b"draft one");
        assert_eq!(fs.read_all("/layer1").unwrap(), b"from gen1");
        assert_eq!(fs.read_all("/layer2").unwrap(), b"from gen2");
    }

    #[test]
    fn annotations_are_searchable() {
        let mut dv = populated_server();
        let app = dv_access::AppId(1);
        let node = dv_access::NodeId(3);
        dv.desktop_mut()
            .annotate_selection(app, node, "important meeting");
        dv.clock().advance(Duration::from_secs(1));
        let results = dv
            .search("annotation:meeting", RankOrder::Chronological)
            .unwrap();
        assert_eq!(results.len(), 1);
    }

    #[test]
    fn clipboard_crosses_sessions() {
        let mut dv = populated_server();
        let sid = dv.take_me_back(Timestamp::from_secs(1)).unwrap();
        // Copy from the revived session's file, paste in the live one.
        let old_text = dv
            .session(sid)
            .unwrap()
            .vee
            .fs
            .read_all("/home/doc.txt")
            .unwrap();
        let old_text = String::from_utf8(old_text).unwrap();
        dv.set_clipboard(&old_text);
        let pasted = dv.clipboard().to_string();
        dv.vee_mut()
            .fs
            .write_all("/home/pasted.txt", pasted.as_bytes())
            .unwrap();
        assert_eq!(
            dv.vee().fs.read_all("/home/pasted.txt").unwrap(),
            b"draft one"
        );
    }

    #[test]
    fn storage_compaction_and_snapshot_retirement() {
        let mut dv = populated_server();
        let clock = dv.clock();
        // Churn the same file across several checkpoints.
        for i in 0..5u8 {
            dv.vee_mut()
                .fs
                .write_all("/home/doc.txt", &vec![i; 32 << 10])
                .unwrap();
            dv.driver_mut().fill_rect(Rect::new(0, 0, 64, 64), i as u32);
            clock.advance(Duration::from_secs(1));
            dv.policy_tick().unwrap();
        }
        // Compaction is blocked while a revived session exists.
        let sid = dv.take_me_back(Timestamp::from_secs(2)).unwrap();
        assert!(matches!(
            dv.compact_storage(),
            Err(ServerError::Fs(dv_lsfs::FsError::Busy))
        ));
        dv.close_session(sid).unwrap();
        // Retire early snapshots, compact, and verify late revive works.
        let dropped = dv.retire_snapshots_before(4);
        assert!(dropped >= 2);
        let reclaimed = dv.compact_storage().unwrap();
        assert!(reclaimed > 0);
        let sid = dv.revive_counter(5).unwrap();
        assert!(dv.session(sid).is_ok());
        // Reviving a retired checkpoint fails on the fs snapshot.
        assert!(dv.revive_counter(1).is_err());
    }

    #[test]
    fn checkpoint_failure_is_retried_and_counted() {
        use dv_fault::{sites, FaultPlan, IoFault};
        // First writeback attempt fails; the backoff retry succeeds.
        let plane = FaultPlan::new(7)
            .fail_nth(sites::CHECKPOINT_WRITEBACK, 1, IoFault::Enospc)
            .build();
        let mut dv = DejaView::new(Config {
            width: 64,
            height: 64,
            fault_plane: plane,
            ..Config::default()
        });
        dv.driver_mut().fill_rect(Rect::new(0, 0, 64, 64), 1);
        dv.clock().advance(Duration::from_secs(1));
        let tick = dv.policy_tick().unwrap();
        assert!(tick.report.is_some(), "retry recovered the checkpoint");
        assert_eq!(dv.degraded_events(), 1);
        assert_eq!(dv.storage().degraded_events, 1);
        assert_eq!(dv.engine().stats().write_failures, 1);
    }

    #[test]
    fn persistent_checkpoint_failure_degrades_without_stopping() {
        use dv_fault::{sites, FaultPlan, IoFault};
        let plane = FaultPlan::new(9)
            .always(sites::CHECKPOINT_WRITEBACK, IoFault::Enospc)
            .build();
        let mut dv = DejaView::new(Config {
            width: 64,
            height: 64,
            fault_plane: plane,
            ..Config::default()
        });
        dv.driver_mut().fill_rect(Rect::new(0, 0, 64, 64), 2);
        dv.clock().advance(Duration::from_secs(1));
        let tick = dv.policy_tick().unwrap();
        assert_eq!(tick.decision, Decision::Checkpoint);
        assert!(tick.report.is_none(), "exhausted retries degrade the tick");
        // Initial attempt plus the full retry budget, all counted.
        assert_eq!(
            dv.degraded_events(),
            1 + Config::default().io_retry_limit as u64
        );
        // Recording and browsing continue past the degraded moment.
        assert!(dv.browse(Timestamp::from_millis(500)).is_ok());
        // An explicit checkpoint propagates the error instead.
        assert!(dv.checkpoint_now().is_err());
    }

    #[test]
    fn checkpoints_seal_index_shards_and_search_spans_them() {
        let mut dv = DejaView::new(Config {
            width: 64,
            height: 64,
            index_shard_window: Duration::from_secs(2),
            ..Config::default()
        });
        let clock = dv.clock();
        let app = dv.desktop_mut().register_app("editor");
        let root = dv.desktop_mut().root(app).unwrap();
        let win = dv.desktop_mut().add_node(app, root, Role::Window, "w");
        for i in 0..6u32 {
            dv.desktop_mut()
                .add_node(app, win, Role::Paragraph, &format!("batch{i} marker"));
            dv.driver_mut().fill_rect(Rect::new(0, 0, 64, 64), i);
            clock.advance(Duration::from_secs(1));
            let tick = dv.policy_tick().unwrap();
            assert!(tick.report.is_some(), "round {i} checkpointed");
        }
        let tidx = dv.tidx().expect("sharding on by default");
        assert!(
            tidx.stats().live_segments >= 2,
            "2s window over 6s of checkpoints sealed multiple shards, got {:?}",
            tidx.stats()
        );
        // Live search spans every shard plus the open one.
        for i in 0..6u32 {
            let hits = dv
                .search(&format!("batch{i}"), RankOrder::Chronological)
                .unwrap();
            assert_eq!(hits.len(), 1, "batch{i} findable across shards");
        }
        // Snapshot consistency: at the first sealing checkpoint, later
        // batches do not exist yet.
        let first_sealed = tidx.segments()[0].sealed_at;
        assert!(dv
            .search_at_checkpoint(first_sealed, "batch5", RankOrder::Chronological)
            .unwrap()
            .is_empty());
        assert_eq!(
            dv.search_at_checkpoint(first_sealed, "batch0", RankOrder::Chronological)
                .unwrap()
                .len(),
            1
        );
        // Before anything sealed: no hits at all.
        assert!(dv
            .search_at_checkpoint(first_sealed - 1, "batch0", RankOrder::Chronological)
            .unwrap()
            .is_empty());
    }

    #[test]
    fn key_combo_annotates_selection() {
        let mut dv = populated_server();
        let app = dv_access::AppId(1);
        let node = dv_access::NodeId(3);
        // The user selects text with the mouse, then presses Ctrl+Alt+A.
        dv.desktop_mut().set_selection(app, node, "brown fox");
        dv.input(dv_display::InputEvent::Key {
            ch: 'a',
            ctrl: true,
            alt: true,
        });
        dv.clock().advance(Duration::from_secs(1));
        let results = dv
            .search("annotation:brown", RankOrder::Chronological)
            .unwrap();
        assert_eq!(results.len(), 1);
        // A plain keystroke must not annotate.
        dv.desktop_mut().set_selection(app, node, "quick");
        dv.input(dv_display::InputEvent::Key {
            ch: 'a',
            ctrl: false,
            alt: false,
        });
        dv.clock().advance(Duration::from_secs(1));
        assert!(dv
            .search("annotation:quick", RankOrder::Chronological)
            .unwrap()
            .is_empty());
    }

    /// Paints a visually distinct scene (seeded block pattern over a
    /// dark background — uniform fills all share the zero gradient
    /// fingerprint, so scenes need structure).
    fn paint_scene(dv: &mut DejaView, seed: u32) {
        dv.driver_mut().fill_rect(Rect::new(0, 0, 64, 64), 0x101010);
        for i in 0..8u32 {
            let x = seed.wrapping_mul(31).wrapping_add(i * 13) % 48;
            let y = seed.wrapping_mul(17).wrapping_add(i * 7) % 48;
            let color = 0xFFu32 << (8 * ((seed + i) % 3));
            dv.driver_mut().fill_rect(Rect::new(x, y, 12, 12), color);
        }
    }

    #[test]
    fn visual_recall_finds_past_scenes_and_pivots() {
        let mut dv = server();
        let clock = dv.clock();
        // Three distinct scenes, one keyframe + checkpoint each.
        for seed in 0..3u32 {
            clock.advance(Duration::from_secs(1));
            paint_scene(&mut dv, seed);
            dv.force_keyframe();
            dv.policy_tick().unwrap();
        }
        // At least one instance per scene (the recorder's own keyframe
        // cadence may contribute extras; near-duplicates coalesce).
        assert!(dv.vidx().unwrap().stats().open_instances >= 3);

        // "Find when the screen looked like it did at t=1s."
        let hits = dv.visual_hits_at_time(Timestamp::from_secs(1), 1).unwrap();
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].distance, 0, "exact scene re-probe");
        assert_eq!(hits[0].first, Timestamp::from_secs(1));

        // The hit pivots onto the PVR timeline: the anchoring keyframe
        // and the reconstructed full screen at the hit's moment.
        let (entry, shot) = dv.visual_pivot(&hits[0].clone()).unwrap();
        assert!(entry.time <= hits[0].last);
        let expected = dv.browse(hits[0].last).unwrap();
        assert_eq!(shot.content_hash(), expected.content_hash());

        // ...and into a revive at that moment.
        let sid = dv.visual_revive(&hits[0].clone()).unwrap();
        assert!(dv.session(sid).is_ok());
    }

    #[test]
    fn visual_index_seals_and_survives_archives() {
        // A strip window of one second forces a seal at nearly every
        // checkpoint, exercising the sealed path end to end.
        let mut dv = DejaView::new(Config {
            width: 64,
            height: 64,
            index_shard_window: Duration::from_secs(1),
            ..Config::default()
        });
        let clock = dv.clock();
        for seed in 0..6u32 {
            clock.advance(Duration::from_secs(1));
            paint_scene(&mut dv, seed);
            dv.force_keyframe();
            dv.policy_tick().unwrap();
        }
        let vidx = dv.vidx().unwrap();
        assert!(vidx.stats().live_segments >= 2, "{:?}", vidx.stats());

        // Every scene is findable across sealed segments + open strip,
        // and matches the linear-scan oracle exactly.
        for t in 1..=6u64 {
            let probe = dv.browse(Timestamp::from_secs(t)).unwrap();
            let hits = dv.visual_hits(&probe, 2).unwrap();
            assert_eq!(hits[0].distance, 0, "scene at t={t}s");
            assert_eq!(hits[0].first, Timestamp::from_secs(t));
            assert_eq!(hits, vidx.query_linear(&probe, 2).unwrap());
        }

        // Checkpoint-sealed visibility: a probe for a late scene is
        // invisible at an early checkpoint.
        let probe5 = dv.browse(Timestamp::from_secs(5)).unwrap();
        let early = dv.visual_at_checkpoint(2, &probe5, 1).unwrap();
        assert!(early.is_empty() || early[0].distance > 0);
        let late = dv.visual_at_checkpoint(6, &probe5, 1).unwrap();
        assert_eq!(late[0].distance, 0);

        // The sealed strip travels inside the archive, and the
        // restored server answers checkpoint-scoped queries
        // identically.
        let at6: Vec<_> = (1..=6u64)
            .map(|t| {
                let probe = dv.browse(Timestamp::from_secs(t)).unwrap();
                dv.visual_at_checkpoint(6, &probe, 2).unwrap()
            })
            .collect();
        let archive = dv.save_archive().unwrap();
        let mut restored = DejaView::load_archive(
            Config {
                index_shard_window: Duration::from_secs(1),
                ..Config::default()
            },
            &archive,
        )
        .unwrap();
        for (i, expected) in at6.iter().enumerate() {
            let t = i as u64 + 1;
            let probe = restored.browse(Timestamp::from_secs(t)).unwrap();
            assert_eq!(
                &restored.visual_at_checkpoint(6, &probe, 2).unwrap(),
                expected,
                "restored visual view at t={t}s"
            );
        }
    }

    #[test]
    fn visual_recall_respects_the_disable_switch() {
        let mut dv = DejaView::new(Config {
            width: 64,
            height: 64,
            enable_visual_index: false,
            ..Config::default()
        });
        paint_scene(&mut dv, 1);
        dv.force_keyframe();
        assert!(dv.vidx().is_none());
        let probe = dv.browse(Timestamp::ZERO).unwrap();
        assert!(dv.visual_hits(&probe, 1).is_err());
        assert!(dv.visual_at_checkpoint(1, &probe, 1).is_err());
    }
}
