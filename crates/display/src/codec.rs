//! Wire format for display commands.
//!
//! The same encoding serves both purposes the paper gives the protocol:
//! shipping commands to (possibly remote) viewers, and appending them to
//! the on-disk display record. The format is a tagged binary layout:
//!
//! ```text
//! [tag: u8][rect: 4 x u32 LE][payload_len: u32 LE][payload...]
//! ```

use std::fmt;
use std::sync::Arc;

use bytes::{Buf, BufMut};

use crate::command::{DisplayCommand, Pattern, YuvFrame};
use crate::rect::Rect;

/// Encoded size of the fixed per-command header.
pub const HEADER_LEN: usize = 1 + 16 + 4;

const TAG_RAW: u8 = 1;
const TAG_COPY: u8 = 2;
const TAG_SFILL: u8 = 3;
const TAG_PFILL: u8 = 4;
const TAG_GLYPH: u8 = 5;
const TAG_VIDEO: u8 = 6;

/// Errors produced while decoding a command stream.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum CodecError {
    /// The buffer ended before a complete command was read.
    UnexpectedEof,
    /// An unknown command tag was encountered.
    BadTag(u8),
    /// A payload was internally inconsistent (for example, a raw payload
    /// whose length does not match its rectangle).
    BadPayload(&'static str),
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::UnexpectedEof => write!(f, "unexpected end of command stream"),
            CodecError::BadTag(t) => write!(f, "unknown command tag {t}"),
            CodecError::BadPayload(why) => write!(f, "malformed command payload: {why}"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Appends the encoded form of `cmd` to `out`.
pub fn encode_command(cmd: &DisplayCommand, out: &mut Vec<u8>) {
    let tag = match cmd {
        DisplayCommand::Raw { .. } => TAG_RAW,
        DisplayCommand::CopyArea { .. } => TAG_COPY,
        DisplayCommand::SolidFill { .. } => TAG_SFILL,
        DisplayCommand::PatternFill { .. } => TAG_PFILL,
        DisplayCommand::Glyph { .. } => TAG_GLYPH,
        DisplayCommand::Video { .. } => TAG_VIDEO,
    };
    out.put_u8(tag);
    let rect = cmd.rect();
    out.put_u32_le(rect.x);
    out.put_u32_le(rect.y);
    out.put_u32_le(rect.w);
    out.put_u32_le(rect.h);
    out.put_u32_le(cmd.payload_size() as u32);
    match cmd {
        DisplayCommand::Raw { pixels, .. } => {
            for px in pixels.iter() {
                out.put_u32_le(*px);
            }
        }
        DisplayCommand::CopyArea { src_x, src_y, .. } => {
            out.put_u32_le(*src_x);
            out.put_u32_le(*src_y);
        }
        DisplayCommand::SolidFill { color, .. } => out.put_u32_le(*color),
        DisplayCommand::PatternFill { pattern, .. } => {
            out.put_u64_le(pattern.bits);
            out.put_u32_le(pattern.fg);
            out.put_u32_le(pattern.bg);
        }
        DisplayCommand::Glyph { bits, fg, bg, .. } => {
            out.put_u32_le(*fg);
            out.put_u32_le(*bg);
            out.extend_from_slice(bits);
        }
        DisplayCommand::Video { frame, .. } => {
            out.put_u32_le(frame.width);
            out.put_u32_le(frame.height);
            out.extend_from_slice(&frame.y);
            out.extend_from_slice(&frame.u);
            out.extend_from_slice(&frame.v);
        }
    }
}

/// Encodes a command into a fresh buffer.
pub fn encode_command_vec(cmd: &DisplayCommand) -> Vec<u8> {
    let mut out = Vec::with_capacity(cmd.wire_size());
    encode_command(cmd, &mut out);
    out
}

/// Decodes one command from the front of `buf`, advancing it.
pub fn decode_command(buf: &mut &[u8]) -> Result<DisplayCommand, CodecError> {
    if buf.len() < HEADER_LEN {
        return Err(CodecError::UnexpectedEof);
    }
    let tag = buf.get_u8();
    let rect = Rect::new(
        buf.get_u32_le(),
        buf.get_u32_le(),
        buf.get_u32_le(),
        buf.get_u32_le(),
    );
    let payload_len = buf.get_u32_le() as usize;
    if buf.len() < payload_len {
        return Err(CodecError::UnexpectedEof);
    }
    let (mut payload, rest) = buf.split_at(payload_len);
    *buf = rest;
    match tag {
        TAG_RAW => {
            if payload.len() != rect.area() as usize * 4 {
                return Err(CodecError::BadPayload("raw payload size mismatch"));
            }
            let mut pixels = Vec::with_capacity(rect.area() as usize);
            while payload.remaining() >= 4 {
                pixels.push(payload.get_u32_le());
            }
            Ok(DisplayCommand::Raw {
                rect,
                pixels: Arc::new(pixels),
            })
        }
        TAG_COPY => {
            if payload.len() != 8 {
                return Err(CodecError::BadPayload("copy payload size mismatch"));
            }
            Ok(DisplayCommand::CopyArea {
                src_x: payload.get_u32_le(),
                src_y: payload.get_u32_le(),
                rect,
            })
        }
        TAG_SFILL => {
            if payload.len() != 4 {
                return Err(CodecError::BadPayload("sfill payload size mismatch"));
            }
            Ok(DisplayCommand::SolidFill {
                rect,
                color: payload.get_u32_le(),
            })
        }
        TAG_PFILL => {
            if payload.len() != 16 {
                return Err(CodecError::BadPayload("pfill payload size mismatch"));
            }
            Ok(DisplayCommand::PatternFill {
                rect,
                pattern: Pattern {
                    bits: payload.get_u64_le(),
                    fg: payload.get_u32_le(),
                    bg: payload.get_u32_le(),
                },
            })
        }
        TAG_GLYPH => {
            if payload.len() < 8 {
                return Err(CodecError::BadPayload("glyph payload too short"));
            }
            let fg = payload.get_u32_le();
            let bg = payload.get_u32_le();
            let expected = (rect.w as usize).div_ceil(8) * rect.h as usize;
            if payload.len() != expected {
                return Err(CodecError::BadPayload("glyph bitmap size mismatch"));
            }
            Ok(DisplayCommand::Glyph {
                rect,
                bits: Arc::new(payload.to_vec()),
                fg,
                bg,
            })
        }
        TAG_VIDEO => {
            if payload.len() < 8 {
                return Err(CodecError::BadPayload("video payload too short"));
            }
            let width = payload.get_u32_le();
            let height = payload.get_u32_le();
            let y_len = (width as usize) * (height as usize);
            let c_len = (width.div_ceil(2) as usize) * (height.div_ceil(2) as usize);
            if payload.len() != y_len + 2 * c_len {
                return Err(CodecError::BadPayload("video plane size mismatch"));
            }
            let y = payload[..y_len].to_vec();
            let u = payload[y_len..y_len + c_len].to_vec();
            let v = payload[y_len + c_len..].to_vec();
            Ok(DisplayCommand::Video {
                rect,
                frame: Arc::new(YuvFrame {
                    width,
                    height,
                    y,
                    u,
                    v,
                }),
            })
        }
        other => Err(CodecError::BadTag(other)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::command::rgb;

    fn round_trip(cmd: DisplayCommand) {
        let encoded = encode_command_vec(&cmd);
        assert_eq!(encoded.len(), cmd.wire_size(), "wire_size must be exact");
        let mut slice = encoded.as_slice();
        let decoded = decode_command(&mut slice).expect("decode");
        assert!(slice.is_empty(), "decoder must consume the whole command");
        assert_eq!(decoded, cmd);
    }

    #[test]
    fn round_trip_all_kinds() {
        round_trip(DisplayCommand::Raw {
            rect: Rect::new(1, 2, 3, 2),
            pixels: Arc::new((0..6).collect()),
        });
        round_trip(DisplayCommand::CopyArea {
            src_x: 9,
            src_y: 8,
            rect: Rect::new(0, 0, 4, 4),
        });
        round_trip(DisplayCommand::SolidFill {
            rect: Rect::new(5, 5, 2, 2),
            color: rgb(1, 2, 3),
        });
        round_trip(DisplayCommand::PatternFill {
            rect: Rect::new(0, 0, 8, 8),
            pattern: Pattern {
                bits: 0xDEAD_BEEF_F00D_CAFE,
                fg: 1,
                bg: 2,
            },
        });
        round_trip(DisplayCommand::Glyph {
            rect: Rect::new(2, 2, 9, 3),
            bits: Arc::new(vec![0xFF, 0x80, 0x01, 0x00, 0xAA, 0x55]),
            fg: 3,
            bg: 4,
        });
        round_trip(DisplayCommand::Video {
            rect: Rect::new(0, 0, 16, 16),
            frame: Arc::new(YuvFrame::from_luma(3, 3, vec![1; 9])),
        });
    }

    #[test]
    fn decode_rejects_truncation() {
        let cmd = DisplayCommand::SolidFill {
            rect: Rect::new(0, 0, 1, 1),
            color: 7,
        };
        let encoded = encode_command_vec(&cmd);
        for cut in 0..encoded.len() {
            let mut slice = &encoded[..cut];
            assert_eq!(
                decode_command(&mut slice),
                Err(CodecError::UnexpectedEof),
                "cut at {cut}"
            );
        }
    }

    #[test]
    fn decode_rejects_bad_tag() {
        let mut encoded = encode_command_vec(&DisplayCommand::SolidFill {
            rect: Rect::new(0, 0, 1, 1),
            color: 7,
        });
        encoded[0] = 99;
        let mut slice = encoded.as_slice();
        assert_eq!(decode_command(&mut slice), Err(CodecError::BadTag(99)));
    }

    #[test]
    fn decode_rejects_inconsistent_raw() {
        // A raw command whose rect says 2x2 but carries 1 pixel.
        let mut out = Vec::new();
        out.put_u8(1);
        for v in [0u32, 0, 2, 2] {
            out.put_u32_le(v);
        }
        out.put_u32_le(4);
        out.put_u32_le(0xAABB);
        let mut slice = out.as_slice();
        assert!(matches!(
            decode_command(&mut slice),
            Err(CodecError::BadPayload(_))
        ));
    }

    #[test]
    fn stream_of_commands_decodes_in_order() {
        let cmds = vec![
            DisplayCommand::SolidFill {
                rect: Rect::new(0, 0, 2, 2),
                color: 1,
            },
            DisplayCommand::CopyArea {
                src_x: 1,
                src_y: 1,
                rect: Rect::new(3, 3, 2, 2),
            },
            DisplayCommand::SolidFill {
                rect: Rect::new(4, 4, 1, 1),
                color: 2,
            },
        ];
        let mut buf = Vec::new();
        for c in &cmds {
            encode_command(c, &mut buf);
        }
        let mut slice = buf.as_slice();
        let mut decoded = Vec::new();
        while !slice.is_empty() {
            decoded.push(decode_command(&mut slice).unwrap());
        }
        assert_eq!(decoded, cmds);
    }
}
