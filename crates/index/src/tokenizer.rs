//! Text tokenization.
//!
//! The original used PostgreSQL's Tsearch2; this reproduction uses a
//! simple, deterministic tokenizer: Unicode-alphanumeric runs, lowercased
//! (ASCII fold), with a small English stopword list applied at indexing
//! time so pervasive words don't bloat the postings.

/// Words too common to index.
const STOPWORDS: &[&str] = &[
    "a", "an", "and", "are", "as", "at", "be", "by", "for", "from", "has", "he", "in", "is", "it",
    "its", "of", "on", "or", "that", "the", "to", "was", "were", "will", "with",
];

/// Splits text into lowercase alphanumeric tokens, keeping stopwords.
///
/// # Examples
///
/// ```
/// use dv_index::tokenizer::tokenize;
///
/// assert_eq!(tokenize("Hello, World!"), vec!["hello", "world"]);
/// ```
pub fn tokenize(text: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut current = String::new();
    for ch in text.chars() {
        if ch.is_alphanumeric() {
            current.extend(ch.to_lowercase());
        } else if !current.is_empty() {
            out.push(std::mem::take(&mut current));
        }
    }
    if !current.is_empty() {
        out.push(current);
    }
    out
}

/// Tokenizes and removes stopwords — the indexing-side tokenizer.
pub fn index_tokens(text: &str) -> Vec<String> {
    tokenize(text)
        .into_iter()
        .filter(|t| !is_stopword(t))
        .collect()
}

/// Normalizes one query term the same way indexed tokens are normalized.
pub fn normalize_term(term: &str) -> String {
    tokenize(term).into_iter().next().unwrap_or_default()
}

/// Returns whether a (lowercased) token is a stopword.
pub fn is_stopword(token: &str) -> bool {
    STOPWORDS.binary_search(&token).is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splits_on_non_alphanumerics() {
        assert_eq!(
            tokenize("foo-bar_baz.qux 42!x"),
            vec!["foo", "bar", "baz", "qux", "42", "x"]
        );
    }

    #[test]
    fn lowercases() {
        assert_eq!(tokenize("MiXeD CaSe"), vec!["mixed", "case"]);
    }

    #[test]
    fn empty_and_symbol_only_produce_nothing() {
        assert!(tokenize("").is_empty());
        assert!(tokenize("!!! ---").is_empty());
    }

    #[test]
    fn stopwords_are_sorted_for_binary_search() {
        let mut sorted = STOPWORDS.to_vec();
        sorted.sort_unstable();
        assert_eq!(sorted, STOPWORDS);
    }

    #[test]
    fn index_tokens_drop_stopwords() {
        assert_eq!(
            index_tokens("the quick brown fox is at the door"),
            vec!["quick", "brown", "fox", "door"]
        );
    }

    #[test]
    fn normalize_term_matches_indexing() {
        assert_eq!(normalize_term("Firefox!"), "firefox");
        assert_eq!(normalize_term(""), "");
    }

    #[test]
    fn unicode_tokens_survive() {
        assert_eq!(tokenize("naïve café"), vec!["naïve", "café"]);
    }
}
