//! The deferred commit pipeline.
//!
//! §5.1.2's deferred writeback keeps serialization and storage writes
//! out of the downtime window; this module moves them off the *session
//! thread* entirely. [`Checkpointer::checkpoint`](crate::Checkpointer)
//! splits into a cheap synchronous **capture** (COW page grab, process
//! forest walk, FS snapshot pin) and an asynchronous **commit**: the
//! captured image is handed to a [`CommitPipeline`], whose worker pool
//! encodes the image sections, compresses them in parallel (one subtask
//! per process section), and writes the blob through the
//! fault-instrumented store.
//!
//! Invariants:
//!
//! * **In-order commit.** Blobs land in checkpoint-counter order, one
//!   at a time, no matter how compression subtasks interleave. A single
//!   "committer" token plus a next-counter gate serializes the final
//!   fault-site check and store write, so fault-injection schedules on
//!   `checkpoint.writeback` observe the same call order as the inline
//!   path and the incremental chain never references a later image.
//! * **Bounded queue.** At most `queue_depth` captures may be pending;
//!   the engine drains and falls back to an inline commit when full, so
//!   memory stays bounded and ordering stays strict.
//! * **Failure cascade.** A commit that exhausts its retries marks its
//!   counter failed; queued incrementals chaining through it are failed
//!   without touching the store (their pages would be unreachable), and
//!   the engine re-anchors with a forced full checkpoint.

use std::collections::{BTreeMap, HashSet, VecDeque};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;

use dv_fault::{sites, FaultPlane, IoFault};
use dv_lsfs::{FsError, SharedBlobStore};
use dv_obs::{names, Obs};
use dv_time::{Duration, Sleeper, Timestamp};

use crate::compress::{assemble_chunks, compress};
use crate::image::{encode_image_sections, CheckpointImage, ImageKind};

/// Commit-pipeline tuning, lifted from the engine config.
#[derive(Clone, Copy, Debug)]
pub struct PipelineConfig {
    /// Worker threads encoding, compressing, and committing images.
    pub workers: usize,
    /// Maximum captures pending before backpressure kicks in.
    pub queue_depth: usize,
    /// Store-write retries before a commit is declared failed.
    pub retry_limit: u32,
    /// Backoff before the first retry; doubles per attempt.
    pub retry_backoff: Duration,
    /// Whether images are compressed (chunked container format).
    pub compress: bool,
}

/// What the engine needs back once a deferred commit resolves.
#[derive(Clone, Debug)]
pub struct CommitOutcome {
    /// Checkpoint counter of the image.
    pub counter: u64,
    /// Session time of the capture.
    pub time: Timestamp,
    /// Full or incremental.
    pub kind: ImageKind,
    /// Blob name the image was (or would have been) stored under.
    pub blob: String,
    /// Whether this was a full checkpoint.
    pub full: bool,
    /// `Ok((raw_bytes, stored_bytes))`, or why the commit failed.
    pub result: Result<(u64, u64), CommitError>,
    /// Wall nanoseconds from enqueue to commit resolution.
    pub commit_nanos: u64,
}

/// Why a deferred commit failed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CommitError {
    /// The store write (or image encode) failed after all retries.
    Io(FsError),
    /// The image chains through counter `.0`, whose commit failed; the
    /// blob was never written.
    Cascaded(u64),
}

impl CommitError {
    /// Collapses to the underlying storage error kind.
    pub fn as_fs_error(&self) -> FsError {
        match self {
            CommitError::Io(e) => *e,
            CommitError::Cascaded(_) => FsError::Io,
        }
    }
}

/// Encode-site fault decided on the session thread at enqueue time, so
/// the `checkpoint.image.encode` schedule is independent of worker
/// interleaving.
#[derive(Clone, Copy, Debug)]
pub enum EncodeFault {
    /// Encode "fails"; the commit resolves as this error.
    Fail(FsError),
    /// Encode succeeds but one byte of the image is mangled.
    Corrupt,
}

/// Maps a raw fault at the encode site to its realization.
pub fn encode_fault_of(fault: Option<IoFault>) -> Option<EncodeFault> {
    match fault {
        None | Some(IoFault::LatencySpike) => None,
        Some(IoFault::Enospc) => Some(EncodeFault::Fail(FsError::NoSpace)),
        Some(IoFault::TornWrite) | Some(IoFault::ShortRead) => Some(EncodeFault::Fail(FsError::Io)),
        Some(IoFault::Corrupt) => Some(EncodeFault::Corrupt),
    }
}

enum Task {
    /// Turn job `seq`'s image into sections, then fan out compression.
    Encode(u64),
    /// Compress section `.1` of job `.0`.
    Compress(u64, usize),
}

struct Job {
    counter: u64,
    time: Timestamp,
    kind: ImageKind,
    blob: String,
    full: bool,
    image: Option<CheckpointImage>,
    encode_fault: Option<EncodeFault>,
    /// Raw (encoded, uncompressed) sections awaiting compression.
    sections: Vec<Vec<u8>>,
    /// Per-section output; `None` until its subtask finishes.
    chunks: Vec<Option<Vec<u8>>>,
    remaining: usize,
    encoded: bool,
    raw_bytes: u64,
    started: std::time::Instant,
}

impl Job {
    fn ready(&self) -> bool {
        self.encoded && self.remaining == 0
    }
}

struct State {
    tasks: VecDeque<Task>,
    jobs: BTreeMap<u64, Job>,
    next_commit: u64,
    committing: bool,
    inflight: usize,
    failed: HashSet<u64>,
    finished: Vec<CommitOutcome>,
    shutdown: bool,
}

struct Shared {
    state: Mutex<State>,
    /// Workers wait here for tasks / commit turns.
    work: Condvar,
    /// `drain` waits here for `inflight == 0`.
    done: Condvar,
}

impl Shared {
    fn lock(&self) -> MutexGuard<'_, State> {
        self.state.lock().expect("commit pipeline state poisoned")
    }
}

/// The worker pool behind deferred checkpoint commits.
pub struct CommitPipeline {
    shared: Arc<Shared>,
    store: SharedBlobStore,
    config: PipelineConfig,
    workers: Vec<JoinHandle<()>>,
}

impl CommitPipeline {
    /// Spawns `config.workers` (at least 1) worker threads writing into
    /// `store`, with fault checks against `plane`, retry backoff paid
    /// through `sleeper`, and per-worker compress time / commit retries
    /// reported through `obs`.
    pub fn new(
        config: PipelineConfig,
        store: SharedBlobStore,
        plane: FaultPlane,
        sleeper: Sleeper,
        obs: Obs,
    ) -> Self {
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                tasks: VecDeque::new(),
                jobs: BTreeMap::new(),
                next_commit: 0,
                committing: false,
                inflight: 0,
                failed: HashSet::new(),
                finished: Vec::new(),
                shutdown: false,
            }),
            work: Condvar::new(),
            done: Condvar::new(),
        });
        let workers = (0..config.workers.max(1))
            .map(|i| {
                let shared = shared.clone();
                let store = store.clone();
                let plane = plane.clone();
                let sleeper = sleeper.clone();
                let obs = obs.clone();
                std::thread::Builder::new()
                    .name(format!("dv-commit-{i}"))
                    .spawn(move || worker(shared, store, plane, sleeper, config, obs))
                    .expect("spawn commit worker")
            })
            .collect();
        CommitPipeline {
            shared,
            store,
            config,
            workers,
        }
    }

    /// Whether this pipeline writes into `store`.
    pub fn writes_to(&self, store: &SharedBlobStore) -> bool {
        self.store.ptr_eq(store)
    }

    /// Captures pending (enqueued, not yet resolved).
    pub fn inflight(&self) -> usize {
        self.shared.lock().inflight
    }

    /// Whether another capture fits under the queue-depth bound.
    pub fn has_capacity(&self) -> bool {
        self.shared.lock().inflight < self.config.queue_depth.max(1)
    }

    /// Hands a captured image to the workers. `encode_fault` carries the
    /// session-thread decision for the `checkpoint.image.encode` site.
    ///
    /// Counters must be enqueued in increasing order; they commit in
    /// that order.
    pub fn enqueue(
        &self,
        image: CheckpointImage,
        blob: String,
        full: bool,
        encode_fault: Option<EncodeFault>,
    ) {
        let mut state = self.shared.lock();
        let seq = image.counter;
        if state.inflight == 0 {
            state.next_commit = seq;
        } else {
            debug_assert!(seq > state.next_commit, "counters must be monotone");
        }
        state.jobs.insert(
            seq,
            Job {
                counter: seq,
                time: image.time,
                kind: image.kind,
                blob,
                full,
                image: Some(image),
                encode_fault,
                sections: Vec::new(),
                chunks: Vec::new(),
                remaining: 0,
                encoded: false,
                raw_bytes: 0,
                started: std::time::Instant::now(),
            },
        );
        state.inflight += 1;
        state.tasks.push_back(Task::Encode(seq));
        drop(state);
        self.shared.work.notify_one();
    }

    /// Blocks until every enqueued capture has resolved (committed or
    /// failed). Outcomes stay queued for [`CommitPipeline::take_finished`].
    pub fn drain(&self) {
        let mut state = self.shared.lock();
        while state.inflight > 0 {
            state = self
                .shared
                .done
                .wait(state)
                .expect("commit pipeline state poisoned");
        }
    }

    /// Removes and returns resolved outcomes, oldest first.
    pub fn take_finished(&self) -> Vec<CommitOutcome> {
        let mut state = self.shared.lock();
        std::mem::take(&mut state.finished)
    }
}

impl Drop for CommitPipeline {
    fn drop(&mut self) {
        {
            let mut state = self.shared.lock();
            state.shutdown = true;
        }
        self.shared.work.notify_all();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

enum Step {
    Run(Task),
    Commit(Box<Job>),
    Exit,
}

fn worker(
    shared: Arc<Shared>,
    store: SharedBlobStore,
    plane: FaultPlane,
    sleeper: Sleeper,
    config: PipelineConfig,
    obs: Obs,
) {
    loop {
        let step = {
            let mut state = shared.lock();
            loop {
                if let Some(task) = state.tasks.pop_front() {
                    break Step::Run(task);
                }
                let commit_ready =
                    !state.committing && state.jobs.get(&state.next_commit).is_some_and(Job::ready);
                if commit_ready {
                    let next = state.next_commit;
                    let job = state.jobs.remove(&next).expect("ready job present");
                    state.committing = true;
                    break Step::Commit(Box::new(job));
                }
                if state.shutdown && state.jobs.is_empty() && !state.committing {
                    break Step::Exit;
                }
                state = shared
                    .work
                    .wait(state)
                    .expect("commit pipeline state poisoned");
            }
        };
        match step {
            Step::Run(Task::Encode(seq)) => run_encode(&shared, &plane, &config, seq),
            Step::Run(Task::Compress(seq, i)) => run_compress(&shared, seq, i, &obs),
            Step::Commit(job) => run_commit(&shared, &store, &plane, &sleeper, &config, &obs, *job),
            Step::Exit => return,
        }
    }
}

fn run_encode(shared: &Arc<Shared>, plane: &FaultPlane, config: &PipelineConfig, seq: u64) {
    let (image, prefailed) = {
        let mut state = shared.lock();
        let job = state.jobs.get_mut(&seq).expect("encode job present");
        let prefailed = matches!(job.encode_fault, Some(EncodeFault::Fail(_)));
        (job.image.take(), prefailed)
    };
    let mut sections = Vec::new();
    let mut raw_bytes = 0u64;
    if !prefailed {
        let image = image.expect("image present until encode");
        sections = encode_image_sections(&image);
        drop(image); // release the COW page references promptly
        raw_bytes = sections.iter().map(|s| s.len() as u64).sum();
        if matches!(
            shared.lock().jobs.get(&seq).expect("job").encode_fault,
            Some(EncodeFault::Corrupt)
        ) {
            // One mangled byte in the largest section, mirroring the
            // inline path's whole-buffer mangle.
            if let Some(victim) = sections.iter_mut().max_by_key(|s| s.len()) {
                plane.mangle(victim);
            }
        }
    }
    let mut state = shared.lock();
    let job = state.jobs.get_mut(&seq).expect("encode job present");
    job.raw_bytes = raw_bytes;
    job.encoded = true;
    if prefailed || !config.compress {
        // Failed jobs have nothing to compress; uncompressed jobs pass
        // their sections straight through to the commit concatenation.
        job.chunks = sections.into_iter().map(Some).collect();
        job.remaining = 0;
        drop(state);
        shared.work.notify_one();
    } else {
        job.chunks = vec![None; sections.len()];
        job.remaining = sections.len();
        job.sections = sections;
        for i in 0..job.remaining {
            state.tasks.push_back(Task::Compress(seq, i));
        }
        drop(state);
        shared.work.notify_all();
    }
}

fn run_compress(shared: &Arc<Shared>, seq: u64, index: usize, obs: &Obs) {
    let section = {
        let mut state = shared.lock();
        let job = state.jobs.get_mut(&seq).expect("compress job present");
        std::mem::take(&mut job.sections[index])
    };
    let compressed = {
        let _span = obs.span("checkpoint", names::CHECKPOINT_WORKER_COMPRESS);
        compress(&section)
    };
    drop(section);
    let mut state = shared.lock();
    let job = state.jobs.get_mut(&seq).expect("compress job present");
    job.chunks[index] = Some(compressed);
    job.remaining -= 1;
    let ready = job.ready();
    drop(state);
    if ready {
        shared.work.notify_one();
    }
}

fn run_commit(
    shared: &Arc<Shared>,
    store: &SharedBlobStore,
    plane: &FaultPlane,
    sleeper: &Sleeper,
    config: &PipelineConfig,
    obs: &Obs,
    job: Job,
) {
    let cascade_from = match job.kind {
        ImageKind::Incremental { prev } if shared.lock().failed.contains(&prev) => Some(prev),
        _ => None,
    };
    let result: Result<(u64, u64), CommitError> = if let Some(prev) = cascade_from {
        Err(CommitError::Cascaded(prev))
    } else if let Some(EncodeFault::Fail(e)) = job.encode_fault {
        Err(CommitError::Io(e))
    } else {
        let chunks: Vec<Vec<u8>> = job
            .chunks
            .into_iter()
            .map(|c| c.expect("all sections resolved"))
            .collect();
        let stored = if config.compress {
            assemble_chunks(&chunks)
        } else {
            chunks.concat()
        };
        let stored_bytes = stored.len() as u64;
        let mut backoff = config.retry_backoff;
        let mut attempt = 0u32;
        loop {
            let write = (|| -> Result<(), FsError> {
                let mut bytes = stored.clone();
                match plane.check(sites::CHECKPOINT_WRITEBACK) {
                    None => {}
                    // A spike stalls the worker, not the session: the
                    // cost lands on the commit pipeline's clock.
                    Some(IoFault::LatencySpike) => sleeper.sleep(config.retry_backoff),
                    Some(IoFault::Enospc) => return Err(FsError::NoSpace),
                    Some(IoFault::TornWrite) | Some(IoFault::ShortRead) => return Err(FsError::Io),
                    Some(IoFault::Corrupt) => plane.mangle(&mut bytes),
                }
                store.with(|s| s.put(&job.blob, bytes))
            })();
            match write {
                Ok(()) => break Ok((job.raw_bytes, stored_bytes)),
                Err(e) if attempt >= config.retry_limit => break Err(CommitError::Io(e)),
                Err(e) => {
                    attempt += 1;
                    obs.incr(names::CHECKPOINT_COMMIT_RETRIES);
                    obs.event(
                        "checkpoint",
                        names::EV_COMMIT_RETRY,
                        format!("counter={} attempt={attempt} error={e:?}", job.counter),
                    );
                    sleeper.sleep(backoff);
                    backoff = backoff + backoff;
                }
            }
        }
    };
    let outcome = CommitOutcome {
        counter: job.counter,
        time: job.time,
        kind: job.kind,
        blob: job.blob,
        full: job.full,
        commit_nanos: job.started.elapsed().as_nanos() as u64,
        result,
    };
    let failed = outcome.result.is_err();
    let mut state = shared.lock();
    if failed {
        state.failed.insert(job.counter);
    }
    state.finished.push(outcome);
    state.next_commit += 1;
    state.committing = false;
    state.inflight -= 1;
    let idle = state.inflight == 0;
    drop(state);
    // The next counter may already be fully compressed and waiting.
    shared.work.notify_all();
    if idle {
        shared.done.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::image::decode_image;
    use dv_fault::FaultPlan;
    use dv_time::SimClock;

    fn tiny_image(counter: u64, kind: ImageKind) -> CheckpointImage {
        CheckpointImage {
            counter,
            time: Timestamp::from_millis(counter),
            kind,
            hostname: "t".into(),
            network_enabled: false,
            processes: Vec::new(),
            sockets: Vec::new(),
        }
    }

    fn config(workers: usize) -> PipelineConfig {
        PipelineConfig {
            workers,
            queue_depth: 8,
            retry_limit: 2,
            retry_backoff: Duration::from_millis(1),
            compress: true,
        }
    }

    #[test]
    fn commits_land_in_counter_order() {
        let store = SharedBlobStore::in_memory();
        let pipe = CommitPipeline::new(
            config(4),
            store.clone(),
            FaultPlane::disabled(),
            Sleeper::Sim(SimClock::new()),
            Obs::disabled(),
        );
        for c in 1..=6u64 {
            let kind = if c == 1 {
                ImageKind::Full
            } else {
                ImageKind::Incremental { prev: c - 1 }
            };
            pipe.enqueue(tiny_image(c, kind), format!("ckpt-{c:08}"), c == 1, None);
        }
        pipe.drain();
        let outcomes = pipe.take_finished();
        let counters: Vec<u64> = outcomes.iter().map(|o| o.counter).collect();
        assert_eq!(counters, vec![1, 2, 3, 4, 5, 6], "in-order resolution");
        for o in &outcomes {
            assert!(o.result.is_ok());
            assert!(store.lock().contains(&o.blob));
        }
        let blob = store.lock().get("ckpt-00000003").unwrap();
        let plain = crate::compress::decompress(&blob).unwrap();
        assert_eq!(decode_image(&plain).unwrap().counter, 3);
    }

    #[test]
    fn failed_commit_cascades_to_dependents() {
        let store = SharedBlobStore::in_memory();
        // Every writeback from the 2nd onward fails, exhausting retries.
        let plane = FaultPlan::new(7)
            .from_nth(sites::CHECKPOINT_WRITEBACK, 2, IoFault::Enospc)
            .build();
        let pipe = CommitPipeline::new(
            config(2),
            store.clone(),
            plane,
            Sleeper::Sim(SimClock::new()),
            Obs::disabled(),
        );
        pipe.enqueue(
            tiny_image(1, ImageKind::Full),
            "ckpt-00000001".into(),
            true,
            None,
        );
        pipe.enqueue(
            tiny_image(2, ImageKind::Incremental { prev: 1 }),
            "ckpt-00000002".into(),
            false,
            None,
        );
        pipe.enqueue(
            tiny_image(3, ImageKind::Incremental { prev: 2 }),
            "ckpt-00000003".into(),
            false,
            None,
        );
        pipe.drain();
        let outcomes = pipe.take_finished();
        assert!(outcomes[0].result.is_ok());
        assert_eq!(
            outcomes[1].result,
            Err(CommitError::Io(FsError::NoSpace)),
            "retries exhausted"
        );
        assert_eq!(
            outcomes[2].result,
            Err(CommitError::Cascaded(2)),
            "dependent fails without touching the store"
        );
        assert!(store.lock().contains("ckpt-00000001"));
        assert!(!store.lock().contains("ckpt-00000002"));
        assert!(!store.lock().contains("ckpt-00000003"));
    }

    #[test]
    fn encode_fault_resolves_without_store_write() {
        let store = SharedBlobStore::in_memory();
        let pipe = CommitPipeline::new(
            config(1),
            store.clone(),
            FaultPlane::disabled(),
            Sleeper::Sim(SimClock::new()),
            Obs::disabled(),
        );
        pipe.enqueue(
            tiny_image(1, ImageKind::Full),
            "ckpt-00000001".into(),
            true,
            Some(EncodeFault::Fail(FsError::NoSpace)),
        );
        pipe.drain();
        let outcomes = pipe.take_finished();
        assert_eq!(outcomes[0].result, Err(CommitError::Io(FsError::NoSpace)));
        assert!(!store.lock().contains("ckpt-00000001"));
    }
}
