//! dv-host: a multi-tenant session host.
//!
//! DejaView (SOSP 2007) records one user's desktop; the fleet-scale
//! deployment the ROADMAP targets packs thousands of recorded sessions
//! onto one node. This crate is that packing layer: a [`Host`] owns a
//! **session registry** of independent [`dejaview::DejaView`] servers —
//! each tenant keeps its own display, record, checkpoint, and file
//! system state — while three resources become host-wide and shared:
//!
//! * the **blob store**: one [`dv_lsfs::SharedBlobStore`] holds every
//!   tenant's checkpoint blobs, namespaced by a per-tenant blob prefix
//!   so counters can never collide;
//! * the **commit pool**: one [`dv_checkpoint::CommitPipeline`] worker
//!   pool serves every tenant's deferred checkpoint commits, one
//!   *lane* per tenant, scheduled fairly (round-robin or
//!   deficit-weighted) so a slow or faulted tenant cannot monopolize
//!   the workers;
//! * the **index-flush rotation**: [`Host::flush_index_round`] walks
//!   tenants from a rotating cursor, so flush bandwidth is shared in
//!   the same round-robin spirit.
//!
//! Isolation is the contract: each tenant carries its own
//! [`dv_fault::FaultPlane`] and [`dv_obs::Obs`] handle, its commit lane
//! has its own ordering, failure set, and queue-depth quota, and quota
//! or fault-induced degradation is confined to the tenant that caused
//! it. The host's own registry records `host.*` lifecycle and quota
//! metrics; [`Host::observability`] returns per-tenant snapshots plus a
//! host-level rollup built with [`dv_obs::ObsSnapshot::merge`].

#![deny(unsafe_code)]

use std::collections::BTreeMap;
use std::sync::Arc;

use dejaview::{Config, DejaView, ServerError};
use dv_checkpoint::{CheckpointReport, CommitPipeline, FairPolicy, LaneId, PipelineConfig};
use dv_display::Screenshot;
use dv_index::{parse_query, RankOrder, SearchHit};
use dv_lsfs::{CasGcStep, CasStats, FsError, SharedBlobStore};
use dv_obs::{names, Obs, ObsSnapshot};
use dv_time::{Duration, SimClock, Sleeper};
use dv_vee::Vpid;
use dv_vidx::VisualHit;

/// Per-tenant resource limits.
#[derive(Clone, Copy, Debug)]
pub struct TenantQuotas {
    /// Captures the tenant may have pending in the shared commit pool
    /// before backpressure commits inline on its own session thread.
    pub commit_queue_depth: usize,
    /// Stored checkpoint bytes after which the host rejects further
    /// checkpoints for this tenant (enforced against committed bytes,
    /// so in-flight commits may briefly overshoot).
    pub storage_bytes: u64,
    /// Scheduling weight of the tenant's commit lane under
    /// [`FairPolicy::DeficitWeighted`]; ignored under round-robin.
    pub commit_weight: u32,
}

impl Default for TenantQuotas {
    fn default() -> Self {
        TenantQuotas {
            commit_queue_depth: 4,
            storage_bytes: u64::MAX,
            commit_weight: 1,
        }
    }
}

/// Host-wide configuration: the shared commit pool and default quotas.
#[derive(Clone, Debug)]
pub struct HostConfig {
    /// Worker threads in the shared commit pool.
    pub commit_workers: usize,
    /// How the pool divides bandwidth between tenant lanes.
    pub fairness: FairPolicy,
    /// Store-write retries per commit before a commit fails.
    pub commit_retry_limit: u32,
    /// Backoff before the first commit retry; doubles per attempt.
    pub commit_retry_backoff: Duration,
    /// Whether checkpoint images are compressed.
    pub compress: bool,
    /// Whether the shared blob store dedups through the `dv-cas`
    /// content-addressed chunk store. Tenant-visible semantics are
    /// unchanged — per-tenant `storage_bytes` quotas keep accounting
    /// *logical* bytes — but the host's physical footprint
    /// ([`Host::storage_physical_bytes`]) shrinks by whatever
    /// redundancy exists across checkpoints and tenants.
    pub dedup: bool,
    /// Quotas applied to tenants created without explicit quotas.
    pub default_quotas: TenantQuotas,
}

impl Default for HostConfig {
    fn default() -> Self {
        HostConfig {
            commit_workers: 2,
            fairness: FairPolicy::RoundRobin,
            commit_retry_limit: 3,
            commit_retry_backoff: Duration::from_millis(50),
            compress: true,
            dedup: true,
            default_quotas: TenantQuotas::default(),
        }
    }
}

/// Why a host operation failed.
#[derive(Debug)]
pub enum HostError {
    /// No tenant with this id is registered.
    UnknownTenant(u64),
    /// The tenant is over a quota; the operation was rejected before
    /// touching the tenant's session.
    QuotaExceeded {
        /// Tenant label.
        tenant: String,
        /// Bytes (or units) used.
        used: u64,
        /// The configured limit.
        limit: u64,
    },
    /// The tenant's own server failed the operation.
    Server(ServerError),
}

impl std::fmt::Display for HostError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HostError::UnknownTenant(id) => write!(f, "unknown tenant {id}"),
            HostError::QuotaExceeded {
                tenant,
                used,
                limit,
            } => {
                write!(f, "tenant {tenant} over quota ({used} used, limit {limit})")
            }
            HostError::Server(e) => write!(f, "tenant server error: {e}"),
        }
    }
}

impl std::error::Error for HostError {}

impl From<ServerError> for HostError {
    fn from(e: ServerError) -> Self {
        HostError::Server(e)
    }
}

/// One hit of a cross-session query: which tenant's record satisfied
/// the query, and when.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct CrossHit {
    /// Tenant id.
    pub tenant: u64,
    /// Tenant label.
    pub label: String,
    /// The underlying index hit (times are on the shared host clock).
    pub hit: SearchHit,
}

/// One hit of a cross-session visual query: which tenant's record
/// looked like the probe, and when.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct CrossVisualHit {
    /// Tenant id.
    pub tenant: u64,
    /// Tenant label.
    pub label: String,
    /// The underlying visual instance (times are on the shared host
    /// clock).
    pub hit: VisualHit,
}

/// One registered session and its host-side bookkeeping.
struct Tenant {
    label: String,
    server: DejaView,
    obs: Obs,
    quotas: TenantQuotas,
}

/// Per-tenant observability snapshot plus the host-level rollup.
pub struct HostObservability {
    /// The host's own registry (`host.*` lifecycle and quota metrics).
    pub host: ObsSnapshot,
    /// The host registry merged with every tenant's, in tenant-id
    /// order ([`ObsSnapshot::merge`] is associative, so this equals any
    /// re-association of the same fold).
    pub rollup: ObsSnapshot,
    /// `(label, snapshot)` per tenant, in tenant-id order.
    pub tenants: Vec<(String, ObsSnapshot)>,
}

impl HostObservability {
    /// Renders the rollup plus the per-tenant breakdown as
    /// deterministic JSON: `BTreeMap`-ordered maps inside each
    /// snapshot, tenants in id order. Two runs performing the same
    /// operations produce byte-identical output.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n\"rollup\": ");
        out.push_str(&self.rollup.to_json());
        out.push_str(",\n\"host\": ");
        out.push_str(&self.host.to_json());
        out.push_str(",\n\"tenants\": {");
        for (i, (label, snap)) in self.tenants.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n\"");
            out.push_str(&dv_obs::escape_json(label));
            out.push_str("\": ");
            out.push_str(&snap.to_json());
        }
        out.push_str(if self.tenants.is_empty() {
            "}\n}\n"
        } else {
            "\n}\n}\n"
        });
        out
    }
}

/// A multi-tenant session host: the session registry plus the shared
/// blob store and the shared, fairly scheduled commit pool.
pub struct Host {
    clock: SimClock,
    store: SharedBlobStore,
    pool: Arc<CommitPipeline>,
    tenants: BTreeMap<u64, Tenant>,
    next_tenant: u64,
    obs: Obs,
    /// Which tenant leads the next index-flush round.
    flush_cursor: u64,
    /// Which tenant leads the next background-compaction round.
    compact_cursor: u64,
    config: HostConfig,
}

impl Host {
    /// Creates a host with its own clock.
    pub fn new(config: HostConfig) -> Self {
        Host::with_clock(config, SimClock::new())
    }

    /// Creates a host over an existing clock (shared with the workload
    /// driver). Every tenant session runs on this clock, and the commit
    /// pool's retry backoff and latency costs advance it, so host runs
    /// are deterministic end to end.
    pub fn with_clock(config: HostConfig, clock: SimClock) -> Self {
        let obs = Obs::new(clock.shared());
        let store = if config.dedup {
            SharedBlobStore::in_memory_deduped()
        } else {
            SharedBlobStore::in_memory()
        };
        // The shared store reports into the host registry, so `cas.*`
        // dedup gauges and GC histograms land in the host rollup.
        store.with(|s| s.set_obs(obs.clone()));
        let pool = Arc::new(CommitPipeline::new(
            PipelineConfig {
                workers: config.commit_workers,
                queue_depth: config.default_quotas.commit_queue_depth,
                retry_limit: config.commit_retry_limit,
                retry_backoff: config.commit_retry_backoff,
                compress: config.compress,
                fairness: config.fairness,
            },
            store.clone(),
            dv_fault::FaultPlane::disabled(),
            Sleeper::Sim(clock.clone()),
            Obs::disabled(),
        ));
        Host {
            obs,
            clock,
            store,
            pool,
            tenants: BTreeMap::new(),
            next_tenant: 1,
            flush_cursor: 0,
            compact_cursor: 0,
            config,
        }
    }

    /// Returns the host clock.
    pub fn clock(&self) -> SimClock {
        self.clock.clone()
    }

    /// Returns the shared blob store every tenant records into.
    pub fn store(&self) -> SharedBlobStore {
        self.store.clone()
    }

    /// Returns the host's own observability handle (`host.*` metrics).
    pub fn obs(&self) -> &Obs {
        &self.obs
    }

    /// Bytes physically resident in the shared store — under dedup,
    /// the chunk arena; otherwise the sum of blob lengths. This is the
    /// number the host reports for capacity planning, while per-tenant
    /// quotas stay logical.
    pub fn storage_physical_bytes(&self) -> u64 {
        self.store.with(|s| match s.cas_stats() {
            Some(cas) => cas.physical_bytes,
            None => s
                .names()
                .iter()
                .filter_map(|n| s.get(n))
                .map(|b| b.len() as u64)
                .sum(),
        })
    }

    /// Sum of the logical lengths of every blob in the shared store.
    pub fn storage_logical_bytes(&self) -> u64 {
        self.store.with(|s| match s.cas_stats() {
            Some(cas) => cas.logical_bytes,
            None => s
                .names()
                .iter()
                .filter_map(|n| s.get(n))
                .map(|b| b.len() as u64)
                .sum(),
        })
    }

    /// Logical bytes of sealed thumbnail-strip blobs (dv-vidx segments
    /// and manifests) across every tenant — the visual-recall share of
    /// [`Host::storage_logical_bytes`]. Strips land in the shared
    /// store through the same deduplicating `put_deduped` path as
    /// checkpoints, so their physical share also benefits from
    /// cross-tenant dedup.
    pub fn storage_visual_bytes(&self) -> u64 {
        self.store.with(|s| {
            s.names()
                .iter()
                .filter(|n| n.contains("vidxseg-") || n.contains("vidxman-"))
                .filter_map(|n| s.get(n))
                .map(|b| b.len() as u64)
                .sum()
        })
    }

    /// Statistics of the shared store's content-addressed layer
    /// (`None` when [`HostConfig::dedup`] is off).
    pub fn storage_cas_stats(&self) -> Option<CasStats> {
        self.store.with(|s| s.cas_stats())
    }

    /// Runs one storage GC round: persists the chunk-store metadata
    /// root (the durability point that makes retired chunks eligible
    /// for reclaim), then sweeps them in `batch`-bounded steps. The
    /// store lock is released between batches, so tenant checkpoints
    /// and commit workers interleave with the sweep — GC never stops
    /// writes. Errors with [`FsError::Unsupported`] when dedup is off.
    pub fn storage_gc(&self, batch: usize) -> Result<CasGcStep, FsError> {
        self.store.with(|s| s.cas_persist_root())?;
        let (step, err) = self.store.gc_sweep(batch);
        match err {
            Some(e) => Err(e),
            None => Ok(step),
        }
    }

    /// Registered tenant ids, in creation order.
    pub fn tenant_ids(&self) -> Vec<u64> {
        self.tenants.keys().copied().collect()
    }

    /// A tenant's label.
    pub fn tenant_label(&self, id: u64) -> Option<&str> {
        self.tenants.get(&id).map(|t| t.label.as_str())
    }

    /// Creates a session under the default quotas. See
    /// [`Host::create_session_with_quotas`].
    pub fn create_session(&mut self, label: &str, config: Config) -> u64 {
        self.create_session_with_quotas(label, config, self.config.default_quotas)
    }

    /// Creates a session: a full [`DejaView`] server on the host clock,
    /// recording into the shared store under `label` as its blob
    /// prefix, with its deferred commits flowing through the shared
    /// pool on a lane of its own. The caller's `config` keeps its
    /// per-tenant knobs (fault plane, policy, recorder); the host
    /// overrides the storage wiring, installs a per-tenant
    /// observability handle if the config's is disabled, and applies
    /// `quotas`. Returns the tenant id.
    pub fn create_session_with_quotas(
        &mut self,
        label: &str,
        mut config: Config,
        quotas: TenantQuotas,
    ) -> u64 {
        let id = self.next_tenant;
        self.next_tenant += 1;
        let obs = if config.obs.is_enabled() {
            config.obs.clone()
        } else {
            Obs::new(self.clock.shared())
        };
        config.obs = obs.clone();
        config.shared_store = Some(self.store.clone());
        config.blob_prefix = Some(label.to_string());
        // Commits go through the shared pool, never a per-session one.
        config.engine.commit_workers = 0;
        config.engine.commit_queue_depth = quotas.commit_queue_depth;
        config.engine.compress = self.config.compress;
        let mut server = DejaView::with_clock(config, self.clock.clone());
        server.engine_mut().attach_shared_pipeline(
            self.pool.clone(),
            id as LaneId,
            quotas.commit_weight,
        );
        self.tenants.insert(
            id,
            Tenant {
                label: label.to_string(),
                server,
                obs,
                quotas,
            },
        );
        self.obs.incr(names::HOST_SESSIONS_CREATED);
        self.obs
            .gauge_set(names::HOST_SESSIONS, self.tenants.len() as u64);
        self.obs.event(
            "host",
            names::EV_HOST_SESSION,
            format!("tenant={label} id={id} created"),
        );
        id
    }

    /// Drops a session: drains its commit lane, removes the lane from
    /// the pool, and unregisters the tenant. The tenant's blobs stay in
    /// the shared store (the record outlives the live session).
    pub fn drop_session(&mut self, id: u64) -> Result<(), HostError> {
        let mut tenant = self
            .tenants
            .remove(&id)
            .ok_or(HostError::UnknownTenant(id))?;
        // A degraded tenant still drops cleanly; its failure was
        // already counted against its own registry.
        let _ = tenant.server.flush_checkpoints();
        tenant.server.engine_mut().detach_shared_pipeline();
        self.obs.incr(names::HOST_SESSIONS_DROPPED);
        self.obs
            .gauge_set(names::HOST_SESSIONS, self.tenants.len() as u64);
        self.obs.event(
            "host",
            names::EV_HOST_SESSION,
            format!("tenant={} id={id} dropped", tenant.label),
        );
        Ok(())
    }

    /// Borrows a tenant's server.
    pub fn session(&self, id: u64) -> Result<&DejaView, HostError> {
        self.tenants
            .get(&id)
            .map(|t| &t.server)
            .ok_or(HostError::UnknownTenant(id))
    }

    /// Borrows a tenant's server mutably (to drive its workload).
    pub fn session_mut(&mut self, id: u64) -> Result<&mut DejaView, HostError> {
        self.tenants
            .get_mut(&id)
            .map(|t| &mut t.server)
            .ok_or(HostError::UnknownTenant(id))
    }

    /// Takes a checkpoint of one tenant through the shared pool,
    /// enforcing the tenant's storage quota first.
    pub fn checkpoint(&mut self, id: u64) -> Result<CheckpointReport, HostError> {
        let tenant = self
            .tenants
            .get_mut(&id)
            .ok_or(HostError::UnknownTenant(id))?;
        let used = tenant.server.engine().stats().stored_bytes;
        if used >= tenant.quotas.storage_bytes {
            self.obs.incr(names::HOST_QUOTA_REJECTIONS);
            self.obs.event(
                "host",
                names::EV_HOST_QUOTA,
                format!(
                    "tenant={} storage_bytes used={used} limit={}",
                    tenant.label, tenant.quotas.storage_bytes
                ),
            );
            return Err(HostError::QuotaExceeded {
                tenant: tenant.label.clone(),
                used,
                limit: tenant.quotas.storage_bytes,
            });
        }
        tenant.server.checkpoint_now().map_err(HostError::Server)
    }

    /// Drains one tenant's lane of the shared pool, surfacing its
    /// first asynchronous commit failure (counted as a degradation on
    /// the *tenant's* registry, never a neighbour's).
    pub fn flush_session(&mut self, id: u64) -> Result<(), HostError> {
        let tenant = self
            .tenants
            .get_mut(&id)
            .ok_or(HostError::UnknownTenant(id))?;
        tenant.server.flush_checkpoints().map_err(HostError::Server)
    }

    /// Drains every tenant's lane. Per-tenant failures are returned in
    /// tenant-id order; a failing tenant never blocks the rest of the
    /// round.
    pub fn flush_all(&mut self) -> Vec<(u64, HostError)> {
        let ids = self.tenant_ids();
        let mut failures = Vec::new();
        for id in ids {
            if let Err(e) = self.flush_session(id) {
                failures.push((id, e));
            }
        }
        failures
    }

    /// One fair index-flush round: every tenant's text index is flushed
    /// as a storable segment, starting from a cursor that rotates by
    /// one tenant per round, so no tenant permanently goes first (or
    /// last) in the shared flush schedule. Returns `(tenant,
    /// segment-or-error)` in the order served.
    #[allow(clippy::type_complexity)]
    pub fn flush_index_round(&mut self) -> Vec<(u64, Result<Vec<u8>, HostError>)> {
        let ids = self.tenant_ids();
        if ids.is_empty() {
            return Vec::new();
        }
        let start = (self.flush_cursor as usize) % ids.len();
        self.flush_cursor = self.flush_cursor.wrapping_add(1);
        let mut results = Vec::with_capacity(ids.len());
        for off in 0..ids.len() {
            let id = ids[(start + off) % ids.len()];
            let outcome = self
                .tenants
                .get_mut(&id)
                .expect("registered tenant")
                .server
                .flush_index()
                .map_err(HostError::Server);
            results.push((id, outcome));
        }
        self.obs.incr(names::HOST_INDEX_FLUSH_ROUNDS);
        results
    }

    /// Evaluates one query against **every** tenant's record — the
    /// fleet-scale "which of my sessions saw this?" operation. The
    /// query is parsed once; each tenant's sharded engine (or single
    /// index) evaluates it independently; then the tagged hits are
    /// merged by **global rank** under `order` and truncated to
    /// `limit`. Per-tenant failures (e.g. a corrupt sealed segment)
    /// degrade that tenant only: its hits are skipped, everyone else's
    /// still return.
    pub fn search_all(
        &mut self,
        query: &str,
        order: RankOrder,
        limit: usize,
    ) -> Result<Vec<CrossHit>, HostError> {
        let query = parse_query(query).map_err(|e| HostError::Server(ServerError::Query(e)))?;
        let mut merged: Vec<CrossHit> = Vec::new();
        for (&id, tenant) in self.tenants.iter_mut() {
            match tenant.server.search_hits(&query, order) {
                Ok(hits) => merged.extend(hits.into_iter().map(|hit| CrossHit {
                    tenant: id,
                    label: tenant.label.clone(),
                    hit,
                })),
                Err(e) => {
                    self.obs.event(
                        "host",
                        names::EV_HOST_SESSION,
                        format!("tenant={} cross-query error={e:?}", tenant.label),
                    );
                }
            }
        }
        dv_tidx::rank_by(&mut merged, order, |c| &c.hit);
        merged.truncate(limit);
        self.obs.incr(names::HOST_CROSS_QUERIES);
        Ok(merged)
    }

    /// Evaluates one visual probe against **every** tenant's thumbnail
    /// strip — "which of my sessions ever looked like this?". Each
    /// tenant's dv-vidx engine answers independently (oracle-exact,
    /// sub-linear); the tagged hits are merged by global distance,
    /// most-recent-first among ties, with the tenant id as the final
    /// deterministic tie-break, and truncated to `k`. Tenants with the
    /// visual index disabled contribute nothing; a tenant whose query
    /// fails (e.g. a corrupt sealed strip) degrades that tenant only.
    pub fn visual_all(&mut self, probe: &Screenshot, k: usize) -> Vec<CrossVisualHit> {
        let mut merged: Vec<CrossVisualHit> = Vec::new();
        for (&id, tenant) in self.tenants.iter_mut() {
            if tenant.server.vidx().is_none() {
                continue;
            }
            match tenant.server.visual_hits(probe, k) {
                Ok(hits) => merged.extend(hits.into_iter().map(|hit| CrossVisualHit {
                    tenant: id,
                    label: tenant.label.clone(),
                    hit,
                })),
                Err(e) => {
                    self.obs.event(
                        "host",
                        names::EV_HOST_SESSION,
                        format!("tenant={} visual-query error={e:?}", tenant.label),
                    );
                }
            }
        }
        merged.sort_by(|a, b| {
            (a.hit.distance, std::cmp::Reverse(a.hit.last), a.tenant)
                .cmp(&(b.hit.distance, std::cmp::Reverse(b.hit.last), b.tenant))
                .then(std::cmp::Reverse(a.hit.id).cmp(&std::cmp::Reverse(b.hit.id)))
        });
        merged.truncate(k);
        self.obs.incr(names::HOST_VISUAL_QUERIES);
        merged
    }

    /// One fair background-compaction round: walks tenants from a
    /// rotating cursor and schedules each tenant's segment compaction
    /// as an **aux task on that tenant's commit lane** of the shared
    /// worker pool — compaction shares the pool's fair schedule with
    /// checkpoint commits but consumes no capture quota, so it can
    /// never block ingest. With a worker-less pool the compactions run
    /// inline. Returns how many tenants had a compaction scheduled.
    pub fn compact_round(&mut self) -> usize {
        let ids = self.tenant_ids();
        if ids.is_empty() {
            return 0;
        }
        let start = (self.compact_cursor as usize) % ids.len();
        self.compact_cursor = self.compact_cursor.wrapping_add(1);
        let mut scheduled = 0;
        for off in 0..ids.len() {
            let id = ids[(start + off) % ids.len()];
            let tenant = self.tenants.get(&id).expect("registered tenant");
            let Some(engine) = tenant.server.tidx() else {
                continue;
            };
            scheduled += 1;
            if self.config.commit_workers == 0 {
                let _ = engine.maybe_compact();
            } else if !self.pool.submit_aux(id as LaneId, move || {
                // A compaction failure leaves the inputs authoritative;
                // the tenant's own registry records the fault.
                let _ = engine.maybe_compact();
            }) {
                scheduled -= 1;
            }
        }
        self.obs.incr(names::HOST_COMPACTION_ROUNDS);
        scheduled
    }

    /// A tenant's degradation count (failed checkpoint attempts and
    /// index flushes), read from its own registry.
    pub fn degraded_events(&self, id: u64) -> Result<u64, HostError> {
        self.tenants
            .get(&id)
            .map(|t| t.server.degraded_events())
            .ok_or(HostError::UnknownTenant(id))
    }

    /// Fingerprints a tenant's committed checkpoint history and the
    /// state revived from its final checkpoint: FNV-1a over every
    /// image's counter and decompressed plaintext, then over the
    /// revived memory of each `(vpid, addr, len)` region. Two runs that
    /// recorded the same tenant activity at the same session times
    /// produce the same fingerprint — the oracle equality the
    /// isolation tests assert.
    pub fn restore_fingerprint(
        &mut self,
        id: u64,
        regions: &[(Vpid, u64, usize)],
    ) -> Result<u64, HostError> {
        // Settle the lane first so the fingerprint covers every commit.
        let _ = self.flush_session(id);
        let tenant = self
            .tenants
            .get_mut(&id)
            .ok_or(HostError::UnknownTenant(id))?;
        let engine = tenant.server.engine();
        let mut fingerprint = 0xcbf2_9ce4_8422_2325u64;
        let metas: Vec<(u64, String)> = engine
            .images()
            .map(|m| (m.counter, m.blob.clone()))
            .collect();
        let compressed = self.config.compress;
        for (counter, blob) in &metas {
            fnv1a(&mut fingerprint, &counter.to_le_bytes());
            let data =
                self.store
                    .with(|s| s.get(blob).map(|d| d.to_vec()))
                    .ok_or(HostError::Server(ServerError::from(
                        dv_lsfs::FsError::NotFound,
                    )))?;
            let plain = if compressed {
                dv_checkpoint::decompress(&data)
                    .ok_or(HostError::Server(ServerError::from(dv_lsfs::FsError::Io)))?
            } else {
                data
            };
            fnv1a(&mut fingerprint, &plain);
        }
        let Some((last, _)) = metas.last() else {
            return Ok(fingerprint);
        };
        let last = *last;
        let chain = engine
            .chain_for(last)
            .ok_or(HostError::Server(ServerError::from(dv_lsfs::FsError::Io)))?;
        let prefix = engine.blob_prefix().to_string();
        let (revived, _report) = dv_checkpoint::revive(
            &mut self.store.lock(),
            &prefix,
            &chain,
            compressed,
            9_000 + id,
            self.clock.shared(),
            Box::new(dv_lsfs::Lsfs::new()),
            dv_vee::HostPidAllocator::new(),
            &dv_checkpoint::NetworkPolicy::default(),
        )
        .map_err(|_| HostError::Server(ServerError::from(dv_lsfs::FsError::Io)))?;
        for &(vpid, addr, len) in regions {
            fnv1a(&mut fingerprint, &vpid.0.to_le_bytes());
            let memory = revived
                .mem_read(vpid, addr, len)
                .map_err(|_| HostError::Server(ServerError::from(dv_lsfs::FsError::Io)))?;
            fnv1a(&mut fingerprint, &memory);
        }
        Ok(fingerprint)
    }

    /// Snapshots observability across the host: the host's own
    /// registry, each tenant's registry (labelled, in id order), and
    /// the rollup merge of all of them.
    pub fn observability(&self) -> HostObservability {
        let host = self.obs.snapshot();
        let tenants: Vec<(String, ObsSnapshot)> = self
            .tenants
            .values()
            .map(|t| (t.label.clone(), t.obs.snapshot()))
            .collect();
        let mut rollup = host.clone();
        for (_, snap) in &tenants {
            rollup.merge(snap);
        }
        HostObservability {
            host,
            rollup,
            tenants,
        }
    }
}

/// FNV-1a over `bytes`, folded into `hash`.
fn fnv1a(hash: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *hash ^= u64::from(b);
        *hash = hash.wrapping_mul(0x100_0000_01b3);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dv_vee::Prot;

    fn tiny_config() -> Config {
        Config {
            width: 64,
            height: 48,
            enable_display_recording: false,
            enable_text_capture: false,
            ..Config::default()
        }
    }

    fn dirty_and_checkpoint(host: &mut Host, id: u64, rounds: u64) -> (Vpid, u64) {
        let (p, addr) = {
            let server = host.session_mut(id).unwrap();
            let p = server.vee_mut().spawn(None, "app").unwrap();
            let addr = server.vee_mut().mmap(p, 4 * 4096, Prot::ReadWrite).unwrap();
            (p, addr)
        };
        for round in 0..rounds {
            let fill = vec![(round as u8).wrapping_add(id as u8); 4096];
            host.session_mut(id)
                .unwrap()
                .vee_mut()
                .mem_write(p, addr + (round % 4) * 4096, &fill)
                .unwrap();
            host.checkpoint(id).unwrap();
        }
        (p, addr)
    }

    #[test]
    fn tenants_share_one_store_without_collisions() {
        let mut host = Host::new(HostConfig::default());
        let a = host.create_session("tenant-a", tiny_config());
        let b = host.create_session("tenant-b", tiny_config());
        dirty_and_checkpoint(&mut host, a, 3);
        dirty_and_checkpoint(&mut host, b, 3);
        assert!(host.flush_all().is_empty());
        let store = host.store();
        for tenant in ["tenant-a", "tenant-b"] {
            for c in 1..=3u64 {
                assert!(
                    store.lock().contains(&format!("{tenant}-{c:08}")),
                    "{tenant} counter {c} blob present"
                );
            }
        }
        assert_eq!(host.session(a).unwrap().engine().stats().committed, 3);
        assert_eq!(host.session(b).unwrap().engine().stats().committed, 3);
    }

    #[test]
    fn similar_tenants_dedup_physical_storage() {
        // Tenants write *identical* page content (fills keyed by round
        // only), so their checkpoint images are chunk-for-chunk alike.
        let run = |dedup: bool| {
            let mut host = Host::new(HostConfig {
                dedup,
                compress: false,
                ..HostConfig::default()
            });
            let ids: Vec<u64> = (0..4)
                .map(|i| host.create_session(&format!("t{i}"), tiny_config()))
                .collect();
            for &id in &ids {
                let (p, addr) = {
                    let server = host.session_mut(id).unwrap();
                    let p = server.vee_mut().spawn(None, "app").unwrap();
                    let addr = server.vee_mut().mmap(p, 4 * 4096, Prot::ReadWrite).unwrap();
                    (p, addr)
                };
                for round in 0..3u64 {
                    let fill: Vec<u8> = (0..4096).map(|i| (i as u8) ^ (round as u8)).collect();
                    host.session_mut(id)
                        .unwrap()
                        .vee_mut()
                        .mem_write(p, addr + (round % 4) * 4096, &fill)
                        .unwrap();
                    host.checkpoint(id).unwrap();
                }
            }
            assert!(host.flush_all().is_empty());
            host
        };
        let deduped = run(true);
        let physical = deduped.storage_physical_bytes();
        let logical = deduped.storage_logical_bytes();
        assert!(
            physical * 2 < logical,
            "4 identical tenants must dedup >=2x: physical={physical} logical={logical}"
        );
        let cas = deduped.storage_cas_stats().unwrap();
        assert!(cas.dedup_hits > 0);
        // Logical bytes are mode-independent: a plain host stores the
        // same logical state.
        let plain = run(false);
        assert!(plain.storage_cas_stats().is_none());
        assert_eq!(plain.storage_logical_bytes(), logical);
        // And the cas gauges surface in the host rollup.
        let obs = deduped.observability();
        assert_eq!(
            obs.rollup.gauge(dv_obs::names::CAS_PHYSICAL_BYTES),
            physical
        );
    }

    #[test]
    fn storage_gc_reclaims_deleted_tenant_blobs() {
        let mut host = Host::new(HostConfig::default());
        let a = host.create_session("doomed", tiny_config());
        dirty_and_checkpoint(&mut host, a, 3);
        assert!(host.flush_all().is_empty());
        host.drop_session(a).unwrap();
        let names: Vec<String> = host.store().with(|s| s.names());
        for name in &names {
            host.store().with(|s| s.delete(name));
        }
        let step = host.storage_gc(8).unwrap();
        assert!(step.reclaimed_chunks > 0, "dropped blobs must be swept");
        assert_eq!(host.storage_physical_bytes(), 0);
        assert!(host.storage_gc(8).unwrap().reclaimed_chunks == 0);
    }

    #[test]
    fn storage_quota_rejects_only_the_offender() {
        let mut host = Host::new(HostConfig::default());
        let capped = host.create_session_with_quotas(
            "capped",
            tiny_config(),
            TenantQuotas {
                storage_bytes: 1,
                ..TenantQuotas::default()
            },
        );
        let free = host.create_session("free", tiny_config());
        dirty_and_checkpoint(&mut host, capped, 1);
        host.flush_session(capped).unwrap();
        // The first checkpoint committed >1 byte; the next is rejected.
        assert!(matches!(
            host.checkpoint(capped),
            Err(HostError::QuotaExceeded { .. })
        ));
        dirty_and_checkpoint(&mut host, free, 2);
        host.flush_session(free).unwrap();
        assert_eq!(host.session(free).unwrap().engine().stats().committed, 2);
        let snap = host.obs().snapshot();
        assert_eq!(snap.counter(names::HOST_QUOTA_REJECTIONS), 1);
        let quota_events = snap.events_named(names::EV_HOST_QUOTA);
        assert!(quota_events[0].detail.contains("tenant=capped"));
    }

    #[test]
    fn index_flush_rotation_rotates_the_leader() {
        let mut host = Host::new(HostConfig::default());
        let a = host.create_session("a", tiny_config());
        let b = host.create_session("b", tiny_config());
        let c = host.create_session("c", tiny_config());
        let leaders: Vec<u64> = (0..4).map(|_| host.flush_index_round()[0].0).collect();
        assert_eq!(leaders, vec![a, b, c, a], "cursor rotates per round");
        assert_eq!(
            host.obs()
                .snapshot()
                .counter(names::HOST_INDEX_FLUSH_ROUNDS),
            4
        );
    }

    #[test]
    fn dropped_session_keeps_its_blobs() {
        let mut host = Host::new(HostConfig::default());
        let a = host.create_session("gone", tiny_config());
        dirty_and_checkpoint(&mut host, a, 2);
        host.drop_session(a).unwrap();
        assert!(host.session(a).is_err());
        assert!(host.store().lock().contains("gone-00000001"));
        let snap = host.obs().snapshot();
        assert_eq!(snap.counter(names::HOST_SESSIONS_DROPPED), 1);
        assert_eq!(snap.gauge(names::HOST_SESSIONS), 0);
    }

    #[test]
    fn rollup_merges_host_and_tenant_registries() {
        let mut host = Host::new(HostConfig::default());
        let a = host.create_session("a", tiny_config());
        dirty_and_checkpoint(&mut host, a, 2);
        assert!(host.flush_all().is_empty());
        let obs = host.observability();
        assert_eq!(obs.tenants.len(), 1);
        let tenant_ckpts = obs.tenants[0].1.counter(names::CHECKPOINT_COUNT);
        assert_eq!(tenant_ckpts, 2);
        assert_eq!(obs.rollup.counter(names::CHECKPOINT_COUNT), tenant_ckpts);
        assert_eq!(
            obs.rollup.counter(names::HOST_SESSIONS_CREATED),
            obs.host.counter(names::HOST_SESSIONS_CREATED)
        );
        // Deterministic rendering.
        assert_eq!(obs.to_json(), host.observability().to_json());
    }

    /// A tenant config with text capture on and a 1s shard window, so
    /// every 1s-spaced checkpoint seals a segment.
    fn texty_config() -> Config {
        Config {
            width: 64,
            height: 48,
            enable_display_recording: false,
            index_shard_window: Duration::from_secs(1),
            ..Config::default()
        }
    }

    /// Shows `text` in tenant `id`'s session (hiding `prev` first so
    /// hits stay distinct intervals), then checkpoints — which seals
    /// the shard once the window has elapsed. Returns the shown node.
    fn show_and_checkpoint(
        host: &mut Host,
        id: u64,
        prev: Option<dv_access::NodeId>,
        text: &str,
    ) -> dv_access::NodeId {
        let server = host.session_mut(id).unwrap();
        let app = match server.desktop_mut().apps().first().copied() {
            Some(app) => app,
            None => server.desktop_mut().register_app("editor"),
        };
        if let Some(node) = prev {
            server.desktop_mut().remove_subtree(app, node);
        }
        host.clock().advance(Duration::from_millis(100));
        let server = host.session_mut(id).unwrap();
        let root = server.desktop_mut().root(app).unwrap();
        let node = server
            .desktop_mut()
            .add_node(app, root, dv_access::Role::Paragraph, text);
        host.clock().advance(Duration::from_secs(1));
        host.checkpoint(id).unwrap();
        node
    }

    #[test]
    fn cross_session_search_merges_by_global_rank() {
        let mut host = Host::new(HostConfig::default());
        let a = host.create_session("alice", texty_config());
        let b = host.create_session("bob", texty_config());
        // Interleave: alice sees the needle first and last, bob in the
        // middle; chronological merge must interleave the tenants.
        let first = show_and_checkpoint(&mut host, a, None, "needle one");
        show_and_checkpoint(&mut host, b, None, "needle two");
        show_and_checkpoint(&mut host, a, Some(first), "needle three");
        let hits = host
            .search_all("needle", RankOrder::Chronological, 16)
            .unwrap();
        assert_eq!(hits.len(), 3);
        assert_eq!(
            hits.iter().map(|h| h.label.as_str()).collect::<Vec<_>>(),
            vec!["alice", "bob", "alice"],
            "merged chronologically across tenants, not per-tenant"
        );
        assert!(hits.windows(2).all(|w| w[0].hit.time <= w[1].hit.time));
        // Truncation keeps the top of the *global* ranking.
        let top = host
            .search_all("needle", RankOrder::Chronological, 1)
            .unwrap();
        assert_eq!(top[0].label, "alice");
        assert_eq!(top[0].hit.time, hits[0].hit.time);
        assert_eq!(host.obs().snapshot().counter(names::HOST_CROSS_QUERIES), 2);
        // A query matching nobody is empty, not an error.
        assert!(host
            .search_all("absent", RankOrder::Chronological, 16)
            .unwrap()
            .is_empty());
    }

    #[test]
    fn compaction_rounds_run_on_the_shared_pool_without_blocking_ingest() {
        let mut host = Host::new(HostConfig::default());
        let id = host.create_session(
            "compacted",
            Config {
                index_compact_fanin: 3,
                ..texty_config()
            },
        );
        let mut prev = None;
        for i in 0..6 {
            prev = Some(show_and_checkpoint(
                &mut host,
                id,
                prev,
                &format!("page{i} words"),
            ));
        }
        host.flush_session(id).unwrap();
        let engine = host.session(id).unwrap().tidx().unwrap();
        let before = engine.stats().live_segments;
        assert!(before >= 3, "1s window sealed per checkpoint: {before}");
        let scheduled = host.compact_round();
        assert_eq!(scheduled, 1);
        // Ingest keeps flowing while compaction is queued/running.
        show_and_checkpoint(&mut host, id, prev, "page6 words");
        // Draining the lane waits for aux tasks too.
        host.flush_session(id).unwrap();
        assert!(
            engine.stats().live_segments < before,
            "compaction merged a batch: {} -> {}",
            before,
            engine.stats().live_segments
        );
        // Every page is still findable after compaction.
        for i in 0..7 {
            let hits = host
                .search_all(&format!("page{i}"), RankOrder::Chronological, 8)
                .unwrap();
            assert_eq!(hits.len(), 1, "page{i} survived compaction");
        }
        assert_eq!(
            host.obs().snapshot().counter(names::HOST_COMPACTION_ROUNDS),
            1
        );
    }

    #[test]
    fn restore_fingerprint_is_stable_across_identical_runs() {
        let run = || {
            let mut host = Host::new(HostConfig::default());
            let id = host.create_session("fp", tiny_config());
            let (p, addr) = dirty_and_checkpoint(&mut host, id, 3);
            host.restore_fingerprint(id, &[(p, addr, 4 * 4096)])
                .unwrap()
        };
        assert_eq!(run(), run());
    }

    fn visual_config() -> Config {
        Config {
            width: 64,
            height: 48,
            enable_text_capture: false,
            index_shard_window: Duration::from_secs(1),
            ..Config::default()
        }
    }

    /// Paints a seeded, visually structured scene on a tenant's screen
    /// and records a keyframe of it.
    fn paint_tenant_scene(host: &mut Host, id: u64, seed: u32) {
        use dv_display::Rect;
        let server = host.session_mut(id).unwrap();
        server
            .driver_mut()
            .fill_rect(Rect::new(0, 0, 64, 48), 0x101010);
        for i in 0..8u32 {
            let x = seed.wrapping_mul(31).wrapping_add(i * 13) % 48;
            let y = seed.wrapping_mul(17).wrapping_add(i * 7) % 32;
            let color = 0xFFu32 << (8 * ((seed + i) % 3));
            server
                .driver_mut()
                .fill_rect(Rect::new(x, y, 12, 12), color);
        }
        server.force_keyframe();
    }

    #[test]
    fn visual_all_merges_tenant_strips_by_distance() {
        let mut host = Host::new(HostConfig::default());
        let a = host.create_session("alpha", visual_config());
        let b = host.create_session("beta", visual_config());
        // A third tenant with visual recall off contributes nothing.
        let c = host.create_session(
            "gamma",
            Config {
                enable_visual_index: false,
                ..visual_config()
            },
        );
        for round in 0..3u32 {
            host.clock().advance(Duration::from_secs(1));
            paint_tenant_scene(&mut host, a, round);
            paint_tenant_scene(&mut host, b, round + 100);
            paint_tenant_scene(&mut host, c, round);
            for id in [a, b, c] {
                host.checkpoint(id).unwrap();
            }
        }
        // Probe with tenant alpha's second scene: alpha's instance is
        // the global best at distance 0; every returned hit is tagged
        // with its tenant.
        let probe = host
            .session_mut(a)
            .unwrap()
            .browse(dv_time::Timestamp::from_secs(2))
            .unwrap();
        let hits = host.visual_all(&probe, 4);
        assert!(!hits.is_empty());
        assert_eq!(hits[0].tenant, a);
        assert_eq!(hits[0].label, "alpha");
        assert_eq!(hits[0].hit.distance, 0);
        assert!(hits.iter().all(|h| h.tenant != c), "gamma has no strip");
        // Global order: distance ascending, ties most-recent-first.
        for pair in hits.windows(2) {
            assert!(
                (pair[0].hit.distance, std::cmp::Reverse(pair[0].hit.last))
                    <= (pair[1].hit.distance, std::cmp::Reverse(pair[1].hit.last))
            );
        }
        assert_eq!(host.obs().snapshot().counter(names::HOST_VISUAL_QUERIES), 1);
    }

    #[test]
    fn sealed_strips_surface_in_storage_accounting() {
        let mut host = Host::new(HostConfig::default());
        let id = host.create_session("vis", visual_config());
        assert_eq!(host.storage_visual_bytes(), 0);
        // The one-second strip window seals at nearly every checkpoint.
        for round in 0..4u32 {
            host.clock().advance(Duration::from_secs(1));
            paint_tenant_scene(&mut host, id, round);
            host.checkpoint(id).unwrap();
        }
        let vidx = host.session(id).unwrap().vidx().unwrap();
        assert!(vidx.stats().live_segments >= 1);
        // Strip blobs are namespaced by the tenant label and counted
        // in the host's visual-storage share of the logical total.
        let store = host.store();
        assert!(store.lock().contains("vis.vidxseg-00000001"));
        let visual = host.storage_visual_bytes();
        assert!(visual > 0);
        assert!(visual <= host.storage_logical_bytes());
    }
}
