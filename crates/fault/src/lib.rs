//! Deterministic fault-injection plane for the DejaView storage stack.
//!
//! DejaView's durability claims (§5 of the paper: every checkpoint is a
//! consistent recovery point; display recording survives storage
//! hiccups) are only credible if the storage stack is exercised under
//! failure. This crate provides the machinery:
//!
//! - [`IoFault`] — the failure vocabulary: torn writes, short reads,
//!   out-of-space, silent corruption, latency spikes.
//! - [`FaultPlane`] — a cloneable handle threaded through every IO site
//!   in `dv-lsfs`, `dv-checkpoint`, `dv-record`, and `dv-index`. A
//!   disabled plane (the default) is a `None` and costs one branch per
//!   IO operation.
//! - [`FaultPlan`] — a seeded builder describing *which* site fails,
//!   *when* (nth call, every-nth, probability, always), and *how*.
//!   Identical plans produce identical injection schedules.
//! - [`crash`] — power-cut surgery on serialized `Lsfs` images for
//!   crash-consistency testing: truncate the log at an arbitrary byte
//!   boundary and let recovery prove it lands on a valid prior state.
//! - [`checksum`] — the CRC32 used by the journal record framing.
//!
//! `dv-fault` is a leaf crate: the storage crates depend on it, never
//! the reverse (its only dependency is the even deeper `dv-obs`
//! observability spine, so every injected fault can surface as a traced
//! event). The crash harness therefore manipulates the documented
//! on-disk container layout directly rather than importing `dv-lsfs`
//! types; a cross-crate test in `dv-lsfs` pins that contract.

#![deny(unsafe_code)]

use std::collections::BTreeMap;
use std::sync::Arc;

use dv_obs::Obs;
use parking_lot::Mutex;

pub mod checksum;
pub mod crash;
pub mod sites;

/// One kind of injectable IO failure.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum IoFault {
    /// The write persists only a prefix of the data, then errors.
    TornWrite,
    /// The read returns fewer bytes than requested.
    ShortRead,
    /// The write fails cleanly with no space left; nothing persists.
    Enospc,
    /// The operation "succeeds" but the data is silently mangled.
    Corrupt,
    /// The operation succeeds but is counted as abnormally slow.
    LatencySpike,
}

impl IoFault {
    /// All kinds, for exhaustive fault-matrix tests.
    pub const ALL: [IoFault; 5] = [
        IoFault::TornWrite,
        IoFault::ShortRead,
        IoFault::Enospc,
        IoFault::Corrupt,
        IoFault::LatencySpike,
    ];
}

/// When a rule fires.
#[derive(Clone, Copy, Debug)]
enum Trigger {
    /// Fire on exactly the `n`-th check of the site (1-based), once.
    Nth(u64),
    /// Fire on the `n`-th check of the site and every one after it.
    FromNth(u64),
    /// Fire on every `n`-th check of the site.
    EveryNth(u64),
    /// Fire with probability `p` per check, from the plan's seed.
    Probability(f64),
    /// Fire on every check.
    Always,
}

#[derive(Clone, Debug)]
struct Rule {
    trigger: Trigger,
    fault: IoFault,
}

/// Per-site observation counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SiteStats {
    /// How many times the site asked the plane.
    pub checks: u64,
    /// How many times a fault was injected there.
    pub injected: u64,
}

/// A snapshot of everything the plane has done so far.
#[derive(Clone, Debug, Default)]
pub struct FaultStats {
    pub sites: BTreeMap<String, SiteStats>,
}

impl FaultStats {
    /// Total injections across all sites.
    pub fn total_injected(&self) -> u64 {
        self.sites.values().map(|s| s.injected).sum()
    }

    /// Total checks across all sites.
    pub fn total_checks(&self) -> u64 {
        self.sites.values().map(|s| s.checks).sum()
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[derive(Debug)]
struct PlaneState {
    rng: u64,
    armed: bool,
    rules: BTreeMap<&'static str, Vec<Rule>>,
    stats: BTreeMap<&'static str, SiteStats>,
    obs: Obs,
}

#[derive(Debug)]
struct Inner {
    state: Mutex<PlaneState>,
}

/// Handle checked at every instrumented IO site.
///
/// Cloning is cheap (an `Arc` bump); all clones share one schedule and
/// one set of counters, so a plan armed at the server level is observed
/// consistently by the filesystem, checkpointer, recorder, and index.
/// The default (disabled) plane holds no allocation and
/// [`check`](FaultPlane::check) is a single `None` test.
#[derive(Clone, Debug, Default)]
pub struct FaultPlane {
    inner: Option<Arc<Inner>>,
}

impl FaultPlane {
    /// The no-op plane: never injects, costs one branch per check.
    pub fn disabled() -> Self {
        FaultPlane { inner: None }
    }

    /// Whether this handle carries an injection schedule at all.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Ask whether this IO operation should fail, and how.
    ///
    /// Counts the check, evaluates the site's rules in insertion order,
    /// and returns the first fault that fires. Disabled planes return
    /// `None` without locking anything.
    #[inline]
    pub fn check(&self, site: &'static str) -> Option<IoFault> {
        let inner = self.inner.as_ref()?;
        let mut state = inner.state.lock();
        let entry = state.stats.entry(site).or_default();
        entry.checks += 1;
        let nth = entry.checks;
        state.obs.incr(dv_obs::names::FAULT_CHECKS);
        if !state.armed {
            return None;
        }
        let rules = match state.rules.get(site) {
            Some(rules) => rules.clone(),
            None => return None,
        };
        let mut fired = None;
        for rule in &rules {
            let hit = match rule.trigger {
                Trigger::Nth(n) => nth == n,
                Trigger::FromNth(n) => nth >= n,
                Trigger::EveryNth(n) => nth % n == 0,
                Trigger::Probability(p) => {
                    let roll =
                        (splitmix64(&mut state.rng) >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
                    roll < p
                }
                Trigger::Always => true,
            };
            if hit {
                fired = Some(rule.fault);
                break;
            }
        }
        if let Some(fault) = fired {
            state.stats.entry(site).or_default().injected += 1;
            state.obs.incr(dv_obs::names::FAULT_INJECTED);
            state.obs.event(
                "fault",
                dv_obs::names::EV_FAULT_INJECTED,
                format!("site={site} fault={fault:?} nth={nth}"),
            );
            Some(fault)
        } else {
            None
        }
    }

    /// Attaches an observability handle: from now on every check is
    /// counted and every injected fault becomes a traced event, so
    /// fault tests can assert on observability output. No-op on a
    /// disabled plane.
    pub fn set_obs(&self, obs: Obs) {
        // A disabled handle is ignored: components propagate their own
        // obs when a plane is installed, and a late-constructed,
        // un-instrumented component (e.g. a revived session's engine)
        // must not tear down the wiring on the shared plane state.
        if !obs.is_enabled() {
            return;
        }
        if let Some(inner) = &self.inner {
            inner.state.lock().obs = obs;
        }
    }

    /// Start injecting. Plans built by [`FaultPlan::build`] start armed;
    /// this re-enables after [`disarm`](FaultPlane::disarm).
    pub fn arm(&self) {
        if let Some(inner) = &self.inner {
            inner.state.lock().armed = true;
        }
    }

    /// Stop injecting (checks are still counted).
    pub fn disarm(&self) {
        if let Some(inner) = &self.inner {
            inner.state.lock().armed = false;
        }
    }

    /// Snapshot of per-site counters.
    pub fn stats(&self) -> FaultStats {
        let mut out = FaultStats::default();
        if let Some(inner) = &self.inner {
            let state = inner.state.lock();
            for (site, stats) in &state.stats {
                out.sites.insert((*site).to_string(), *stats);
            }
        }
        out
    }

    /// Injections recorded at one site.
    pub fn injected_at(&self, site: &str) -> u64 {
        self.stats().sites.get(site).map_or(0, |s| s.injected)
    }

    /// Deterministic index of the byte a [`IoFault::Corrupt`] flip
    /// should hit, for a buffer of `len` bytes.
    pub fn corrupt_index(&self, len: usize) -> usize {
        if len == 0 {
            return 0;
        }
        match &self.inner {
            Some(inner) => (splitmix64(&mut inner.state.lock().rng) % len as u64) as usize,
            None => len / 2,
        }
    }

    /// Deterministic shortened length for a [`IoFault::ShortRead`] (or
    /// the persisted prefix of a [`IoFault::TornWrite`]): strictly less
    /// than `len` whenever `len > 0`.
    pub fn short_len(&self, len: usize) -> usize {
        if len == 0 {
            return 0;
        }
        match &self.inner {
            Some(inner) => (splitmix64(&mut inner.state.lock().rng) % len as u64) as usize,
            None => len / 2,
        }
    }

    /// Flip one byte in place (the standard [`IoFault::Corrupt`]
    /// realization). No-op on empty buffers.
    pub fn mangle(&self, data: &mut [u8]) {
        if data.is_empty() {
            return;
        }
        let idx = self.corrupt_index(data.len());
        data[idx] ^= 0xA5;
    }
}

/// Builder for a deterministic injection schedule.
///
/// ```
/// use dv_fault::{sites, FaultPlan, IoFault};
///
/// let plane = FaultPlan::new(42)
///     .fail_nth(sites::LSFS_DISK_APPEND, 3, IoFault::TornWrite)
///     .probability(sites::LSFS_BLOB_PUT, 0.25, IoFault::Enospc)
///     .build();
/// assert!(plane.is_enabled());
/// assert_eq!(plane.check(sites::LSFS_DISK_APPEND), None);
/// assert_eq!(plane.check(sites::LSFS_DISK_APPEND), None);
/// assert_eq!(
///     plane.check(sites::LSFS_DISK_APPEND),
///     Some(IoFault::TornWrite)
/// );
/// ```
#[derive(Debug)]
pub struct FaultPlan {
    seed: u64,
    rules: BTreeMap<&'static str, Vec<Rule>>,
}

impl FaultPlan {
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            rules: BTreeMap::new(),
        }
    }

    fn push(mut self, site: &'static str, trigger: Trigger, fault: IoFault) -> Self {
        self.rules
            .entry(site)
            .or_default()
            .push(Rule { trigger, fault });
        self
    }

    /// Fail exactly the `n`-th operation at `site` (1-based).
    pub fn fail_nth(self, site: &'static str, n: u64, fault: IoFault) -> Self {
        assert!(n > 0, "nth is 1-based");
        self.push(site, Trigger::Nth(n), fault)
    }

    /// Fail the `n`-th operation at `site` (1-based) and every later
    /// one — "the disk fills up at this point and stays full".
    pub fn from_nth(self, site: &'static str, n: u64, fault: IoFault) -> Self {
        assert!(n > 0, "nth is 1-based");
        self.push(site, Trigger::FromNth(n), fault)
    }

    /// Fail every `n`-th operation at `site`.
    pub fn every_nth(self, site: &'static str, n: u64, fault: IoFault) -> Self {
        assert!(n > 0, "period must be positive");
        self.push(site, Trigger::EveryNth(n), fault)
    }

    /// Fail each operation at `site` with probability `p`, drawn from
    /// the plan's seed.
    pub fn probability(self, site: &'static str, p: f64, fault: IoFault) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        self.push(site, Trigger::Probability(p), fault)
    }

    /// Fail every operation at `site`.
    pub fn always(self, site: &'static str, fault: IoFault) -> Self {
        self.push(site, Trigger::Always, fault)
    }

    /// Finish the plan; the returned plane starts armed.
    pub fn build(self) -> FaultPlane {
        FaultPlane {
            inner: Some(Arc::new(Inner {
                state: Mutex::new(PlaneState {
                    rng: self.seed ^ 0x5851_F42D_4C95_7F2D,
                    armed: true,
                    rules: self.rules,
                    stats: BTreeMap::new(),
                    obs: Obs::disabled(),
                }),
            })),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_plane_never_injects() {
        let plane = FaultPlane::disabled();
        assert!(!plane.is_enabled());
        for _ in 0..100 {
            assert_eq!(plane.check(sites::LSFS_DISK_APPEND), None);
        }
        assert_eq!(plane.stats().total_checks(), 0);
    }

    #[test]
    fn nth_fires_once_at_the_right_call() {
        let plane = FaultPlan::new(1)
            .fail_nth(sites::LSFS_JOURNAL_COMMIT, 2, IoFault::Enospc)
            .build();
        assert_eq!(plane.check(sites::LSFS_JOURNAL_COMMIT), None);
        assert_eq!(
            plane.check(sites::LSFS_JOURNAL_COMMIT),
            Some(IoFault::Enospc)
        );
        assert_eq!(plane.check(sites::LSFS_JOURNAL_COMMIT), None);
        assert_eq!(plane.injected_at(sites::LSFS_JOURNAL_COMMIT), 1);
        assert_eq!(plane.stats().sites[sites::LSFS_JOURNAL_COMMIT].checks, 3);
    }

    #[test]
    fn from_nth_fires_from_the_cutover_onward() {
        let plane = FaultPlan::new(1)
            .from_nth(sites::LSFS_BLOB_PUT, 3, IoFault::Enospc)
            .build();
        let hits: Vec<bool> = (0..6)
            .map(|_| plane.check(sites::LSFS_BLOB_PUT).is_some())
            .collect();
        assert_eq!(hits, [false, false, true, true, true, true]);
    }

    #[test]
    fn every_nth_is_periodic() {
        let plane = FaultPlan::new(1)
            .every_nth(sites::RECORD_LOG_APPEND, 3, IoFault::LatencySpike)
            .build();
        let hits: Vec<bool> = (0..9)
            .map(|_| plane.check(sites::RECORD_LOG_APPEND).is_some())
            .collect();
        assert_eq!(
            hits,
            [false, false, true, false, false, true, false, false, true]
        );
    }

    #[test]
    fn probability_is_seed_deterministic() {
        let run = |seed| {
            let plane = FaultPlan::new(seed)
                .probability(sites::LSFS_BLOB_PUT, 0.5, IoFault::Corrupt)
                .build();
            (0..64)
                .map(|_| plane.check(sites::LSFS_BLOB_PUT).is_some())
                .collect::<Vec<_>>()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
        let hits = run(7).iter().filter(|h| **h).count();
        assert!((16..48).contains(&hits), "p=0.5 wildly off: {hits}/64");
    }

    #[test]
    fn arm_disarm_gate_injection_not_counting() {
        let plane = FaultPlan::new(1)
            .always(sites::CHECKPOINT_WRITEBACK, IoFault::TornWrite)
            .build();
        assert!(plane.check(sites::CHECKPOINT_WRITEBACK).is_some());
        plane.disarm();
        assert_eq!(plane.check(sites::CHECKPOINT_WRITEBACK), None);
        plane.arm();
        assert!(plane.check(sites::CHECKPOINT_WRITEBACK).is_some());
        let stats = plane.stats().sites[sites::CHECKPOINT_WRITEBACK];
        assert_eq!(stats.checks, 3);
        assert_eq!(stats.injected, 2);
    }

    #[test]
    fn clones_share_schedule_and_counters() {
        let plane = FaultPlan::new(1)
            .fail_nth(sites::INDEX_SEGMENT_FLUSH, 2, IoFault::Enospc)
            .build();
        let clone = plane.clone();
        assert_eq!(plane.check(sites::INDEX_SEGMENT_FLUSH), None);
        assert_eq!(
            clone.check(sites::INDEX_SEGMENT_FLUSH),
            Some(IoFault::Enospc)
        );
        assert_eq!(plane.stats().sites[sites::INDEX_SEGMENT_FLUSH].checks, 2);
    }

    #[test]
    fn mangle_flips_exactly_one_byte() {
        let plane = FaultPlan::new(9).build();
        let original = vec![0u8; 64];
        let mut mangled = original.clone();
        plane.mangle(&mut mangled);
        let diffs = original
            .iter()
            .zip(&mangled)
            .filter(|(a, b)| a != b)
            .count();
        assert_eq!(diffs, 1);
        plane.mangle(&mut []);
    }

    #[test]
    fn injections_surface_in_observability() {
        let obs = Obs::sim();
        let plane = FaultPlan::new(1)
            .fail_nth(sites::LSFS_JOURNAL_COMMIT, 2, IoFault::Enospc)
            .build();
        plane.set_obs(obs.clone());
        assert_eq!(plane.check(sites::LSFS_JOURNAL_COMMIT), None);
        assert_eq!(
            plane.check(sites::LSFS_JOURNAL_COMMIT),
            Some(IoFault::Enospc)
        );
        assert_eq!(obs.counter(dv_obs::names::FAULT_CHECKS), 2);
        assert_eq!(obs.counter(dv_obs::names::FAULT_INJECTED), 1);
        let events = obs.events();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].name, dv_obs::names::EV_FAULT_INJECTED);
        assert!(events[0].detail.contains(sites::LSFS_JOURNAL_COMMIT));
        assert!(events[0].detail.contains("Enospc"));
    }

    #[test]
    fn short_len_is_strictly_shorter() {
        let plane = FaultPlan::new(3).build();
        for len in [1usize, 2, 17, 4096] {
            for _ in 0..8 {
                assert!(plane.short_len(len) < len);
            }
        }
        assert_eq!(plane.short_len(0), 0);
    }
}
