//! `dv-obs`: the observability spine of the DejaView reproduction.
//!
//! DejaView's evaluation (§6) lives and dies by knowing where time
//! goes — display logging vs. text capture vs. checkpoint downtime vs.
//! lsfs commits. This crate is the shared substrate every stream
//! reports into:
//!
//! * a lock-cheap [`Registry`] of counters, gauges, and fixed-bucket
//!   latency histograms keyed by static names;
//! * span-based tracing with a bounded in-memory [`TraceRing`] of
//!   structured [`TraceEvent`]s, timestamped via `dv-time` so sim-time
//!   tests stay deterministic;
//! * an export layer ([`ObsSnapshot`]) that serializes registry + ring
//!   to deterministic JSON and renders a per-stream overhead breakdown.
//!
//! The [`Obs`] handle follows the same shape as `dv-fault`'s
//! `FaultPlane`: a cheap clone wrapping `Option<Arc<..>>`, disabled by
//! default so un-instrumented paths cost a single branch. Components
//! receive it through `set_obs(..)` next to their `set_fault_plane(..)`.

#![deny(unsafe_code)]

pub mod export;
pub mod registry;
pub mod trace;

use std::sync::Arc;

use parking_lot::Mutex;

use dv_time::{SharedClock, SimClock, Timestamp};

pub use export::{escape_json, ObsSnapshot, StreamBreakdown};
pub use registry::{Histogram, HistogramSnapshot, Registry, BUCKETS, BUCKET_BOUNDS_NANOS};
pub use trace::{TraceEvent, TraceRing, DEFAULT_RING_CAPACITY};

/// Where span durations come from.
///
/// Event *timestamps* always come from the session clock. Span
/// *durations* are either real elapsed time (profiling) or session
/// time (deterministic tests): a sim-clocked run with `Session` timing
/// produces byte-identical exports across runs.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum Timing {
    /// Measure spans on the session clock (deterministic under
    /// `SimClock`).
    #[default]
    Session,
    /// Measure spans with `std::time::Instant` (real profiling).
    Wall,
}

struct Inner {
    clock: SharedClock,
    timing: Timing,
    registry: Registry,
    ring: Mutex<TraceRing>,
}

impl std::fmt::Debug for Inner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Inner")
            .field("timing", &self.timing)
            .field("registry", &self.registry)
            .finish_non_exhaustive()
    }
}

/// Shared handle to one observability domain (registry + trace ring).
///
/// Clones share state. The default handle is disabled: every operation
/// is a single `Option` test, so components can be instrumented
/// unconditionally.
#[derive(Clone, Debug, Default)]
pub struct Obs {
    inner: Option<Arc<Inner>>,
}

impl Obs {
    /// A disabled handle; all operations are no-ops.
    pub fn disabled() -> Self {
        Obs::default()
    }

    /// An enabled handle timestamping events with `clock` and
    /// measuring spans per `timing`, with a ring of `capacity` events.
    pub fn with_capacity(clock: SharedClock, timing: Timing, capacity: usize) -> Self {
        Obs {
            inner: Some(Arc::new(Inner {
                clock,
                timing,
                registry: Registry::default(),
                ring: Mutex::new(TraceRing::new(capacity)),
            })),
        }
    }

    /// An enabled handle with session-time spans (deterministic under
    /// a sim clock) and the default ring capacity.
    pub fn new(clock: SharedClock) -> Self {
        Obs::with_capacity(clock, Timing::Session, DEFAULT_RING_CAPACITY)
    }

    /// An enabled handle measuring spans in wall time (profiling).
    pub fn wall(clock: SharedClock) -> Self {
        Obs::with_capacity(clock, Timing::Wall, DEFAULT_RING_CAPACITY)
    }

    /// An enabled handle over a fresh sim clock — convenient in tests
    /// that only need metrics, not a shared timeline.
    pub fn sim() -> Self {
        Obs::new(SimClock::new().shared())
    }

    /// Whether this handle records anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Adds 1 to counter `name`.
    #[inline]
    pub fn incr(&self, name: &'static str) {
        self.add(name, 1);
    }

    /// Adds `v` to counter `name`.
    #[inline]
    pub fn add(&self, name: &'static str, v: u64) {
        if let Some(inner) = &self.inner {
            inner.registry.counter_add(name, v);
        }
    }

    /// Overwrites counter `name` — used to resynchronize the registry
    /// when an archive restore replaces component state wholesale.
    pub fn set_counter(&self, name: &'static str, v: u64) {
        if let Some(inner) = &self.inner {
            inner.registry.counter_set(name, v);
        }
    }

    /// Reads counter `name` (0 when disabled or never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.inner
            .as_ref()
            .map(|i| i.registry.counter(name))
            .unwrap_or(0)
    }

    /// Sets gauge `name` to `v`.
    #[inline]
    pub fn gauge_set(&self, name: &'static str, v: u64) {
        if let Some(inner) = &self.inner {
            inner.registry.gauge_set(name, v);
        }
    }

    /// Adds `v` to gauge `name`.
    #[inline]
    pub fn gauge_add(&self, name: &'static str, v: u64) {
        if let Some(inner) = &self.inner {
            inner.registry.gauge_add(name, v);
        }
    }

    /// Subtracts `v` from gauge `name`, saturating at zero.
    #[inline]
    pub fn gauge_sub(&self, name: &'static str, v: u64) {
        if let Some(inner) = &self.inner {
            inner.registry.gauge_sub(name, v);
        }
    }

    /// Reads gauge `name` (0 when disabled or never touched).
    pub fn gauge(&self, name: &str) -> u64 {
        self.inner
            .as_ref()
            .map(|i| i.registry.gauge(name))
            .unwrap_or(0)
    }

    /// Records `nanos` into histogram `name`.
    #[inline]
    pub fn observe(&self, name: &'static str, nanos: u64) {
        if let Some(inner) = &self.inner {
            inner.registry.observe(name, nanos);
        }
    }

    /// Records a discrete event into the trace ring.
    pub fn event(&self, stream: &'static str, name: &'static str, detail: impl Into<String>) {
        if let Some(inner) = &self.inner {
            let now = inner.clock.now();
            inner.ring.lock().push(now, stream, name, detail.into(), 0);
        }
    }

    /// Opens a span over `name` (convention: `"<stream>.<op>"`). On
    /// drop, the duration is recorded into the histogram `name`. Spans
    /// stay out of the event ring — per-operation spans on hot paths
    /// would flood it — unless [`Span::with_event`] opts in.
    #[inline]
    pub fn span(&self, stream: &'static str, name: &'static str) -> Span {
        let start = match &self.inner {
            None => SpanStart::Disabled,
            Some(inner) => match inner.timing {
                Timing::Wall => SpanStart::Wall(std::time::Instant::now()),
                Timing::Session => SpanStart::Session(inner.clock.now()),
            },
        };
        Span {
            obs: self.clone(),
            stream,
            name,
            start,
            emit_event: false,
            detail: None,
        }
    }

    /// Takes a full snapshot of the registry plus the trace ring.
    pub fn snapshot(&self) -> ObsSnapshot {
        match &self.inner {
            None => ObsSnapshot::default(),
            Some(inner) => {
                let ring = inner.ring.lock();
                ObsSnapshot {
                    counters: inner.registry.counters(),
                    gauges: inner.registry.gauges(),
                    histograms: inner.registry.histograms(),
                    events: ring.events(),
                    dropped_events: ring.dropped(),
                }
            }
        }
    }

    /// Current trace-ring contents, oldest first.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.inner
            .as_ref()
            .map(|i| i.ring.lock().events())
            .unwrap_or_default()
    }

    /// Histogram snapshot by name.
    pub fn histogram(&self, name: &str) -> Option<HistogramSnapshot> {
        self.inner.as_ref().and_then(|i| i.registry.histogram(name))
    }
}

enum SpanStart {
    Disabled,
    Wall(std::time::Instant),
    Session(Timestamp),
}

/// An open span; records its duration on drop.
pub struct Span {
    obs: Obs,
    stream: &'static str,
    name: &'static str,
    start: SpanStart,
    emit_event: bool,
    detail: Option<String>,
}

impl Span {
    /// Also pushes a trace event (with the span's duration) on drop.
    pub fn with_event(mut self, detail: impl Into<String>) -> Self {
        self.emit_event = true;
        self.detail = Some(detail.into());
        self
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let inner = match &self.obs.inner {
            Some(inner) => inner,
            None => return,
        };
        let nanos = match &self.start {
            SpanStart::Disabled => return,
            SpanStart::Wall(t0) => t0.elapsed().as_nanos().min(u64::MAX as u128) as u64,
            SpanStart::Session(t0) => inner.clock.now().saturating_since(*t0).as_nanos(),
        };
        inner.registry.observe(self.name, nanos);
        if self.emit_event {
            let now = inner.clock.now();
            inner.ring.lock().push(
                now,
                self.stream,
                self.name,
                self.detail.take().unwrap_or_default(),
                nanos,
            );
        }
    }
}

/// Metric-name constants shared between the instrumented crates and
/// the consumers (`Server::storage()`, `reproduce obs`). Streams:
/// `display`, `text`, `index`, `checkpoint`, `lsfs`, `fault`, `net`,
/// `server`.
pub mod names {
    /// Commands generated by the virtual display driver.
    pub const DISPLAY_DRIVER_COMMANDS: &str = "display.driver_commands";
    /// Wire bytes generated by the virtual display driver.
    pub const DISPLAY_DRIVER_BYTES: &str = "display.driver_bytes";
    /// Commands appended to the recorder's command log.
    pub const DISPLAY_COMMANDS: &str = "display.commands";
    /// Command-log bytes appended by the recorder.
    pub const DISPLAY_COMMAND_BYTES: &str = "display.command_bytes";
    /// Screenshot (keyframe) bytes persisted by the recorder.
    pub const DISPLAY_SCREENSHOT_BYTES: &str = "display.screenshot_bytes";
    /// Timeline bytes persisted by the recorder.
    pub const DISPLAY_TIMELINE_BYTES: &str = "display.timeline_bytes";
    /// Keyframes written.
    pub const DISPLAY_KEYFRAMES: &str = "display.keyframes";
    /// Command batches dropped by injected faults.
    pub const DISPLAY_DROPPED_COMMANDS: &str = "display.dropped_commands";
    /// Keyframes dropped by injected faults.
    pub const DISPLAY_DROPPED_KEYFRAMES: &str = "display.dropped_keyframes";
    /// Span: one recorder log flush.
    pub const DISPLAY_FLUSH: &str = "display.flush";
    /// Span: one keyframe capture + persist.
    pub const DISPLAY_KEYFRAME: &str = "display.keyframe";

    /// Accessibility events processed by the capture daemon.
    pub const TEXT_EVENTS: &str = "text.events";
    /// Text instances emitted (shown).
    pub const TEXT_SHOWN: &str = "text.shown";
    /// Text instances closed (hidden).
    pub const TEXT_HIDDEN: &str = "text.hidden";
    /// Annotations captured.
    pub const TEXT_ANNOTATIONS: &str = "text.annotations";
    /// Span: one mirror update (accessibility event applied).
    pub const TEXT_MIRROR_APPLY: &str = "text.mirror_apply";

    /// Bytes added to the in-memory text index.
    pub const INDEX_BYTES: &str = "index.bytes";
    /// Segment flushes completed.
    pub const INDEX_FLUSHES: &str = "index.flushes";
    /// Queries evaluated.
    pub const INDEX_QUERIES: &str = "index.queries";
    /// Span: one segment flush (encode + persist).
    pub const INDEX_FLUSH: &str = "index.flush";
    /// Span: one search evaluation.
    pub const INDEX_QUERY: &str = "index.query";

    /// Checkpoints taken.
    pub const CHECKPOINT_COUNT: &str = "checkpoint.count";
    /// Full (non-incremental) checkpoints taken.
    pub const CHECKPOINT_FULL: &str = "checkpoint.full";
    /// Raw (pre-compression) checkpoint bytes.
    pub const CHECKPOINT_RAW_BYTES: &str = "checkpoint.raw_bytes";
    /// Stored (post-compression) checkpoint bytes.
    pub const CHECKPOINT_STORED_BYTES: &str = "checkpoint.stored_bytes";
    /// COW relinks performed.
    pub const CHECKPOINT_RELINKS: &str = "checkpoint.relinks";
    /// Checkpoint write failures (after retries).
    pub const CHECKPOINT_WRITE_FAILURES: &str = "checkpoint.write_failures";
    /// Checkpoints enqueued to the deferred pipeline.
    pub const CHECKPOINT_QUEUED: &str = "checkpoint.queued";
    /// Deferred commits completed.
    pub const CHECKPOINT_COMMITTED: &str = "checkpoint.committed";
    /// Synchronous fallbacks when the pipeline was full.
    pub const CHECKPOINT_INLINE_FALLBACKS: &str = "checkpoint.inline_fallbacks";
    /// Nanoseconds of synchronous (stop-the-world) checkpoint time.
    pub const CHECKPOINT_SYNC_DOWNTIME_NANOS: &str = "checkpoint.sync_downtime_nanos";
    /// Nanoseconds of asynchronous commit work.
    pub const CHECKPOINT_ASYNC_COMMIT_NANOS: &str = "checkpoint.async_commit_nanos";
    /// Commit retries inside the writeback pipeline.
    pub const CHECKPOINT_COMMIT_RETRIES: &str = "checkpoint.commit_retries";
    /// Gauge: jobs currently queued or running in the pipeline.
    pub const CHECKPOINT_QUEUE_DEPTH: &str = "checkpoint.queue_depth";
    /// Span: stop-the-world capture phase.
    pub const CHECKPOINT_CAPTURE: &str = "checkpoint.capture";
    /// Span: quiesce phase.
    pub const CHECKPOINT_QUIESCE: &str = "checkpoint.quiesce";
    /// Span: filesystem snapshot phase.
    pub const CHECKPOINT_FS_SNAPSHOT: &str = "checkpoint.fs_snapshot";
    /// Span: per-worker compress + store time in the pipeline.
    pub const CHECKPOINT_WORKER_COMPRESS: &str = "checkpoint.worker_compress";

    /// Data bytes appended to the lsfs log.
    pub const LSFS_DATA_BYTES: &str = "lsfs.data_bytes";
    /// Journal bytes committed.
    pub const LSFS_JOURNAL_BYTES: &str = "lsfs.journal_bytes";
    /// Journal records committed.
    pub const LSFS_JOURNAL_COMMITS: &str = "lsfs.journal_commits";
    /// Sync (log flush) operations.
    pub const LSFS_SYNCS: &str = "lsfs.syncs";
    /// Gauge: live snapshots (grows on snapshot, shrinks on GC).
    pub const LSFS_SNAPSHOTS: &str = "lsfs.snapshots";
    /// Blob-store put operations.
    pub const LSFS_BLOB_PUTS: &str = "lsfs.blob_puts";
    /// Blob-store bytes written.
    pub const LSFS_BLOB_PUT_BYTES: &str = "lsfs.blob_put_bytes";
    /// Blob-store get operations.
    pub const LSFS_BLOB_GETS: &str = "lsfs.blob_gets";
    /// Span: one sync (dirty-block flush).
    pub const LSFS_SYNC: &str = "lsfs.sync";
    /// Span: one snapshot point (sync + mark + state clone).
    pub const LSFS_SNAPSHOT: &str = "lsfs.snapshot";
    /// Span: one blob put.
    pub const LSFS_BLOB_PUT: &str = "lsfs.blob_put";

    /// Fault-plane checks performed (enabled planes only).
    pub const FAULT_CHECKS: &str = "fault.checks";
    /// Faults actually injected.
    pub const FAULT_INJECTED: &str = "fault.injected";
    /// Event name for one injected fault.
    pub const EV_FAULT_INJECTED: &str = "fault.injected";

    /// Frames sent to remote-access clients.
    pub const NET_FRAMES_SENT: &str = "net.frames_sent";
    /// Frames received from remote-access clients.
    pub const NET_FRAMES_RECEIVED: &str = "net.frames_received";
    /// Wire bytes sent to remote-access clients.
    pub const NET_BYTES_SENT: &str = "net.bytes_sent";
    /// Wire bytes received from remote-access clients.
    pub const NET_BYTES_RECEIVED: &str = "net.bytes_received";
    /// Gauge: clients currently connected to the remote-access service.
    pub const NET_CLIENTS: &str = "net.clients";
    /// Gauge: messages queued across all per-client send queues.
    pub const NET_QUEUE_DEPTH: &str = "net.queue_depth";
    /// Slow-client coalesce events (pending damage folded into one
    /// keyframe).
    pub const NET_COALESCE_EVENTS: &str = "net.coalesce_events";
    /// Transport send retries (bounded-backoff recovery from stalls).
    pub const NET_SEND_RETRIES: &str = "net.send_retries";
    /// Connections dropped by transport resets or corruption.
    pub const NET_RESETS: &str = "net.resets";
    /// Clients disconnected by the idle timeout.
    pub const NET_IDLE_DISCONNECTS: &str = "net.idle_disconnects";
    /// Corrupt frames detected by the CRC check.
    pub const NET_CORRUPT_FRAMES: &str = "net.corrupt_frames";
    /// Span: one playback-seek RPC served.
    pub const NET_RPC_SEEK: &str = "net.rpc_seek";
    /// Span: one search RPC served.
    pub const NET_RPC_SEARCH: &str = "net.rpc_search";
    /// Span: one visual-recall RPC served.
    pub const NET_RPC_VISUAL: &str = "net.rpc_visual";
    /// Span: one live-stream flush to one client.
    pub const NET_FLUSH: &str = "net.flush";
    /// Live command batches fanned out (a tapped command with at least
    /// one eligible viewer).
    pub const NET_LIVE_BATCHES: &str = "net.live_batches";
    /// Wire encodes performed for live batches. Zero-copy fan-out
    /// makes this equal `net.live_batches` per active output scale —
    /// one encode shared by every viewer — regardless of viewer count.
    pub const NET_ENCODES_PER_BATCH: &str = "net.encodes_per_batch";
    /// Catch-up keyframe wire encodes (full or delta); shared across
    /// every viewer needing one in the same poll.
    pub const NET_KEYFRAME_ENCODES: &str = "net.keyframe_encodes";
    /// Catch-up keyframes sent as damage deltas rather than full
    /// screens.
    pub const NET_DELTA_KEYFRAMES: &str = "net.delta_keyframes";
    /// Connections the reactor visited (readiness or queued work).
    pub const NET_CONN_VISITS: &str = "net.conn_visits";
    /// Connections the reactor skipped without a syscall (quiet
    /// inbound, empty queue).
    pub const NET_CONN_SKIPS: &str = "net.conn_skips";
    /// Event name for one remote-access disconnect (any cause).
    pub const EV_NET_DISCONNECT: &str = "net.disconnect";
    /// Event name for one slow-client coalesce.
    pub const EV_NET_COALESCE: &str = "net.coalesce";
    /// Event name for one transport-fault recovery retry.
    pub const EV_NET_RETRY: &str = "net.retry";

    /// Degraded events observed by the server (failed attempts).
    pub const SERVER_DEGRADED_EVENTS: &str = "server.degraded_events";
    /// Checkpoint retries performed by the server.
    pub const SERVER_CHECKPOINT_RETRIES: &str = "server.checkpoint_retries";
    /// Index-flush retries performed by the server.
    pub const SERVER_INDEX_FLUSH_RETRIES: &str = "server.index_flush_retries";
    /// Event name for one server-level retry.
    pub const EV_SERVER_RETRY: &str = "server.retry";
    /// Event name for one pipeline inline fallback.
    pub const EV_INLINE_FALLBACK: &str = "checkpoint.inline_fallback";
    /// Event name for one pipeline commit retry.
    pub const EV_COMMIT_RETRY: &str = "checkpoint.commit_retry";

    /// Sessions currently registered on the host.
    pub const HOST_SESSIONS: &str = "host.sessions";
    /// Sessions ever created on the host.
    pub const HOST_SESSIONS_CREATED: &str = "host.sessions_created";
    /// Sessions dropped from the host.
    pub const HOST_SESSIONS_DROPPED: &str = "host.sessions_dropped";
    /// Checkpoints the host skipped because a tenant hit its
    /// storage-bytes quota.
    pub const HOST_QUOTA_REJECTIONS: &str = "host.quota_rejections";
    /// Index-flush rotations the host completed (all tenants served).
    pub const HOST_INDEX_FLUSH_ROUNDS: &str = "host.index_flush_rounds";
    /// Event name for one tenant hitting a quota.
    pub const EV_HOST_QUOTA: &str = "host.quota_exceeded";
    /// Event name for one tenant lifecycle change (create/drop).
    pub const EV_HOST_SESSION: &str = "host.session";

    /// Gauge: live chunks in the content-addressed store.
    pub const CAS_CHUNKS: &str = "cas.chunks";
    /// Gauge: bytes resident in the chunk arena (live + retired).
    pub const CAS_PHYSICAL_BYTES: &str = "cas.physical_bytes";
    /// Gauge: sum of logical blob lengths in the content-addressed
    /// store.
    pub const CAS_LOGICAL_BYTES: &str = "cas.logical_bytes";
    /// Gauge: the durable root generation.
    pub const CAS_GENERATION: &str = "cas.generation";
    /// Deduplicating blob writes completed.
    pub const CAS_PUTS: &str = "cas.puts";
    /// Chunk writes absorbed by an already-resident chunk.
    pub const CAS_DEDUP_HITS: &str = "cas.dedup_hits";
    /// Chunk writes that stored new data.
    pub const CAS_DEDUP_MISSES: &str = "cas.dedup_misses";
    /// Root generations made durable.
    pub const CAS_ROOT_WRITES: &str = "cas.root_writes";
    /// GC sweep steps executed.
    pub const CAS_GC_SWEEPS: &str = "cas.gc_sweeps";
    /// Chunks physically reclaimed by GC.
    pub const CAS_GC_RECLAIMED_CHUNKS: &str = "cas.gc_reclaimed_chunks";
    /// Bytes physically reclaimed by GC.
    pub const CAS_GC_RECLAIMED_BYTES: &str = "cas.gc_reclaimed_bytes";
    /// Chunk reads whose content hash did not match.
    pub const CAS_VERIFY_FAILURES: &str = "cas.verify_failures";
    /// Span: one deduplicating blob write.
    pub const CAS_PUT: &str = "cas.put";
    /// Span: one root-slot write (including read-back verification).
    pub const CAS_ROOT_WRITE: &str = "cas.root_write";
    /// Span: one bounded GC sweep step.
    pub const CAS_GC_SWEEP: &str = "cas.gc_sweep";
    /// Histogram: chunks reclaimed per GC sweep step.
    pub const CAS_GC_BATCH: &str = "cas.gc_batch";
    /// Event name for one abandoned root write (failed verification).
    pub const EV_CAS_ROOT_ABANDONED: &str = "cas.root_abandoned";
    /// Event name for one detected chunk-content mismatch.
    pub const EV_CAS_VERIFY_FAILURE: &str = "cas.verify_failure";
    /// Event name for one aborted GC sweep step.
    pub const EV_CAS_GC_ABORT: &str = "cas.gc_abort";

    /// Text states skipped by the capture-time redundancy filter.
    pub const TIDX_FILTERED: &str = "tidx.filtered";
    /// Text states accepted into the open shard.
    pub const TIDX_INGESTED: &str = "tidx.ingested";
    /// Open-shard seals completed (one immutable segment each).
    pub const TIDX_SEALS: &str = "tidx.seals";
    /// Gauge: live (sealed, not yet superseded) segments.
    pub const TIDX_SEALED_SEGMENTS: &str = "tidx.sealed_segments";
    /// Compaction merges completed.
    pub const TIDX_COMPACTIONS: &str = "tidx.compactions";
    /// Superseded segments physically reclaimed by GC.
    pub const TIDX_GC_RECLAIMED: &str = "tidx.gc_reclaimed";
    /// Sharded queries evaluated.
    pub const TIDX_QUERIES: &str = "tidx.queries";
    /// Histogram: segments probed per sharded query (open shard
    /// included); compaction must push this down.
    pub const TIDX_SEGMENT_PROBES: &str = "tidx.segment_probes";
    /// Span: one open-shard seal.
    pub const TIDX_SEAL: &str = "tidx.seal";
    /// Span: one compaction merge.
    pub const TIDX_COMPACT: &str = "tidx.compact";
    /// Span: one sharded query fan-out.
    pub const TIDX_QUERY: &str = "tidx.query";
    /// Event name for one sealed segment.
    pub const EV_TIDX_SEAL: &str = "tidx.sealed";
    /// Event name for one compaction (inputs -> output).
    pub const EV_TIDX_COMPACT: &str = "tidx.compacted";
    /// Host: cross-session queries served.
    pub const HOST_CROSS_QUERIES: &str = "host.cross_queries";
    /// Host: compaction rounds scheduled on the shared pool.
    pub const HOST_COMPACTION_ROUNDS: &str = "host.compaction_rounds";

    /// Keyframes fingerprinted into the visual strip.
    pub const VIDX_KEYFRAMES: &str = "vidx.keyframes";
    /// Near-duplicate keyframes coalesced into the previous visual
    /// instance (interval extended instead of a new instance).
    pub const VIDX_COALESCED: &str = "vidx.coalesced";
    /// Open-strip seals completed (one immutable strip segment each).
    pub const VIDX_SEALS: &str = "vidx.seals";
    /// Gauge: live sealed strip segments.
    pub const VIDX_SEALED_SEGMENTS: &str = "vidx.sealed_segments";
    /// Gauge: bytes of sealed thumbnail-strip segments in the store.
    pub const VIDX_STRIP_BYTES: &str = "vidx.strip_bytes";
    /// Nearest-thumbnail queries evaluated.
    pub const VIDX_QUERIES: &str = "vidx.queries";
    /// Histogram: fingerprint comparisons per query; the band index
    /// must keep this sub-linear in the instance count.
    pub const VIDX_PROBES: &str = "vidx.probes";
    /// Span: one open-strip seal.
    pub const VIDX_SEAL: &str = "vidx.seal";
    /// Span: one nearest-thumbnail query.
    pub const VIDX_QUERY: &str = "vidx.query";
    /// Event name for one sealed strip segment.
    pub const EV_VIDX_SEAL: &str = "vidx.sealed";
    /// Host: cross-session visual queries served.
    pub const HOST_VISUAL_QUERIES: &str = "host.visual_queries";
}

#[cfg(test)]
mod tests {
    use super::*;
    use dv_time::Duration;

    #[test]
    fn disabled_handle_is_inert() {
        let obs = Obs::disabled();
        assert!(!obs.is_enabled());
        obs.incr("a");
        obs.gauge_set("g", 9);
        obs.observe("h", 1);
        obs.event("s", "e", "detail");
        drop(obs.span("s", "h"));
        assert_eq!(obs.counter("a"), 0);
        assert_eq!(obs.gauge("g"), 0);
        assert!(obs.histogram("h").is_none());
        assert!(obs.events().is_empty());
        assert_eq!(obs.snapshot(), ObsSnapshot::default());
    }

    #[test]
    fn clones_share_state() {
        let obs = Obs::sim();
        let other = obs.clone();
        other.incr("x");
        assert_eq!(obs.counter("x"), 1);
    }

    #[test]
    fn events_are_stamped_with_session_time() {
        let clock = SimClock::new();
        let obs = Obs::new(clock.shared());
        clock.advance(Duration::from_millis(7));
        obs.event("lsfs", "fault.injected", "site=x");
        let events = obs.events();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].time, Timestamp::from_millis(7));
        assert_eq!(events[0].detail, "site=x");
    }

    #[test]
    fn session_spans_measure_sim_time() {
        let clock = SimClock::new();
        let obs = Obs::new(clock.shared());
        {
            let _span = obs.span("checkpoint", names::CHECKPOINT_CAPTURE);
            clock.advance(Duration::from_millis(3));
        }
        let h = obs.histogram(names::CHECKPOINT_CAPTURE).unwrap();
        assert_eq!(h.count, 1);
        assert_eq!(h.sum_nanos, 3_000_000);
    }

    #[test]
    fn span_with_event_lands_in_ring() {
        let obs = Obs::sim();
        drop(obs.span("index", names::INDEX_FLUSH).with_event("seg=1"));
        let events = obs.events();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].name, names::INDEX_FLUSH);
        assert_eq!(events[0].detail, "seg=1");
    }

    #[test]
    fn wall_spans_record_nonzero_on_work() {
        let obs = Obs::wall(SimClock::new().shared());
        {
            let _span = obs.span("lsfs", names::LSFS_SYNC);
            std::hint::black_box(vec![0u8; 4096]);
        }
        assert_eq!(obs.histogram(names::LSFS_SYNC).unwrap().count, 1);
    }

    #[test]
    fn snapshot_collects_everything() {
        let obs = Obs::sim();
        obs.add("lsfs.data_bytes", 10);
        obs.gauge_set("checkpoint.queue_depth", 2);
        obs.observe("lsfs.sync", 50);
        obs.event("fault", "fault.injected", "site=lsfs.journal.commit");
        let snap = obs.snapshot();
        assert_eq!(snap.counter("lsfs.data_bytes"), 10);
        assert_eq!(snap.gauge("checkpoint.queue_depth"), 2);
        assert_eq!(snap.histogram("lsfs.sync").unwrap().count, 1);
        assert_eq!(snap.events_named("fault.injected").len(), 1);
    }
}
