//! Virtual (headless) display outputs.
//!
//! One recorded session can drive several independently-sized remote
//! screens at once — a full-resolution desktop viewer, a half-scale
//! PDA, a magnified projector. Each [`VirtualOutput`] is a headless
//! framebuffer at its own rational [`ScaleFactor`] of the session
//! geometry, kept current by applying the *scaled form* of every live
//! display command ([`scale_command`]). Because a remote viewer at the
//! same scale applies exactly the same scaled command stream, the
//! output's framebuffer is the authoritative answer to "what should
//! that viewer's screen hash to" — it is both the source of catch-up
//! keyframes and the convergence oracle for tests.
//!
//! An [`OutputPool`] groups outputs behind a single [`CommandSink`],
//! so it can be attached to a [`VirtualDisplayDriver`]
//! (`attach_sink`) and fan every submitted command across all
//! registered geometries. An empty pool costs one short-lived lock
//! per command batch and nothing else.
//!
//! [`VirtualDisplayDriver`]: crate::driver::VirtualDisplayDriver

use dv_time::Timestamp;

use crate::command::DisplayCommand;
use crate::driver::CommandSink;
use crate::framebuffer::{Framebuffer, Screenshot};
use crate::scale::{scale_command, scale_screenshot, ScaleFactor};

/// A headless screen at one scale of the session geometry.
pub struct VirtualOutput {
    scale: ScaleFactor,
    fb: Framebuffer,
    commands: u64,
}

impl VirtualOutput {
    /// Creates an output at `scale`, seeded from a snapshot of the
    /// session screen (so an output registered mid-session starts from
    /// the current truth, not a black screen).
    pub fn new(scale: ScaleFactor, seed: &Screenshot) -> Self {
        VirtualOutput {
            scale,
            fb: Framebuffer::from_screenshot(&scale_screenshot(seed, scale)),
            commands: 0,
        }
    }

    /// The output's scale factor.
    pub fn scale(&self) -> ScaleFactor {
        self.scale
    }

    /// The output's pixel geometry.
    pub fn size(&self) -> (u32, u32) {
        (self.fb.width(), self.fb.height())
    }

    /// Snapshot of the output's current screen.
    pub fn snapshot(&self) -> Screenshot {
        self.fb.snapshot()
    }

    /// Content hash of the output's screen, comparable with a
    /// same-scale viewer's framebuffer hash.
    pub fn fingerprint(&self) -> u64 {
        self.fb.content_hash()
    }

    /// Commands applied since creation.
    pub fn commands(&self) -> u64 {
        self.commands
    }

    /// Applies the scaled form of one session-geometry command.
    pub fn apply(&mut self, cmd: &DisplayCommand) {
        self.fb.apply(&scale_command(cmd, self.scale));
        self.commands += 1;
    }
}

/// A set of virtual outputs fed from one command stream.
#[derive(Default)]
pub struct OutputPool {
    outputs: Vec<VirtualOutput>,
}

impl OutputPool {
    /// Creates an empty pool.
    pub fn new() -> Self {
        OutputPool::default()
    }

    /// Registers an output at `scale` seeded from `seed`, unless one
    /// at that exact scale already exists. Scales are compared
    /// structurally (1/2 and 2/4 are distinct outputs).
    pub fn ensure(&mut self, scale: ScaleFactor, seed: &Screenshot) {
        if self.get(scale).is_none() {
            self.outputs.push(VirtualOutput::new(scale, seed));
        }
    }

    /// The output at exactly `scale`, if registered.
    pub fn get(&self, scale: ScaleFactor) -> Option<&VirtualOutput> {
        self.outputs.iter().find(|o| o.scale() == scale)
    }

    /// All registered outputs.
    pub fn outputs(&self) -> &[VirtualOutput] {
        &self.outputs
    }

    /// Number of registered outputs.
    pub fn len(&self) -> usize {
        self.outputs.len()
    }

    /// Whether no outputs are registered.
    pub fn is_empty(&self) -> bool {
        self.outputs.is_empty()
    }
}

impl CommandSink for OutputPool {
    fn submit(&mut self, _ts: Timestamp, cmd: &DisplayCommand) {
        for out in &mut self.outputs {
            out.apply(cmd);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::command::rgb;
    use crate::rect::Rect;

    fn seed(w: u32, h: u32) -> Screenshot {
        Framebuffer::new(w, h).snapshot()
    }

    #[test]
    fn outputs_take_their_geometry_from_the_scale() {
        let seed = seed(320, 240);
        let half = VirtualOutput::new(ScaleFactor::new(1, 2), &seed);
        assert_eq!(half.size(), (160, 120));
        let up = VirtualOutput::new(ScaleFactor::new(3, 2), &seed);
        assert_eq!(up.size(), (480, 360));
    }

    #[test]
    fn seeding_starts_from_the_current_screen() {
        let mut fb = Framebuffer::new(8, 8);
        fb.apply(&DisplayCommand::SolidFill {
            rect: Rect::new(0, 0, 8, 8),
            color: rgb(10, 20, 30),
        });
        let out = VirtualOutput::new(ScaleFactor::ONE, &fb.snapshot());
        assert_eq!(out.fingerprint(), fb.content_hash());
    }

    #[test]
    fn identity_output_tracks_the_session_exactly() {
        let mut fb = Framebuffer::new(16, 16);
        let mut out = VirtualOutput::new(ScaleFactor::ONE, &fb.snapshot());
        let cmds = [
            DisplayCommand::SolidFill {
                rect: Rect::new(1, 2, 5, 4),
                color: rgb(200, 0, 0),
            },
            DisplayCommand::SolidFill {
                rect: Rect::new(4, 4, 8, 8),
                color: rgb(0, 200, 0),
            },
        ];
        for cmd in &cmds {
            fb.apply(cmd);
            out.apply(cmd);
        }
        assert_eq!(out.fingerprint(), fb.content_hash());
        assert_eq!(out.commands(), 2);
    }

    #[test]
    fn scaled_output_matches_a_scaled_command_replay() {
        // The invariant a same-scale remote viewer relies on: applying
        // scale_command(cmd) to a from-scaled-seed framebuffer is
        // exactly what the output does internally.
        let session = seed(20, 10);
        let scale = ScaleFactor::new(1, 2);
        let mut out = VirtualOutput::new(scale, &session);
        let mut viewer = Framebuffer::from_screenshot(&scale_screenshot(&session, scale));
        let cmd = DisplayCommand::SolidFill {
            rect: Rect::new(2, 2, 10, 6),
            color: rgb(9, 9, 9),
        };
        out.apply(&cmd);
        viewer.apply(&scale_command(&cmd, scale));
        assert_eq!(out.fingerprint(), viewer.content_hash());
    }

    #[test]
    fn pool_fans_one_stream_to_every_geometry() {
        let session = seed(32, 32);
        let mut pool = OutputPool::new();
        pool.ensure(ScaleFactor::ONE, &session);
        pool.ensure(ScaleFactor::new(1, 2), &session);
        pool.ensure(ScaleFactor::new(1, 2), &session); // dedup
        assert_eq!(pool.len(), 2);
        pool.submit(
            Timestamp::from_millis(1),
            &DisplayCommand::SolidFill {
                rect: Rect::new(0, 0, 16, 16),
                color: rgb(1, 2, 3),
            },
        );
        for out in pool.outputs() {
            assert_eq!(out.commands(), 1);
        }
        assert_ne!(
            pool.get(ScaleFactor::ONE).unwrap().fingerprint(),
            pool.get(ScaleFactor::new(1, 2)).unwrap().fingerprint(),
            "different geometries hash differently"
        );
    }
}
