//! The stateless client viewer.
//!
//! "All persistent display state is maintained by the display server;
//! clients are simple and stateless" (§3). The [`Viewer`] applies the
//! command stream to a local framebuffer for display and forwards user
//! input back toward the server. A viewer can be attached to the live
//! session, to a playback stream, or to a revived session — DejaView
//! opens one viewer window per session, like browser tabs (§2).

use dv_time::Timestamp;

use crate::command::DisplayCommand;
use crate::driver::CommandSink;
use crate::framebuffer::{Framebuffer, Screenshot};

/// A user input event forwarded from the viewer to the server.
///
/// Per the paper's privacy stance, input is *not* recorded — "only the
/// changes it effects on the display are kept" (§2) — but the checkpoint
/// policy observes whether keyboard input happened, and the annotation
/// mechanism reacts to a key combination.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum InputEvent {
    /// A key press of a printable character, with modifier state.
    Key {
        /// The character produced.
        ch: char,
        /// Whether Ctrl was held.
        ctrl: bool,
        /// Whether Alt was held.
        alt: bool,
    },
    /// Pointer motion to absolute screen coordinates.
    MouseMove {
        /// X coordinate.
        x: u32,
        /// Y coordinate.
        y: u32,
    },
    /// A mouse button transition at the given position.
    MouseButton {
        /// X coordinate.
        x: u32,
        /// Y coordinate.
        y: u32,
        /// Button index (0 = left).
        button: u8,
        /// `true` on press, `false` on release.
        pressed: bool,
    },
}

impl InputEvent {
    /// Returns whether this is keyboard input (the signal the checkpoint
    /// policy's text-editing rule watches).
    pub fn is_keyboard(&self) -> bool {
        matches!(self, InputEvent::Key { .. })
    }
}

/// Cumulative viewer statistics.
#[derive(Clone, Copy, Debug, Default)]
pub struct ViewerStats {
    /// Commands applied.
    pub commands: u64,
    /// Wire bytes received.
    pub bytes: u64,
    /// Input events queued for the server.
    pub inputs: u64,
}

/// A stateless display client.
pub struct Viewer {
    fb: Framebuffer,
    stats: ViewerStats,
    pending_input: Vec<InputEvent>,
    last_command_at: Option<Timestamp>,
}

impl Viewer {
    /// Creates a viewer with a local `width` x `height` framebuffer.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(width: u32, height: u32) -> Self {
        Viewer {
            fb: Framebuffer::new(width, height),
            stats: ViewerStats::default(),
            pending_input: Vec::new(),
            last_command_at: None,
        }
    }

    /// Returns what the viewer currently displays.
    pub fn screenshot(&self) -> Screenshot {
        self.fb.snapshot()
    }

    /// Returns the local framebuffer.
    pub fn framebuffer(&self) -> &Framebuffer {
        &self.fb
    }

    /// Returns cumulative statistics.
    pub fn stats(&self) -> ViewerStats {
        self.stats
    }

    /// Returns the session time of the most recent command.
    pub fn last_command_at(&self) -> Option<Timestamp> {
        self.last_command_at
    }

    /// Queues a user input event for the server to collect.
    pub fn send_input(&mut self, event: InputEvent) {
        self.stats.inputs += 1;
        self.pending_input.push(event);
    }

    /// Drains queued input events; called by the server's input path.
    pub fn take_input(&mut self) -> Vec<InputEvent> {
        std::mem::take(&mut self.pending_input)
    }

    /// Replaces the viewer's contents wholesale from a screenshot, used
    /// when seeking during playback.
    pub fn present(&mut self, shot: &Screenshot) {
        self.fb = Framebuffer::from_screenshot(shot);
    }
}

impl CommandSink for Viewer {
    fn submit(&mut self, ts: Timestamp, cmd: &DisplayCommand) {
        self.fb.apply(cmd);
        self.stats.commands += 1;
        self.stats.bytes += cmd.wire_size() as u64;
        self.last_command_at = Some(ts);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rect::Rect;

    #[test]
    fn viewer_mirrors_command_stream() {
        let mut viewer = Viewer::new(32, 32);
        viewer.submit(
            Timestamp::from_millis(5),
            &DisplayCommand::SolidFill {
                rect: Rect::new(0, 0, 4, 4),
                color: 3,
            },
        );
        assert_eq!(viewer.framebuffer().pixel(2, 2), 3);
        assert_eq!(viewer.stats().commands, 1);
        assert_eq!(viewer.last_command_at(), Some(Timestamp::from_millis(5)));
    }

    #[test]
    fn input_queue_drains() {
        let mut viewer = Viewer::new(8, 8);
        viewer.send_input(InputEvent::Key {
            ch: 'a',
            ctrl: false,
            alt: false,
        });
        viewer.send_input(InputEvent::MouseMove { x: 1, y: 2 });
        let events = viewer.take_input();
        assert_eq!(events.len(), 2);
        assert!(events[0].is_keyboard());
        assert!(!events[1].is_keyboard());
        assert!(viewer.take_input().is_empty());
    }

    #[test]
    fn present_replaces_contents() {
        let mut a = Viewer::new(8, 8);
        a.submit(
            Timestamp::ZERO,
            &DisplayCommand::SolidFill {
                rect: Rect::new(0, 0, 8, 8),
                color: 9,
            },
        );
        let shot = a.screenshot();
        let mut b = Viewer::new(8, 8);
        b.present(&shot);
        assert_eq!(b.screenshot().content_hash(), shot.content_hash());
    }
}
