//! Torn-root crash property tests for the dv-cas chunk store.
//!
//! The invariant (DESIGN.md §11): for ANY sequence of blob operations,
//! root persists (some of which tear or corrupt the slot they write),
//! interleaved GC steps, and power cuts, recovery always lands on the
//! newest root generation that passed its read-back verification —
//! exactly the state of the last *successful* persist. Every blob that
//! root references assembles byte-identical to what was stored, no
//! recovered blob is ever half-swept (a full GC drain afterwards must
//! not touch a reachable chunk), and a torn or corrupted slot only
//! costs the one abandoned generation, never the previous root.

mod common;

use std::collections::HashMap;

use proptest::prelude::*;

use dv_cas::ChunkStore;
use dv_fault::{sites, FaultPlan, IoFault};

/// The operations a test case interleaves.
#[derive(Clone, Debug)]
enum Op {
    /// Store (or overwrite) blob `name % NAMES` with synthesized data.
    Put(u8, u64, usize),
    /// Drop a blob; a miss is a no-op.
    Delete(u8),
    /// O(1) clone `src -> dst`; a missing source is a no-op.
    Clone(u8, u8),
    /// Persist the metadata root. `Some(fault)` tears or corrupts the
    /// slot being written; the previous root must survive.
    Persist(Option<IoFault>),
    /// Sweep up to `1 + batch` reclaim-eligible chunks.
    Gc(u8),
    /// Power cut: rebuild from the slots and the chunk arena. The
    /// recovered state must equal the last successful persist.
    Crash,
}

const NAMES: u8 = 6;

fn name(i: u8) -> String {
    format!("blob-{}", i % NAMES)
}

/// Synthesizes `len` bytes from `seed`. Quarter-aligned slices repeat
/// within and across blobs, so cases exercise real chunk sharing
/// (clones, resurrections) rather than all-unique data.
fn gen_data(seed: u64, len: usize) -> Vec<u8> {
    let quarter = (len / 4).max(1);
    (0..len)
        .map(|i| {
            let block = (i / quarter) as u64 % 2;
            let mut x = (i % quarter) as u64 ^ (seed.wrapping_add(block) << 24);
            x = x.wrapping_mul(0x9E37_79B9_7F4A_7C15);
            x ^= x >> 31;
            (x >> 16) as u8
        })
        .collect()
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (any::<u8>(), 0..8u64, 0..60_000usize).prop_map(|(n, s, l)| Op::Put(n, s, l)),
        2 => any::<u8>().prop_map(Op::Delete),
        2 => (any::<u8>(), any::<u8>()).prop_map(|(s, d)| Op::Clone(s, d)),
        2 => Just(Op::Persist(None)),
        1 => Just(Op::Persist(Some(IoFault::TornWrite))),
        1 => Just(Op::Persist(Some(IoFault::Corrupt))),
        2 => any::<u8>().prop_map(Op::Gc),
        1 => Just(Op::Crash),
    ]
}

/// Asserts that `store` holds exactly `model` — same names, identical
/// bytes — and that reading verified every chunk hash.
fn assert_matches(store: &mut ChunkStore, model: &HashMap<String, Vec<u8>>, when: &str) {
    let mut names = store.names();
    names.sort();
    let mut expected: Vec<String> = model.keys().cloned().collect();
    expected.sort();
    assert_eq!(names, expected, "{when}: blob name set diverged");
    for (name, data) in model {
        let got = store
            .get(name)
            .unwrap_or_else(|| panic!("{when}: {name} lost"));
        assert_eq!(&got, data, "{when}: {name} bytes diverged");
    }
    assert_eq!(
        store.stats().verify_failures,
        0,
        "{when}: a chunk failed its content-hash re-check"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn recovery_lands_on_the_newest_intact_root(ops in prop::collection::vec(arb_op(), 1..40)) {
        // One fault-plane check per persist call, so the n-th persist
        // is the n-th check on the cas.root site.
        let mut plan = FaultPlan::new(common::seed_for("cas-root"));
        let mut persists = 0u64;
        for op in &ops {
            if let Op::Persist(fault) = op {
                persists += 1;
                if let Some(f) = fault {
                    plan = plan.fail_nth(sites::CAS_ROOT, persists, *f);
                }
            }
        }
        // One plane shared across crashes: clones share the per-site
        // check counters, so the n-th persist keeps its planned fault
        // even when the store is rebuilt mid-sequence.
        let plane = plan.build();
        let mut store = ChunkStore::new();
        store.set_fault_plane(plane.clone());

        // `live` mirrors the store's current state; `durable` is what
        // the last successful persist froze — the crash target.
        let mut live: HashMap<String, Vec<u8>> = HashMap::new();
        let mut durable: HashMap<String, Vec<u8>> = HashMap::new();
        for op in &ops {
            match op {
                Op::Put(n, seed, len) => {
                    let data = gen_data(*seed, *len);
                    store.put(&name(*n), &data).expect("unfaulted put");
                    live.insert(name(*n), data);
                }
                Op::Delete(n) => {
                    prop_assert_eq!(store.delete(&name(*n)), live.remove(&name(*n)).is_some());
                }
                Op::Clone(s, d) => {
                    if s % NAMES != d % NAMES {
                        prop_assert_eq!(store.clone_blob(&name(*s), &name(*d)), live.contains_key(&name(*s)));
                        if let Some(data) = live.get(&name(*s)).cloned() {
                            live.insert(name(*d), data);
                        }
                    }
                }
                Op::Persist(fault) => {
                    let before = store.generation();
                    match store.persist_root() {
                        Ok(generation) => {
                            // The read-back catches an injected tear or
                            // corruption, so success means no fault bit.
                            prop_assert!(fault.is_none(), "faulted persist reported success");
                            prop_assert_eq!(generation, before + 1);
                            durable = live.clone();
                        }
                        Err(_) => {
                            prop_assert!(fault.is_some(), "clean persist failed");
                            prop_assert_eq!(store.generation(), before, "failed persist advanced durability");
                        }
                    }
                }
                Op::Gc(batch) => {
                    store.gc_step(1 + *batch as usize).expect("unfaulted gc step");
                }
                Op::Crash => {
                    let recovered = store.crash();
                    prop_assert_eq!(recovered.generation(), store.generation(),
                        "recovery missed the newest intact generation");
                    store = recovered;
                    store.set_fault_plane(plane.clone());
                    live = durable.clone();
                    assert_matches(&mut store, &durable, "mid-sequence crash");
                }
            }
        }

        // The final cut: recovery must land exactly on the last
        // successful persist, whatever tore since.
        let mut recovered = store.crash();
        prop_assert_eq!(recovered.generation(), store.generation());
        assert_matches(&mut recovered, &durable, "final crash");

        // Never half-swept: drain the GC completely; nothing reachable
        // may be touched, and every retired chunk must go.
        loop {
            let step = recovered.gc_step(3).expect("unfaulted gc step");
            if step.done {
                break;
            }
        }
        prop_assert_eq!(recovered.stats().retired_chunks, 0, "sweep left retired chunks");
        assert_matches(&mut recovered, &durable, "after full sweep");

        // And the swept state is itself crash-durable once persisted
        // (the crash-rebuilt store carries no fault plane).
        recovered.persist_root().expect("clean persist");
        let mut again = recovered.crash();
        assert_matches(&mut again, &durable, "crash after sweep + persist");
    }
}
