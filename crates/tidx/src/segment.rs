//! Immutable segment and manifest blob formats.
//!
//! A sealed segment is a [`dv_index::flush_segment`] payload wrapped
//! in CRC framing (the same IEEE CRC32 that guards the lsfs journal
//! and the dv-net wire), so a mangled blob is detected on probe
//! rather than silently returning wrong hits:
//!
//! ```text
//! [magic "DVTSEG01"][crc32(payload) u32 LE][len u64 LE][payload ...]
//! ```
//!
//! A manifest records the shard layout as of one checkpoint counter —
//! the live segments, the retired segments awaiting GC, the retention
//! floor, and the allocator state — under the same framing with magic
//! `DVTMAN02`. Manifests are written at seal time, named by checkpoint
//! counter, so a revive at checkpoint N reads the newest manifest at
//! or before N and sees exactly the segments sealed by then. Manifests
//! below the retention floor reference segments GC has physically
//! reclaimed, so GC deletes them too; a query there reports a clean
//! out-of-retention error rather than a missing-blob failure.

use bytes::{Buf, BufMut};

use dv_fault::checksum::crc32;
use dv_time::Timestamp;

const SEG_MAGIC: &[u8; 8] = b"DVTSEG01";
const MAN_MAGIC: &[u8; 8] = b"DVTMAN02";

/// A segment- or manifest-blob decoding error.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct FrameError(pub &'static str);

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "tidx frame error: {}", self.0)
    }
}

impl std::error::Error for FrameError {}

/// Everything the engine needs to know about one immutable segment
/// without decoding it.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SegmentMeta {
    /// Monotonic segment id; names the blob.
    pub id: u64,
    /// 0 for freshly sealed shards; compaction merges level-`n` inputs
    /// into one level-`n+1` output.
    pub level: u32,
    /// Earliest visibility start covered (instances carried across a
    /// seal keep their original `shown`, so this can precede the
    /// shard's window).
    pub start: Timestamp,
    /// The seal horizon (exclusive): no instance in the segment is
    /// visible at or after it.
    pub end: Timestamp,
    /// The checkpoint counter whose manifest first referenced this
    /// segment — the snapshot-consistency anchor.
    pub sealed_at: u64,
    /// Framed blob size.
    pub bytes: u64,
    /// Instances stored.
    pub instances: u64,
}

/// One parsed manifest: the shard layout as of `counter`.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Manifest {
    /// Checkpoint counter this layout is consistent with.
    pub counter: u64,
    /// Next segment id to allocate.
    pub next_segment: u64,
    /// Where the open shard's window began when this was written.
    pub open_start: Timestamp,
    /// The retention floor: checkpoints below this counter reference
    /// segments GC has reclaimed and can no longer be revived.
    pub oldest_revivable: u64,
    /// Segments serving queries, ordered by `start`.
    pub live: Vec<SegmentMeta>,
    /// Superseded segments and the checkpoint counter after which each
    /// may be reclaimed (the dv-cas recycle-only-after-checkpoint
    /// discipline).
    pub retired: Vec<(SegmentMeta, u64)>,
}

/// Wraps a payload in magic + CRC framing.
fn frame(magic: &[u8; 8], payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(payload.len() + 20);
    out.extend_from_slice(magic);
    out.put_u32_le(crc32(payload));
    out.put_u64_le(payload.len() as u64);
    out.extend_from_slice(payload);
    out
}

/// Verifies framing and returns the payload slice.
fn unframe<'a>(magic: &[u8; 8], mut buf: &'a [u8]) -> Result<&'a [u8], FrameError> {
    if buf.len() < 20 || &buf[..8] != magic {
        return Err(FrameError("bad magic"));
    }
    buf.advance(8);
    let crc = buf.get_u32_le();
    let len = buf.get_u64_le() as usize;
    if buf.len() != len {
        return Err(FrameError("length mismatch"));
    }
    if crc32(buf) != crc {
        return Err(FrameError("crc mismatch"));
    }
    Ok(buf)
}

/// Frames an encoded-index payload as a segment blob.
pub fn frame_segment(payload: &[u8]) -> Vec<u8> {
    frame(SEG_MAGIC, payload)
}

/// Verifies a segment blob and returns the encoded-index payload.
pub fn unframe_segment(buf: &[u8]) -> Result<&[u8], FrameError> {
    unframe(SEG_MAGIC, buf)
}

fn put_meta(out: &mut Vec<u8>, meta: &SegmentMeta) {
    out.put_u64_le(meta.id);
    out.put_u32_le(meta.level);
    out.put_u64_le(meta.start.as_nanos());
    out.put_u64_le(meta.end.as_nanos());
    out.put_u64_le(meta.sealed_at);
    out.put_u64_le(meta.bytes);
    out.put_u64_le(meta.instances);
}

fn get_meta(buf: &mut &[u8]) -> Result<SegmentMeta, FrameError> {
    if buf.len() < 52 {
        return Err(FrameError("truncated segment meta"));
    }
    Ok(SegmentMeta {
        id: buf.get_u64_le(),
        level: buf.get_u32_le(),
        start: Timestamp::from_nanos(buf.get_u64_le()),
        end: Timestamp::from_nanos(buf.get_u64_le()),
        sealed_at: buf.get_u64_le(),
        bytes: buf.get_u64_le(),
        instances: buf.get_u64_le(),
    })
}

/// Serializes a manifest as a framed blob.
pub fn encode_manifest(man: &Manifest) -> Vec<u8> {
    let mut payload = Vec::new();
    payload.put_u64_le(man.counter);
    payload.put_u64_le(man.next_segment);
    payload.put_u64_le(man.open_start.as_nanos());
    payload.put_u64_le(man.oldest_revivable);
    payload.put_u64_le(man.live.len() as u64);
    for meta in &man.live {
        put_meta(&mut payload, meta);
    }
    payload.put_u64_le(man.retired.len() as u64);
    for (meta, reclaim_after) in &man.retired {
        put_meta(&mut payload, meta);
        payload.put_u64_le(*reclaim_after);
    }
    frame(MAN_MAGIC, &payload)
}

/// Verifies and parses a manifest blob.
pub fn decode_manifest(buf: &[u8]) -> Result<Manifest, FrameError> {
    let mut payload = unframe(MAN_MAGIC, buf)?;
    if payload.len() < 40 {
        return Err(FrameError("truncated manifest header"));
    }
    let counter = payload.get_u64_le();
    let next_segment = payload.get_u64_le();
    let open_start = Timestamp::from_nanos(payload.get_u64_le());
    let oldest_revivable = payload.get_u64_le();
    let live_count = payload.get_u64_le();
    let mut live = Vec::new();
    for _ in 0..live_count {
        live.push(get_meta(&mut payload)?);
    }
    if payload.len() < 8 {
        return Err(FrameError("truncated retired count"));
    }
    let retired_count = payload.get_u64_le();
    let mut retired = Vec::new();
    for _ in 0..retired_count {
        let meta = get_meta(&mut payload)?;
        if payload.len() < 8 {
            return Err(FrameError("truncated reclaim counter"));
        }
        retired.push((meta, payload.get_u64_le()));
    }
    if !payload.is_empty() {
        return Err(FrameError("trailing bytes"));
    }
    Ok(Manifest {
        counter,
        next_segment,
        open_start,
        oldest_revivable,
        live,
        retired,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meta(id: u64) -> SegmentMeta {
        SegmentMeta {
            id,
            level: 1,
            start: Timestamp::from_millis(id * 10),
            end: Timestamp::from_millis(id * 10 + 10),
            sealed_at: id,
            bytes: 100 + id,
            instances: id * 3,
        }
    }

    #[test]
    fn segment_framing_round_trips_and_detects_corruption() {
        let payload = b"pretend this is an encoded index".to_vec();
        let framed = frame_segment(&payload);
        assert_eq!(unframe_segment(&framed).unwrap(), &payload[..]);
        let mut mangled = framed.clone();
        let last = mangled.len() - 1;
        mangled[last] ^= 0xFF;
        assert_eq!(unframe_segment(&mangled), Err(FrameError("crc mismatch")));
        assert!(unframe_segment(&framed[..10]).is_err());
        assert!(unframe_segment(b"DVTMAN01 nope").is_err());
    }

    #[test]
    fn manifest_round_trips() {
        let man = Manifest {
            counter: 42,
            next_segment: 7,
            open_start: Timestamp::from_millis(500),
            oldest_revivable: 40,
            live: vec![meta(1), meta(4)],
            retired: vec![(meta(2), 43), (meta(3), 44)],
        };
        let decoded = decode_manifest(&encode_manifest(&man)).unwrap();
        assert_eq!(decoded, man);
    }

    #[test]
    fn manifest_rejects_truncation() {
        let man = Manifest {
            counter: 1,
            next_segment: 2,
            open_start: Timestamp::ZERO,
            oldest_revivable: 0,
            live: vec![meta(1)],
            retired: Vec::new(),
        };
        let encoded = encode_manifest(&man);
        for cut in [0, 12, 25, encoded.len() - 1] {
            assert!(decode_manifest(&encoded[..cut]).is_err(), "cut at {cut}");
        }
    }
}
