//! The `cat` scenario: dumping a large log file to the terminal.
//!
//! Table 1: "cat a 17 MB system log file". Display-intensive: a fast
//! full-screen scroll with many glyph lines — one of the two scenarios
//! the paper calls "quite display intensive" (with video) yet whose
//! recording overhead stays small because scrolls and glyphs are cheap
//! protocol commands.

use rand::rngs::StdRng;
use rand::SeedableRng;

use dejaview::DejaView;
use dv_display::Rect;
use dv_time::Duration;
use dv_vee::Vpid;

use crate::common::{loggy_bytes, TermWindow};
use crate::scenario::Scenario;

/// Bytes consumed from the file per step.
const CHUNK: usize = 64 << 10;

/// Lines rendered per step (the visible effect of a fast scroll).
const LINES_PER_STEP: usize = 12;

/// The cat scenario.
pub struct CatScenario {
    total_bytes: u64,
    consumed: u64,
    line_no: u64,
    term: Option<TermWindow>,
    cat: Option<Vpid>,
    fd: Option<u32>,
    rng: StdRng,
}

impl CatScenario {
    /// Creates the scenario; `scale` = 1.0 dumps a 17 MB file.
    pub fn new(scale: f64) -> Self {
        CatScenario {
            total_bytes: ((17.0 * scale) * 1048576.0).ceil() as u64,
            consumed: 0,
            line_no: 0,
            term: None,
            cat: None,
            fd: None,
            rng: StdRng::seed_from_u64(0xca7),
        }
    }
}

impl Scenario for CatScenario {
    fn name(&self) -> &'static str {
        "cat"
    }

    fn description(&self) -> &'static str {
        "cat a 17 MB system log file"
    }

    fn setup(&mut self, dv: &mut DejaView) {
        let (w, h) = (dv.driver_mut().width(), dv.driver_mut().height());
        self.term = Some(TermWindow::open(
            dv,
            "xterm",
            "cat /var/log/syslog - xterm",
            Rect::new(0, 0, w, h),
        ));
        dv.vee_mut().fs.mkdir_all("/var/log").expect("mkdir");
        dv.vee_mut().fs.create("/var/log/syslog").expect("create");
        let mut offset = 0u64;
        while offset < self.total_bytes {
            let n = (256 << 10).min((self.total_bytes - offset) as usize);
            let data = loggy_bytes(&mut self.rng, n);
            dv.vee_mut()
                .fs
                .write_at("/var/log/syslog", offset, &data)
                .expect("seed log");
            offset += n as u64;
        }
        dv.vee_mut().fs.sync().expect("sync");
        let init = dv.init_vpid();
        let cat = dv.vee_mut().spawn(Some(init), "cat").expect("spawn");
        let fd = dv.vee_mut().open(cat, "/var/log/syslog").expect("open");
        self.cat = Some(cat);
        self.fd = Some(fd);
    }

    fn step(&mut self, dv: &mut DejaView) -> bool {
        let cat = self.cat.expect("setup ran");
        let chunk = dv
            .vee_mut()
            .fd_read(cat, self.fd.expect("setup"), CHUNK)
            .expect("read");
        if chunk.is_empty() {
            return false;
        }
        self.consumed += chunk.len() as u64;
        // The terminal renders the tail of the burst: one scroll jump
        // and a batch of fresh lines, as terminals repaint under fast
        // output.
        let term = self.term.as_ref().expect("setup ran");
        let mut lines = Vec::with_capacity(LINES_PER_STEP);
        for i in 0..LINES_PER_STEP {
            self.line_no += 1;
            let start = (i * 60).min(chunk.len().saturating_sub(60));
            let text: String = chunk[start..(start + 60).min(chunk.len())]
                .iter()
                .map(|&b| if b.is_ascii_graphic() { b as char } else { ' ' })
                .collect();
            lines.push(format!("{:>8}: {}", self.line_no, text));
        }
        term.print_lines(dv, &lines);
        self.consumed < self.total_bytes
    }

    fn step_duration(&self) -> Duration {
        Duration::from_millis(30)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{run_scenario, RunOptions};
    use dejaview::Config;

    #[test]
    fn cat_is_display_intensive() {
        let mut dv = DejaView::new(Config::default());
        let mut scenario = CatScenario::new(0.02); // ~360 KB, 6 steps.
        let summary = run_scenario(&mut dv, &mut scenario, RunOptions::default());
        assert!(summary.steps >= 5);
        let stats = dv.driver_mut().stats();
        // Scrolls and glyph lines dominate.
        assert!(stats.copies >= summary.steps);
        assert!(stats.glyphs >= summary.steps * LINES_PER_STEP as u64);
    }
}
