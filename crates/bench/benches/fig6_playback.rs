//! Criterion wrapper for Figure 6 playback speedup: one full experiment pass per
//! iteration at a small scale. The `reproduce` binary prints the
//! paper-layout rows; this bench tracks the end-to-end cost over time.

use criterion::{criterion_group, criterion_main, Criterion};
use dv_bench::fig6_playback;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig6_playback");
    group.sample_size(10);
    group.bench_function("scale_0.05", |b| {
        b.iter(|| fig6_playback(0.05));
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
