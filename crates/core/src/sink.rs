//! The bridge from the capture daemon to the text index.
//!
//! Includes FOCAL-style capture-time filtering: a text state whose
//! content fingerprint is already visible on screen is skipped before
//! it ever reaches the index, so a workload that re-renders the same
//! screen costs no index growth (the lineage is FOCAL's
//! redundant-state suppression; see PAPERS.md). Suppressed captures
//! coalesce into the one indexed representative of their fingerprint,
//! which stays open until the *last* capture showing that content
//! hides — so visible content is always searchable even when several
//! nodes showed the same text.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;

use dv_access::{AppId, Role, TextInstance, TextSink};
use dv_index::{IndexedInstance, TextIndex};
use dv_obs::{names, Obs};
use dv_time::Timestamp;

/// Returns the index tag for an accessibility role — the "special
/// properties about the text (e.g. if it is a menu item or an HTML
/// link)" §4.2 captures.
pub fn role_tag(role: Role) -> &'static str {
    match role {
        Role::Application => "application",
        Role::Window => "window",
        Role::Document => "document",
        Role::Paragraph => "paragraph",
        Role::MenuItem => "menuitem",
        Role::Link => "link",
        Role::Button => "button",
        Role::TextInput => "textinput",
        Role::Label => "label",
        Role::Terminal => "terminal",
    }
}

/// Content fingerprint of a captured text state (FNV-1a over the
/// fields that determine what the user saw).
fn fingerprint(instance: &TextInstance) -> u64 {
    fn eat(mut h: u64, bytes: &[u8]) -> u64 {
        for b in bytes {
            h = (h ^ *b as u64).wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    h = eat(h, &instance.app.0.to_le_bytes());
    h = eat(h, instance.window.as_bytes());
    h = eat(h, &[instance.role as u8]);
    eat(h, instance.text.as_bytes())
}

/// The live captures sharing one content fingerprint: the indexed
/// representative and how many shown-but-not-yet-hidden captures
/// (including the representative) it stands in for.
struct FpGroup {
    rep: u64,
    members: usize,
}

/// A [`TextSink`] writing into a shared [`TextIndex`].
pub struct IndexSink {
    index: Arc<Mutex<TextIndex>>,
    filter_redundant: bool,
    /// Fingerprint → its live group. An incoming state matching a live
    /// fingerprint is redundant: that content is already on screen and
    /// indexed.
    live: HashMap<u64, FpGroup>,
    /// Capture id → the fingerprint group it belongs to (suppressed
    /// ids included, so their hide events keep the group's count
    /// honest).
    by_id: HashMap<u64, u64>,
    obs: Obs,
}

impl IndexSink {
    /// Creates a sink over the shared index (redundant-state filtering
    /// off).
    pub fn new(index: Arc<Mutex<TextIndex>>) -> Self {
        IndexSink {
            index,
            filter_redundant: false,
            live: HashMap::new(),
            by_id: HashMap::new(),
            obs: Obs::disabled(),
        }
    }

    /// Enables or disables FOCAL-style redundant-state filtering.
    pub fn with_filter(mut self, enabled: bool) -> Self {
        self.filter_redundant = enabled;
        self
    }

    /// Installs the observability handle (`tidx.filtered` /
    /// `tidx.ingested` accounting).
    pub fn set_obs(&mut self, obs: Obs) {
        self.obs = obs;
    }
}

impl TextSink for IndexSink {
    fn text_shown(&mut self, instance: TextInstance) {
        // Annotations are deliberate user actions, never redundant.
        if self.filter_redundant && !instance.annotation {
            let fp = fingerprint(&instance);
            if let Some(group) = self.live.get_mut(&fp) {
                // Identical content is already visible — a re-capture
                // of the same node, or a second node showing the same
                // text. The representative keeps covering it.
                group.members += 1;
                self.by_id.insert(instance.id, fp);
                self.obs.incr(names::TIDX_FILTERED);
                return;
            }
            self.live.insert(
                fp,
                FpGroup {
                    rep: instance.id,
                    members: 1,
                },
            );
            self.by_id.insert(instance.id, fp);
        }
        self.obs.incr(names::TIDX_INGESTED);
        self.index.lock().add_instance(IndexedInstance {
            id: instance.id,
            app_id: instance.app.0,
            app: instance.app_name,
            window: instance.window,
            role: role_tag(instance.role).to_string(),
            text: instance.text,
            shown: instance.time,
            hidden: None,
            annotation: instance.annotation,
        });
    }

    fn text_hidden(&mut self, id: u64, time: Timestamp) {
        if let Some(fp) = self.by_id.remove(&id) {
            if let Some(group) = self.live.get_mut(&fp) {
                group.members -= 1;
                if group.members > 0 {
                    // The same content is still on screen via another
                    // live capture; the representative stays open so
                    // visible content remains searchable.
                    return;
                }
                let rep = group.rep;
                self.live.remove(&fp);
                self.index.lock().close_instance(rep, time);
                return;
            }
        }
        self.index.lock().close_instance(id, time);
    }

    fn focus_changed(&mut self, app: AppId, time: Timestamp) {
        self.index.lock().focus_change(app.0, time);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sink_feeds_the_index() {
        let index = Arc::new(Mutex::new(TextIndex::new()));
        let mut sink = IndexSink::new(index.clone());
        sink.text_shown(TextInstance {
            id: 1,
            time: Timestamp::from_secs(1),
            app: AppId(7),
            app_name: "firefox".into(),
            window: "tab".into(),
            role: Role::Link,
            text: "click here".into(),
            annotation: false,
        });
        sink.text_hidden(1, Timestamp::from_secs(5));
        sink.focus_changed(AppId(7), Timestamp::from_secs(2));
        let index = index.lock();
        let hits = index.term_instances("click");
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].app, "firefox");
        assert_eq!(hits[0].role, "link");
        assert_eq!(hits[0].hidden, Some(Timestamp::from_secs(5)));
        assert_eq!(index.focus_history(), &[(7, Timestamp::from_secs(2))]);
    }

    fn shown(id: u64, secs: u64, text: &str) -> TextInstance {
        TextInstance {
            id,
            time: Timestamp::from_secs(secs),
            app: AppId(7),
            app_name: "firefox".into(),
            window: "tab".into(),
            role: Role::Paragraph,
            text: text.into(),
            annotation: false,
        }
    }

    #[test]
    fn redundant_states_are_filtered_at_capture_time() {
        let index = Arc::new(Mutex::new(TextIndex::new()));
        let obs = Obs::wall(dv_time::SimClock::new().shared());
        let mut sink = IndexSink::new(index.clone()).with_filter(true);
        sink.set_obs(obs.clone());
        // The same display state re-captured three times: one instance.
        sink.text_shown(shown(1, 1, "same content"));
        sink.text_shown(shown(2, 2, "same content"));
        sink.text_shown(shown(3, 3, "same content"));
        // Different content indexes normally.
        sink.text_shown(shown(4, 4, "new content"));
        assert_eq!(index.lock().stats().instances, 2);
        assert_eq!(obs.counter(names::TIDX_FILTERED), 2);
        assert_eq!(obs.counter(names::TIDX_INGESTED), 2);
        // Hiding the last copy retires its fingerprint: the re-shown
        // state is a new visibility interval, not a redundant capture.
        sink.text_hidden(4, Timestamp::from_secs(5));
        sink.text_shown(shown(5, 6, "new content"));
        assert_eq!(index.lock().stats().instances, 3);
        // Closing a filtered instance id is harmless (the daemon may
        // hide an instance the filter never indexed).
        sink.text_hidden(2, Timestamp::from_secs(7));
        assert_eq!(obs.counter(names::TIDX_FILTERED), 2);
    }

    /// Two distinct nodes showing identical content coalesce into one
    /// indexed instance that stays open until the *last* copy hides —
    /// visible content must never become unsearchable because an
    /// identical sibling was filtered.
    #[test]
    fn duplicate_content_stays_visible_until_the_last_copy_hides() {
        let index = Arc::new(Mutex::new(TextIndex::new()));
        let mut sink = IndexSink::new(index.clone()).with_filter(true);
        sink.text_shown(shown(1, 1, "dup content"));
        sink.text_shown(shown(2, 1, "dup content"));
        // The first node hides; the duplicate is still on screen.
        sink.text_hidden(1, Timestamp::from_secs(5));
        {
            let idx = index.lock();
            let hits = idx.term_instances("dup");
            assert_eq!(hits.len(), 1);
            assert_eq!(hits[0].hidden, None, "content is still on screen");
        }
        // The last copy hiding closes the coalesced instance there.
        sink.text_hidden(2, Timestamp::from_secs(9));
        let idx = index.lock();
        assert_eq!(
            idx.term_instances("dup")[0].hidden,
            Some(Timestamp::from_secs(9))
        );
    }

    /// The filter keys per fingerprint, not on the single most recent
    /// capture, so a multi-node screen re-captured wholesale still
    /// dedups every node.
    #[test]
    fn interleaved_nodes_filter_independently() {
        let index = Arc::new(Mutex::new(TextIndex::new()));
        let obs = Obs::wall(dv_time::SimClock::new().shared());
        let mut sink = IndexSink::new(index.clone()).with_filter(true);
        sink.set_obs(obs.clone());
        sink.text_shown(shown(1, 1, "pane left"));
        sink.text_shown(shown(2, 1, "pane right"));
        // A re-capture of the whole screen: both states are redundant
        // even though neither was the most recent capture.
        sink.text_shown(shown(3, 2, "pane left"));
        sink.text_shown(shown(4, 2, "pane right"));
        assert_eq!(index.lock().stats().instances, 2);
        assert_eq!(obs.counter(names::TIDX_FILTERED), 2);
    }

    #[test]
    fn filter_disabled_indexes_everything() {
        let index = Arc::new(Mutex::new(TextIndex::new()));
        let mut sink = IndexSink::new(index.clone());
        sink.text_shown(shown(1, 1, "same content"));
        sink.text_shown(shown(2, 2, "same content"));
        assert_eq!(index.lock().stats().instances, 2);
    }

    #[test]
    fn role_tags_are_distinct() {
        let all = [
            Role::Application,
            Role::Window,
            Role::Document,
            Role::Paragraph,
            Role::MenuItem,
            Role::Link,
            Role::Button,
            Role::TextInput,
            Role::Label,
            Role::Terminal,
        ];
        let tags: std::collections::HashSet<&str> = all.iter().map(|r| role_tag(*r)).collect();
        assert_eq!(tags.len(), all.len());
    }
}
