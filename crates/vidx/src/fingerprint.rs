//! Perceptual gradient fingerprints of keyframe thumbnails.
//!
//! A fingerprint is a 256-bit dHash: the thumbnail is reduced to a
//! 17x16 grid of block-averaged luma values and each bit records
//! whether luma increases left-to-right between horizontally adjacent
//! cells. Gradients survive the distortions visual recall must shrug
//! off — brightness shifts, thumbnail rescaling, small redraws —
//! while distinct screens land far apart in Hamming distance.
//!
//! The bit layout is chosen for the band-partitioned index: row `r`'s
//! sixteen gradient bits are exactly band `r` ([`Fingerprint::band`]),
//! so two fingerprints within Hamming distance [`EXACT_RADIUS`] must
//! agree on at least one whole band (pigeonhole over [`BANDS`]
//! disjoint 16-bit bands).

use dv_display::Screenshot;

/// Total fingerprint bits.
pub const FP_BITS: usize = 256;

/// Disjoint 16-bit bands the index partitions a fingerprint into.
pub const BANDS: usize = 16;

/// Bits per band.
pub const BAND_BITS: usize = FP_BITS / BANDS;

/// Pigeonhole radius: any two fingerprints with Hamming distance at
/// most `BANDS - 1` share at least one exact band, so band-bucket
/// candidate sets provably contain every neighbour this close.
pub const EXACT_RADIUS: u32 = (BANDS - 1) as u32;

/// Grid geometry: `GRID_ROWS` rows of `GRID_COLS` luma samples give
/// `GRID_ROWS x (GRID_COLS - 1)` horizontal gradients = [`FP_BITS`].
const GRID_ROWS: usize = 16;
const GRID_COLS: usize = 17;

/// A 256-bit perceptual thumbnail fingerprint.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub struct Fingerprint(pub [u64; 4]);

impl Fingerprint {
    /// Hamming distance to `other`.
    pub fn distance(&self, other: &Fingerprint) -> u32 {
        self.0
            .iter()
            .zip(other.0.iter())
            .map(|(a, b)| (a ^ b).count_ones())
            .sum()
    }

    /// The `i`-th 16-bit band (`i < BANDS`); band `i` is row `i`'s
    /// gradient bits.
    pub fn band(&self, i: usize) -> u16 {
        ((self.0[i / 4] >> ((i % 4) * 16)) & 0xFFFF) as u16
    }

    /// Derives the fingerprint of a screenshot (normally an
    /// already-downscaled thumbnail; any geometry works — the grid
    /// averages whatever pixels each cell covers).
    pub fn from_screenshot(shot: &Screenshot) -> Fingerprint {
        let grid = luma_grid(shot);
        let mut words = [0u64; 4];
        for (r, row) in grid.iter().enumerate() {
            for c in 0..GRID_COLS - 1 {
                if row[c + 1] > row[c] {
                    let bit = r * (GRID_COLS - 1) + c;
                    words[bit / 64] |= 1 << (bit % 64);
                }
            }
        }
        Fingerprint(words)
    }
}

/// Block-averaged luma over a `GRID_ROWS x GRID_COLS` grid. Integer
/// ITU-R 601 weights (77, 150, 29 out of 256) — no floats, so the
/// same screen always hashes identically.
fn luma_grid(shot: &Screenshot) -> [[u32; GRID_COLS]; GRID_ROWS] {
    let mut grid = [[0u32; GRID_COLS]; GRID_ROWS];
    let (w, h) = (shot.width as usize, shot.height as usize);
    if w == 0 || h == 0 || shot.pixels.is_empty() {
        return grid;
    }
    for (r, row) in grid.iter_mut().enumerate() {
        // Cell bounds round to cover the whole image; a degenerate
        // (too-small) axis clamps to at least one source pixel.
        let y0 = (r * h / GRID_ROWS).min(h - 1);
        let y1 = (((r + 1) * h).div_ceil(GRID_ROWS)).clamp(y0 + 1, h);
        for (c, cell) in row.iter_mut().enumerate() {
            let x0 = (c * w / GRID_COLS).min(w - 1);
            let x1 = (((c + 1) * w).div_ceil(GRID_COLS)).clamp(x0 + 1, w);
            let mut sum = 0u64;
            for y in y0..y1 {
                for x in x0..x1 {
                    let px = shot.pixels[y * w + x];
                    let (red, green, blue) = (px >> 16 & 0xFF, px >> 8 & 0xFF, px & 0xFF);
                    sum += (77 * red + 150 * green + 29 * blue) as u64 >> 8;
                }
            }
            *cell = (sum / ((y1 - y0) * (x1 - x0)) as u64) as u32;
        }
    }
    grid
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn shot(w: u32, h: u32, f: impl Fn(u32, u32) -> u32) -> Screenshot {
        let f = &f;
        let pixels = (0..h).flat_map(|y| (0..w).map(move |x| f(x, y))).collect();
        Screenshot {
            width: w,
            height: h,
            pixels: Arc::new(pixels),
        }
    }

    #[test]
    fn self_distance_is_zero_and_distance_is_symmetric() {
        let a = Fingerprint::from_screenshot(&shot(64, 48, |x, y| x * 7 + y * 3));
        let b = Fingerprint::from_screenshot(&shot(64, 48, |x, y| x ^ y));
        assert_eq!(a.distance(&a), 0);
        assert_eq!(a.distance(&b), b.distance(&a));
    }

    #[test]
    fn bands_partition_all_bits() {
        let fp = Fingerprint([u64::MAX, 0, 0xDEAD_BEEF_0123_4567, 42]);
        let total: u32 = (0..BANDS).map(|i| fp.band(i).count_ones()).sum();
        assert_eq!(total, fp.0.iter().map(|w| w.count_ones()).sum::<u32>());
        assert_eq!(fp.band(0), 0xFFFF);
        assert_eq!(fp.band(4), 0);
    }

    #[test]
    fn gradients_ignore_uniform_brightness_shift() {
        let dark = shot(68, 48, |x, y| {
            let v = (x * 2 + y) & 0x7F;
            v << 16 | v << 8 | v
        });
        let bright = shot(68, 48, |x, y| {
            let v = ((x * 2 + y) & 0x7F) + 0x60;
            v << 16 | v << 8 | v
        });
        let a = Fingerprint::from_screenshot(&dark);
        let b = Fingerprint::from_screenshot(&bright);
        assert!(
            a.distance(&b) <= 4,
            "brightness shift moved {} bits",
            a.distance(&b)
        );
    }

    #[test]
    fn distinct_screens_are_far_apart() {
        let grey = |v: u32| v << 16 | v << 8 | v;
        let rising = shot(64, 48, |x, _| grey((x * 4).min(255)));
        let falling = shot(64, 48, |x, _| grey(255u32.saturating_sub(x * 4)));
        let a = Fingerprint::from_screenshot(&rising);
        let b = Fingerprint::from_screenshot(&falling);
        assert_eq!(
            a.distance(&b),
            FP_BITS as u32,
            "opposite ramps disagree everywhere"
        );
        assert!(a.distance(&b) > EXACT_RADIUS);
    }

    #[test]
    fn degenerate_screens_hash_without_panicking() {
        for (w, h) in [(0, 0), (1, 1), (3, 2), (16, 1), (1, 300)] {
            let fp = Fingerprint::from_screenshot(&shot(w, h, |x, y| x + y));
            let _ = fp.distance(&Fingerprint::default());
        }
    }
}
