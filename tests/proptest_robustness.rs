//! Robustness: decoders over hostile bytes.
//!
//! Every on-disk/wire format must reject arbitrary corruption with an
//! error — never a panic, never an out-of-bounds access. Proptest feeds
//! each decoder random bytes and randomly mutated valid encodings.

use std::sync::Arc;

use proptest::prelude::*;

use dv_checkpoint::{decode_image, decompress};
use dv_display::{decode_command, encode_command_vec, DisplayCommand, Rect};
use dv_index::decode_index;
use dv_lsfs::journal::FsOp;
use dv_record::{decode_record, decode_screenshot, Timeline};
use dv_time::Timestamp;

fn valid_command_bytes() -> Vec<u8> {
    encode_command_vec(&DisplayCommand::Raw {
        rect: Rect::new(1, 2, 8, 4),
        pixels: Arc::new((0..32).collect()),
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Random bytes never panic any decoder.
    #[test]
    fn decoders_survive_random_bytes(data in prop::collection::vec(any::<u8>(), 0..512)) {
        let mut slice = data.as_slice();
        let _ = decode_command(&mut slice);
        let _ = decode_screenshot(&data);
        let _ = Timeline::decode(&data);
        let _ = decode_image(&data);
        let _ = decode_index(&data);
        let _ = decode_record(&data);
        let _ = decompress(&data);
        let _ = FsOp::decode(&data);
    }

    /// Mutating one byte of a valid command either still decodes (the
    /// flip hit payload data) or errors cleanly — and a re-decodable
    /// result re-encodes without panicking.
    #[test]
    fn mutated_commands_never_panic(idx in 0usize..100, value in any::<u8>()) {
        let mut bytes = valid_command_bytes();
        let idx = idx % bytes.len();
        bytes[idx] = value;
        let mut slice = bytes.as_slice();
        if let Ok(cmd) = decode_command(&mut slice) {
            let _ = encode_command_vec(&cmd);
        }
    }

    /// Truncations of a valid image never panic the image decoder.
    #[test]
    fn truncated_images_error_cleanly(cut in 0usize..4_000) {
        let image = dv_checkpoint::CheckpointImage {
            counter: 3,
            time: Timestamp::from_secs(1),
            kind: dv_checkpoint::ImageKind::Full,
            hostname: "h".into(),
            network_enabled: true,
            processes: vec![],
            sockets: vec![],
        };
        let bytes = dv_checkpoint::encode_image(&image);
        let cut = cut % (bytes.len() + 1);
        if cut < bytes.len() {
            prop_assert!(decode_image(&bytes[..cut]).is_err());
        } else {
            prop_assert!(decode_image(&bytes).is_ok());
        }
    }
}
