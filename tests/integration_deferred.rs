//! Integration tests for the deferred checkpoint write-back pipeline.
//!
//! Two invariants beyond the engine's unit tests:
//!
//! 1. **Capture isolation** — the session may dirty pages the instant
//!    `checkpoint` returns, while the commit is still in flight on a
//!    worker thread; every committed image must nevertheless restore
//!    the capture-time state, not the later one.
//! 2. **Drain accounting** — when the store fails mid-queue, `flush()`
//!    surfaces the error and every queued image is accounted for as
//!    either committed or failed; the next checkpoint re-anchors full.

mod common;

use dv_checkpoint::{revive, Checkpointer, EngineConfig, NetworkPolicy};
use dv_fault::{sites, FaultPlan, IoFault};
use dv_lsfs::{FsError, Lsfs, SharedBlobStore};
use dv_time::SimClock;
use dv_vee::{HostPidAllocator, Prot, Vee, Vpid, PAGE_SIZE};

const PAGES: u64 = 16;

fn session(clock: &SimClock) -> (Vee, Vpid, u64) {
    let mut vee = Vee::new(
        1,
        clock.shared(),
        Box::new(Lsfs::new()),
        HostPidAllocator::new(),
    );
    let p = vee.spawn(None, "app").unwrap();
    let addr = vee
        .mmap(p, PAGES * PAGE_SIZE as u64, Prot::ReadWrite)
        .unwrap();
    (vee, p, addr)
}

fn fill(vee: &mut Vee, p: Vpid, addr: u64, round: u64) {
    // Touch every page with round-tagged contents so each checkpoint's
    // capture-time state is distinct from every other round's.
    for page in 0..PAGES {
        let byte = (round * 31 + page * 7 + 1) as u8;
        vee.mem_write(p, addr + page * PAGE_SIZE as u64, &[byte; 256])
            .unwrap();
    }
}

/// Checkpoints race with the session dirtying pages: each committed
/// image restores its capture-time snapshot even though the memory was
/// overwritten before (and while) the commit ran.
#[test]
fn commits_in_flight_are_isolated_from_later_writes() {
    let clock = SimClock::new();
    let (mut vee, p, addr) = session(&clock);
    let mut engine = Checkpointer::with_sim_clock(
        EngineConfig {
            full_every: 3,
            compress: true,
            commit_workers: 2,
            commit_queue_depth: 32,
            ..EngineConfig::default()
        },
        clock.clone(),
    );
    let store = SharedBlobStore::in_memory();

    let rounds = 8u64;
    let mut captured = Vec::new();
    for round in 1..=rounds {
        fill(&mut vee, p, addr, round);
        let report = engine.checkpoint(&mut vee, &store).unwrap();
        assert_eq!(report.counter, round);
        captured.push(
            vee.mem_read(p, addr, (PAGES * PAGE_SIZE as u64) as usize)
                .unwrap(),
        );
        // Immediately clobber the pages the in-flight commit is
        // compressing — capture must have copied them already.
        fill(&mut vee, p, addr, round + 1000);
        clock.advance(dv_time::Duration::from_secs(1));
    }
    engine.flush().unwrap();

    let stats = engine.stats();
    assert_eq!(stats.queued, rounds);
    assert_eq!(stats.committed, rounds);
    assert_eq!(stats.write_failures, 0);

    for round in 1..=rounds {
        let chain = engine.chain_for(round).expect("chain");
        let (revived, _) = revive(
            &mut store.lock(),
            engine.blob_prefix(),
            &chain,
            true,
            2,
            clock.shared(),
            Box::new(Lsfs::new()),
            HostPidAllocator::new(),
            &NetworkPolicy::default(),
        )
        .expect("revive");
        let restored = revived
            .mem_read(p, addr, (PAGES * PAGE_SIZE as u64) as usize)
            .unwrap();
        assert_eq!(
            restored,
            captured[round as usize - 1],
            "checkpoint {round} restored post-capture writes"
        );
    }
}

/// ENOSPC mid-queue: `flush()` returns the failure, every queued image
/// is accounted as committed or failed, the failed suffix is dropped
/// from the history, and the next checkpoint re-anchors with a full.
#[test]
fn drain_under_fault_accounts_every_queued_image() {
    let plane = FaultPlan::new(common::seed_for("deferred-drain"))
        .fail_nth(sites::CHECKPOINT_WRITEBACK, 3, IoFault::Enospc)
        .build();
    let clock = SimClock::new();
    let (mut vee, p, addr) = session(&clock);
    let mut engine = Checkpointer::with_sim_clock(
        EngineConfig {
            // One long incremental chain so the failed commit cascades
            // into every later one still in the queue.
            full_every: 100,
            compress: true,
            commit_workers: 1,
            commit_queue_depth: 8,
            commit_retry_limit: 0,
            ..EngineConfig::default()
        },
        clock.clone(),
    );
    engine.set_fault_plane(plane);
    let store = SharedBlobStore::in_memory();

    // Hold the store lock while every round enqueues: the worker's
    // first commit blocks on the store, so the faulted third commit
    // cannot resolve (and the engine cannot reap it and re-anchor
    // full) until the whole incremental chain is queued. Without this
    // the cascade accounting below would race the worker thread.
    let rounds = 6u64;
    {
        let _pin_commits = store.lock();
        for round in 1..=rounds {
            fill(&mut vee, p, addr, round);
            engine.checkpoint(&mut vee, &store).unwrap();
            clock.advance(dv_time::Duration::from_secs(1));
        }
    }
    assert_eq!(engine.flush(), Err(FsError::NoSpace));

    // Accounting: nothing queued goes missing.
    let stats = engine.stats();
    assert_eq!(stats.queued, rounds);
    assert_eq!(stats.queued, stats.committed + stats.write_failures);
    assert_eq!(stats.committed, 2, "commits before the fault survive");
    assert_eq!(
        stats.write_failures, 4,
        "one direct failure plus three cascaded incrementals"
    );

    // The retained history is exactly the committed prefix.
    let counters: Vec<u64> = engine.images().map(|m| m.counter).collect();
    assert_eq!(counters, vec![1, 2]);
    assert_eq!(engine.inflight(), 0);

    // The next checkpoint re-anchors: a full image that commits fine
    // (the one-shot fault has already fired) and revives on its own.
    fill(&mut vee, p, addr, 42);
    let expected = vee
        .mem_read(p, addr, (PAGES * PAGE_SIZE as u64) as usize)
        .unwrap();
    let report = engine.checkpoint(&mut vee, &store).unwrap();
    assert!(report.full, "post-failure checkpoint must re-anchor full");
    engine.flush().unwrap();
    let chain = engine.chain_for(report.counter).expect("chain");
    assert_eq!(chain, vec![report.counter], "full image needs no parents");
    let (revived, _) = revive(
        &mut store.lock(),
        engine.blob_prefix(),
        &chain,
        true,
        2,
        clock.shared(),
        Box::new(Lsfs::new()),
        HostPidAllocator::new(),
        &NetworkPolicy::default(),
    )
    .expect("revive after re-anchor");
    let restored = revived
        .mem_read(p, addr, (PAGES * PAGE_SIZE as u64) as usize)
        .unwrap();
    assert_eq!(restored, expected);
}
