//! Server error type.

use std::fmt;

use dv_checkpoint::ReviveError;
use dv_index::ParseError;
use dv_lsfs::FsError;
use dv_record::PlaybackError;
use dv_vee::VeeError;

/// Errors returned by the DejaView server API.
#[derive(Clone, PartialEq, Debug)]
pub enum ServerError {
    /// No checkpoint exists at or before the requested time.
    NoCheckpoint,
    /// No such revived session.
    UnknownSession(u64),
    /// No search result at that gallery index.
    NoSuchResult(usize),
    /// A playback operation failed.
    Playback(PlaybackError),
    /// A query failed to parse.
    Query(ParseError),
    /// A revive failed.
    Revive(ReviveError),
    /// A file system operation failed.
    Fs(FsError),
    /// A VEE operation failed.
    Vee(VeeError),
}

impl fmt::Display for ServerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServerError::NoCheckpoint => {
                write!(f, "no checkpoint exists at or before the requested time")
            }
            ServerError::UnknownSession(id) => write!(f, "no revived session {id}"),
            ServerError::NoSuchResult(idx) => write!(f, "no search result at index {idx}"),
            ServerError::Playback(e) => write!(f, "playback: {e}"),
            ServerError::Query(e) => write!(f, "{e}"),
            ServerError::Revive(e) => write!(f, "revive: {e}"),
            ServerError::Fs(e) => write!(f, "file system: {e}"),
            ServerError::Vee(e) => write!(f, "session: {e}"),
        }
    }
}

impl std::error::Error for ServerError {}

impl From<PlaybackError> for ServerError {
    fn from(e: PlaybackError) -> Self {
        ServerError::Playback(e)
    }
}

impl From<ParseError> for ServerError {
    fn from(e: ParseError) -> Self {
        ServerError::Query(e)
    }
}

impl From<ReviveError> for ServerError {
    fn from(e: ReviveError) -> Self {
        ServerError::Revive(e)
    }
}

impl From<FsError> for ServerError {
    fn from(e: FsError) -> Self {
        ServerError::Fs(e)
    }
}

impl From<VeeError> for ServerError {
    fn from(e: VeeError) -> Self {
        ServerError::Vee(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        assert!(ServerError::NoCheckpoint.to_string().contains("checkpoint"));
        assert!(ServerError::UnknownSession(3).to_string().contains('3'));
        assert!(ServerError::from(FsError::NotFound)
            .to_string()
            .contains("file system"));
    }
}
