//! Branching: several revived sessions diverge from one checkpoint
//! (§5.2's branchable file system + private namespaces).
//!
//! "This enables the user to start with the same information, but to
//! process it in separate revived sessions in different directions."
//!
//! Run with: `cargo run --example branching_sessions`

use dejaview::{Config, DejaView};
use dv_time::Duration;

fn main() {
    let mut dv = DejaView::new(Config::default());
    let clock = dv.clock();
    let init = dv.init_vpid();

    // The original session drafts a report.
    dv.vee_mut().spawn(Some(init), "openoffice").unwrap();
    dv.vee_mut().fs.mkdir_all("/home/user").unwrap();
    dv.vee_mut()
        .fs
        .write_all("/home/user/report.txt", b"Common introduction.\n")
        .unwrap();
    dv.driver_mut().fill_rect(
        dv_display::Rect::new(0, 0, 1024, 768),
        dv_display::rgb(50, 50, 50),
    );
    clock.advance(Duration::from_secs(1));
    let tick = dv.policy_tick().unwrap();
    let counter = tick.report.expect("checkpoint taken").counter;
    println!("checkpointed the draft at counter {counter}");

    // Three branches from the same checkpoint.
    let optimistic = dv.revive_counter(counter).unwrap();
    let cautious = dv.revive_counter(counter).unwrap();
    let archive = dv.revive_counter(counter).unwrap();
    println!("revived sessions: {:?}", dv.sessions());

    // Each branch edits the same file differently; none interfere.
    dv.session_mut(optimistic)
        .unwrap()
        .vee
        .fs
        .write_at("/home/user/report.txt", 21, b"We will ship in Q3!\n")
        .unwrap();
    dv.session_mut(cautious)
        .unwrap()
        .vee
        .fs
        .write_at("/home/user/report.txt", 21, b"Risks remain; defer.\n")
        .unwrap();
    dv.session_mut(archive)
        .unwrap()
        .vee
        .fs
        .unlink("/home/user/report.txt")
        .unwrap();

    for id in dv.sessions() {
        let session = dv.session(id).unwrap();
        match session.vee.fs.read_all("/home/user/report.txt") {
            Ok(contents) => println!(
                "session {id}: report.txt = {:?}",
                String::from_utf8_lossy(&contents)
            ),
            Err(e) => println!("session {id}: report.txt deleted ({e})"),
        }
    }

    // The virtual namespaces reuse identical virtual PIDs concurrently.
    let a = dv.session(optimistic).unwrap();
    let b = dv.session(cautious).unwrap();
    let vpids_a: Vec<_> = a.vee.processes().map(|p| p.vpid).collect();
    let vpids_b: Vec<_> = b.vee.processes().map(|p| p.vpid).collect();
    assert_eq!(vpids_a, vpids_b, "same virtual names in both branches");
    let host_a: Vec<_> = a.vee.processes().map(|p| p.host_pid).collect();
    let host_b: Vec<_> = b.vee.processes().map(|p| p.host_pid).collect();
    assert_ne!(host_a, host_b, "different host resources underneath");
    println!(
        "branches share virtual pids {vpids_a:?} over distinct host pids {host_a:?} / {host_b:?}"
    );

    // The live session's file is untouched by any branch.
    let live = dv.vee().fs.read_all("/home/user/report.txt").unwrap();
    println!(
        "live session: report.txt = {:?}",
        String::from_utf8_lossy(&live)
    );
    assert_eq!(live, b"Common introduction.\n");

    // A branch can launch new work: new apps get network by default.
    let session = dv.session_mut(optimistic).unwrap();
    let new_app = session.launch(None, "browser").unwrap();
    assert!(session.vee.process(new_app).unwrap().net_allowed);
    println!("launched vpid {new_app:?} in branch {optimistic} with network access");
}
