//! File system error types.

use std::fmt;

/// Result alias for file system operations.
pub type FsResult<T> = Result<T, FsError>;

/// Errors returned by file system operations, mirroring the POSIX errors
/// the corresponding syscalls would produce.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FsError {
    /// A path component does not exist (`ENOENT`).
    NotFound,
    /// A non-final path component is not a directory (`ENOTDIR`).
    NotADirectory,
    /// A file operation was applied to a directory (`EISDIR`).
    IsADirectory,
    /// The target already exists (`EEXIST`).
    AlreadyExists,
    /// A directory is not empty (`ENOTEMPTY`).
    NotEmpty,
    /// The file system (or this view of it) is read-only (`EROFS`).
    ReadOnly,
    /// A malformed path (empty component, not absolute, `.`/`..`).
    InvalidPath,
    /// A handle is not open (`EBADF`).
    BadHandle,
    /// An operation crossed file systems where it must not (`EXDEV`).
    CrossDevice,
    /// The file system does not support the operation (`ENOTSUP`).
    Unsupported,
    /// The operation cannot run while the resource is in use (`EBUSY`).
    Busy,
    /// A low-level input/output failure (`EIO`) — torn or failed device
    /// write, unreadable journal record.
    Io,
    /// The device is out of space (`ENOSPC`).
    NoSpace,
}

impl fmt::Display for FsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let msg = match self {
            FsError::NotFound => "no such file or directory",
            FsError::NotADirectory => "not a directory",
            FsError::IsADirectory => "is a directory",
            FsError::AlreadyExists => "file exists",
            FsError::NotEmpty => "directory not empty",
            FsError::ReadOnly => "read-only file system",
            FsError::InvalidPath => "invalid path",
            FsError::BadHandle => "bad file handle",
            FsError::CrossDevice => "cross-device link",
            FsError::Unsupported => "operation not supported",
            FsError::Busy => "resource busy",
            FsError::Io => "input/output error",
            FsError::NoSpace => "no space left on device",
        };
        f.write_str(msg)
    }
}

impl std::error::Error for FsError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display_posix_style_messages() {
        assert_eq!(FsError::NotFound.to_string(), "no such file or directory");
        assert_eq!(FsError::ReadOnly.to_string(), "read-only file system");
    }
}
