//! Umbrella crate for the DejaView reproduction workspace.
//!
//! This crate exists to host the cross-crate integration tests in
//! `tests/` and the runnable examples in `examples/`. The actual
//! functionality lives in the `dejaview` crate and its substrates.

pub use dejaview;
pub use dv_access;
pub use dv_checkpoint;
pub use dv_display;
pub use dv_index;
pub use dv_lsfs;
pub use dv_record;
pub use dv_time;
pub use dv_vee;
pub use dv_workloads;
