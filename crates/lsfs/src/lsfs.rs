//! The log-structured, snapshotting file system.
//!
//! `Lsfs` reproduces the role NILFS plays in the paper (§5.1.1): every
//! modifying transaction appends to the log — data blocks to the data
//! log, metadata operations to the journal — so nothing ever overwrites
//! the state an earlier snapshot depends on. A snapshot point is O(state
//! clone) where all file *data* is shared through the append-only disk,
//! and snapshots are identified by the checkpoint counter DejaView stores
//! in both the checkpoint image and the file system log.
//!
//! Writes are buffered dirty-block-style and committed by [`Lsfs::sync`];
//! this is what makes the checkpoint engine's *pre-snapshot sync*
//! meaningful: syncing before quiescing the session moves most data-log
//! appends out of the downtime window (§5.1.2).

use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

use dv_fault::{checksum, sites, FaultPlane, IoFault};
use dv_obs::Obs;
use dv_time::Timestamp;

use crate::disk::{shared_disk, Disk, SharedDisk};
use crate::error::{FsError, FsResult};
use crate::journal::{FsOp, NO_PREV};
use crate::path;
use crate::snapshot::SnapshotView;
use crate::vfs::{DirEntry, FileType, Filesystem, Handle, Metadata};

/// File data block size in bytes.
pub const BLOCK_SIZE: usize = 4096;

/// Block pointer value marking a hole (unwritten, reads as zeros).
pub(crate) const HOLE: u64 = u64::MAX;

/// Inode number of the root directory.
pub(crate) const ROOT_INO: u64 = 1;

/// Magic prefix of every journal record on the log.
pub(crate) const JOURNAL_MAGIC: &[u8; 4] = b"DVJR";

/// Journal record header: `magic(4) | crc32(4) | prev(8) | len(4)`.
/// The CRC covers `prev_le || len_le || body`, so a torn or mangled
/// record — header or body — fails validation during recovery.
pub(crate) const JOURNAL_HEADER: usize = 20;

/// An inode in the log-structured file system.
///
/// Block lists and directory maps are behind `Arc` so cloning the whole
/// [`FsState`] for a snapshot shares them; copy-on-write happens through
/// `Arc::make_mut` on modification.
#[derive(Clone, Debug)]
pub(crate) struct LsInode {
    pub ftype: FileType,
    pub size: u64,
    pub blocks: Arc<Vec<u64>>,
    pub children: Arc<BTreeMap<String, u64>>,
    pub nlink: u32,
    pub mtime: Timestamp,
}

impl LsInode {
    fn file() -> Self {
        LsInode {
            ftype: FileType::Regular,
            size: 0,
            blocks: Arc::new(Vec::new()),
            children: Arc::new(BTreeMap::new()),
            nlink: 1,
            mtime: Timestamp::ZERO,
        }
    }

    fn dir() -> Self {
        LsInode {
            ftype: FileType::Directory,
            ..LsInode::file()
        }
    }
}

/// The complete metadata state of the file system at one instant.
#[derive(Clone, Debug)]
pub(crate) struct FsState {
    pub inodes: HashMap<u64, LsInode>,
    pub next_ino: u64,
}

impl FsState {
    fn new() -> Self {
        let mut inodes = HashMap::new();
        inodes.insert(ROOT_INO, LsInode::dir());
        FsState {
            inodes,
            next_ino: ROOT_INO + 1,
        }
    }

    pub(crate) fn resolve(&self, p: &str) -> FsResult<u64> {
        let comps = path::components(p)?;
        let mut cur = ROOT_INO;
        for comp in comps {
            let node = &self.inodes[&cur];
            if node.ftype != FileType::Directory {
                return Err(FsError::NotADirectory);
            }
            cur = *node.children.get(comp).ok_or(FsError::NotFound)?;
        }
        Ok(cur)
    }

    pub(crate) fn resolve_parent<'a>(&self, p: &'a str) -> FsResult<(u64, &'a str)> {
        let (dirs, name) = path::split_parent(p)?;
        let mut cur = ROOT_INO;
        for comp in dirs {
            let node = &self.inodes[&cur];
            if node.ftype != FileType::Directory {
                return Err(FsError::NotADirectory);
            }
            cur = *node.children.get(comp).ok_or(FsError::NotFound)?;
        }
        if self.inodes[&cur].ftype != FileType::Directory {
            return Err(FsError::NotADirectory);
        }
        Ok((cur, name))
    }

    fn add_child(&mut self, parent: u64, name: &str, ino: u64) {
        let dir = self.inodes.get_mut(&parent).expect("parent exists");
        Arc::make_mut(&mut dir.children).insert(name.to_string(), ino);
    }

    fn remove_child(&mut self, parent: u64, name: &str) -> Option<u64> {
        let dir = self.inodes.get_mut(&parent).expect("parent exists");
        Arc::make_mut(&mut dir.children).remove(name)
    }

    /// Applies a journaled operation. Preconditions were validated when
    /// the operation was logged, so application is infallible; this same
    /// function drives both the live mutation path and log recovery.
    pub(crate) fn apply(&mut self, op: &FsOp) {
        match op {
            FsOp::Create { parent, name, ino } => {
                self.inodes.insert(*ino, LsInode::file());
                self.add_child(*parent, name, *ino);
                self.next_ino = self.next_ino.max(ino + 1);
            }
            FsOp::Mkdir { parent, name, ino } => {
                self.inodes.insert(*ino, LsInode::dir());
                self.add_child(*parent, name, *ino);
                self.next_ino = self.next_ino.max(ino + 1);
            }
            FsOp::Write { ino, size, extents } => {
                let node = self.inodes.get_mut(ino).expect("written inode exists");
                node.size = *size;
                let nblocks = (*size as usize).div_ceil(BLOCK_SIZE);
                let blocks = Arc::make_mut(&mut node.blocks);
                blocks.resize(nblocks, HOLE);
                for (idx, off) in extents {
                    blocks[*idx as usize] = *off;
                }
            }
            FsOp::Unlink { parent, name } => {
                let ino = self.remove_child(*parent, name).expect("entry exists");
                self.inodes.get_mut(&ino).expect("target exists").nlink -= 1;
            }
            FsOp::Rmdir { parent, name } => {
                let ino = self.remove_child(*parent, name).expect("entry exists");
                self.inodes.remove(&ino);
            }
            FsOp::Rename {
                from_parent,
                from_name,
                to_parent,
                to_name,
            } => {
                if let Some(existing) = self.remove_child(*to_parent, to_name) {
                    let node = self.inodes.get_mut(&existing).expect("target exists");
                    match node.ftype {
                        FileType::Regular => {
                            node.nlink -= 1;
                            if node.nlink == 0 {
                                // Pins are runtime state; during replay
                                // nothing is pinned. The live path keeps
                                // pinned orphans by re-inserting below.
                                self.inodes.remove(&existing);
                            }
                        }
                        FileType::Directory => {
                            self.inodes.remove(&existing);
                        }
                    }
                }
                let ino = self
                    .remove_child(*from_parent, from_name)
                    .expect("source exists");
                self.add_child(*to_parent, to_name, ino);
            }
            FsOp::Link { ino, parent, name } => {
                self.add_child(*parent, name, *ino);
                self.inodes.get_mut(ino).expect("linked inode exists").nlink += 1;
            }
            FsOp::Release { ino } => {
                self.inodes.remove(ino);
            }
            FsOp::SnapshotMark { .. } => {}
        }
    }
}

/// Storage accounting for the file system log (Figure 4's "FS" series).
#[derive(Clone, Copy, Debug, Default)]
pub struct LsfsStats {
    /// Bytes of file data appended to the log.
    pub data_bytes: u64,
    /// Bytes of journal records appended to the log.
    pub journal_bytes: u64,
    /// Number of snapshot points taken.
    pub snapshots: u64,
    /// Number of sync transactions committed.
    pub syncs: u64,
}

/// The live, writable log-structured file system.
///
/// # Examples
///
/// ```
/// use dv_lsfs::{Filesystem, Lsfs};
///
/// let mut fs = Lsfs::new();
/// fs.write_all("/doc.txt", b"version 1").unwrap();
/// fs.snapshot_point(1).unwrap();
/// fs.write_all("/doc.txt", b"version 2 is longer").unwrap();
///
/// // The snapshot still sees version 1.
/// let snap = fs.snapshot(1).unwrap();
/// assert_eq!(snap.read_all("/doc.txt").unwrap(), b"version 1");
/// assert_eq!(fs.read_all("/doc.txt").unwrap(), b"version 2 is longer");
/// ```
pub struct Lsfs {
    disk: SharedDisk,
    state: FsState,
    dirty: BTreeMap<(u64, u64), Vec<u8>>,
    dirty_sizes: HashMap<u64, u64>,
    handles: HashMap<u64, u64>,
    next_handle: u64,
    pins: HashMap<u64, u32>,
    snapshots: BTreeMap<u64, FsState>,
    last_journal: u64,
    stats: LsfsStats,
    plane: FaultPlane,
    obs: Obs,
}

impl Lsfs {
    /// Creates an empty file system on a fresh disk.
    pub fn new() -> Self {
        Lsfs::on_disk(shared_disk())
    }

    /// Creates an empty file system on an existing shared disk.
    pub fn on_disk(disk: SharedDisk) -> Self {
        Lsfs {
            disk,
            state: FsState::new(),
            dirty: BTreeMap::new(),
            dirty_sizes: HashMap::new(),
            handles: HashMap::new(),
            next_handle: 1,
            pins: HashMap::new(),
            snapshots: BTreeMap::new(),
            last_journal: NO_PREV,
            stats: LsfsStats::default(),
            plane: FaultPlane::disabled(),
            obs: Obs::disabled(),
        }
    }

    /// Installs the fault-injection plane. The journal commit path
    /// checks site `lsfs.journal.commit`; the plane is also installed
    /// into the underlying disk for `lsfs.disk.append`.
    pub fn set_fault_plane(&mut self, plane: FaultPlane) {
        plane.set_obs(self.obs.clone());
        self.disk.write().set_fault_plane(plane.clone());
        self.plane = plane;
    }

    /// Installs the observability handle: journal, data, and snapshot
    /// commits are mirrored into the `lsfs.*` metrics, and injected
    /// faults on this filesystem's plane become traced events.
    pub fn set_obs(&mut self, obs: Obs) {
        self.plane.set_obs(obs.clone());
        self.obs = obs;
    }

    pub(crate) fn obs(&self) -> &Obs {
        &self.obs
    }

    /// Recovers a file system by replaying the journal chain whose most
    /// recent record is at `head` (the pointer a superblock checkpoint
    /// region would hold in a real LFS). Snapshot points are
    /// re-materialized during replay.
    ///
    /// Every record on the chain is validated — magic, CRC, bounds, and
    /// a strictly-decreasing back-pointer — so a torn or corrupted
    /// record anywhere on the chain yields [`FsError::Io`] instead of
    /// replaying garbage. Callers fall back to [`Lsfs::recover_scan`].
    pub fn recover(disk: SharedDisk, head: u64) -> FsResult<Self> {
        let mut ops = Vec::new();
        {
            let d = disk.read();
            let mut offset = head;
            while offset != NO_PREV {
                let (prev, body) = read_journal_record(&d, offset).ok_or(FsError::Io)?;
                if prev != NO_PREV && prev >= offset {
                    return Err(FsError::Io);
                }
                ops.push(FsOp::decode(&body)?);
                offset = prev;
            }
        }
        ops.reverse();
        let mut fs = Lsfs::on_disk(disk);
        for op in &ops {
            if let FsOp::SnapshotMark { counter } = op {
                fs.snapshots.insert(*counter, fs.state.clone());
                fs.stats.snapshots += 1;
            } else {
                fs.state.apply(op);
            }
        }
        fs.last_journal = head;
        Ok(fs)
    }

    /// Power-cut recovery without a trusted head pointer: scans the raw
    /// log for journal-record candidates and recovers from the newest
    /// one whose whole chain validates and whose recovered tree passes
    /// [`Lsfs::check`](crate::gc). Because each record back-points to
    /// its predecessor, the result is exactly the state after the last
    /// intact committed transaction — a prefix of the pre-crash history.
    /// Falls back to an empty file system on the same disk when no
    /// intact record exists.
    pub fn recover_scan(disk: SharedDisk) -> Self {
        let candidates: Vec<u64> = {
            let d = disk.read();
            let len = d.bytes_written() as usize;
            let bytes = if len == 0 { Vec::new() } else { d.read(0, len) };
            (0..len.saturating_sub(JOURNAL_HEADER - 1))
                .filter(|&i| &bytes[i..i + 4] == JOURNAL_MAGIC)
                .map(|i| i as u64)
                .collect()
        };
        for &head in candidates.iter().rev() {
            if let Ok(fs) = Lsfs::recover(disk.clone(), head) {
                if fs.check().is_ok() {
                    return fs;
                }
            }
        }
        Lsfs::on_disk(disk)
    }

    /// Returns the shared disk.
    pub fn disk(&self) -> SharedDisk {
        self.disk.clone()
    }

    /// Serializes the whole file system — syncs buffered data, then
    /// captures the journal head and the raw log — for persistence
    /// across restarts. Reload with [`Lsfs::load`].
    pub fn save(&mut self) -> FsResult<Vec<u8>> {
        self.sync()?;
        let mut out = Vec::new();
        out.extend_from_slice(b"DVLSF002");
        out.extend_from_slice(&self.last_journal.to_le_bytes());
        out.extend_from_slice(&self.disk.read().to_bytes());
        Ok(out)
    }

    /// Reconstructs a file system from [`Lsfs::save`] output by
    /// replaying the journal; retained snapshots are re-materialized at
    /// their marks.
    ///
    /// The stored head pointer is advisory: if the chain it names fails
    /// validation or fsck — a torn tail after a power cut, a mangled
    /// record — recovery falls back to [`Lsfs::recover_scan`] and lands
    /// on the newest intact prefix of the journal.
    pub fn load(data: &[u8]) -> FsResult<Lsfs> {
        if data.len() < 16 || &data[..8] != b"DVLSF002" {
            return Err(FsError::InvalidPath);
        }
        let head = u64::from_le_bytes(data[8..16].try_into().expect("8 bytes"));
        let disk = crate::disk::Disk::from_bytes(&data[16..]).ok_or(FsError::InvalidPath)?;
        let disk = std::sync::Arc::new(parking_lot::RwLock::new(disk));
        if head != NO_PREV {
            if let Ok(fs) = Lsfs::recover(disk.clone(), head) {
                if fs.check().is_ok() {
                    return Ok(fs);
                }
            }
        }
        Ok(Lsfs::recover_scan(disk))
    }

    /// Returns storage accounting counters.
    pub fn stats(&self) -> LsfsStats {
        self.stats
    }

    /// Returns the offset of the most recent journal record, for
    /// [`Lsfs::recover`]. [`crate::journal::NO_PREV`] if none.
    pub fn journal_head(&self) -> u64 {
        self.last_journal
    }

    /// Returns the read-only view of the snapshot tagged `counter`.
    pub fn snapshot(&self, counter: u64) -> FsResult<SnapshotView> {
        let state = self.snapshots.get(&counter).ok_or(FsError::NotFound)?;
        Ok(SnapshotView::new(state.clone(), self.disk.clone()))
    }

    /// Returns the counters of all snapshot points, ascending.
    pub fn snapshot_counters(&self) -> Vec<u64> {
        self.snapshots.keys().copied().collect()
    }

    /// Internal accessors for the log cleaner (`gc` module).
    pub(crate) fn state_ref(&self) -> &FsState {
        &self.state
    }

    pub(crate) fn state_mut(&mut self) -> &mut FsState {
        &mut self.state
    }

    pub(crate) fn snapshots_ref(&self) -> &BTreeMap<u64, FsState> {
        &self.snapshots
    }

    pub(crate) fn snapshots_mut(&mut self) -> &mut BTreeMap<u64, FsState> {
        &mut self.snapshots
    }

    pub(crate) fn stats_mut(&mut self) -> &mut LsfsStats {
        &mut self.stats
    }

    /// Starts a fresh journal chain (compaction baseline).
    pub(crate) fn reset_journal(&mut self) {
        self.last_journal = NO_PREV;
    }

    /// Appends a journal record without re-applying the operation (the
    /// cleaner journals state that is already in place).
    pub(crate) fn append_journal(&mut self, op: &FsOp) -> FsResult<()> {
        self.log_op(op)
    }

    /// Appends one framed journal record:
    /// `DVJR | crc32 | prev | len | body`. On any failure — injected at
    /// site `lsfs.journal.commit` or surfaced by the disk — the head
    /// pointer is left unchanged, so a torn record is invisible to the
    /// live chain and rejected by CRC during recovery.
    fn log_op(&mut self, op: &FsOp) -> FsResult<()> {
        let body = op.encode();
        let mut payload = Vec::with_capacity(12 + body.len());
        payload.extend_from_slice(&self.last_journal.to_le_bytes());
        payload.extend_from_slice(&(body.len() as u32).to_le_bytes());
        payload.extend_from_slice(&body);
        let mut record = Vec::with_capacity(JOURNAL_HEADER + body.len());
        record.extend_from_slice(JOURNAL_MAGIC);
        record.extend_from_slice(&checksum::crc32(&payload).to_le_bytes());
        record.extend_from_slice(&payload);
        match self.plane.check(sites::LSFS_JOURNAL_COMMIT) {
            None | Some(IoFault::LatencySpike) => {}
            Some(IoFault::Enospc) => return Err(FsError::NoSpace),
            Some(IoFault::TornWrite) | Some(IoFault::ShortRead) => {
                let keep = self.plane.short_len(record.len());
                self.disk.write().append_raw(&record[..keep]);
                return Err(FsError::Io);
            }
            Some(IoFault::Corrupt) => {
                // Silent corruption: the record lands full-length with a
                // mangled byte and the commit reports success; the CRC
                // catches it at recovery time.
                self.plane.mangle(&mut record);
            }
        }
        let offset = self.disk.write().append(&record)?;
        self.last_journal = offset;
        self.stats.journal_bytes += record.len() as u64;
        self.obs
            .add(dv_obs::names::LSFS_JOURNAL_BYTES, record.len() as u64);
        self.obs.incr(dv_obs::names::LSFS_JOURNAL_COMMITS);
        Ok(())
    }

    /// Validates, journals and applies a metadata transaction.
    ///
    /// Write-ahead ordering: the record must be durable before the
    /// in-memory state changes, so a failed append leaves the live tree
    /// exactly as recovery would rebuild it.
    fn commit(&mut self, op: FsOp) -> FsResult<()> {
        self.log_op(&op)?;
        self.state.apply(&op);
        Ok(())
    }

    fn effective_size(&self, ino: u64) -> u64 {
        self.dirty_sizes
            .get(&ino)
            .copied()
            .unwrap_or_else(|| self.state.inodes[&ino].size)
    }

    fn load_block(&self, ino: u64, idx: u64) -> Vec<u8> {
        if let Some(buf) = self.dirty.get(&(ino, idx)) {
            return buf.clone();
        }
        let node = &self.state.inodes[&ino];
        match node.blocks.get(idx as usize) {
            Some(&off) if off != HOLE => self.disk.read().read(off, BLOCK_SIZE),
            _ => vec![0; BLOCK_SIZE],
        }
    }

    fn buffer_write(&mut self, ino: u64, offset: u64, data: &[u8]) {
        if data.is_empty() {
            return;
        }
        let end = offset + data.len() as u64;
        let first = offset / BLOCK_SIZE as u64;
        let last = (end - 1) / BLOCK_SIZE as u64;
        for idx in first..=last {
            let block_start = idx * BLOCK_SIZE as u64;
            let mut block = self.load_block(ino, idx);
            let from = offset.max(block_start);
            let to = end.min(block_start + BLOCK_SIZE as u64);
            let src = &data[(from - offset) as usize..(to - offset) as usize];
            block[(from - block_start) as usize..(to - block_start) as usize].copy_from_slice(src);
            self.dirty.insert((ino, idx), block);
        }
        if end > self.effective_size(ino) {
            self.dirty_sizes.insert(ino, end);
        }
    }

    fn read_range(&self, ino: u64, offset: u64, len: usize) -> Vec<u8> {
        let size = self.effective_size(ino);
        let start = offset.min(size);
        let end = (offset + len as u64).min(size);
        if start >= end {
            return Vec::new();
        }
        let mut out = Vec::with_capacity((end - start) as usize);
        let first = start / BLOCK_SIZE as u64;
        let last = (end - 1) / BLOCK_SIZE as u64;
        for idx in first..=last {
            let block_start = idx * BLOCK_SIZE as u64;
            let block = self.load_block(ino, idx);
            let from = start.max(block_start) - block_start;
            let to = end.min(block_start + BLOCK_SIZE as u64) - block_start;
            out.extend_from_slice(&block[from as usize..to as usize]);
        }
        out
    }

    fn do_truncate(&mut self, ino: u64, size: u64) {
        let old = self.effective_size(ino);
        if size < old {
            // Drop buffered blocks beyond the new end and zero the tail
            // of the boundary block so a later extension reads zeros.
            let nblocks = (size as usize).div_ceil(BLOCK_SIZE) as u64;
            let stale: Vec<(u64, u64)> = self
                .dirty
                .range((ino, nblocks)..(ino + 1, 0))
                .map(|(k, _)| *k)
                .collect();
            for key in stale {
                self.dirty.remove(&key);
            }
            if !size.is_multiple_of(BLOCK_SIZE as u64) {
                let idx = size / BLOCK_SIZE as u64;
                let mut block = self.load_block(ino, idx);
                block[(size % BLOCK_SIZE as u64) as usize..].fill(0);
                self.dirty.insert((ino, idx), block);
            }
        }
        self.dirty_sizes.insert(ino, size);
    }

    fn pinned(&self, ino: u64) -> bool {
        self.pins.get(&ino).copied().unwrap_or(0) > 0
    }

    fn release_if_orphan(&mut self, ino: u64) -> FsResult<()> {
        if let Some(node) = self.state.inodes.get(&ino) {
            if node.ftype == FileType::Regular && node.nlink == 0 && !self.pinned(ino) {
                // Orphan data cannot be reached again; discard its
                // buffered writes and journal the release.
                let stale: Vec<(u64, u64)> = self
                    .dirty
                    .range((ino, 0)..(ino + 1, 0))
                    .map(|(k, _)| *k)
                    .collect();
                for key in stale {
                    self.dirty.remove(&key);
                }
                self.dirty_sizes.remove(&ino);
                self.commit(FsOp::Release { ino })?;
            }
        }
        Ok(())
    }

    fn handle_ino(&self, h: Handle) -> FsResult<u64> {
        self.handles.get(&h.0).copied().ok_or(FsError::BadHandle)
    }
}

/// Reads and validates the journal record at `offset`, returning its
/// back-pointer and body. `None` when the bytes there are not an intact
/// record: bad magic, out-of-bounds length, or CRC mismatch.
fn read_journal_record(d: &Disk, offset: u64) -> Option<(u64, Vec<u8>)> {
    let disk_len = d.bytes_written();
    if offset.checked_add(JOURNAL_HEADER as u64)? > disk_len {
        return None;
    }
    let header = d.read(offset, JOURNAL_HEADER);
    if &header[..4] != JOURNAL_MAGIC {
        return None;
    }
    let crc = u32::from_le_bytes(header[4..8].try_into().expect("4 bytes"));
    let len = u32::from_le_bytes(header[16..20].try_into().expect("4 bytes")) as u64;
    if offset + JOURNAL_HEADER as u64 + len > disk_len {
        return None;
    }
    // The CRC covers prev || len || body: bytes 8.. of the record.
    let payload = d.read(offset + 8, 12 + len as usize);
    if checksum::crc32(&payload) != crc {
        return None;
    }
    let prev = u64::from_le_bytes(payload[..8].try_into().expect("8 bytes"));
    Some((prev, payload[12..].to_vec()))
}

impl Default for Lsfs {
    fn default() -> Self {
        Lsfs::new()
    }
}

impl Filesystem for Lsfs {
    fn create(&mut self, p: &str) -> FsResult<()> {
        let (parent, name) = self.state.resolve_parent(p)?;
        if self.state.inodes[&parent].children.contains_key(name) {
            return Err(FsError::AlreadyExists);
        }
        let ino = self.state.next_ino;
        self.commit(FsOp::Create {
            parent,
            name: name.to_string(),
            ino,
        })
    }

    fn mkdir(&mut self, p: &str) -> FsResult<()> {
        let (parent, name) = self.state.resolve_parent(p)?;
        if self.state.inodes[&parent].children.contains_key(name) {
            return Err(FsError::AlreadyExists);
        }
        let ino = self.state.next_ino;
        self.commit(FsOp::Mkdir {
            parent,
            name: name.to_string(),
            ino,
        })
    }

    fn write_at(&mut self, p: &str, offset: u64, data: &[u8]) -> FsResult<()> {
        let ino = self.state.resolve(p)?;
        if self.state.inodes[&ino].ftype != FileType::Regular {
            return Err(FsError::IsADirectory);
        }
        self.buffer_write(ino, offset, data);
        Ok(())
    }

    fn truncate(&mut self, p: &str, size: u64) -> FsResult<()> {
        let ino = self.state.resolve(p)?;
        if self.state.inodes[&ino].ftype != FileType::Regular {
            return Err(FsError::IsADirectory);
        }
        self.do_truncate(ino, size);
        Ok(())
    }

    fn read_at(&self, p: &str, offset: u64, len: usize) -> FsResult<Vec<u8>> {
        let ino = self.state.resolve(p)?;
        if self.state.inodes[&ino].ftype != FileType::Regular {
            return Err(FsError::IsADirectory);
        }
        Ok(self.read_range(ino, offset, len))
    }

    fn unlink(&mut self, p: &str) -> FsResult<()> {
        let (parent, name) = self.state.resolve_parent(p)?;
        let ino = *self.state.inodes[&parent]
            .children
            .get(name)
            .ok_or(FsError::NotFound)?;
        if self.state.inodes[&ino].ftype != FileType::Regular {
            return Err(FsError::IsADirectory);
        }
        self.commit(FsOp::Unlink {
            parent,
            name: name.to_string(),
        })?;
        self.release_if_orphan(ino)
    }

    fn rmdir(&mut self, p: &str) -> FsResult<()> {
        let (parent, name) = self.state.resolve_parent(p)?;
        let ino = *self.state.inodes[&parent]
            .children
            .get(name)
            .ok_or(FsError::NotFound)?;
        let node = &self.state.inodes[&ino];
        if node.ftype != FileType::Directory {
            return Err(FsError::NotADirectory);
        }
        if !node.children.is_empty() {
            return Err(FsError::NotEmpty);
        }
        self.commit(FsOp::Rmdir {
            parent,
            name: name.to_string(),
        })
    }

    fn rename(&mut self, from: &str, to: &str) -> FsResult<()> {
        let src_ino = self.state.resolve(from)?;
        let src_is_dir = self.state.inodes[&src_ino].ftype == FileType::Directory;
        if src_is_dir && path::starts_with(to, from) {
            return Err(FsError::InvalidPath);
        }
        let (to_parent, to_name) = self.state.resolve_parent(to)?;
        let mut pinned_survivor = None;
        if let Some(&existing) = self.state.inodes[&to_parent].children.get(to_name) {
            if existing == src_ino {
                return Ok(());
            }
            let target = &self.state.inodes[&existing];
            match target.ftype {
                FileType::Regular => {
                    if src_is_dir {
                        return Err(FsError::AlreadyExists);
                    }
                    if target.nlink == 1 && self.pinned(existing) {
                        pinned_survivor = Some(existing);
                    }
                }
                FileType::Directory => {
                    if !src_is_dir {
                        return Err(FsError::IsADirectory);
                    }
                    if !target.children.is_empty() {
                        return Err(FsError::NotEmpty);
                    }
                }
            }
        }
        let (from_parent, from_name) = self.state.resolve_parent(from)?;
        // Apply drops an unpinned replaced file; re-insert a pinned one
        // as an orphan so open handles stay valid.
        let survivor = pinned_survivor.map(|ino| (ino, self.state.inodes[&ino].clone()));
        self.commit(FsOp::Rename {
            from_parent,
            from_name: from_name.to_string(),
            to_parent,
            to_name: to_name.to_string(),
        })?;
        if let Some((ino, mut node)) = survivor {
            node.nlink = 0;
            self.state.inodes.insert(ino, node);
        }
        Ok(())
    }

    fn readdir(&self, p: &str) -> FsResult<Vec<DirEntry>> {
        let ino = self.state.resolve(p)?;
        let node = &self.state.inodes[&ino];
        if node.ftype != FileType::Directory {
            return Err(FsError::NotADirectory);
        }
        Ok(node
            .children
            .iter()
            .map(|(name, child)| DirEntry {
                name: name.clone(),
                ftype: self.state.inodes[child].ftype,
            })
            .collect())
    }

    fn stat(&self, p: &str) -> FsResult<Metadata> {
        let ino = self.state.resolve(p)?;
        let node = &self.state.inodes[&ino];
        let size = match node.ftype {
            FileType::Regular => self.effective_size(ino),
            FileType::Directory => 0,
        };
        Ok(Metadata {
            ino,
            ftype: node.ftype,
            size,
            nlink: node.nlink,
            mtime: node.mtime,
        })
    }

    fn open(&mut self, p: &str) -> FsResult<Handle> {
        let ino = self.state.resolve(p)?;
        if self.state.inodes[&ino].ftype != FileType::Regular {
            return Err(FsError::IsADirectory);
        }
        let h = self.next_handle;
        self.next_handle += 1;
        self.handles.insert(h, ino);
        *self.pins.entry(ino).or_insert(0) += 1;
        Ok(Handle(h))
    }

    fn read_handle(&self, h: Handle, offset: u64, len: usize) -> FsResult<Vec<u8>> {
        let ino = self.handle_ino(h)?;
        Ok(self.read_range(ino, offset, len))
    }

    fn write_handle(&mut self, h: Handle, offset: u64, data: &[u8]) -> FsResult<()> {
        let ino = self.handle_ino(h)?;
        self.buffer_write(ino, offset, data);
        Ok(())
    }

    fn handle_size(&self, h: Handle) -> FsResult<u64> {
        let ino = self.handle_ino(h)?;
        Ok(self.effective_size(ino))
    }

    fn link_handle(&mut self, h: Handle, p: &str) -> FsResult<()> {
        let ino = self.handle_ino(h)?;
        let (parent, name) = self.state.resolve_parent(p)?;
        if self.state.inodes[&parent].children.contains_key(name) {
            return Err(FsError::AlreadyExists);
        }
        self.commit(FsOp::Link {
            ino,
            parent,
            name: name.to_string(),
        })
    }

    fn close(&mut self, h: Handle) -> FsResult<()> {
        let ino = self.handles.remove(&h.0).ok_or(FsError::BadHandle)?;
        let count = self.pins.get_mut(&ino).expect("pin exists for open handle");
        *count -= 1;
        if *count == 0 {
            self.pins.remove(&ino);
        }
        self.release_if_orphan(ino)
    }

    /// Commits a snapshot point tagged with the checkpoint `counter`.
    ///
    /// Buffered data is synced first so the snapshot is self-consistent.
    fn snapshot_point(&mut self, counter: u64) -> FsResult<()> {
        self.sync()?;
        // Span opens after the sync (which times itself) so the two
        // histograms don't double-count the same work.
        let _span = self.obs.span("lsfs", dv_obs::names::LSFS_SNAPSHOT);
        self.log_op(&FsOp::SnapshotMark { counter })?;
        self.snapshots.insert(counter, self.state.clone());
        self.stats.snapshots += 1;
        self.obs.gauge_add(dv_obs::names::LSFS_SNAPSHOTS, 1);
        Ok(())
    }

    fn sync(&mut self) -> FsResult<()> {
        if self.dirty.is_empty() && self.dirty_sizes.is_empty() {
            return Ok(());
        }
        let _span = self.obs.span("lsfs", dv_obs::names::LSFS_SYNC);
        let mut inos: Vec<u64> = self
            .dirty
            .keys()
            .map(|(ino, _)| *ino)
            .chain(self.dirty_sizes.keys().copied())
            .collect();
        inos.sort_unstable();
        inos.dedup();
        let dirty = std::mem::take(&mut self.dirty);
        let dirty_sizes = std::mem::take(&mut self.dirty_sizes);
        for (i, &ino) in inos.iter().enumerate() {
            let Some(node) = self.state.inodes.get(&ino) else {
                continue; // Released while dirty; nothing to persist.
            };
            let size = dirty_sizes.get(&ino).copied().unwrap_or(node.size);
            let nblocks = (size as usize).div_ceil(BLOCK_SIZE) as u64;
            let mut extents = Vec::new();
            let mut failed = None;
            {
                let mut disk = self.disk.write();
                for ((_, idx), block) in dirty.range((ino, 0)..(ino + 1, 0)) {
                    if *idx >= nblocks {
                        continue;
                    }
                    match disk.append(block) {
                        Ok(off) => {
                            self.stats.data_bytes += block.len() as u64;
                            self.obs
                                .add(dv_obs::names::LSFS_DATA_BYTES, block.len() as u64);
                            extents.push((*idx, off));
                        }
                        Err(e) => {
                            failed = Some(e);
                            break;
                        }
                    }
                }
            }
            let result = match failed {
                Some(e) => Err(e),
                None => self.commit(FsOp::Write { ino, size, extents }),
            };
            if let Err(e) = result {
                // Re-buffer everything not yet committed — this inode
                // and all later ones — so the data survives in memory
                // and a retry can complete the sync.
                for &ino in &inos[i..] {
                    for (key, block) in dirty.range((ino, 0)..(ino + 1, 0)) {
                        self.dirty.insert(*key, block.clone());
                    }
                    if let Some(&size) = dirty_sizes.get(&ino) {
                        self.dirty_sizes.insert(ino, size);
                    }
                }
                return Err(e);
            }
        }
        self.stats.syncs += 1;
        self.obs.incr(dv_obs::names::LSFS_SYNCS);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_read_round_trip_spanning_blocks() {
        let mut fs = Lsfs::new();
        fs.create("/f").unwrap();
        let data: Vec<u8> = (0..BLOCK_SIZE * 3 + 100).map(|i| (i % 251) as u8).collect();
        fs.write_at("/f", 0, &data).unwrap();
        assert_eq!(fs.read_all("/f").unwrap(), data);
        fs.sync().unwrap();
        assert_eq!(fs.read_all("/f").unwrap(), data, "same contents after sync");
    }

    #[test]
    fn unaligned_overwrite_after_sync() {
        let mut fs = Lsfs::new();
        fs.write_all("/f", &vec![7u8; 10_000]).unwrap();
        fs.sync().unwrap();
        fs.write_at("/f", 4090, b"HELLO").unwrap();
        let data = fs.read_all("/f").unwrap();
        assert_eq!(&data[4090..4095], b"HELLO");
        assert_eq!(data[4089], 7);
        assert_eq!(data[4095], 7);
        assert_eq!(data.len(), 10_000);
    }

    #[test]
    fn sparse_files_read_zeros() {
        let mut fs = Lsfs::new();
        fs.create("/f").unwrap();
        fs.write_at("/f", BLOCK_SIZE as u64 * 5, b"x").unwrap();
        fs.sync().unwrap();
        let data = fs.read_all("/f").unwrap();
        assert_eq!(data.len(), BLOCK_SIZE * 5 + 1);
        assert!(data[..BLOCK_SIZE * 5].iter().all(|&b| b == 0));
        assert_eq!(data[BLOCK_SIZE * 5], b'x');
    }

    #[test]
    fn truncate_shrink_zeroes_tail_on_regrow() {
        let mut fs = Lsfs::new();
        fs.write_all("/f", &[9u8; 100]).unwrap();
        fs.sync().unwrap();
        fs.truncate("/f", 50).unwrap();
        fs.truncate("/f", 100).unwrap();
        let data = fs.read_all("/f").unwrap();
        assert_eq!(&data[..50], &vec![9u8; 50][..]);
        assert_eq!(&data[50..], &vec![0u8; 50][..], "regrown tail is zeros");
    }

    #[test]
    fn snapshots_are_immutable_views() {
        let mut fs = Lsfs::new();
        fs.mkdir("/docs").unwrap();
        fs.write_all("/docs/a", b"old").unwrap();
        fs.snapshot_point(1).unwrap();
        fs.write_all("/docs/a", b"new content").unwrap();
        fs.unlink("/docs/a").unwrap();
        fs.write_all("/docs/b", b"later").unwrap();
        fs.sync().unwrap();

        let snap = fs.snapshot(1).unwrap();
        assert_eq!(snap.read_all("/docs/a").unwrap(), b"old");
        assert!(!snap.exists("/docs/b"));
        assert!(!fs.exists("/docs/a"));
    }

    #[test]
    fn multiple_snapshots_capture_history() {
        let mut fs = Lsfs::new();
        fs.create("/log").unwrap();
        for i in 1..=5u64 {
            fs.write_at("/log", (i - 1) * 4, format!("v{i:02} ").as_bytes())
                .unwrap();
            fs.snapshot_point(i).unwrap();
        }
        for i in 1..=5u64 {
            let snap = fs.snapshot(i).unwrap();
            assert_eq!(snap.stat("/log").unwrap().size, i * 4);
        }
        assert_eq!(fs.snapshot_counters(), vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn snapshot_of_unknown_counter_fails() {
        let fs = Lsfs::new();
        assert!(fs.snapshot(9).is_err());
    }

    #[test]
    fn handle_survives_unlink_and_relinks() {
        let mut fs = Lsfs::new();
        fs.mkdir("/.dejaview").unwrap();
        fs.write_all("/tmp_data", b"precious").unwrap();
        let h = fs.open("/tmp_data").unwrap();
        fs.unlink("/tmp_data").unwrap();
        assert_eq!(fs.read_handle(h, 0, 8).unwrap(), b"precious");
        fs.link_handle(h, "/.dejaview/relink0").unwrap();
        fs.close(h).unwrap();
        assert_eq!(fs.read_all("/.dejaview/relink0").unwrap(), b"precious");
    }

    #[test]
    fn orphan_released_on_close() {
        let mut fs = Lsfs::new();
        fs.write_all("/f", b"x").unwrap();
        let h = fs.open("/f").unwrap();
        fs.unlink("/f").unwrap();
        fs.write_handle(h, 1, b"y").unwrap();
        fs.close(h).unwrap();
        assert_eq!(fs.read_handle(h, 0, 2), Err(FsError::BadHandle));
        fs.sync().unwrap(); // Must not try to persist the released orphan.
    }

    #[test]
    fn rename_replaces_and_preserves_pinned_target() {
        let mut fs = Lsfs::new();
        fs.write_all("/a", b"AAA").unwrap();
        fs.write_all("/b", b"BBB").unwrap();
        let hb = fs.open("/b").unwrap();
        fs.rename("/a", "/b").unwrap();
        assert_eq!(fs.read_all("/b").unwrap(), b"AAA");
        // The replaced file's handle still reads its old contents.
        assert_eq!(fs.read_handle(hb, 0, 3).unwrap(), b"BBB");
        fs.close(hb).unwrap();
    }

    #[test]
    fn data_log_grows_monotonically() {
        let mut fs = Lsfs::new();
        fs.write_all("/f", &vec![1u8; 8192]).unwrap();
        fs.sync().unwrap();
        let s1 = fs.stats();
        assert_eq!(s1.data_bytes, 8192);
        fs.write_at("/f", 0, &[2u8; 1]).unwrap();
        fs.sync().unwrap();
        let s2 = fs.stats();
        // Overwriting one byte rewrites exactly one block to the log.
        assert_eq!(s2.data_bytes, 8192 + BLOCK_SIZE as u64);
        assert!(s2.journal_bytes > s1.journal_bytes);
    }

    #[test]
    fn recovery_replays_the_journal() {
        let mut fs = Lsfs::new();
        fs.mkdir("/d").unwrap();
        fs.write_all("/d/f", b"recover me").unwrap();
        fs.snapshot_point(3).unwrap();
        fs.write_all("/d/g", b"post-snapshot").unwrap();
        fs.rename("/d/g", "/d/h").unwrap();
        fs.sync().unwrap();
        let head = fs.journal_head();
        let disk = fs.disk();
        drop(fs);

        let recovered = Lsfs::recover(disk, head).unwrap();
        assert_eq!(recovered.read_all("/d/f").unwrap(), b"recover me");
        assert_eq!(recovered.read_all("/d/h").unwrap(), b"post-snapshot");
        assert!(!recovered.exists("/d/g"));
        let snap = recovered.snapshot(3).unwrap();
        assert!(snap.exists("/d/f"));
        assert!(!snap.exists("/d/h"));
    }

    #[test]
    fn save_load_round_trips_with_snapshots() {
        let mut fs = Lsfs::new();
        fs.mkdir("/d").unwrap();
        fs.write_all("/d/a", b"alpha").unwrap();
        fs.snapshot_point(1).unwrap();
        fs.write_all("/d/a", b"alpha prime").unwrap();
        fs.write_all("/d/b", &vec![3u8; 9000]).unwrap();
        let saved = fs.save().unwrap();
        let loaded = Lsfs::load(&saved).unwrap();
        assert_eq!(loaded.read_all("/d/a").unwrap(), b"alpha prime");
        assert_eq!(loaded.read_all("/d/b").unwrap(), vec![3u8; 9000]);
        let snap = loaded.snapshot(1).unwrap();
        assert_eq!(snap.read_all("/d/a").unwrap(), b"alpha");
        assert!(Lsfs::load(&saved[..20]).is_err());
    }

    #[test]
    fn sync_is_idempotent_when_clean() {
        let mut fs = Lsfs::new();
        fs.write_all("/f", b"x").unwrap();
        fs.sync().unwrap();
        let before = fs.stats();
        fs.sync().unwrap();
        let after = fs.stats();
        assert_eq!(before.data_bytes, after.data_bytes);
        assert_eq!(before.syncs, after.syncs);
    }

    #[test]
    fn failed_journal_commit_leaves_state_unchanged() {
        use dv_fault::FaultPlan;
        let mut fs = Lsfs::new();
        fs.set_fault_plane(
            FaultPlan::new(2)
                .fail_nth(sites::LSFS_JOURNAL_COMMIT, 2, IoFault::TornWrite)
                .build(),
        );
        fs.create("/a").unwrap();
        assert_eq!(fs.create("/b"), Err(FsError::Io));
        assert!(
            !fs.exists("/b"),
            "write-ahead: state unchanged on torn commit"
        );
        fs.create("/b").unwrap();
        // The chain skips the torn record and replays cleanly.
        let recovered = Lsfs::recover(fs.disk(), fs.journal_head()).unwrap();
        assert!(recovered.exists("/a"));
        assert!(recovered.exists("/b"));
    }

    #[test]
    fn corrupt_journal_record_is_caught_by_scan_recovery() {
        use dv_fault::FaultPlan;
        let mut fs = Lsfs::new();
        fs.write_all("/keep", b"good data").unwrap();
        fs.sync().unwrap();
        fs.set_fault_plane(
            FaultPlan::new(9)
                .always(sites::LSFS_JOURNAL_COMMIT, IoFault::Corrupt)
                .build(),
        );
        fs.create("/bad").unwrap(); // Reports success; mangled on disk.
        fs.set_fault_plane(FaultPlane::disabled());
        let saved = fs.save().unwrap();
        let loaded = Lsfs::load(&saved).unwrap();
        loaded.check().unwrap();
        assert_eq!(loaded.read_all("/keep").unwrap(), b"good data");
        assert!(!loaded.exists("/bad"), "corrupt commit rolled back by CRC");
    }

    #[test]
    fn power_cut_recovers_the_newest_intact_prefix() {
        use dv_fault::crash;
        let mut fs = Lsfs::new();
        fs.mkdir("/d").unwrap();
        fs.write_all("/d/a", b"stable").unwrap();
        fs.snapshot_point(1).unwrap();
        fs.write_all("/d/b", b"later data").unwrap();
        let saved = fs.save().unwrap();
        // Tear the last journal record (the Write for /d/b).
        let image = crash::power_cut(&saved, crash::log_len(&saved) - 3);
        let recovered = Lsfs::load(&image).unwrap();
        recovered.check().unwrap();
        assert_eq!(recovered.read_all("/d/a").unwrap(), b"stable");
        let snap = recovered.snapshot(1).unwrap();
        assert_eq!(snap.read_all("/d/a").unwrap(), b"stable");
        // /d/b's Create committed but its data Write was torn.
        if recovered.exists("/d/b") {
            assert_eq!(recovered.stat("/d/b").unwrap().size, 0);
        }
    }

    #[test]
    fn crash_harness_layout_matches_save() {
        use dv_fault::crash;
        let mut fs = Lsfs::new();
        fs.write_all("/f", b"data").unwrap();
        let saved = fs.save().unwrap();
        // The harness' view of the log length is the disk's.
        assert_eq!(
            crash::log_len(&saved) as u64,
            fs.disk().read().bytes_written()
        );
        // Cutting everything yields a loadable empty file system.
        let wiped = crash::power_cut(&saved, 0);
        let empty = Lsfs::load(&wiped).unwrap();
        empty.check().unwrap();
        assert!(!empty.exists("/f"));
        // Cutting nothing is the identity.
        assert_eq!(crash::power_cut(&saved, usize::MAX), saved);
    }

    #[test]
    fn dir_operations_and_errors() {
        let mut fs = Lsfs::new();
        fs.mkdir_all("/a/b").unwrap();
        assert_eq!(fs.mkdir("/a"), Err(FsError::AlreadyExists));
        assert_eq!(fs.rmdir("/a"), Err(FsError::NotEmpty));
        assert_eq!(fs.unlink("/a"), Err(FsError::IsADirectory));
        fs.rmdir("/a/b").unwrap();
        fs.rmdir("/a").unwrap();
        assert!(!fs.exists("/a"));
    }
}
