//! The `make` scenario: building the Linux kernel.
//!
//! Table 1: "Build the 2.6.16.3 Linux kernel". A process-forest
//! workload: make forks a short-lived compiler per translation unit,
//! each allocating real memory, emitting an object file, and printing a
//! compile line. §6 reports make has the largest checkpoint overhead
//! (13%) — driven by the constant process churn and fresh dirty memory
//! between checkpoints.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use dejaview::DejaView;
use dv_display::Rect;
use dv_time::Duration;
use dv_vee::{Prot, Vpid};

use crate::common::TermWindow;
use crate::scenario::Scenario;

/// The kernel-build scenario.
pub struct MakeScenario {
    units_remaining: u32,
    unit_no: u32,
    rng: StdRng,
    term: Option<TermWindow>,
    make: Option<Vpid>,
}

impl MakeScenario {
    /// Creates the scenario; `scale` = 1.0 compiles ~200 units.
    pub fn new(scale: f64) -> Self {
        MakeScenario {
            units_remaining: ((200.0 * scale).ceil() as u32).max(4),
            unit_no: 0,
            rng: StdRng::seed_from_u64(0x3a4e),
            term: None,
            make: None,
        }
    }
}

impl Scenario for MakeScenario {
    fn name(&self) -> &'static str {
        "make"
    }

    fn description(&self) -> &'static str {
        "Build the 2.6.16.3 Linux kernel"
    }

    fn setup(&mut self, dv: &mut DejaView) {
        let (w, h) = (dv.driver_mut().width(), dv.driver_mut().height());
        self.term = Some(TermWindow::open(
            dv,
            "xterm",
            "make -j1 vmlinux - xterm",
            Rect::new(0, 0, w, h),
        ));
        dv.vee_mut().fs.mkdir_all("/usr/src/build").expect("mkdir");
        let init = dv.init_vpid();
        self.make = Some(dv.vee_mut().spawn(Some(init), "make").expect("spawn"));
    }

    fn step(&mut self, dv: &mut DejaView) -> bool {
        self.unit_no += 1;
        let make = self.make.expect("setup ran");
        // Fork a compiler.
        let cc = dv.vee_mut().spawn(Some(make), "cc1").expect("fork");
        // The compiler allocates and fills working memory — real dirty
        // pages the next checkpoint must save.
        let work = dv
            .vee_mut()
            .mmap(cc, 2 << 20, Prot::ReadWrite)
            .expect("mmap");
        let unit = self.unit_no;
        let object: Vec<u8> = (0..1 << 20)
            .map(|i| ((i as u32).wrapping_mul(unit.wrapping_mul(2_654_435_761)) >> 11) as u8)
            .collect();
        dv.vee_mut().mem_write(cc, work, &object).expect("compile");
        // Emit the object file.
        let obj_path = format!("/usr/src/build/unit_{unit}.o");
        dv.vee_mut()
            .fs
            .write_all(&obj_path, &object[..self.rng.gen_range(40_000..120_000)])
            .expect("write object");
        // The compiler exits; make prints the compile line.
        dv.vee_mut().exit(cc).expect("exit");
        let term = self.term.as_ref().expect("setup ran");
        term.println(dv, &format!("  CC      kernel/unit_{unit}.o"));
        self.units_remaining -= 1;
        self.units_remaining > 0
    }

    fn step_duration(&self) -> Duration {
        Duration::from_millis(100)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{run_scenario, RunOptions};
    use dejaview::Config;

    #[test]
    fn make_forks_compilers_and_emits_objects() {
        let mut dv = DejaView::new(Config::default());
        let mut scenario = MakeScenario::new(0.05); // 10 units.
        let summary = run_scenario(&mut dv, &mut scenario, RunOptions::default());
        assert_eq!(summary.steps, 10);
        // All compilers exited; only init + term-less make remain.
        assert_eq!(dv.vee().process_count(), 2);
        assert!(dv.vee().fs.exists("/usr/src/build/unit_10.o"));
        assert!(summary.checkpoints >= 1);
    }
}
