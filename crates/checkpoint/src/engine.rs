//! The checkpoint engine.
//!
//! Implements §5.1's four-step consistent checkpoint — quiesce, capture,
//! file system snapshot, resume — with every optimization §5.1.2
//! describes for keeping downtime out of the user's way:
//!
//! * **pre-snapshot**: sync the file system before quiescing;
//! * **pre-quiesce**: wait (bounded) for uninterruptibly sleeping
//!   processes to become signal-ready before stopping the session;
//! * **COW capture**: page captures are `Arc` clones, the copy is paid
//!   lazily by post-resume writers;
//! * **relink**: unlinked-but-open files are relinked into a hidden
//!   directory before the FS snapshot instead of being saved by value;
//! * **incremental checkpoints**: only pages dirtied since the last
//!   checkpoint are saved, via write-protect fault tracking;
//! * **deferred writeback**: serialization and storage writes happen
//!   after the session has resumed, into a preallocated buffer sized
//!   from recent checkpoints.
//!
//! Each checkpoint reports a per-phase latency breakdown; *downtime* is
//! quiesce + capture + FS snapshot, the quantity Figure 3 shows must
//! stay in single-digit milliseconds.

use std::collections::BTreeMap;

use dv_fault::{sites, FaultPlane, IoFault};
use dv_lsfs::{FsError, SharedBlobStore};
use dv_obs::{names, Obs};
use dv_time::{Duration, PhaseBreakdown, PhaseTimer, Sleeper, Timestamp};
use dv_vee::{FdObject, Process, RunState, Signal, SockState, Vee};

use crate::compress::compress;
use crate::image::{
    encode_image, CheckpointImage, FdRecord, ImageKind, ProcessRecord, SocketRecord,
};
use crate::writeback::{encode_fault_of, CommitPipeline, FairPolicy, LaneId, PipelineConfig};

/// Hidden directory unlinked-open files are relinked into.
pub const RELINK_DIR: &str = "/.dejaview";

/// Engine configuration.
///
/// The three `disable_*` flags ablate the §5.1.2 downtime optimizations
/// for the "without these optimizations" comparison of §6; they exist
/// for measurement, not production use.
#[derive(Clone, Copy, Debug)]
pub struct EngineConfig {
    /// Take a full checkpoint every `full_every` checkpoints; the rest
    /// are incremental ("full checkpoints are taken periodically ...
    /// for redundancy", §5.1.2). `1` disables incremental checkpoints.
    pub full_every: u64,
    /// Compress images before storing.
    pub compress: bool,
    /// Upper bound on pre-quiesce waiting.
    pub pre_quiesce_timeout: Duration,
    /// Step the waiter advances time by while pre-quiescing.
    pub pre_quiesce_step: Duration,
    /// Ablation: copy page contents eagerly during capture instead of
    /// the deferred COW capture.
    pub disable_cow: bool,
    /// Ablation: serialize and store the image *before* resuming the
    /// session, so writeback counts as downtime.
    pub disable_deferred_writeback: bool,
    /// Ablation: skip the pre-snapshot file system sync, leaving all
    /// dirty data to be written during the snapshot (downtime) window.
    pub disable_pre_snapshot: bool,
    /// Worker threads for the deferred commit pipeline. `0` (the
    /// default) commits inline on the session thread after resume, the
    /// pre-pipeline behavior; `>= 1` hands captures to a worker pool
    /// that encodes, compresses per-process sections in parallel, and
    /// writes blobs in counter order off the session thread.
    pub commit_workers: usize,
    /// Maximum captures queued to the pipeline before backpressure
    /// drains it and commits inline (bounds captured-page memory).
    pub commit_queue_depth: usize,
    /// Store-write retries a pipeline worker attempts per commit.
    pub commit_retry_limit: u32,
    /// Backoff before a commit retry; doubles per attempt.
    pub commit_retry_backoff: Duration,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            full_every: 100,
            compress: false,
            pre_quiesce_timeout: Duration::from_millis(100),
            pre_quiesce_step: Duration::from_millis(1),
            disable_cow: false,
            disable_deferred_writeback: false,
            disable_pre_snapshot: false,
            commit_workers: 0,
            commit_queue_depth: 4,
            commit_retry_limit: 3,
            commit_retry_backoff: Duration::from_millis(50),
        }
    }
}

/// Metadata the engine keeps about each stored image.
#[derive(Clone, Debug)]
pub struct ImageMeta {
    /// Checkpoint counter.
    pub counter: u64,
    /// Session time.
    pub time: Timestamp,
    /// Full or incremental.
    pub kind: ImageKind,
    /// Blob name in the store.
    pub blob: String,
    /// Stored size in bytes.
    pub stored_bytes: u64,
    /// Uncompressed size in bytes.
    pub raw_bytes: u64,
}

/// The result of one checkpoint.
#[derive(Clone, Debug)]
pub struct CheckpointReport {
    /// Checkpoint counter assigned.
    pub counter: u64,
    /// Phase latency breakdown (pre-checkpoint, quiesce, capture,
    /// fs-snapshot, writeback).
    pub phases: PhaseBreakdown,
    /// Time the session was unresponsive.
    pub downtime: Duration,
    /// Pages saved.
    pub pages_saved: usize,
    /// Stored image size.
    pub stored_bytes: u64,
    /// Uncompressed image size.
    pub raw_bytes: u64,
    /// Whether this was a full checkpoint.
    pub full: bool,
    /// Whether the commit was handed to the pipeline. If so,
    /// `stored_bytes`/`raw_bytes` are 0 here and land in
    /// [`EngineStats`] once the commit resolves (see
    /// [`Checkpointer::flush`]).
    pub deferred: bool,
}

/// Cumulative engine statistics.
#[derive(Clone, Copy, Debug, Default)]
pub struct EngineStats {
    /// Checkpoints taken.
    pub checkpoints: u64,
    /// Full checkpoints taken.
    pub full_checkpoints: u64,
    /// Total stored bytes.
    pub stored_bytes: u64,
    /// Total raw (uncompressed) bytes.
    pub raw_bytes: u64,
    /// Unlinked files relinked.
    pub relinks: u64,
    /// Checkpoints whose writeback failed after the session resumed
    /// (the session keeps running; the image is not retained).
    pub write_failures: u64,
    /// Captures handed to the deferred commit pipeline.
    pub queued: u64,
    /// Deferred commits that resolved successfully.
    pub committed: u64,
    /// Captures committed inline because the pipeline queue was full.
    pub inline_fallbacks: u64,
    /// Total session-thread unresponsiveness (quiesce + capture +
    /// fs-snapshot) across all checkpoints, in wall nanoseconds.
    pub sync_downtime_nanos: u64,
    /// Total time spent committing images outside the downtime window
    /// (inline post-resume writeback, or pipeline enqueue-to-resolve),
    /// in wall nanoseconds.
    pub async_commit_nanos: u64,
}

/// A function the engine calls to let session time pass while it waits
/// (pre-quiesce). Tests and the simulation advance a `SimClock`; a
/// wall-clock deployment would sleep.
pub type WaitFn = Box<dyn FnMut(Duration) + Send>;

/// This engine's attachment to a host-wide shared commit pipeline:
/// which pipeline, which lane, and the lane's scheduling weight.
struct SharedLane {
    pipe: std::sync::Arc<CommitPipeline>,
    lane: LaneId,
    weight: u32,
}

/// The checkpoint engine for one session.
pub struct Checkpointer {
    config: EngineConfig,
    blob_prefix: String,
    counter: u64,
    images: BTreeMap<u64, ImageMeta>,
    buffer_estimate: usize,
    recent_sizes: Vec<usize>,
    stats: EngineStats,
    waiter: WaitFn,
    relink_seq: u64,
    plane: FaultPlane,
    pipeline: Option<CommitPipeline>,
    shared: Option<SharedLane>,
    force_full: bool,
    sleeper: Sleeper,
    last_async_error: Option<FsError>,
    obs: Obs,
}

impl Checkpointer {
    /// Creates an engine with the given waiter.
    pub fn new(config: EngineConfig, waiter: WaitFn) -> Self {
        Checkpointer {
            config,
            blob_prefix: "ckpt".to_string(),
            counter: 0,
            images: BTreeMap::new(),
            buffer_estimate: 1 << 20,
            recent_sizes: Vec::new(),
            stats: EngineStats::default(),
            waiter,
            relink_seq: 0,
            plane: FaultPlane::disabled(),
            pipeline: None,
            shared: None,
            force_full: false,
            sleeper: Sleeper::Wall,
            last_async_error: None,
            obs: Obs::disabled(),
        }
    }

    /// Installs the fault-injection plane (sites
    /// `checkpoint.image.encode` and `checkpoint.writeback`).
    pub fn set_fault_plane(&mut self, plane: FaultPlane) {
        self.teardown_pipeline();
        plane.set_obs(self.obs.clone());
        self.plane = plane;
        self.refresh_shared_lane();
    }

    /// Installs the observability handle: phase latencies, byte
    /// accounting, and pipeline behavior (queue depth, worker compress
    /// time, retries, inline fallbacks) report into the `checkpoint.*`
    /// metrics. Tears down any live pipeline so workers pick up the
    /// handle on the next checkpoint.
    pub fn set_obs(&mut self, obs: Obs) {
        self.teardown_pipeline();
        self.plane.set_obs(obs.clone());
        self.obs = obs;
        self.refresh_shared_lane();
    }

    /// Creates an engine whose pre-quiesce wait advances a [`dv_time::SimClock`].
    /// Commit-retry backoff in the pipeline also advances the clock
    /// instead of really sleeping.
    pub fn with_sim_clock(config: EngineConfig, clock: dv_time::SimClock) -> Self {
        let waiter_clock = clock.clone();
        let mut engine = Checkpointer::new(
            config,
            Box::new(move |d| {
                waiter_clock.advance(d);
            }),
        );
        engine.sleeper = Sleeper::Sim(clock);
        engine
    }

    /// Chooses how the commit pipeline pays retry backoff and injected
    /// latency spikes: really sleeping (default) or advancing a sim
    /// clock. [`Checkpointer::with_sim_clock`] installs the sim variant.
    pub fn set_sleeper(&mut self, sleeper: Sleeper) {
        self.teardown_pipeline();
        self.sleeper = sleeper;
    }

    /// Sets the blob-name prefix, so several engines (the main session
    /// and each revived session) can share one store without colliding.
    pub fn with_blob_prefix(mut self, prefix: &str) -> Self {
        self.blob_prefix = prefix.to_string();
        self
    }

    /// Returns the blob-name prefix.
    pub fn blob_prefix(&self) -> &str {
        &self.blob_prefix
    }

    /// Returns cumulative statistics.
    pub fn stats(&self) -> EngineStats {
        self.stats
    }

    /// Attaches this engine to a host-wide shared commit pipeline as
    /// `lane`, replacing any owned pipeline. The lane is registered
    /// with the engine's current fault plane and observability handle,
    /// `commit_queue_depth` as its queue quota, and `weight` as its
    /// scheduling weight. While attached, checkpoints defer to the
    /// shared pool regardless of `commit_workers`.
    pub fn attach_shared_pipeline(
        &mut self,
        pipe: std::sync::Arc<CommitPipeline>,
        lane: LaneId,
        weight: u32,
    ) {
        self.teardown_pipeline();
        pipe.register_lane(
            lane,
            self.plane.clone(),
            self.obs.clone(),
            self.config.commit_queue_depth,
            weight,
        );
        self.shared = Some(SharedLane { pipe, lane, weight });
    }

    /// Detaches from the shared pipeline: drains this engine's lane,
    /// absorbs the outcomes, and removes the lane from the pool.
    pub fn detach_shared_pipeline(&mut self) {
        if let Some(sl) = self.shared.as_ref() {
            sl.pipe.drain_lane(sl.lane);
        }
        self.reap();
        if let Some(sl) = self.shared.take() {
            sl.pipe.remove_lane(sl.lane);
        }
    }

    /// Re-registers the shared lane (if any) so the pool's workers see
    /// the engine's current fault plane and observability handle.
    fn refresh_shared_lane(&self) {
        if let Some(sl) = self.shared.as_ref() {
            sl.pipe.register_lane(
                sl.lane,
                self.plane.clone(),
                self.obs.clone(),
                self.config.commit_queue_depth,
                sl.weight,
            );
        }
    }

    /// Blocks until this engine's pending commits — owned pipeline or
    /// shared lane — have resolved. Outcomes stay queued for `reap`.
    fn drain_pipeline(&self) {
        if let Some(pipe) = self.pipeline.as_ref() {
            pipe.drain();
        }
        if let Some(sl) = self.shared.as_ref() {
            sl.pipe.drain_lane(sl.lane);
        }
    }

    /// Deferred commits still pending in the pipeline.
    pub fn inflight(&self) -> usize {
        if let Some(sl) = self.shared.as_ref() {
            sl.pipe.inflight_lane(sl.lane)
        } else {
            self.pipeline.as_ref().map_or(0, CommitPipeline::inflight)
        }
    }

    /// Barrier: blocks until every deferred commit has resolved, then
    /// folds the outcomes into the image metadata and statistics.
    ///
    /// # Errors
    ///
    /// Returns the first asynchronous commit failure observed since the
    /// previous flush (the session keeps running either way; the failed
    /// image and any incrementals chained through it are not retained,
    /// and the next checkpoint re-anchors with a forced full).
    pub fn flush(&mut self) -> Result<(), FsError> {
        self.drain_pipeline();
        self.reap();
        match self.last_async_error.take() {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// Folds already-resolved deferred commits into the engine without
    /// blocking. Successful commits become visible in
    /// [`Checkpointer::images`] here — and only here — so the metadata
    /// map grows in counter order.
    fn reap(&mut self) {
        let outcomes = if let Some(sl) = self.shared.as_ref() {
            sl.pipe.take_finished_lane(sl.lane)
        } else if let Some(pipe) = self.pipeline.as_ref() {
            pipe.take_finished()
        } else {
            return;
        };
        for outcome in outcomes {
            self.stats.async_commit_nanos += outcome.commit_nanos;
            self.obs
                .add(names::CHECKPOINT_ASYNC_COMMIT_NANOS, outcome.commit_nanos);
            match outcome.result {
                Ok((raw_bytes, stored_bytes)) => {
                    self.images.insert(
                        outcome.counter,
                        ImageMeta {
                            counter: outcome.counter,
                            time: outcome.time,
                            kind: outcome.kind,
                            blob: outcome.blob,
                            stored_bytes,
                            raw_bytes,
                        },
                    );
                    self.stats.committed += 1;
                    self.stats.stored_bytes += stored_bytes;
                    self.stats.raw_bytes += raw_bytes;
                    self.obs.incr(names::CHECKPOINT_COMMITTED);
                    self.obs.add(names::CHECKPOINT_STORED_BYTES, stored_bytes);
                    self.obs.add(names::CHECKPOINT_RAW_BYTES, raw_bytes);
                    self.note_raw_size(raw_bytes as usize);
                }
                Err(e) => {
                    self.stats.write_failures += 1;
                    self.obs.incr(names::CHECKPOINT_WRITE_FAILURES);
                    self.force_full = true;
                    if self.last_async_error.is_none() {
                        self.last_async_error = Some(e.as_fs_error());
                    }
                }
            }
        }
        self.obs
            .gauge_set(names::CHECKPOINT_QUEUE_DEPTH, self.inflight() as u64);
    }

    fn note_raw_size(&mut self, raw: usize) {
        self.recent_sizes.push(raw);
        if self.recent_sizes.len() > 8 {
            self.recent_sizes.remove(0);
        }
        self.buffer_estimate =
            self.recent_sizes.iter().sum::<usize>() / self.recent_sizes.len().max(1);
    }

    /// Lazily builds the pipeline bound to `store`, rebuilding if the
    /// caller switched stores.
    fn ensure_pipeline(&mut self, store: &SharedBlobStore) {
        let rebuild = match &self.pipeline {
            Some(pipe) => !pipe.writes_to(store),
            None => true,
        };
        if rebuild {
            self.teardown_pipeline();
            self.pipeline = Some(CommitPipeline::new(
                PipelineConfig {
                    workers: self.config.commit_workers,
                    queue_depth: self.config.commit_queue_depth,
                    retry_limit: self.config.commit_retry_limit,
                    retry_backoff: self.config.commit_retry_backoff,
                    compress: self.config.compress,
                    fairness: FairPolicy::RoundRobin,
                },
                store.clone(),
                self.plane.clone(),
                self.sleeper.clone(),
                self.obs.clone(),
            ));
        }
    }

    /// Drains and absorbs pending commits — the owned pipeline (which
    /// is then dropped) or the shared lane (which stays attached; the
    /// caller re-registers it via `refresh_shared_lane`). Any failure
    /// is kept for the next [`Checkpointer::flush`] to report.
    fn teardown_pipeline(&mut self) {
        if self.pipeline.is_some() || self.shared.is_some() {
            self.drain_pipeline();
            self.reap();
            self.pipeline = None;
        }
    }

    /// Returns metadata for every stored image, in counter order.
    pub fn images(&self) -> impl Iterator<Item = &ImageMeta> {
        self.images.values()
    }

    /// Returns metadata for a specific counter.
    pub fn image_meta(&self, counter: u64) -> Option<&ImageMeta> {
        self.images.get(&counter)
    }

    /// Returns the latest checkpoint counter at or before `t`, the
    /// lookup behind "Take me back" (§5.2).
    pub fn counter_at_or_before(&self, t: Timestamp) -> Option<u64> {
        self.images
            .values()
            .rev()
            .find(|m| m.time <= t)
            .map(|m| m.counter)
    }

    /// Returns the chain of counters needed to restore `counter`:
    /// `[full, inc, ..., counter]`.
    pub fn chain_for(&self, counter: u64) -> Option<Vec<u64>> {
        let mut chain = Vec::new();
        let mut cur = counter;
        loop {
            let meta = self.images.get(&cur)?;
            chain.push(cur);
            match meta.kind {
                ImageKind::Full => break,
                ImageKind::Incremental { prev } => cur = prev,
            }
        }
        chain.reverse();
        Some(chain)
    }

    /// Serializes the engine's image metadata (counters, kinds, blob
    /// names, times) so a record can be reopened across restarts.
    pub fn export_meta(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(b"DVENG001");
        out.extend_from_slice(&self.counter.to_le_bytes());
        out.extend_from_slice(&self.relink_seq.to_le_bytes());
        out.extend_from_slice(&(self.blob_prefix.len() as u32).to_le_bytes());
        out.extend_from_slice(self.blob_prefix.as_bytes());
        out.extend_from_slice(&(self.images.len() as u64).to_le_bytes());
        for meta in self.images.values() {
            out.extend_from_slice(&meta.counter.to_le_bytes());
            out.extend_from_slice(&meta.time.as_nanos().to_le_bytes());
            match meta.kind {
                ImageKind::Full => {
                    out.push(0);
                    out.extend_from_slice(&0u64.to_le_bytes());
                }
                ImageKind::Incremental { prev } => {
                    out.push(1);
                    out.extend_from_slice(&prev.to_le_bytes());
                }
            }
            out.extend_from_slice(&(meta.blob.len() as u32).to_le_bytes());
            out.extend_from_slice(meta.blob.as_bytes());
            out.extend_from_slice(&meta.stored_bytes.to_le_bytes());
            out.extend_from_slice(&meta.raw_bytes.to_le_bytes());
        }
        out
    }

    /// Restores image metadata from [`Checkpointer::export_meta`] output,
    /// replacing this engine's history. Returns `None` on malformed data.
    pub fn import_meta(&mut self, mut data: &[u8]) -> Option<()> {
        fn take<'a>(data: &mut &'a [u8], n: usize) -> Option<&'a [u8]> {
            if data.len() < n {
                return None;
            }
            let (head, rest) = data.split_at(n);
            *data = rest;
            Some(head)
        }
        fn u64_of(data: &mut &[u8]) -> Option<u64> {
            take(data, 8).map(|b| u64::from_le_bytes(b.try_into().expect("8 bytes")))
        }
        if take(&mut data, 8)? != b"DVENG001" {
            return None;
        }
        let counter = u64_of(&mut data)?;
        let relink_seq = u64_of(&mut data)?;
        let prefix_len =
            u32::from_le_bytes(take(&mut data, 4)?.try_into().expect("4 bytes")) as usize;
        let blob_prefix = std::str::from_utf8(take(&mut data, prefix_len)?)
            .ok()?
            .to_string();
        let count = u64_of(&mut data)?;
        let mut images = BTreeMap::new();
        for _ in 0..count {
            let meta_counter = u64_of(&mut data)?;
            let time = Timestamp::from_nanos(u64_of(&mut data)?);
            let tag = take(&mut data, 1)?[0];
            let prev = u64_of(&mut data)?;
            let kind = match tag {
                0 => ImageKind::Full,
                1 => ImageKind::Incremental { prev },
                _ => return None,
            };
            let blob_len =
                u32::from_le_bytes(take(&mut data, 4)?.try_into().expect("4 bytes")) as usize;
            let blob = std::str::from_utf8(take(&mut data, blob_len)?)
                .ok()?
                .to_string();
            let stored_bytes = u64_of(&mut data)?;
            let raw_bytes = u64_of(&mut data)?;
            images.insert(
                meta_counter,
                ImageMeta {
                    counter: meta_counter,
                    time,
                    kind,
                    blob,
                    stored_bytes,
                    raw_bytes,
                },
            );
        }
        if !data.is_empty() {
            return None;
        }
        self.counter = counter;
        self.relink_seq = relink_seq;
        self.blob_prefix = blob_prefix;
        self.images = images;
        Some(())
    }

    /// Takes one checkpoint of `vee`, storing the image in `store`.
    ///
    /// With `commit_workers == 0` this is the classic synchronous path:
    /// capture, snapshot, resume, then encode/compress/write inline on
    /// this thread. With workers configured, the call returns right
    /// after resume ([`CheckpointReport::deferred`] is set) and the
    /// commit pipeline finishes the image off-thread; call
    /// [`Checkpointer::flush`] to wait for (and account) those commits.
    ///
    /// # Errors
    ///
    /// Returns the file system error if the snapshot point fails, or if
    /// an inline commit fails. Deferred commit failures surface through
    /// [`Checkpointer::flush`].
    pub fn checkpoint(
        &mut self,
        vee: &mut Vee,
        store: &SharedBlobStore,
    ) -> Result<CheckpointReport, FsError> {
        // Absorb any commits that resolved since the last call: a failed
        // one forces this checkpoint full so the chain re-anchors.
        self.reap();
        let mut timer = PhaseTimer::new();
        // A zero cadence would divide by zero; treat it as "always full".
        let full = self.force_full || self.counter.is_multiple_of(self.config.full_every.max(1));
        let counter = self.counter + 1;

        // --- Pre-checkpoint: work done while the session still runs. ---
        timer.enter("pre-checkpoint");
        // Pre-snapshot: flush dirty file data so the snapshot point has
        // little left to write.
        if !self.config.disable_pre_snapshot {
            vee.fs.sync()?;
        }
        // Pre-quiesce: wait for uninterruptible sleepers, bounded.
        let mut waited = Duration::ZERO;
        while !vee.all_signal_ready() && waited < self.config.pre_quiesce_timeout {
            (self.waiter)(self.config.pre_quiesce_step);
            waited += self.config.pre_quiesce_step;
            vee.tick();
        }

        // --- Quiesce: stop every process. ---
        timer.enter("quiesce");
        let resume_states: Vec<(dv_vee::Vpid, RunState)> =
            vee.processes().map(|p| (p.vpid, p.state)).collect();
        vee.stop_all();

        // --- Capture: while stopped, gather state without copying. ---
        timer.enter("capture");
        let mut processes = Vec::with_capacity(vee.process_count());
        let mut pages_saved = 0usize;
        let vpids: Vec<dv_vee::Vpid> = vee.processes().map(|p| p.vpid).collect();
        for vpid in &vpids {
            // Relink unlinked-but-open files before the FS snapshot so
            // their contents are reachable on revive without saving them
            // to the image.
            let mut relinks: Vec<(u32, String)> = Vec::new();
            {
                let process = vee.process(*vpid).expect("listed process");
                for (fd, obj) in process.fds.iter() {
                    if let FdObject::File { unlinked: true, .. } = obj {
                        let relink_path =
                            format!("{RELINK_DIR}/relink-{counter}-{}", self.relink_seq);
                        self.relink_seq += 1;
                        relinks.push((fd, relink_path));
                    }
                }
            }
            if !relinks.is_empty() {
                match vee.fs.mkdir(RELINK_DIR) {
                    Ok(()) | Err(FsError::AlreadyExists) => {}
                    Err(e) => return Err(e),
                }
                for (fd, relink_path) in &relinks {
                    let handle = {
                        let process = vee.process(*vpid).expect("listed process");
                        match process.fds.get(*fd) {
                            Some(FdObject::File { handle, .. }) => *handle,
                            _ => continue,
                        }
                    };
                    vee.fs.link_handle(handle, relink_path)?;
                    self.stats.relinks += 1;
                    self.obs.incr(names::CHECKPOINT_RELINKS);
                }
            }
            let process = vee.process_mut(*vpid).expect("listed process");
            let page_addrs = if full {
                let addrs = process.mem.resident_page_addrs();
                process.mem.arm_tracking();
                addrs
            } else {
                process.mem.take_dirty()
            };
            let captured = process.mem.capture_pages(&page_addrs);
            let pages: Vec<_> = if self.config.disable_cow {
                // Ablation: pay the full memory copy while stopped.
                captured
                    .into_iter()
                    .filter_map(|(addr, page)| page.map(|p| (addr, std::sync::Arc::new(*p))))
                    .collect()
            } else {
                captured
                    .into_iter()
                    .filter_map(|(addr, page)| page.map(|p| (addr, p)))
                    .collect()
            };
            pages_saved += pages.len();
            let relink_of = |fd: u32| {
                relinks
                    .iter()
                    .find(|(f, _)| *f == fd)
                    .map(|(_, p)| p.clone())
            };
            let record = record_process(process, pages, relink_of);
            processes.push(record);
        }
        let sockets: Vec<SocketRecord> = vee
            .sockets
            .iter()
            .map(|s| SocketRecord {
                id: s.id,
                proto: match s.proto {
                    dv_vee::Proto::Tcp => 0,
                    dv_vee::Proto::Udp => 1,
                },
                local_port: s.local_port,
                remote: s.remote.clone(),
                state: match s.state {
                    SockState::Unconnected => 0,
                    SockState::Connected => 1,
                    SockState::Reset => 2,
                },
                tx_bytes: s.tx_bytes,
                rx_bytes: s.rx_bytes,
            })
            .collect();
        let image = CheckpointImage {
            counter,
            time: vee.clock().now(),
            kind: if full {
                ImageKind::Full
            } else {
                ImageKind::Incremental { prev: self.counter }
            },
            hostname: vee.namespace.hostname.clone(),
            network_enabled: vee.network_enabled(),
            processes,
            sockets,
        };

        // --- File system snapshot, tied to the counter. ---
        timer.enter("fs-snapshot");
        match vee.fs.snapshot_point(counter) {
            Ok(()) | Err(FsError::Unsupported) => {}
            Err(e) => return Err(e),
        }

        // --- Writeback: deferred past resume by default; the ablation
        // pays it while the session is still stopped. ---
        let blob = format!("{}-{counter:08}", self.blob_prefix);
        let mut inline_result: Option<Result<(u64, u64), FsError>> = None;
        if self.config.disable_deferred_writeback {
            inline_result = Some(self.write_inline(&mut timer, &image, store, &blob));
        }

        // --- Resume: the session runs again; downtime ends here. Resume
        // happens before a writeback failure propagates, so a storage
        // fault never leaves the session stopped. ---
        timer.enter("resume");
        for (vpid, state) in resume_states {
            // Only processes that were runnable before the quiesce are
            // continued; a process stopped by the user stays stopped.
            if state == RunState::Runnable {
                let _ = vee.send_signal(vpid, Signal::Cont);
            }
        }

        // --- Commit: hand the capture to the pipeline if configured,
        // otherwise write inline on this thread. ---
        let deferred = (self.shared.is_some() || self.config.commit_workers > 0)
            && !self.config.disable_deferred_writeback;
        if deferred {
            timer.enter("enqueue");
            if self.shared.is_none() {
                self.ensure_pipeline(store);
            }
            let capacity = match self.shared.as_ref() {
                Some(sl) => sl.pipe.has_capacity_lane(sl.lane),
                None => self
                    .pipeline
                    .as_ref()
                    .expect("pipeline just ensured")
                    .has_capacity(),
            };
            if capacity {
                // The encode fault site is consulted here, on the
                // session thread, so injection schedules do not depend
                // on worker interleaving.
                let encode_fault =
                    encode_fault_of(self.plane.check(sites::CHECKPOINT_IMAGE_ENCODE));
                match self.shared.as_ref() {
                    Some(sl) => sl
                        .pipe
                        .enqueue_lane(sl.lane, image, blob, full, encode_fault),
                    None => self
                        .pipeline
                        .as_ref()
                        .expect("pipeline just ensured")
                        .enqueue(image, blob, full, encode_fault),
                }
                self.stats.queued += 1;
                self.obs.incr(names::CHECKPOINT_QUEUED);
                self.obs
                    .gauge_set(names::CHECKPOINT_QUEUE_DEPTH, self.inflight() as u64);
                self.counter = counter;
                self.force_full = false;
                self.stats.checkpoints += 1;
                if full {
                    self.stats.full_checkpoints += 1;
                }
                let phases = timer.finish();
                let downtime = phases.subset_total(&["quiesce", "capture", "fs-snapshot"]);
                self.stats.sync_downtime_nanos += downtime.as_nanos();
                self.observe_checkpoint(&phases, downtime, full);
                return Ok(CheckpointReport {
                    counter,
                    phases,
                    downtime,
                    pages_saved,
                    stored_bytes: 0,
                    raw_bytes: 0,
                    full,
                    deferred: true,
                });
            }
            // Backpressure: the queue is full. Drain it (preserving
            // strict commit order), absorb the outcomes, and commit this
            // capture inline.
            self.drain_pipeline();
            self.reap();
            self.stats.inline_fallbacks += 1;
            self.obs.incr(names::CHECKPOINT_INLINE_FALLBACKS);
            self.obs.event(
                "checkpoint",
                names::EV_INLINE_FALLBACK,
                format!("counter={counter}"),
            );
            // A drained failure may have severed this capture's chain;
            // committing it would leave an unrestorable incremental.
            if let ImageKind::Incremental { prev } = image.kind {
                if !self.images.contains_key(&prev) {
                    self.stats.write_failures += 1;
                    self.obs.incr(names::CHECKPOINT_WRITE_FAILURES);
                    self.force_full = true;
                    return Err(FsError::Io);
                }
            }
        }

        let (raw_bytes, stored_bytes) = match inline_result
            .unwrap_or_else(|| self.write_inline(&mut timer, &image, store, &blob))
        {
            Ok(done) => done,
            Err(e) => {
                // The checkpoint is lost but the session runs on: the
                // counter is not consumed, no metadata is recorded, and
                // the caller decides whether to retry. The next
                // checkpoint is forced full because this capture's
                // dirty-page set is gone.
                self.stats.write_failures += 1;
                self.obs.incr(names::CHECKPOINT_WRITE_FAILURES);
                self.force_full = true;
                return Err(e);
            }
        };
        self.note_raw_size(raw_bytes as usize);

        let phases = timer.finish();
        let mut downtime = phases.subset_total(&["quiesce", "capture", "fs-snapshot"]);
        if self.config.disable_deferred_writeback {
            downtime += phases.get("writeback");
        } else {
            self.stats.async_commit_nanos += phases.get("writeback").as_nanos();
            self.obs.add(
                names::CHECKPOINT_ASYNC_COMMIT_NANOS,
                phases.get("writeback").as_nanos(),
            );
        }
        self.stats.sync_downtime_nanos += downtime.as_nanos();
        self.observe_checkpoint(&phases, downtime, full);
        self.obs.add(names::CHECKPOINT_STORED_BYTES, stored_bytes);
        self.obs.add(names::CHECKPOINT_RAW_BYTES, raw_bytes);
        self.counter = counter;
        self.force_full = false;
        self.images.insert(
            counter,
            ImageMeta {
                counter,
                time: image.time,
                kind: image.kind,
                blob,
                stored_bytes,
                raw_bytes,
            },
        );
        self.stats.checkpoints += 1;
        if full {
            self.stats.full_checkpoints += 1;
        }
        self.stats.stored_bytes += stored_bytes;
        self.stats.raw_bytes += raw_bytes;
        Ok(CheckpointReport {
            counter,
            phases,
            downtime,
            pages_saved,
            stored_bytes,
            raw_bytes,
            full,
            deferred: false,
        })
    }

    /// Folds one checkpoint's phase breakdown into the observability
    /// registry: per-phase downtime histograms plus the checkpoint
    /// counters. Called once per successful checkpoint, deferred or not.
    fn observe_checkpoint(&self, phases: &PhaseBreakdown, downtime: Duration, full: bool) {
        self.obs.incr(names::CHECKPOINT_COUNT);
        if full {
            self.obs.incr(names::CHECKPOINT_FULL);
        }
        self.obs
            .observe(names::CHECKPOINT_QUIESCE, phases.get("quiesce").as_nanos());
        self.obs
            .observe(names::CHECKPOINT_CAPTURE, phases.get("capture").as_nanos());
        self.obs.observe(
            names::CHECKPOINT_FS_SNAPSHOT,
            phases.get("fs-snapshot").as_nanos(),
        );
        self.obs
            .add(names::CHECKPOINT_SYNC_DOWNTIME_NANOS, downtime.as_nanos());
    }

    /// The synchronous commit: encode, (optionally) compress, fault
    /// checks, and the store write, all on the calling thread.
    fn write_inline(
        &self,
        timer: &mut PhaseTimer,
        image: &CheckpointImage,
        store: &SharedBlobStore,
        blob: &str,
    ) -> Result<(u64, u64), FsError> {
        timer.enter("writeback");
        let mut buffer = Vec::with_capacity(self.buffer_estimate);
        buffer.extend_from_slice(&encode_image(image));
        match self.plane.check(sites::CHECKPOINT_IMAGE_ENCODE) {
            None | Some(IoFault::LatencySpike) => {}
            Some(IoFault::Enospc) => return Err(FsError::NoSpace),
            Some(IoFault::TornWrite) | Some(IoFault::ShortRead) => return Err(FsError::Io),
            Some(IoFault::Corrupt) => self.plane.mangle(&mut buffer),
        }
        let raw_bytes = buffer.len() as u64;
        let mut stored = if self.config.compress {
            compress(&buffer)
        } else {
            buffer
        };
        match self.plane.check(sites::CHECKPOINT_WRITEBACK) {
            None | Some(IoFault::LatencySpike) => {}
            Some(IoFault::Enospc) => return Err(FsError::NoSpace),
            Some(IoFault::TornWrite) | Some(IoFault::ShortRead) => return Err(FsError::Io),
            Some(IoFault::Corrupt) => self.plane.mangle(&mut stored),
        }
        let stored_bytes = stored.len() as u64;
        store.put_deduped(blob, stored)?;
        Ok((raw_bytes, stored_bytes))
    }
}

fn record_process(
    process: &Process,
    pages: Vec<(u64, std::sync::Arc<dv_vee::PageBuf>)>,
    relink_of: impl Fn(u32) -> Option<String>,
) -> ProcessRecord {
    ProcessRecord {
        vpid: process.vpid.0,
        parent: process.parent.map(|v| v.0),
        name: process.name.clone(),
        regs: process.regs,
        fpu: process.fpu,
        sched: process.sched,
        creds: process.creds,
        blocked: process.signals.blocked,
        handled: process.signals.handled,
        pending: process.signals.pending.iter().map(|s| *s as u8).collect(),
        ptraced_by: process.ptraced_by.map(|v| v.0),
        cwd: process.cwd.clone(),
        net_allowed: process.net_allowed,
        regions: process.mem.regions().cloned().collect(),
        pages,
        fds: process
            .fds
            .iter()
            .map(|(fd, obj)| match obj {
                FdObject::File {
                    path,
                    offset,
                    unlinked,
                    ..
                } => FdRecord::File {
                    fd,
                    path: path.clone(),
                    offset: *offset,
                    unlinked: *unlinked,
                    relink: relink_of(fd),
                },
                FdObject::Socket { id } => FdRecord::Socket { fd, id: *id },
            })
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dv_lsfs::Lsfs;
    use dv_time::SimClock;
    use dv_vee::{HostPidAllocator, Prot};

    fn setup() -> (Vee, SimClock, Checkpointer, SharedBlobStore) {
        let clock = SimClock::new();
        let vee = Vee::new(
            1,
            clock.shared(),
            Box::new(Lsfs::new()),
            HostPidAllocator::new(),
        );
        let engine = Checkpointer::with_sim_clock(
            EngineConfig {
                full_every: 4,
                ..EngineConfig::default()
            },
            clock.clone(),
        );
        (vee, clock, engine, SharedBlobStore::in_memory())
    }

    #[test]
    fn checkpoint_produces_image_and_resumes() {
        let (mut vee, _clock, mut engine, store) = setup();
        let p = vee.spawn(None, "app").unwrap();
        let addr = vee.mmap(p, 8192, Prot::ReadWrite).unwrap();
        vee.mem_write(p, addr, b"state").unwrap();
        let report = engine.checkpoint(&mut vee, &store).unwrap();
        assert_eq!(report.counter, 1);
        assert!(report.full);
        assert_eq!(report.pages_saved, 1);
        assert!(store.lock().contains("ckpt-00000001"));
        assert_eq!(
            vee.process(p).unwrap().state,
            RunState::Runnable,
            "session resumed"
        );
    }

    #[test]
    fn incrementals_save_only_dirty_pages() {
        let (mut vee, _clock, mut engine, store) = setup();
        let p = vee.spawn(None, "app").unwrap();
        let addr = vee.mmap(p, 16 * 4096, Prot::ReadWrite).unwrap();
        vee.mem_write(p, addr, &vec![1u8; 16 * 4096]).unwrap();
        let full = engine.checkpoint(&mut vee, &store).unwrap();
        assert_eq!(full.pages_saved, 16);
        // Touch two pages.
        vee.mem_write(p, addr + 4096, b"x").unwrap();
        vee.mem_write(p, addr + 5 * 4096, b"y").unwrap();
        let inc = engine.checkpoint(&mut vee, &store).unwrap();
        assert!(!inc.full);
        assert_eq!(inc.pages_saved, 2);
        assert!(inc.raw_bytes < full.raw_bytes / 4);
        // No writes: empty incremental.
        let idle = engine.checkpoint(&mut vee, &store).unwrap();
        assert_eq!(idle.pages_saved, 0);
    }

    #[test]
    fn full_checkpoints_recur_periodically() {
        let (mut vee, _clock, mut engine, store) = setup();
        vee.spawn(None, "app").unwrap();
        let mut fulls = Vec::new();
        for _ in 0..9 {
            fulls.push(engine.checkpoint(&mut vee, &store).unwrap().full);
        }
        assert_eq!(
            fulls,
            vec![true, false, false, false, true, false, false, false, true]
        );
    }

    #[test]
    fn chain_resolution() {
        let (mut vee, _clock, mut engine, store) = setup();
        vee.spawn(None, "app").unwrap();
        for _ in 0..6 {
            engine.checkpoint(&mut vee, &store).unwrap();
        }
        assert_eq!(engine.chain_for(3).unwrap(), vec![1, 2, 3]);
        assert_eq!(engine.chain_for(5).unwrap(), vec![5]);
        assert_eq!(engine.chain_for(6).unwrap(), vec![5, 6]);
        assert!(engine.chain_for(99).is_none());
    }

    #[test]
    fn counter_lookup_by_time() {
        let (mut vee, clock, mut engine, store) = setup();
        vee.spawn(None, "app").unwrap();
        for _ in 0..3 {
            clock.advance(Duration::from_secs(1));
            engine.checkpoint(&mut vee, &store).unwrap();
        }
        // Checkpoints at t=1s, 2s, 3s.
        assert_eq!(
            engine.counter_at_or_before(Timestamp::from_millis(2_500)),
            Some(2)
        );
        assert_eq!(
            engine.counter_at_or_before(Timestamp::from_secs(3)),
            Some(3)
        );
        assert_eq!(
            engine.counter_at_or_before(Timestamp::from_millis(500)),
            None
        );
    }

    #[test]
    fn pre_quiesce_waits_for_disk_sleepers() {
        let (mut vee, _clock, mut engine, store) = setup();
        let p = vee.spawn(None, "io").unwrap();
        vee.enter_disk_sleep(p, Duration::from_millis(20)).unwrap();
        let report = engine.checkpoint(&mut vee, &store).unwrap();
        // The engine advanced the clock past the sleep and stopped the
        // process cleanly.
        assert!(report.phases.get("pre-checkpoint") > Duration::ZERO);
        assert_eq!(vee.process(p).unwrap().state, RunState::Runnable);
    }

    #[test]
    fn fs_snapshot_ties_to_counter() {
        let (mut vee, _clock, mut engine, store) = setup();
        vee.spawn(None, "app").unwrap();
        vee.fs.write_all("/doc", b"v1").unwrap();
        engine.checkpoint(&mut vee, &store).unwrap();
        vee.fs.write_all("/doc", b"v2").unwrap();
        engine.checkpoint(&mut vee, &store).unwrap();
        // The Lsfs inside the VEE has snapshots 1 and 2; verified at the
        // session layer (core) which holds a typed handle. Here we check
        // the counters advanced.
        assert_eq!(engine.images().count(), 2);
    }

    #[test]
    fn relinks_unlinked_open_files() {
        let (mut vee, _clock, mut engine, store) = setup();
        let p = vee.spawn(None, "app").unwrap();
        vee.fs.write_all("/tmp_scratch", b"precious bytes").unwrap();
        let fd = vee.open(p, "/tmp_scratch").unwrap();
        vee.unlink("/tmp_scratch").unwrap();
        let _ = fd;
        engine.checkpoint(&mut vee, &store).unwrap();
        assert_eq!(engine.stats().relinks, 1);
        // The relinked name exists in the live fs (and so in the
        // snapshot taken at the same counter).
        let entries = vee.fs.readdir(RELINK_DIR).unwrap();
        assert_eq!(entries.len(), 1);
        assert!(entries[0].name.starts_with("relink-1-"));
    }

    #[test]
    fn compression_reduces_stored_size() {
        let (mut vee, clock, _engine, store) = setup();
        let mut engine = Checkpointer::with_sim_clock(
            EngineConfig {
                compress: true,
                ..EngineConfig::default()
            },
            clock,
        );
        let p = vee.spawn(None, "app").unwrap();
        let addr = vee.mmap(p, 64 * 4096, Prot::ReadWrite).unwrap();
        vee.mem_write(p, addr, &vec![7u8; 64 * 4096]).unwrap();
        let report = engine.checkpoint(&mut vee, &store).unwrap();
        assert!(report.stored_bytes < report.raw_bytes / 10);
    }

    #[test]
    fn engine_meta_round_trips() {
        let (mut vee, clock, mut engine, store) = setup();
        vee.spawn(None, "app").unwrap();
        for _ in 0..6 {
            clock.advance(Duration::from_secs(1));
            engine.checkpoint(&mut vee, &store).unwrap();
        }
        let meta = engine.export_meta();
        let mut restored = Checkpointer::with_sim_clock(EngineConfig::default(), SimClock::new());
        restored.import_meta(&meta).expect("import");
        assert_eq!(
            restored.images().map(|m| m.counter).collect::<Vec<_>>(),
            engine.images().map(|m| m.counter).collect::<Vec<_>>()
        );
        assert_eq!(restored.chain_for(6), engine.chain_for(6));
        assert_eq!(
            restored.counter_at_or_before(Timestamp::from_secs(3)),
            engine.counter_at_or_before(Timestamp::from_secs(3))
        );
        // A further checkpoint continues the numbering.
        let report = restored.checkpoint(&mut vee, &store).unwrap();
        assert_eq!(report.counter, 7);
        assert!(restored.import_meta(&meta[..10]).is_none());
    }

    #[test]
    fn ablations_increase_downtime() {
        let run_once = |config: EngineConfig| -> Duration {
            let clock = SimClock::new();
            let mut vee = Vee::new(
                1,
                clock.shared(),
                Box::new(Lsfs::new()),
                HostPidAllocator::new(),
            );
            let mut engine = Checkpointer::with_sim_clock(config, clock);
            let store = SharedBlobStore::in_memory();
            let p = vee.spawn(None, "app").unwrap();
            let addr = vee.mmap(p, 8 << 20, Prot::ReadWrite).unwrap();
            vee.mem_write(p, addr, &vec![5u8; 8 << 20]).unwrap();
            // Warm up, then measure an incremental with a fresh dirty set.
            engine.checkpoint(&mut vee, &store).unwrap();
            vee.mem_write(p, addr, &vec![6u8; 4 << 20]).unwrap();
            engine.checkpoint(&mut vee, &store).unwrap().downtime
        };
        // Downtime is wall time: a deschedule spike inflates a single
        // sample arbitrarily, so compare the minimum of several runs
        // (spikes only ever add time; the minimum is the clean signal).
        let run = |config: EngineConfig| -> Duration {
            (0..3)
                .map(|_| run_once(config))
                .min()
                .expect("three samples")
        };
        let optimized = run(EngineConfig::default());
        let no_incremental = run(EngineConfig {
            full_every: 1,
            ..EngineConfig::default()
        });
        let no_defer = run(EngineConfig {
            disable_deferred_writeback: true,
            ..EngineConfig::default()
        });
        let no_cow = run(EngineConfig {
            disable_cow: true,
            ..EngineConfig::default()
        });
        assert!(
            no_defer > optimized,
            "synchronous writeback must add downtime ({no_defer} vs {optimized})"
        );
        assert!(
            no_cow > optimized,
            "eager copy must add downtime ({no_cow} vs {optimized})"
        );
        // Full-every-time saves more pages than the dirty subset.
        assert!(no_incremental >= optimized);
    }

    #[test]
    fn disabled_cow_still_restores_correctly() {
        let clock = SimClock::new();
        let mut vee = Vee::new(
            1,
            clock.shared(),
            Box::new(Lsfs::new()),
            HostPidAllocator::new(),
        );
        let mut engine = Checkpointer::with_sim_clock(
            EngineConfig {
                disable_cow: true,
                disable_deferred_writeback: true,
                disable_pre_snapshot: true,
                full_every: 1,
                ..EngineConfig::default()
            },
            clock,
        );
        let store = SharedBlobStore::in_memory();
        let p = vee.spawn(None, "app").unwrap();
        let addr = vee.mmap(p, 4096, Prot::ReadWrite).unwrap();
        vee.mem_write(p, addr, b"ablated but correct").unwrap();
        let report = engine.checkpoint(&mut vee, &store).unwrap();
        let image =
            crate::restore::load_image(&mut store.lock(), "ckpt", report.counter, false).unwrap();
        assert_eq!(&image.processes[0].pages[0].1[..19], b"ablated but correct");
    }

    #[test]
    fn deferred_commit_matches_inline() {
        let run = |workers: usize| -> Vec<(u64, Vec<u8>)> {
            let clock = SimClock::new();
            let mut vee = Vee::new(
                1,
                clock.shared(),
                Box::new(Lsfs::new()),
                HostPidAllocator::new(),
            );
            let mut engine = Checkpointer::with_sim_clock(
                EngineConfig {
                    compress: true,
                    full_every: 3,
                    commit_workers: workers,
                    // Deep enough that no capture ever falls back
                    // inline, even when test-suite load delays workers.
                    commit_queue_depth: 8,
                    ..EngineConfig::default()
                },
                clock,
            );
            let store = SharedBlobStore::in_memory();
            let p = vee.spawn(None, "app").unwrap();
            let addr = vee.mmap(p, 32 * 4096, Prot::ReadWrite).unwrap();
            for i in 0..5u8 {
                vee.mem_write(p, addr + u64::from(i) * 4096, &vec![i + 1; 4096])
                    .unwrap();
                let report = engine.checkpoint(&mut vee, &store).unwrap();
                assert_eq!(report.deferred, workers > 0);
            }
            engine.flush().unwrap();
            let stats = engine.stats();
            if workers > 0 {
                assert_eq!(stats.queued, 5);
                assert_eq!(stats.committed, 5);
            }
            assert_eq!(stats.write_failures, 0);
            assert!(stats.stored_bytes > 0 && stats.raw_bytes > stats.stored_bytes);
            engine
                .images()
                .map(|m| {
                    let blob = store.lock().get(&m.blob).unwrap();
                    let plain = crate::compress::decompress(&blob).unwrap();
                    (m.counter, plain)
                })
                .collect()
        };
        let inline = run(0);
        let deferred = run(2);
        assert_eq!(inline.len(), 5);
        assert_eq!(
            inline, deferred,
            "deferred commits must decompress to the same image bytes"
        );
    }

    #[test]
    fn backpressure_falls_back_to_inline_commit() {
        let clock = SimClock::new();
        let mut vee = Vee::new(
            1,
            clock.shared(),
            Box::new(Lsfs::new()),
            HostPidAllocator::new(),
        );
        let mut engine = Checkpointer::with_sim_clock(
            EngineConfig {
                full_every: 100,
                commit_workers: 1,
                commit_queue_depth: 1,
                commit_retry_backoff: Duration::from_millis(40),
                ..EngineConfig::default()
            },
            clock,
        );
        // Wall sleeper + a latency spike on every writeback: each
        // pipeline commit stalls its worker for 40 ms, so the session
        // thread reliably finds the depth-1 queue full.
        engine.set_sleeper(Sleeper::Wall);
        engine.set_fault_plane(
            dv_fault::FaultPlan::new(11)
                .every_nth(sites::CHECKPOINT_WRITEBACK, 1, IoFault::LatencySpike)
                .build(),
        );
        let store = SharedBlobStore::in_memory();
        vee.spawn(None, "app").unwrap();
        for _ in 0..4 {
            engine.checkpoint(&mut vee, &store).unwrap();
        }
        engine.flush().unwrap();
        let stats = engine.stats();
        assert_eq!(stats.checkpoints, 4);
        assert!(
            stats.inline_fallbacks >= 2,
            "queue-full captures must commit inline (got {})",
            stats.inline_fallbacks
        );
        assert_eq!(
            engine.images().map(|m| m.counter).collect::<Vec<_>>(),
            vec![1, 2, 3, 4],
            "fallbacks must not break counter order"
        );
    }

    #[test]
    fn async_failure_forces_full_reanchor() {
        let clock = SimClock::new();
        let mut vee = Vee::new(
            1,
            clock.shared(),
            Box::new(Lsfs::new()),
            HostPidAllocator::new(),
        );
        let mut engine = Checkpointer::with_sim_clock(
            EngineConfig {
                full_every: 100,
                commit_workers: 2,
                commit_retry_limit: 1,
                commit_retry_backoff: Duration::from_millis(1),
                ..EngineConfig::default()
            },
            clock,
        );
        // Checkpoint 2's commit fails on both attempts (checks 2 and 3
        // at the writeback site); checkpoint 3 chains through it and
        // must cascade-fail without a store write.
        engine.set_fault_plane(
            dv_fault::FaultPlan::new(3)
                .fail_nth(sites::CHECKPOINT_WRITEBACK, 2, IoFault::Enospc)
                .fail_nth(sites::CHECKPOINT_WRITEBACK, 3, IoFault::Enospc)
                .build(),
        );
        let store = SharedBlobStore::in_memory();
        let p = vee.spawn(None, "app").unwrap();
        let addr = vee.mmap(p, 4096, Prot::ReadWrite).unwrap();
        for i in 0..3u8 {
            vee.mem_write(p, addr, &[i + 1]).unwrap();
            engine.checkpoint(&mut vee, &store).unwrap();
        }
        assert_eq!(
            engine.flush(),
            Err(FsError::NoSpace),
            "flush surfaces the async commit failure"
        );
        let stats = engine.stats();
        assert_eq!(stats.committed, 1);
        assert_eq!(stats.write_failures, 2, "direct failure + cascade");
        assert!(!store.lock().contains("ckpt-00000002"));
        assert!(!store.lock().contains("ckpt-00000003"));
        // The chain re-anchors: the next checkpoint is forced full and
        // restorable on its own.
        let report = engine.checkpoint(&mut vee, &store).unwrap();
        assert!(report.full, "re-anchor after a lost incremental");
        assert_eq!(report.counter, 4);
        engine.flush().unwrap();
        assert_eq!(
            engine.images().map(|m| m.counter).collect::<Vec<_>>(),
            vec![1, 4]
        );
        assert_eq!(engine.chain_for(4).unwrap(), vec![4]);
    }

    #[test]
    fn downtime_excludes_writeback() {
        let (mut vee, _clock, mut engine, store) = setup();
        let p = vee.spawn(None, "app").unwrap();
        let addr = vee.mmap(p, 256 * 4096, Prot::ReadWrite).unwrap();
        vee.mem_write(p, addr, &vec![3u8; 256 * 4096]).unwrap();
        let report = engine.checkpoint(&mut vee, &store).unwrap();
        assert_eq!(
            report.downtime,
            report
                .phases
                .subset_total(&["quiesce", "capture", "fs-snapshot"])
        );
        assert!(report.phases.get("writeback") > Duration::ZERO);
    }
}
