//! Accessible trees.
//!
//! Modern desktops expose UI content to assistive technology as a tree of
//! accessible components per application (§4.2). DejaView's text capture
//! is built on this interface. Two properties of the real infrastructure
//! matter for the design and are modelled here:
//!
//! * every component access crosses into the application (a round of
//!   context switches) — the tree counts accesses, and can optionally
//!   charge a real per-access delay so benchmarks can show why the
//!   daemon's mirror tree exists;
//! * full-tree traversal is therefore "extremely expensive ... and can
//!   destroy interactive responsiveness".

use std::cell::Cell;
use std::collections::HashMap;

use dv_time::Duration;

/// A component identifier, unique within one application's tree.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct NodeId(pub u64);

/// The role of an accessible component.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Role {
    /// The application root.
    Application,
    /// A top-level window; its text is the window title.
    Window,
    /// A document area (editor buffer, rendered web page).
    Document,
    /// A paragraph or text block.
    Paragraph,
    /// A menu item (one of the paper's special text properties).
    MenuItem,
    /// A hyperlink (one of the paper's special text properties).
    Link,
    /// A push button.
    Button,
    /// An editable text field.
    TextInput,
    /// A static label.
    Label,
    /// Terminal output area.
    Terminal,
}

/// One accessible component.
#[derive(Clone, Debug)]
pub struct AccessibleNode {
    /// The component's identifier.
    pub id: NodeId,
    /// Its role.
    pub role: Role,
    /// The text it currently displays (empty for structural nodes).
    pub text: String,
    /// Parent component, `None` for the root.
    pub parent: Option<NodeId>,
    /// Child components in order.
    pub children: Vec<NodeId>,
}

/// One application's accessible tree.
///
/// Reads go through [`AccessibleTree::node`], which charges the access
/// cost model; the capture daemon is careful to touch as few components
/// as possible.
#[derive(Debug)]
pub struct AccessibleTree {
    nodes: HashMap<NodeId, AccessibleNode>,
    root: NodeId,
    next_id: u64,
    accesses: Cell<u64>,
    access_delay: Option<Duration>,
}

impl AccessibleTree {
    /// Creates a tree containing an application root named `app_name`.
    pub fn new(app_name: &str) -> Self {
        let root = NodeId(1);
        let mut nodes = HashMap::new();
        nodes.insert(
            root,
            AccessibleNode {
                id: root,
                role: Role::Application,
                text: app_name.to_string(),
                parent: None,
                children: Vec::new(),
            },
        );
        AccessibleTree {
            nodes,
            root,
            next_id: 2,
            accesses: Cell::new(0),
            access_delay: None,
        }
    }

    /// Charges a real delay on every component access, modelling the
    /// context-switch cost of the real accessibility IPC.
    pub fn set_access_delay(&mut self, delay: Option<Duration>) {
        self.access_delay = delay;
    }

    /// Returns the root component.
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// Returns the number of components.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Returns whether only the root exists.
    pub fn is_empty(&self) -> bool {
        self.nodes.len() <= 1
    }

    /// Returns how many component accesses have been charged.
    pub fn accesses(&self) -> u64 {
        self.accesses.get()
    }

    /// Reads one component, charging the access cost.
    pub fn node(&self, id: NodeId) -> Option<&AccessibleNode> {
        self.accesses.set(self.accesses.get() + 1);
        if let Some(delay) = self.access_delay {
            // Spin rather than sleep: the modelled IPC round trip is in
            // the tens of microseconds, far below timer resolution.
            let deadline = std::time::Instant::now() + delay.to_std();
            while std::time::Instant::now() < deadline {
                std::hint::spin_loop();
            }
        }
        self.nodes.get(&id)
    }

    /// Reads one component without charging the cost model; reserved for
    /// tests and invariant checks.
    #[cfg(test)]
    pub(crate) fn node_uncharged(&self, id: NodeId) -> Option<&AccessibleNode> {
        self.nodes.get(&id)
    }

    /// Adds a child component, returning its id.
    ///
    /// # Panics
    ///
    /// Panics if `parent` does not exist.
    pub fn add_node(&mut self, parent: NodeId, role: Role, text: &str) -> NodeId {
        assert!(self.nodes.contains_key(&parent), "parent must exist");
        let id = NodeId(self.next_id);
        self.next_id += 1;
        self.nodes.insert(
            id,
            AccessibleNode {
                id,
                role,
                text: text.to_string(),
                parent: Some(parent),
                children: Vec::new(),
            },
        );
        self.nodes
            .get_mut(&parent)
            .expect("parent exists")
            .children
            .push(id);
        id
    }

    /// Replaces a component's text, returning the old text.
    ///
    /// # Panics
    ///
    /// Panics if the component does not exist.
    pub fn set_text(&mut self, id: NodeId, text: &str) -> String {
        let node = self.nodes.get_mut(&id).expect("node must exist");
        std::mem::replace(&mut node.text, text.to_string())
    }

    /// Removes a component and its entire subtree, returning the removed
    /// ids (preorder).
    ///
    /// # Panics
    ///
    /// Panics if the component does not exist or is the root.
    pub fn remove_subtree(&mut self, id: NodeId) -> Vec<NodeId> {
        assert_ne!(id, self.root, "cannot remove the application root");
        let parent = self
            .nodes
            .get(&id)
            .expect("node must exist")
            .parent
            .expect("non-root has a parent");
        let siblings = &mut self.nodes.get_mut(&parent).expect("parent exists").children;
        siblings.retain(|&c| c != id);
        let mut removed = Vec::new();
        let mut stack = vec![id];
        while let Some(cur) = stack.pop() {
            if let Some(node) = self.nodes.remove(&cur) {
                stack.extend(node.children.iter().copied());
                removed.push(cur);
            }
        }
        removed
    }

    /// Performs a full traversal through the charged interface, returning
    /// every component in preorder. This is the expensive operation the
    /// mirror tree exists to avoid.
    pub fn full_traversal(&self) -> Vec<AccessibleNode> {
        let mut out = Vec::new();
        let mut stack = vec![self.root];
        while let Some(id) = stack.pop() {
            if let Some(node) = self.node(id) {
                let node = node.clone();
                stack.extend(node.children.iter().rev().copied());
                out.push(node);
            }
        }
        out
    }

    /// Returns the nearest ancestor (or self) with [`Role::Window`],
    /// through the charged interface.
    pub fn enclosing_window(&self, mut id: NodeId) -> Option<NodeId> {
        loop {
            let node = self.node(id)?;
            if node.role == Role::Window {
                return Some(id);
            }
            id = node.parent?;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> (AccessibleTree, NodeId, NodeId, NodeId) {
        let mut tree = AccessibleTree::new("editor");
        let win = tree.add_node(tree.root(), Role::Window, "untitled - editor");
        let doc = tree.add_node(win, Role::Document, "");
        let para = tree.add_node(doc, Role::Paragraph, "hello world");
        (tree, win, doc, para)
    }

    #[test]
    fn construction_builds_structure() {
        let (tree, win, doc, para) = sample();
        assert_eq!(tree.len(), 4);
        let win_node = tree.node(win).unwrap();
        assert_eq!(win_node.parent, Some(tree.root()));
        assert_eq!(win_node.children, vec![doc]);
        assert_eq!(tree.node(para).unwrap().text, "hello world");
    }

    #[test]
    fn accesses_are_charged() {
        let (tree, win, _, _) = sample();
        let before = tree.accesses();
        tree.node(win);
        tree.node(win);
        assert_eq!(tree.accesses(), before + 2);
    }

    #[test]
    fn set_text_returns_old() {
        let (mut tree, _, _, para) = sample();
        let old = tree.set_text(para, "goodbye");
        assert_eq!(old, "hello world");
        assert_eq!(tree.node(para).unwrap().text, "goodbye");
    }

    #[test]
    fn remove_subtree_removes_descendants() {
        let (mut tree, win, doc, para) = sample();
        let removed = tree.remove_subtree(doc);
        assert!(removed.contains(&doc) && removed.contains(&para));
        assert_eq!(tree.len(), 2);
        assert!(tree.node(para).is_none());
        assert!(tree.node(win).unwrap().children.is_empty());
    }

    #[test]
    fn full_traversal_is_preorder_and_expensive() {
        let (tree, win, doc, para) = sample();
        let before = tree.accesses();
        let all = tree.full_traversal();
        let ids: Vec<NodeId> = all.iter().map(|n| n.id).collect();
        assert_eq!(ids, vec![tree.root(), win, doc, para]);
        assert_eq!(tree.accesses() - before, 4, "one charged access per node");
    }

    #[test]
    fn enclosing_window_walks_up() {
        let (tree, win, _, para) = sample();
        assert_eq!(tree.enclosing_window(para), Some(win));
        assert_eq!(tree.enclosing_window(win), Some(win));
        assert_eq!(tree.enclosing_window(tree.root()), None);
    }

    #[test]
    #[should_panic(expected = "root")]
    fn removing_root_panics() {
        let (mut tree, _, _, _) = sample();
        let root = tree.root();
        tree.remove_subtree(root);
    }
}
