//! Property tests for log cleaning and persistence.
//!
//! * Compaction must be invisible: after arbitrary operations and
//!   snapshot points, compacting the log changes no observable state —
//!   not the live tree, not any retained snapshot — while never growing
//!   the log.
//! * Save/load must be lossless: a reloaded file system equals the
//!   original, including snapshots.

use proptest::prelude::*;

use dv_lsfs::{FileType, Filesystem, Lsfs};

#[derive(Clone, Debug)]
enum Op {
    Write {
        path_seed: usize,
        size: usize,
        fill: u8,
    },
    Mkdir {
        path_seed: usize,
    },
    Unlink {
        path_seed: usize,
    },
    Snapshot,
    Sync,
}

const PATHS: &[&str] = &["/a", "/b", "/d/x", "/d/y", "/d/z"];

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (any::<usize>(), 1..20_000usize, any::<u8>())
            .prop_map(|(path_seed, size, fill)| Op::Write { path_seed, size, fill }),
        1 => any::<usize>().prop_map(|path_seed| Op::Mkdir { path_seed }),
        1 => any::<usize>().prop_map(|path_seed| Op::Unlink { path_seed }),
        1 => Just(Op::Snapshot),
        1 => Just(Op::Sync),
    ]
}

fn apply(fs: &mut Lsfs, op: &Op, next_snapshot: &mut u64) {
    match op {
        Op::Write {
            path_seed,
            size,
            fill,
        } => {
            let path = PATHS[path_seed % PATHS.len()];
            let _ = fs.mkdir_all("/d");
            let _ = fs.write_all(path, &vec![*fill; *size]);
        }
        Op::Mkdir { path_seed } => {
            let _ = fs.mkdir(&format!("/dir{}", path_seed % 3));
        }
        Op::Unlink { path_seed } => {
            let path = PATHS[path_seed % PATHS.len()];
            let _ = fs.unlink(path);
        }
        Op::Snapshot => {
            *next_snapshot += 1;
            fs.snapshot_point(*next_snapshot).unwrap();
        }
        Op::Sync => {
            fs.sync().unwrap();
        }
    }
}

/// Captures every observable fact about a file system: the full tree
/// plus all file contents, for the live state and each snapshot.
fn observe(fs: &Lsfs) -> Vec<(String, Vec<u8>)> {
    fn walk(fs: &dyn Filesystem, path: &str, out: &mut Vec<(String, Vec<u8>)>) {
        for entry in fs.readdir(path).unwrap_or_default() {
            let child = if path == "/" {
                format!("/{}", entry.name)
            } else {
                format!("{path}/{}", entry.name)
            };
            match entry.ftype {
                FileType::Regular => {
                    out.push((child.clone(), fs.read_all(&child).unwrap()));
                }
                FileType::Directory => {
                    out.push((child.clone(), Vec::new()));
                    walk(fs, &child, out);
                }
            }
        }
    }
    let mut out = Vec::new();
    walk(fs, "/", &mut out);
    for counter in fs.snapshot_counters() {
        let snap = fs.snapshot(counter).unwrap();
        let mut snap_out = Vec::new();
        walk(&snap, "/", &mut snap_out);
        for (path, data) in snap_out {
            out.push((format!("snap{counter}:{path}"), data));
        }
    }
    out.sort();
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Compaction preserves all observable state and never grows the log.
    #[test]
    fn compaction_is_invisible(ops in prop::collection::vec(arb_op(), 1..40)) {
        let mut fs = Lsfs::new();
        let mut next_snapshot = 0;
        for op in &ops {
            apply(&mut fs, op, &mut next_snapshot);
        }
        fs.sync().unwrap();
        let before = observe(&fs);
        let size_before = fs.gc_stats().disk_bytes;
        fs.compact().unwrap();
        let after = observe(&fs);
        prop_assert_eq!(before, after, "compaction changed observable state");
        if let Err(why) = fs.check() {
            prop_assert!(false, "fsck after compaction: {}", why);
        }
        prop_assert!(fs.gc_stats().disk_bytes <= size_before);
        // The compacted fs stays fully functional.
        fs.write_all("/post-compact", b"still alive").unwrap();
        fs.sync().unwrap();
        prop_assert_eq!(fs.read_all("/post-compact").unwrap(), b"still alive".to_vec());
    }

    /// Save/load round-trips every observable fact, including snapshots.
    #[test]
    fn save_load_is_lossless(ops in prop::collection::vec(arb_op(), 1..40)) {
        let mut fs = Lsfs::new();
        let mut next_snapshot = 0;
        for op in &ops {
            apply(&mut fs, op, &mut next_snapshot);
        }
        let saved = fs.save().unwrap();
        let loaded = Lsfs::load(&saved).unwrap();
        prop_assert_eq!(observe(&fs), observe(&loaded));
    }

    /// Save/load after compaction also round-trips the live state (the
    /// documented caveat: snapshots are in-memory only after compaction,
    /// so only the live tree is compared).
    #[test]
    fn compact_then_save_load_keeps_live_state(ops in prop::collection::vec(arb_op(), 1..30)) {
        let mut fs = Lsfs::new();
        let mut next_snapshot = 0;
        for op in &ops {
            apply(&mut fs, op, &mut next_snapshot);
        }
        fs.compact().unwrap();
        let live_before: Vec<(String, Vec<u8>)> = observe(&fs)
            .into_iter()
            .filter(|(p, _)| !p.starts_with("snap"))
            .collect();
        let saved = fs.save().unwrap();
        let loaded = Lsfs::load(&saved).unwrap();
        let live_after: Vec<(String, Vec<u8>)> = observe(&loaded)
            .into_iter()
            .filter(|(p, _)| !p.starts_with("snap"))
            .collect();
        prop_assert_eq!(live_before, live_after);
    }
}
