//! The virtual file system interface.
//!
//! Every file system in this crate — the plain in-memory FS, the
//! log-structured FS, its read-only snapshot views, and the union FS —
//! implements [`Filesystem`]. The trait is path-based with an additional
//! handle layer giving POSIX open-file semantics: a handle keeps a file's
//! contents reachable after `unlink`, which DejaView's checkpoint engine
//! relies on when it relinks unlinked-but-open files before a snapshot
//! (§5.1.2).

use dv_time::Timestamp;

use crate::error::FsResult;

/// The type of a file system object.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FileType {
    /// A regular file.
    Regular,
    /// A directory.
    Directory,
}

/// Metadata returned by [`Filesystem::stat`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Metadata {
    /// Inode number, unique within one file system instance.
    pub ino: u64,
    /// Object type.
    pub ftype: FileType,
    /// File size in bytes (0 for directories).
    pub size: u64,
    /// Number of directory entries referring to the inode.
    pub nlink: u32,
    /// Last modification time.
    pub mtime: Timestamp,
}

/// One entry returned by [`Filesystem::readdir`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct DirEntry {
    /// The entry's name within its directory.
    pub name: String,
    /// The entry's type.
    pub ftype: FileType,
}

/// An open-file handle, valid until closed on the issuing file system.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Handle(pub u64);

/// A POSIX-flavoured file system.
///
/// All paths are absolute (see [`crate::path`]). Reads past end of file
/// return the available prefix; writes past end of file extend it with
/// zeros (sparse semantics).
pub trait Filesystem: Send {
    /// Creates an empty regular file.
    fn create(&mut self, path: &str) -> FsResult<()>;

    /// Creates an empty directory.
    fn mkdir(&mut self, path: &str) -> FsResult<()>;

    /// Writes `data` at `offset`, extending the file as needed.
    fn write_at(&mut self, path: &str, offset: u64, data: &[u8]) -> FsResult<()>;

    /// Sets the file size, zero-filling on extension.
    fn truncate(&mut self, path: &str, size: u64) -> FsResult<()>;

    /// Reads up to `len` bytes at `offset`.
    fn read_at(&self, path: &str, offset: u64, len: usize) -> FsResult<Vec<u8>>;

    /// Removes a regular file's directory entry.
    fn unlink(&mut self, path: &str) -> FsResult<()>;

    /// Removes an empty directory.
    fn rmdir(&mut self, path: &str) -> FsResult<()>;

    /// Atomically renames `from` to `to`, replacing a regular file at
    /// `to` if one exists.
    fn rename(&mut self, from: &str, to: &str) -> FsResult<()>;

    /// Lists a directory in name order.
    fn readdir(&self, path: &str) -> FsResult<Vec<DirEntry>>;

    /// Returns metadata for a path.
    fn stat(&self, path: &str) -> FsResult<Metadata>;

    /// Opens a handle to a regular file. The handle keeps the file's
    /// contents alive across `unlink`.
    fn open(&mut self, path: &str) -> FsResult<Handle>;

    /// Reads through a handle.
    fn read_handle(&self, h: Handle, offset: u64, len: usize) -> FsResult<Vec<u8>>;

    /// Writes through a handle.
    fn write_handle(&mut self, h: Handle, offset: u64, data: &[u8]) -> FsResult<()>;

    /// Returns the current size of the handle's file.
    fn handle_size(&self, h: Handle) -> FsResult<u64>;

    /// Creates a new directory entry at `path` for the handle's inode —
    /// the relink operation used by the checkpoint engine to make
    /// unlinked-but-open file contents reachable again.
    fn link_handle(&mut self, h: Handle, path: &str) -> FsResult<()>;

    /// Closes a handle.
    fn close(&mut self, h: Handle) -> FsResult<()>;

    /// Flushes buffered data to stable storage. A no-op for file systems
    /// without a dirty buffer.
    fn sync(&mut self) -> FsResult<()> {
        Ok(())
    }

    /// Commits a snapshot point tagged with the checkpoint `counter`.
    ///
    /// Snapshotting file systems persist a consistent point (§5.1.1);
    /// others report [`crate::error::FsError::Unsupported`].
    fn snapshot_point(&mut self, counter: u64) -> FsResult<()> {
        let _ = counter;
        Err(crate::error::FsError::Unsupported)
    }

    /// Returns whether a path exists.
    fn exists(&self, path: &str) -> bool {
        self.stat(path).is_ok()
    }

    /// Reads an entire file.
    fn read_all(&self, path: &str) -> FsResult<Vec<u8>> {
        let size = self.stat(path)?.size;
        self.read_at(path, 0, size as usize)
    }

    /// Creates (or truncates) a file and writes `data` from offset 0 —
    /// the "overwrite files completely" pattern §5.2 notes is the common
    /// case for desktop applications.
    fn write_all(&mut self, path: &str, data: &[u8]) -> FsResult<()> {
        if !self.exists(path) {
            self.create(path)?;
        }
        self.truncate(path, 0)?;
        self.write_at(path, 0, data)
    }

    /// Creates every missing directory along `path`.
    fn mkdir_all(&mut self, path: &str) -> FsResult<()> {
        let comps = crate::path::components(path)?;
        let mut cur = String::new();
        for comp in comps {
            cur.push('/');
            cur.push_str(comp);
            match self.mkdir(&cur) {
                Ok(()) | Err(crate::error::FsError::AlreadyExists) => {}
                Err(e) => return Err(e),
            }
        }
        Ok(())
    }
}

impl<F: Filesystem + ?Sized> Filesystem for Box<F> {
    fn create(&mut self, path: &str) -> FsResult<()> {
        (**self).create(path)
    }

    fn mkdir(&mut self, path: &str) -> FsResult<()> {
        (**self).mkdir(path)
    }

    fn write_at(&mut self, path: &str, offset: u64, data: &[u8]) -> FsResult<()> {
        (**self).write_at(path, offset, data)
    }

    fn truncate(&mut self, path: &str, size: u64) -> FsResult<()> {
        (**self).truncate(path, size)
    }

    fn read_at(&self, path: &str, offset: u64, len: usize) -> FsResult<Vec<u8>> {
        (**self).read_at(path, offset, len)
    }

    fn unlink(&mut self, path: &str) -> FsResult<()> {
        (**self).unlink(path)
    }

    fn rmdir(&mut self, path: &str) -> FsResult<()> {
        (**self).rmdir(path)
    }

    fn rename(&mut self, from: &str, to: &str) -> FsResult<()> {
        (**self).rename(from, to)
    }

    fn readdir(&self, path: &str) -> FsResult<Vec<DirEntry>> {
        (**self).readdir(path)
    }

    fn stat(&self, path: &str) -> FsResult<Metadata> {
        (**self).stat(path)
    }

    fn open(&mut self, path: &str) -> FsResult<Handle> {
        (**self).open(path)
    }

    fn read_handle(&self, h: Handle, offset: u64, len: usize) -> FsResult<Vec<u8>> {
        (**self).read_handle(h, offset, len)
    }

    fn write_handle(&mut self, h: Handle, offset: u64, data: &[u8]) -> FsResult<()> {
        (**self).write_handle(h, offset, data)
    }

    fn handle_size(&self, h: Handle) -> FsResult<u64> {
        (**self).handle_size(h)
    }

    fn link_handle(&mut self, h: Handle, path: &str) -> FsResult<()> {
        (**self).link_handle(h, path)
    }

    fn close(&mut self, h: Handle) -> FsResult<()> {
        (**self).close(h)
    }

    fn sync(&mut self) -> FsResult<()> {
        (**self).sync()
    }

    fn snapshot_point(&mut self, counter: u64) -> FsResult<()> {
        (**self).snapshot_point(counter)
    }
}

#[cfg(test)]
mod tests {
    // The trait's provided methods are exercised through the concrete
    // implementations' test suites (memfs, lsfs, union).
}
