//! The `desktop` scenario: real mixed desktop usage.
//!
//! Table 1: "16 hr of desktop usage by multiple users, including
//! Firefox, GAIM, OpenOffice, Adobe Acrobat Reader, etc." — the
//! representative workload, with the bursty structure §5.1.3 describes:
//! short bursts of real activity, long stretches of reading with
//! trivial display updates, periods of typing, and idle gaps. Run under
//! [`crate::scenario::CheckpointMode::Policy`], it reproduces the §6
//! policy analysis (checkpoints taken ~20% of the time; skips split
//! between no-display, low-display and text-edit reasons).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use dejaview::DejaView;
use dv_access::{AppId, NodeId, Role};
use dv_display::{rgb, InputEvent, Rect};
use dv_time::Duration;
use dv_vee::{Prot, Vpid};

use crate::common::words;
use crate::scenario::Scenario;

/// One second of the repeating 100-second usage cycle.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Phase {
    /// Window switches, page loads, large redraws.
    Active,
    /// Reading: occasional small scrolls (below the 5% threshold).
    Reading,
    /// Typing into the editor: keyboard input, tiny display changes.
    Typing,
    /// Away from the keyboard.
    Idle,
}

fn phase_of(second: u64) -> Phase {
    match second % 100 {
        0..=19 => Phase::Active,
        20..=74 => Phase::Reading,
        75..=89 => Phase::Typing,
        _ => Phase::Idle,
    }
}

struct DesktopApp {
    app: AppId,
    window: NodeId,
    body: NodeId,
    vpid: Vpid,
    heap: u64,
    rect: Rect,
}

/// The mixed-desktop scenario.
pub struct DesktopScenario {
    seconds_remaining: u64,
    second: u64,
    rng: StdRng,
    apps: Vec<DesktopApp>,
    editor_text: String,
}

impl DesktopScenario {
    /// Creates the scenario; `scale` = 1.0 runs one hour of usage (the
    /// paper's 16 h aggregated trace, scaled).
    pub fn new(scale: f64) -> Self {
        DesktopScenario {
            seconds_remaining: ((3_600.0 * scale).ceil() as u64).max(100),
            second: 0,
            rng: StdRng::seed_from_u64(0xde57),
            apps: Vec::new(),
            editor_text: String::new(),
        }
    }
}

impl Scenario for DesktopScenario {
    fn name(&self) -> &'static str {
        "desktop"
    }

    fn description(&self) -> &'static str {
        "16 hr of desktop usage by multiple users, including Firefox 2.0.0.1, GAIM 1.5, OpenOffice 2.0.1, Adobe Acrobat Reader 7.0, etc."
    }

    fn screen(&self) -> (u32, u32) {
        // The paper's real-usage measurements ran at 1280x1024.
        (1280, 1024)
    }

    fn setup(&mut self, dv: &mut DejaView) {
        let names = ["firefox", "gaim", "openoffice", "acroread"];
        let init = dv.init_vpid();
        for (i, name) in names.iter().enumerate() {
            let vpid = dv.vee_mut().spawn(Some(init), name).expect("spawn");
            let heap = dv
                .vee_mut()
                .mmap(vpid, 8 << 20, Prot::ReadWrite)
                .expect("mmap");
            let desktop = dv.desktop_mut();
            let app = desktop.register_app(name);
            let root = desktop.root(app).expect("registered");
            let window = desktop.add_node(app, root, Role::Window, &format!("{name} - main"));
            let body = desktop.add_node(app, window, Role::Document, "");
            let rect = Rect::new((i as u32 % 2) * 640, (i as u32 / 2) * 512, 640, 512);
            dv.driver_mut()
                .fill_rect(rect, rgb(30 + 20 * i as u8, 40, 50));
            self.apps.push(DesktopApp {
                app,
                window,
                body,
                vpid,
                heap,
                rect,
            });
        }
        dv.desktop_mut().focus(self.apps[0].app);
    }

    fn step(&mut self, dv: &mut DejaView) -> bool {
        let phase = phase_of(self.second);
        self.second += 1;
        match phase {
            Phase::Active => {
                // Switch focus and repaint a whole window with content.
                let idx = self.rng.gen_range(0..self.apps.len());
                let heap_pos = self.rng.gen_range(0u64..7 << 20);
                let (app, window, body, rect, vpid, heap) = {
                    let a = &self.apps[idx];
                    (a.app, a.window, a.body, a.rect, a.vpid, a.heap)
                };
                dv.desktop_mut().focus(app);
                let fill = rgb(self.rng.gen(), self.rng.gen(), self.rng.gen());
                dv.driver_mut().fill_rect(rect, fill);
                // Content area paints with raw pixels (images, rendered
                // text) like a real window switch.
                let seed: u32 = self.rng.gen();
                let content: Vec<u32> = (0..320 * 256)
                    .map(|i| (i as u32).wrapping_mul(seed | 1))
                    .collect();
                dv.driver_mut()
                    .put_image(Rect::new(rect.x + 16, rect.y + 32, 320, 256), content);
                let title = format!("{} - {}", words(&mut self.rng, 2), self.second);
                dv.desktop_mut().set_text(app, window, &title);
                let text = words(&mut self.rng, 30);
                dv.desktop_mut().set_text(app, body, &text);
                dv.driver_mut().draw_text(
                    rect.x + 8,
                    rect.y + 8,
                    &text[..40.min(text.len())],
                    0xFFFFFF,
                    fill,
                );
                // The app does some real work.
                let work = vec![(self.second % 251) as u8; 256 << 10];
                dv.vee_mut()
                    .mem_write(vpid, heap + heap_pos, &work)
                    .expect("work");
                dv.input(InputEvent::MouseButton {
                    x: rect.x + 5,
                    y: rect.y + 5,
                    button: 0,
                    pressed: true,
                });
            }
            Phase::Reading => {
                // A small scroll: ~2% of the screen.
                let a = &self.apps[0];
                let r = a.rect;
                // Scroll ~3% of the 1280x1024 screen: below the policy's
                // 5% threshold, so reading defers checkpoints.
                dv.driver_mut()
                    .copy_area(r.x, r.y + 16, Rect::new(r.x, r.y, r.w, 56));
                if self.second.is_multiple_of(7) {
                    let text = words(&mut self.rng, 12);
                    dv.desktop_mut().set_text(a.app, a.body, &text);
                }
                if self.second.is_multiple_of(11) {
                    dv.input(InputEvent::MouseMove { x: 10, y: 10 });
                }
            }
            Phase::Typing => {
                // ~40 words/minute: a fraction of a word per second, a
                // tiny glyph update, and keyboard input every second.
                let word = words(&mut self.rng, 1);
                self.editor_text.push(' ');
                self.editor_text.push_str(&word);
                if self.editor_text.len() > 400 {
                    let cut = self.editor_text.len() - 400;
                    self.editor_text.drain(..cut);
                }
                let a = &self.apps[2]; // openoffice
                let text = self.editor_text.clone();
                dv.desktop_mut().set_text(a.app, a.body, &text);
                let y = a.rect.y + 40;
                dv.driver_mut()
                    .draw_text(a.rect.x + 8, y, &word, 0xFFFFFF, rgb(30, 40, 50));
                for ch in word.chars().take(6) {
                    dv.input(InputEvent::Key {
                        ch,
                        ctrl: false,
                        alt: false,
                    });
                }
            }
            Phase::Idle => {
                // Away: the screen is static.
            }
        }
        self.seconds_remaining -= 1;
        self.seconds_remaining > 0
    }

    fn step_duration(&self) -> Duration {
        Duration::from_secs(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{run_scenario, CheckpointMode, RunOptions};
    use dejaview::Config;

    #[test]
    fn desktop_reproduces_the_policy_split() {
        let mut dv = DejaView::new(Config {
            width: 1280,
            height: 1024,
            ..Config::default()
        });
        let mut scenario = DesktopScenario::new(0.084); // ~300 seconds.
        let summary = run_scenario(
            &mut dv,
            &mut scenario,
            RunOptions {
                checkpoints: CheckpointMode::Policy,
                ..RunOptions::default()
            },
        );
        assert!(summary.steps >= 300);
        let stats = dv.policy_stats();
        let total = stats.total() as f64;
        assert!(total > 0.0);
        // Checkpoints roughly 20% of evaluations.
        let ckpt_frac = stats.checkpoints as f64 / total;
        assert!(
            (0.1..0.35).contains(&ckpt_frac),
            "checkpoint fraction {ckpt_frac}"
        );
        // Low-display skips dominate the skip mix.
        let skips = total - stats.checkpoints as f64;
        assert!(stats.low_display as f64 / skips > 0.4);
        assert!(stats.no_display > 0);
        assert!(stats.text_edit > 0);
    }
}
