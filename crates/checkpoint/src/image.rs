//! The checkpoint image format.
//!
//! A checkpoint image carries everything §5.2 enumerates for every
//! process — run state, program name, scheduling parameters,
//! credentials, pending and blocked signals, CPU registers, FPU state,
//! ptrace information, open files, virtual memory — plus the session's
//! namespace, sockets and network state, and the checkpoint counter that
//! ties the image to its file system snapshot (§5.1.1).
//!
//! Incremental images store only the pages dirtied since the previous
//! checkpoint together with the *full* region table; restore walks the
//! image chain newest-to-oldest to resolve each page (§5.2).

use std::sync::Arc;

use bytes::{Buf, BufMut};

use dv_time::Timestamp;
use dv_vee::{Credentials, FpuState, MemRegion, PageBuf, Prot, Registers, SchedParams, PAGE_SIZE};

/// Whether an image is self-contained or a delta.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ImageKind {
    /// Self-contained: every resident page is present.
    Full,
    /// Delta against the image with counter `prev`.
    Incremental {
        /// Counter of the previous image in the chain.
        prev: u64,
    },
}

/// One file descriptor in the image.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum FdRecord {
    /// An open file.
    File {
        /// Descriptor number.
        fd: u32,
        /// Path it was opened by.
        path: String,
        /// File offset.
        offset: u64,
        /// Whether the path had been unlinked while open.
        unlinked: bool,
        /// Where the checkpoint relinked the unlinked contents, if it
        /// did (§5.1.2); restore opens this path and re-unlinks it.
        relink: Option<String>,
    },
    /// An open socket.
    Socket {
        /// Descriptor number.
        fd: u32,
        /// Socket id in the image's socket table.
        id: u64,
    },
}

/// One socket in the image.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SocketRecord {
    /// Socket id.
    pub id: u64,
    /// Protocol (0 = TCP, 1 = UDP).
    pub proto: u8,
    /// Local port.
    pub local_port: u16,
    /// Remote endpoint, if connected.
    pub remote: Option<(String, u16)>,
    /// Connection state (0 = unconnected, 1 = connected, 2 = reset).
    pub state: u8,
    /// Bytes sent.
    pub tx_bytes: u64,
    /// Bytes received.
    pub rx_bytes: u64,
}

/// One process in the image.
#[derive(Clone, Debug)]
pub struct ProcessRecord {
    /// Virtual PID.
    pub vpid: u64,
    /// Parent virtual PID.
    pub parent: Option<u64>,
    /// Program name.
    pub name: String,
    /// Registers.
    pub regs: Registers,
    /// FPU state.
    pub fpu: FpuState,
    /// Scheduling parameters.
    pub sched: SchedParams,
    /// Credentials.
    pub creds: Credentials,
    /// Blocked-signal mask.
    pub blocked: u64,
    /// Handled-signal mask.
    pub handled: u64,
    /// Pending signals (repr bytes, delivery order).
    pub pending: Vec<u8>,
    /// Tracer vpid, if ptraced.
    pub ptraced_by: Option<u64>,
    /// Working directory.
    pub cwd: String,
    /// Per-process network permission.
    pub net_allowed: bool,
    /// The full region table.
    pub regions: Vec<MemRegion>,
    /// Saved pages (all resident pages for a full image; dirty pages for
    /// an incremental one). Shared so the COW capture stays zero-copy
    /// until serialization.
    pub pages: Vec<(u64, Arc<PageBuf>)>,
    /// Descriptor table.
    pub fds: Vec<FdRecord>,
}

/// A complete checkpoint image.
#[derive(Clone, Debug)]
pub struct CheckpointImage {
    /// The checkpoint counter (also names the FS snapshot).
    pub counter: u64,
    /// Session time of the checkpoint.
    pub time: Timestamp,
    /// Full or incremental.
    pub kind: ImageKind,
    /// Virtual hostname of the namespace.
    pub hostname: String,
    /// Whether the session had external network access.
    pub network_enabled: bool,
    /// Process records, vpid order.
    pub processes: Vec<ProcessRecord>,
    /// Session sockets.
    pub sockets: Vec<SocketRecord>,
}

impl CheckpointImage {
    /// Returns the number of saved pages across all processes.
    pub fn page_count(&self) -> usize {
        self.processes.iter().map(|p| p.pages.len()).sum()
    }

    /// Returns the raw bytes of saved page data.
    pub fn page_bytes(&self) -> u64 {
        (self.page_count() * PAGE_SIZE) as u64
    }
}

/// A decoding error.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ImageError(pub &'static str);

impl std::fmt::Display for ImageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "checkpoint image error: {}", self.0)
    }
}

impl std::error::Error for ImageError {}

const MAGIC: &[u8; 8] = b"DVCKPT01";

fn put_str(out: &mut Vec<u8>, s: &str) {
    out.put_u32_le(s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

fn get_str(buf: &mut &[u8]) -> Result<String, ImageError> {
    if buf.len() < 4 {
        return Err(ImageError("truncated string"));
    }
    let len = buf.get_u32_le() as usize;
    if buf.len() < len {
        return Err(ImageError("truncated string body"));
    }
    let (s, rest) = buf.split_at(len);
    let out = String::from_utf8(s.to_vec()).map_err(|_| ImageError("invalid utf-8"))?;
    *buf = rest;
    Ok(out)
}

fn need(buf: &[u8], n: usize) -> Result<(), ImageError> {
    if buf.len() < n {
        Err(ImageError("truncated image"))
    } else {
        Ok(())
    }
}

/// Serializes an image.
pub fn encode_image(image: &CheckpointImage) -> Vec<u8> {
    let sections = encode_image_sections(image);
    let total = sections.iter().map(Vec::len).sum();
    let mut out = Vec::with_capacity(total);
    for section in sections {
        out.extend_from_slice(&section);
    }
    out
}

/// Serializes an image as independent byte sections: one header, one
/// per process, one socket table. Concatenated in order they are
/// byte-identical to [`encode_image`]; kept separate they are the unit
/// of parallel compression in the deferred write-back pipeline (each
/// worker subtask compresses one process's pages).
pub fn encode_image_sections(image: &CheckpointImage) -> Vec<Vec<u8>> {
    let mut sections = Vec::with_capacity(image.processes.len() + 2);

    let mut header = Vec::with_capacity(64 + image.hostname.len());
    header.extend_from_slice(MAGIC);
    header.put_u64_le(image.counter);
    header.put_u64_le(image.time.as_nanos());
    match image.kind {
        ImageKind::Full => {
            header.put_u8(0);
            header.put_u64_le(0);
        }
        ImageKind::Incremental { prev } => {
            header.put_u8(1);
            header.put_u64_le(prev);
        }
    }
    put_str(&mut header, &image.hostname);
    header.put_u8(image.network_enabled as u8);
    header.put_u32_le(image.processes.len() as u32);
    sections.push(header);

    for p in &image.processes {
        let mut out = Vec::with_capacity(p.pages.len() * (8 + PAGE_SIZE) + 512);
        encode_process(&mut out, p);
        sections.push(out);
    }

    let mut socks = Vec::with_capacity(4 + image.sockets.len() * 64);
    encode_sockets(&mut socks, &image.sockets);
    sections.push(socks);
    sections
}

fn encode_process(out: &mut Vec<u8>, p: &ProcessRecord) {
    {
        out.put_u64_le(p.vpid);
        out.put_u64_le(p.parent.map(|v| v + 1).unwrap_or(0));
        put_str(out, &p.name);
        out.put_u64_le(p.regs.pc);
        out.put_u64_le(p.regs.sp);
        for r in p.regs.gpr {
            out.put_u64_le(r);
        }
        out.put_u32_le(p.fpu.control);
        for r in p.fpu.st {
            out.put_u64_le(r);
        }
        out.put_i8(p.sched.nice);
        out.put_u8(p.sched.rt_priority);
        out.put_u32_le(p.creds.uid);
        out.put_u32_le(p.creds.gid);
        out.put_u64_le(p.blocked);
        out.put_u64_le(p.handled);
        out.put_u32_le(p.pending.len() as u32);
        out.extend_from_slice(&p.pending);
        out.put_u64_le(p.ptraced_by.map(|v| v + 1).unwrap_or(0));
        put_str(out, &p.cwd);
        out.put_u8(p.net_allowed as u8);

        out.put_u32_le(p.regions.len() as u32);
        for region in &p.regions {
            out.put_u64_le(region.start);
            out.put_u64_le(region.len);
            out.put_u8(matches!(region.prot, Prot::ReadWrite) as u8);
        }
        out.put_u32_le(p.pages.len() as u32);
        for (addr, page) in &p.pages {
            out.put_u64_le(*addr);
            out.extend_from_slice(&page[..]);
        }
        out.put_u32_le(p.fds.len() as u32);
        for fd in &p.fds {
            match fd {
                FdRecord::File {
                    fd,
                    path,
                    offset,
                    unlinked,
                    relink,
                } => {
                    out.put_u8(0);
                    out.put_u32_le(*fd);
                    put_str(out, path);
                    out.put_u64_le(*offset);
                    out.put_u8(*unlinked as u8);
                    match relink {
                        Some(r) => {
                            out.put_u8(1);
                            put_str(out, r);
                        }
                        None => out.put_u8(0),
                    }
                }
                FdRecord::Socket { fd, id } => {
                    out.put_u8(1);
                    out.put_u32_le(*fd);
                    out.put_u64_le(*id);
                }
            }
        }
    }
}

fn encode_sockets(out: &mut Vec<u8>, sockets: &[SocketRecord]) {
    out.put_u32_le(sockets.len() as u32);
    for s in sockets {
        out.put_u64_le(s.id);
        out.put_u8(s.proto);
        out.put_u16_le(s.local_port);
        match &s.remote {
            Some((host, port)) => {
                out.put_u8(1);
                put_str(out, host);
                out.put_u16_le(*port);
            }
            None => out.put_u8(0),
        }
        out.put_u8(s.state);
        out.put_u64_le(s.tx_bytes);
        out.put_u64_le(s.rx_bytes);
    }
}

/// Deserializes an image.
pub fn decode_image(mut buf: &[u8]) -> Result<CheckpointImage, ImageError> {
    need(buf, 8)?;
    if &buf[..8] != MAGIC {
        return Err(ImageError("bad magic"));
    }
    buf.advance(8);
    need(buf, 25)?;
    let counter = buf.get_u64_le();
    let time = Timestamp::from_nanos(buf.get_u64_le());
    let kind = match buf.get_u8() {
        0 => {
            let _ = buf.get_u64_le();
            ImageKind::Full
        }
        1 => ImageKind::Incremental {
            prev: buf.get_u64_le(),
        },
        _ => return Err(ImageError("bad image kind")),
    };
    let hostname = get_str(&mut buf)?;
    need(buf, 1)?;
    let network_enabled = buf.get_u8() != 0;

    need(buf, 4)?;
    let proc_count = buf.get_u32_le();
    // Counts are untrusted: grow vectors as records validate rather
    // than pre-allocating attacker-controlled sizes.
    let mut processes = Vec::new();
    for _ in 0..proc_count {
        need(buf, 16)?;
        let vpid = buf.get_u64_le();
        let parent_raw = buf.get_u64_le();
        let parent = parent_raw.checked_sub(1);
        let name = get_str(&mut buf)?;
        need(buf, 16 + 64 + 4 + 64 + 2 + 8 + 16 + 4)?;
        let mut regs = Registers {
            pc: buf.get_u64_le(),
            sp: buf.get_u64_le(),
            gpr: [0; 8],
        };
        for r in &mut regs.gpr {
            *r = buf.get_u64_le();
        }
        let mut fpu = FpuState {
            control: buf.get_u32_le(),
            st: [0; 8],
        };
        for r in &mut fpu.st {
            *r = buf.get_u64_le();
        }
        let sched = SchedParams {
            nice: buf.get_i8(),
            rt_priority: buf.get_u8(),
        };
        let creds = Credentials {
            uid: buf.get_u32_le(),
            gid: buf.get_u32_le(),
        };
        let blocked = buf.get_u64_le();
        let handled = buf.get_u64_le();
        let pending_len = buf.get_u32_le() as usize;
        need(buf, pending_len)?;
        let pending = buf[..pending_len].to_vec();
        buf.advance(pending_len);
        need(buf, 8)?;
        let ptraced_by = buf.get_u64_le().checked_sub(1);
        let cwd = get_str(&mut buf)?;
        need(buf, 5)?;
        let net_allowed = buf.get_u8() != 0;

        let region_count = buf.get_u32_le() as usize;
        let mut regions = Vec::new();
        for _ in 0..region_count {
            need(buf, 17)?;
            let start = buf.get_u64_le();
            let len = buf.get_u64_le();
            let prot = if buf.get_u8() != 0 {
                Prot::ReadWrite
            } else {
                Prot::ReadOnly
            };
            regions.push(MemRegion { start, len, prot });
        }
        need(buf, 4)?;
        let page_count = buf.get_u32_le() as usize;
        let mut pages = Vec::new();
        for _ in 0..page_count {
            need(buf, 8 + PAGE_SIZE)?;
            let addr = buf.get_u64_le();
            let mut page = [0u8; PAGE_SIZE];
            page.copy_from_slice(&buf[..PAGE_SIZE]);
            buf.advance(PAGE_SIZE);
            pages.push((addr, Arc::new(page)));
        }
        need(buf, 4)?;
        let fd_count = buf.get_u32_le() as usize;
        let mut fds = Vec::new();
        for _ in 0..fd_count {
            need(buf, 5)?;
            let tag = buf.get_u8();
            let fd = buf.get_u32_le();
            match tag {
                0 => {
                    let path = get_str(&mut buf)?;
                    need(buf, 10)?;
                    let offset = buf.get_u64_le();
                    let unlinked = buf.get_u8() != 0;
                    let relink = match buf.get_u8() {
                        0 => None,
                        1 => Some(get_str(&mut buf)?),
                        _ => return Err(ImageError("bad relink flag")),
                    };
                    fds.push(FdRecord::File {
                        fd,
                        path,
                        offset,
                        unlinked,
                        relink,
                    });
                }
                1 => {
                    need(buf, 8)?;
                    fds.push(FdRecord::Socket {
                        fd,
                        id: buf.get_u64_le(),
                    });
                }
                _ => return Err(ImageError("bad fd tag")),
            }
        }
        processes.push(ProcessRecord {
            vpid,
            parent,
            name,
            regs,
            fpu,
            sched,
            creds,
            blocked,
            handled,
            pending,
            ptraced_by,
            cwd,
            net_allowed,
            regions,
            pages,
            fds,
        });
    }

    need(buf, 4)?;
    let sock_count = buf.get_u32_le() as usize;
    let mut sockets = Vec::new();
    for _ in 0..sock_count {
        need(buf, 12)?;
        let id = buf.get_u64_le();
        let proto = buf.get_u8();
        let local_port = buf.get_u16_le();
        let remote = match buf.get_u8() {
            0 => None,
            1 => {
                let host = get_str(&mut buf)?;
                need(buf, 2)?;
                Some((host, buf.get_u16_le()))
            }
            _ => return Err(ImageError("bad remote flag")),
        };
        need(buf, 17)?;
        let state = buf.get_u8();
        let tx_bytes = buf.get_u64_le();
        let rx_bytes = buf.get_u64_le();
        sockets.push(SocketRecord {
            id,
            proto,
            local_port,
            remote,
            state,
            tx_bytes,
            rx_bytes,
        });
    }
    if !buf.is_empty() {
        return Err(ImageError("trailing bytes"));
    }
    Ok(CheckpointImage {
        counter,
        time,
        kind,
        hostname,
        network_enabled,
        processes,
        sockets,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_image() -> CheckpointImage {
        let mut page_a = [0u8; PAGE_SIZE];
        page_a[..4].copy_from_slice(b"AAAA");
        let mut page_b = [0u8; PAGE_SIZE];
        page_b[PAGE_SIZE - 4..].copy_from_slice(b"BBBB");
        CheckpointImage {
            counter: 42,
            time: Timestamp::from_millis(123_456),
            kind: ImageKind::Incremental { prev: 41 },
            hostname: "dejaview-1".into(),
            network_enabled: true,
            processes: vec![ProcessRecord {
                vpid: 1,
                parent: None,
                name: "init".into(),
                regs: Registers {
                    pc: 0xdead,
                    sp: 0xbeef,
                    gpr: [1, 2, 3, 4, 5, 6, 7, 8],
                },
                fpu: FpuState {
                    control: 0x37f,
                    st: [9; 8],
                },
                sched: SchedParams {
                    nice: -5,
                    rt_priority: 0,
                },
                creds: Credentials {
                    uid: 1000,
                    gid: 100,
                },
                blocked: 0b1010,
                handled: 0b0100,
                pending: vec![1, 7],
                ptraced_by: Some(3),
                cwd: "/home/user".into(),
                net_allowed: false,
                regions: vec![
                    MemRegion {
                        start: 0x1000_0000,
                        len: 2 * PAGE_SIZE as u64,
                        prot: Prot::ReadWrite,
                    },
                    MemRegion {
                        start: 0x2000_0000,
                        len: PAGE_SIZE as u64,
                        prot: Prot::ReadOnly,
                    },
                ],
                pages: vec![
                    (0x1000_0000, Arc::new(page_a)),
                    (0x1000_1000, Arc::new(page_b)),
                ],
                fds: vec![
                    FdRecord::File {
                        fd: 3,
                        path: "/tmp/doc".into(),
                        offset: 77,
                        unlinked: true,
                        relink: Some("/.dejaview/relink-42-0".into()),
                    },
                    FdRecord::Socket { fd: 4, id: 9 },
                ],
            }],
            sockets: vec![SocketRecord {
                id: 9,
                proto: 0,
                local_port: 40000,
                remote: Some(("example.com".into(), 443)),
                state: 1,
                tx_bytes: 100,
                rx_bytes: 2000,
            }],
        }
    }

    #[test]
    fn round_trip() {
        let image = sample_image();
        let encoded = encode_image(&image);
        let decoded = decode_image(&encoded).unwrap();
        assert_eq!(decoded.counter, image.counter);
        assert_eq!(decoded.time, image.time);
        assert_eq!(decoded.kind, image.kind);
        assert_eq!(decoded.hostname, image.hostname);
        let (p, q) = (&decoded.processes[0], &image.processes[0]);
        assert_eq!(p.vpid, q.vpid);
        assert_eq!(p.regs, q.regs);
        assert_eq!(p.fpu, q.fpu);
        assert_eq!(p.sched, q.sched);
        assert_eq!(p.creds, q.creds);
        assert_eq!(p.pending, q.pending);
        assert_eq!(p.ptraced_by, q.ptraced_by);
        assert_eq!(p.cwd, q.cwd);
        assert_eq!(p.net_allowed, q.net_allowed);
        assert_eq!(p.regions.len(), 2);
        assert_eq!(p.regions[1].prot, Prot::ReadOnly);
        assert_eq!(p.pages.len(), 2);
        assert_eq!(&p.pages[0].1[..4], b"AAAA");
        assert_eq!(p.fds, q.fds);
        assert_eq!(decoded.sockets, image.sockets);
    }

    #[test]
    fn full_image_kind_round_trips() {
        let mut image = sample_image();
        image.kind = ImageKind::Full;
        let decoded = decode_image(&encode_image(&image)).unwrap();
        assert_eq!(decoded.kind, ImageKind::Full);
    }

    #[test]
    fn decode_rejects_corruption() {
        let encoded = encode_image(&sample_image());
        assert!(decode_image(b"garbage").is_err());
        assert!(decode_image(&encoded[..100]).is_err());
        let mut extra = encoded.clone();
        extra.push(1);
        assert!(decode_image(&extra).is_err());
    }

    #[test]
    fn sections_concatenate_to_the_monolithic_encoding() {
        let image = sample_image();
        let sections = encode_image_sections(&image);
        assert_eq!(
            sections.len(),
            image.processes.len() + 2,
            "header + one per process + sockets"
        );
        let concat: Vec<u8> = sections.concat();
        assert_eq!(concat, encode_image(&image));
        assert!(decode_image(&concat).is_ok());
    }

    #[test]
    fn page_accounting() {
        let image = sample_image();
        assert_eq!(image.page_count(), 2);
        assert_eq!(image.page_bytes(), 2 * PAGE_SIZE as u64);
    }
}
