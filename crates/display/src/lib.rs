//! THINC-like virtual display for DejaView.
//!
//! This crate is the display substrate of the DejaView reproduction
//! (paper §3 and §4): a display protocol command set, a software
//! framebuffer they apply to, a virtual display driver that intercepts
//! drawing at the video-driver interface and fans commands out to viewer
//! and recorder sinks, command queueing/merging, resolution scaling, a
//! wire codec, and the stateless client viewer.
//!
//! # Example
//!
//! ```
//! use std::sync::Arc;
//! use dv_display::{Rect, Viewer, VirtualDisplayDriver};
//! use dv_time::SimClock;
//! use parking_lot::Mutex;
//!
//! let clock = SimClock::new();
//! let mut driver = VirtualDisplayDriver::new(640, 480, clock.shared());
//! let viewer = Arc::new(Mutex::new(Viewer::new(640, 480)));
//! driver.attach_sink(viewer.clone());
//!
//! driver.fill_rect(Rect::new(0, 0, 640, 480), dv_display::rgb(32, 32, 32));
//! driver.draw_text(10, 10, "hello dejaview", 0xFFFFFF, 0);
//!
//! // The viewer mirrors the server's screen exactly.
//! assert_eq!(
//!     viewer.lock().screenshot().content_hash(),
//!     driver.snapshot().content_hash(),
//! );
//! ```

#![deny(unsafe_code)]

pub mod codec;
pub mod command;
pub mod driver;
pub mod font;
pub mod framebuffer;
pub mod output;
pub mod queue;
pub mod rect;
pub mod scale;
pub mod viewer;
pub mod wire;

pub use codec::{decode_command, encode_command, encode_command_vec, CodecError, HEADER_LEN};
pub use command::{rgb, DisplayCommand, Pattern, Pixel, YuvFrame};
pub use driver::{CommandSink, DriverStats, SharedSink, VirtualDisplayDriver};
pub use framebuffer::{Framebuffer, Screenshot};
pub use output::{OutputPool, VirtualOutput};
pub use queue::{CommandQueue, QueuedCommand};
pub use rect::{Rect, Region};
pub use scale::{resample_screenshot, scale_command, scale_screenshot, ScaleFactor};
pub use viewer::{InputEvent, Viewer, ViewerStats};
pub use wire::{
    decode_input, encode_input, ByteChannel, ChannelClosed, PumpStatus, RemoteViewer, StreamEncoder,
};
