//! The append-only storage device underlying the log-structured FS.
//!
//! A log-structured file system never overwrites live data: all writes —
//! data blocks, metadata journal records, snapshot marks — append to the
//! head of the log (§5.1.1). The device is segmented like NILFS: the
//! virtual byte log is carved into fixed-capacity segments allocated on
//! demand. Old offsets stay readable forever, which is exactly the
//! property snapshots need.

use parking_lot::RwLock;
use std::sync::Arc;

use dv_fault::{sites, FaultPlane, IoFault};

use crate::error::{FsError, FsResult};

/// Default segment capacity: 1 MiB, mirroring NILFS-scale segments.
pub const DEFAULT_SEGMENT_CAPACITY: usize = 1 << 20;

/// An append-only, segment-backed byte log.
#[derive(Debug)]
pub struct Disk {
    segments: Vec<Vec<u8>>,
    seg_capacity: usize,
    len: u64,
    plane: FaultPlane,
}

impl Disk {
    /// Creates an empty disk with the default segment capacity.
    pub fn new() -> Self {
        Disk::with_segment_capacity(DEFAULT_SEGMENT_CAPACITY)
    }

    /// Creates an empty disk with the given segment capacity.
    ///
    /// # Panics
    ///
    /// Panics if `seg_capacity` is zero.
    pub fn with_segment_capacity(seg_capacity: usize) -> Self {
        assert!(seg_capacity > 0, "segment capacity must be positive");
        Disk {
            segments: Vec::new(),
            seg_capacity,
            len: 0,
            plane: FaultPlane::disabled(),
        }
    }

    /// Installs the fault-injection plane checked by [`Disk::append`]
    /// (site `lsfs.disk.append`).
    pub fn set_fault_plane(&mut self, plane: FaultPlane) {
        self.plane = plane;
    }

    /// Returns a handle to the installed fault plane.
    pub fn fault_plane(&self) -> FaultPlane {
        self.plane.clone()
    }

    /// Appends `data` to the log, returning the offset it was written at.
    ///
    /// Injectable failures (site [`sites::LSFS_DISK_APPEND`]):
    /// * `TornWrite` — a prefix of `data` lands on the device, then the
    ///   write errors; the torn tail is only discoverable by recovery.
    /// * `ShortRead` — the write errors before anything is persisted.
    /// * `Enospc` — the device is full; nothing is written.
    /// * `Corrupt` — the full length is written but one byte is mangled;
    ///   the call reports success (silent corruption).
    /// * `LatencySpike` — the write succeeds (latency is modeled by the
    ///   caller's clock, not here).
    pub fn append(&mut self, data: &[u8]) -> FsResult<u64> {
        match self.plane.check(sites::LSFS_DISK_APPEND) {
            None | Some(IoFault::LatencySpike) => Ok(self.append_raw(data)),
            Some(IoFault::Enospc) => Err(FsError::NoSpace),
            Some(IoFault::TornWrite) => {
                let keep = self.plane.short_len(data.len());
                self.append_raw(&data[..keep]);
                Err(FsError::Io)
            }
            Some(IoFault::ShortRead) => Err(FsError::Io),
            Some(IoFault::Corrupt) => {
                let mut copy = data.to_vec();
                self.plane.mangle(&mut copy);
                Ok(self.append_raw(&copy))
            }
        }
    }

    /// Appends without fault injection: internal relocations (log
    /// compaction, deserialization) that do not model device IO.
    pub(crate) fn append_raw(&mut self, data: &[u8]) -> u64 {
        let offset = self.len;
        let mut remaining = data;
        while !remaining.is_empty() {
            let within = (self.len % self.seg_capacity as u64) as usize;
            if within == 0 && self.len / self.seg_capacity as u64 >= self.segments.len() as u64 {
                self.segments.push(Vec::with_capacity(self.seg_capacity));
            }
            let seg = self
                .segments
                .last_mut()
                .expect("segment allocated on demand");
            let room = self.seg_capacity - within;
            let take = room.min(remaining.len());
            seg.extend_from_slice(&remaining[..take]);
            remaining = &remaining[take..];
            self.len += take as u64;
        }
        offset
    }

    /// Reads `len` bytes starting at `offset`.
    ///
    /// # Panics
    ///
    /// Panics if the range extends past the end of the log; offsets come
    /// from [`Disk::append`], so an out-of-range read is a logic error.
    pub fn read(&self, offset: u64, len: usize) -> Vec<u8> {
        assert!(
            offset + len as u64 <= self.len,
            "read past end of log ({offset}+{len} > {})",
            self.len
        );
        let mut out = Vec::with_capacity(len);
        let mut pos = offset;
        let mut remaining = len;
        while remaining > 0 {
            let seg_idx = (pos / self.seg_capacity as u64) as usize;
            let within = (pos % self.seg_capacity as u64) as usize;
            let seg = &self.segments[seg_idx];
            let take = (seg.len() - within).min(remaining);
            out.extend_from_slice(&seg[within..within + take]);
            pos += take as u64;
            remaining -= take;
        }
        out
    }

    /// Returns the total bytes ever written; this drives the storage
    /// growth accounting in Figure 4.
    pub fn bytes_written(&self) -> u64 {
        self.len
    }

    /// Returns the number of allocated segments.
    pub fn segment_count(&self) -> usize {
        self.segments.len()
    }

    /// Serializes the log: `[seg_capacity u64][len u64][bytes...]`.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(16 + self.len as usize);
        out.extend_from_slice(&(self.seg_capacity as u64).to_le_bytes());
        out.extend_from_slice(&self.len.to_le_bytes());
        for seg in &self.segments {
            out.extend_from_slice(seg);
        }
        out
    }

    /// Reconstructs a log from [`Disk::to_bytes`] output. Returns
    /// `None` on malformed data.
    pub fn from_bytes(data: &[u8]) -> Option<Disk> {
        if data.len() < 16 {
            return None;
        }
        let seg_capacity = u64::from_le_bytes(data[..8].try_into().ok()?) as usize;
        let len = u64::from_le_bytes(data[8..16].try_into().ok()?);
        if seg_capacity == 0 || data.len() as u64 != 16 + len {
            return None;
        }
        let mut disk = Disk::with_segment_capacity(seg_capacity);
        disk.append_raw(&data[16..]);
        Some(disk)
    }
}

impl Default for Disk {
    fn default() -> Self {
        Disk::new()
    }
}

/// A disk shared between a live file system and its snapshot views.
pub type SharedDisk = Arc<RwLock<Disk>>;

/// Creates a new shared disk.
pub fn shared_disk() -> SharedDisk {
    Arc::new(RwLock::new(Disk::new()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn append_returns_sequential_offsets() {
        let mut disk = Disk::new();
        assert_eq!(disk.append(b"abc").unwrap(), 0);
        assert_eq!(disk.append(b"defg").unwrap(), 3);
        assert_eq!(disk.bytes_written(), 7);
    }

    #[test]
    fn read_round_trips() {
        let mut disk = Disk::new();
        let off = disk.append(b"hello world").unwrap();
        assert_eq!(disk.read(off, 11), b"hello world");
        assert_eq!(disk.read(off + 6, 5), b"world");
    }

    #[test]
    fn appends_span_segments() {
        let mut disk = Disk::with_segment_capacity(4);
        let off = disk.append(b"0123456789").unwrap();
        assert_eq!(disk.segment_count(), 3);
        assert_eq!(disk.read(off, 10), b"0123456789");
        assert_eq!(disk.read(3, 4), b"3456");
    }

    #[test]
    fn old_data_survives_later_appends() {
        let mut disk = Disk::with_segment_capacity(8);
        let a = disk.append(b"old-data").unwrap();
        for _ in 0..100 {
            disk.append(b"newer and newer data").unwrap();
        }
        assert_eq!(disk.read(a, 8), b"old-data");
    }

    #[test]
    fn bytes_round_trip() {
        let mut disk = Disk::with_segment_capacity(16);
        let a = disk.append(b"first record").unwrap();
        let b = disk.append(&[7u8; 40]).unwrap();
        let restored = Disk::from_bytes(&disk.to_bytes()).unwrap();
        assert_eq!(restored.bytes_written(), disk.bytes_written());
        assert_eq!(restored.read(a, 12), b"first record");
        assert_eq!(restored.read(b, 40), vec![7u8; 40]);
        assert!(Disk::from_bytes(&disk.to_bytes()[..10]).is_none());
    }

    #[test]
    #[should_panic(expected = "read past end")]
    fn read_past_end_panics() {
        let disk = Disk::new();
        let _ = disk.read(0, 1);
    }

    #[test]
    fn enospc_writes_nothing() {
        use dv_fault::FaultPlan;
        let mut disk = Disk::new();
        disk.set_fault_plane(
            FaultPlan::new(1)
                .fail_nth(sites::LSFS_DISK_APPEND, 2, IoFault::Enospc)
                .build(),
        );
        disk.append(b"ok").unwrap();
        assert_eq!(disk.append(b"fails"), Err(FsError::NoSpace));
        assert_eq!(disk.bytes_written(), 2, "nothing written on ENOSPC");
        disk.append(b"ok again").unwrap();
    }

    #[test]
    fn torn_write_leaves_a_strict_prefix() {
        use dv_fault::FaultPlan;
        let mut disk = Disk::new();
        disk.set_fault_plane(
            FaultPlan::new(7)
                .fail_nth(sites::LSFS_DISK_APPEND, 1, IoFault::TornWrite)
                .build(),
        );
        assert_eq!(disk.append(&[9u8; 100]), Err(FsError::Io));
        assert!(disk.bytes_written() < 100, "a strict prefix landed");
    }

    #[test]
    fn corrupt_write_succeeds_with_one_mangled_byte() {
        use dv_fault::FaultPlan;
        let mut disk = Disk::new();
        disk.set_fault_plane(
            FaultPlan::new(3)
                .fail_nth(sites::LSFS_DISK_APPEND, 1, IoFault::Corrupt)
                .build(),
        );
        let off = disk.append(&[0u8; 64]).unwrap();
        let stored = disk.read(off, 64);
        let flipped = stored.iter().filter(|&&b| b != 0).count();
        assert_eq!(flipped, 1, "exactly one byte mangled");
    }
}
