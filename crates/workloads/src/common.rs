//! Shared scenario infrastructure: a terminal-window helper, word
//! generation, and synthetic data.

use rand::rngs::StdRng;
use rand::Rng;

use dejaview::DejaView;
use dv_access::{AppId, NodeId, Role};
use dv_display::{rgb, Rect};

/// A small vocabulary so captured text is realistic and searchable.
pub const WORDS: &[&str] = &[
    "kernel",
    "driver",
    "module",
    "object",
    "symbol",
    "build",
    "linker",
    "header",
    "source",
    "config",
    "patch",
    "branch",
    "commit",
    "merge",
    "review",
    "paper",
    "draft",
    "figure",
    "table",
    "section",
    "latency",
    "throughput",
    "storage",
    "display",
    "record",
    "index",
    "search",
    "session",
    "checkpoint",
    "snapshot",
    "restore",
    "revive",
    "desktop",
    "window",
    "browser",
    "editor",
    "terminal",
    "archive",
    "compress",
    "extract",
    "buffer",
    "memory",
    "process",
    "thread",
    "signal",
    "socket",
    "network",
    "packet",
    "server",
    "client",
    "virtual",
    "machine",
    "schedule",
    "meeting",
    "deadline",
    "notes",
    "report",
    "inbox",
    "message",
    "reply",
    "forward",
    "attach",
    "download",
    "upload",
    "install",
    "update",
];

/// Returns `n` pseudo-random words joined by spaces.
pub fn words(rng: &mut StdRng, n: usize) -> String {
    (0..n)
        .map(|_| WORDS[rng.gen_range(0..WORDS.len())])
        .collect::<Vec<_>>()
        .join(" ")
}

/// Generates `len` bytes with a run/noise mix (compresses partially,
/// like log text).
pub fn loggy_bytes(rng: &mut StdRng, len: usize) -> Vec<u8> {
    let mut out = Vec::with_capacity(len);
    while out.len() < len {
        if rng.gen_bool(0.5) {
            let run = rng.gen_range(8usize..64).min(len - out.len());
            let b = rng.gen_range(b' '..b'z');
            out.extend(std::iter::repeat_n(b, run));
        } else {
            let n = rng.gen_range(4usize..32).min(len - out.len());
            for _ in 0..n {
                out.push(rng.gen_range(b' '..b'z'));
            }
        }
    }
    out
}

/// Line height used by terminal windows.
pub const LINE_HEIGHT: u32 = 8;

/// A terminal-style application window: registers on the accessibility
/// bus and renders scrolling text lines through the display driver.
pub struct TermWindow {
    /// The owning application on the bus.
    pub app: AppId,
    /// The window node.
    pub window: NodeId,
    /// The terminal output node whose text tracks the last line.
    pub output: NodeId,
    /// On-screen area.
    pub rect: Rect,
    fg: u32,
    bg: u32,
}

impl TermWindow {
    /// Opens a terminal window: registers the application, creates its
    /// accessible window/output nodes, and paints the background.
    pub fn open(dv: &mut DejaView, app_name: &str, title: &str, rect: Rect) -> Self {
        let desktop = dv.desktop_mut();
        let app = desktop.register_app(app_name);
        let root = desktop.root(app).expect("registered");
        let window = desktop.add_node(app, root, Role::Window, title);
        let output = desktop.add_node(app, window, Role::Terminal, "");
        desktop.focus(app);
        let bg = rgb(12, 12, 16);
        dv.driver_mut().fill_rect(rect, bg);
        TermWindow {
            app,
            window,
            output,
            rect,
            fg: rgb(220, 220, 220),
            bg,
        }
    }

    /// Prints one line: scrolls the window contents up and renders the
    /// line at the bottom, and updates the accessible output text.
    pub fn println(&self, dv: &mut DejaView, line: &str) {
        let r = self.rect;
        if r.h > LINE_HEIGHT {
            // Scroll up by one line with a screen-to-screen copy.
            dv.driver_mut().copy_area(
                r.x,
                r.y + LINE_HEIGHT,
                Rect::new(r.x, r.y, r.w, r.h - LINE_HEIGHT),
            );
        }
        let base_y = r.y + r.h - LINE_HEIGHT;
        dv.driver_mut()
            .fill_rect(Rect::new(r.x, base_y, r.w, LINE_HEIGHT), self.bg);
        let max_chars = (r.w / 8) as usize;
        let clipped: String = line.chars().take(max_chars).collect();
        dv.driver_mut()
            .draw_text(r.x, base_y, &clipped, self.fg, self.bg);
        dv.desktop_mut().set_text(self.app, self.output, line);
    }

    /// Prints a burst of lines with a single scroll jump, the way a
    /// terminal repaints under fast output (one copy + n glyph rows).
    pub fn print_lines(&self, dv: &mut DejaView, lines: &[String]) {
        if lines.is_empty() {
            return;
        }
        let r = self.rect;
        let jump = (lines.len() as u32 * LINE_HEIGHT).min(r.h);
        if r.h > jump {
            dv.driver_mut()
                .copy_area(r.x, r.y + jump, Rect::new(r.x, r.y, r.w, r.h - jump));
        }
        dv.driver_mut()
            .fill_rect(Rect::new(r.x, r.y + r.h - jump, r.w, jump), self.bg);
        let max_chars = (r.w / 8) as usize;
        let shown = lines.len().min((r.h / LINE_HEIGHT) as usize);
        for (i, line) in lines[lines.len() - shown..].iter().enumerate() {
            let y = r.y + r.h - jump + i as u32 * LINE_HEIGHT;
            let clipped: String = line.chars().take(max_chars).collect();
            dv.driver_mut()
                .draw_text(r.x, y, &clipped, self.fg, self.bg);
            dv.desktop_mut().set_text(self.app, self.output, line);
        }
    }

    /// Changes the window title (e.g. a browser's current page).
    pub fn set_title(&self, dv: &mut DejaView, title: &str) {
        dv.desktop_mut().set_text(self.app, self.window, title);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dejaview::Config;
    use rand::SeedableRng;

    #[test]
    fn words_are_deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        assert_eq!(words(&mut a, 10), words(&mut b, 10));
    }

    #[test]
    fn loggy_bytes_have_requested_length() {
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(loggy_bytes(&mut rng, 10_000).len(), 10_000);
    }

    #[test]
    fn term_window_draws_and_captures() {
        let mut dv = DejaView::new(Config {
            width: 320,
            height: 200,
            ..Config::default()
        });
        let term = TermWindow::open(&mut dv, "xterm", "xterm - shell", Rect::new(0, 0, 320, 200));
        term.println(&mut dv, "compiling kernel module");
        term.println(&mut dv, "done");
        // The display saw fills, a copy (scroll) and glyphs.
        let stats = dv.driver_mut().stats();
        assert!(stats.copies >= 1);
        assert!(stats.glyphs >= 2);
        // The index captured the text.
        dv.clock().advance(dv_time::Duration::from_secs(1));
        let index = dv.index();
        let mut guard = index.lock();
        guard.advance_horizon(dv_time::Timestamp::from_secs(1));
        assert_eq!(guard.term_instances("compiling").len(), 1);
    }
}

/// Deterministic corpus sentence `i`: a reproducible mix of vocabulary
/// words plus a unique marker term. Every sentence is distinct (so a
/// capture-time redundancy filter never collapses two of them) while
/// sharing searchable vocabulary across the whole corpus — the shape an
/// index benchmark needs to produce both broad and narrow queries.
pub fn corpus_sentence(i: u64, words_per_sentence: usize) -> String {
    let mut out = String::new();
    let mut x = i
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(0xA076_1D64_78BD_642F);
    for _ in 0..words_per_sentence {
        // xorshift64: cheap, seedless, identical on every platform.
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        out.push_str(WORDS[(x % WORDS.len() as u64) as usize]);
        out.push(' ');
    }
    out.push_str(&format!("m{i:06}"));
    out
}
