//! DejaView: a personal virtual computer recorder.
//!
//! A from-scratch reproduction of the SOSP 2007 DejaView system: a
//! desktop recorder with "What You Search Is What You've Seen"
//! semantics. The [`DejaView`] server continuously records three
//! coordinated streams of a live desktop session —
//!
//! * the **display** (THINC-style command log + keyframes, `dv-record`),
//! * all **on-screen text with context** (accessibility capture into a
//!   full-text interval index, `dv-access` + `dv-index`), and
//! * the **execution state** (policy-driven, low-downtime checkpoints of
//!   the whole virtual execution environment coordinated with file
//!   system snapshots, `dv-checkpoint` + `dv-vee` + `dv-lsfs`)
//!
//! — and lets the user **play back**, **browse**, **search**, and
//! **revive** any past moment, including multiple concurrently revived,
//! diverging sessions.
//!
//! # Example
//!
//! ```
//! use dejaview::{Config, DejaView};
//! use dv_display::Rect;
//! use dv_index::RankOrder;
//! use dv_time::Duration;
//!
//! let mut dv = DejaView::new(Config::default());
//! let clock = dv.clock();
//!
//! // An application draws and exposes text.
//! let app = dv.desktop_mut().register_app("editor");
//! let root = dv.desktop_mut().root(app).unwrap();
//! let win = dv.desktop_mut().add_node(app, root, dv_access::Role::Window, "notes");
//! dv.desktop_mut().add_node(app, win, dv_access::Role::Paragraph, "remember the milk");
//! dv.driver_mut().fill_rect(Rect::new(0, 0, 1024, 768), 0x336699);
//!
//! // Time passes; the policy takes a checkpoint.
//! clock.advance(Duration::from_secs(1));
//! dv.policy_tick().unwrap();
//!
//! // WYSIWYS search returns a screenshot portal.
//! let results = dv.search("milk", RankOrder::Chronological).unwrap();
//! assert_eq!(results.len(), 1);
//!
//! // ...through which the session can be revived (from the nearest
//! // checkpoint at or before the requested time).
//! let session = dv.take_me_back(dv.now()).unwrap();
//! assert!(dv.session(session).is_ok());
//! ```

#![deny(unsafe_code)]

pub mod archive;
pub mod config;
pub mod error;
pub mod server;
pub mod session;
pub mod sink;
pub mod stats;
pub mod ui;

pub use archive::ArchiveError;
pub use config::Config;
pub use dv_obs::{Obs, ObsSnapshot};
pub use dv_vidx::{VidxStats, VisualHit};
pub use error::ServerError;
pub use server::{DejaView, PolicyTick, SearchResult};
pub use session::{BranchFs, RevivedSession};
pub use sink::{role_tag, IndexSink};
pub use stats::{PipelineBreakdown, StorageBreakdown, StorageRates};
pub use ui::{ViewMode, ViewerUi};
