//! Rate limiting for the checkpoint policy.

use crate::{Duration, Timestamp};

/// A minimum-interval rate limiter.
///
/// DejaView's checkpoint policy limits checkpoints to "at most once per
/// second by default", and drops to once every ten seconds during text
/// editing (§5.1.3). The limiter is driven by explicit session timestamps
/// rather than a clock handle so the policy stays a pure function of its
/// inputs.
///
/// # Examples
///
/// ```
/// use dv_time::{Duration, RateLimiter, Timestamp};
///
/// let mut limiter = RateLimiter::new(Duration::from_secs(1));
/// assert!(limiter.try_acquire(Timestamp::from_millis(0)));
/// assert!(!limiter.try_acquire(Timestamp::from_millis(400)));
/// assert!(limiter.try_acquire(Timestamp::from_millis(1_000)));
/// ```
#[derive(Clone, Debug)]
pub struct RateLimiter {
    min_interval: Duration,
    last: Option<Timestamp>,
}

impl RateLimiter {
    /// Creates a limiter that allows one acquisition per `min_interval`.
    pub fn new(min_interval: Duration) -> Self {
        RateLimiter {
            min_interval,
            last: None,
        }
    }

    /// Returns the configured minimum interval.
    pub fn min_interval(&self) -> Duration {
        self.min_interval
    }

    /// Changes the minimum interval; the next acquisition is evaluated
    /// against the new value.
    pub fn set_min_interval(&mut self, min_interval: Duration) {
        self.min_interval = min_interval;
    }

    /// Attempts an acquisition at time `now`; returns whether it was
    /// allowed. The first acquisition is always allowed.
    pub fn try_acquire(&mut self, now: Timestamp) -> bool {
        if self.would_allow(now) {
            self.last = Some(now);
            true
        } else {
            false
        }
    }

    /// Returns whether an acquisition at `now` would be allowed, without
    /// consuming it.
    pub fn would_allow(&self, now: Timestamp) -> bool {
        match self.last {
            None => true,
            Some(last) => now.saturating_since(last) >= self.min_interval,
        }
    }

    /// Returns the time of the last allowed acquisition.
    pub fn last_acquired(&self) -> Option<Timestamp> {
        self.last
    }

    /// Forgets the last acquisition, letting the next attempt through
    /// immediately.
    pub fn reset(&mut self) {
        self.last = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_acquire_is_free() {
        let mut limiter = RateLimiter::new(Duration::from_secs(10));
        assert!(limiter.try_acquire(Timestamp::ZERO));
    }

    #[test]
    fn enforces_min_interval() {
        let mut limiter = RateLimiter::new(Duration::from_secs(1));
        assert!(limiter.try_acquire(Timestamp::from_secs(1)));
        assert!(!limiter.try_acquire(Timestamp::from_millis(1_999)));
        assert!(limiter.try_acquire(Timestamp::from_millis(2_000)));
    }

    #[test]
    fn denied_attempts_do_not_push_back_window() {
        let mut limiter = RateLimiter::new(Duration::from_secs(1));
        assert!(limiter.try_acquire(Timestamp::ZERO));
        for ms in (100..1_000).step_by(100) {
            assert!(!limiter.try_acquire(Timestamp::from_millis(ms)));
        }
        assert!(limiter.try_acquire(Timestamp::from_secs(1)));
    }

    #[test]
    fn interval_change_applies_immediately() {
        let mut limiter = RateLimiter::new(Duration::from_secs(1));
        assert!(limiter.try_acquire(Timestamp::ZERO));
        limiter.set_min_interval(Duration::from_secs(10));
        assert!(!limiter.try_acquire(Timestamp::from_secs(5)));
        assert!(limiter.try_acquire(Timestamp::from_secs(10)));
    }

    #[test]
    fn reset_clears_history() {
        let mut limiter = RateLimiter::new(Duration::from_secs(60));
        assert!(limiter.try_acquire(Timestamp::from_secs(1)));
        limiter.reset();
        assert!(limiter.try_acquire(Timestamp::from_secs(2)));
        assert_eq!(limiter.last_acquired(), Some(Timestamp::from_secs(2)));
    }
}
