//! The deferred commit pipeline.
//!
//! §5.1.2's deferred writeback keeps serialization and storage writes
//! out of the downtime window; this module moves them off the *session
//! thread* entirely. [`Checkpointer::checkpoint`](crate::Checkpointer)
//! splits into a cheap synchronous **capture** (COW page grab, process
//! forest walk, FS snapshot pin) and an asynchronous **commit**: the
//! captured image is handed to a [`CommitPipeline`], whose worker pool
//! encodes the image sections, compresses them in parallel (one subtask
//! per process section), and writes the blob through the
//! fault-instrumented store.
//!
//! A pipeline serves one or more **lanes**. A single-session engine
//! owns a pipeline with just lane 0; a multi-tenant host shares one
//! worker pool across many sessions by registering one lane per tenant
//! ([`CommitPipeline::register_lane`]). Each lane carries its own
//! fault plane, observability handle, commit ordering, failure set,
//! and queue-depth quota, so tenants are isolated even though they
//! share threads and a store.
//!
//! Invariants:
//!
//! * **In-order commit per lane.** Blobs land in checkpoint-counter
//!   order within a lane, one at a time, no matter how compression
//!   subtasks interleave. A per-lane "committer" token plus a
//!   next-counter gate serializes the final fault-site check and store
//!   write, so fault-injection schedules on `checkpoint.writeback`
//!   observe the same call order as the inline path and the
//!   incremental chain never references a later image. Different
//!   lanes commit concurrently.
//! * **Fair scheduling.** Ready work is drawn from lanes in a
//!   round-robin ring; with [`FairPolicy::DeficitWeighted`] a lane
//!   runs up to `weight` consecutive tasks per turn, so commit
//!   bandwidth follows the configured weights. Commit turns drain a
//!   FIFO of commit-ready lanes — a lane re-queues behind every other
//!   waiting lane after each commit it lands — so one tenant's retry
//!   storm cannot monopolize the committer, and picking work stays
//!   O(1) no matter how many lanes share the pool.
//! * **Bounded queue per lane.** At most `quota` captures may be
//!   pending per lane; the engine drains and falls back to an inline
//!   commit when full, so memory stays bounded, ordering stays
//!   strict, and one tenant's backlog never consumes another's queue
//!   budget.
//! * **Failure cascade, per lane.** A commit that exhausts its
//!   retries marks its counter failed *in its lane*; queued
//!   incrementals chaining through it are failed without touching the
//!   store (their pages would be unreachable), and that lane's engine
//!   re-anchors with a forced full checkpoint. Other lanes never see
//!   the failure.
//!
//! All timing in this module goes through [`dv_time::Sleeper`] — both
//! the retry backoff *and* the enqueue-to-resolve latency measurement
//! — so a sim-clocked host run is deterministic end to end.

use std::collections::{BTreeMap, HashSet, VecDeque};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;

use dv_fault::{sites, FaultPlane, IoFault};
use dv_lsfs::{FsError, SharedBlobStore};
use dv_obs::{names, Obs};
use dv_time::{Duration, Sleeper, Timestamp};

use crate::compress::{assemble_chunks, compress};
use crate::image::{encode_image_sections, CheckpointImage, ImageKind};

/// Identifies one lane (tenant) of a shared pipeline. Single-session
/// engines use lane 0.
pub type LaneId = u64;

/// How the worker pool divides its attention between lanes.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum FairPolicy {
    /// One task per lane per turn.
    #[default]
    RoundRobin,
    /// Up to `weight` consecutive tasks per lane per turn — a lane
    /// with weight 2 gets twice the worker bandwidth of weight 1.
    DeficitWeighted,
}

/// Commit-pipeline tuning, lifted from the engine config.
#[derive(Clone, Copy, Debug)]
pub struct PipelineConfig {
    /// Worker threads encoding, compressing, and committing images.
    pub workers: usize,
    /// Maximum captures pending per lane before backpressure kicks in
    /// (the default quota for lanes that don't override it).
    pub queue_depth: usize,
    /// Store-write retries before a commit is declared failed.
    pub retry_limit: u32,
    /// Backoff before the first retry; doubles per attempt.
    pub retry_backoff: Duration,
    /// Whether images are compressed (chunked container format).
    pub compress: bool,
    /// How worker bandwidth is divided between lanes.
    pub fairness: FairPolicy,
}

/// What the engine needs back once a deferred commit resolves.
#[derive(Clone, Debug)]
pub struct CommitOutcome {
    /// Checkpoint counter of the image.
    pub counter: u64,
    /// Session time of the capture.
    pub time: Timestamp,
    /// Full or incremental.
    pub kind: ImageKind,
    /// Blob name the image was (or would have been) stored under.
    pub blob: String,
    /// Whether this was a full checkpoint.
    pub full: bool,
    /// `Ok((raw_bytes, stored_bytes))`, or why the commit failed.
    pub result: Result<(u64, u64), CommitError>,
    /// Nanoseconds from enqueue to commit resolution, measured on the
    /// pipeline's sleeper timebase (wall or sim).
    pub commit_nanos: u64,
}

/// Why a deferred commit failed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CommitError {
    /// The store write (or image encode) failed after all retries.
    Io(FsError),
    /// The image chains through counter `.0`, whose commit failed; the
    /// blob was never written.
    Cascaded(u64),
}

impl CommitError {
    /// Collapses to the underlying storage error kind.
    pub fn as_fs_error(&self) -> FsError {
        match self {
            CommitError::Io(e) => *e,
            CommitError::Cascaded(_) => FsError::Io,
        }
    }
}

/// Encode-site fault decided on the session thread at enqueue time, so
/// the `checkpoint.image.encode` schedule is independent of worker
/// interleaving.
#[derive(Clone, Copy, Debug)]
pub enum EncodeFault {
    /// Encode "fails"; the commit resolves as this error.
    Fail(FsError),
    /// Encode succeeds but one byte of the image is mangled.
    Corrupt,
}

/// Maps a raw fault at the encode site to its realization.
pub fn encode_fault_of(fault: Option<IoFault>) -> Option<EncodeFault> {
    match fault {
        None | Some(IoFault::LatencySpike) => None,
        Some(IoFault::Enospc) => Some(EncodeFault::Fail(FsError::NoSpace)),
        Some(IoFault::TornWrite) | Some(IoFault::ShortRead) => Some(EncodeFault::Fail(FsError::Io)),
        Some(IoFault::Corrupt) => Some(EncodeFault::Corrupt),
    }
}

/// An auxiliary unit of work scheduled on the pool (index compaction,
/// maintenance sweeps). Runs outside the pipeline lock.
pub type AuxTask = Box<dyn FnOnce() + Send>;

enum Task {
    /// Turn job `.1`'s image into sections, then fan out compression.
    Encode(LaneId, u64),
    /// Compress section `.2` of job `(.0, .1)`.
    Compress(LaneId, u64, usize),
    /// Run an auxiliary closure on lane `.0`'s budget. Aux work shares
    /// the fairness ring with commit work but is accounted separately
    /// (`aux_pending`, not `inflight`), so it never perturbs commit
    /// ordering or queue-depth backpressure.
    Aux(LaneId, AuxTask),
}

struct Job {
    counter: u64,
    time: Timestamp,
    kind: ImageKind,
    blob: String,
    full: bool,
    image: Option<CheckpointImage>,
    encode_fault: Option<EncodeFault>,
    /// Raw (encoded, uncompressed) sections awaiting compression.
    sections: Vec<Vec<u8>>,
    /// Per-section output; `None` until its subtask finishes.
    chunks: Vec<Option<Vec<u8>>>,
    remaining: usize,
    encoded: bool,
    raw_bytes: u64,
    /// Sleeper-timebase reading at enqueue (see
    /// [`dv_time::Sleeper::now_nanos`]).
    started_nanos: u64,
}

impl Job {
    fn ready(&self) -> bool {
        self.encoded && self.remaining == 0
    }
}

/// Per-lane scheduling and isolation state.
struct Lane {
    /// Tasks waiting for a worker, in arrival order.
    queue: VecDeque<Task>,
    next_commit: u64,
    committing: bool,
    inflight: usize,
    failed: HashSet<u64>,
    finished: Vec<CommitOutcome>,
    plane: FaultPlane,
    obs: Obs,
    /// Queue-depth quota: captures pending before backpressure.
    quota: usize,
    /// Scheduling weight under [`FairPolicy::DeficitWeighted`].
    weight: u32,
    /// Task credits remaining in the lane's current turn.
    credit: u32,
    /// Whether the lane is already queued in `commit_ready`.
    commit_queued: bool,
    /// Auxiliary tasks queued or running on this lane. Kept apart from
    /// `inflight`: aux work must not reset `next_commit` on enqueue or
    /// consume the capture queue-depth quota.
    aux_pending: usize,
}

struct State {
    lanes: BTreeMap<LaneId, Lane>,
    jobs: BTreeMap<(LaneId, u64), Job>,
    /// Lanes with queued tasks, in round-robin order.
    ready: VecDeque<LaneId>,
    /// Lanes whose next-in-order job is ready to commit, FIFO. Kept
    /// event-driven (updated when a job finishes encoding or a commit
    /// lands) so picking a commit is O(1) in the lane count.
    commit_ready: VecDeque<LaneId>,
    total_inflight: usize,
    /// Auxiliary tasks queued or running across all lanes.
    aux_inflight: usize,
    shutdown: bool,
}

impl State {
    fn lane(&self, id: LaneId) -> &Lane {
        self.lanes.get(&id).expect("lane registered")
    }

    fn lane_mut(&mut self, id: LaneId) -> &mut Lane {
        self.lanes.get_mut(&id).expect("lane registered")
    }

    fn mark_ready(&mut self, id: LaneId) {
        if !self.ready.contains(&id) {
            self.ready.push_back(id);
        }
    }

    /// Queues a lane for a commit turn if its next-in-order job is
    /// fully encoded and its committer token is free. FIFO arrival
    /// order is the rotation: a lane that lands a commit re-queues
    /// behind every other waiting lane.
    fn mark_commit_ready(&mut self, id: LaneId) {
        let Some(lane) = self.lanes.get(&id) else {
            return;
        };
        if lane.commit_queued || lane.committing {
            return;
        }
        if self
            .jobs
            .get(&(id, lane.next_commit))
            .is_some_and(Job::ready)
        {
            self.lane_mut(id).commit_queued = true;
            self.commit_ready.push_back(id);
        }
    }
}

struct Shared {
    state: Mutex<State>,
    /// Workers wait here for tasks / commit turns.
    work: Condvar,
    /// `drain` waits here for `inflight == 0`.
    done: Condvar,
}

impl Shared {
    fn lock(&self) -> MutexGuard<'_, State> {
        self.state.lock().expect("commit pipeline state poisoned")
    }
}

/// The worker pool behind deferred checkpoint commits. One pipeline
/// can serve many sessions: each registers a lane with its own fault
/// plane, observability handle, and quota, and the pool schedules work
/// fairly across lanes.
pub struct CommitPipeline {
    shared: Arc<Shared>,
    store: SharedBlobStore,
    sleeper: Sleeper,
    workers: Vec<JoinHandle<()>>,
}

impl CommitPipeline {
    /// Spawns `config.workers` (at least 1) worker threads writing into
    /// `store`, with lane 0 registered against `plane`/`obs` at the
    /// default quota and weight 1. Retry backoff and job timing go
    /// through `sleeper`.
    pub fn new(
        config: PipelineConfig,
        store: SharedBlobStore,
        plane: FaultPlane,
        sleeper: Sleeper,
        obs: Obs,
    ) -> Self {
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                lanes: BTreeMap::new(),
                jobs: BTreeMap::new(),
                ready: VecDeque::new(),
                commit_ready: VecDeque::new(),
                total_inflight: 0,
                aux_inflight: 0,
                shutdown: false,
            }),
            work: Condvar::new(),
            done: Condvar::new(),
        });
        let workers = (0..config.workers.max(1))
            .map(|i| {
                let shared = shared.clone();
                let store = store.clone();
                let sleeper = sleeper.clone();
                std::thread::Builder::new()
                    .name(format!("dv-commit-{i}"))
                    .spawn(move || worker(shared, store, sleeper, config))
                    .expect("spawn commit worker")
            })
            .collect();
        let pipe = CommitPipeline {
            shared,
            store,
            sleeper,
            workers,
        };
        pipe.register_lane(0, plane, obs, config.queue_depth, 1);
        pipe
    }

    /// Registers (or reconfigures) a lane: its fault plane, its
    /// observability handle, its queue-depth `quota`, and its
    /// scheduling `weight`. Safe to call on a live lane — in-flight
    /// jobs keep the handles they were enqueued under.
    pub fn register_lane(
        &self,
        lane: LaneId,
        plane: FaultPlane,
        obs: Obs,
        quota: usize,
        weight: u32,
    ) {
        let mut state = self.shared.lock();
        match state.lanes.get_mut(&lane) {
            Some(existing) => {
                existing.plane = plane;
                existing.obs = obs;
                existing.quota = quota;
                existing.weight = weight;
            }
            None => {
                state.lanes.insert(
                    lane,
                    Lane {
                        queue: VecDeque::new(),
                        next_commit: 0,
                        committing: false,
                        inflight: 0,
                        failed: HashSet::new(),
                        finished: Vec::new(),
                        plane,
                        obs,
                        quota,
                        weight,
                        credit: 0,
                        commit_queued: false,
                        aux_pending: 0,
                    },
                );
            }
        }
    }

    /// Drains and removes a lane (a dropped tenant). Unreaped outcomes
    /// are discarded; callers should `take_finished_lane` first.
    pub fn remove_lane(&self, lane: LaneId) {
        self.drain_lane(lane);
        let mut state = self.shared.lock();
        state.lanes.remove(&lane);
        state.ready.retain(|id| *id != lane);
        state.commit_ready.retain(|id| *id != lane);
    }

    /// Registered lane ids, in order.
    pub fn lanes(&self) -> Vec<LaneId> {
        self.shared.lock().lanes.keys().copied().collect()
    }

    /// Whether this pipeline writes into `store`.
    pub fn writes_to(&self, store: &SharedBlobStore) -> bool {
        self.store.ptr_eq(store)
    }

    /// Captures pending across all lanes.
    pub fn inflight(&self) -> usize {
        self.shared.lock().total_inflight
    }

    /// Captures pending in one lane.
    pub fn inflight_lane(&self, lane: LaneId) -> usize {
        self.shared
            .lock()
            .lanes
            .get(&lane)
            .map_or(0, |l| l.inflight)
    }

    /// Whether another capture fits under lane 0's queue-depth quota.
    pub fn has_capacity(&self) -> bool {
        self.has_capacity_lane(0)
    }

    /// Whether another capture fits under the lane's queue-depth quota.
    pub fn has_capacity_lane(&self, lane: LaneId) -> bool {
        self.shared
            .lock()
            .lanes
            .get(&lane)
            .is_some_and(|l| l.inflight < l.quota.max(1))
    }

    /// Hands a captured image to the workers on lane 0.
    pub fn enqueue(
        &self,
        image: CheckpointImage,
        blob: String,
        full: bool,
        encode_fault: Option<EncodeFault>,
    ) {
        self.enqueue_lane(0, image, blob, full, encode_fault);
    }

    /// Hands a captured image to the workers. `encode_fault` carries the
    /// session-thread decision for the `checkpoint.image.encode` site.
    ///
    /// Counters must be enqueued in increasing order within a lane;
    /// they commit in that order. Lanes are independent.
    pub fn enqueue_lane(
        &self,
        lane: LaneId,
        image: CheckpointImage,
        blob: String,
        full: bool,
        encode_fault: Option<EncodeFault>,
    ) {
        let started_nanos = self.sleeper.now_nanos();
        let mut state = self.shared.lock();
        let seq = image.counter;
        {
            let l = state.lane_mut(lane);
            if l.inflight == 0 {
                l.next_commit = seq;
            } else {
                debug_assert!(seq > l.next_commit, "counters must be monotone per lane");
            }
            l.inflight += 1;
            l.queue.push_back(Task::Encode(lane, seq));
        }
        state.jobs.insert(
            (lane, seq),
            Job {
                counter: seq,
                time: image.time,
                kind: image.kind,
                blob,
                full,
                image: Some(image),
                encode_fault,
                sections: Vec::new(),
                chunks: Vec::new(),
                remaining: 0,
                encoded: false,
                raw_bytes: 0,
                started_nanos,
            },
        );
        state.total_inflight += 1;
        state.mark_ready(lane);
        drop(state);
        self.shared.work.notify_one();
    }

    /// Schedules an auxiliary closure on `lane`'s budget. The closure
    /// runs on a pool worker, drawn from the same fairness ring as the
    /// lane's commit work, so heavy maintenance (segment compaction)
    /// competes fairly with — and never starves — other tenants'
    /// commits. Aux work is accounted apart from captures: it neither
    /// consumes the queue-depth quota nor perturbs commit ordering.
    /// Returns `false` (and drops the task) if the lane is unknown.
    pub fn submit_aux(&self, lane: LaneId, task: impl FnOnce() + Send + 'static) -> bool {
        let mut state = self.shared.lock();
        if !state.lanes.contains_key(&lane) {
            return false;
        }
        {
            let l = state.lane_mut(lane);
            l.aux_pending += 1;
            l.queue.push_back(Task::Aux(lane, Box::new(task)));
        }
        state.aux_inflight += 1;
        state.mark_ready(lane);
        drop(state);
        self.shared.work.notify_one();
        true
    }

    /// Auxiliary tasks queued or running across all lanes.
    pub fn aux_inflight(&self) -> usize {
        self.shared.lock().aux_inflight
    }

    /// Blocks until every enqueued capture in every lane has resolved
    /// (committed or failed) and every auxiliary task has run. Outcomes
    /// stay queued for [`CommitPipeline::take_finished_lane`].
    pub fn drain(&self) {
        let mut state = self.shared.lock();
        while state.total_inflight > 0 || state.aux_inflight > 0 {
            state = self
                .shared
                .done
                .wait(state)
                .expect("commit pipeline state poisoned");
        }
    }

    /// Blocks until one lane's captures have all resolved. Other lanes
    /// keep flowing.
    pub fn drain_lane(&self, lane: LaneId) {
        let mut state = self.shared.lock();
        while state
            .lanes
            .get(&lane)
            .is_some_and(|l| l.inflight > 0 || l.aux_pending > 0)
        {
            state = self
                .shared
                .done
                .wait(state)
                .expect("commit pipeline state poisoned");
        }
    }

    /// Removes and returns lane 0's resolved outcomes, oldest first.
    pub fn take_finished(&self) -> Vec<CommitOutcome> {
        self.take_finished_lane(0)
    }

    /// Removes and returns one lane's resolved outcomes, oldest first.
    pub fn take_finished_lane(&self, lane: LaneId) -> Vec<CommitOutcome> {
        let mut state = self.shared.lock();
        match state.lanes.get_mut(&lane) {
            Some(l) => std::mem::take(&mut l.finished),
            None => Vec::new(),
        }
    }
}

impl Drop for CommitPipeline {
    fn drop(&mut self) {
        {
            let mut state = self.shared.lock();
            state.shutdown = true;
        }
        self.shared.work.notify_all();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

enum Step {
    Run(Task),
    Commit(LaneId, Box<Job>),
    Exit,
}

/// Picks the next unit of work under the fairness policy: one task
/// from the lane at the head of the ready ring (a deficit-weighted
/// lane keeps the head for up to `weight` tasks), else a commit turn
/// from the FIFO of commit-ready lanes. Both picks are O(1) in the
/// lane count, so the scheduler's cost does not grow with tenants.
fn pick(state: &mut State, config: &PipelineConfig) -> Option<Step> {
    if let Some(&lane_id) = state.ready.front() {
        let fairness = config.fairness;
        let lane = state.lane_mut(lane_id);
        let task = lane.queue.pop_front().expect("ready lane has tasks");
        if lane.credit == 0 {
            lane.credit = match fairness {
                FairPolicy::RoundRobin => 1,
                FairPolicy::DeficitWeighted => lane.weight.max(1),
            };
        }
        lane.credit -= 1;
        if lane.queue.is_empty() {
            lane.credit = 0;
            state.ready.pop_front();
        } else if lane.credit == 0 {
            state.ready.rotate_left(1);
        }
        return Some(Step::Run(task));
    }
    while let Some(id) = state.commit_ready.pop_front() {
        let Some(next) = state.lanes.get_mut(&id).and_then(|lane| {
            lane.commit_queued = false;
            (!lane.committing).then_some(lane.next_commit)
        }) else {
            // The lane was removed (or its committer raced busy) after
            // it was queued; drop the stale entry.
            continue;
        };
        if state.jobs.get(&(id, next)).is_some_and(Job::ready) {
            let job = state.jobs.remove(&(id, next)).expect("ready job present");
            state.lane_mut(id).committing = true;
            return Some(Step::Commit(id, Box::new(job)));
        }
    }
    None
}

fn worker(shared: Arc<Shared>, store: SharedBlobStore, sleeper: Sleeper, config: PipelineConfig) {
    loop {
        let step = {
            let mut state = shared.lock();
            loop {
                if let Some(step) = pick(&mut state, &config) {
                    break step;
                }
                if state.shutdown
                    && state.jobs.is_empty()
                    && state.aux_inflight == 0
                    && state.lanes.values().all(|l| !l.committing)
                {
                    break Step::Exit;
                }
                state = shared
                    .work
                    .wait(state)
                    .expect("commit pipeline state poisoned");
            }
        };
        match step {
            Step::Run(Task::Encode(lane, seq)) => run_encode(&shared, &config, lane, seq),
            Step::Run(Task::Compress(lane, seq, i)) => run_compress(&shared, lane, seq, i),
            Step::Run(Task::Aux(lane, task)) => run_aux(&shared, lane, task),
            Step::Commit(lane, job) => run_commit(&shared, &store, &sleeper, &config, lane, *job),
            Step::Exit => return,
        }
    }
}

fn run_encode(shared: &Arc<Shared>, config: &PipelineConfig, lane: LaneId, seq: u64) {
    let (image, prefailed, plane) = {
        let mut state = shared.lock();
        let plane = state.lane(lane).plane.clone();
        let job = state
            .jobs
            .get_mut(&(lane, seq))
            .expect("encode job present");
        let prefailed = matches!(job.encode_fault, Some(EncodeFault::Fail(_)));
        (job.image.take(), prefailed, plane)
    };
    let mut sections = Vec::new();
    let mut raw_bytes = 0u64;
    if !prefailed {
        let image = image.expect("image present until encode");
        sections = encode_image_sections(&image);
        drop(image); // release the COW page references promptly
        raw_bytes = sections.iter().map(|s| s.len() as u64).sum();
        if matches!(
            shared
                .lock()
                .jobs
                .get(&(lane, seq))
                .expect("job")
                .encode_fault,
            Some(EncodeFault::Corrupt)
        ) {
            // One mangled byte in the largest section, mirroring the
            // inline path's whole-buffer mangle.
            if let Some(victim) = sections.iter_mut().max_by_key(|s| s.len()) {
                plane.mangle(victim);
            }
        }
    }
    let mut state = shared.lock();
    let fanout = {
        let job = state
            .jobs
            .get_mut(&(lane, seq))
            .expect("encode job present");
        job.raw_bytes = raw_bytes;
        job.encoded = true;
        if prefailed || !config.compress {
            // Failed jobs have nothing to compress; uncompressed jobs
            // pass their sections straight to the commit concatenation.
            job.chunks = sections.into_iter().map(Some).collect();
            job.remaining = 0;
            0
        } else {
            job.chunks = vec![None; sections.len()];
            job.remaining = sections.len();
            job.sections = sections;
            job.remaining
        }
    };
    if fanout == 0 {
        state.mark_commit_ready(lane);
        drop(state);
        shared.work.notify_one();
    } else {
        {
            let l = state.lane_mut(lane);
            for i in 0..fanout {
                l.queue.push_back(Task::Compress(lane, seq, i));
            }
        }
        state.mark_ready(lane);
        drop(state);
        shared.work.notify_all();
    }
}

fn run_compress(shared: &Arc<Shared>, lane: LaneId, seq: u64, index: usize) {
    let (section, obs) = {
        let mut state = shared.lock();
        let obs = state.lane(lane).obs.clone();
        let job = state
            .jobs
            .get_mut(&(lane, seq))
            .expect("compress job present");
        (std::mem::take(&mut job.sections[index]), obs)
    };
    let compressed = {
        let _span = obs.span("checkpoint", names::CHECKPOINT_WORKER_COMPRESS);
        compress(&section)
    };
    drop(section);
    let mut state = shared.lock();
    let ready = {
        let job = state
            .jobs
            .get_mut(&(lane, seq))
            .expect("compress job present");
        job.chunks[index] = Some(compressed);
        job.remaining -= 1;
        job.ready()
    };
    if ready {
        state.mark_commit_ready(lane);
    }
    drop(state);
    if ready {
        shared.work.notify_one();
    }
}

fn run_aux(shared: &Arc<Shared>, lane: LaneId, task: AuxTask) {
    task();
    let mut state = shared.lock();
    if let Some(l) = state.lanes.get_mut(&lane) {
        l.aux_pending = l.aux_pending.saturating_sub(1);
    }
    state.aux_inflight = state.aux_inflight.saturating_sub(1);
    drop(state);
    shared.work.notify_all();
    shared.done.notify_all();
}

fn run_commit(
    shared: &Arc<Shared>,
    store: &SharedBlobStore,
    sleeper: &Sleeper,
    config: &PipelineConfig,
    lane: LaneId,
    job: Job,
) {
    let (plane, obs, cascade_from) = {
        let state = shared.lock();
        let l = state.lane(lane);
        let cascade_from = match job.kind {
            ImageKind::Incremental { prev } if l.failed.contains(&prev) => Some(prev),
            _ => None,
        };
        (l.plane.clone(), l.obs.clone(), cascade_from)
    };
    let result: Result<(u64, u64), CommitError> = if let Some(prev) = cascade_from {
        Err(CommitError::Cascaded(prev))
    } else if let Some(EncodeFault::Fail(e)) = job.encode_fault {
        Err(CommitError::Io(e))
    } else {
        let chunks: Vec<Vec<u8>> = job
            .chunks
            .into_iter()
            .map(|c| c.expect("all sections resolved"))
            .collect();
        let stored = if config.compress {
            assemble_chunks(&chunks)
        } else {
            chunks.concat()
        };
        let stored_bytes = stored.len() as u64;
        let mut backoff = config.retry_backoff;
        let mut attempt = 0u32;
        loop {
            let write = (|| -> Result<(), FsError> {
                let mut bytes = stored.clone();
                match plane.check(sites::CHECKPOINT_WRITEBACK) {
                    None => {}
                    // A spike stalls the worker, not the session: the
                    // cost lands on the commit pipeline's clock.
                    Some(IoFault::LatencySpike) => sleeper.sleep(config.retry_backoff),
                    Some(IoFault::Enospc) => return Err(FsError::NoSpace),
                    Some(IoFault::TornWrite) | Some(IoFault::ShortRead) => return Err(FsError::Io),
                    Some(IoFault::Corrupt) => plane.mangle(&mut bytes),
                }
                // Chunk-split and hash outside the store lock; commit
                // workers emit chunk manifests when dedup is enabled.
                store.put_deduped(&job.blob, bytes)
            })();
            match write {
                Ok(()) => break Ok((job.raw_bytes, stored_bytes)),
                Err(e) if attempt >= config.retry_limit => break Err(CommitError::Io(e)),
                Err(e) => {
                    attempt += 1;
                    obs.incr(names::CHECKPOINT_COMMIT_RETRIES);
                    obs.event(
                        "checkpoint",
                        names::EV_COMMIT_RETRY,
                        format!("counter={} attempt={attempt} error={e:?}", job.counter),
                    );
                    sleeper.sleep(backoff);
                    backoff = backoff + backoff;
                }
            }
        }
    };
    let outcome = CommitOutcome {
        counter: job.counter,
        time: job.time,
        kind: job.kind,
        blob: job.blob,
        full: job.full,
        commit_nanos: sleeper.now_nanos().saturating_sub(job.started_nanos),
        result,
    };
    let failed = outcome.result.is_err();
    let counter = outcome.counter;
    let mut state = shared.lock();
    {
        let l = state.lane_mut(lane);
        if failed {
            l.failed.insert(counter);
        }
        l.finished.push(outcome);
        l.next_commit += 1;
        l.committing = false;
        l.inflight -= 1;
    }
    state.total_inflight -= 1;
    // The lane's next counter may already be fully compressed.
    state.mark_commit_ready(lane);
    drop(state);
    shared.work.notify_all();
    shared.done.notify_all();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::image::decode_image;
    use dv_fault::FaultPlan;
    use dv_time::SimClock;

    fn tiny_image(counter: u64, kind: ImageKind) -> CheckpointImage {
        CheckpointImage {
            counter,
            time: Timestamp::from_millis(counter),
            kind,
            hostname: "t".into(),
            network_enabled: false,
            processes: Vec::new(),
            sockets: Vec::new(),
        }
    }

    fn config(workers: usize) -> PipelineConfig {
        PipelineConfig {
            workers,
            queue_depth: 8,
            retry_limit: 2,
            retry_backoff: Duration::from_millis(1),
            compress: true,
            fairness: FairPolicy::RoundRobin,
        }
    }

    #[test]
    fn commits_land_in_counter_order() {
        let store = SharedBlobStore::in_memory();
        let pipe = CommitPipeline::new(
            config(4),
            store.clone(),
            FaultPlane::disabled(),
            Sleeper::Sim(SimClock::new()),
            Obs::disabled(),
        );
        for c in 1..=6u64 {
            let kind = if c == 1 {
                ImageKind::Full
            } else {
                ImageKind::Incremental { prev: c - 1 }
            };
            pipe.enqueue(tiny_image(c, kind), format!("ckpt-{c:08}"), c == 1, None);
        }
        pipe.drain();
        let outcomes = pipe.take_finished();
        let counters: Vec<u64> = outcomes.iter().map(|o| o.counter).collect();
        assert_eq!(counters, vec![1, 2, 3, 4, 5, 6], "in-order resolution");
        for o in &outcomes {
            assert!(o.result.is_ok());
            assert!(store.lock().contains(&o.blob));
        }
        let blob = store.lock().get("ckpt-00000003").unwrap();
        let plain = crate::compress::decompress(&blob).unwrap();
        assert_eq!(decode_image(&plain).unwrap().counter, 3);
    }

    #[test]
    fn failed_commit_cascades_to_dependents() {
        let store = SharedBlobStore::in_memory();
        // Every writeback from the 2nd onward fails, exhausting retries.
        let plane = FaultPlan::new(7)
            .from_nth(sites::CHECKPOINT_WRITEBACK, 2, IoFault::Enospc)
            .build();
        let pipe = CommitPipeline::new(
            config(2),
            store.clone(),
            plane,
            Sleeper::Sim(SimClock::new()),
            Obs::disabled(),
        );
        pipe.enqueue(
            tiny_image(1, ImageKind::Full),
            "ckpt-00000001".into(),
            true,
            None,
        );
        pipe.enqueue(
            tiny_image(2, ImageKind::Incremental { prev: 1 }),
            "ckpt-00000002".into(),
            false,
            None,
        );
        pipe.enqueue(
            tiny_image(3, ImageKind::Incremental { prev: 2 }),
            "ckpt-00000003".into(),
            false,
            None,
        );
        pipe.drain();
        let outcomes = pipe.take_finished();
        assert!(outcomes[0].result.is_ok());
        assert_eq!(
            outcomes[1].result,
            Err(CommitError::Io(FsError::NoSpace)),
            "retries exhausted"
        );
        assert_eq!(
            outcomes[2].result,
            Err(CommitError::Cascaded(2)),
            "dependent fails without touching the store"
        );
        assert!(store.lock().contains("ckpt-00000001"));
        assert!(!store.lock().contains("ckpt-00000002"));
        assert!(!store.lock().contains("ckpt-00000003"));
    }

    #[test]
    fn encode_fault_resolves_without_store_write() {
        let store = SharedBlobStore::in_memory();
        let pipe = CommitPipeline::new(
            config(1),
            store.clone(),
            FaultPlane::disabled(),
            Sleeper::Sim(SimClock::new()),
            Obs::disabled(),
        );
        pipe.enqueue(
            tiny_image(1, ImageKind::Full),
            "ckpt-00000001".into(),
            true,
            Some(EncodeFault::Fail(FsError::NoSpace)),
        );
        pipe.drain();
        let outcomes = pipe.take_finished();
        assert_eq!(outcomes[0].result, Err(CommitError::Io(FsError::NoSpace)));
        assert!(!store.lock().contains("ckpt-00000001"));
    }

    #[test]
    fn lanes_commit_independently_and_in_order() {
        let store = SharedBlobStore::in_memory();
        let pipe = CommitPipeline::new(
            config(3),
            store.clone(),
            FaultPlane::disabled(),
            Sleeper::Sim(SimClock::new()),
            Obs::disabled(),
        );
        for lane in 1..=3u64 {
            pipe.register_lane(lane, FaultPlane::disabled(), Obs::disabled(), 8, 1);
        }
        for c in 1..=4u64 {
            for lane in 1..=3u64 {
                let kind = if c == 1 {
                    ImageKind::Full
                } else {
                    ImageKind::Incremental { prev: c - 1 }
                };
                pipe.enqueue_lane(
                    lane,
                    tiny_image(c, kind),
                    format!("t{lane}-{c:08}"),
                    c == 1,
                    None,
                );
            }
        }
        pipe.drain();
        for lane in 1..=3u64 {
            let outcomes = pipe.take_finished_lane(lane);
            let counters: Vec<u64> = outcomes.iter().map(|o| o.counter).collect();
            assert_eq!(counters, vec![1, 2, 3, 4], "lane {lane} in order");
            for o in &outcomes {
                assert!(o.result.is_ok());
                assert!(store.lock().contains(&o.blob));
            }
        }
    }

    #[test]
    fn lane_failure_does_not_cascade_across_lanes() {
        let store = SharedBlobStore::in_memory();
        let pipe = CommitPipeline::new(
            config(2),
            store.clone(),
            FaultPlane::disabled(),
            Sleeper::Sim(SimClock::new()),
            Obs::disabled(),
        );
        // Lane 1 fails every writeback; lane 2 is clean.
        let faulty = FaultPlan::new(5)
            .always(sites::CHECKPOINT_WRITEBACK, IoFault::Enospc)
            .build();
        pipe.register_lane(1, faulty, Obs::disabled(), 8, 1);
        pipe.register_lane(2, FaultPlane::disabled(), Obs::disabled(), 8, 1);
        for c in 1..=3u64 {
            let kind = if c == 1 {
                ImageKind::Full
            } else {
                ImageKind::Incremental { prev: c - 1 }
            };
            pipe.enqueue_lane(1, tiny_image(c, kind), format!("bad-{c:08}"), c == 1, None);
            pipe.enqueue_lane(2, tiny_image(c, kind), format!("ok-{c:08}"), c == 1, None);
        }
        pipe.drain();
        let bad = pipe.take_finished_lane(1);
        assert!(bad.iter().all(|o| o.result.is_err()), "faulted lane fails");
        let ok = pipe.take_finished_lane(2);
        assert!(
            ok.iter().all(|o| o.result.is_ok()),
            "clean lane is untouched by its neighbour's failures"
        );
        for o in &ok {
            assert!(store.lock().contains(&o.blob));
        }
    }

    #[test]
    fn aux_tasks_run_without_perturbing_commit_order() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let store = SharedBlobStore::in_memory();
        let pipe = CommitPipeline::new(
            config(2),
            store.clone(),
            FaultPlane::disabled(),
            Sleeper::Sim(SimClock::new()),
            Obs::disabled(),
        );
        let ran = Arc::new(AtomicUsize::new(0));
        // Aux before any capture: must not claim the committer gate or
        // reset next_commit for the captures that follow.
        for _ in 0..3 {
            let ran = ran.clone();
            assert!(pipe.submit_aux(0, move || {
                ran.fetch_add(1, Ordering::SeqCst);
            }));
        }
        for c in 1..=4u64 {
            let kind = if c == 1 {
                ImageKind::Full
            } else {
                ImageKind::Incremental { prev: c - 1 }
            };
            pipe.enqueue(tiny_image(c, kind), format!("ckpt-{c:08}"), c == 1, None);
            let ran = ran.clone();
            pipe.submit_aux(0, move || {
                ran.fetch_add(1, Ordering::SeqCst);
            });
        }
        pipe.drain();
        assert_eq!(ran.load(Ordering::SeqCst), 7, "all aux tasks ran");
        let counters: Vec<u64> = pipe.take_finished().iter().map(|o| o.counter).collect();
        assert_eq!(counters, vec![1, 2, 3, 4], "commit order undisturbed");
        assert_eq!(pipe.aux_inflight(), 0);
    }

    #[test]
    fn aux_tasks_do_not_consume_capture_quota() {
        let store = SharedBlobStore::in_memory();
        let pipe = CommitPipeline::new(
            config(1),
            store,
            FaultPlane::disabled(),
            Sleeper::Sim(SimClock::new()),
            Obs::disabled(),
        );
        let gate = Arc::new((Mutex::new(false), Condvar::new()));
        let held = gate.clone();
        // Park the single worker inside an aux task; capacity must
        // still read full (quota tracks captures, not aux work).
        pipe.submit_aux(0, move || {
            let (lock, cv) = &*held;
            let mut open = lock.lock().unwrap();
            while !*open {
                open = cv.wait(open).unwrap();
            }
        });
        assert!(pipe.has_capacity(), "aux work leaves the capture quota");
        assert!(!pipe.submit_aux(99, || {}), "unknown lane refuses aux");
        {
            let (lock, cv) = &*gate;
            *lock.lock().unwrap() = true;
            cv.notify_all();
        }
        pipe.drain();
    }

    #[test]
    fn removed_lane_frees_its_state() {
        let store = SharedBlobStore::in_memory();
        let pipe = CommitPipeline::new(
            config(1),
            store,
            FaultPlane::disabled(),
            Sleeper::Sim(SimClock::new()),
            Obs::disabled(),
        );
        pipe.register_lane(7, FaultPlane::disabled(), Obs::disabled(), 2, 1);
        pipe.enqueue_lane(
            7,
            tiny_image(1, ImageKind::Full),
            "x-00000001".into(),
            true,
            None,
        );
        pipe.drain_lane(7);
        assert_eq!(pipe.take_finished_lane(7).len(), 1);
        pipe.remove_lane(7);
        assert_eq!(pipe.lanes(), vec![0]);
        assert!(!pipe.has_capacity_lane(7), "unknown lane has no capacity");
    }
}
