//! Checkpoint-image blob storage with a droppable cache.
//!
//! Checkpoint images are written as flat files outside the recorded file
//! system. [`BlobStore`] models the storage stack they sit on: a backing
//! store, an in-memory page cache that can be dropped, and an optional
//! read-latency model standing in for the 2007-era disk of the paper's
//! testbed. Figure 7 compares revive latency with *cached* vs *uncached*
//! checkpoint files — "for the uncached case, revive times are all
//! several seconds and are dominated by I/O latencies" — and the latency
//! model is what makes that distinction reproducible on a machine whose
//! real storage is orders of magnitude faster. The substitution is
//! documented in DESIGN.md.

use std::collections::HashMap;
use std::sync::Arc;

use dv_fault::{sites, FaultPlane, IoFault};
use dv_obs::Obs;
use dv_time::{Duration, Sleeper};
use parking_lot::{Mutex, MutexGuard};

use crate::error::{FsError, FsResult};

/// A disk read-latency model applied to cache misses.
#[derive(Clone, Copy, Debug)]
pub struct ReadLatency {
    /// Fixed per-read cost (seek + rotational delay).
    pub seek: Duration,
    /// Transfer cost per mebibyte.
    pub per_mib: Duration,
}

impl ReadLatency {
    /// A model of the paper's 2007-era SATA disk: ~8 ms seek and
    /// ~60 MiB/s sequential transfer.
    pub fn desktop_disk_2007() -> Self {
        ReadLatency {
            seek: Duration::from_millis(8),
            per_mib: Duration::from_micros(16_600),
        }
    }

    fn cost(&self, bytes: usize) -> Duration {
        let per_byte = self.per_mib.as_nanos() as f64 / (1024.0 * 1024.0);
        self.seek + Duration::from_nanos((bytes as f64 * per_byte) as u64)
    }
}

/// Cumulative blob store statistics.
#[derive(Clone, Copy, Debug, Default)]
pub struct BlobStats {
    /// Total bytes written.
    pub bytes_written: u64,
    /// Reads served from the cache.
    pub cache_hits: u64,
    /// Reads that went to the backing store.
    pub cache_misses: u64,
}

/// A named-blob store with a droppable read cache.
///
/// # Examples
///
/// ```
/// use dv_lsfs::BlobStore;
///
/// let mut store = BlobStore::in_memory();
/// store.put("ckpt.0001", vec![1, 2, 3]).unwrap();
/// assert_eq!(&*store.get("ckpt.0001").unwrap(), &[1, 2, 3]);
/// ```
pub struct BlobStore {
    backing: HashMap<String, Arc<Vec<u8>>>,
    cache: HashMap<String, Arc<Vec<u8>>>,
    latency: Option<ReadLatency>,
    stats: BlobStats,
    plane: FaultPlane,
    sleeper: Sleeper,
    obs: Obs,
}

impl BlobStore {
    /// Creates a store with no latency model (tests, fast paths).
    pub fn in_memory() -> Self {
        BlobStore {
            backing: HashMap::new(),
            cache: HashMap::new(),
            latency: None,
            stats: BlobStats::default(),
            plane: FaultPlane::disabled(),
            sleeper: Sleeper::Wall,
            obs: Obs::disabled(),
        }
    }

    /// Installs the observability handle (`lsfs.blob_*` metrics).
    pub fn set_obs(&mut self, obs: Obs) {
        self.plane.set_obs(obs.clone());
        self.obs = obs;
    }

    /// Chooses how modelled latency (the [`ReadLatency`] cost and
    /// [`IoFault::LatencySpike`] injections) is paid: really sleeping
    /// (the default, for wall-clock benchmarks like Figure 7) or
    /// advancing a simulation clock so deterministic tests never stall.
    pub fn set_sleeper(&mut self, sleeper: Sleeper) {
        self.sleeper = sleeper;
    }

    /// Installs the fault-injection plane (sites `lsfs.blob.put` and
    /// `lsfs.blob.get`).
    pub fn set_fault_plane(&mut self, plane: FaultPlane) {
        plane.set_obs(self.obs.clone());
        self.plane = plane;
    }

    /// Creates a store whose cache misses pay `latency`.
    pub fn with_latency(latency: ReadLatency) -> Self {
        BlobStore {
            latency: Some(latency),
            ..BlobStore::in_memory()
        }
    }

    /// Stores (or replaces) a blob; the new contents are cached.
    ///
    /// Injectable failures (site [`sites::LSFS_BLOB_PUT`]): `Enospc`
    /// persists nothing; `TornWrite`/`ShortRead` leave a truncated
    /// object behind and error; `Corrupt` stores the full length with
    /// one mangled byte and reports success.
    pub fn put(&mut self, name: &str, data: Vec<u8>) -> FsResult<()> {
        let _span = self.obs.span("lsfs", dv_obs::names::LSFS_BLOB_PUT);
        self.obs.incr(dv_obs::names::LSFS_BLOB_PUTS);
        self.obs
            .add(dv_obs::names::LSFS_BLOB_PUT_BYTES, data.len() as u64);
        let mut data = data;
        match self.plane.check(sites::LSFS_BLOB_PUT) {
            None | Some(IoFault::LatencySpike) => {}
            Some(IoFault::Enospc) => return Err(FsError::NoSpace),
            Some(IoFault::TornWrite) | Some(IoFault::ShortRead) => {
                let keep = self.plane.short_len(data.len());
                data.truncate(keep);
                let torn = Arc::new(data);
                self.stats.bytes_written += torn.len() as u64;
                self.backing.insert(name.to_string(), torn);
                self.cache.remove(name);
                return Err(FsError::Io);
            }
            Some(IoFault::Corrupt) => self.plane.mangle(&mut data),
        }
        let data = Arc::new(data);
        self.stats.bytes_written += data.len() as u64;
        self.backing.insert(name.to_string(), data.clone());
        self.cache.insert(name.to_string(), data);
        Ok(())
    }

    /// Retrieves a blob, filling the cache on a miss. A miss pays the
    /// configured read latency.
    ///
    /// Injectable failures (site [`sites::LSFS_BLOB_GET`]):
    /// `ShortRead`/`TornWrite` return a truncated copy and `Corrupt` a
    /// mangled copy — uncached in both cases, so the stored blob and
    /// the page cache stay intact; `Enospc` surfaces as a failed read
    /// (`None`).
    pub fn get(&mut self, name: &str) -> Option<Arc<Vec<u8>>> {
        self.obs.incr(dv_obs::names::LSFS_BLOB_GETS);
        let fault = self.plane.check(sites::LSFS_BLOB_GET);
        if let Some(IoFault::Enospc) = fault {
            return None;
        }
        let data = if let Some(data) = self.cache.get(name) {
            self.stats.cache_hits += 1;
            data.clone()
        } else {
            let data = self.backing.get(name)?.clone();
            self.stats.cache_misses += 1;
            if let Some(model) = self.latency {
                let mut cost = model.cost(data.len());
                if let Some(IoFault::LatencySpike) = fault {
                    cost = cost + cost;
                }
                self.sleeper.sleep(cost);
            }
            self.cache.insert(name.to_string(), data.clone());
            data
        };
        match fault {
            Some(IoFault::ShortRead) | Some(IoFault::TornWrite) => {
                let keep = self.plane.short_len(data.len());
                Some(Arc::new(data[..keep].to_vec()))
            }
            Some(IoFault::Corrupt) => {
                let mut copy = (*data).clone();
                self.plane.mangle(&mut copy);
                Some(Arc::new(copy))
            }
            _ => Some(data),
        }
    }

    /// Returns whether a blob exists (no latency, metadata only).
    pub fn contains(&self, name: &str) -> bool {
        self.backing.contains_key(name)
    }

    /// Removes a blob.
    pub fn delete(&mut self, name: &str) -> bool {
        self.cache.remove(name);
        self.backing.remove(name).is_some()
    }

    /// Drops the read cache: subsequent reads pay backing-store latency,
    /// the "uncached" condition of Figure 7.
    pub fn drop_caches(&mut self) {
        self.cache.clear();
    }

    /// Returns cumulative statistics.
    pub fn stats(&self) -> BlobStats {
        self.stats
    }

    /// Lists blob names in unspecified order.
    pub fn names(&self) -> Vec<String> {
        self.backing.keys().cloned().collect()
    }

    /// Serializes every blob (names sorted for determinism).
    pub fn export(&self) -> Vec<u8> {
        let mut names = self.names();
        names.sort();
        let mut out = Vec::new();
        out.extend_from_slice(&(names.len() as u64).to_le_bytes());
        for name in names {
            let data = &self.backing[&name];
            out.extend_from_slice(&(name.len() as u32).to_le_bytes());
            out.extend_from_slice(name.as_bytes());
            out.extend_from_slice(&(data.len() as u64).to_le_bytes());
            out.extend_from_slice(data);
        }
        out
    }

    /// Loads blobs from an [`BlobStore::export`] image into this store
    /// (replacing same-named blobs). Returns the number of blobs loaded,
    /// or `None` on malformed data.
    pub fn import(&mut self, mut data: &[u8]) -> Option<usize> {
        if data.len() < 8 {
            return None;
        }
        let count = u64::from_le_bytes(data[..8].try_into().ok()?);
        data = &data[8..];
        for _ in 0..count {
            if data.len() < 4 {
                return None;
            }
            let name_len = u32::from_le_bytes(data[..4].try_into().ok()?) as usize;
            data = &data[4..];
            if data.len() < name_len + 8 {
                return None;
            }
            let name = std::str::from_utf8(&data[..name_len]).ok()?.to_string();
            data = &data[name_len..];
            let blob_len = u64::from_le_bytes(data[..8].try_into().ok()?) as usize;
            data = &data[8..];
            if data.len() < blob_len {
                return None;
            }
            self.put(&name, data[..blob_len].to_vec()).ok()?;
            data = &data[blob_len..];
        }
        if !data.is_empty() {
            return None;
        }
        Some(count as usize)
    }
}

impl Default for BlobStore {
    fn default() -> Self {
        BlobStore::in_memory()
    }
}

/// A [`BlobStore`] behind `Arc<Mutex<..>>` so the deferred-commit worker
/// threads of the checkpoint engine can write blobs while the session
/// thread keeps recording. Cheap to clone; every clone addresses the
/// same store.
#[derive(Clone, Default)]
pub struct SharedBlobStore {
    inner: Arc<Mutex<BlobStore>>,
}

impl SharedBlobStore {
    /// Wraps an existing store.
    pub fn new(store: BlobStore) -> Self {
        SharedBlobStore {
            inner: Arc::new(Mutex::new(store)),
        }
    }

    /// A shared store with no latency model.
    pub fn in_memory() -> Self {
        SharedBlobStore::new(BlobStore::in_memory())
    }

    /// A shared store whose cache misses pay `latency`.
    pub fn with_latency(latency: ReadLatency) -> Self {
        SharedBlobStore::new(BlobStore::with_latency(latency))
    }

    /// Whether two handles address the same underlying store.
    pub fn ptr_eq(&self, other: &SharedBlobStore) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
    }

    /// Locks the store for a sequence of operations.
    pub fn lock(&self) -> MutexGuard<'_, BlobStore> {
        self.inner.lock()
    }

    /// Runs `f` with the store locked.
    pub fn with<R>(&self, f: impl FnOnce(&mut BlobStore) -> R) -> R {
        f(&mut self.inner.lock())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_round_trip() {
        let mut store = BlobStore::in_memory();
        store.put("a", b"hello".to_vec()).unwrap();
        assert_eq!(&**store.get("a").unwrap(), b"hello");
        assert!(store.get("missing").is_none());
    }

    #[test]
    fn cache_hit_miss_accounting() {
        let mut store = BlobStore::in_memory();
        store.put("a", vec![0; 100]).unwrap();
        store.get("a");
        assert_eq!(store.stats().cache_hits, 1);
        store.drop_caches();
        store.get("a");
        assert_eq!(store.stats().cache_misses, 1);
        store.get("a");
        assert_eq!(store.stats().cache_hits, 2, "miss refills the cache");
    }

    #[test]
    fn latency_model_slows_uncached_reads() {
        let mut store = BlobStore::with_latency(ReadLatency {
            seek: Duration::from_millis(5),
            per_mib: Duration::from_millis(1),
        });
        store.put("a", vec![0; 1024]).unwrap();
        let t0 = std::time::Instant::now();
        store.get("a");
        let cached = t0.elapsed();
        store.drop_caches();
        let t1 = std::time::Instant::now();
        store.get("a");
        let uncached = t1.elapsed();
        assert!(uncached >= std::time::Duration::from_millis(5));
        assert!(uncached > cached);
    }

    #[test]
    fn sim_sleeper_pays_latency_in_session_time() {
        use dv_time::{Clock, SimClock};
        let clock = SimClock::new();
        let mut store = BlobStore::with_latency(ReadLatency {
            seek: Duration::from_secs(30),
            per_mib: Duration::from_millis(1),
        });
        store.set_sleeper(Sleeper::Sim(clock.clone()));
        store.put("a", vec![0; 1024]).unwrap();
        store.drop_caches();
        let t0 = std::time::Instant::now();
        store.get("a");
        assert!(
            t0.elapsed() < std::time::Duration::from_secs(1),
            "sim sleeper must not stall the thread"
        );
        assert!(
            clock.now().as_nanos() >= Duration::from_secs(30).as_nanos(),
            "latency cost must land on the session clock"
        );
    }

    #[test]
    fn shared_store_is_usable_from_clones() {
        let shared = SharedBlobStore::in_memory();
        let other = shared.clone();
        shared.with(|s| s.put("a", vec![7; 3]).unwrap());
        assert_eq!(&*other.lock().get("a").unwrap(), &[7, 7, 7]);
    }

    #[test]
    fn delete_removes_blob() {
        let mut store = BlobStore::in_memory();
        store.put("a", vec![1]).unwrap();
        assert!(store.delete("a"));
        assert!(!store.contains("a"));
        assert!(!store.delete("a"));
    }

    #[test]
    fn export_import_round_trip() {
        let mut store = BlobStore::in_memory();
        store.put("ckpt-0001", vec![1, 2, 3]).unwrap();
        store.put("s1-0001", vec![9; 100]).unwrap();
        let image = store.export();
        let mut restored = BlobStore::in_memory();
        assert_eq!(restored.import(&image), Some(2));
        assert_eq!(&*restored.get("ckpt-0001").unwrap(), &[1, 2, 3]);
        assert_eq!(restored.get("s1-0001").unwrap().len(), 100);
        assert!(restored.import(&image[..image.len() - 1]).is_none());
    }

    #[test]
    fn bytes_written_accumulates() {
        let mut store = BlobStore::in_memory();
        store.put("a", vec![0; 10]).unwrap();
        store.put("b", vec![0; 30]).unwrap();
        store.put("a", vec![0; 5]).unwrap();
        assert_eq!(store.stats().bytes_written, 45);
    }
}
