//! Command queueing and merging.
//!
//! THINC queues display commands and merges them "so that only the result
//! of the last update is logged" (§4.1). DejaView uses this to let users
//! trade recording frequency against storage: commands accumulate in a
//! [`CommandQueue`] and, when the queue is flushed at the configured
//! recording frequency, updates that a later command completely overwrote
//! are discarded.
//!
//! Dropping a queued command is only sound if nothing that remains in the
//! queue *reads* the pixels it would have produced — a later `CopyArea`
//! may source from the overwritten area. The queue tracks read
//! dependencies and keeps such commands.

use dv_time::Timestamp;

use crate::command::DisplayCommand;
use crate::rect::Rect;

/// A timestamped command held in the queue.
#[derive(Clone, PartialEq, Debug)]
pub struct QueuedCommand {
    /// Session time at which the driver produced the command.
    pub time: Timestamp,
    /// The command.
    pub command: DisplayCommand,
}

/// A merging command queue.
///
/// # Examples
///
/// ```
/// use dv_display::{CommandQueue, DisplayCommand, Rect};
/// use dv_time::Timestamp;
///
/// let mut queue = CommandQueue::new();
/// let rect = Rect::new(0, 0, 10, 10);
/// queue.push(Timestamp::from_millis(1), DisplayCommand::SolidFill { rect, color: 1 });
/// queue.push(Timestamp::from_millis(2), DisplayCommand::SolidFill { rect, color: 2 });
/// // The first fill was completely overwritten and is merged away.
/// assert_eq!(queue.len(), 1);
/// ```
#[derive(Clone, Debug, Default)]
pub struct CommandQueue {
    entries: Vec<QueuedCommand>,
    merged_away: u64,
}

impl CommandQueue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        CommandQueue::default()
    }

    /// Returns the number of queued commands.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Returns how many commands merging has discarded over the queue's
    /// lifetime.
    pub fn merged_away(&self) -> u64 {
        self.merged_away
    }

    /// Appends a command, discarding queued commands it makes irrelevant.
    ///
    /// A queued command is discarded when the new command's rectangle
    /// fully covers it and no command between the two reads pixels from
    /// the covered area.
    pub fn push(&mut self, time: Timestamp, command: DisplayCommand) {
        let cover = command.rect();
        if !cover.is_empty() && command.is_opaque() {
            // Walk backwards accumulating the read-set of commands that
            // stay; a command may be dropped only if nothing later reads
            // what it wrote.
            let mut reads: Vec<Rect> = match command.reads() {
                Some(r) => vec![r],
                None => Vec::new(),
            };
            let mut keep = Vec::with_capacity(self.entries.len());
            for entry in self.entries.drain(..).rev() {
                let target = entry.command.rect();
                let read_conflict = reads.iter().any(|r| r.overlaps(&target));
                if cover.contains(&target) && !read_conflict {
                    self.merged_away += 1;
                    continue;
                }
                if let Some(r) = entry.command.reads() {
                    reads.push(r);
                }
                keep.push(entry);
            }
            keep.reverse();
            self.entries = keep;
        }
        self.entries.push(QueuedCommand { time, command });
    }

    /// Removes and returns all queued commands in order.
    pub fn flush(&mut self) -> Vec<QueuedCommand> {
        std::mem::take(&mut self.entries)
    }

    /// Returns the queued commands without removing them.
    pub fn peek(&self) -> &[QueuedCommand] {
        &self.entries
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn fill(rect: Rect, color: u32) -> DisplayCommand {
        DisplayCommand::SolidFill { rect, color }
    }

    fn ts(ms: u64) -> Timestamp {
        Timestamp::from_millis(ms)
    }

    #[test]
    fn overwritten_commands_merge_away() {
        let mut q = CommandQueue::new();
        q.push(ts(1), fill(Rect::new(0, 0, 4, 4), 1));
        q.push(ts(2), fill(Rect::new(1, 1, 2, 2), 2));
        q.push(ts(3), fill(Rect::new(0, 0, 8, 8), 3));
        assert_eq!(q.len(), 1);
        assert_eq!(q.merged_away(), 2);
        assert_eq!(q.peek()[0].time, ts(3));
    }

    #[test]
    fn partial_overlap_is_kept() {
        let mut q = CommandQueue::new();
        q.push(ts(1), fill(Rect::new(0, 0, 4, 4), 1));
        q.push(ts(2), fill(Rect::new(2, 2, 4, 4), 2));
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn copy_source_blocks_merge() {
        let mut q = CommandQueue::new();
        q.push(ts(1), fill(Rect::new(0, 0, 4, 4), 1));
        // This copy reads the filled area...
        q.push(
            ts(2),
            DisplayCommand::CopyArea {
                src_x: 0,
                src_y: 0,
                rect: Rect::new(10, 10, 4, 4),
            },
        );
        // ...so a later fill over the same area must not delete the
        // original fill, whose output the copy depends on.
        q.push(ts(3), fill(Rect::new(0, 0, 4, 4), 2));
        assert_eq!(q.len(), 3);
    }

    #[test]
    fn copy_destination_can_merge() {
        let mut q = CommandQueue::new();
        q.push(
            ts(1),
            DisplayCommand::CopyArea {
                src_x: 20,
                src_y: 20,
                rect: Rect::new(0, 0, 4, 4),
            },
        );
        q.push(ts(2), fill(Rect::new(0, 0, 4, 4), 1));
        assert_eq!(q.len(), 1, "copy output fully overwritten");
    }

    #[test]
    fn copy_never_merges_earlier_commands_away() {
        // A copy's effective write area shrinks when its source is
        // clamped at the screen edge, so it is not opaque: earlier
        // commands under its destination must survive.
        let mut q = CommandQueue::new();
        q.push(ts(1), fill(Rect::new(0, 0, 4, 4), 1));
        q.push(
            ts(2),
            DisplayCommand::CopyArea {
                src_x: 100,
                src_y: 100,
                rect: Rect::new(0, 0, 8, 8),
            },
        );
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn flush_drains_in_order() {
        let mut q = CommandQueue::new();
        q.push(ts(1), fill(Rect::new(0, 0, 1, 1), 1));
        q.push(ts(2), fill(Rect::new(5, 5, 1, 1), 2));
        let drained = q.flush();
        assert_eq!(drained.len(), 2);
        assert!(drained[0].time < drained[1].time);
        assert!(q.is_empty());
    }

    #[test]
    fn merge_preserves_replay_result() {
        use crate::framebuffer::Framebuffer;
        // Applying the merged stream must produce the same screen as the
        // unmerged stream.
        let cmds = vec![
            fill(Rect::new(0, 0, 8, 8), 1),
            fill(Rect::new(2, 2, 2, 2), 2),
            DisplayCommand::Raw {
                rect: Rect::new(1, 1, 2, 2),
                pixels: Arc::new(vec![7, 8, 9, 10]),
            },
            DisplayCommand::CopyArea {
                src_x: 1,
                src_y: 1,
                rect: Rect::new(8, 8, 2, 2),
            },
            fill(Rect::new(0, 0, 8, 8), 3),
        ];
        let mut direct = Framebuffer::new(16, 16);
        for c in &cmds {
            direct.apply(c);
        }
        let mut q = CommandQueue::new();
        for (i, c) in cmds.iter().enumerate() {
            q.push(ts(i as u64), c.clone());
        }
        let mut merged = Framebuffer::new(16, 16);
        for entry in q.flush() {
            merged.apply(&entry.command);
        }
        assert_eq!(direct, merged);
    }
}
