//! Sleeping that respects the session clock.
//!
//! Storage models (the [`crate::SimClock`]-driven tests and the
//! `BlobStore` read-latency model) need to "pay" a latency cost. Under a
//! wall clock that is a real `std::thread::sleep`; under a simulated
//! clock the cost should advance session time instantly instead of
//! stalling the test run. [`Sleeper`] is that choice, made once where
//! the component is constructed instead of at every sleep site.

use crate::{Duration, SimClock};

/// How a component pays a modelled latency cost.
#[derive(Clone, Debug, Default)]
pub enum Sleeper {
    /// Really sleep on the OS clock (interactive runs, wall-clock
    /// benchmarks such as the Figure 7 revive-latency measurement).
    #[default]
    Wall,
    /// Advance a simulation clock by the cost and return immediately
    /// (deterministic tests; no wall-clock stall).
    Sim(SimClock),
}

impl Sleeper {
    /// Pays `cost`: blocks the calling thread (wall) or advances the
    /// simulated session clock (sim).
    pub fn sleep(&self, cost: Duration) {
        match self {
            Sleeper::Wall => std::thread::sleep(cost.to_std()),
            Sleeper::Sim(clock) => {
                clock.advance(cost);
            }
        }
    }

    /// Whether this sleeper stalls the calling thread for real.
    pub fn is_wall(&self) -> bool {
        matches!(self, Sleeper::Wall)
    }

    /// Reads the timebase this sleeper advances, in nanoseconds:
    /// session time for [`Sleeper::Sim`], wall time since a fixed
    /// process origin for [`Sleeper::Wall`]. Only *differences* between
    /// two readings of the same sleeper are meaningful. This lets code
    /// that measures durations around a sleep (the commit pipeline's
    /// enqueue-to-resolve latency) stay deterministic under a sim
    /// clock instead of reaching for `std::time::Instant` directly.
    pub fn now_nanos(&self) -> u64 {
        match self {
            Sleeper::Wall => wall_origin().elapsed().as_nanos() as u64,
            Sleeper::Sim(clock) => {
                use crate::Clock;
                clock.now().as_nanos()
            }
        }
    }
}

/// Process-wide origin for [`Sleeper::Wall`] readings.
fn wall_origin() -> &'static std::time::Instant {
    static ORIGIN: std::sync::OnceLock<std::time::Instant> = std::sync::OnceLock::new();
    ORIGIN.get_or_init(std::time::Instant::now)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Clock, Timestamp};

    #[test]
    fn sim_sleeper_advances_clock_without_stalling() {
        let clock = SimClock::new();
        let sleeper = Sleeper::Sim(clock.clone());
        let started = std::time::Instant::now();
        sleeper.sleep(Duration::from_secs(3600));
        assert!(started.elapsed() < std::time::Duration::from_secs(1));
        assert_eq!(clock.now(), Timestamp::from_secs(3600));
        assert!(!sleeper.is_wall());
    }

    #[test]
    fn wall_sleeper_really_sleeps() {
        let sleeper = Sleeper::Wall;
        let started = std::time::Instant::now();
        sleeper.sleep(Duration::from_millis(5));
        assert!(started.elapsed() >= std::time::Duration::from_millis(5));
        assert!(sleeper.is_wall());
    }

    #[test]
    fn sim_sleeper_now_reads_session_time() {
        let clock = SimClock::new();
        let sleeper = Sleeper::Sim(clock.clone());
        let before = sleeper.now_nanos();
        sleeper.sleep(Duration::from_millis(250));
        assert_eq!(sleeper.now_nanos() - before, 250_000_000);
    }

    #[test]
    fn wall_sleeper_now_advances_monotonically() {
        let sleeper = Sleeper::Wall;
        let a = sleeper.now_nanos();
        sleeper.sleep(Duration::from_millis(2));
        let b = sleeper.now_nanos();
        assert!(b > a);
    }
}
