//! Private virtual namespaces.
//!
//! Zap-style namespaces are what make revive possible (§3): "revived
//! sessions can use the same OS resource names as used before being
//! checkpointed, even if they are mapped to different underlying OS
//! resources upon revival", and multiple revived sessions "can run
//! concurrently and use the same OS resource names inside their
//! respective namespaces, yet not conflict".

use std::collections::BTreeMap;

use crate::process::Vpid;

/// The private namespace of one virtual execution environment.
#[derive(Clone, Debug)]
pub struct Namespace {
    vpid_to_host: BTreeMap<Vpid, u64>,
    next_vpid: u64,
    /// Virtual hostname (UTS namespace).
    pub hostname: String,
    /// System V IPC keys private to the session.
    pub ipc_keys: BTreeMap<u32, Vec<u8>>,
}

impl Namespace {
    /// Creates an empty namespace.
    pub fn new(hostname: &str) -> Self {
        Namespace {
            vpid_to_host: BTreeMap::new(),
            next_vpid: 1,
            hostname: hostname.to_string(),
            ipc_keys: BTreeMap::new(),
        }
    }

    /// Allocates the next virtual PID and binds it to a host PID.
    pub fn allocate_vpid(&mut self, host_pid: u64) -> Vpid {
        let vpid = Vpid(self.next_vpid);
        self.next_vpid += 1;
        self.vpid_to_host.insert(vpid, host_pid);
        vpid
    }

    /// Rebinds an existing virtual PID to a new host PID — the revive
    /// path, where the same virtual names map to fresh host resources.
    pub fn bind_vpid(&mut self, vpid: Vpid, host_pid: u64) {
        self.next_vpid = self.next_vpid.max(vpid.0 + 1);
        self.vpid_to_host.insert(vpid, host_pid);
    }

    /// Translates a virtual PID to its current host PID.
    pub fn host_pid(&self, vpid: Vpid) -> Option<u64> {
        self.vpid_to_host.get(&vpid).copied()
    }

    /// Removes a virtual PID binding.
    pub fn release_vpid(&mut self, vpid: Vpid) {
        self.vpid_to_host.remove(&vpid);
    }

    /// Returns all virtual PIDs in order.
    pub fn vpids(&self) -> Vec<Vpid> {
        self.vpid_to_host.keys().copied().collect()
    }

    /// Returns the number of bound virtual PIDs.
    pub fn len(&self) -> usize {
        self.vpid_to_host.len()
    }

    /// Returns whether the namespace has no processes.
    pub fn is_empty(&self) -> bool {
        self.vpid_to_host.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vpids_allocate_sequentially() {
        let mut ns = Namespace::new("desktop");
        let a = ns.allocate_vpid(1001);
        let b = ns.allocate_vpid(1002);
        assert_eq!((a, b), (Vpid(1), Vpid(2)));
        assert_eq!(ns.host_pid(a), Some(1001));
    }

    #[test]
    fn rebinding_keeps_virtual_names_stable() {
        let mut ns = Namespace::new("desktop");
        let v = ns.allocate_vpid(500);
        // After revive, the same vpid maps to a fresh host pid.
        ns.bind_vpid(v, 9000);
        assert_eq!(ns.host_pid(v), Some(9000));
        // And allocation continues above restored names.
        let next = ns.allocate_vpid(9001);
        assert_eq!(next, Vpid(2));
    }

    #[test]
    fn two_namespaces_reuse_the_same_vpids() {
        let mut a = Namespace::new("a");
        let mut b = Namespace::new("b");
        let va = a.allocate_vpid(100);
        let vb = b.allocate_vpid(200);
        assert_eq!(va, vb, "same virtual name");
        assert_ne!(a.host_pid(va), b.host_pid(vb), "different host resources");
    }

    #[test]
    fn release_frees_binding() {
        let mut ns = Namespace::new("x");
        let v = ns.allocate_vpid(1);
        ns.release_vpid(v);
        assert_eq!(ns.host_pid(v), None);
        assert!(ns.is_empty());
    }
}
