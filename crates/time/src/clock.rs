//! Time sources.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::{Duration, Timestamp};

/// A source of session time.
///
/// All DejaView components read time through this trait so that tests and
/// benchmarks can substitute a deterministic [`SimClock`].
pub trait Clock: Send + Sync {
    /// Returns the current session time.
    fn now(&self) -> Timestamp;
}

/// A shared, reference-counted clock handle.
pub type SharedClock = Arc<dyn Clock>;

/// A manually advanced simulation clock.
///
/// Cloning shares the underlying counter, so a workload driver can advance
/// time while recorders observe it.
///
/// # Examples
///
/// ```
/// use dv_time::{Clock, Duration, SimClock, Timestamp};
///
/// let clock = SimClock::new();
/// clock.advance(Duration::from_millis(40));
/// assert_eq!(clock.now(), Timestamp::from_millis(40));
/// ```
#[derive(Clone, Debug, Default)]
pub struct SimClock {
    nanos: Arc<AtomicU64>,
}

impl SimClock {
    /// Creates a clock starting at [`Timestamp::ZERO`].
    pub fn new() -> Self {
        SimClock::default()
    }

    /// Creates a clock starting at `start`.
    pub fn starting_at(start: Timestamp) -> Self {
        let clock = SimClock::new();
        clock.nanos.store(start.as_nanos(), Ordering::SeqCst);
        clock
    }

    /// Advances the clock by `d` and returns the new time.
    pub fn advance(&self, d: Duration) -> Timestamp {
        let now = self.nanos.fetch_add(d.as_nanos(), Ordering::SeqCst) + d.as_nanos();
        Timestamp::from_nanos(now)
    }

    /// Sets the clock to `t`.
    ///
    /// # Panics
    ///
    /// Panics if `t` is earlier than the current time; session time never
    /// moves backwards.
    pub fn set(&self, t: Timestamp) {
        let cur = self.nanos.load(Ordering::SeqCst);
        assert!(
            t.as_nanos() >= cur,
            "session time cannot move backwards ({t:?} < {:?})",
            Timestamp::from_nanos(cur)
        );
        self.nanos.store(t.as_nanos(), Ordering::SeqCst);
    }

    /// Returns a shareable trait-object handle to this clock.
    pub fn shared(&self) -> SharedClock {
        Arc::new(self.clone())
    }
}

impl Clock for SimClock {
    fn now(&self) -> Timestamp {
        Timestamp::from_nanos(self.nanos.load(Ordering::SeqCst))
    }
}

/// A wall clock anchored at its creation instant.
///
/// Used when running DejaView interactively (the examples) rather than
/// under a deterministic workload driver.
#[derive(Clone, Debug)]
pub struct WallClock {
    origin: std::time::Instant,
}

impl WallClock {
    /// Creates a wall clock whose session time starts now.
    pub fn new() -> Self {
        WallClock {
            origin: std::time::Instant::now(),
        }
    }
}

impl Default for WallClock {
    fn default() -> Self {
        WallClock::new()
    }
}

impl Clock for WallClock {
    fn now(&self) -> Timestamp {
        Timestamp::from_nanos(self.origin.elapsed().as_nanos() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sim_clock_starts_at_zero_and_advances() {
        let clock = SimClock::new();
        assert_eq!(clock.now(), Timestamp::ZERO);
        assert_eq!(
            clock.advance(Duration::from_secs(2)),
            Timestamp::from_secs(2)
        );
        assert_eq!(clock.now(), Timestamp::from_secs(2));
    }

    #[test]
    fn sim_clock_clones_share_state() {
        let a = SimClock::new();
        let b = a.clone();
        a.advance(Duration::from_millis(7));
        assert_eq!(b.now(), Timestamp::from_millis(7));
    }

    #[test]
    fn sim_clock_set_moves_forward() {
        let clock = SimClock::new();
        clock.set(Timestamp::from_secs(5));
        assert_eq!(clock.now(), Timestamp::from_secs(5));
    }

    #[test]
    #[should_panic(expected = "backwards")]
    fn sim_clock_rejects_backwards_set() {
        let clock = SimClock::starting_at(Timestamp::from_secs(10));
        clock.set(Timestamp::from_secs(9));
    }

    #[test]
    fn wall_clock_is_monotonic() {
        let clock = WallClock::new();
        let a = clock.now();
        let b = clock.now();
        assert!(b >= a);
    }

    #[test]
    fn shared_handle_observes_advances() {
        let clock = SimClock::new();
        let shared = clock.shared();
        clock.advance(Duration::from_secs(1));
        assert_eq!(shared.now(), Timestamp::from_secs(1));
    }
}
