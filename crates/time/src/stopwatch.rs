//! Wall-clock phase attribution for checkpoint latency (Figure 3).

use std::time::Instant;

use crate::Duration;

/// A stopwatch that attributes elapsed wall-clock time to named phases.
///
/// The checkpoint engine uses one `PhaseTimer` per checkpoint to decompose
/// total latency into the five phases the paper reports: pre-checkpoint,
/// quiesce, capture, file system snapshot, and writeback.
///
/// # Examples
///
/// ```
/// use dv_time::PhaseTimer;
///
/// let mut timer = PhaseTimer::new();
/// timer.enter("capture");
/// // ... do the capture ...
/// timer.enter("writeback");
/// // ... write data out ...
/// let breakdown = timer.finish();
/// assert_eq!(breakdown.phases().len(), 2);
/// ```
#[derive(Debug)]
pub struct PhaseTimer {
    current: Option<(&'static str, Instant)>,
    phases: Vec<(&'static str, Duration)>,
}

impl PhaseTimer {
    /// Creates an idle timer with no active phase.
    pub fn new() -> Self {
        PhaseTimer {
            current: None,
            phases: Vec::new(),
        }
    }

    /// Ends the current phase (if any) and begins `name`.
    pub fn enter(&mut self, name: &'static str) {
        self.close_current();
        self.current = Some((name, Instant::now()));
    }

    /// Ends the current phase without starting another.
    pub fn pause(&mut self) {
        self.close_current();
    }

    /// Ends the current phase and returns the recorded breakdown.
    pub fn finish(mut self) -> PhaseBreakdown {
        self.close_current();
        PhaseBreakdown {
            phases: self.phases,
        }
    }

    fn close_current(&mut self) {
        if let Some((name, start)) = self.current.take() {
            let elapsed = Duration::from_nanos(start.elapsed().as_nanos() as u64);
            // Merge repeated entries of the same phase so interleaved
            // work (e.g. capture resumed after a fault) accumulates.
            if let Some(entry) = self.phases.iter_mut().find(|(n, _)| *n == name) {
                entry.1 += elapsed;
            } else {
                self.phases.push((name, elapsed));
            }
        }
    }
}

impl Default for PhaseTimer {
    fn default() -> Self {
        PhaseTimer::new()
    }
}

/// The result of a [`PhaseTimer`]: per-phase wall-clock durations in the
/// order the phases were first entered.
#[derive(Clone, Debug, Default)]
pub struct PhaseBreakdown {
    phases: Vec<(&'static str, Duration)>,
}

impl PhaseBreakdown {
    /// Returns the recorded `(phase, duration)` pairs.
    pub fn phases(&self) -> &[(&'static str, Duration)] {
        &self.phases
    }

    /// Returns the duration recorded for `name`, or zero if absent.
    pub fn get(&self, name: &str) -> Duration {
        self.phases
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, d)| *d)
            .unwrap_or(Duration::ZERO)
    }

    /// Returns the sum over all phases.
    pub fn total(&self) -> Duration {
        self.phases
            .iter()
            .fold(Duration::ZERO, |acc, (_, d)| acc + *d)
    }

    /// Returns the sum over the named subset of phases; used to compute
    /// "downtime" (quiesce + capture + fs snapshot) from a full breakdown.
    pub fn subset_total(&self, names: &[&str]) -> Duration {
        names
            .iter()
            .fold(Duration::ZERO, |acc, n| acc + self.get(n))
    }

    /// Merges another breakdown into this one, phase by phase; used to
    /// average many checkpoints.
    pub fn accumulate(&mut self, other: &PhaseBreakdown) {
        for (name, d) in &other.phases {
            if let Some(entry) = self.phases.iter_mut().find(|(n, _)| n == name) {
                entry.1 += *d;
            } else {
                self.phases.push((name, *d));
            }
        }
    }

    /// Divides every phase by `count`, turning an accumulated breakdown
    /// into a mean.
    ///
    /// # Panics
    ///
    /// Panics if `count` is zero.
    pub fn divide(&mut self, count: u64) {
        assert!(count > 0, "cannot average over zero checkpoints");
        for (_, d) in &mut self.phases {
            *d = Duration::from_nanos(d.as_nanos() / count);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phases_record_in_entry_order() {
        let mut timer = PhaseTimer::new();
        timer.enter("a");
        timer.enter("b");
        timer.enter("c");
        let breakdown = timer.finish();
        let names: Vec<_> = breakdown.phases().iter().map(|(n, _)| *n).collect();
        assert_eq!(names, ["a", "b", "c"]);
    }

    #[test]
    fn repeated_phase_accumulates() {
        let mut timer = PhaseTimer::new();
        timer.enter("x");
        timer.enter("y");
        timer.enter("x");
        let breakdown = timer.finish();
        assert_eq!(breakdown.phases().len(), 2);
        assert!(breakdown.get("x") >= breakdown.get("y") || breakdown.get("x") > Duration::ZERO);
    }

    #[test]
    fn total_is_sum_of_phases() {
        let mut timer = PhaseTimer::new();
        timer.enter("a");
        std::thread::sleep(std::time::Duration::from_millis(1));
        timer.enter("b");
        let breakdown = timer.finish();
        assert_eq!(breakdown.total(), breakdown.get("a") + breakdown.get("b"));
        assert!(breakdown.get("a") >= Duration::from_millis(1));
    }

    #[test]
    fn subset_total_selects_named_phases() {
        let mut acc = PhaseBreakdown::default();
        let mut timer = PhaseTimer::new();
        timer.enter("quiesce");
        timer.enter("capture");
        timer.enter("writeback");
        acc.accumulate(&timer.finish());
        let downtime = acc.subset_total(&["quiesce", "capture"]);
        assert_eq!(downtime, acc.get("quiesce") + acc.get("capture"));
        assert!(acc.total() >= downtime);
    }

    #[test]
    fn accumulate_and_divide_average() {
        let mut acc = PhaseBreakdown::default();
        for _ in 0..4 {
            let mut timer = PhaseTimer::new();
            timer.enter("p");
            timer.pause();
            acc.accumulate(&timer.finish());
        }
        let before = acc.get("p");
        acc.divide(4);
        assert_eq!(acc.get("p").as_nanos(), before.as_nanos() / 4);
    }

    #[test]
    fn missing_phase_reads_zero() {
        let breakdown = PhaseTimer::new().finish();
        assert_eq!(breakdown.get("nope"), Duration::ZERO);
        assert_eq!(breakdown.total(), Duration::ZERO);
    }
}
