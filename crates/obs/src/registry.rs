//! The lock-cheap metrics registry.
//!
//! Metrics are keyed by `&'static str` names (convention:
//! `"<stream>.<metric>"`, e.g. `"checkpoint.stored_bytes"`). The hot
//! path for an already-registered metric is a shared read lock plus one
//! atomic operation; the write lock is taken only on first use of a
//! name. Counters are monotonic, gauges are levels (queue depths), and
//! histograms are fixed-bucket latency distributions whose snapshots
//! merge associatively, so per-worker or per-run distributions can be
//! combined after the fact.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::RwLock;

/// Number of histogram buckets. The last bucket is unbounded.
pub const BUCKETS: usize = 16;

/// Inclusive upper bounds of the histogram buckets, in nanoseconds:
/// powers of four from 250ns up, covering sub-microsecond metric
/// updates through multi-minute stalls. A recorded value lands in the
/// first bucket whose bound is `>=` the value.
pub const BUCKET_BOUNDS_NANOS: [u64; BUCKETS] = [
    250,
    1_000,
    4_000,
    16_000,
    64_000,
    256_000,
    1_024_000,
    4_096_000,
    16_384_000,
    65_536_000,
    262_144_000,
    1_048_576_000,
    4_194_304_000,
    16_777_216_000,
    67_108_864_000,
    u64::MAX,
];

/// A fixed-bucket latency histogram with atomic updates.
#[derive(Debug, Default)]
pub struct Histogram {
    counts: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Histogram {
    fn new() -> Self {
        let h = Histogram::default();
        h.min.store(u64::MAX, Ordering::Relaxed);
        h
    }

    /// Records one observation of `nanos`.
    pub fn observe(&self, nanos: u64) {
        let bucket = BUCKET_BOUNDS_NANOS
            .iter()
            .position(|&b| nanos <= b)
            .unwrap_or(BUCKETS - 1);
        self.counts[bucket].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(nanos, Ordering::Relaxed);
        self.min.fetch_min(nanos, Ordering::Relaxed);
        self.max.fetch_max(nanos, Ordering::Relaxed);
    }

    /// Takes a consistent-enough copy for reporting. (Individual fields
    /// are read independently; exactness under concurrent writers is
    /// not required for profiling output.)
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut counts = [0u64; BUCKETS];
        for (dst, src) in counts.iter_mut().zip(self.counts.iter()) {
            *dst = src.load(Ordering::Relaxed);
        }
        HistogramSnapshot {
            counts,
            count: self.count.load(Ordering::Relaxed),
            sum_nanos: self.sum.load(Ordering::Relaxed),
            min_nanos: self.min.load(Ordering::Relaxed),
            max_nanos: self.max.load(Ordering::Relaxed),
        }
    }
}

/// An immutable, mergeable copy of a [`Histogram`].
///
/// `merge` is associative and commutative, so snapshots taken from
/// different workers (or different runs) can be folded in any order.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct HistogramSnapshot {
    /// Per-bucket observation counts (bounds in
    /// [`BUCKET_BOUNDS_NANOS`]).
    pub counts: [u64; BUCKETS],
    /// Total observations.
    pub count: u64,
    /// Sum of all observed values, in nanoseconds.
    pub sum_nanos: u64,
    /// Smallest observed value (`u64::MAX` when empty).
    pub min_nanos: u64,
    /// Largest observed value (0 when empty).
    pub max_nanos: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot {
            counts: [0; BUCKETS],
            count: 0,
            sum_nanos: 0,
            min_nanos: u64::MAX,
            max_nanos: 0,
        }
    }
}

impl HistogramSnapshot {
    /// Combines two snapshots. Saturating adds keep the operation
    /// associative and commutative even at the extremes.
    pub fn merge(&self, other: &HistogramSnapshot) -> HistogramSnapshot {
        let mut counts = [0u64; BUCKETS];
        for (i, dst) in counts.iter_mut().enumerate() {
            *dst = self.counts[i].saturating_add(other.counts[i]);
        }
        HistogramSnapshot {
            counts,
            count: self.count.saturating_add(other.count),
            sum_nanos: self.sum_nanos.saturating_add(other.sum_nanos),
            min_nanos: self.min_nanos.min(other.min_nanos),
            max_nanos: self.max_nanos.max(other.max_nanos),
        }
    }

    /// Mean observation in nanoseconds (0 when empty).
    pub fn mean_nanos(&self) -> u64 {
        self.sum_nanos.checked_div(self.count).unwrap_or(0)
    }
}

/// The metric registry: three name-keyed maps of atomic cells.
#[derive(Debug, Default)]
pub struct Registry {
    counters: RwLock<BTreeMap<&'static str, Arc<AtomicU64>>>,
    gauges: RwLock<BTreeMap<&'static str, Arc<AtomicU64>>>,
    histograms: RwLock<BTreeMap<&'static str, Arc<Histogram>>>,
}

fn cell(
    map: &RwLock<BTreeMap<&'static str, Arc<AtomicU64>>>,
    name: &'static str,
) -> Arc<AtomicU64> {
    if let Some(c) = map.read().get(name) {
        return c.clone();
    }
    map.write().entry(name).or_default().clone()
}

impl Registry {
    /// Adds `v` to the counter `name`, registering it on first use.
    pub fn counter_add(&self, name: &'static str, v: u64) {
        cell(&self.counters, name).fetch_add(v, Ordering::Relaxed);
    }

    /// Overwrites the counter `name` (used to resynchronize after an
    /// archive restore replaces component state wholesale).
    pub fn counter_set(&self, name: &'static str, v: u64) {
        cell(&self.counters, name).store(v, Ordering::Relaxed);
    }

    /// Current value of counter `name` (0 if never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .read()
            .get(name)
            .map(|c| c.load(Ordering::Relaxed))
            .unwrap_or(0)
    }

    /// Sets the gauge `name` to `v`.
    pub fn gauge_set(&self, name: &'static str, v: u64) {
        cell(&self.gauges, name).store(v, Ordering::Relaxed);
    }

    /// Adds `v` to the gauge `name`.
    pub fn gauge_add(&self, name: &'static str, v: u64) {
        cell(&self.gauges, name).fetch_add(v, Ordering::Relaxed);
    }

    /// Subtracts `v` from the gauge `name`, saturating at zero.
    pub fn gauge_sub(&self, name: &'static str, v: u64) {
        let g = cell(&self.gauges, name);
        let mut cur = g.load(Ordering::Relaxed);
        loop {
            let next = cur.saturating_sub(v);
            match g.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed) {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Current value of gauge `name` (0 if never touched).
    pub fn gauge(&self, name: &str) -> u64 {
        self.gauges
            .read()
            .get(name)
            .map(|c| c.load(Ordering::Relaxed))
            .unwrap_or(0)
    }

    /// Records `nanos` into the histogram `name`.
    pub fn observe(&self, name: &'static str, nanos: u64) {
        if let Some(h) = self.histograms.read().get(name) {
            h.observe(nanos);
            return;
        }
        self.histograms
            .write()
            .entry(name)
            .or_insert_with(|| Arc::new(Histogram::new()))
            .observe(nanos);
    }

    /// Snapshot of histogram `name`, if it exists.
    pub fn histogram(&self, name: &str) -> Option<HistogramSnapshot> {
        self.histograms.read().get(name).map(|h| h.snapshot())
    }

    /// Copies every counter into an ordered map.
    pub fn counters(&self) -> BTreeMap<String, u64> {
        self.counters
            .read()
            .iter()
            .map(|(k, v)| (k.to_string(), v.load(Ordering::Relaxed)))
            .collect()
    }

    /// Copies every gauge into an ordered map.
    pub fn gauges(&self) -> BTreeMap<String, u64> {
        self.gauges
            .read()
            .iter()
            .map(|(k, v)| (k.to_string(), v.load(Ordering::Relaxed)))
            .collect()
    }

    /// Snapshots every histogram into an ordered map.
    pub fn histograms(&self) -> BTreeMap<String, HistogramSnapshot> {
        self.histograms
            .read()
            .iter()
            .map(|(k, v)| (k.to_string(), v.snapshot()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_read_back() {
        let r = Registry::default();
        r.counter_add("a.x", 2);
        r.counter_add("a.x", 3);
        assert_eq!(r.counter("a.x"), 5);
        assert_eq!(r.counter("a.missing"), 0);
        r.counter_set("a.x", 1);
        assert_eq!(r.counter("a.x"), 1);
    }

    #[test]
    fn gauges_move_both_ways() {
        let r = Registry::default();
        r.gauge_set("q.depth", 4);
        r.gauge_sub("q.depth", 1);
        r.gauge_add("q.depth", 2);
        assert_eq!(r.gauge("q.depth"), 5);
        r.gauge_sub("q.depth", 100);
        assert_eq!(r.gauge("q.depth"), 0, "saturates at zero");
    }

    #[test]
    fn histogram_buckets_and_stats() {
        let r = Registry::default();
        r.observe("lat", 100); // bucket 0 (<= 250)
        r.observe("lat", 500_000); // bucket 6 (<= 1_024_000)
        r.observe("lat", u64::MAX); // overflow bucket
        let h = r.histogram("lat").unwrap();
        assert_eq!(h.count, 3);
        assert_eq!(h.counts[0], 1);
        assert_eq!(h.counts[6], 1);
        assert_eq!(h.counts[BUCKETS - 1], 1);
        assert_eq!(h.min_nanos, 100);
        assert_eq!(h.max_nanos, u64::MAX);
        assert!(r.histogram("nope").is_none());
    }

    #[test]
    fn snapshot_merge_combines_extremes() {
        let r = Registry::default();
        r.observe("a", 10);
        r.observe("b", 1_000_000);
        let a = r.histogram("a").unwrap();
        let b = r.histogram("b").unwrap();
        let m = a.merge(&b);
        assert_eq!(m.count, 2);
        assert_eq!(m.min_nanos, 10);
        assert_eq!(m.max_nanos, 1_000_000);
        assert_eq!(m.sum_nanos, 1_000_010);
        assert_eq!(a.merge(&b), b.merge(&a));
    }

    #[test]
    fn empty_snapshot_is_merge_identity() {
        let r = Registry::default();
        r.observe("a", 42);
        let a = r.histogram("a").unwrap();
        let id = HistogramSnapshot::default();
        assert_eq!(a.merge(&id), a);
        assert_eq!(id.merge(&a), a);
        assert_eq!(id.mean_nanos(), 0);
    }
}
