//! Fault-injection integration matrix: every storage fault site crossed
//! with every fault kind, armed against a live recording DejaView
//! session.
//!
//! For each combination the session must (1) never panic, (2) surface
//! injected failures as counted degradation rather than silent loss,
//! and (3) keep every byte of the pre-fault record usable: browse
//! reproduces the same screen, search still finds the recorded text,
//! and revive restores the pre-fault checkpoint.

mod common;

use dejaview::{Config, DejaView};
use dv_access::Role;
use dv_display::Rect;
use dv_fault::{sites, FaultPlan, FaultPlane, IoFault};
use dv_index::RankOrder;
use dv_time::Duration;

const W: u32 = 96;
const H: u32 = 64;

fn server_with(plane: FaultPlane) -> DejaView {
    DejaView::new(Config {
        width: W,
        height: H,
        fault_plane: plane,
        ..Config::default()
    })
}

/// Paints, writes files, syncs, ticks the policy, and takes a keyframe,
/// tolerating injected storage errors; returns how many fs operations
/// reported an error to this caller.
fn activity(dv: &mut DejaView, phase: u64, steps: u64) -> u64 {
    let mut fs_errors = 0u64;
    for i in 0..steps {
        // Advance first so this step's commands land strictly after the
        // previous phase's end time (browse at a phase boundary must not
        // pick up the next phase's paint).
        dv.clock().advance(Duration::from_secs(1));
        let shade = 0x20_20_20 + (phase + i) as u32 * 41;
        dv.driver_mut().fill_rect(Rect::new(0, 0, W, H), shade);
        if dv
            .vee_mut()
            .fs
            .write_all("/data/file", &vec![(phase + i) as u8; 2 << 10])
            .is_err()
        {
            fs_errors += 1;
        }
        if dv.vee_mut().fs.sync().is_err() {
            fs_errors += 1;
        }
        let _ = dv.policy_tick();
        dv.force_keyframe();
    }
    fs_errors
}

#[test]
fn every_site_and_fault_degrades_gracefully() {
    let kinds = [
        IoFault::Enospc,
        IoFault::TornWrite,
        IoFault::ShortRead,
        IoFault::Corrupt,
        IoFault::LatencySpike,
    ];
    for site in sites::ALL {
        for (ki, fault) in kinds.iter().enumerate() {
            let label = format!("{site}/{fault:?}");
            let plane = FaultPlan::new(common::seed_for(site) ^ ki as u64)
                .every_nth(site, 2, *fault)
                .build();
            plane.disarm();
            let mut dv = server_with(plane.clone());

            // --- Clean pre-fault history the record must retain. ---
            dv.vee_mut().fs.mkdir_all("/data").expect("clean mkdir");
            let app = dv.desktop_mut().register_app("editor");
            let root = dv.desktop_mut().root(app).expect("app root");
            let win = dv
                .desktop_mut()
                .add_node(app, root, Role::Window, "notes - editor");
            dv.desktop_mut()
                .add_node(app, win, Role::Paragraph, "prefault sentinel text");
            dv.desktop_mut().focus(app);
            assert_eq!(activity(&mut dv, 0, 3), 0, "{label}: clean run erred");
            let pre_time = dv.now();
            let pre_shot = dv
                .browse(pre_time)
                .expect("pre-fault browse")
                .content_hash();

            // --- Armed phase: the session absorbs the faults. ---
            plane.arm();
            let fs_errors = activity(&mut dv, 3, 4);
            // A revive under fault reads blobs back; it may fail, but
            // must not panic or corrupt the live session.
            if let Ok(sid) = dv.take_me_back(dv.now()) {
                let _ = dv.close_session(sid);
            }
            let _ = dv.save_archive();
            let _ = dv.save_archive();
            plane.disarm();

            let injected = plane.injected_at(site);
            assert!(injected > 0, "{label}: site was never exercised");

            // --- Failures are visible, not silent. ---
            let damaging = matches!(
                fault,
                IoFault::Enospc | IoFault::TornWrite | IoFault::ShortRead
            );
            if damaging && site != sites::LSFS_BLOB_GET {
                let visible =
                    dv.storage().degraded_events + dv.engine().stats().write_failures + fs_errors;
                assert!(visible > 0, "{label}: {injected} faults left no trace");
            }

            // --- Zero lost pre-fault data. ---
            let post_shot = dv
                .browse(pre_time)
                .unwrap_or_else(|e| panic!("{label}: pre-fault browse broke: {e}"))
                .content_hash();
            assert_eq!(pre_shot, post_shot, "{label}: pre-fault screen changed");

            let hits = dv
                .search("sentinel", RankOrder::Chronological)
                .unwrap_or_else(|e| panic!("{label}: search broke: {e}"));
            assert!(!hits.is_empty(), "{label}: pre-fault text unsearchable");

            let sid = dv
                .take_me_back(pre_time)
                .unwrap_or_else(|e| panic!("{label}: pre-fault revive broke: {e:?}"));
            let revived = dv.session(sid).expect("revived session");
            assert_eq!(
                revived.vee.fs.read_all("/data/file").expect("revived file")[0],
                2,
                "{label}: revived file is not the pre-fault version"
            );
            dv.close_session(sid).expect("close revived session");
        }
    }
}
