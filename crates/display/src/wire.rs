//! The viewer wire protocol.
//!
//! "By allowing display output to be redirected anywhere, this approach
//! also enables the desktop to be accessed both locally and remotely"
//! (§3). The same command encoding used for the on-disk record carries
//! the live stream to remote viewers: a [`StreamEncoder`] is a
//! [`CommandSink`] that frames commands into a byte channel, and a
//! [`RemoteViewer`] consumes bytes — in arbitrary chunks, as a network
//! would deliver them — and drives a stateless [`Viewer`].

use std::collections::VecDeque;
use std::sync::Arc;

use parking_lot::Mutex;

use dv_time::Timestamp;

use crate::codec::{decode_command, encode_command, CodecError, HEADER_LEN};
use crate::command::DisplayCommand;
use crate::driver::CommandSink;
use crate::viewer::{InputEvent, Viewer};

/// Error returned by [`ByteChannel::try_recv`] once the peer has
/// closed the channel and every buffered byte has been drained.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ChannelClosed;

impl std::fmt::Display for ChannelClosed {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "byte channel closed by peer")
    }
}

impl std::error::Error for ChannelClosed {}

#[derive(Default)]
struct ChannelState {
    queue: VecDeque<u8>,
    closed: bool,
}

/// A byte channel between server and viewer (a TCP socket stand-in).
///
/// The channel has explicit lifecycle semantics: after
/// [`close`](ByteChannel::close), buffered bytes still drain, but
/// [`try_recv`](ByteChannel::try_recv) on an empty closed channel
/// reports [`ChannelClosed`] instead of an empty read — so a consumer
/// can distinguish "no bytes yet" from "peer gone". Bytes sent after
/// close are discarded.
#[derive(Clone, Default)]
pub struct ByteChannel {
    inner: Arc<Mutex<ChannelState>>,
}

impl ByteChannel {
    /// Creates an empty channel.
    pub fn new() -> Self {
        ByteChannel::default()
    }

    /// Appends bytes to the channel. Bytes sent after
    /// [`close`](ByteChannel::close) are dropped, mirroring a write to a
    /// half-closed socket; returns how many bytes were accepted.
    pub fn send(&self, bytes: &[u8]) -> usize {
        let mut state = self.inner.lock();
        if state.closed {
            return 0;
        }
        state.queue.extend(bytes.iter().copied());
        bytes.len()
    }

    /// Removes and returns up to `max` bytes (empty when nothing is
    /// buffered, whether or not the channel is closed). Prefer
    /// [`try_recv`](ByteChannel::try_recv) when EOF matters.
    pub fn recv(&self, max: usize) -> Vec<u8> {
        let mut state = self.inner.lock();
        let take = max.min(state.queue.len());
        state.queue.drain(..take).collect()
    }

    /// Removes and returns up to `max` bytes, or [`ChannelClosed`] once
    /// the channel is closed *and* fully drained. An empty `Ok` means
    /// "no bytes yet, try again".
    pub fn try_recv(&self, max: usize) -> Result<Vec<u8>, ChannelClosed> {
        let mut state = self.inner.lock();
        if state.queue.is_empty() {
            return if state.closed {
                Err(ChannelClosed)
            } else {
                Ok(Vec::new())
            };
        }
        let take = max.min(state.queue.len());
        Ok(state.queue.drain(..take).collect())
    }

    /// Closes the channel: no further bytes are accepted, and readers
    /// see EOF once the buffer drains.
    pub fn close(&self) {
        self.inner.lock().closed = true;
    }

    /// Returns whether the channel has been closed.
    pub fn is_closed(&self) -> bool {
        self.inner.lock().closed
    }

    /// Returns the number of buffered bytes.
    pub fn len(&self) -> usize {
        self.inner.lock().queue.len()
    }

    /// Returns whether the channel is empty.
    pub fn is_empty(&self) -> bool {
        self.inner.lock().queue.is_empty()
    }
}

/// A [`CommandSink`] that frames the command stream onto a byte channel:
/// `[time u64 LE][encoded command]` per event, the record format reused
/// as the wire format.
pub struct StreamEncoder {
    channel: ByteChannel,
    sent: u64,
}

impl StreamEncoder {
    /// Creates an encoder writing to `channel`.
    pub fn new(channel: ByteChannel) -> Self {
        StreamEncoder { channel, sent: 0 }
    }

    /// Returns how many commands have been sent.
    pub fn sent(&self) -> u64 {
        self.sent
    }
}

impl CommandSink for StreamEncoder {
    fn submit(&mut self, ts: Timestamp, cmd: &DisplayCommand) {
        let mut frame = Vec::with_capacity(8 + cmd.wire_size());
        frame.extend_from_slice(&ts.as_nanos().to_le_bytes());
        encode_command(cmd, &mut frame);
        self.channel.send(&frame);
        self.sent += 1;
    }
}

/// A remote viewer: buffers incoming bytes, decodes complete frames, and
/// applies them to its local framebuffer.
pub struct RemoteViewer {
    /// The stateless viewer being driven.
    pub viewer: Viewer,
    buffer: Vec<u8>,
    received: u64,
}

impl RemoteViewer {
    /// Creates a remote viewer with a `width` x `height` framebuffer.
    pub fn new(width: u32, height: u32) -> Self {
        RemoteViewer {
            viewer: Viewer::new(width, height),
            buffer: Vec::new(),
            received: 0,
        }
    }

    /// Returns how many commands have been applied.
    pub fn received(&self) -> u64 {
        self.received
    }

    /// Feeds a chunk of bytes (any framing the transport produced) and
    /// applies every complete command it completes.
    ///
    /// # Errors
    ///
    /// Returns a [`CodecError`] if the stream is corrupt; the viewer
    /// should disconnect.
    pub fn feed(&mut self, bytes: &[u8]) -> Result<usize, CodecError> {
        self.buffer.extend_from_slice(bytes);
        let mut applied = 0;
        loop {
            if self.buffer.len() < 8 + HEADER_LEN {
                break;
            }
            let ts = Timestamp::from_nanos(u64::from_le_bytes(
                self.buffer[..8].try_into().expect("8 bytes"),
            ));
            let mut slice = &self.buffer[8..];
            let before = slice.len();
            match decode_command(&mut slice) {
                Ok(cmd) => {
                    let consumed = 8 + (before - slice.len());
                    self.viewer.submit(ts, &cmd);
                    self.buffer.drain(..consumed);
                    self.received += 1;
                    applied += 1;
                }
                Err(CodecError::UnexpectedEof) => break, // Partial frame.
                Err(e) => return Err(e),
            }
        }
        Ok(applied)
    }

    /// Pumps all currently available bytes from a channel.
    ///
    /// # Errors
    ///
    /// Propagates stream corruption.
    pub fn pump(&mut self, channel: &ByteChannel) -> Result<usize, CodecError> {
        Ok(self.poll(channel)?.applied)
    }

    /// Pumps all currently available bytes from a channel, reporting
    /// whether the peer is gone. Unlike [`pump`](RemoteViewer::pump),
    /// which cannot distinguish "no bytes yet" from a closed channel,
    /// `poll` surfaces EOF so a viewer loop can stop instead of
    /// spinning on empty reads.
    ///
    /// # Errors
    ///
    /// Propagates stream corruption.
    pub fn poll(&mut self, channel: &ByteChannel) -> Result<PumpStatus, CodecError> {
        let mut applied = 0;
        loop {
            match channel.try_recv(1400) {
                // MTU-ish chunks.
                Ok(chunk) if chunk.is_empty() => {
                    return Ok(PumpStatus {
                        applied,
                        eof: false,
                    })
                }
                Ok(chunk) => applied += self.feed(&chunk)?,
                Err(ChannelClosed) => return Ok(PumpStatus { applied, eof: true }),
            }
        }
    }
}

/// What one [`RemoteViewer::poll`] pass over a channel produced.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct PumpStatus {
    /// Complete commands applied during this pass.
    pub applied: usize,
    /// Whether the channel reported EOF (peer gone, buffer drained).
    pub eof: bool,
}

/// Encodes one input event for the viewer-to-server direction of the
/// wire (input is forwarded, never recorded — §2).
pub fn encode_input(event: &InputEvent, out: &mut Vec<u8>) {
    match event {
        InputEvent::Key { ch, ctrl, alt } => {
            out.push(1);
            out.extend_from_slice(&(*ch as u32).to_le_bytes());
            out.push(*ctrl as u8);
            out.push(*alt as u8);
        }
        InputEvent::MouseMove { x, y } => {
            out.push(2);
            out.extend_from_slice(&x.to_le_bytes());
            out.extend_from_slice(&y.to_le_bytes());
        }
        InputEvent::MouseButton {
            x,
            y,
            button,
            pressed,
        } => {
            out.push(3);
            out.extend_from_slice(&x.to_le_bytes());
            out.extend_from_slice(&y.to_le_bytes());
            out.push(*button);
            out.push(*pressed as u8);
        }
    }
}

/// Decodes one input event from the front of `buf`, advancing it.
/// Returns `Ok(None)` when the buffer holds only a partial frame.
pub fn decode_input(buf: &mut &[u8]) -> Result<Option<InputEvent>, CodecError> {
    if buf.is_empty() {
        return Ok(None);
    }
    let tag = buf[0];
    let event = match tag {
        1 => {
            if buf.len() < 7 {
                return Ok(None);
            }
            let code = u32::from_le_bytes(buf[1..5].try_into().expect("4 bytes"));
            let ch = char::from_u32(code).ok_or(CodecError::BadPayload("invalid char"))?;
            let event = InputEvent::Key {
                ch,
                ctrl: buf[5] != 0,
                alt: buf[6] != 0,
            };
            *buf = &buf[7..];
            event
        }
        2 => {
            if buf.len() < 9 {
                return Ok(None);
            }
            let event = InputEvent::MouseMove {
                x: u32::from_le_bytes(buf[1..5].try_into().expect("4 bytes")),
                y: u32::from_le_bytes(buf[5..9].try_into().expect("4 bytes")),
            };
            *buf = &buf[9..];
            event
        }
        3 => {
            if buf.len() < 11 {
                return Ok(None);
            }
            let event = InputEvent::MouseButton {
                x: u32::from_le_bytes(buf[1..5].try_into().expect("4 bytes")),
                y: u32::from_le_bytes(buf[5..9].try_into().expect("4 bytes")),
                button: buf[9],
                pressed: buf[10] != 0,
            };
            *buf = &buf[11..];
            event
        }
        other => return Err(CodecError::BadTag(other)),
    };
    Ok(Some(event))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::VirtualDisplayDriver;
    use crate::rect::Rect;
    use dv_time::SimClock;

    #[test]
    fn remote_viewer_mirrors_driver_exactly() {
        let clock = SimClock::new();
        let mut driver = VirtualDisplayDriver::new(64, 64, clock.shared());
        let channel = ByteChannel::new();
        driver.attach_sink(Arc::new(Mutex::new(StreamEncoder::new(channel.clone()))));

        driver.fill_rect(Rect::new(0, 0, 64, 64), 0x223344);
        driver.draw_text(4, 4, "remote desktop", 0xFFFFFF, 0);
        driver.copy_area(0, 0, Rect::new(32, 32, 16, 16));

        let mut remote = RemoteViewer::new(64, 64);
        let applied = remote.pump(&channel).unwrap();
        assert_eq!(applied, 3);
        assert_eq!(
            remote.viewer.screenshot().content_hash(),
            driver.snapshot().content_hash()
        );
        assert!(channel.is_empty());
    }

    #[test]
    fn fragmented_delivery_reassembles() {
        let clock = SimClock::new();
        let mut driver = VirtualDisplayDriver::new(32, 32, clock.shared());
        let channel = ByteChannel::new();
        driver.attach_sink(Arc::new(Mutex::new(StreamEncoder::new(channel.clone()))));
        for i in 0..10u32 {
            driver.fill_rect(Rect::new(i, 0, 1, 32), i + 1);
        }
        // Deliver one byte at a time: worst-case fragmentation.
        let mut remote = RemoteViewer::new(32, 32);
        loop {
            let chunk = channel.recv(1);
            if chunk.is_empty() {
                break;
            }
            remote.feed(&chunk).unwrap();
        }
        assert_eq!(remote.received(), 10);
        assert_eq!(
            remote.viewer.screenshot().content_hash(),
            driver.snapshot().content_hash()
        );
    }

    #[test]
    fn corrupt_stream_is_detected() {
        let channel = ByteChannel::new();
        let mut encoder = StreamEncoder::new(channel.clone());
        encoder.submit(
            Timestamp::ZERO,
            &DisplayCommand::SolidFill {
                rect: Rect::new(0, 0, 4, 4),
                color: 1,
            },
        );
        let mut bytes = channel.recv(usize::MAX);
        bytes[8] = 99; // Clobber the command tag.
        let mut remote = RemoteViewer::new(8, 8);
        assert!(remote.feed(&bytes).is_err());
    }

    #[test]
    fn input_events_round_trip_the_wire() {
        let events = [
            InputEvent::Key {
                ch: 'ф',
                ctrl: true,
                alt: false,
            },
            InputEvent::MouseMove { x: 800, y: 600 },
            InputEvent::MouseButton {
                x: 10,
                y: 20,
                button: 2,
                pressed: true,
            },
        ];
        let mut wire = Vec::new();
        for event in &events {
            encode_input(event, &mut wire);
        }
        let mut slice = wire.as_slice();
        let mut decoded = Vec::new();
        while let Some(event) = decode_input(&mut slice).unwrap() {
            decoded.push(event);
        }
        assert_eq!(decoded, events);
        // Partial frames wait for more bytes; bad tags error.
        let mut partial = &wire[..3];
        assert_eq!(decode_input(&mut partial).unwrap(), None);
        let bad = [9u8, 0, 0];
        let mut bad_slice = &bad[..];
        assert!(decode_input(&mut bad_slice).is_err());
    }

    #[test]
    fn closed_channel_drains_then_reports_eof() {
        let channel = ByteChannel::new();
        let mut encoder = StreamEncoder::new(channel.clone());
        encoder.submit(
            Timestamp::ZERO,
            &DisplayCommand::SolidFill {
                rect: Rect::new(0, 0, 4, 4),
                color: 7,
            },
        );
        let mut remote = RemoteViewer::new(8, 8);
        // Open and empty: "no bytes yet".
        let pumped = remote.poll(&channel).unwrap();
        assert_eq!(
            pumped,
            PumpStatus {
                applied: 1,
                eof: false
            }
        );
        channel.close();
        // Writes after close are discarded.
        assert_eq!(channel.send(&[1, 2, 3]), 0);
        assert!(channel.is_closed());
        // Closed and drained: EOF, not an empty read.
        assert_eq!(channel.try_recv(16), Err(ChannelClosed));
        let pumped = remote.poll(&channel).unwrap();
        assert_eq!(
            pumped,
            PumpStatus {
                applied: 0,
                eof: true
            }
        );
    }

    #[test]
    fn close_with_buffered_bytes_still_delivers_them() {
        let channel = ByteChannel::new();
        let mut encoder = StreamEncoder::new(channel.clone());
        for i in 0..4u32 {
            encoder.submit(
                Timestamp::ZERO,
                &DisplayCommand::SolidFill {
                    rect: Rect::new(i, 0, 1, 1),
                    color: i,
                },
            );
        }
        channel.close();
        let mut remote = RemoteViewer::new(8, 8);
        let pumped = remote.poll(&channel).unwrap();
        assert_eq!(
            pumped,
            PumpStatus {
                applied: 4,
                eof: true
            }
        );
    }

    #[test]
    fn multiple_viewers_share_one_session() {
        // The same session can be viewed locally and remotely at once.
        let clock = SimClock::new();
        let mut driver = VirtualDisplayDriver::new(16, 16, clock.shared());
        let local = Arc::new(Mutex::new(Viewer::new(16, 16)));
        let channel = ByteChannel::new();
        driver.attach_sink(local.clone());
        driver.attach_sink(Arc::new(Mutex::new(StreamEncoder::new(channel.clone()))));
        driver.fill_rect(Rect::new(2, 2, 8, 8), 5);
        let mut remote = RemoteViewer::new(16, 16);
        remote.pump(&channel).unwrap();
        let expected = driver.snapshot().content_hash();
        assert_eq!(local.lock().screenshot().content_hash(), expected);
        assert_eq!(remote.viewer.screenshot().content_hash(), expected);
    }
}
