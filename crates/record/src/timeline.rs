//! The timeline index file.
//!
//! "DejaView indexes recorded command and screenshot data using a special
//! timeline file ... chronologically ordered, fixed-size entries of the
//! time at which a screenshot was taken, the file location in which its
//! data was stored, and the file location of the first display command
//! that follows that screenshot" (§4.1). Fixed-size entries make the
//! lookup a binary search.

use dv_time::Timestamp;

/// One fixed-size timeline entry.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct TimelineEntry {
    /// When the screenshot was taken.
    pub time: Timestamp,
    /// Offset of the screenshot in the screenshot store.
    pub screenshot_offset: u64,
    /// Offset of the first command logged after the screenshot.
    pub command_offset: u64,
}

/// Encoded size of one entry.
pub const ENTRY_LEN: usize = 24;

/// The chronologically ordered timeline index.
#[derive(Clone, Debug, Default)]
pub struct Timeline {
    entries: Vec<TimelineEntry>,
}

impl Timeline {
    /// Creates an empty timeline.
    pub fn new() -> Self {
        Timeline::default()
    }

    /// Appends an entry.
    ///
    /// # Panics
    ///
    /// Panics if `entry.time` is earlier than the last entry's time —
    /// the index must stay chronologically ordered.
    pub fn push(&mut self, entry: TimelineEntry) {
        if let Some(last) = self.entries.last() {
            assert!(
                entry.time >= last.time,
                "timeline entries must be chronological"
            );
        }
        self.entries.push(entry);
    }

    /// Returns the number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns whether the timeline is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Returns all entries.
    pub fn entries(&self) -> &[TimelineEntry] {
        &self.entries
    }

    /// Returns the size the index file occupies on disk.
    pub fn byte_len(&self) -> u64 {
        (self.entries.len() * ENTRY_LEN) as u64
    }

    /// Binary-searches for the entry with the greatest time less than or
    /// equal to `t` (§4.3).
    pub fn entry_at_or_before(&self, t: Timestamp) -> Option<&TimelineEntry> {
        let idx = self.entries.partition_point(|e| e.time <= t);
        idx.checked_sub(1).map(|i| &self.entries[i])
    }

    /// Returns the entries strictly between `after` and up to and
    /// including time `t`, used by fast-forward's screenshot walk.
    pub fn entries_in(&self, after: Timestamp, t: Timestamp) -> &[TimelineEntry] {
        let lo = self.entries.partition_point(|e| e.time <= after);
        let hi = self.entries.partition_point(|e| e.time <= t);
        &self.entries[lo..hi]
    }

    /// Serializes the index to its on-disk fixed-entry format.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.entries.len() * ENTRY_LEN);
        for e in &self.entries {
            out.extend_from_slice(&e.time.as_nanos().to_le_bytes());
            out.extend_from_slice(&e.screenshot_offset.to_le_bytes());
            out.extend_from_slice(&e.command_offset.to_le_bytes());
        }
        out
    }

    /// Deserializes an index from [`Timeline::encode`] output.
    ///
    /// Returns `None` if the data is not a whole number of entries or is
    /// out of order.
    pub fn decode(data: &[u8]) -> Option<Timeline> {
        if !data.len().is_multiple_of(ENTRY_LEN) {
            return None;
        }
        let mut timeline = Timeline::new();
        for chunk in data.chunks_exact(ENTRY_LEN) {
            let time = Timestamp::from_nanos(u64::from_le_bytes(chunk[..8].try_into().ok()?));
            let screenshot_offset = u64::from_le_bytes(chunk[8..16].try_into().ok()?);
            let command_offset = u64::from_le_bytes(chunk[16..24].try_into().ok()?);
            if timeline.entries.last().is_some_and(|last| time < last.time) {
                return None;
            }
            timeline.entries.push(TimelineEntry {
                time,
                screenshot_offset,
                command_offset,
            });
        }
        Some(timeline)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(ms: u64) -> TimelineEntry {
        TimelineEntry {
            time: Timestamp::from_millis(ms),
            screenshot_offset: ms * 100,
            command_offset: ms * 1000,
        }
    }

    fn sample() -> Timeline {
        let mut t = Timeline::new();
        for ms in [0, 100, 250, 600] {
            t.push(entry(ms));
        }
        t
    }

    #[test]
    fn lookup_finds_max_entry_at_or_before() {
        let t = sample();
        assert_eq!(
            t.entry_at_or_before(Timestamp::from_millis(100)).unwrap(),
            &entry(100)
        );
        assert_eq!(
            t.entry_at_or_before(Timestamp::from_millis(249)).unwrap(),
            &entry(100)
        );
        assert_eq!(
            t.entry_at_or_before(Timestamp::from_millis(10_000))
                .unwrap(),
            &entry(600)
        );
    }

    #[test]
    fn lookup_before_first_entry_is_none() {
        let mut t = Timeline::new();
        t.push(entry(100));
        assert!(t.entry_at_or_before(Timestamp::from_millis(99)).is_none());
        assert!(Timeline::new()
            .entry_at_or_before(Timestamp::from_millis(0))
            .is_none());
    }

    #[test]
    fn entries_in_range() {
        let t = sample();
        let range = t.entries_in(Timestamp::from_millis(0), Timestamp::from_millis(250));
        assert_eq!(range, &[entry(100), entry(250)]);
        let none = t.entries_in(Timestamp::from_millis(600), Timestamp::from_millis(700));
        assert!(none.is_empty());
    }

    #[test]
    #[should_panic(expected = "chronological")]
    fn out_of_order_push_panics() {
        let mut t = Timeline::new();
        t.push(entry(100));
        t.push(entry(50));
    }

    #[test]
    fn encode_decode_round_trip() {
        let t = sample();
        let encoded = t.encode();
        assert_eq!(encoded.len() as u64, t.byte_len());
        let decoded = Timeline::decode(&encoded).unwrap();
        assert_eq!(decoded.entries(), t.entries());
    }

    #[test]
    fn decode_rejects_bad_data() {
        assert!(Timeline::decode(&[0; 10]).is_none());
        // Out-of-order entries.
        let mut a = Timeline::new();
        a.push(entry(100));
        let mut b = Timeline::new();
        b.push(entry(0));
        let mut bytes = a.encode();
        bytes.extend_from_slice(&b.encode());
        assert!(Timeline::decode(&bytes).is_none());
    }
}
